package ips

import (
	"repro/internal/corr"
	"repro/internal/mips"
	"repro/internal/xrand"
)

// This file exposes the exact-search and correlation-detection
// baselines the paper positions its results against: tree/pruning MIPS
// (Ram–Gray [43], LEMP-style norm bounds [50]) and the Valiant-style
// outlier-correlation aggregation ([51]/[29], sans fast matrix
// multiplication — see DESIGN.md's substitution table).

// MIPSResult is an exact MIPS answer with its work counter.
type MIPSResult = mips.Result

// NormPrunedMIPS is the descending-norm exact MIPS scanner.
type NormPrunedMIPS = mips.NormPruned

// NewNormPrunedMIPS preprocesses data for norm-pruned exact search.
func NewNormPrunedMIPS(data []Vector) (*NormPrunedMIPS, error) {
	return mips.NewNormPruned(data)
}

// BallTreeMIPS is the Ram–Gray branch-and-bound exact MIPS tree.
type BallTreeMIPS = mips.BallTree

// NewBallTreeMIPS builds the tree with the given leaf size.
func NewBallTreeMIPS(data []Vector, leafSize int) (*BallTreeMIPS, error) {
	return mips.NewBallTree(data, leafSize)
}

// CorrelationInstance is a planted ±1 correlation instance (the
// unsigned {−1,1} join workload of Table 1's permissible column).
type CorrelationInstance = corr.Instance

// NewCorrelationInstance plants one ρ-correlated pair among random
// ±1 vectors.
func NewCorrelationInstance(seed uint64, nP, nQ, d int, rho float64) (*CorrelationInstance, error) {
	return corr.NewInstance(xrand.New(seed), nP, nQ, d, rho)
}

// DetectCorrelationNaive scans all pairs (work nP·nQ·d).
func DetectCorrelationNaive(in *CorrelationInstance) corr.Result {
	return corr.Naive(in)
}

// DetectCorrelationAggregate runs the Valiant-style expand-and-
// aggregate detector with group size g (work ≈ (n/g)²·d + g²·d).
func DetectCorrelationAggregate(in *CorrelationInstance, g int, seed uint64) (corr.Result, error) {
	return corr.Aggregate(in, g, xrand.New(seed))
}

// AggregationSignalFloor returns the smallest planted correlation the
// aggregation detector can reliably separate from noise at the given
// instance shape.
func AggregationSignalFloor(n, d, g int) float64 { return corr.MinSignal(n, d, g) }
