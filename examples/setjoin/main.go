// Setjoin: unsigned IPS join over binary set data ({0,1}^d — the
// domain the paper singles out as "particularly interesting, as it
// occurs often in practice, for example when the vectors represent
// sets"). Inner product = intersection size. The example runs the
// MinHash-LSH banding join against the exact scan and reports recall
// and the candidate work saved.
package main

import (
	"fmt"
	"log"

	ips "repro"
	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	const (
		nData    = 4000
		nQuery   = 100
		universe = 512
		setSize  = 24
	)
	rng := xrand.New(7)
	P := dataset.BinarySets(rng, nData, universe, setSize, 0.7)
	Q := dataset.BinarySets(rng, nQuery, universe, setSize, 0.7)
	// Plant near-duplicates for a quarter of the queries: copy the query
	// set with a few elements dropped.
	plantedThreshold := float64(setSize) * 0.6
	for qi := 0; qi < nQuery; qi += 4 {
		p := Q[qi].Clone()
		dropped := 0
		for e := range p {
			if p[e] == 1 && dropped < setSize/4 {
				p[e] = 0
				dropped++
			}
		}
		P[qi] = p
	}

	s := plantedThreshold
	cs := s / 2
	fam, err := lsh.NewMinHash(universe)
	if err != nil {
		log.Fatal(err)
	}
	j := join.LSHJoiner{Family: fam, K: 3, L: 16, Seed: 9}
	approx, err := j.Unsigned(P, Q, s, cs)
	if err != nil {
		log.Fatal(err)
	}
	exact := join.NaiveUnsigned(P, Q, s)

	fmt.Printf("binary set join: %d data sets, %d queries, universe %d, |set|≈%d\n",
		nData, nQuery, universe, setSize)
	fmt.Printf("threshold s=%.0f (intersection), acceptance cs=%.0f\n", s, cs)
	fmt.Printf("exact:   %d satisfied queries, %d pairs compared\n",
		len(exact.Matches), exact.Compared)
	fmt.Printf("minhash: %d satisfied queries, %d pairs compared (%.1fx less work)\n",
		len(approx.Matches), approx.Compared,
		float64(exact.Compared)/float64(approx.Compared))
	fmt.Printf("recall vs exact: %.2f\n", ips.Recall(exact, approx, s))

	// Show one recovered pair in set notation.
	if len(approx.Matches) > 0 {
		m := approx.Matches[0]
		fmt.Printf("\nexample pair: query %d ∩ data %d = %.0f elements\n",
			m.QIdx, m.PIdx, vec.Dot(P[m.PIdx], Q[m.QIdx]))
	}
}
