// Example server demonstrates the ipsd serving layer end to end from a
// client's point of view: it starts an in-process server, bulk-ingests
// a small latent-factor catalogue over HTTP, runs single and batched
// top-k searches (watching the query cache), and finishes with an
// approximate (cs, s) join between two collections.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	ips "repro"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

func main() {
	srv := ips.NewServer(ips.ServerConfig{DefaultShards: 4, CacheCapacity: 256})
	defer srv.Close()
	ts := httptest.NewServer(ips.NewServerHandler(srv))
	defer ts.Close()
	fmt.Printf("ipsd serving at %s\n\n", ts.URL)

	rng := xrand.New(42)
	lf := dataset.NewLatentFactor(rng, 2000, 50, 12, 0.5)
	lf.ScaleItemsToUnitBall()

	// Bulk ingest: PUT /collections/items.
	type record struct {
		ID  int       `json:"id"`
		Vec []float64 `json:"vec"`
	}
	items := make([]record, len(lf.Items))
	for i, v := range lf.Items {
		items[i] = record{ID: i, Vec: v}
	}
	var ingest struct {
		Records int    `json:"records"`
		Version uint64 `json:"version"`
	}
	post(ts.URL+"/collections/items", http.MethodPut, map[string]any{
		"index":   map[string]any{"kind": "exact"},
		"shards":  4,
		"records": items,
	}, &ingest)
	fmt.Printf("ingested %d items (version %d)\n", ingest.Records, ingest.Version)

	// Single top-5 search: POST /collections/items/search.
	var single struct {
		Matches []ips.SearchHit `json:"matches"`
		TookMS  float64         `json:"took_ms"`
	}
	post(ts.URL+"/collections/items/search", http.MethodPost, map[string]any{
		"q": lf.Users[0], "k": 5,
	}, &single)
	fmt.Printf("\ntop-5 for user 0 (%.3f ms):\n", single.TookMS)
	for _, h := range single.Matches {
		fmt.Printf("  item %4d  score %+.4f\n", h.ID, h.Score)
	}

	// Batched search: all 50 users in one request; re-running it shows
	// the LRU cache serving every query.
	queries := make([][]float64, len(lf.Users))
	for i, u := range lf.Users {
		queries[i] = u
	}
	var batch struct {
		Results [][]ips.SearchHit `json:"results"`
		Cached  int               `json:"cached"`
	}
	post(ts.URL+"/collections/items/search", http.MethodPost,
		map[string]any{"queries": queries, "k": 3}, &batch)
	fmt.Printf("\nbatch of %d queries: %d cached\n", len(batch.Results), batch.Cached)
	post(ts.URL+"/collections/items/search", http.MethodPost,
		map[string]any{"queries": queries, "k": 3}, &batch)
	fmt.Printf("repeat batch:        %d cached\n", batch.Cached)

	// Join: ingest the users as their own collection, then POST /join.
	users := make([]record, len(lf.Users))
	for i, v := range lf.Users {
		users[i] = record{ID: i, Vec: v}
	}
	post(ts.URL+"/collections/users", http.MethodPut, map[string]any{"records": users}, nil)
	var join struct {
		Engine   string `json:"engine"`
		Pairs    []any  `json:"pairs"`
		Compared int64  `json:"compared"`
	}
	post(ts.URL+"/join", http.MethodPost, map[string]any{
		"data": "items", "queries": "users", "engine": "exact", "s": 0.2,
	}, &join)
	fmt.Printf("\n%s join at s=0.2: %d pairs (%d comparisons)\n",
		join.Engine, len(join.Pairs), join.Compared)

	// Operational visibility: GET /stats.
	var stats ips.ServerStats
	get(ts.URL+"/stats", &stats)
	cs := stats.Collections["items"]
	fmt.Printf("\nstats: items has %d records over %d shards, %d queries, p50=%.3fms p99=%.3fms\n",
		cs.Records, len(cs.Shards), cs.Queries, cs.Latency.P50, cs.Latency.P99)
}

func post(url, method string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	do(req, out)
}

func get(url string, out any) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Fatal(err)
	}
	do(req, out)
}

func do(req *http.Request, out any) {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s %s: %d %s", req.Method, req.URL, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
