// Hardness: Theorem 1 in action. The example builds a planted
// Orthogonal Vectors instance, pushes it through each Lemma 3 gap
// embedding, and shows that an approximate IPS join on the embedded
// vectors — with exactly the (cs, s) gap the embedding certifies —
// recovers the hidden orthogonal pair. This is the reduction that makes
// subquadratic approximate IPS join OVP-hard.
package main

import (
	"fmt"
	"log"

	ips "repro"
	"repro/internal/bitvec"
	"repro/internal/ovp"
	"repro/internal/xrand"
)

func main() {
	const d = 16
	rng := xrand.New(99)
	inst, hidden := ovp.Planted(rng, 32, 40, d, 0.2, true)
	fmt.Printf("OVP instance: |P|=%d |Q|=%d d=%d, one hidden orthogonal pair (%d,%d)\n\n",
		len(inst.P), len(inst.Q), d, hidden.PIdx, hidden.QIdx)

	// Embedding 1: signed (d, 4d−4, 0, 4) into {−1,1}. After embedding,
	// *any* c > 0 approximation of the signed join must find the pair,
	// because non-orthogonal pairs land at inner product ≤ 0.
	e1, err := ips.NewSignedEmbedding(d)
	if err != nil {
		log.Fatal(err)
	}
	p1 := e1.Params()
	pair, ok := ovp.SolveViaSignsEmbedding(inst, e1)
	fmt.Printf("E1 signed {-1,1}:   d2=%-7d cs=%-6.0f s=%-8.0f found=%v pair=(%d,%d)\n",
		p1.D2, p1.CS, p1.S, ok && pair == hidden, pair.PIdx, pair.QIdx)

	// Embedding 2: the deterministic Chebyshev amplifier — the gap s/cs
	// grows like e^{q/√d}, which is what rules out c = e^{−o(√log n / log log n)}.
	for q := 1; q <= 3; q++ {
		e2, err := ips.NewChebyshevEmbedding(d, q)
		if err != nil {
			log.Fatal(err)
		}
		p2 := e2.Params()
		pair, ok := ovp.SolveViaSignsEmbedding(inst, e2)
		fmt.Printf("E2 Chebyshev q=%d:   d2=%-7d cs=%-6.0f s=%-8.0f found=%v gap=s/cs=%.3f\n",
			q, p2.D2, p2.CS, p2.S, ok && pair == hidden, p2.S/p2.CS)
	}

	// Embedding 3: the {0,1} chopped polynomial — the gap is only
	// k vs k−1, which is why {0,1} hardness needs c = 1 − o(1).
	for _, k := range []int{4, 8, d} {
		e3, err := ips.NewChoppedEmbedding(d, k)
		if err != nil {
			log.Fatal(err)
		}
		p3 := e3.Params()
		pair, ok := ovp.SolveViaBitsEmbedding(inst, e3)
		fmt.Printf("E3 chopped k=%-2d:    d2=%-7d cs=%-6.0f s=%-8.0f found=%v c=%.4f\n",
			k, p3.D2, p3.CS, p3.S, ok && pair == hidden, p3.C())
	}

	// Show the embedded inner products around the hidden pair for E3.
	e3, _ := ips.NewChoppedEmbedding(d, 4)
	fq := e3.G(inst.Q[hidden.QIdx])
	fmt.Printf("\nembedded inner products against the hidden query (E3, k=4, s=%g):\n", e3.Params().S)
	for pi := 0; pi < 8; pi++ {
		fp := e3.F(inst.P[pi])
		marker := ""
		if pi == hidden.PIdx {
			marker = "  <-- hidden orthogonal partner"
		}
		fmt.Printf("  P[%2d]: f(p)ᵀg(q) = %d%s\n", pi, bitvec.DotBits(fp, fq), marker)
	}
}
