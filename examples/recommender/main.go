// Recommender: the paper's motivating workload (Teflioudi et al.) —
// latent-factor matrix factorisation where user·item inner products
// rank recommendations. Item norms vary wildly (popularity), so cosine
// methods misrank; MIPS is the right problem. The example compares
// exact top-k retrieval with the §4.1 asymmetric LSH index and the
// §4.3 sketch structure on quality and work.
package main

import (
	"fmt"
	"log"
	"time"

	ips "repro"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

func main() {
	const (
		items = 5000
		users = 50
		rank  = 24
		topK  = 10
	)
	rng := xrand.New(2024)
	lf := dataset.NewLatentFactor(rng, items, users, rank, 0.6)
	lf.ScaleItemsToUnitBall() // paper's data domain: the unit ball

	ix, err := ips.NewMIPSIndex(lf.Items, ips.MIPSOptions{K: 10, L: 32, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sk, err := ips.NewSketchMIPS(lf.Items, 3, 7, 6)
	if err != nil {
		log.Fatal(err)
	}

	var lshHits, skHits, total int
	var lshTime, skTime, exactTime time.Duration
	for _, u := range lf.Users {
		t0 := time.Now()
		exact, _ := ips.BruteMIPS(lf.Items, u, false)
		exactTime += time.Since(t0)

		t0 = time.Now()
		top := ix.TopK(u, topK)
		lshTime += time.Since(t0)
		for _, m := range top {
			if m.PIdx == exact {
				lshHits++
				break
			}
		}

		t0 = time.Now()
		got, _ := sk.Query(u)
		skTime += time.Since(t0)
		if got == exact {
			skHits++
		}
		total++
	}

	fmt.Printf("latent-factor MIPS: %d items (rank %d), %d users, top-%d\n",
		items, rank, users, topK)
	fmt.Printf("%-22s recall@%d=%.2f  avg query %s\n", "exact scan", 1, 1.0,
		(exactTime / time.Duration(total)).Round(time.Microsecond))
	fmt.Printf("%-22s recall@%d=%.2f  avg query %s\n", "asymmetric LSH (§4.1)", topK,
		float64(lshHits)/float64(total), (lshTime / time.Duration(total)).Round(time.Microsecond))
	fmt.Printf("%-22s recall@%d=%.2f  avg query %s  (unsigned c-MIPS, c=%.3f)\n",
		"sketch trie (§4.3)", 1, float64(skHits)/float64(total),
		(skTime / time.Duration(total)).Round(time.Microsecond),
		ips.SketchJoinGuaranteedC(items, 3))
	fmt.Println("\nNotes: at this scale the exact scan's constant factors still win on")
	fmt.Println("wall-clock — the LSH index pays off as n grows (see bench_test.go's")
	fmt.Println("crossover study). The sketch structure solves the *unsigned* c-MIPS")
	fmt.Println("with a coarse n^{-1/κ} guarantee; its weak contract on general inputs")
	fmt.Println("is exactly the regime Theorem 1 proves cannot be improved to a")
	fmt.Println("constant-factor guarantee in subquadratic time.")
}
