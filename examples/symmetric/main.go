// Symmetric: the §4.2 result in action. Neyshabur–Srebro proved no
// symmetric LSH for signed IPS exists when data and query domains are
// the same ball — unless, as the paper shows, the collision guarantee
// is relaxed for *identical* vectors. This example builds the paper's
// symmetric family (Reed–Solomon incoherent tails + hyperplane hashing),
// demonstrates (a) data and queries hash through the same function,
// (b) identical vectors collide trivially at probability 1, and
// (c) for distinct vectors the collision probability tracks the
// hyperplane law 1 − acos(pᵀq)/π within the family's certified ε.
package main

import (
	"fmt"
	"log"

	"repro/internal/lsh"
	"repro/internal/stats"
	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func main() {
	const d, bits = 4, 6
	const eps = 0.1
	tr, err := transform.NewSymmetric(d, bits, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("§4.2 symmetric map: R^%d ball → S^%d sphere, RS family GF(%d), ε = %.4f\n",
		d, tr.OutputDim()-1, tr.Family.Field.P, tr.Eps())

	fam, err := lsh.NewSymmetricIPS(d, bits, eps)
	if err != nil {
		log.Fatal(err)
	}

	// (a) symmetry: one function, both roles.
	h := fam.Sample(xrand.New(1))
	x := vec.Vector{0.5, -0.25, 0.125, 0}
	fmt.Printf("\nsymmetry: h_data(x) = %d, h_query(x) = %d (same function)\n",
		h.HashData(x), h.HashQuery(x))

	// (b) the relaxation: identical vectors always collide.
	self := lsh.EstimateCollision(fam, x, x, 2000, 2)
	fmt.Printf("identical vectors: collision probability = %.3f (the case Definition 2 ignores)\n", self)

	// (c) distinct vectors: collisions track the hyperplane law ± ε.
	fmt.Println("\ndistinct vectors (20000 sampled hashers each):")
	tb := stats.NewTable("pᵀq", "measured", "hyperplane_law", "|diff|", "within ε+noise")
	pairs := []struct{ p, q vec.Vector }{
		{vec.Vector{0.75, 0, 0, 0}, vec.Vector{0.75, 0, 0.25, 0}},
		{vec.Vector{0.5, 0.5, 0, 0}, vec.Vector{0.5, -0.5, 0, 0}},
		{vec.Vector{0.25, 0.25, 0.25, 0}, vec.Vector{-0.25, 0.5, 0.25, 0}},
		{vec.Vector{0.5, 0, 0, 0}, vec.Vector{0, 0.5, 0, 0}},
	}
	for i, pr := range pairs {
		got := lsh.EstimateCollision(fam, pr.p, pr.q, 20000, uint64(3+i))
		want := lsh.HyperplaneCollision(vec.Dot(pr.p, pr.q))
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		tb.Add(vec.Dot(pr.p, pr.q), got, want, diff, diff <= tr.Eps()+0.02)
	}
	fmt.Print(tb.String())
	fmt.Println("\nThe same family indexed both sides of a join would therefore solve")
	fmt.Println("signed (cs,s) IPS after the one extra step §4.2 prescribes: check")
	fmt.Println("first whether the query itself is in the data set.")
}
