// Quickstart: build a MIPS index over random unit-ball vectors, query
// it, and verify the answer against brute force. This is the smallest
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	ips "repro"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

func main() {
	const n, d = 2000, 32
	rng := xrand.New(42)

	// Data: random vectors in the unit ball; queries: unit vectors, with
	// a few queries given a planted high-inner-product partner.
	P, Q, planted := dataset.Planted(rng, n, 8, d, 0.95, []int{0, 3, 6})

	ix, err := ips.NewMIPSIndex(P, ips.MIPSOptions{K: 6, L: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	for qi, q := range Q {
		got, val := ix.Query(q)
		exact, exactVal := ips.BruteMIPS(P, q, false)
		status := "miss (no strong partner)"
		if got == exact {
			status = "exact argmax"
		} else if got >= 0 {
			status = fmt.Sprintf("approx (%.0f%% of optimum)", 100*val/exactVal)
		}
		tag := ""
		if pi, ok := planted[qi]; ok {
			tag = fmt.Sprintf("  [planted partner %d]", pi)
		}
		fmt.Printf("query %d: lsh=%3d (%.3f)  exact=%3d (%.3f)  %s%s\n",
			qi, got, val, exact, exactVal, status, tag)
	}

	// The same data through the approximate (cs, s) join API.
	sp := ips.Spec{Variant: ips.Signed, S: 0.9, C: 0.5}
	res, err := ips.LSHJoin(P, Q, sp, ips.LSHJoinOptions{K: 6, L: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := ips.CheckGuarantee(P, Q, res, sp); err != nil {
		log.Fatalf("guarantee violated: %v", err)
	}
	fmt.Printf("\n(cs,s)-join: %d matches, %d pairs compared (naive: %d) — guarantee verified\n",
		len(res.Matches), res.Compared, len(P)*len(Q))
}
