package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should give different streams, %d collisions", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	s1again := r.Split(1)
	if s1.Uint64() != s1again.Uint64() {
		t.Fatal("Split must be stable for the same label")
	}
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("different labels should diverge")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
	for i := 0; i < 10000; i++ {
		if r.Float64Open() <= 0 {
			t.Fatal("Float64Open must be strictly positive")
		}
	}
}

func moments(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	m, v := moments(xs)
	if math.Abs(m) > 0.02 {
		t.Fatalf("Normal mean = %v", m)
	}
	if math.Abs(v-1) > 0.03 {
		t.Fatalf("Normal variance = %v", v)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(4)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.Exp()
		if xs[i] < 0 {
			t.Fatal("Exp must be nonnegative")
		}
	}
	m, v := moments(xs)
	if math.Abs(m-1) > 0.02 || math.Abs(v-1) > 0.05 {
		t.Fatalf("Exp mean=%v var=%v, want 1,1", m, v)
	}
}

func TestCauchyMedian(t *testing.T) {
	r := New(5)
	neg := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Cauchy() < 0 {
			neg++
		}
	}
	frac := float64(neg) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Cauchy negative fraction = %v, want ~0.5", frac)
	}
}

func TestStableSpecialCases(t *testing.T) {
	// α=2 is Gaussian scaled by √2: variance 2.
	r := New(6)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.Stable(2)
	}
	_, v := moments(xs)
	if math.Abs(v-2) > 0.1 {
		t.Fatalf("Stable(2) variance = %v, want 2", v)
	}
	// α=1 is Cauchy: symmetric about 0.
	neg := 0
	for i := 0; i < 50000; i++ {
		if r.Stable(1) < 0 {
			neg++
		}
	}
	if f := float64(neg) / 50000; math.Abs(f-0.5) > 0.02 {
		t.Fatalf("Stable(1) negative fraction = %v", f)
	}
}

func TestStableHeavyTail(t *testing.T) {
	// α=0.5 should produce far heavier tails than α=1.5.
	r := New(7)
	big := func(alpha float64) int {
		n := 0
		for i := 0; i < 20000; i++ {
			if math.Abs(r.Stable(alpha)) > 100 {
				n++
			}
		}
		return n
	}
	if b05, b15 := big(0.5), big(1.5); b05 <= b15 {
		t.Fatalf("tail counts alpha=0.5 (%d) should exceed alpha=1.5 (%d)", b05, b15)
	}
}

func TestStablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha out of range")
		}
	}()
	New(1).Stable(2.5)
}

func TestUnitVec(t *testing.T) {
	r := New(8)
	for _, d := range []int{1, 2, 5, 100} {
		v := r.UnitVec(d)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("UnitVec(%d) norm² = %v", d, n)
		}
	}
}

func TestPerm(t *testing.T) {
	r := New(9)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSignBalance(t *testing.T) {
	r := New(10)
	pos := 0
	for i := 0; i < 100000; i++ {
		if r.Sign() == 1 {
			pos++
		}
	}
	if f := float64(pos) / 100000; math.Abs(f-0.5) > 0.01 {
		t.Fatalf("Sign positive fraction = %v", f)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(11)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / 100000; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) fraction = %v", f)
	}
}

func TestZipf(t *testing.T) {
	r := New(12)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Fatalf("Zipf counts not decreasing: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func BenchmarkUint64(b *testing.B) {
	r := New(13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Normal()
	}
}
