// Package xrand provides a deterministic, splittable random number
// generator together with the non-uniform variates needed by the
// IPS-join reproduction: Gaussian, exponential, Cauchy and general
// p-stable samples, random unit vectors and permutations.
//
// Every randomized component in this repository takes an explicit
// 64-bit seed so experiments and tests are exactly reproducible.
// The core generator is xoshiro256** seeded through splitmix64, which
// is small, fast and has no stdlib locking overhead.
package xrand

import (
	"fmt"
	"math"
	"math/bits"
)

// RNG is a deterministic xoshiro256** generator.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the seeding state and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG seeded from the given 64-bit seed.
func New(seed uint64) *RNG {
	var r RNG
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start at the all-zero state; splitmix output of
	// four consecutive values is never all zero, but be defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split returns a new, statistically independent RNG derived from r and
// the given stream label. The parent stream is not advanced, so splits
// are stable under reordering of later draws.
func (r *RNG) Split(label uint64) *RNG {
	x := r.s[0] ^ bits.RotateLeft64(r.s[2], 17) ^ (label * 0xd1342543de82ef95)
	return New(splitmix64(&x))
}

// Uint64 returns the next 64 uniform random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Intn bound %d must be positive", n))
	}
	// Lemire's nearly-divisionless rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := bits.Mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero,
// suitable for logs and inverse-CDF sampling.
func (r *RNG) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Normal returns a standard Gaussian N(0,1) variate (Box–Muller,
// polar-free form; one value per call for simplicity and determinism).
func (r *RNG) Normal() float64 {
	u1 := r.Float64Open()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns a standard exponential Exp(1) variate.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Cauchy returns a standard Cauchy variate (1-stable distribution).
func (r *RNG) Cauchy() float64 {
	return math.Tan(math.Pi * (r.Float64Open() - 0.5))
}

// Stable returns a sample from a symmetric α-stable distribution with
// the Chambers–Mallows–Stuck method, for α ∈ (0, 2]. α = 2 gives a
// Gaussian (scaled by √2), α = 1 a Cauchy.
func (r *RNG) Stable(alpha float64) float64 {
	if alpha <= 0 || alpha > 2 {
		panic(fmt.Sprintf("xrand: Stable alpha %v out of (0,2]", alpha))
	}
	if alpha == 2 {
		return math.Sqrt2 * r.Normal()
	}
	if alpha == 1 {
		return r.Cauchy()
	}
	u := math.Pi * (r.Float64Open() - 0.5)
	w := r.Exp()
	return math.Sin(alpha*u) / math.Pow(math.Cos(u), 1/alpha) *
		math.Pow(math.Cos(u*(1-alpha))/w, (1-alpha)/alpha)
}

// NormalVec fills a fresh d-dimensional vector with iid N(0,1) entries.
func (r *RNG) NormalVec(d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = r.Normal()
	}
	return v
}

// UnitVec returns a uniform random point on the (d−1)-sphere.
func (r *RNG) UnitVec(d int) []float64 {
	for {
		v := r.NormalVec(d)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if n == 0 {
			continue
		}
		n = math.Sqrt(n)
		for i := range v {
			v[i] /= n
		}
		return v
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Sign returns +1 or −1 with equal probability.
func (r *RNG) Sign() int {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Zipf returns a sample from a Zipf distribution on {0, …, n−1} with
// exponent a > 0, via inverse-CDF on precomputed weights held by the
// ZipfGen helper. For one-off draws use NewZipf.
type ZipfGen struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf(a) sampler over {0, …, n−1}. Panics if n <= 0 or
// a <= 0.
func NewZipf(r *RNG, n int, a float64) *ZipfGen {
	if n <= 0 || a <= 0 {
		panic(fmt.Sprintf("xrand: NewZipf invalid n=%d a=%v", n, a))
	}
	cdf := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -a)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &ZipfGen{cdf: cdf, rng: r}
}

// Draw returns the next Zipf sample.
func (z *ZipfGen) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
