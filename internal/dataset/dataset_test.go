package dataset

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestGaussianShape(t *testing.T) {
	rng := xrand.New(1)
	vs := Gaussian(rng, 50, 8, false)
	if len(vs) != 50 || len(vs[0]) != 8 {
		t.Fatalf("shape %dx%d", len(vs), len(vs[0]))
	}
	norm := Gaussian(rng, 20, 8, true)
	for _, v := range norm {
		if math.Abs(vec.Norm(v)-1) > 1e-9 {
			t.Fatalf("normalized vector has norm %v", vec.Norm(v))
		}
	}
}

func TestUnitBall(t *testing.T) {
	rng := xrand.New(2)
	vs := UnitBall(rng, 200, 5)
	for _, v := range vs {
		if vec.Norm(v) > 1+1e-12 {
			t.Fatalf("ball vector has norm %v", vec.Norm(v))
		}
	}
	// Uniform ball mass concentrates near the boundary.
	inner := 0
	for _, v := range vs {
		if vec.Norm(v) < 0.5 {
			inner++
		}
	}
	if frac := float64(inner) / 200; frac > 0.15 { // (1/2)^5 ≈ 3% expected
		t.Fatalf("too much mass near the centre: %v", frac)
	}
}

func TestLatentFactorSkew(t *testing.T) {
	rng := xrand.New(3)
	lf := NewLatentFactor(rng, 300, 50, 16, 0.8)
	if len(lf.Items) != 300 || len(lf.Users) != 50 {
		t.Fatal("shape")
	}
	norms := make([]float64, len(lf.Items))
	for i, v := range lf.Items {
		norms[i] = vec.Norm(v)
	}
	minN, maxN := norms[0], norms[0]
	for _, n := range norms {
		minN = math.Min(minN, n)
		maxN = math.Max(maxN, n)
	}
	if maxN/minN < 3 {
		t.Fatalf("expected skewed norms, ratio %v", maxN/minN)
	}
	if math.Abs(lf.MaxItemNorm-maxN) > 1e-12 {
		t.Fatalf("MaxItemNorm %v != %v", lf.MaxItemNorm, maxN)
	}
}

func TestLatentFactorNoSkew(t *testing.T) {
	rng := xrand.New(4)
	lf := NewLatentFactor(rng, 100, 10, 16, 0)
	var lo, hi float64 = math.Inf(1), 0
	for _, v := range lf.Items {
		n := vec.Norm(v)
		lo, hi = math.Min(lo, n), math.Max(hi, n)
	}
	if hi/lo > 3 {
		t.Fatalf("sigma=0 should give mild norm spread, got %v", hi/lo)
	}
}

func TestScaleItemsToUnitBall(t *testing.T) {
	rng := xrand.New(5)
	lf := NewLatentFactor(rng, 50, 5, 8, 1.0)
	scale := lf.ScaleItemsToUnitBall()
	if scale <= 0 {
		t.Fatalf("scale %v", scale)
	}
	if MaxNorm(lf.Items) > 1+1e-9 {
		t.Fatalf("items not in unit ball: %v", MaxNorm(lf.Items))
	}
}

func TestBinarySets(t *testing.T) {
	rng := xrand.New(6)
	vs := BinarySets(rng, 100, 64, 8, 1.0)
	popularity := make([]int, 64)
	for _, v := range vs {
		size := 0
		for e, x := range v {
			if x == 1 {
				size++
				popularity[e]++
			} else if x != 0 {
				t.Fatalf("non-binary entry %v", x)
			}
		}
		if size == 0 || size > 16 {
			t.Fatalf("set size %d out of expected range", size)
		}
	}
	// Zipf: element 0 must be much more popular than element 50.
	if popularity[0] <= popularity[50] {
		t.Fatalf("no popularity skew: %d vs %d", popularity[0], popularity[50])
	}
}

func TestBinarySetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BinarySets(xrand.New(1), 10, 8, 9, 1)
}

func TestPlanted(t *testing.T) {
	rng := xrand.New(7)
	hot := []int{1, 4}
	P, Q, at := Planted(rng, 30, 10, 12, 0.9, hot)
	for _, qi := range hot {
		pi, ok := at[qi]
		if !ok {
			t.Fatalf("query %d not planted", qi)
		}
		if got := vec.Dot(P[pi], Q[qi]); math.Abs(got-0.9) > 1e-9 {
			t.Fatalf("planted inner product %v", got)
		}
	}
	// Non-hot queries should have no strong partner.
	for qi := range Q {
		if _, hotq := at[qi]; hotq {
			continue
		}
		for pi := range P {
			if _, isPlanted := at[qi]; !isPlanted {
				if v := vec.AbsDot(P[pi], Q[qi]); v > 0.95 {
					t.Fatalf("unexpected strong pair (%d,%d): %v", pi, qi, v)
				}
			}
		}
	}
}

func TestPlantedPanicsOnBadHot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Planted(xrand.New(1), 5, 5, 4, 0.9, []int{7})
}

func TestMaxNorm(t *testing.T) {
	if got := MaxNorm([]vec.Vector{{3, 4}, {1, 0}}); got != 5 {
		t.Fatalf("MaxNorm = %v", got)
	}
	if got := MaxNorm(nil); got != 0 {
		t.Fatalf("MaxNorm(nil) = %v", got)
	}
}
