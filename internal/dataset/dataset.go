// Package dataset generates the synthetic workloads used across the
// reproduction's examples and benchmarks: Gaussian clouds, latent-factor
// recommender vectors (the Teflioudi et al. motivation in the paper's
// introduction), binary set data with skewed popularity, and
// planted-pair instances with controlled inner products.
package dataset

import (
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Gaussian returns n iid standard Gaussian vectors in R^d, optionally
// normalized to the unit sphere.
func Gaussian(rng *xrand.RNG, n, d int, normalize bool) []vec.Vector {
	validateShape(n, d)
	out := make([]vec.Vector, n)
	for i := range out {
		v := vec.Vector(rng.NormalVec(d))
		if normalize {
			vec.Normalize(v)
		}
		out[i] = v
	}
	return out
}

// UnitBall returns n vectors uniform in the d-dimensional unit ball.
func UnitBall(rng *xrand.RNG, n, d int) []vec.Vector {
	validateShape(n, d)
	out := make([]vec.Vector, n)
	for i := range out {
		v := vec.Vector(rng.UnitVec(d))
		vec.Scale(v, math.Pow(rng.Float64(), 1/float64(d)))
		out[i] = v
	}
	return out
}

// LatentFactor models a matrix-factorisation recommender: item vectors
// are Gaussian factors scaled by a popularity weight with lognormal
// skew, and user (query) vectors are Gaussian factors. This produces
// the unnormalised, wildly-varying-norm data that makes plain cosine
// methods fail on MIPS — the paper's motivating regime.
type LatentFactor struct {
	// Items are the data vectors P, Users the query vectors Q.
	Items, Users []vec.Vector
	// MaxItemNorm is the largest ‖item‖, the U/M bound for reductions.
	MaxItemNorm float64
}

// NewLatentFactor generates a latent-factor workload with the given
// numbers of items/users, rank d and popularity skew sigma (stddev of
// the lognormal norm multiplier; 0 disables skew).
func NewLatentFactor(rng *xrand.RNG, items, users, d int, sigma float64) *LatentFactor {
	validateShape(items, d)
	validateShape(users, d)
	if sigma < 0 {
		panic(fmt.Sprintf("dataset: negative sigma %v", sigma))
	}
	lf := &LatentFactor{
		Items: make([]vec.Vector, items),
		Users: make([]vec.Vector, users),
	}
	inv := 1 / math.Sqrt(float64(d))
	for i := range lf.Items {
		v := vec.Vector(rng.NormalVec(d))
		vec.Scale(v, inv*math.Exp(sigma*rng.Normal()))
		lf.Items[i] = v
		if n := vec.Norm(v); n > lf.MaxItemNorm {
			lf.MaxItemNorm = n
		}
	}
	for i := range lf.Users {
		v := vec.Vector(rng.NormalVec(d))
		vec.Scale(v, inv)
		lf.Users[i] = v
	}
	return lf
}

// ScaleItemsToUnitBall rescales all item vectors by 1/MaxItemNorm so
// they fit the paper's unit-ball data domain, returning the scale used.
// Inner products scale by the same factor.
func (lf *LatentFactor) ScaleItemsToUnitBall() float64 {
	if lf.MaxItemNorm == 0 {
		return 1
	}
	scale := 1 / lf.MaxItemNorm
	for _, v := range lf.Items {
		vec.Scale(v, scale)
	}
	lf.MaxItemNorm = 1
	return scale
}

// BinarySets generates n binary vectors over a universe of size d where
// element popularity follows Zipf(a) and each set has the given average
// size. Sets are returned as 0/1 float vectors, ready for the MinHash
// families.
func BinarySets(rng *xrand.RNG, n, d, avgSize int, zipfA float64) []vec.Vector {
	validateShape(n, d)
	if avgSize <= 0 || avgSize > d {
		panic(fmt.Sprintf("dataset: avgSize %d out of (0, %d]", avgSize, d))
	}
	z := xrand.NewZipf(rng, d, zipfA)
	out := make([]vec.Vector, n)
	for i := range out {
		v := vec.New(d)
		size := 1 + rng.Intn(2*avgSize-1) // mean ≈ avgSize
		for filled := 0; filled < size; {
			e := z.Draw()
			if v[e] == 0 {
				v[e] = 1
				filled++
			}
		}
		out[i] = v
	}
	return out
}

// Planted plants, for each listed query index, a data vector achieving
// inner product ≈ target with that query; all other products stay weak.
// Returns the data, queries, and the planted data index per query.
func Planted(rng *xrand.RNG, nP, nQ, d int, target float64, hotQueries []int) (P, Q []vec.Vector, plantedAt map[int]int) {
	validateShape(nP, d)
	validateShape(nQ, d)
	P = make([]vec.Vector, nP)
	for i := range P {
		P[i] = vec.Scaled(vec.Vector(rng.UnitVec(d)), 0.3)
	}
	Q = make([]vec.Vector, nQ)
	for i := range Q {
		Q[i] = vec.Vector(rng.UnitVec(d))
	}
	plantedAt = make(map[int]int, len(hotQueries))
	for hi, qi := range hotQueries {
		if qi < 0 || qi >= nQ {
			panic(fmt.Sprintf("dataset: hot query %d out of range", qi))
		}
		pi := hi % nP
		P[pi] = vec.Scaled(Q[qi].Clone(), target)
		plantedAt[qi] = pi
	}
	return P, Q, plantedAt
}

// MaxNorm returns the largest Euclidean norm in the set.
func MaxNorm(vs []vec.Vector) float64 {
	var m float64
	for _, v := range vs {
		if n := vec.Norm(v); n > m {
			m = n
		}
	}
	return m
}

func validateShape(n, d int) {
	if n <= 0 || d <= 0 {
		panic(fmt.Sprintf("dataset: invalid shape n=%d d=%d", n, d))
	}
}
