// Package core is the problem layer of the reproduction: it encodes the
// paper's Definition 1 — approximate signed and unsigned (cs, s) IPS
// join — as checkable specifications, and wires the substrate engines
// (exact scan, LSH index, linear sketch) behind a common interface with
// guarantee verification.
package core

import (
	"fmt"

	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/vec"
)

// Variant distinguishes the signed and unsigned problems.
type Variant int

const (
	// Signed thresholds the inner product pᵀq.
	Signed Variant = iota
	// Unsigned thresholds |pᵀq|.
	Unsigned
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Signed:
		return "signed"
	case Unsigned:
		return "unsigned"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Spec is a (cs, s) join specification per Definition 1: report, for
// each q with some pᵀq ≥ S, at least one pair at ≥ C·S.
type Spec struct {
	Variant Variant
	// S is the promise threshold, C ∈ (0, 1] the approximation factor.
	S, C float64
}

// Validate checks the specification parameters.
func (sp Spec) Validate() error {
	if sp.Variant != Signed && sp.Variant != Unsigned {
		return fmt.Errorf("core: unknown variant %d", int(sp.Variant))
	}
	if sp.S <= 0 {
		return fmt.Errorf("core: threshold s=%v must be positive", sp.S)
	}
	if sp.C <= 0 || sp.C > 1 {
		return fmt.Errorf("core: approximation c=%v out of (0,1]", sp.C)
	}
	return nil
}

// CS returns the acceptance threshold c·s.
func (sp Spec) CS() float64 { return sp.C * sp.S }

// Engine is a join algorithm over row-slice operands. It is the
// problem-layer adapter: every implementation packs its operands into
// columnar flat stores and runs a join.Engine, so the []vec.Vector
// surface stays stable while all scanning happens on the flat layout.
type Engine interface {
	Name() string
	Join(P, Q []vec.Vector, sp Spec) (join.Result, error)
}

// runFlat validates the spec and runs the given flat engine over
// row-slice operands through the join package's shared adapter (empty
// operands yield an empty result, mirroring the historical naive scan
// behaviour).
func runFlat(e join.Engine, P, Q []vec.Vector, sp Spec, s, cs float64) (join.Result, error) {
	if err := sp.Validate(); err != nil {
		return join.Result{}, err
	}
	return join.JoinVectors(e, P, Q, s, cs, join.Opts{Unsigned: sp.Variant == Unsigned})
}

// Exact is the brute-force engine; it solves the exact problem (c = 1
// behaviour — acceptance at s itself) and serves as ground truth. It
// runs the blocked tiled kernel, which is bit-identical to the naive
// row-slice reference.
type Exact struct{}

// Name implements Engine.
func (Exact) Name() string { return "exact" }

// Join implements Engine.
func (Exact) Join(P, Q []vec.Vector, sp Spec) (join.Result, error) {
	return runFlat(join.Tiled{}, P, Q, sp, sp.S, sp.S)
}

// LSH is the banding-index engine over a caller-chosen family.
type LSH struct {
	// NewFamily builds the hash family for input dimension d.
	NewFamily func(d int) (lsh.Family, error)
	K, L      int
	Seed      uint64
}

// Name implements Engine.
func (LSH) Name() string { return "lsh" }

// Join implements Engine.
func (e LSH) Join(P, Q []vec.Vector, sp Spec) (join.Result, error) {
	if err := sp.Validate(); err != nil {
		return join.Result{}, err
	}
	if len(P) == 0 || len(Q) == 0 {
		return join.Result{}, fmt.Errorf("core: empty input")
	}
	if e.NewFamily == nil {
		return join.Result{}, fmt.Errorf("core: LSH engine needs NewFamily")
	}
	eng := join.LSH{NewFamily: e.NewFamily, K: e.K, L: e.L, Seed: e.Seed}
	return runFlat(eng, P, Q, sp, sp.S, sp.CS())
}

// Sketch is the §4.3 linear-sketch engine (unsigned only).
type Sketch struct {
	Kappa  float64
	Copies int
	Seed   uint64
}

// Name implements Engine.
func (Sketch) Name() string { return "sketch" }

// Join implements Engine.
func (e Sketch) Join(P, Q []vec.Vector, sp Spec) (join.Result, error) {
	if err := sp.Validate(); err != nil {
		return join.Result{}, err
	}
	if sp.Variant != Unsigned {
		return join.Result{}, fmt.Errorf("core: sketch engine supports unsigned joins only")
	}
	eng := join.Sketch{Kappa: e.Kappa, Copies: e.Copies, Seed: e.Seed}
	return runFlat(eng, P, Q, sp, sp.S, sp.CS())
}

// CheckGuarantee verifies a result against Definition 1 by brute force:
// every query with a partner at ≥ s must have a reported pair whose
// true inner product (per the variant) is ≥ c·s, and every reported
// pair must actually clear c·s. Returns nil when the guarantee holds.
func CheckGuarantee(P, Q []vec.Vector, res join.Result, sp Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	value := func(p, q vec.Vector) float64 {
		if sp.Variant == Signed {
			return vec.Dot(p, q)
		}
		return vec.AbsDot(p, q)
	}
	reported := make(map[int]join.Match, len(res.Matches))
	for _, m := range res.Matches {
		if m.PIdx < 0 || m.PIdx >= len(P) || m.QIdx < 0 || m.QIdx >= len(Q) {
			return fmt.Errorf("core: match %+v out of range", m)
		}
		if v := value(P[m.PIdx], Q[m.QIdx]); v < sp.CS()-1e-12 {
			return fmt.Errorf("core: reported pair (%d,%d) has value %v < cs %v",
				m.PIdx, m.QIdx, v, sp.CS())
		}
		reported[m.QIdx] = m
	}
	for qi, q := range Q {
		promised := false
		for _, p := range P {
			if value(p, q) >= sp.S {
				promised = true
				break
			}
		}
		if promised {
			if _, ok := reported[qi]; !ok {
				return fmt.Errorf("core: query %d has a partner at >= s=%v but no reported pair",
					qi, sp.S)
			}
		}
	}
	return nil
}
