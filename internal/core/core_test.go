package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestSpecValidate(t *testing.T) {
	ok := Spec{Variant: Signed, S: 0.5, C: 0.5}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Variant: Variant(9), S: 1, C: 0.5},
		{Variant: Signed, S: 0, C: 0.5},
		{Variant: Signed, S: 1, C: 0},
		{Variant: Signed, S: 1, C: 1.5},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
	if ok.CS() != 0.25 {
		t.Fatalf("CS = %v", ok.CS())
	}
}

func TestVariantString(t *testing.T) {
	if Signed.String() != "signed" || Unsigned.String() != "unsigned" {
		t.Fatal("strings")
	}
	if !strings.Contains(Variant(7).String(), "7") {
		t.Fatal("unknown variant string")
	}
}

func TestExactEngineGuarantee(t *testing.T) {
	rng := xrand.New(1)
	P, Q, _ := dataset.Planted(rng, 50, 10, 8, 0.9, []int{0, 5})
	sp := Spec{Variant: Signed, S: 0.8, C: 0.5}
	res, err := Exact{}.Join(P, Q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGuarantee(P, Q, res, sp); err != nil {
		t.Fatal(err)
	}
}

func TestLSHEngineGuarantee(t *testing.T) {
	rng := xrand.New(2)
	P, Q, _ := dataset.Planted(rng, 100, 10, 16, 0.95, []int{1, 4, 8})
	sp := Spec{Variant: Signed, S: 0.9, C: 0.5}
	e := LSH{
		NewFamily: func(d int) (lsh.Family, error) { return lsh.NewHyperplane(d) },
		K:         6, L: 32, Seed: 3,
	}
	res, err := e.Join(P, Q, sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGuarantee(P, Q, res, sp); err != nil {
		t.Fatal(err)
	}
	if res.Compared >= int64(len(P)*len(Q)) {
		t.Fatal("LSH engine did quadratic work")
	}
}

func TestSketchEngineUnsignedOnly(t *testing.T) {
	rng := xrand.New(4)
	P, Q, _ := dataset.Planted(rng, 64, 4, 8, 0.95, []int{1})
	e := Sketch{Kappa: 3, Copies: 9, Seed: 5}
	if _, err := e.Join(P, Q, Spec{Variant: Signed, S: 0.9, C: 0.5}); err == nil {
		t.Fatal("signed sketch join must fail")
	}
	sp := Spec{Variant: Unsigned, S: 0.9, C: 0.25}
	res, err := e.Join(P, Q, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Reported pairs must be valid; full recall is probabilistic but the
	// planted pair is overwhelming here.
	if err := CheckGuarantee(P, Q, res, sp); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGuaranteeCatchesMissing(t *testing.T) {
	P := []vec.Vector{{1, 0}}
	Q := []vec.Vector{{1, 0}}
	sp := Spec{Variant: Signed, S: 0.5, C: 0.5}
	if err := CheckGuarantee(P, Q, join.Result{}, sp); err == nil {
		t.Fatal("missing pair must be caught")
	}
}

func TestCheckGuaranteeCatchesBadPair(t *testing.T) {
	P := []vec.Vector{{1, 0}, {0, 1}}
	Q := []vec.Vector{{1, 0}}
	sp := Spec{Variant: Signed, S: 0.5, C: 0.5}
	// Claiming the orthogonal vector satisfies the query is a lie.
	res := join.Result{Matches: []join.Match{{QIdx: 0, PIdx: 1, Value: 0.9}}}
	if err := CheckGuarantee(P, Q, res, sp); err == nil {
		t.Fatal("bad pair must be caught")
	}
	oob := join.Result{Matches: []join.Match{{QIdx: 0, PIdx: 5}}}
	if err := CheckGuarantee(P, Q, oob, sp); err == nil {
		t.Fatal("out-of-range pair must be caught")
	}
}

func TestEngineNames(t *testing.T) {
	if (Exact{}).Name() != "exact" || (LSH{}).Name() != "lsh" || (Sketch{}).Name() != "sketch" {
		t.Fatal("engine names")
	}
}

func TestLSHEngineValidation(t *testing.T) {
	sp := Spec{Variant: Signed, S: 1, C: 0.5}
	if _, err := (LSH{}).Join(nil, nil, sp); err == nil {
		t.Fatal("empty input must fail")
	}
	P := []vec.Vector{{1}}
	if _, err := (LSH{K: 1, L: 1}).Join(P, P, sp); err == nil {
		t.Fatal("missing NewFamily must fail")
	}
}
