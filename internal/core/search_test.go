package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func searchWorkload(seed uint64) (P, Q []vec.Vector) {
	rng := xrand.New(seed)
	P, Q, _ = dataset.Planted(rng, 200, 20, 16, 0.95, []int{0, 5, 10, 15})
	return P, Q
}

func TestExactSearchGuarantee(t *testing.T) {
	P, Q := searchWorkload(1)
	s, err := ExactSearch{}.Build(P)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Variant: Signed, S: 0.9, C: 0.5}
	frac, err := CheckSearchGuarantee(P, Q, s, sp)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Fatalf("exact search answered %v of promised queries", frac)
	}
}

func TestALSHSearchGuarantee(t *testing.T) {
	P, Q := searchWorkload(2)
	s, err := ALSHSearch{K: 6, L: 32, Seed: 3}.Build(P)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Variant: Signed, S: 0.9, C: 0.5}
	frac, err := CheckSearchGuarantee(P, Q, s, sp)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.99 {
		t.Fatalf("ALSH search answered only %v of promised queries", frac)
	}
}

func TestALSHSearchUnsignedNegativePartner(t *testing.T) {
	P, Q := searchWorkload(4)
	P[42] = vec.Scaled(Q[3].Clone(), -0.97)
	s, err := ALSHSearch{K: 6, L: 32, Seed: 5}.Build(P)
	if err != nil {
		t.Fatal(err)
	}
	sp := Spec{Variant: Unsigned, S: 0.9, C: 0.5}
	idx, val, ok := s.Search(Q[3], sp)
	if !ok || idx != 42 {
		t.Fatalf("unsigned ALSH search = (%d, %v, %v), want planted 42", idx, val, ok)
	}
}

func TestSketchSearch(t *testing.T) {
	P, Q := searchWorkload(6)
	b := SketchSearch{Kappa: 3, Copies: 9, Seed: 7}
	s, err := b.Build(P)
	if err != nil {
		t.Fatal(err)
	}
	// Weak approximation per the paper: accept c = n^{−1/κ}.
	sp := Spec{Variant: Unsigned, S: 0.9, C: 0.1}
	frac, err := CheckSearchGuarantee(P, Q, s, sp)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.7 {
		t.Fatalf("sketch search answered only %v of promised queries", frac)
	}
	// Signed searches are refused (contract is unsigned-only).
	if _, _, ok := s.Search(Q[0], Spec{Variant: Signed, S: 0.9, C: 0.1}); ok {
		t.Fatal("sketch searcher must refuse signed specs")
	}
}

func TestCheckSearchGuaranteeCatchesLies(t *testing.T) {
	P := []vec.Vector{{1, 0}, {0, 1}}
	Q := []vec.Vector{{1, 0}}
	sp := Spec{Variant: Signed, S: 0.5, C: 0.5}
	if _, err := CheckSearchGuarantee(P, Q, lyingSearcher{idx: 1, val: 0.9}, sp); err == nil {
		t.Fatal("below-threshold answer must be caught")
	}
	if _, err := CheckSearchGuarantee(P, Q, lyingSearcher{idx: 7, val: 0.9}, sp); err == nil {
		t.Fatal("out-of-range index must be caught")
	}
	if _, err := CheckSearchGuarantee(P, Q, lyingSearcher{idx: 0, val: 0.2}, sp); err == nil {
		t.Fatal("misreported value must be caught")
	}
}

type lyingSearcher struct {
	idx int
	val float64
}

func (l lyingSearcher) Search(q vec.Vector, sp Spec) (int, float64, bool) {
	return l.idx, l.val, true
}

func TestSearchBuilderNames(t *testing.T) {
	if (ExactSearch{}).Name() != "exact-search" ||
		(ALSHSearch{}).Name() != "alsh-search" ||
		(SketchSearch{}).Name() != "sketch-search" {
		t.Fatal("names")
	}
}

func TestSearchBuildersRejectEmpty(t *testing.T) {
	if _, err := (ExactSearch{}).Build(nil); err == nil {
		t.Fatal("exact must reject empty")
	}
	if _, err := (ALSHSearch{}).Build(nil); err == nil {
		t.Fatal("alsh must reject empty")
	}
	if _, err := (SketchSearch{Kappa: 3, Copies: 3}).Build(nil); err == nil {
		t.Fatal("sketch must reject empty")
	}
}
