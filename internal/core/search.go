package core

import (
	"fmt"

	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/transform"
	"repro/internal/vec"
)

// This file implements the *indexing* version of the problem, as the
// paper defines it: "the signed (cs, s) search is defined as follows:
// given a set P ⊂ R^d of n vectors, construct a data structure that
// efficiently returns a vector p ∈ P such that pᵀq > cs for any given
// query vector q, under the promise that there is a point p′ ∈ P such
// that p′ᵀq ≥ s" (and the unsigned analogue with absolute values).

// Searcher is a built (cs, s) search structure for a fixed data set.
type Searcher interface {
	// Search returns (index, value, true) when a point clearing c·s is
	// found; (−1, best-seen, false) otherwise. Implementations verify the
	// returned value exactly against the raw data.
	Search(q vec.Vector, sp Spec) (int, float64, bool)
}

// SearchBuilder constructs a Searcher over a data set.
type SearchBuilder interface {
	Name() string
	Build(P []vec.Vector) (Searcher, error)
}

// ExactSearch scans linearly — the ground-truth searcher.
type ExactSearch struct{}

// Name implements SearchBuilder.
func (ExactSearch) Name() string { return "exact-search" }

type exactSearcher struct{ data []vec.Vector }

// Build implements SearchBuilder.
func (ExactSearch) Build(P []vec.Vector) (Searcher, error) {
	if len(P) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	return exactSearcher{data: P}, nil
}

func (es exactSearcher) Search(q vec.Vector, sp Spec) (int, float64, bool) {
	best, bv := -1, 0.0
	for i, p := range es.data {
		v := vec.Dot(p, q)
		if sp.Variant == Unsigned && v < 0 {
			v = -v
		}
		if best == -1 || v > bv {
			best, bv = i, v
		}
	}
	if best >= 0 && bv >= sp.CS() {
		return best, bv, true
	}
	return -1, bv, false
}

// ALSHSearch builds the §4.1 structure: SIMPLE map + hyperplane
// banding index over the unit sphere.
type ALSHSearch struct {
	// U is the query ball radius; K, L the banding shape.
	U    float64
	K, L int
	Seed uint64
}

// Name implements SearchBuilder.
func (ALSHSearch) Name() string { return "alsh-search" }

type alshSearcher struct {
	data []vec.Vector
	ix   *lsh.Index
	u    float64
}

// Build implements SearchBuilder.
func (b ALSHSearch) Build(P []vec.Vector) (Searcher, error) {
	if len(P) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	u := b.U
	if u == 0 {
		u = 1
	}
	k, l := b.K, b.L
	if k == 0 {
		k = 8
	}
	if l == 0 {
		l = 16
	}
	tr, err := transform.NewSimple(len(P[0]), u)
	if err != nil {
		return nil, err
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	fam, err := lsh.NewAsymmetric("simple-alsh",
		lsh.MapPair{Data: tr.Data, Query: tr.Query}, inner)
	if err != nil {
		return nil, err
	}
	ix, err := lsh.NewIndex(fam, k, l, b.Seed)
	if err != nil {
		return nil, err
	}
	ix.InsertAll(P)
	return alshSearcher{data: P, ix: ix, u: u}, nil
}

func (as alshSearcher) Search(q vec.Vector, sp Spec) (int, float64, bool) {
	probe := q
	if n := vec.Norm(q); n > as.u {
		probe = vec.Scaled(q, (1-1e-12)*as.u/n)
	}
	score := func(p vec.Vector) float64 {
		v := vec.Dot(p, q)
		if sp.Variant == Unsigned && v < 0 {
			v = -v
		}
		return v
	}
	best, bv := as.ix.Query(probe, score)
	if sp.Variant == Unsigned {
		// Probe the negated query too (the paper's unsigned reduction).
		if b2, v2 := as.ix.Query(vec.Neg(probe), score); b2 >= 0 && (best < 0 || v2 > bv) {
			best, bv = b2, v2
		}
	}
	if best >= 0 && bv >= sp.CS() {
		return best, bv, true
	}
	return -1, bv, false
}

// SketchSearch builds the §4.3 trie structure (unsigned only).
type SketchSearch struct {
	Kappa  float64
	Copies int
	Seed   uint64
}

// Name implements SearchBuilder.
func (SketchSearch) Name() string { return "sketch-search" }

type sketchSearcher struct{ rec *sketch.Recoverer }

// Build implements SearchBuilder.
func (b SketchSearch) Build(P []vec.Vector) (Searcher, error) {
	rec, err := sketch.NewRecoverer(P, b.Kappa, b.Copies, b.Seed)
	if err != nil {
		return nil, err
	}
	return sketchSearcher{rec: rec}, nil
}

func (ss sketchSearcher) Search(q vec.Vector, sp Spec) (int, float64, bool) {
	if sp.Variant != Unsigned {
		return -1, 0, false
	}
	idx, v := ss.rec.Query(q)
	if v >= sp.CS() {
		return idx, v, true
	}
	return -1, v, false
}

// CheckSearchGuarantee verifies a searcher against the promise
// semantics over a query workload: for every q whose true optimum
// clears s, the searcher must return a point clearing c·s, and every
// returned point must genuinely clear c·s. It returns the fraction of
// promised queries answered (1.0 = guarantee fully met) and an error
// for any *incorrect* (as opposed to missing) answer.
func CheckSearchGuarantee(P []vec.Vector, queries []vec.Vector, s Searcher, sp Spec) (float64, error) {
	if err := sp.Validate(); err != nil {
		return 0, err
	}
	promised, answered := 0, 0
	for qi, q := range queries {
		bestIdx, bestVal := -1, 0.0
		for i, p := range P {
			v := vec.Dot(p, q)
			if sp.Variant == Unsigned && v < 0 {
				v = -v
			}
			if bestIdx == -1 || v > bestVal {
				bestIdx, bestVal = i, v
			}
		}
		idx, val, ok := s.Search(q, sp)
		if ok {
			if idx < 0 || idx >= len(P) {
				return 0, fmt.Errorf("core: query %d: returned index %d out of range", qi, idx)
			}
			true2 := vec.Dot(P[idx], q)
			if sp.Variant == Unsigned && true2 < 0 {
				true2 = -true2
			}
			if true2 < sp.CS()-1e-12 {
				return 0, fmt.Errorf("core: query %d: returned point at %v < cs %v", qi, true2, sp.CS())
			}
			if diff := val - true2; diff > 1e-9 || diff < -1e-9 {
				return 0, fmt.Errorf("core: query %d: reported value %v != actual %v", qi, val, true2)
			}
		}
		if bestVal >= sp.S {
			promised++
			if ok {
				answered++
			}
		}
	}
	if promised == 0 {
		return 1, nil
	}
	return float64(answered) / float64(promised), nil
}
