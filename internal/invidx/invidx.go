// Package invidx implements the classic database-side exact technique
// for the paper's {0,1} domain: an inverted index with prefix filtering
// (Chaudhuri–Ganti–Kaushik; Bayardo–Ma–Srikant — the similarity-join
// line of work the paper's introduction builds on). For a fixed overlap
// threshold t, a pair of sets with |x ∩ y| ≥ t must share an element
// among their "prefixes" — the first |·|−t+1 elements in a global
// rarest-first ordering — so indexing only prefixes prunes the
// candidate space while remaining exact.
package invidx

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Match is a reported (data id, overlap) pair.
type Match struct {
	ID      int
	Overlap int
}

// OverlapJoin answers exact overlap-threshold queries (unsigned IPS
// join over {0,1}: |xᵀy| = |x ∩ y| ≥ t).
type OverlapJoin struct {
	T int
	// rank orders universe elements rarest-first.
	rank []int
	// byRank[i] is data set i's elements sorted by increasing rank.
	byRank [][]int32
	// lists[e] holds the ids whose prefix contains element e.
	lists map[int32][]int32
	data  []*bitvec.Bits
}

// NewOverlapJoin indexes the data sets for threshold t ≥ 1. Sets
// smaller than t index nothing (they can never qualify).
func NewOverlapJoin(data []*bitvec.Bits, t int) (*OverlapJoin, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("invidx: empty data set")
	}
	if t < 1 {
		return nil, fmt.Errorf("invidx: threshold %d must be >= 1", t)
	}
	d := data[0].N
	for i, x := range data {
		if x.N != d {
			return nil, fmt.Errorf("invidx: row %d has dimension %d, want %d", i, x.N, d)
		}
	}
	// Document frequencies → rarest-first ranking.
	df := make([]int, d)
	for _, x := range data {
		for e := 0; e < d; e++ {
			if x.Bit(e) == 1 {
				df[e]++
			}
		}
	}
	byFreq := make([]int, d)
	for i := range byFreq {
		byFreq[i] = i
	}
	sort.SliceStable(byFreq, func(a, b int) bool { return df[byFreq[a]] < df[byFreq[b]] })
	rank := make([]int, d)
	for r, e := range byFreq {
		rank[e] = r
	}
	oj := &OverlapJoin{T: t, rank: rank, lists: make(map[int32][]int32), data: data}
	oj.byRank = make([][]int32, len(data))
	for i, x := range data {
		elems := rankedElements(x, rank)
		oj.byRank[i] = elems
		// Prefix of length |x| − t + 1 (empty when |x| < t).
		plen := len(elems) - t + 1
		for j := 0; j < plen; j++ {
			e := elems[j]
			oj.lists[e] = append(oj.lists[e], int32(i))
		}
	}
	return oj, nil
}

// rankedElements lists x's elements sorted by increasing global rank.
func rankedElements(x *bitvec.Bits, rank []int) []int32 {
	var elems []int32
	for e := 0; e < x.N; e++ {
		if x.Bit(e) == 1 {
			elems = append(elems, int32(e))
		}
	}
	sort.Slice(elems, func(a, b int) bool { return rank[elems[a]] < rank[elems[b]] })
	return elems
}

// Query returns every data set with |x ∩ q| ≥ t (verified exactly) and
// the number of candidate verifications performed.
func (oj *OverlapJoin) Query(q *bitvec.Bits) ([]Match, int) {
	if q.N != oj.data[0].N {
		panic(fmt.Sprintf("invidx: query dimension %d != %d", q.N, oj.data[0].N))
	}
	elems := rankedElements(q, oj.rank)
	if len(elems) < oj.T {
		return nil, 0 // the query itself is too small to qualify
	}
	plen := len(elems) - oj.T + 1
	seen := make(map[int32]struct{})
	var out []Match
	work := 0
	for j := 0; j < plen; j++ {
		for _, id := range oj.lists[elems[j]] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			work++
			if ov := bitvec.DotBits(oj.data[id], q); ov >= oj.T {
				out = append(out, Match{ID: int(id), Overlap: ov})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, work
}

// JoinAll runs Query for every q and returns per-query matches plus the
// total verification work (the naive comparator would verify
// len(data)·len(queries) pairs).
func (oj *OverlapJoin) JoinAll(queries []*bitvec.Bits) ([][]Match, int) {
	out := make([][]Match, len(queries))
	total := 0
	for i, q := range queries {
		m, w := oj.Query(q)
		out[i] = m
		total += w
	}
	return out, total
}
