package invidx

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// randSets generates n random sets over universe d with Zipf-ish
// density so document frequencies vary.
func randSets(rng *xrand.RNG, n, d int, density float64) []*bitvec.Bits {
	out := make([]*bitvec.Bits, n)
	for i := range out {
		b := bitvec.NewBits(d)
		for e := 0; e < d; e++ {
			// Element e appears with probability density·(1 − e/(2d)):
			// earlier elements are more common.
			if rng.Float64() < density*(1-float64(e)/float64(2*d)) {
				b.SetBit(e, 1)
			}
		}
		out[i] = b
	}
	return out
}

// naiveJoin is the quadratic reference.
func naiveJoin(data, queries []*bitvec.Bits, t int) [][]Match {
	out := make([][]Match, len(queries))
	for qi, q := range queries {
		for id, x := range data {
			if ov := bitvec.DotBits(x, q); ov >= t {
				out[qi] = append(out[qi], Match{ID: id, Overlap: ov})
			}
		}
	}
	return out
}

func TestOverlapJoinExactness(t *testing.T) {
	rng := xrand.New(1)
	data := randSets(rng, 150, 64, 0.2)
	queries := randSets(rng, 40, 64, 0.2)
	for _, threshold := range []int{1, 2, 4, 7} {
		oj, err := NewOverlapJoin(data, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := oj.JoinAll(queries)
		want := naiveJoin(data, queries, threshold)
		for qi := range queries {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("t=%d query %d: %d matches, want %d",
					threshold, qi, len(got[qi]), len(want[qi]))
			}
			for i := range want[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("t=%d query %d match %d: %+v vs %+v",
						threshold, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
}

func TestOverlapJoinPrunes(t *testing.T) {
	rng := xrand.New(2)
	data := randSets(rng, 500, 256, 0.05)
	queries := randSets(rng, 50, 256, 0.05)
	const threshold = 5
	oj, err := NewOverlapJoin(data, threshold)
	if err != nil {
		t.Fatal(err)
	}
	_, work := oj.JoinAll(queries)
	naive := len(data) * len(queries)
	if work >= naive/2 {
		t.Fatalf("prefix filter verified %d of %d pairs — no pruning", work, naive)
	}
}

func TestOverlapJoinSmallSets(t *testing.T) {
	// Sets smaller than t can neither match nor be matched.
	small := bitvec.BitsFromInts([]int{1, 0, 0, 0})
	big := bitvec.BitsFromInts([]int{1, 1, 1, 0})
	oj, err := NewOverlapJoin([]*bitvec.Bits{small, big}, 2)
	if err != nil {
		t.Fatal(err)
	}
	matches, _ := oj.Query(big)
	if len(matches) != 1 || matches[0].ID != 1 {
		t.Fatalf("matches = %+v, want only the big set", matches)
	}
	if m, _ := oj.Query(small); m != nil {
		t.Fatalf("undersized query must return nothing, got %+v", m)
	}
}

func TestOverlapJoinValidation(t *testing.T) {
	if _, err := NewOverlapJoin(nil, 1); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := NewOverlapJoin([]*bitvec.Bits{bitvec.NewBits(4)}, 0); err == nil {
		t.Fatal("t=0 must fail")
	}
	ragged := []*bitvec.Bits{bitvec.NewBits(4), bitvec.NewBits(5)}
	if _, err := NewOverlapJoin(ragged, 1); err == nil {
		t.Fatal("ragged data must fail")
	}
}

func TestOverlapJoinQueryDimPanics(t *testing.T) {
	oj, _ := NewOverlapJoin([]*bitvec.Bits{bitvec.NewBits(4)}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	oj.Query(bitvec.NewBits(5))
}

func BenchmarkOverlapJoin_500x50(b *testing.B) {
	rng := xrand.New(3)
	data := randSets(rng, 500, 256, 0.05)
	queries := randSets(rng, 50, 256, 0.05)
	oj, err := NewOverlapJoin(data, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oj.JoinAll(queries)
	}
}
