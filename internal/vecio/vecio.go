// Package vecio serialises the reproduction's vector types: dense
// float64 matrices (data/query sets) and bit-packed binary sets, in a
// small self-describing binary format plus CSV for interchange. The
// cmd/ drivers use it to persist generated workloads so experiments can
// be re-run on identical inputs.
package vecio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/vec"
)

// magic identifies the binary container; version gates layout changes.
const (
	magicDense = "IPSD"
	magicBits  = "IPSB"
	version    = 1
)

// WriteDense writes a set of equal-dimension dense vectors.
func WriteDense(w io.Writer, vs []vec.Vector) error {
	d := 0
	if len(vs) > 0 {
		d = len(vs[0])
	}
	for i, v := range vs {
		if len(v) != d {
			return fmt.Errorf("vecio: row %d has dimension %d, want %d", i, len(v), d)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicDense); err != nil {
		return err
	}
	hdr := []uint64{version, uint64(len(vs)), uint64(d)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, v := range vs {
		for _, x := range v {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(x)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDense reads a set written by WriteDense. MaxElems guards against
// corrupted headers allocating unbounded memory.
const maxElems = 1 << 28

// ReadDense reads a dense vector set.
func ReadDense(r io.Reader) ([]vec.Vector, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicDense); err != nil {
		return nil, err
	}
	ver, n, d, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("vecio: unsupported version %d", ver)
	}
	if n*d > maxElems {
		return nil, fmt.Errorf("vecio: header claims %d elements (corrupt?)", n*d)
	}
	out := make([]vec.Vector, n)
	for i := range out {
		v := make(vec.Vector, d)
		for j := range v {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("vecio: truncated at row %d: %w", i, err)
			}
			v[j] = math.Float64frombits(bits)
		}
		out[i] = v
	}
	return out, nil
}

// WriteBits writes a set of equal-dimension bit vectors.
func WriteBits(w io.Writer, vs []*bitvec.Bits) error {
	d := 0
	if len(vs) > 0 {
		d = vs[0].N
	}
	for i, v := range vs {
		if v.N != d {
			return fmt.Errorf("vecio: row %d has dimension %d, want %d", i, v.N, d)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magicBits); err != nil {
		return err
	}
	for _, h := range []uint64{version, uint64(len(vs)), uint64(d)} {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for _, v := range vs {
		if err := binary.Write(bw, binary.LittleEndian, v.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBits reads a set written by WriteBits.
func ReadBits(r io.Reader) ([]*bitvec.Bits, error) {
	br := bufio.NewReader(r)
	if err := expectMagic(br, magicBits); err != nil {
		return nil, err
	}
	ver, n, d, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("vecio: unsupported version %d", ver)
	}
	words := (d + 63) / 64
	if n*words > maxElems {
		return nil, fmt.Errorf("vecio: header claims %d words (corrupt?)", n*words)
	}
	out := make([]*bitvec.Bits, n)
	for i := range out {
		b := bitvec.NewBits(d)
		if err := binary.Read(br, binary.LittleEndian, b.W); err != nil {
			return nil, fmt.Errorf("vecio: truncated at row %d: %w", i, err)
		}
		out[i] = b
	}
	return out, nil
}

func expectMagic(br *bufio.Reader, want string) error {
	got := make([]byte, len(want))
	if _, err := io.ReadFull(br, got); err != nil {
		return fmt.Errorf("vecio: reading magic: %w", err)
	}
	if string(got) != want {
		return fmt.Errorf("vecio: bad magic %q, want %q", got, want)
	}
	return nil
}

func readHeader(br *bufio.Reader) (ver, n, d int, err error) {
	var hdr [3]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return 0, 0, 0, fmt.Errorf("vecio: reading header: %w", err)
		}
	}
	return int(hdr[0]), int(hdr[1]), int(hdr[2]), nil
}

// WriteCSV writes dense vectors as comma-separated rows.
func WriteCSV(w io.Writer, vs []vec.Vector) error {
	bw := bufio.NewWriter(w)
	for _, v := range vs {
		for j, x := range v {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(x, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads comma-separated rows into dense vectors, requiring all
// rows to share one dimension.
func ReadCSV(r io.Reader) ([]vec.Vector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out []vec.Vector
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		v := make(vec.Vector, len(fields))
		for j, f := range fields {
			x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("vecio: line %d field %d: %w", line, j+1, err)
			}
			v[j] = x
		}
		if len(out) > 0 && len(v) != len(out[0]) {
			return nil, fmt.Errorf("vecio: line %d has %d fields, want %d", line, len(v), len(out[0]))
		}
		out = append(out, v)
	}
	return out, sc.Err()
}
