package vecio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestDenseRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	vs := make([]vec.Vector, 17)
	for i := range vs {
		vs[i] = vec.Vector(rng.NormalVec(9))
	}
	var buf bytes.Buffer
	if err := WriteDense(&buf, vs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("rows %d", len(got))
	}
	for i := range vs {
		if !vec.EqualTol(got[i], vs[i], 0) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestDenseSpecialValues(t *testing.T) {
	vs := []vec.Vector{{math.Inf(1), math.Inf(-1), 0, -0.0, 1e-308}}
	var buf bytes.Buffer
	if err := WriteDense(&buf, vs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got[0][0], 1) || !math.IsInf(got[0][1], -1) || got[0][4] != 1e-308 {
		t.Fatalf("special values mangled: %v", got[0])
	}
}

func TestDenseEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDense(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDense(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v, %v", got, err)
	}
}

func TestDenseRagged(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDense(&buf, []vec.Vector{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged input must fail")
	}
}

func TestDenseCorruption(t *testing.T) {
	vs := []vec.Vector{{1, 2}}
	var buf bytes.Buffer
	if err := WriteDense(&buf, vs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadDense(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("truncated stream must fail")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := ReadDense(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := ReadDense(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must fail")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	rng := xrand.New(2)
	vs := make([]*bitvec.Bits, 9)
	for i := range vs {
		b := bitvec.NewBits(131) // straddles word boundaries
		for j := 0; j < 131; j++ {
			if rng.Bernoulli(0.4) {
				b.SetBit(j, 1)
			}
		}
		vs[i] = b
	}
	var buf bytes.Buffer
	if err := WriteBits(&buf, vs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBits(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if got[i].N != vs[i].N {
			t.Fatalf("row %d dimension %d", i, got[i].N)
		}
		for j := 0; j < vs[i].N; j++ {
			if got[i].Bit(j) != vs[i].Bit(j) {
				t.Fatalf("row %d bit %d differs", i, j)
			}
		}
	}
}

func TestBitsMagicMismatch(t *testing.T) {
	// A dense file must not parse as a bits file.
	var buf bytes.Buffer
	if err := WriteDense(&buf, []vec.Vector{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBits(&buf); err == nil {
		t.Fatal("cross-format read must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true // CSV roundtrip of NaN/Inf unsupported by design
		}
		vs := []vec.Vector{{a, b, c}, {c, b, a}}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, vs); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil || len(got) != 2 {
			return false
		}
		return vec.EqualTol(got[0], vs[0], 0) && vec.EqualTol(got[1], vs[1], 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged CSV must fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Fatal("non-numeric CSV must fail")
	}
	got, err := ReadCSV(strings.NewReader("\n  \n1,2\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank lines should be skipped: %v %v", got, err)
	}
}
