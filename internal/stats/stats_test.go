package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{5, 1, 3}
	if got := Median(xs); got != 3 {
		t.Fatalf("Median = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("Q1 = %v", got)
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); got != 2.5 {
		t.Fatalf("even Median = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for i, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, 1.5) },
		func() { Mean(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLogLogSlopeExact(t *testing.T) {
	// y = 3·x² has slope exactly 2 in log-log space.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope = %v, want 2", got)
	}
}

func TestLogLogSlopeProperty(t *testing.T) {
	// For y = a·x^b, the fitted slope recovers b for any positive a.
	f := func(aRaw, bRaw uint8) bool {
		a := 0.1 + float64(aRaw%50)
		b := -2 + float64(bRaw%40)/10 // slopes in [−2, 2)
		xs := []float64{1, 3, 9, 27}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		return math.Abs(LogLogSlope(xs, ys)-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogLogSlopePanics(t *testing.T) {
	for i, f := range []func(){
		func() { LogLogSlope([]float64{1}, []float64{1, 2}) },
		func() { LogLogSlope([]float64{1}, []float64{1}) },
		func() { LogLogSlope([]float64{1, -2}, []float64{1, 2}) },
		func() { LogLogSlope([]float64{2, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("alpha", 1.25)
	tb.Add("beta-longer", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.25") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + rule + 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "beta-longer,42") {
		t.Fatalf("csv rows wrong:\n%s", csv)
	}
}
