// Package stats provides the small statistical toolkit of the
// reproduction's experiment harness: summary statistics, quantiles,
// log-log slope fits for measuring empirical scaling exponents, and
// plain-text table rendering for the cmd/ binaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean; it panics on empty input.
func Mean(xs []float64) float64 {
	mustNonEmpty(xs)
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	mustNonEmpty(xs)
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	pos := q * float64(len(ys)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return ys[lo]
	}
	frac := pos - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// LogLogSlope fits log(y) = a + b·log(x) by least squares and returns
// the slope b — the empirical scaling exponent of y in x. All inputs
// must be positive.
func LogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d != %d", len(xs), len(ys)))
	}
	if len(xs) < 2 {
		panic("stats: need at least 2 points for a slope")
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			panic(fmt.Sprintf("stats: log-log fit needs positive data, got (%v, %v)", xs[i], ys[i]))
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	mx, my := Mean(lx), Mean(ly)
	var num, den float64
	for i := range lx {
		num += (lx[i] - mx) * (ly[i] - my)
		den += (lx[i] - mx) * (lx[i] - mx)
	}
	if den == 0 {
		panic("stats: degenerate x values in slope fit")
	}
	return num / den
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given column names.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting — the
// harness emits only numeric and identifier cells).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

func mustNonEmpty(xs []float64) {
	if len(xs) == 0 {
		panic("stats: empty input")
	}
}
