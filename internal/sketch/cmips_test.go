package sketch

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// exactSearcher is an oracle (cs, s) searcher for testing the scaling
// reduction in isolation.
type exactSearcher struct {
	data []vec.Vector
}

func (es exactSearcher) Search(q vec.Vector, s, cs float64) (int, float64, bool) {
	best, bv := -1, -1.0
	for i, p := range es.data {
		if v := vec.AbsDot(p, q); v > bv {
			best, bv = i, v
		}
	}
	if bv >= cs {
		return best, bv, true
	}
	return -1, bv, false
}

func TestCMIPSWithExactOracle(t *testing.T) {
	// Max |pᵀq| = 0.02, far below s = 1; the scaling loop must amplify
	// the query until the oracle fires and still return the true argmax.
	data := []vec.Vector{{0.01, 0}, {0, 0.02}, {-0.005, 0.001}}
	q := vec.Vector{0, 1}
	idx, v, ok := CMIPS(exactSearcher{data}, q, 0.5, 1.0, 1.0/1024)
	if !ok {
		t.Fatal("CMIPS missed")
	}
	if idx != 1 {
		t.Fatalf("idx = %d, want 1", idx)
	}
	if math.Abs(v-0.02) > 1e-12 {
		t.Fatalf("value = %v, want 0.02", v)
	}
}

func TestCMIPSBelowFloor(t *testing.T) {
	// Every product is below γ: the loop must exhaust and report miss.
	data := []vec.Vector{{1e-9, 0}}
	q := vec.Vector{1, 0}
	if _, _, ok := CMIPS(exactSearcher{data}, q, 0.5, 1.0, 1e-3); ok {
		t.Fatal("CMIPS should miss below the precision floor")
	}
}

func TestCMIPSWithRecoverer(t *testing.T) {
	// End-to-end: trie searcher + scaling reduction on a planted input
	// whose max product sits well under the search threshold.
	rng := xrand.New(1)
	const n, d = 64, 8
	data := make([]vec.Vector, n)
	q := vec.Vector(rng.UnitVec(d))
	for i := range data {
		v := vec.Vector(rng.UnitVec(d))
		vec.Axpy(-vec.Dot(v, q), q, v)
		vec.Normalize(v)
		vec.Scale(v, 0.01)
		data[i] = v
	}
	const heavy = 23
	vec.Axpy(0.05, q, data[heavy]) // |pᵀq| ≈ 0.05, others ≈ tiny
	rec, err := NewRecoverer(data, 3, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	idx, v, ok := CMIPS(RecovererSearcher{Rec: rec}, q, 0.5, 1.0, 1.0/4096)
	if !ok {
		t.Fatal("CMIPS missed the planted vector")
	}
	if idx != heavy {
		t.Fatalf("idx = %d, want %d", idx, heavy)
	}
	want := vec.AbsDot(data[heavy], q)
	if math.Abs(v-want) > 1e-9 {
		t.Fatalf("value %v, want %v", v, want)
	}
}

func TestCMIPSZeroQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero query")
		}
	}()
	CMIPS(exactSearcher{[]vec.Vector{{1}}}, vec.Vector{0}, 0.5, 1, 0.1)
}

func TestRecovererSearcherThreshold(t *testing.T) {
	data := []vec.Vector{{0.5, 0}, {0, 0.3}}
	rec, err := NewRecoverer(data, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs := RecovererSearcher{Rec: rec}
	if _, _, ok := rs.Search(vec.Vector{1, 0}, 0.9, 0.6); ok {
		t.Fatal("0.5 must not clear cs=0.6")
	}
	idx, v, ok := rs.Search(vec.Vector{1, 0}, 0.9, 0.4)
	if !ok || idx != 0 || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("Search = (%d, %v, %v)", idx, v, ok)
	}
}
