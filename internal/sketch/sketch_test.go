package sketch

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestNormSketchLinearity(t *testing.T) {
	rng := xrand.New(1)
	s, err := NewNormSketch(50, 20, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Vector(rng.NormalVec(50))
	y := vec.Vector(rng.NormalVec(50))
	ax := s.Apply(x)
	ay := s.Apply(y)
	sum := s.Apply(vec.Add(x, y))
	if !vec.EqualTol(sum, vec.Add(ax, ay), 1e-9) {
		t.Fatal("sketch must be linear")
	}
	if !vec.EqualTol(s.Apply(vec.Scaled(x, 3)), vec.Scaled(ax, 3), 1e-9) {
		t.Fatal("sketch must be homogeneous")
	}
}

func TestMaxStabilityDistribution(t *testing.T) {
	// With m = n (no bucket collisions to speak of), the median of the
	// estimator over many independent sketches must approach ‖x‖_κ.
	rng := xrand.New(2)
	const n, kappa = 30, 3.0
	x := vec.Vector(rng.NormalVec(n))
	truth := vec.NormP(x, kappa)
	const trials = 401
	ests := make([]float64, trials)
	for i := 0; i < trials; i++ {
		s, err := NewNormSketch(n, 512, kappa, rng.Split(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ests[i] = s.Estimate(s.Apply(x))
	}
	med := median(ests)
	if ratio := med / truth; ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("median estimate %v vs truth %v (ratio %v)", med, truth, ratio)
	}
}

func TestLpEstimatorAccuracy(t *testing.T) {
	rng := xrand.New(3)
	const n, kappa = 100, 4.0
	e, err := NewLpEstimator(n, RecommendedBuckets(n, kappa), 15, kappa, 4)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		x := vec.Vector(rng.NormalVec(n))
		truth := vec.NormP(x, kappa)
		got := e.Estimate(x)
		if ratio := got / truth; ratio < 0.4 || ratio > 2.5 {
			t.Fatalf("trial %d: estimate %v vs truth %v (ratio %v)", trial, got, truth, ratio)
		}
	}
}

func TestRecommendedBucketsShrinksRelatively(t *testing.T) {
	// m/n must fall as n grows — that is the whole point (n^{1−2/κ}).
	n1, n2 := 256, 4096
	k := 4.0
	r1 := float64(RecommendedBuckets(n1, k)) / float64(n1)
	r2 := float64(RecommendedBuckets(n2, k)) / float64(n2)
	if r2 >= r1 {
		t.Fatalf("relative sketch size must shrink: %v then %v", r1, r2)
	}
}

func TestStableSketchL1L2(t *testing.T) {
	rng := xrand.New(5)
	const n, m = 60, 801
	x := vec.Vector(rng.NormalVec(n))
	for _, p := range []float64{1, 2} {
		s, err := NewStableSketch(n, m, p, rng.Split(uint64(p)))
		if err != nil {
			t.Fatal(err)
		}
		truth := vec.NormP(x, p)
		got := s.Estimate(x)
		if ratio := got / truth; ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("p=%v: estimate %v vs truth %v", p, got, truth)
		}
	}
}

func TestStableSketchValidation(t *testing.T) {
	rng := xrand.New(6)
	if _, err := NewStableSketch(10, 5, 1.5, rng); err == nil {
		t.Fatal("p=1.5 must fail")
	}
	if _, err := NewStableSketch(0, 5, 1, rng); err == nil {
		t.Fatal("n=0 must fail")
	}
}

func TestApproxFactor(t *testing.T) {
	if got := ApproxFactor(16, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("ApproxFactor(16,2) = %v, want 4", got)
	}
	if got := ApproxFactor(16, 4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("ApproxFactor(16,4) = %v, want 2", got)
	}
}

// plantedData returns n unit-ish vectors where index `heavy` has inner
// product ≈ big with q and all others have tiny inner products.
func plantedData(rng *xrand.RNG, n, d, heavy int, big float64) ([]vec.Vector, vec.Vector) {
	q := vec.Vector(rng.UnitVec(d))
	data := make([]vec.Vector, n)
	for i := range data {
		// Random vector orthogonalised against q, plus a small q component.
		v := vec.Vector(rng.UnitVec(d))
		vec.Axpy(-vec.Dot(v, q), q, v)
		vec.Normalize(v)
		vec.Scale(v, 0.3)
		if i == heavy {
			vec.Axpy(big, q, v)
		} else {
			vec.Axpy(0.01*(rng.Float64()-0.5), q, v)
		}
		data[i] = v
	}
	return data, q
}

func TestMaxDotPlantedEstimate(t *testing.T) {
	rng := xrand.New(7)
	const n, d, kappa = 256, 16, 3.0
	data, q := plantedData(rng, n, d, 17, 2.0)
	md, err := NewMaxDot(data, kappa, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for _, p := range data {
		if v := math.Abs(vec.Dot(p, q)); v > truth {
			truth = v
		}
	}
	got := md.Estimate(q)
	upper := 3 * ApproxFactor(n, kappa) * truth
	if got < 0.3*truth || got > upper {
		t.Fatalf("estimate %v outside [%v, %v] (truth %v)", got, 0.3*truth, upper, truth)
	}
	if md.SketchRows() >= n {
		t.Fatalf("sketch rows %d not compressive for n=%d", md.SketchRows(), n)
	}
}

func TestMaxDotLinearInQuery(t *testing.T) {
	rng := xrand.New(9)
	const n, d = 64, 8
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = vec.Vector(rng.NormalVec(d))
	}
	md, err := NewMaxDot(data, 2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector(rng.NormalVec(d))
	a := md.Estimate(q)
	b := md.Estimate(vec.Scaled(q, 5))
	if math.Abs(b-5*a) > 1e-9*math.Max(1, b) {
		t.Fatalf("linear sketch must scale: %v vs 5·%v", b, a)
	}
}

func TestMaxDotValidation(t *testing.T) {
	if _, err := NewMaxDot(nil, 2, 1, 0); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := NewMaxDot([]vec.Vector{{1}, {1, 2}}, 2, 1, 0); err == nil {
		t.Fatal("ragged data must fail")
	}
	if _, err := NewMaxDot([]vec.Vector{{1}}, 2, 0, 0); err == nil {
		t.Fatal("copies=0 must fail")
	}
}

func TestRecovererFindsPlanted(t *testing.T) {
	rng := xrand.New(11)
	const n, d, kappa = 128, 16, 3.0
	const heavy = 77
	data, q := plantedData(rng, n, d, heavy, 3.0)
	rec, err := NewRecoverer(data, kappa, 9, 12)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := rec.Query(q)
	if idx != heavy {
		t.Fatalf("recovered index %d (val %v), want %d (val %v)",
			idx, val, heavy, math.Abs(vec.Dot(data[heavy], q)))
	}
	if math.Abs(val-math.Abs(vec.Dot(data[heavy], q))) > 1e-12 {
		t.Fatalf("returned value %v must be the exact |pᵀq|", val)
	}
}

func TestRecovererNonPowerOfTwo(t *testing.T) {
	rng := xrand.New(13)
	const n, d = 100, 12 // not a power of two
	const heavy = 91
	data, q := plantedData(rng, n, d, heavy, 3.0)
	rec, err := NewRecoverer(data, 3, 9, 14)
	if err != nil {
		t.Fatal(err)
	}
	if idx, _ := rec.Query(q); idx != heavy {
		t.Fatalf("recovered %d, want %d", idx, heavy)
	}
}

func TestRecovererSingleVector(t *testing.T) {
	data := []vec.Vector{{1, 0}}
	rec, err := NewRecoverer(data, 2, 3, 15)
	if err != nil {
		t.Fatal(err)
	}
	idx, val := rec.Query(vec.Vector{2, 0})
	if idx != 0 || math.Abs(val-2) > 1e-12 {
		t.Fatalf("Query = (%d, %v)", idx, val)
	}
}

func TestRecovererLevels(t *testing.T) {
	rng := xrand.New(16)
	data := make([]vec.Vector, 64)
	for i := range data {
		data[i] = vec.Vector(rng.NormalVec(4))
	}
	rec, err := NewRecoverer(data, 2, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	// 64 vectors → root + 6 split levels (+ final leaf level).
	if rec.Levels() < 6 || rec.Levels() > 8 {
		t.Fatalf("Levels = %d", rec.Levels())
	}
}

func TestScaledQueries(t *testing.T) {
	q := vec.Vector{1, 2}
	out := ScaledQueries(q, 0.5, 1.0, 0.125)
	// log_2(1/0.125) = 3 → 4 queries: q, 2q, 4q, 8q.
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if !vec.EqualTol(out[0], q, 0) {
		t.Fatal("first query must be unscaled")
	}
	if !vec.EqualTol(out[3], vec.Scaled(q, 8), 1e-12) {
		t.Fatalf("last query = %v", out[3])
	}
}

func TestScaledQueriesPanics(t *testing.T) {
	for i, f := range []func(){
		func() { ScaledQueries(vec.Vector{1}, 1.5, 1, 0.1) },
		func() { ScaledQueries(vec.Vector{1}, 0.5, 0, 0.1) },
		func() { ScaledQueries(vec.Vector{1}, 0.5, 1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMaxDotEstimate(b *testing.B) {
	rng := xrand.New(18)
	const n, d = 1024, 32
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = vec.Vector(rng.NormalVec(d))
	}
	md, err := NewMaxDot(data, 3, 5, 19)
	if err != nil {
		b.Fatal(err)
	}
	q := vec.Vector(rng.NormalVec(d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		md.Estimate(q)
	}
}

func BenchmarkRecovererQuery(b *testing.B) {
	rng := xrand.New(20)
	const n, d = 512, 16
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = vec.Vector(rng.NormalVec(d))
	}
	rec, err := NewRecoverer(data, 3, 5, 21)
	if err != nil {
		b.Fatal(err)
	}
	q := vec.Vector(rng.NormalVec(d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Query(q)
	}
}
