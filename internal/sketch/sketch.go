// Package sketch implements the linear-sketch machinery of §4.3 of Ahle
// et al.: max-stability sketches for ℓ_κ norms (after Andoni), the
// compressed ‖Aq‖_∞ estimator that turns them into an unsigned c-MIPS
// data structure with approximation c = 1/n^{1/κ}, the binary-trie
// recovery of the (near-)maximising index, and the query-scaling
// reduction between c-MIPS and (cs, s) search. It also includes the
// classic Indyk p-stable median sketch as a cross-check estimator.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// expCorrection returns the median correction (ln 2)^{1/κ}: if
// M = ‖x‖_κ · E^{−1/κ} with E ~ Exp(1), then median(M) = ‖x‖_κ ·
// (ln 2)^{−1/κ}, so multiplying the observed max by (ln 2)^{1/κ}
// centres the estimator.
func expCorrection(kappa float64) float64 {
	return math.Pow(math.Ln2, 1/kappa)
}

// NormSketch is one linear max-stability sketch Π ∈ R^{m×n} for ℓ_κ:
// Π = P·D where D = diag(1/E_i^{1/κ}) with iid exponentials and P is a
// signed count-sketch bucketing. ‖Πx‖_∞ concentrates around
// ‖x‖_κ · E^{−1/κ} — the max-stability property P(max ≤ t) =
// exp(−(‖x‖_κ/t)^κ).
type NormSketch struct {
	N, M  int
	Kappa float64
	// bucket[i] and weight[i] describe column i of Π: a single nonzero
	// σ_i/E_i^{1/κ} in row bucket[i].
	bucket []int
	weight []float64
}

// NewNormSketch samples a sketch for input dimension n with m buckets.
func NewNormSketch(n, m int, kappa float64, rng *xrand.RNG) (*NormSketch, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("sketch: invalid shape n=%d m=%d", n, m)
	}
	if kappa < 2 {
		return nil, fmt.Errorf("sketch: kappa %v must be >= 2", kappa)
	}
	s := &NormSketch{N: n, M: m, Kappa: kappa,
		bucket: make([]int, n), weight: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.bucket[i] = rng.Intn(m)
		w := math.Pow(rng.Exp(), -1/kappa)
		s.weight[i] = float64(rng.Sign()) * w
	}
	return s, nil
}

// Apply computes Πx.
func (s *NormSketch) Apply(x vec.Vector) vec.Vector {
	if len(x) != s.N {
		panic(fmt.Sprintf("sketch: Apply dimension %d != %d", len(x), s.N))
	}
	y := vec.New(s.M)
	for i, v := range x {
		y[s.bucket[i]] += s.weight[i] * v
	}
	return y
}

// Estimate returns the median-corrected ℓ_κ estimate from a sketched
// vector y = Πx.
func (s *NormSketch) Estimate(y vec.Vector) float64 {
	return vec.MaxAbs(y) * expCorrection(s.Kappa)
}

// RecommendedBuckets returns the m = O(n^{1−2/κ}·log n) bucket count
// used throughout: enough for the heavy coordinate to dominate its
// bucket with good probability.
func RecommendedBuckets(n int, kappa float64) int {
	if n <= 0 {
		panic(fmt.Sprintf("sketch: n=%d", n))
	}
	m := int(math.Ceil(4 * math.Pow(float64(n), 1-2/kappa) * math.Log(float64(n)+2)))
	if m < 4 {
		m = 4
	}
	return m
}

// LpEstimator estimates ‖x‖_κ as the median over independent NormSketch
// copies, boosting the constant success probability as in §4.3
// ("building O(log 1/δ) independent copies and reporting the median").
type LpEstimator struct {
	Copies []*NormSketch
}

// NewLpEstimator builds `copies` independent sketches.
func NewLpEstimator(n, m, copies int, kappa float64, seed uint64) (*LpEstimator, error) {
	if copies <= 0 {
		return nil, fmt.Errorf("sketch: copies %d must be positive", copies)
	}
	rng := xrand.New(seed)
	cs := make([]*NormSketch, copies)
	for i := range cs {
		var err error
		cs[i], err = NewNormSketch(n, m, kappa, rng.Split(uint64(i)))
		if err != nil {
			return nil, err
		}
	}
	return &LpEstimator{Copies: cs}, nil
}

// Estimate returns the median estimate of ‖x‖_κ.
func (e *LpEstimator) Estimate(x vec.Vector) float64 {
	ests := make([]float64, len(e.Copies))
	for i, s := range e.Copies {
		ests[i] = s.Estimate(s.Apply(x))
	}
	return median(ests)
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// StableSketch is the classic Indyk p-stable median sketch for
// p ∈ {1, 2}, provided as an independent cross-check of the
// max-stability estimator on the same inputs.
type StableSketch struct {
	P    float64
	Rows *vec.Matrix // m×n of iid p-stable entries
}

// medianAbsStable is the median of |X| for X p-stable: 1 for Cauchy
// (tan(π/4)), Φ⁻¹(3/4)·√2 … for our α=2 convention (variance 2) it is
// 0.67448975·√2.
func medianAbsStable(p float64) float64 {
	switch p {
	case 1:
		return 1
	case 2:
		return 0.6744897501960817 * math.Sqrt2
	}
	panic(fmt.Sprintf("sketch: unsupported stable p=%v", p))
}

// NewStableSketch samples an m×n p-stable sketch for p ∈ {1, 2}.
func NewStableSketch(n, m int, p float64, rng *xrand.RNG) (*StableSketch, error) {
	if n <= 0 || m <= 0 {
		return nil, fmt.Errorf("sketch: invalid shape n=%d m=%d", n, m)
	}
	if p != 1 && p != 2 {
		return nil, fmt.Errorf("sketch: stable p=%v must be 1 or 2", p)
	}
	rows := vec.NewMatrix(m, n)
	for i := range rows.Data {
		rows.Data[i] = rng.Stable(p)
	}
	return &StableSketch{P: p, Rows: rows}, nil
}

// Estimate returns the median-based estimate of ‖x‖_p.
func (s *StableSketch) Estimate(x vec.Vector) float64 {
	y := s.Rows.MulVec(x)
	abs := make([]float64, len(y))
	for i, v := range y {
		abs[i] = math.Abs(v)
	}
	return median(abs) / medianAbsStable(s.P)
}

// ApproxFactor returns the paper's guaranteed approximation n^{1/κ} for
// the ‖·‖_∞-via-‖·‖_κ route: ‖x‖_∞ ≤ ‖x‖_κ ≤ n^{1/κ}·‖x‖_∞.
func ApproxFactor(n int, kappa float64) float64 {
	return math.Pow(float64(n), 1/kappa)
}
