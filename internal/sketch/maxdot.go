package sketch

import (
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// MaxDot is the §4.3 data structure for approximating
// max_p |pᵀq| over a data set P, without recovering the maximiser:
// the rows of A are the data vectors, a max-stability sketch Π for ℓ_κ
// is sampled, and the compressed matrix A_s = ΠA ∈ R^{m×d} is stored.
// A query computes ‖A_s·q‖_∞ in time O(m·d) = Õ(d·n^{1−2/κ}), which
// estimates ‖Aq‖_κ and therefore approximates ‖Aq‖_∞ = max_p |pᵀq|
// within a factor n^{1/κ}. Several independent copies are kept and the
// median reported.
type MaxDot struct {
	N, D  int
	Kappa float64
	// copies[r] is the compressed matrix of the r-th sketch.
	copies []*vec.Matrix
}

// NewMaxDot builds the structure over the given data rows.
// Construction time is O(copies·n·d), dominated by forming ΠA.
func NewMaxDot(data []vec.Vector, kappa float64, copies int, seed uint64) (*MaxDot, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sketch: empty data set")
	}
	if copies <= 0 {
		return nil, fmt.Errorf("sketch: copies %d must be positive", copies)
	}
	n, d := len(data), len(data[0])
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("sketch: row %d has dimension %d, want %d", i, len(row), d)
		}
	}
	m := RecommendedBuckets(n, kappa)
	rng := xrand.New(seed)
	md := &MaxDot{N: n, D: d, Kappa: kappa, copies: make([]*vec.Matrix, copies)}
	for r := 0; r < copies; r++ {
		sk, err := NewNormSketch(n, m, kappa, rng.Split(uint64(r)))
		if err != nil {
			return nil, err
		}
		as := vec.NewMatrix(m, d)
		for i, row := range data {
			// A_s[bucket(i)] += weight(i)·A[i]
			vec.Axpy(sk.weight[i], row, as.Row(sk.bucket[i]))
		}
		md.copies[r] = as
	}
	return md, nil
}

// SketchRows returns m, the per-copy compressed row count (the query
// cost driver).
func (md *MaxDot) SketchRows() int { return md.copies[0].Rows }

// Estimate returns the median-corrected estimate of ‖Aq‖_κ, an upper
// proxy for max_p |pᵀq| within factor ApproxFactor(n, κ).
func (md *MaxDot) Estimate(q vec.Vector) float64 {
	if len(q) != md.D {
		panic(fmt.Sprintf("sketch: query dimension %d != %d", len(q), md.D))
	}
	corr := expCorrection(md.Kappa)
	ests := make([]float64, len(md.copies))
	for r, as := range md.copies {
		ests[r] = vec.MaxAbs(as.MulVec(q)) * corr
	}
	return median(ests)
}

// Recoverer implements the paper's bit-by-bit index recovery: "for
// every bit index i and binary prefix b, build a data structure for the
// vectors whose index has prefix b". A query walks the binary trie from
// the root, descending into the child whose MaxDot estimate is larger,
// and returns the leaf index — the approximate unsigned MIPS answer.
// Each vector appears in ⌈log n⌉+1 structures, so total space stays
// Õ(d·n^{1−2/κ}) per level.
type Recoverer struct {
	N, D  int
	Kappa float64
	data  []vec.Vector
	// levels[l] holds the MaxDot structures of all prefixes of length l;
	// levels[0] is the root (one structure over everything). Leaves are
	// implicit (single vectors — evaluated exactly).
	levels [][]*MaxDot
	// spans[l][j] = [lo, hi) index range of node j at level l.
	spans [][][2]int
}

// NewRecoverer builds the trie. Construction is O(copies·n·d·log n).
func NewRecoverer(data []vec.Vector, kappa float64, copies int, seed uint64) (*Recoverer, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("sketch: empty data set")
	}
	n, d := len(data), len(data[0])
	r := &Recoverer{N: n, D: d, Kappa: kappa, data: data}
	rng := xrand.New(seed)
	label := uint64(0)
	// Build levels until every node is a single vector.
	type node struct{ lo, hi int }
	cur := []node{{0, n}}
	for {
		mds := make([]*MaxDot, len(cur))
		spans := make([][2]int, len(cur))
		for j, nd := range cur {
			spans[j] = [2]int{nd.lo, nd.hi}
			if nd.hi-nd.lo == 1 {
				continue // leaf: exact evaluation, no sketch needed
			}
			md, err := NewMaxDot(data[nd.lo:nd.hi], kappa, copies, rng.Split(label).Uint64())
			label++
			if err != nil {
				return nil, err
			}
			mds[j] = md
		}
		r.levels = append(r.levels, mds)
		r.spans = append(r.spans, spans)
		// Split for the next level.
		next := make([]node, 0, 2*len(cur))
		done := true
		for _, nd := range cur {
			if nd.hi-nd.lo == 1 {
				next = append(next, nd)
				continue
			}
			done = false
			mid := (nd.lo + nd.hi) / 2
			next = append(next, node{nd.lo, mid}, node{mid, nd.hi})
		}
		if done {
			break
		}
		cur = next
	}
	return r, nil
}

// Query returns the index of an approximate maximiser of |pᵀq| and the
// exact |pᵀq| at that index.
func (r *Recoverer) Query(q vec.Vector) (int, float64) {
	if len(q) != r.D {
		panic(fmt.Sprintf("sketch: query dimension %d != %d", len(q), r.D))
	}
	j := 0 // node index within the level
	for l := 0; l < len(r.levels); l++ {
		span := r.spans[l][j]
		if span[1]-span[0] == 1 {
			idx := span[0]
			return idx, math.Abs(vec.Dot(r.data[idx], q))
		}
		// Children at level l+1 are nodes 2j and 2j+1 — but only when the
		// level was fully split; locate children by span instead to stay
		// robust for uneven sizes.
		left, right := r.childIndices(l, j)
		el := r.nodeEstimate(l+1, left, q)
		er := r.nodeEstimate(l+1, right, q)
		if er > el {
			j = right
		} else {
			j = left
		}
	}
	// All levels exhausted: the last node must be a leaf.
	span := r.spans[len(r.spans)-1][j]
	idx := span[0]
	return idx, math.Abs(vec.Dot(r.data[idx], q))
}

// childIndices finds the two child node positions of node j at level l.
func (r *Recoverer) childIndices(l, j int) (int, int) {
	span := r.spans[l][j]
	mid := (span[0] + span[1]) / 2
	next := r.spans[l+1]
	left, right := -1, -1
	for idx, s := range next {
		if s[0] == span[0] && s[1] == mid {
			left = idx
		}
		if s[0] == mid && s[1] == span[1] {
			right = idx
		}
	}
	if left < 0 || right < 0 {
		panic(fmt.Sprintf("sketch: trie structure broken at level %d node %d", l, j))
	}
	return left, right
}

// nodeEstimate returns the MaxDot estimate at a node, or the exact value
// for single-vector leaves.
func (r *Recoverer) nodeEstimate(l, j int, q vec.Vector) float64 {
	span := r.spans[l][j]
	if span[1]-span[0] == 1 {
		return math.Abs(vec.Dot(r.data[span[0]], q))
	}
	return r.levels[l][j].Estimate(q)
}

// Levels returns the trie depth (for cost accounting).
func (r *Recoverer) Levels() int { return len(r.levels) }

// ScaledQueries implements the paper's reduction from unsigned c-MIPS to
// unsigned (cs, s) search: query with q/c^i for 0 ≤ i ≤ ⌈log_{1/c}(s/γ)⌉,
// scaling the query up until the largest inner product crosses the
// threshold s; γ is the smallest inner product of interest (e.g. machine
// precision).
func ScaledQueries(q vec.Vector, c, s, gamma float64) []vec.Vector {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("sketch: c=%v out of (0,1)", c))
	}
	if s <= 0 || gamma <= 0 || gamma > s {
		panic(fmt.Sprintf("sketch: invalid s=%v gamma=%v", s, gamma))
	}
	steps := int(math.Ceil(math.Log(s/gamma)/math.Log(1/c))) + 1
	out := make([]vec.Vector, steps)
	scale := 1.0
	for i := range out {
		out[i] = vec.Scaled(q, scale)
		scale /= c
	}
	return out
}
