package sketch

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// This file implements the paper's §4.3 observation as a working
// algorithm: "unsigned c-MIPS can be solved by a data structure for
// unsigned (cs, s) search … by performing the queries q/c^i for
// 0 ≤ i ≤ ⌈log_{1/c}(s/γ)⌉" — scaling the query up until the largest
// inner product crosses the search threshold.

// UnsignedSearcher answers unsigned (cs, s) searches: given a query q,
// return an index whose |pᵀq| ≥ cs whenever some data vector has
// |p′ᵀq| ≥ s. When no vector clears cs, ok is false.
type UnsignedSearcher interface {
	Search(q vec.Vector, s, cs float64) (idx int, value float64, ok bool)
}

// RecovererSearcher adapts the §4.3 trie structure to the search
// interface: recover the approximate maximiser and verify it against
// the acceptance threshold.
type RecovererSearcher struct {
	Rec *Recoverer
}

// Search implements UnsignedSearcher.
func (rs RecovererSearcher) Search(q vec.Vector, s, cs float64) (int, float64, bool) {
	idx, v := rs.Rec.Query(q)
	if v >= cs {
		return idx, v, true
	}
	return -1, v, false
}

// CMIPS solves unsigned c-MIPS through an UnsignedSearcher by query
// scaling: it issues q/c⁰, q/c¹, … until the searcher reports a hit,
// up to the γ floor (the smallest inner product of interest — "the
// smallest inner product that can be stored according to the numerical
// precision of the machine"). It returns the found index and its exact
// |pᵀq| against the *unscaled* query.
func CMIPS(searcher UnsignedSearcher, q vec.Vector, c, s, gamma float64) (int, float64, bool) {
	if searcher == nil {
		panic("sketch: nil searcher")
	}
	pivot := firstNonZero(q) // rejects the zero query up front
	for _, scaled := range ScaledQueries(q, c, s, gamma) {
		idx, v, ok := searcher.Search(scaled, s, c*s)
		if ok {
			// Undo the query scaling on the reported value.
			scale := scaled[pivot] / q[pivot]
			return idx, math.Abs(v / scale), true
		}
	}
	return -1, 0, false
}

// firstNonZero returns the index of the first nonzero coordinate,
// panicking on the zero vector (whose MIPS value is identically 0 and
// needs no search).
func firstNonZero(q vec.Vector) int {
	for i, v := range q {
		if v != 0 {
			return i
		}
	}
	panic(fmt.Sprintf("sketch: zero query of dimension %d", len(q)))
}
