package flat

import (
	"fmt"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// BenchmarkFlatDotBatch measures the blocked columnar kernel: one full
// DotBatch over n rows per iteration (report ns/op ÷ n for per-row
// cost). d=16 exercises the specialized row-pair kernel, d=24 the
// generic 4-way unrolled loop.
func BenchmarkFlatDotBatch(b *testing.B) {
	for _, d := range []int{16, 24} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := xrand.New(1)
			n := 20000
			s, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				b.Fatal(err)
			}
			q := vec.Vector(rng.NormalVec(d))
			out := make([]float64, n)
			b.SetBytes(int64(n * d * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.DotBatch(q, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatTopK measures the blocked top-10 scan (kernel plus
// accumulator bookkeeping) against the row-slice baseline cost.
func BenchmarkFlatTopK(b *testing.B) {
	rng := xrand.New(2)
	n, d := 20000, 16
	vs := randomVecs(rng, n, d)
	s, err := FromVectors(vs)
	if err != nil {
		b.Fatal(err)
	}
	ns := NewNormSorted(s)
	q := vec.Vector(rng.NormalVec(d))
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.TopK(q, 10, false, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("normsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ns.TopK(q, 10, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rowslices", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveTopK(vs, q, 10, false)
		}
	})
}
