package flat

import (
	"fmt"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// BenchmarkFlatDotBatch measures the blocked columnar kernel: one full
// DotBatch over n rows per iteration (report ns/op ÷ n for per-row
// cost). d=16 exercises the specialized row-pair kernel, d=24 the
// generic 4-way unrolled loop.
func BenchmarkFlatDotBatch(b *testing.B) {
	for _, d := range []int{16, 24} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := xrand.New(1)
			n := 20000
			s, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				b.Fatal(err)
			}
			q := vec.Vector(rng.NormalVec(d))
			out := make([]float64, n)
			b.SetBytes(int64(n * d * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.DotBatch(q, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlatTopK measures the blocked top-10 scan (kernel plus
// accumulator bookkeeping) against the row-slice baseline cost.
func BenchmarkFlatTopK(b *testing.B) {
	rng := xrand.New(2)
	n, d := 20000, 16
	vs := randomVecs(rng, n, d)
	s, err := FromVectors(vs)
	if err != nil {
		b.Fatal(err)
	}
	ns := NewNormSorted(s)
	q := vec.Vector(rng.NormalVec(d))
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.TopK(q, 10, false, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("normsorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ns.TopK(q, 10, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rowslices", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naiveTopK(vs, q, 10, false)
		}
	})
}

// BenchmarkFlatDotTile measures the multi-query tile kernel against
// repeated single-query sweeps: one iteration scores 8 queries over
// the full store (ns/op ÷ 8 is the per-query sweep cost; compare with
// BenchmarkFlatDotBatch). d=16/d=8 exercise the AVX2 micro-kernels
// when present, d=24 the generic pair kernel.
func BenchmarkFlatDotTile(b *testing.B) {
	for _, d := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			rng := xrand.New(1)
			n, nq := 20000, 8
			s, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				b.Fatal(err)
			}
			qs, err := FromVectors(randomVecs(rng, nq, d))
			if err != nil {
				b.Fatal(err)
			}
			out := make([]float64, nq*blockRows)
			b.SetBytes(int64(n * d * 8)) // one data sweep serves all 8 queries
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for lo := 0; lo < n; lo += blockRows {
					hi := min(lo+blockRows, n)
					s.dotTile(qs, 0, nq, lo, hi, out[:nq*(hi-lo)])
				}
			}
		})
	}
}

// BenchmarkFlatTopKMulti measures the full multi-query top-k driver:
// one iteration answers 256 top-10 queries over a 20k-row store
// (ns/op ÷ 256 compares against BenchmarkFlatTopK/flat).
func BenchmarkFlatTopKMulti(b *testing.B) {
	rng := xrand.New(2)
	n, d, nq := 20000, 16, 256
	s, err := FromVectors(randomVecs(rng, n, d))
	if err != nil {
		b.Fatal(err)
	}
	qs, err := FromVectors(randomVecs(rng, nq, d))
	if err != nil {
		b.Fatal(err)
	}
	sc := GetTileScratch()
	defer PutTileScratch(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accs := sc.Accs(nq, 10)
		if err := s.TopKMultiInto(qs, 0, nq, false, accs, sc); err != nil {
			b.Fatal(err)
		}
	}
}
