// Quantized speed tier 2: int8 columnar storage under per-store
// symmetric quantization. Every element is coded as
// round(x / scale) clamped to [-127, 127] with scale = max|x|/127 over
// the whole store, so codes are sign-symmetric (no zero-point) and the
// decoder can verify a stored scale by recomputation. Queries are
// quantized per scan against their own max|q|/127 scale and widened to
// int16, so the d=16 AVX2 kernel is one sign-extension plus one
// VPMADDWD per row; accumulation is exact int32 arithmetic — order
// free — which makes the Go fallback trivially bit-identical to the
// asm. A code score widens as float64(acc) · (scale·qscale).
//
// Int8 scores are approximations with per-element error ≤ scale/2 on
// each side; the serving layer treats them as candidates only and
// always re-ranks the survivors through the retained f64 store, the
// same candidate-then-verify shape as internal/sketch.MaxDot.
package flat

import (
	"context"
	"fmt"
	"math"

	"repro/internal/vec"
)

// StoreI8 is an append-frozen int8 copy of a Store: row i occupies
// codes[i*dim : (i+1)*dim]; scale is the shared dequantization factor.
type StoreI8 struct {
	dim   int
	codes []int8
	scale float64
}

// NewStoreI8 quantizes s under the symmetric scheme. The scale is a
// max over all elements — order independent — so rebuilding the store
// from the same rows in any layout (e.g. after recovery replay or
// compaction) reproduces the identical scale and codes.
func NewStoreI8(s *Store) *StoreI8 {
	maxAbs := 0.0
	for _, x := range s.data {
		if a := math.Abs(x); a > maxAbs && !math.IsInf(a, 0) {
			maxAbs = a
		}
	}
	q := &StoreI8{
		dim:   s.dim,
		codes: make([]int8, len(s.data)),
		scale: maxAbs / 127,
	}
	for i, x := range s.data {
		q.codes[i] = quantizeI8(x, q.scale)
	}
	return q
}

// quantizeI8 codes one element: nearest integer multiple of scale,
// clamped to the symmetric range. A zero scale (all-zero store) codes
// everything as 0; non-finite inputs saturate deterministically.
func quantizeI8(x, scale float64) int8 {
	if scale == 0 {
		return 0
	}
	v := math.Round(x / scale)
	switch {
	case v > 127:
		return 127
	case v < -127:
		return -127
	case math.IsNaN(v):
		return 0
	}
	return int8(v)
}

// quantizeQueryI8 codes a query against its own symmetric scale,
// widening the codes to int16 for the VPMADDWD kernel. A zero (or
// non-finite-only) query yields scale 0 and all-zero codes, matching
// the exact all-zero dot.
func quantizeQueryI8(q vec.Vector) ([]int16, float64) {
	maxAbs := 0.0
	for _, x := range q {
		if a := math.Abs(x); a > maxAbs && !math.IsInf(a, 0) {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	qc := make([]int16, len(q))
	for i, x := range q {
		qc[i] = int16(quantizeI8(x, scale))
	}
	return qc, scale
}

// Len returns the number of rows.
func (s *StoreI8) Len() int {
	if s.dim == 0 {
		return 0
	}
	return len(s.codes) / s.dim
}

// Dim returns the row dimension.
func (s *StoreI8) Dim() int { return s.dim }

// Scale returns the shared dequantization factor (max|x|/127).
func (s *StoreI8) Scale() float64 { return s.scale }

// Row returns row i's codes as a view aliasing the backing array.
// Callers must not mutate it.
func (s *StoreI8) Row(i int) []int8 {
	return s.codes[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
}

// Equal reports whether two quantized stores are bit-identical
// (dimension, scale and every code). The segment decoder uses it to
// prove a decoded store matches requantization of the decoded f64
// truth rows.
func (s *StoreI8) Equal(o *StoreI8) bool {
	if s.dim != o.dim || len(s.codes) != len(o.codes) ||
		math.Float64bits(s.scale) != math.Float64bits(o.scale) {
		return false
	}
	for i, c := range s.codes {
		if o.codes[i] != c {
			return false
		}
	}
	return true
}

func (s *StoreI8) checkQuery(q vec.Vector) error {
	if len(q) != s.dim {
		return fmt.Errorf("flat: query dimension %d, store has %d", len(q), s.dim)
	}
	return nil
}

func (s *StoreI8) checkMask(dead *Tombstones) error {
	if dead != nil && dead.Len() != s.Len() {
		return fmt.Errorf("flat: tombstones cover %d rows, store has %d", dead.Len(), s.Len())
	}
	return nil
}

// DotRange fills out[0:hi-lo] with approximate dequantized dots of rows
// [lo, hi) against q. Exported for the equivalence tests.
func (s *StoreI8) DotRange(q vec.Vector, lo, hi int, out []float64) error {
	if err := s.checkQuery(q); err != nil {
		return err
	}
	if lo < 0 || hi > s.Len() || lo > hi {
		return fmt.Errorf("flat: DotRange [%d, %d) out of [0, %d)", lo, hi, s.Len())
	}
	if len(out) != hi-lo {
		return fmt.Errorf("flat: DotRange out length %d, want %d", len(out), hi-lo)
	}
	qc, qscale := quantizeQueryI8(q)
	s.dotRange(qc, s.scale*qscale, lo, hi, out)
	return nil
}

// dotRange fills out with float64(Σ code·qcode) · combined for rows
// [lo, hi). Accumulation is exact int32 arithmetic (|code·qcode| ≤
// 127², so any practical dimension fits), which is order independent —
// the AVX2 kernel's pairwise VPMADDWD sums equal the scalar loop
// exactly, no accumulation-chain contract needed.
func (s *StoreI8) dotRange(qc []int16, combined float64, lo, hi int, out []float64) {
	if s.dim == 16 && useQuantAsm {
		dotI8Range16(s.codes[lo*16:hi*16], qc, combined, out[:hi-lo])
		return
	}
	d := s.dim
	qc = qc[:d:d]
	for r := lo; r < hi; r++ {
		off := r * d
		row := s.codes[off : off+d : off+d]
		var a0, a1, a2, a3 int32
		j := 0
		for ; j+4 <= d; j += 4 {
			a0 += int32(row[j]) * int32(qc[j])
			a1 += int32(row[j+1]) * int32(qc[j+1])
			a2 += int32(row[j+2]) * int32(qc[j+2])
			a3 += int32(row[j+3]) * int32(qc[j+3])
		}
		for ; j < d; j++ {
			a0 += int32(row[j]) * int32(qc[j])
		}
		out[r-lo] = float64(a0+a1+a2+a3) * combined
	}
}

// MaxScanWorkers mirrors Store.MaxScanWorkers for the int8 view.
func (s *StoreI8) MaxScanWorkers() int { return s.Len() / minParallelRows }

// CanParallelScan reports whether TopK's workers hint can split this
// store's scan at all.
func (s *StoreI8) CanParallelScan() bool { return s.MaxScanWorkers() >= 2 }

// TopK returns up to k hits for q under the canonical ordering over
// the dequantized approximate scores. Callers needing exact scores
// re-rank the hits through the f64 store they quantized from.
func (s *StoreI8) TopK(q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	return s.TopKMasked(q, k, unsigned, workers, nil)
}

// TopKMasked is TopK restricted to live rows (nil or empty dead takes
// exactly the TopK path).
func (s *StoreI8) TopKMasked(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, _, err := s.topKMaskedDone(q, k, unsigned, workers, dead, nil)
	return hits, err
}

// TopKCtx is TopK with cancellation.
func (s *StoreI8) TopKCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	return s.TopKMaskedCtx(ctx, q, k, unsigned, workers, nil)
}

// TopKMaskedCtx is TopKMasked with cancellation.
func (s *StoreI8) TopKMaskedCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, stopped, err := s.topKMaskedDone(q, k, unsigned, workers, dead, doneOf(ctx))
	if err != nil {
		return nil, err
	}
	if stopped {
		return nil, stopErr(ctx)
	}
	return hits, nil
}

func (s *StoreI8) topKMaskedDone(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones, done <-chan struct{}) ([]Hit, bool, error) {
	if err := s.checkMask(dead); err != nil {
		return nil, false, err
	}
	if err := s.checkQuery(q); err != nil {
		return nil, false, err
	}
	qc, qscale := quantizeQueryI8(q)
	combined := s.scale * qscale
	score := func(lo, hi int, out []float64) { s.dotRange(qc, combined, lo, hi, out) }
	return scoredTopKDone(s.Len(), k, workers, unsigned, score, dead, done)
}
