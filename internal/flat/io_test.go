package flat

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestBlockRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{0, 1}, {1, 1}, {3, 8}, {17, 5}} {
		s, err := New(tc.d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tc.n; i++ {
			v := make(vec.Vector, tc.d)
			for j := range v {
				v[j] = float64(i)*1.5 - float64(j)/3
			}
			if i == 0 && tc.d > 1 {
				v[0], v[1] = math.Inf(-1), -0.0
			}
			if err := s.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		enc := s.AppendBinary(nil)
		if len(enc) != s.EncodedSize() {
			t.Fatalf("n=%d d=%d: encoded %d bytes, EncodedSize says %d", tc.n, tc.d, len(enc), s.EncodedSize())
		}
		// Decoding consumes exactly the block even with trailing bytes.
		got, consumed, err := DecodeStore(append(enc, 0xAA, 0xBB))
		if err != nil {
			t.Fatalf("n=%d d=%d: decode: %v", tc.n, tc.d, err)
		}
		if consumed != len(enc) {
			t.Fatalf("consumed %d, want %d", consumed, len(enc))
		}
		if got.Dim() != tc.d || got.Len() != tc.n {
			t.Fatalf("decoded %dx%d, want %dx%d", got.Len(), got.Dim(), tc.n, tc.d)
		}
		for i := 0; i < tc.n; i++ {
			a, b := s.Row(i), got.Row(i)
			for j := range a {
				if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
					t.Fatalf("row %d elem %d: %v != %v", i, j, a[j], b[j])
				}
			}
			if math.Float64bits(s.Norm(i)) != math.Float64bits(got.Norm(i)) {
				t.Fatalf("row %d norm differs: %v != %v", i, s.Norm(i), got.Norm(i))
			}
		}
	}
}

func TestDecodeStoreRejectsDamage(t *testing.T) {
	s, _ := New(4)
	for i := 0; i < 6; i++ {
		s.Append(vec.Vector{float64(i), 1, 2, 3})
	}
	enc := s.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeStore(enc[:cut]); err == nil {
			t.Fatalf("cut=%d: accepted truncated block", cut)
		}
	}
	for off := 0; off < len(enc); off++ {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x04
		if _, _, err := DecodeStore(bad); err == nil {
			t.Fatalf("off=%d: accepted corrupt block", off)
		}
	}
}
