package flat

import (
	"context"

	"repro/internal/vec"
)

// ScanStats counts the work one top-k scan actually performed, for the
// serving layer's query-explain path. The counters mirror the drivers'
// block triage exactly:
//
//   - ScannedRows: rows whose dot product the kernel evaluated.
//   - PrunedBlocks: blocks never evaluated because the descending-norm
//     Cauchy–Schwarz bound terminated the scan first (NormSorted only).
//   - SkippedBlocks: blocks skipped wholesale because every row in them
//     was tombstoned.
//
// The struct is filled by one serial scan at a time; the stats entry
// points are not meant for the chunk-parallel Store drivers (those
// report via MaskedScanProfile, whose answer is query-independent).
type ScanStats struct {
	ScannedRows   int
	PrunedBlocks  int
	SkippedBlocks int
}

// MaskedScanProfile reports what a blocked masked scan over n rows
// does before looking at a single score: how many rows the dot kernel
// evaluates and how many whole blocks the tombstone triage skips. The
// Store drivers' skip decision depends only on the tombstone set — not
// on the query — so the profile is exact for every Store.TopKMasked*
// call over (n, dead) and costs a popcount sweep instead of a rescan.
func MaskedScanProfile(n int, dead *Tombstones) (scannedRows, skippedBlocks int) {
	if dead.Count() == 0 {
		return n, 0
	}
	for start := 0; start < n; start += blockRows {
		end := start + blockRows
		if end > n {
			end = n
		}
		nb := end - start
		if dead.DeadIn(start, end) == nb {
			skippedBlocks++
			continue
		}
		scannedRows += nb
	}
	return scannedRows, skippedBlocks
}

// TopKStatsCtx is TopKCtx with scan accounting: identical hits, plus
// stats (when non-nil) filled with the rows evaluated and the blocks
// the norm bound pruned.
func (ns *NormSorted) TopKStatsCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, stats *ScanStats) ([]Hit, int, error) {
	hits, scanned, stopped, err := ns.topKDone(q, k, unsigned, doneOf(ctx), stats)
	if err != nil {
		return nil, scanned, err
	}
	if stopped {
		return nil, scanned, stopErr(ctx)
	}
	return hits, scanned, nil
}

// TopKMaskedStatsCtx is TopKMaskedCtx with scan accounting.
func (ns *NormSorted) TopKMaskedStatsCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, dead *Tombstones, stats *ScanStats) ([]Hit, int, error) {
	hits, scanned, stopped, err := ns.topKMaskedDone(q, k, unsigned, dead, doneOf(ctx), stats)
	if err != nil {
		return nil, scanned, err
	}
	if stopped {
		return nil, scanned, stopErr(ctx)
	}
	return hits, scanned, nil
}
