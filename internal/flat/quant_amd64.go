//go:build amd64

package flat

// useQuantAsm gates the AVX2 quantized-store range kernels (f32 at
// twice the f64 tile kernels' lanes, int8 via VPMADDWD). A variable —
// not a constant — so the quant tests can force the pure-Go chains and
// prove both paths produce bit-identical scores.
var useQuantAsm = x86HasAVX2()

// dot32Range16 scores len(out) contiguous d=16 float32 rows of p
// against the single query q (16 floats, loaded once), widening each
// result to float64. Bit-identical to dot32Range16Go: 8 float32 lanes
// (VMULPS/VADDPS), t_i = s_i + s_{i+4} (VEXTRACTF128+VADDPS), then
// (t0+t1)+(t2+t3) via VHADDPS×2 and a single VCVTSS2SD.
//
//go:noescape
func dot32Range16(p, q []float32, out []float64)

// dot32Range8 is the d=8 variant: one 8-lane multiply per row, the
// shared 8→4→1 reduction.
//
//go:noescape
func dot32Range8(p, q []float32, out []float64)

// dotI8Range16 scores len(out) contiguous d=16 int8 rows of p against
// the int16-widened query codes q (16 values, loaded once) and
// dequantizes in-register: VPMOVSXBW sign-extends a row, VPMADDWD forms
// exact int32 pair sums, a VPHADDD tree totals four rows at a time, and
// VCVTDQ2PD+VMULPD widen the exact int32 dots and apply the combined
// scale. Integer accumulation is order free and float64(int32) is
// exact, so the single multiply matches the scalar loop's
// float64(acc)·combined bit for bit.
//
//go:noescape
func dotI8Range16(p []int8, q []int16, combined float64, out []float64)
