// Package flat provides the columnar vector storage backing every
// brute-force inner-product scan in the repo. A Store packs n×d vectors
// into one contiguous []float64 with precomputed Euclidean norms, so a
// scan streams cache lines instead of chasing one pointer per row as the
// []vec.Vector layout does. The scan kernels are blocked (dot products
// are materialised a row-block at a time into a small buffer) and built
// on vec.DotKernel's 4-way multi-accumulator loop, which keeps results
// bit-identical to vec.Dot on the equivalent row slices — the
// equivalence tests in this package and internal/server assert exactly
// that.
//
// NormSorted adds the LEMP-style descending-norm traversal: rows are
// physically reordered by decreasing norm (preserving contiguity) so a
// top-k scan can stop at the first block whose leading norm cannot beat
// the k-th best hit via the Cauchy–Schwarz bound ‖p‖·‖q‖ ≥ |pᵀq|.
package flat

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/vec"
)

// blockRows is the row-block granularity of the scan kernels: dots are
// computed blockRows at a time into a stack buffer, so the top-k
// bookkeeping runs over a dense score slice instead of interleaving
// with the FP pipeline.
const blockRows = 256

// minParallelRows is the shard size below which TopK ignores the
// workers hint — goroutine fan-out costs more than the scan itself.
const minParallelRows = 4096

// Store is an append-only columnar vector set: row i occupies
// data[i*dim : (i+1)*dim] and norms[i] caches ‖row i‖.
type Store struct {
	dim   int
	data  []float64
	norms []float64
}

// New returns an empty store of dimension d.
func New(d int) (*Store, error) {
	if d <= 0 {
		return nil, fmt.Errorf("flat: dimension %d must be positive", d)
	}
	return &Store{dim: d}, nil
}

// FromVectors packs vs into a new store. All vectors must share one
// positive dimension.
func FromVectors(vs []vec.Vector) (*Store, error) {
	if len(vs) == 0 {
		return nil, fmt.Errorf("flat: empty vector set")
	}
	s, err := New(len(vs[0]))
	if err != nil {
		return nil, err
	}
	if err := s.AppendAll(vs); err != nil {
		return nil, err
	}
	return s, nil
}

// Len returns the number of rows.
func (s *Store) Len() int { return len(s.norms) }

// ResetDim empties the store in place, adopting dimension d while
// keeping the backing capacity, so pooled stores (e.g. per-request
// query batches) reach a zero-allocation steady state. Existing row
// views become invalid.
func (s *Store) ResetDim(d int) error {
	if d <= 0 {
		return fmt.Errorf("flat: dimension %d must be positive", d)
	}
	s.dim = d
	s.data = s.data[:0]
	s.norms = s.norms[:0]
	return nil
}

// Dim returns the row dimension.
func (s *Store) Dim() int { return s.dim }

// Append copies v into the store as a new row.
func (s *Store) Append(v vec.Vector) error {
	if len(v) != s.dim {
		return fmt.Errorf("flat: append dimension %d, store has %d", len(v), s.dim)
	}
	s.data = append(s.data, v...)
	s.norms = append(s.norms, vec.Norm(v))
	return nil
}

// AppendAll copies every vector of vs into the store. On a dimension
// mismatch the store is left unchanged.
func (s *Store) AppendAll(vs []vec.Vector) error {
	for i, v := range vs {
		if len(v) != s.dim {
			return fmt.Errorf("flat: append vector %d has dimension %d, store has %d", i, len(v), s.dim)
		}
	}
	s.data = slices.Grow(s.data, len(vs)*s.dim)
	s.norms = slices.Grow(s.norms, len(vs))
	for _, v := range vs {
		s.data = append(s.data, v...)
		s.norms = append(s.norms, vec.Norm(v))
	}
	return nil
}

// Clone returns an independent deep copy (used to build the next
// immutable snapshot from the current one at ingest).
func (s *Store) Clone() *Store { return s.CloneGrow(0) }

// CloneGrow returns an independent deep copy with spare capacity for
// extraRows more rows, so a snapshot rebuild (clone + append batch)
// copies the existing data exactly once.
func (s *Store) CloneGrow(extraRows int) *Store {
	if extraRows < 0 {
		extraRows = 0
	}
	c := &Store{
		dim:   s.dim,
		data:  make([]float64, len(s.data), len(s.data)+extraRows*s.dim),
		norms: make([]float64, len(s.norms), len(s.norms)+extraRows),
	}
	copy(c.data, s.data)
	copy(c.norms, s.norms)
	return c
}

// Row returns row i as a vector view aliasing the backing array.
// Callers must not mutate it.
func (s *Store) Row(i int) vec.Vector {
	return vec.Vector(s.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim])
}

// Rows returns views of every row (slice headers only; no float copy).
func (s *Store) Rows() []vec.Vector {
	out := make([]vec.Vector, s.Len())
	for i := range out {
		out[i] = s.Row(i)
	}
	return out
}

// Norm returns the cached Euclidean norm of row i.
func (s *Store) Norm(i int) float64 { return s.norms[i] }

// Dot returns row(i)ᵀq. Panics if len(q) != Dim, mirroring vec.Dot.
func (s *Store) Dot(i int, q vec.Vector) float64 {
	if len(q) != s.dim {
		panic(fmt.Sprintf("flat: Dot dimension mismatch %d != %d", len(q), s.dim))
	}
	return vec.DotKernel(s.Row(i), q)
}

// checkQuery validates a query's dimension as a structured error (the
// serving layer turns it into an HTTP 400 instead of a panic).
func (s *Store) checkQuery(q vec.Vector) error {
	if len(q) != s.dim {
		return fmt.Errorf("flat: query dimension %d, store has %d", len(q), s.dim)
	}
	return nil
}

// DotBatch computes out[i] = row(i)ᵀq for every row. out must have
// length Len. This is the hot kernel: rows are contiguous, so the loop
// streams the backing array once with no per-row pointer chase.
func (s *Store) DotBatch(q vec.Vector, out []float64) error {
	if err := s.checkQuery(q); err != nil {
		return err
	}
	if len(out) != s.Len() {
		return fmt.Errorf("flat: DotBatch out length %d, want %d", len(out), s.Len())
	}
	s.dotRange(q, 0, s.Len(), out)
	return nil
}

// DotRange fills out[0:hi-lo] with row(i)ᵀq for i ∈ [lo, hi). It is the
// tile primitive of the P×Q join kernels: a caller iterating row blocks
// of one store against row blocks of another keeps both operands
// cache-resident while every dot still runs through the shared blocked
// kernel (bit-identical to Dot/DotBatch on the same rows).
func (s *Store) DotRange(q vec.Vector, lo, hi int, out []float64) error {
	if err := s.checkQuery(q); err != nil {
		return err
	}
	if lo < 0 || hi > s.Len() || lo > hi {
		return fmt.Errorf("flat: DotRange [%d, %d) out of [0, %d)", lo, hi, s.Len())
	}
	if len(out) != hi-lo {
		return fmt.Errorf("flat: DotRange out length %d, want %d", len(out), hi-lo)
	}
	s.dotRange(q, lo, hi, out)
	return nil
}

// dotRange fills out[0:hi-lo] with dots of rows [lo, hi). The 4-way
// multi-accumulator loop is written out inline rather than calling
// vec.DotKernel — Go never inlines functions containing loops, and at
// small d the call overhead rivals the arithmetic. The accumulation
// order is identical to vec.DotKernel's (lane i mod 4 into accumulator
// i mod 4, partial sums combined as (s0+s1)+(s2+s3)), so scores stay
// bit-identical to vec.Dot; the equivalence tests pin this down.
// Common dimensions dispatch to fully-unrolled kernels whose bounds
// checks vanish statically.
func (s *Store) dotRange(q vec.Vector, lo, hi int, out []float64) {
	d := s.dim
	data := s.data
	q = q[:d:d]
	switch d {
	case 8:
		dotRange8(data, q, lo, hi, out)
		return
	case 16:
		dotRange16(data, q, lo, hi, out)
		return
	}
	dotRangeGeneric(data, d, q, lo, hi, out)
}

// dotRangeGeneric is the any-dimension kernel body shared by the
// single-query scan and the multi-query tile fallback: 4-way lanes
// (i mod 4) with the scalar tail folded into lane 0, partial sums
// combined as (s0+s1)+(s2+s3).
func dotRangeGeneric(data []float64, d int, q []float64, lo, hi int, out []float64) {
	q = q[:d:d]
	for r := lo; r < hi; r++ {
		off := r * d
		row := data[off : off+d : off+d]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= d; i += 4 {
			s0 += row[i] * q[i]
			s1 += row[i+1] * q[i+1]
			s2 += row[i+2] * q[i+2]
			s3 += row[i+3] * q[i+3]
		}
		for ; i < d; i++ {
			s0 += row[i] * q[i]
		}
		out[r-lo] = (s0 + s1) + (s2 + s3)
	}
}

// dotRange8 is the d=8 specialization: the unroll is complete, so the
// compiler proves every index in range and the loop is branch-free
// arithmetic. Accumulation order matches the generic kernel exactly.
func dotRange8(data, q []float64, lo, hi int, out []float64) {
	q = q[:8:8]
	for r := lo; r < hi; r++ {
		row := data[r*8 : r*8+8 : r*8+8]
		s0 := row[0]*q[0] + row[4]*q[4]
		s1 := row[1]*q[1] + row[5]*q[5]
		s2 := row[2]*q[2] + row[6]*q[6]
		s3 := row[3]*q[3] + row[7]*q[7]
		out[r-lo] = (s0 + s1) + (s2 + s3)
	}
}

// dotRange16 is the d=16 specialization. Rows are processed in pairs so
// each load of q[i] feeds two independent accumulator chains, roughly
// halving the query-side load traffic and doubling the instruction-level
// parallelism; per-row accumulation order is unchanged.
func dotRange16(data, q []float64, lo, hi int, out []float64) {
	q = q[:16:16]
	r := lo
	for ; r+2 <= hi; r += 2 {
		a := data[r*16 : r*16+16 : r*16+16]
		b := data[r*16+16 : r*16+32 : r*16+32]
		a0 := ((a[0]*q[0] + a[4]*q[4]) + a[8]*q[8]) + a[12]*q[12]
		b0 := ((b[0]*q[0] + b[4]*q[4]) + b[8]*q[8]) + b[12]*q[12]
		a1 := ((a[1]*q[1] + a[5]*q[5]) + a[9]*q[9]) + a[13]*q[13]
		b1 := ((b[1]*q[1] + b[5]*q[5]) + b[9]*q[9]) + b[13]*q[13]
		a2 := ((a[2]*q[2] + a[6]*q[6]) + a[10]*q[10]) + a[14]*q[14]
		b2 := ((b[2]*q[2] + b[6]*q[6]) + b[10]*q[10]) + b[14]*q[14]
		a3 := ((a[3]*q[3] + a[7]*q[7]) + a[11]*q[11]) + a[15]*q[15]
		b3 := ((b[3]*q[3] + b[7]*q[7]) + b[11]*q[11]) + b[15]*q[15]
		out[r-lo] = (a0 + a1) + (a2 + a3)
		out[r-lo+1] = (b0 + b1) + (b2 + b3)
	}
	for ; r < hi; r++ {
		a := data[r*16 : r*16+16 : r*16+16]
		a0 := ((a[0]*q[0] + a[4]*q[4]) + a[8]*q[8]) + a[12]*q[12]
		a1 := ((a[1]*q[1] + a[5]*q[5]) + a[9]*q[9]) + a[13]*q[13]
		a2 := ((a[2]*q[2] + a[6]*q[6]) + a[10]*q[10]) + a[14]*q[14]
		a3 := ((a[3]*q[3] + a[7]*q[7]) + a[11]*q[11]) + a[15]*q[15]
		out[r-lo] = (a0 + a1) + (a2 + a3)
	}
}

// Hit is one scan answer: a row index and its (absolute, for unsigned)
// inner product with the query.
type Hit struct {
	Index int
	Score float64
}

// Acc accumulates the k best (index, score) pairs under the canonical
// ordering: score descending, index ascending on ties. It is the single
// implementation of that contract — the serving layer's indexes build
// on it too, so flat-backed and candidate-based engines tie-break
// identically. NaN scores are rejected outright: they cannot be ranked
// and would otherwise evict legitimate hits while breaking the
// descending-score invariant.
type Acc struct {
	k    int
	hits []Hit
}

// NewAcc returns an accumulator keeping the best k offers.
func NewAcc(k int) Acc { return Acc{k: k} }

// Offer submits a candidate.
func (a *Acc) Offer(idx int, score float64) {
	if math.IsNaN(score) {
		return
	}
	if len(a.hits) == a.k {
		last := a.hits[a.k-1]
		if score < last.Score || (score == last.Score && idx > last.Index) {
			return
		}
		a.hits = a.hits[:a.k-1]
	}
	pos := sort.Search(len(a.hits), func(i int) bool {
		h := a.hits[i]
		return h.Score < score || (h.Score == score && h.Index > idx)
	})
	a.hits = append(a.hits, Hit{})
	copy(a.hits[pos+1:], a.hits[pos:])
	a.hits[pos] = Hit{Index: idx, Score: score}
}

// Hits returns the accumulated hits in canonical order. The slice
// aliases the accumulator's storage.
func (a *Acc) Hits() []Hit { return a.hits }

// Threshold returns the current admission bar: a candidate scanned at a
// higher index than everything accumulated so far enters only with a
// score strictly above the k-th best (ties lose to the smaller index
// already held), or unconditionally while under-full.
func (a *Acc) Threshold() float64 {
	if len(a.hits) < a.k {
		return math.Inf(-1)
	}
	return a.hits[a.k-1].Score
}

// Full reports whether k hits have accumulated.
func (a *Acc) Full() bool { return len(a.hits) == a.k }

// offerScores feeds one block of materialised scores (rows base..) into
// a. perm maps physical to original row indexes; nil means the block was
// scanned in ascending index order, which allows the stronger skip:
// once full, a tie at the threshold always loses to the smaller index
// already held (so v <= thr skips in one compare). With a permutation a
// tie may carry a smaller original index, so only strictly-worse scores
// can be skipped. This is the single copy of the top-k bookkeeping both
// scan orders share; the loops are specialised on the loop-invariant
// (full, unsigned, perm) flags because the skip compare runs once per
// scanned row — the hottest non-kernel instruction in the scan. NaN
// scores fail every skip compare and are rejected by Offer, exactly as
// in the unspecialised form.
func offerScores(a *Acc, buf []float64, base int, unsigned bool, perm []int) {
	r := 0
	for ; r < len(buf) && !a.Full(); r++ {
		v := buf[r]
		if unsigned && v < 0 {
			v = -v
		}
		idx := base + r
		if perm != nil {
			idx = perm[idx]
		}
		a.Offer(idx, v)
	}
	if r == len(buf) {
		return
	}
	// Full from here on (hits are never removed, so Full is sticky).
	thr := a.Threshold()
	switch {
	case perm == nil && !unsigned:
		for ; r < len(buf); r++ {
			if v := buf[r]; !(v <= thr) {
				a.Offer(base+r, v)
				thr = a.Threshold()
			}
		}
	case perm == nil:
		for ; r < len(buf); r++ {
			v := buf[r]
			if v < 0 {
				v = -v
			}
			if !(v <= thr) {
				a.Offer(base+r, v)
				thr = a.Threshold()
			}
		}
	case !unsigned:
		for ; r < len(buf); r++ {
			if v := buf[r]; !(v < thr) {
				a.Offer(perm[base+r], v)
				thr = a.Threshold()
			}
		}
	default:
		for ; r < len(buf); r++ {
			v := buf[r]
			if v < 0 {
				v = -v
			}
			if !(v < thr) {
				a.Offer(perm[base+r], v)
				thr = a.Threshold()
			}
		}
	}
}

// scanBlocks runs the blocked top-k scan over rows [lo, hi) in
// ascending order, offering into a. Scores are materialised blockRows
// at a time; the dense buffer pass only calls offer for candidates that
// can actually enter, so the common row costs one multiply-add chain
// and one compare. done, when non-nil, is polled once per block; a
// closed channel abandons the scan and reports true (the accumulator is
// then partial and must be discarded). A nil done keeps the loop free
// of the poll entirely.
func (s *Store) scanBlocks(q vec.Vector, lo, hi int, unsigned bool, a *Acc, done <-chan struct{}) bool {
	var buf [blockRows]float64
	for start := lo; start < hi; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		end := start + blockRows
		if end > hi {
			end = hi
		}
		nb := end - start
		s.dotRange(q, start, end, buf[:nb])
		offerScores(a, buf[:nb], start, unsigned, nil)
	}
	return false
}

// MaxScanWorkers returns the largest workers value TopK can actually
// spend on this store — the same clamp TopK applies internally. Serving
// layers use it to avoid reserving parallelism budget a small shard
// would hold idle.
func (s *Store) MaxScanWorkers() int { return s.Len() / minParallelRows }

// CanParallelScan reports whether TopK's workers hint can split this
// store's scan at all.
func (s *Store) CanParallelScan() bool { return s.MaxScanWorkers() >= 2 }

// TopK returns up to k hits for q under the canonical (score
// descending, index ascending) ordering; unsigned ranks by |pᵀq|.
// workers > 1 splits the scan across that many goroutines when the
// store is large enough — results are identical to the serial scan
// because per-chunk accumulators are merged under the same canonical
// ordering.
func (s *Store) TopK(q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	hits, _, err := s.topKDone(q, k, unsigned, workers, nil)
	return hits, err
}

// topKDone is the TopK driver: done == nil runs the historical unchecked
// scan; otherwise the block loop polls done and a true second return
// means the scan was abandoned (hits are nil).
func (s *Store) topKDone(q vec.Vector, k int, unsigned bool, workers int, done <-chan struct{}) ([]Hit, bool, error) {
	if err := s.checkQuery(q); err != nil {
		return nil, false, err
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	n := s.Len()
	if workers > n/minParallelRows {
		workers = n / minParallelRows
	}
	if workers <= 1 {
		a := NewAcc(k)
		if s.scanBlocks(q, 0, n, unsigned, &a, done) {
			return nil, true, nil
		}
		return a.Hits(), false, nil
	}
	chunk := (n + workers - 1) / workers
	accs := make([]Acc, workers)
	stopped := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			accs[w] = NewAcc(k)
			stopped[w] = s.scanBlocks(q, lo, hi, unsigned, &accs[w], done)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, st := range stopped {
		if st {
			return nil, true, nil
		}
	}
	merged := NewAcc(k)
	for w := range accs {
		for _, h := range accs[w].Hits() {
			merged.Offer(h.Index, h.Score)
		}
	}
	return merged.Hits(), false, nil
}

// NormSorted is a descending-norm view of a Store for early-terminating
// top-k scans: rows are physically reordered by (norm descending,
// original index ascending) into a private store, so the traversal is
// both contiguous and monotone in the Cauchy–Schwarz bound. Returned
// hits carry original row indexes.
type NormSorted struct {
	store *Store
	perm  []int // perm[physical] = original index
}

// NewNormSorted builds the reordered view in O(n log n + n·d). The
// physical copy deliberately doubles the rows' resident memory (the
// original store stays live in the snapshot): keeping the norm-ordered
// prefix contiguous is what makes the early-terminating scan stream at
// kernel speed, and the benchmark delta over a permutation-chasing scan
// (≈3× on the serving batch path) pays for the space. The sort runs
// over concrete (norm, index) keys — the build sits on the snapshot
// rebuild and per-join paths, where a reflective sort.Slice would cost
// several times the row copy itself.
func NewNormSorted(s *Store) *NormSorted {
	n := s.Len()
	type key struct {
		norm float64
		idx  int
	}
	keys := make([]key, n)
	for i := range keys {
		keys[i] = key{norm: s.norms[i], idx: i}
	}
	slices.SortFunc(keys, func(a, b key) int {
		if a.norm != b.norm {
			if a.norm > b.norm {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	perm := make([]int, n)
	re := &Store{
		dim:   s.dim,
		data:  make([]float64, len(s.data)),
		norms: make([]float64, n),
	}
	for phys, k := range keys {
		perm[phys] = k.idx
		copy(re.data[phys*s.dim:(phys+1)*s.dim], s.Row(k.idx))
		re.norms[phys] = k.norm
	}
	return &NormSorted{store: re, perm: perm}
}

// Len returns the number of rows.
func (ns *NormSorted) Len() int { return ns.store.Len() }

// Dim returns the row dimension.
func (ns *NormSorted) Dim() int { return ns.store.dim }

// Store returns the physically reordered store (rows in descending-norm
// order; row norms via Norm are therefore monotonically non-increasing).
// Callers must treat it as read-only — it backs this view.
func (ns *NormSorted) Store() *Store { return ns.store }

// Perm returns the physical→original index map: Perm()[i] is the
// original row index of the reordered store's row i. The slice aliases
// the view's state and must not be mutated.
func (ns *NormSorted) Perm() []int { return ns.perm }

// TopK returns up to k hits for q (original row indexes, canonical
// ordering) plus the number of rows whose inner product was evaluated
// before the norm bound terminated the scan. Blocks are visited in
// descending-norm order; once the k-th best hit beats ‖p‖·‖q‖ for the
// block's leading (largest) norm, no later row can enter and the scan
// stops. Exactness does not depend on the bound — it only saves work.
func (ns *NormSorted) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, int, error) {
	hits, scanned, _, err := ns.topKDone(q, k, unsigned, nil, nil)
	return hits, scanned, err
}

// topKDone is the NormSorted.TopK driver with the optional per-block
// done poll (nil done keeps the historical unchecked loop). stats,
// when non-nil, additionally receives the explain counters; the nil
// case costs one predictable branch per block.
func (ns *NormSorted) topKDone(q vec.Vector, k int, unsigned bool, done <-chan struct{}, stats *ScanStats) ([]Hit, int, bool, error) {
	s := ns.store
	if err := s.checkQuery(q); err != nil {
		return nil, 0, false, err
	}
	if k <= 0 {
		return nil, 0, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	qn := vec.Norm(q)
	n := s.Len()
	a := NewAcc(k)
	scanned := 0
	var buf [blockRows]float64
	for start := 0; start < n; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return nil, scanned, true, nil
			default:
			}
		}
		if a.Full() && s.norms[start]*qn < a.Threshold() {
			if stats != nil {
				stats.PrunedBlocks += (n - start + blockRows - 1) / blockRows
			}
			break // every remaining row is dominated by the bound
		}
		end := start + blockRows
		if end > n {
			end = n
		}
		nb := end - start
		s.dotRange(q, start, end, buf[:nb])
		scanned += nb
		offerScores(&a, buf[:nb], start, unsigned, ns.perm)
	}
	if stats != nil {
		stats.ScannedRows += scanned
	}
	return a.Hits(), scanned, false, nil
}
