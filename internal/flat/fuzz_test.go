package flat

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/vec"
)

// FuzzDotBatch drives the blocked columnar kernel (including the d=8
// and d=16 specializations and the row-pair tail) against a naive
// per-element reference, with the corpus bytes decoded as (d, row data,
// query). The kernel must agree with compensated-naive summation to a
// relative 1e-9 and must agree with vec.Dot exactly.
func FuzzDotBatch(f *testing.F) {
	mk := func(d byte, vals ...float64) []byte {
		b := []byte{d}
		for _, v := range vals {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			b = append(b, w[:]...)
		}
		return b
	}
	f.Add(mk(1, 1, 2))
	f.Add(mk(3, 1, 2, 3, 4, 5, 6, 0.5, -0.5, 0))
	f.Add(mk(8, 1, 2, 3, 4, 5, 6, 7, 8, 1, 1, 1, 1, 1, 1, 1, 1))
	f.Add(mk(16, 1, -1, 2, -2, 3, -3, 4, -4, 5, -5, 6, -6, 7, -7, 8, -8,
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 1 {
			return
		}
		d := int(raw[0]%32) + 1
		raw = raw[1:]
		vals := make([]float64, 0, len(raw)/8)
		for len(raw) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
			raw = raw[8:]
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 0 // keep the reference comparison meaningful
			}
			vals = append(vals, v)
		}
		if len(vals) < 2*d {
			return
		}
		q := vec.Vector(vals[:d])
		rows := vals[d:]
		n := len(rows) / d
		if n == 0 {
			return
		}
		vs := make([]vec.Vector, n)
		for i := range vs {
			vs[i] = vec.Vector(rows[i*d : (i+1)*d])
		}
		s, err := FromVectors(vs)
		if err != nil {
			t.Fatalf("FromVectors: %v", err)
		}
		out := make([]float64, n)
		if err := s.DotBatch(q, out); err != nil {
			t.Fatalf("DotBatch: %v", err)
		}
		for i := range vs {
			// Exact agreement with the shared scalar kernel.
			if want := vec.Dot(vs[i], q); out[i] != want && !(math.IsNaN(out[i]) && math.IsNaN(want)) {
				t.Fatalf("row %d: DotBatch=%g vec.Dot=%g", i, out[i], want)
			}
			// Tolerance agreement with a naive left-to-right sum.
			var naive, scale float64
			for j := 0; j < d; j++ {
				naive += vs[i][j] * q[j]
				scale += math.Abs(vs[i][j] * q[j])
			}
			tol := 1e-9 * (scale + 1)
			if diff := math.Abs(out[i] - naive); diff > tol && !math.IsNaN(naive) {
				t.Fatalf("row %d: kernel %g vs naive %g (diff %g > tol %g)", i, out[i], naive, diff, tol)
			}
		}
		// TopK must never panic and must stay consistent with DotBatch.
		hits, err := s.TopK(q, 3, false, 1)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		for _, h := range hits {
			if h.Index < 0 || h.Index >= n {
				t.Fatalf("TopK returned out-of-range index %d", h.Index)
			}
			if h.Score != out[h.Index] && !(math.IsNaN(h.Score) && math.IsNaN(out[h.Index])) {
				t.Fatalf("TopK score %g disagrees with DotBatch %g at row %d", h.Score, out[h.Index], h.Index)
			}
		}
	})
}

// FuzzDotTile drives the multi-query tile kernels (the AVX2 d=8/d=16
// micro-kernels when available, plus the pure-Go pair kernels and the
// generic path) against the single-query kernel: every cell of the
// tile must match DotRange bit for bit, and TopKMulti must agree with
// per-query TopK. Corpus bytes decode as (d, nq, row data, queries).
func FuzzDotTile(f *testing.F) {
	mk := func(d, nq byte, vals ...float64) []byte {
		b := []byte{d, nq}
		for _, v := range vals {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			b = append(b, w[:]...)
		}
		return b
	}
	f.Add(mk(2, 1, 1, 2, 3, 4, 5, 6))
	f.Add(mk(8, 4,
		1, 2, 3, 4, 5, 6, 7, 8, -1, -2, -3, -4, -5, -6, -7, -8,
		1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
		1, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1,
		2, 2, 2, 2, 2, 2, 2, 2))
	f.Add(mk(16, 5,
		1, -1, 2, -2, 3, -3, 4, -4, 5, -5, 6, -6, 7, -7, 8, -8,
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		d := int(raw[0]%24) + 1
		nq := int(raw[1]%9) + 1
		raw = raw[2:]
		vals := make([]float64, 0, len(raw)/8)
		for len(raw) >= 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[:8]))
			raw = raw[8:]
			if math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 0 // keep magnitudes sane; NaN stays (the kernels must cope)
			}
			vals = append(vals, v)
		}
		if len(vals) < (nq+1)*d {
			return
		}
		qvals := vals[:nq*d]
		rows := vals[nq*d:]
		n := len(rows) / d
		if n == 0 {
			return
		}
		qvecs := make([]vec.Vector, nq)
		for j := range qvecs {
			qvecs[j] = vec.Vector(qvals[j*d : (j+1)*d])
		}
		vs := make([]vec.Vector, n)
		for i := range vs {
			vs[i] = vec.Vector(rows[i*d : (i+1)*d])
		}
		s, err := FromVectors(vs)
		if err != nil {
			t.Fatalf("FromVectors: %v", err)
		}
		qs, err := FromVectors(qvecs)
		if err != nil {
			t.Fatalf("FromVectors(queries): %v", err)
		}
		out := make([]float64, nq*n)
		if err := s.DotTile(qs, 0, nq, 0, n, out); err != nil {
			t.Fatalf("DotTile: %v", err)
		}
		want := make([]float64, n)
		for j := 0; j < nq; j++ {
			if err := s.DotRange(qs.Row(j), 0, n, want); err != nil {
				t.Fatalf("DotRange: %v", err)
			}
			for r := 0; r < n; r++ {
				got := out[j*n+r]
				if got != want[r] && !(math.IsNaN(got) && math.IsNaN(want[r])) {
					t.Fatalf("d=%d nq=%d query %d row %d: DotTile=%g DotRange=%g", d, nq, j, r, got, want[r])
				}
			}
		}
		k := n%3 + 1
		multi, err := s.TopKMulti(qs, k, false)
		if err != nil {
			t.Fatalf("TopKMulti: %v", err)
		}
		for j := range qvecs {
			single, err := s.TopK(qs.Row(j), k, false, 1)
			if err != nil {
				t.Fatalf("TopK: %v", err)
			}
			if len(multi[j]) != len(single) {
				t.Fatalf("query %d: multi %v != single %v", j, multi[j], single)
			}
			for i := range single {
				if multi[j][i] != single[i] {
					t.Fatalf("query %d: multi %v != single %v", j, multi[j], single)
				}
			}
		}
	})
}
