//go:build !amd64

package flat

// useQuantAsm is false off amd64: the quantized scans run the pure-Go
// kernels (same accumulation chains, same results).
var useQuantAsm = false

func dot32Range16(p, q []float32, out []float64) { panic("flat: dot32Range16 asm unavailable") }

func dot32Range8(p, q []float32, out []float64) { panic("flat: dot32Range8 asm unavailable") }

func dotI8Range16(p []int8, q []int16, combined float64, out []float64) {
	panic("flat: dotI8Range16 asm unavailable")
}
