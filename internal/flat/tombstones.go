// Tombstone-masked scans. A Tombstones value marks a subset of a
// store's rows dead; the masked top-k drivers answer queries over the
// live rows only, bit-identically to scanning a store that never held
// the dead rows. The drivers skip whole row-blocks whose tombstone
// slice is full — the dot kernel never touches them — so scans over
// tombstone-heavy stores (the state between a burst of deletes and the
// next compaction) approach the cost of the compacted store. Blocks
// with no dead rows run the unmasked bookkeeping; only mixed blocks pay
// a per-row bit test. A nil *Tombstones means "all rows live" and every
// masked entry point delegates straight to its unmasked twin, so the
// mutation machinery costs nothing until the first delete.
package flat

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/vec"
)

// Tombstones is a bit-packed dead-row set over a store's row space.
// Build it with NewTombstones/Grow/Kill, then treat it as immutable
// once it is shared with readers (the serving layer publishes it inside
// an immutable shard snapshot).
type Tombstones struct {
	bits  *bitvec.Bits
	count int
}

// NewTombstones returns an all-live tombstone set over n rows.
func NewTombstones(n int) *Tombstones {
	return &Tombstones{bits: bitvec.NewBits(n)}
}

// Len returns the number of rows covered (0 for nil).
func (t *Tombstones) Len() int {
	if t == nil {
		return 0
	}
	return t.bits.N
}

// Count returns the number of dead rows (0 for nil).
func (t *Tombstones) Count() int {
	if t == nil {
		return 0
	}
	return t.count
}

// Dead reports whether row i is tombstoned. A nil set has no dead rows.
func (t *Tombstones) Dead(i int) bool {
	if t == nil {
		return false
	}
	return t.bits.W[i>>6]>>(uint(i)&63)&1 == 1
}

// Kill marks row i dead. Idempotent. Callers must not Kill a set that
// is already shared with readers — grow or clone first.
func (t *Tombstones) Kill(i int) {
	if t.bits.Bit(i) == 1 {
		return
	}
	t.bits.SetBit(i, 1)
	t.count++
}

// Grow returns an independent copy covering n rows (n >= Len; the new
// rows are live). A nil receiver yields an all-live set, so the serving
// layer's "first mutation" and "later mutation" paths share one call.
func (t *Tombstones) Grow(n int) *Tombstones {
	nt := NewTombstones(n)
	if t != nil {
		if n < t.bits.N {
			panic(fmt.Sprintf("flat: Tombstones.Grow %d < %d", n, t.bits.N))
		}
		copy(nt.bits.W, t.bits.W)
		nt.count = t.count
	}
	return nt
}

// Gather returns the tombstone set seen through a row permutation:
// out.Dead(i) == t.Dead(perm[i]). It maps an original-row-space set
// into NormSorted's physical order (perm = NormSorted.Perm()).
func (t *Tombstones) Gather(perm []int) *Tombstones {
	if t == nil {
		return nil
	}
	out := NewTombstones(len(perm))
	for i, p := range perm {
		if t.Dead(p) {
			out.bits.W[i>>6] |= 1 << (uint(i) & 63)
			out.count++
		}
	}
	return out
}

// DeadIn returns the number of dead rows in [lo, hi). It is the block
// triage of the masked scans: word-level popcounts, so the per-block
// cost is a handful of instructions against hundreds of multiply-adds.
func (t *Tombstones) DeadIn(lo, hi int) int {
	if t == nil || t.count == 0 || lo >= hi {
		return 0
	}
	w := t.bits.W
	lw, hw := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if lw == hw {
		return bits.OnesCount64(w[lw] & loMask & hiMask)
	}
	c := bits.OnesCount64(w[lw] & loMask)
	for i := lw + 1; i < hw; i++ {
		c += bits.OnesCount64(w[i])
	}
	return c + bits.OnesCount64(w[hw]&hiMask)
}

// offerScoresMasked feeds one block of materialised scores into a,
// skipping rows that dead marks tombstoned. dead lives in the same
// (physical) row space as base — for a NormSorted scan that is the
// reordered space, with perm still mapping offers back to original
// indexes. The skip compare mirrors offerScores: with a permutation a
// threshold tie may carry a smaller original index, so only
// strictly-worse scores are skipped.
func offerScoresMasked(a *Acc, buf []float64, base int, unsigned bool, perm []int, dead *Tombstones) {
	for r := range buf {
		phys := base + r
		if dead.Dead(phys) {
			continue
		}
		v := buf[r]
		if unsigned && v < 0 {
			v = -v
		}
		if a.Full() {
			thr := a.Threshold()
			if perm == nil {
				if v <= thr {
					continue
				}
			} else if v < thr {
				continue
			}
		}
		idx := phys
		if perm != nil {
			idx = perm[phys]
		}
		a.Offer(idx, v)
	}
}

// scanBlocksMasked is the masked twin of scanBlocks: fully-dead blocks
// are skipped before the dot kernel runs, fully-live blocks take the
// unmasked bookkeeping, and mixed blocks score every row but offer only
// the live ones.
func (s *Store) scanBlocksMasked(q vec.Vector, lo, hi int, unsigned bool, a *Acc, dead *Tombstones, done <-chan struct{}) bool {
	var buf [blockRows]float64
	for start := lo; start < hi; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		end := start + blockRows
		if end > hi {
			end = hi
		}
		nb := end - start
		nd := dead.DeadIn(start, end)
		if nd == nb {
			continue
		}
		s.dotRange(q, start, end, buf[:nb])
		if nd == 0 {
			offerScores(a, buf[:nb], start, unsigned, nil)
		} else {
			offerScoresMasked(a, buf[:nb], start, unsigned, nil, dead)
		}
	}
	return false
}

// checkMask validates a tombstone set against the store's row count.
func (s *Store) checkMask(dead *Tombstones) error {
	if dead != nil && dead.Len() != s.Len() {
		return fmt.Errorf("flat: tombstones cover %d rows, store has %d", dead.Len(), s.Len())
	}
	return nil
}

// TopKMasked is TopK restricted to live rows: up to k hits among rows
// dead does not mark, canonical ordering, bit-identical to TopK over a
// store holding only the live rows (with this store's row indexes). A
// nil or empty dead set takes exactly the TopK path.
func (s *Store) TopKMasked(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, _, err := s.topKMaskedDone(q, k, unsigned, workers, dead, nil)
	return hits, err
}

// topKMaskedDone is the TopKMasked driver with the optional per-block
// done poll (nil done keeps the historical unchecked loops).
func (s *Store) topKMaskedDone(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones, done <-chan struct{}) ([]Hit, bool, error) {
	if err := s.checkMask(dead); err != nil {
		return nil, false, err
	}
	if dead.Count() == 0 {
		return s.topKDone(q, k, unsigned, workers, done)
	}
	if err := s.checkQuery(q); err != nil {
		return nil, false, err
	}
	if k <= 0 {
		return nil, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	n := s.Len()
	if workers > n/minParallelRows {
		workers = n / minParallelRows
	}
	if workers <= 1 {
		a := NewAcc(k)
		if s.scanBlocksMasked(q, 0, n, unsigned, &a, dead, done) {
			return nil, true, nil
		}
		return a.Hits(), false, nil
	}
	chunk := (n + workers - 1) / workers
	accs := make([]Acc, workers)
	stopped := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			accs[w] = NewAcc(k)
			stopped[w] = s.scanBlocksMasked(q, lo, hi, unsigned, &accs[w], dead, done)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, st := range stopped {
		if st {
			return nil, true, nil
		}
	}
	merged := NewAcc(k)
	for w := range accs {
		for _, h := range accs[w].Hits() {
			merged.Offer(h.Index, h.Score)
		}
	}
	return merged.Hits(), false, nil
}

// TopKMasked is the masked descending-norm scan. dead lives in the
// view's physical (norm-sorted) row order — build it with
// Gather(Perm()) from an original-space set. The Cauchy–Schwarz bound
// stays correct on the filtered view: a block's leading norm bounds
// every row of every later block whether or not rows are tombstoned, so
// skipping dead rows only ever discards candidates the filtered
// reference would discard too. scanned counts rows whose dot was
// evaluated; rows of fully-dead skipped blocks are not evaluated.
func (ns *NormSorted) TopKMasked(q vec.Vector, k int, unsigned bool, dead *Tombstones) ([]Hit, int, error) {
	hits, scanned, _, err := ns.topKMaskedDone(q, k, unsigned, dead, nil, nil)
	return hits, scanned, err
}

// topKMaskedDone is the NormSorted.TopKMasked driver with the optional
// per-block done poll (nil done keeps the historical unchecked loop).
// stats, when non-nil, additionally receives the explain counters.
func (ns *NormSorted) topKMaskedDone(q vec.Vector, k int, unsigned bool, dead *Tombstones, done <-chan struct{}, stats *ScanStats) ([]Hit, int, bool, error) {
	s := ns.store
	if err := s.checkMask(dead); err != nil {
		return nil, 0, false, err
	}
	if dead.Count() == 0 {
		return ns.topKDone(q, k, unsigned, done, stats)
	}
	if err := s.checkQuery(q); err != nil {
		return nil, 0, false, err
	}
	if k <= 0 {
		return nil, 0, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	qn := vec.Norm(q)
	n := s.Len()
	a := NewAcc(k)
	scanned := 0
	var buf [blockRows]float64
	for start := 0; start < n; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return nil, scanned, true, nil
			default:
			}
		}
		if a.Full() && s.norms[start]*qn < a.Threshold() {
			if stats != nil {
				stats.PrunedBlocks += (n - start + blockRows - 1) / blockRows
			}
			break
		}
		end := start + blockRows
		if end > n {
			end = n
		}
		nb := end - start
		nd := dead.DeadIn(start, end)
		if nd == nb {
			if stats != nil {
				stats.SkippedBlocks++
			}
			continue
		}
		s.dotRange(q, start, end, buf[:nb])
		scanned += nb
		if nd == 0 {
			offerScores(&a, buf[:nb], start, unsigned, ns.perm)
		} else {
			offerScoresMasked(&a, buf[:nb], start, unsigned, ns.perm, dead)
		}
	}
	if stats != nil {
		stats.ScannedRows += scanned
	}
	return a.Hits(), scanned, false, nil
}

// TopKMultiMaskedInto is the masked multi-query sweep: accs[j] receives
// the live-row top-k for query qlo+j, bit-identical to
// TopKMasked(qs.Row(qlo+j), k, unsigned, 1, dead). Fully-dead blocks
// are skipped before the tile kernel runs.
func (s *Store) TopKMultiMaskedInto(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch, dead *Tombstones) error {
	_, err := s.topKMultiMaskedDone(qs, qlo, qhi, unsigned, accs, sc, dead, nil)
	return err
}

// topKMultiMaskedDone is the masked multi-query driver with the
// optional per-block done poll (nil done keeps the historical
// unchecked loop).
func (s *Store) topKMultiMaskedDone(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch, dead *Tombstones, done <-chan struct{}) (bool, error) {
	if err := s.checkMask(dead); err != nil {
		return false, err
	}
	if dead.Count() == 0 {
		return s.topKMultiDone(qs, qlo, qhi, unsigned, accs, sc, done)
	}
	if err := s.checkMulti(qs, qlo, qhi, accs); err != nil {
		return false, err
	}
	n := s.Len()
	buf := sc.tileBuf()
	for start := 0; start < n; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return true, nil
			default:
			}
		}
		end := min(start+blockRows, n)
		nb := end - start
		nd := dead.DeadIn(start, end)
		if nd == nb {
			continue
		}
		for g := qlo; g < qhi; g += maxTileQ {
			gh := min(g+maxTileQ, qhi)
			s.dotTile(qs, g, gh, start, end, buf)
			for j := g; j < gh; j++ {
				if nd == 0 {
					offerScores(&accs[j-qlo], buf[(j-g)*nb:(j-g+1)*nb], start, unsigned, nil)
				} else {
					offerScoresMasked(&accs[j-qlo], buf[(j-g)*nb:(j-g+1)*nb], start, unsigned, nil, dead)
				}
			}
		}
	}
	return false, nil
}

// TopKMultiMaskedInto is the masked multi-query descending-norm sweep
// (dead in physical order, as in TopKMasked): hits and scanned counts
// are bit-identical to the single-query masked scan per query.
func (ns *NormSorted) TopKMultiMaskedInto(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch, dead *Tombstones) error {
	_, err := ns.topKMultiMaskedDone(qs, qlo, qhi, unsigned, accs, scanned, sc, dead, nil)
	return err
}

// topKMultiMaskedDone is the masked multi-query descending-norm driver
// with the optional per-block stop poll (nil stop keeps the historical
// unchecked loop).
func (ns *NormSorted) topKMultiMaskedDone(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch, dead *Tombstones, stop <-chan struct{}) (bool, error) {
	s := ns.store
	if err := s.checkMask(dead); err != nil {
		return false, err
	}
	if dead.Count() == 0 {
		return ns.topKMultiDone(qs, qlo, qhi, unsigned, accs, scanned, sc, stop)
	}
	if err := s.checkMulti(qs, qlo, qhi, accs); err != nil {
		return false, err
	}
	qn := qhi - qlo
	if scanned != nil && len(scanned) != qn {
		return false, fmt.Errorf("flat: %d scanned slots for %d queries", len(scanned), qn)
	}
	n := s.Len()
	buf := sc.tileBuf()
	done := sc.doneBuf(qn)
	live := qn
	for start := 0; start < n && live > 0; start += blockRows {
		if stop != nil {
			select {
			case <-stop:
				return true, nil
			default:
			}
		}
		lead := s.norms[start]
		end := min(start+blockRows, n)
		nb := end - start
		for j := 0; j < qn; j++ {
			if !done[j] && accs[j].Full() && lead*qs.Norm(qlo+j) < accs[j].Threshold() {
				done[j] = true
				live--
			}
		}
		nd := dead.DeadIn(start, end)
		if nd == nb {
			continue
		}
		for j := 0; j < qn; {
			if done[j] {
				j++
				continue
			}
			r := j + 1
			for r < qn && !done[r] && r-j < maxTileQ {
				r++
			}
			s.dotTile(qs, qlo+j, qlo+r, start, end, buf)
			for jj := j; jj < r; jj++ {
				if nd == 0 {
					offerScores(&accs[jj], buf[(jj-j)*nb:(jj-j+1)*nb], start, unsigned, ns.perm)
				} else {
					offerScoresMasked(&accs[jj], buf[(jj-j)*nb:(jj-j+1)*nb], start, unsigned, ns.perm, dead)
				}
				if scanned != nil {
					scanned[jj] += nb
				}
			}
			j = r
		}
	}
	return false, nil
}
