//go:build amd64

package flat

// useDotTileAsm gates the AVX2 multi-query micro-kernels. It is a
// variable (not a constant) so the tile tests can force the pure-Go
// kernels and prove both paths produce bit-identical scores.
var useDotTileAsm = x86HasAVX2()

// dotTile16x4 scores 4 contiguous query rows (q, 4×16 floats) against
// nr = len(p)/16 contiguous data rows, writing out[j*nr+r] =
// p_row(r)·q_row(j). The register blocking is 4 queries × 2 rows: each
// loop iteration loads two data rows once and reuses them across all
// four queries' accumulator chains. Scores are bit-identical to
// dotRange16: the 4-wide vertical multiply/add keeps lane k equal to
// the scalar kernel's s_k, and the horizontal reduction adds them as
// (s0+s1)+(s2+s3) with plain (unfused) IEEE operations.
//
//go:noescape
func dotTile16x4(p, q, out []float64)

// dotTile8x4 is the d=8 variant (4 queries × 2 rows, dotRange8's
// accumulation chains).
//
//go:noescape
func dotTile8x4(p, q, out []float64)

// x86HasAVX2 reports whether the CPU and OS support AVX2 (CPUID leaf 7
// EBX bit 5, plus OSXSAVE with YMM state enabled via XGETBV).
func x86HasAVX2() bool
