package flat

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// withQuantAsm runs fn under both settings of the asm dispatch gate
// (when the asm kernels exist at all), restoring the ambient value.
func withQuantAsm(t *testing.T, fn func(t *testing.T, asm bool)) {
	saved := useQuantAsm
	defer func() { useQuantAsm = saved }()
	useQuantAsm = false
	t.Run("go", func(t *testing.T) { fn(t, false) })
	if !saved {
		return
	}
	useQuantAsm = true
	t.Run("asm", func(t *testing.T) { fn(t, true) })
}

// topKFromScores is an independent reference top-k: full sort by
// (effective score descending, index ascending), truncated to k.
func topKFromScores(scores []float64, k int, unsigned bool) []Hit {
	hits := make([]Hit, len(scores))
	for i, v := range scores {
		if unsigned && v < 0 {
			v = -v
		}
		hits[i] = Hit{Index: i, Score: v}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Index < hits[j].Index
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func sameHits(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStore32AsmMatchesGo proves the AVX2 f32 kernels and the pure-Go
// chains produce bit-identical widened scores for the dimensions that
// have asm twins.
func TestStore32AsmMatchesGo(t *testing.T) {
	if !useQuantAsm {
		t.Skip("no asm kernels on this machine")
	}
	saved := useQuantAsm
	defer func() { useQuantAsm = saved }()
	rng := xrand.New(7)
	for _, d := range []int{8, 16} {
		// Odd row counts exercise the 1-row asm tails.
		for _, n := range []int{1, 2, 3, 257, 1000} {
			fs, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				t.Fatal(err)
			}
			s := NewStore32(fs)
			q := vec.Vector(rng.NormalVec(d))
			want := make([]float64, n)
			got := make([]float64, n)
			useQuantAsm = false
			if err := s.DotRange(q, 0, n, want); err != nil {
				t.Fatal(err)
			}
			useQuantAsm = true
			if err := s.DotRange(q, 0, n, got); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("d=%d n=%d row %d: asm %v (%x) != go %v (%x)",
						d, n, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
				}
			}
			// Sub-range calls must see the same rows.
			if n >= 3 {
				sub := make([]float64, n-2)
				if err := s.DotRange(q, 1, n-1, sub); err != nil {
					t.Fatal(err)
				}
				for i := range sub {
					if math.Float64bits(sub[i]) != math.Float64bits(want[i+1]) {
						t.Fatalf("d=%d n=%d sub-range row %d mismatch", d, n, i)
					}
				}
			}
		}
	}
}

// TestStoreI8AsmMatchesGo is the int8 twin: exact integer accumulation
// means the kernels must agree bit for bit, including across the
// blockRows chunking of long ranges.
func TestStoreI8AsmMatchesGo(t *testing.T) {
	if !useQuantAsm {
		t.Skip("no asm kernels on this machine")
	}
	saved := useQuantAsm
	defer func() { useQuantAsm = saved }()
	rng := xrand.New(8)
	for _, n := range []int{1, 2, 3, 255, 256, 257, 1000} {
		fs, err := FromVectors(randomVecs(rng, n, 16))
		if err != nil {
			t.Fatal(err)
		}
		s := NewStoreI8(fs)
		q := vec.Vector(rng.NormalVec(16))
		want := make([]float64, n)
		got := make([]float64, n)
		useQuantAsm = false
		if err := s.DotRange(q, 0, n, want); err != nil {
			t.Fatal(err)
		}
		useQuantAsm = true
		if err := s.DotRange(q, 0, n, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d row %d: asm %v != go %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestStore32Accuracy bounds the f32 tier's score error against the
// exact f64 kernel: relative to ‖p‖·‖q‖ the error must stay within the
// d-scaled epsilon the NormSorted32 bound assumes.
func TestStore32Accuracy(t *testing.T) {
	rng := xrand.New(9)
	for _, d := range []int{5, 8, 16, 24} {
		n := 500
		vs := randomVecs(rng, n, d)
		fs, err := FromVectors(vs)
		if err != nil {
			t.Fatal(err)
		}
		s := NewStore32(fs)
		q := vec.Vector(rng.NormalVec(d))
		exact := make([]float64, n)
		approx := make([]float64, n)
		if err := fs.DotRange(q, 0, n, exact); err != nil {
			t.Fatal(err)
		}
		if err := s.DotRange(q, 0, n, approx); err != nil {
			t.Fatal(err)
		}
		qn := vec.Norm(q)
		for i := range exact {
			tol := (f32BoundFudge(d) - 1) * fs.Norm(i) * qn
			if diff := math.Abs(exact[i] - approx[i]); diff > tol {
				t.Fatalf("d=%d row %d: f32 %v vs f64 %v (diff %g > tol %g)",
					d, i, approx[i], exact[i], diff, tol)
			}
		}
	}
}

// TestStore32TopKMatchesReference checks the full scan family — signed
// and unsigned, serial and parallel, masked and unmasked — against the
// sort-everything reference over the same f32 scores.
func TestStore32TopKMatchesReference(t *testing.T) {
	withQuantAsm(t, func(t *testing.T, asm bool) {
		rng := xrand.New(10)
		for _, d := range []int{7, 8, 16} {
			n := 9000
			fs, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				t.Fatal(err)
			}
			s := NewStore32(fs)
			dead := NewTombstones(n)
			for i := 0; i < n; i += 17 {
				dead.Kill(i)
			}
			for _, unsigned := range []bool{false, true} {
				q := vec.Vector(rng.NormalVec(d))
				scores := make([]float64, n)
				if err := s.DotRange(q, 0, n, scores); err != nil {
					t.Fatal(err)
				}
				want := topKFromScores(scores, 25, unsigned)
				for _, workers := range []int{1, 2} {
					got, err := s.TopK(q, 25, unsigned, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !sameHits(got, want) {
						t.Fatalf("d=%d unsigned=%v workers=%d: TopK %v != reference %v",
							d, unsigned, workers, got, want)
					}
				}
				// Masked: reference drops dead rows.
				live := make([]float64, 0, n)
				liveIdx := make([]int, 0, n)
				for i, v := range scores {
					if !dead.Dead(i) {
						live = append(live, v)
						liveIdx = append(liveIdx, i)
					}
				}
				wantMasked := topKFromScores(live, 25, unsigned)
				for i := range wantMasked {
					wantMasked[i].Index = liveIdx[wantMasked[i].Index]
				}
				gotMasked, err := s.TopKMasked(q, 25, unsigned, 2, dead)
				if err != nil {
					t.Fatal(err)
				}
				if !sameHits(gotMasked, wantMasked) {
					t.Fatalf("d=%d unsigned=%v: TopKMasked %v != reference %v",
						d, unsigned, gotMasked, wantMasked)
				}
			}
		}
	})
}

// TestNormSorted32MatchesFlat proves the inflated Cauchy–Schwarz bound
// never prunes a row the flat f32 scan would have kept: the early-exit
// scan and the full scan agree exactly, masked and unmasked, signed and
// unsigned.
func TestNormSorted32MatchesFlat(t *testing.T) {
	rng := xrand.New(11)
	for _, d := range []int{8, 16, 24} {
		n := 6000
		fs, err := FromVectors(randomVecs(rng, n, d))
		if err != nil {
			t.Fatal(err)
		}
		s := NewStore32(fs)
		ns := NewNormSorted32(s)
		deadOrig := NewTombstones(n)
		for i := 0; i < n; i += 13 {
			deadOrig.Kill(i)
		}
		deadPhys := deadOrig.Gather(ns.Perm())
		for _, unsigned := range []bool{false, true} {
			for trial := 0; trial < 5; trial++ {
				q := vec.Vector(rng.NormalVec(d))
				want, err := s.TopK(q, 10, unsigned, 1)
				if err != nil {
					t.Fatal(err)
				}
				got, scanned, err := ns.TopK(q, 10, unsigned)
				if err != nil {
					t.Fatal(err)
				}
				if !sameHits(got, want) {
					t.Fatalf("d=%d unsigned=%v: normsorted %v != flat %v", d, unsigned, got, want)
				}
				if scanned < len(got) || scanned > n {
					t.Fatalf("scanned=%d out of range", scanned)
				}
				wantMasked, err := s.TopKMasked(q, 10, unsigned, 1, deadOrig)
				if err != nil {
					t.Fatal(err)
				}
				gotMasked, _, err := ns.TopKMasked(q, 10, unsigned, deadPhys)
				if err != nil {
					t.Fatal(err)
				}
				if !sameHits(gotMasked, wantMasked) {
					t.Fatalf("d=%d unsigned=%v masked: normsorted %v != flat %v",
						d, unsigned, gotMasked, wantMasked)
				}
			}
		}
	}
}

// TestStoreI8TopKMatchesReference checks the int8 scan family against
// the sort-everything reference over the dequantized scores.
func TestStoreI8TopKMatchesReference(t *testing.T) {
	withQuantAsm(t, func(t *testing.T, asm bool) {
		rng := xrand.New(12)
		for _, d := range []int{7, 16} {
			n := 9000
			fs, err := FromVectors(randomVecs(rng, n, d))
			if err != nil {
				t.Fatal(err)
			}
			s := NewStoreI8(fs)
			dead := NewTombstones(n)
			for i := 0; i < n; i += 11 {
				dead.Kill(i)
			}
			for _, unsigned := range []bool{false, true} {
				q := vec.Vector(rng.NormalVec(d))
				scores := make([]float64, n)
				if err := s.DotRange(q, 0, n, scores); err != nil {
					t.Fatal(err)
				}
				want := topKFromScores(scores, 25, unsigned)
				for _, workers := range []int{1, 2} {
					got, err := s.TopK(q, 25, unsigned, workers)
					if err != nil {
						t.Fatal(err)
					}
					if !sameHits(got, want) {
						t.Fatalf("d=%d unsigned=%v workers=%d: TopK != reference", d, unsigned, workers)
					}
				}
				gotMasked, err := s.TopKMasked(q, 25, unsigned, 1, dead)
				if err != nil {
					t.Fatal(err)
				}
				for _, h := range gotMasked {
					if dead.Dead(h.Index) {
						t.Fatalf("masked scan returned dead row %d", h.Index)
					}
				}
			}
		}
	})
}

// TestStoreI8Quantization pins down the symmetric scheme's properties:
// determinism under rebuild, bounded per-element error, saturation of
// non-finite inputs, and the zero-store degenerate case.
func TestStoreI8Quantization(t *testing.T) {
	rng := xrand.New(13)
	fs, err := FromVectors(randomVecs(rng, 300, 16))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreI8(fs)
	if s2 := NewStoreI8(fs); !s.Equal(s2) {
		t.Fatal("requantizing the same store changed codes or scale")
	}
	// Per-element reconstruction error is at most scale/2.
	for i := 0; i < fs.Len(); i++ {
		row := fs.Row(i)
		for j, c := range s.Row(i) {
			back := float64(c) * s.scale
			if diff := math.Abs(back - row[j]); diff > s.scale/2+1e-12 {
				t.Fatalf("row %d dim %d: dequantized %v vs %v (err %g > scale/2 %g)",
					i, j, back, row[j], diff, s.scale/2)
			}
		}
	}
	// Candidate quality: int8 top-50 must contain the exact top-10 for
	// a well-conditioned workload (this is the overfetch the serving
	// layer relies on before re-ranking).
	for trial := 0; trial < 20; trial++ {
		q := vec.Vector(rng.NormalVec(16))
		exact, err := fs.TopK(q, 10, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := s.TopK(q, 50, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		have := map[int]bool{}
		for _, h := range cands {
			have[h.Index] = true
		}
		missed := 0
		for _, h := range exact {
			if !have[h.Index] {
				missed++
			}
		}
		if missed > 1 {
			t.Fatalf("trial %d: int8 top-50 missed %d of exact top-10", trial, missed)
		}
	}
	// Degenerate stores.
	zero, err := FromVectors([]vec.Vector{{0, 0, 0}, {0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	zs := NewStoreI8(zero)
	if zs.Scale() != 0 {
		t.Fatalf("all-zero store scale = %v, want 0", zs.Scale())
	}
	if hits, err := zs.TopK(vec.Vector{1, 2, 3}, 1, false, 1); err != nil || len(hits) != 1 || hits[0].Score != 0 {
		t.Fatalf("zero-store TopK = %v, %v", hits, err)
	}
	if quantizeI8(math.NaN(), 1) != 0 {
		t.Fatal("NaN must quantize to 0")
	}
	if quantizeI8(math.Inf(1), 1) != 127 || quantizeI8(math.Inf(-1), 1) != -127 {
		t.Fatal("infinities must saturate")
	}
}

// TestQuantTopKCtx checks the cancellation plumbing for both quantized
// stores: a live context changes nothing, a cancelled one returns its
// error and no hits.
func TestQuantTopKCtx(t *testing.T) {
	rng := xrand.New(14)
	fs, err := FromVectors(randomVecs(rng, 5000, 16))
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector(rng.NormalVec(16))
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	s32 := NewStore32(fs)
	want32, err := s32.TopK(q, 5, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	got32, err := s32.TopKCtx(context.Background(), q, 5, false, 2)
	if err != nil || !sameHits(got32, want32) {
		t.Fatalf("live ctx changed f32 answers: %v, %v", got32, err)
	}
	if _, err := s32.TopKCtx(cancelled, q, 5, false, 2); err != context.Canceled {
		t.Fatalf("cancelled f32 scan: err = %v, want context.Canceled", err)
	}
	ns := NewNormSorted32(s32)
	if _, _, err := ns.TopKCtx(cancelled, q, 5, false); err != context.Canceled {
		t.Fatalf("cancelled normsorted32 scan: err = %v", err)
	}

	s8 := NewStoreI8(fs)
	want8, err := s8.TopK(q, 5, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	got8, err := s8.TopKCtx(context.Background(), q, 5, false, 2)
	if err != nil || !sameHits(got8, want8) {
		t.Fatalf("live ctx changed int8 answers: %v, %v", got8, err)
	}
	if _, err := s8.TopKCtx(cancelled, q, 5, false, 2); err != context.Canceled {
		t.Fatalf("cancelled int8 scan: err = %v", err)
	}
}

// TestStore32RoundTrip checks NewStore32/ToStore and the FLATBLK2 codec:
// encode → decode must reproduce data, norms and shape bit for bit.
func TestStore32RoundTrip(t *testing.T) {
	rng := xrand.New(15)
	for _, n := range []int{0, 1, 37} {
		fs, err := FromVectors(randomVecs(rng, n, 16))
		if err != nil && n > 0 {
			t.Fatal(err)
		}
		if n == 0 {
			fs, err = New(16)
			if err != nil {
				t.Fatal(err)
			}
		}
		s := NewStore32(fs)
		buf := s.AppendBinary(nil)
		if len(buf) != s.EncodedSize() {
			t.Fatalf("n=%d: encoded %d bytes, EncodedSize says %d", n, len(buf), s.EncodedSize())
		}
		dec, used, err := DecodeStore32(buf)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if used != len(buf) {
			t.Fatalf("n=%d: consumed %d of %d bytes", n, used, len(buf))
		}
		if dec.Len() != s.Len() || dec.Dim() != s.Dim() {
			t.Fatalf("n=%d: shape (%d,%d) != (%d,%d)", n, dec.Len(), dec.Dim(), s.Len(), s.Dim())
		}
		for i := range s.data {
			if math.Float32bits(dec.data[i]) != math.Float32bits(s.data[i]) {
				t.Fatalf("n=%d: data[%d] mismatch", n, i)
			}
		}
		for i := range s.norms {
			if math.Float64bits(dec.norms[i]) != math.Float64bits(s.norms[i]) {
				t.Fatalf("n=%d: norm[%d] mismatch", n, i)
			}
		}
		// The f32 ingest path rounds before storing, so widening round
		// trips losslessly through ToStore.
		wide, err := dec.ToStore()
		if err != nil {
			t.Fatal(err)
		}
		back := NewStore32(wide)
		for i := range s.data {
			if math.Float32bits(back.data[i]) != math.Float32bits(s.data[i]) {
				t.Fatalf("n=%d: ToStore round trip changed data[%d]", n, i)
			}
		}
	}
}

// TestStoreI8RoundTrip checks the FLATBLK3 codec, including the scale.
func TestStoreI8RoundTrip(t *testing.T) {
	rng := xrand.New(16)
	fs, err := FromVectors(randomVecs(rng, 37, 16))
	if err != nil {
		t.Fatal(err)
	}
	s := NewStoreI8(fs)
	buf := s.AppendBinary(nil)
	if len(buf) != s.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), s.EncodedSize())
	}
	dec, used, err := DecodeStoreI8(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("consumed %d of %d bytes", used, len(buf))
	}
	if !dec.Equal(s) {
		t.Fatal("decoded store differs from encoded")
	}
}

// TestQuantCodecCorruption flips every byte of valid encodings: each
// mutation must fail decoding (almost always the checksum) and never
// panic or yield a store silently.
func TestQuantCodecCorruption(t *testing.T) {
	rng := xrand.New(17)
	fs, err := FromVectors(randomVecs(rng, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	buf32 := NewStore32(fs).AppendBinary(nil)
	buf8 := NewStoreI8(fs).AppendBinary(nil)
	for i := range buf32 {
		mut := append([]byte(nil), buf32...)
		mut[i] ^= 0x40
		if _, _, err := DecodeStore32(mut); err == nil {
			t.Fatalf("f32: flipping byte %d went undetected", i)
		}
	}
	for i := range buf8 {
		mut := append([]byte(nil), buf8...)
		mut[i] ^= 0x40
		if _, _, err := DecodeStoreI8(mut); err == nil {
			t.Fatalf("int8: flipping byte %d went undetected", i)
		}
	}
	// Truncations of every length must error cleanly too.
	for i := 0; i < len(buf32); i++ {
		if _, _, err := DecodeStore32(buf32[:i]); err == nil {
			t.Fatalf("f32: truncation to %d bytes went undetected", i)
		}
	}
	for i := 0; i < len(buf8); i++ {
		if _, _, err := DecodeStoreI8(buf8[:i]); err == nil {
			t.Fatalf("int8: truncation to %d bytes went undetected", i)
		}
	}
}

// FuzzStore32Decode feeds arbitrary bytes to the FLATBLK2 decoder: it
// must never panic, and anything it accepts must re-encode to an
// equivalent store.
func FuzzStore32Decode(f *testing.F) {
	rng := xrand.New(18)
	fs, _ := FromVectors(randomVecs(rng, 3, 8))
	f.Add(NewStore32(fs).AppendBinary(nil))
	empty, _ := New(4)
	f.Add(NewStore32(empty).AppendBinary(nil))
	f.Add([]byte("FLATBLK2garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, used, err := DecodeStore32(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(data))
		}
		re := s.AppendBinary(nil)
		s2, _, err := DecodeStore32(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if s2.Len() != s.Len() || s2.Dim() != s.Dim() {
			t.Fatalf("re-decode changed shape")
		}
		for i := range s.data {
			if math.Float32bits(s2.data[i]) != math.Float32bits(s.data[i]) {
				t.Fatalf("re-decode changed data[%d]", i)
			}
		}
	})
}

// FuzzInt8Decode is the FLATBLK3 twin.
func FuzzInt8Decode(f *testing.F) {
	rng := xrand.New(19)
	fs, _ := FromVectors(randomVecs(rng, 3, 8))
	f.Add(NewStoreI8(fs).AppendBinary(nil))
	f.Add([]byte("FLATBLK3garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, used, err := DecodeStoreI8(data)
		if err != nil {
			return
		}
		if used <= 0 || used > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", used, len(data))
		}
		re := s.AppendBinary(nil)
		s2, _, err := DecodeStoreI8(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !s2.Equal(s) {
			t.Fatalf("re-decode changed store")
		}
	})
}

// BenchmarkFlatTopKTier measures the 100k-row top-10 scan per precision
// tier. SetBytes records the *logical* f64 working set for every tier,
// so reported MB/s ratios equal wall-clock speedups (the ISSUE's
// bytes-per-second framing). The rerank variants include the full
// candidate-then-verify cost the serving layer pays: an overfetched
// quantized scan plus exact f64 re-scoring of the survivors.
func BenchmarkFlatTopKTier(b *testing.B) {
	rng := xrand.New(20)
	n, d, k, overfetch := 100000, 16, 10, 4
	fs, err := FromVectors(randomVecs(rng, n, d))
	if err != nil {
		b.Fatal(err)
	}
	s32 := NewStore32(fs)
	s8 := NewStoreI8(fs)
	q := vec.Vector(rng.NormalVec(d))
	logical := int64(n * d * 8)
	rerank := func(hits []Hit) []Hit {
		var one [1]float64
		for i, h := range hits {
			if err := fs.DotRange(q, h.Index, h.Index+1, one[:]); err != nil {
				b.Fatal(err)
			}
			hits[i].Score = one[0]
		}
		a := NewAcc(k)
		for _, h := range hits {
			a.Offer(h.Index, h.Score)
		}
		return a.Hits()
	}
	b.Run(fmt.Sprintf("f64/n=%d", n), func(b *testing.B) {
		b.SetBytes(logical)
		for i := 0; i < b.N; i++ {
			if _, err := fs.TopK(q, k, false, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("f32/n=%d", n), func(b *testing.B) {
		b.SetBytes(logical)
		for i := 0; i < b.N; i++ {
			if _, err := s32.TopK(q, k, false, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("f32rerank/n=%d", n), func(b *testing.B) {
		b.SetBytes(logical)
		for i := 0; i < b.N; i++ {
			hits, err := s32.TopK(q, k*overfetch, false, 1)
			if err != nil {
				b.Fatal(err)
			}
			rerank(hits)
		}
	})
	b.Run(fmt.Sprintf("int8rerank/n=%d", n), func(b *testing.B) {
		b.SetBytes(logical)
		for i := 0; i < b.N; i++ {
			hits, err := s8.TopK(q, k*overfetch, false, 1)
			if err != nil {
				b.Fatal(err)
			}
			rerank(hits)
		}
	})
}
