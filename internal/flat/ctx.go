// Context-aware entry points for the scan drivers. Serving layers with
// request deadlines call these; the drivers poll ctx.Done() once per
// blockRows row-block, so a cancelled scan stops within one block
// (~blockRows dot products) of the cancellation instead of pinning a
// worker for the rest of the sweep.
//
// The never-cancelled case costs nothing: a nil or non-cancellable
// context (context.Background, context.TODO) yields a nil done channel
// and the drivers run the exact historical unchecked loops — the
// benchmarked fast path is unchanged byte for byte.
//
// On cancellation the entry points return ctx's error
// (context.DeadlineExceeded or context.Canceled); any partially
// accumulated hits are discarded, never returned, so completed calls
// remain bit-identical to their context-free twins.
package flat

import (
	"context"

	"repro/internal/vec"
)

// doneOf returns ctx's cancellation channel, or nil when ctx can never
// be cancelled, which keeps every driver on the unchecked fast path.
func doneOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// stopErr reports why a scan stopped. The done channel only fires once
// ctx is cancelled, so Err is non-nil then; the Canceled fallback
// guards against a misbehaving custom context.
func stopErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// TopKCtx is TopK with cancellation: identical results when ctx never
// fires, ctx's error (and no hits) when it does.
func (s *Store) TopKCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	hits, stopped, err := s.topKDone(q, k, unsigned, workers, doneOf(ctx))
	if err != nil {
		return nil, err
	}
	if stopped {
		return nil, stopErr(ctx)
	}
	return hits, nil
}

// TopKMaskedCtx is TopKMasked with cancellation.
func (s *Store) TopKMaskedCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, stopped, err := s.topKMaskedDone(q, k, unsigned, workers, dead, doneOf(ctx))
	if err != nil {
		return nil, err
	}
	if stopped {
		return nil, stopErr(ctx)
	}
	return hits, nil
}

// TopKCtx is NormSorted.TopK with cancellation. scanned still reports
// the rows evaluated before the scan was abandoned.
func (ns *NormSorted) TopKCtx(ctx context.Context, q vec.Vector, k int, unsigned bool) ([]Hit, int, error) {
	hits, scanned, stopped, err := ns.topKDone(q, k, unsigned, doneOf(ctx), nil)
	if err != nil {
		return nil, scanned, err
	}
	if stopped {
		return nil, scanned, stopErr(ctx)
	}
	return hits, scanned, nil
}

// TopKMaskedCtx is NormSorted.TopKMasked with cancellation.
func (ns *NormSorted) TopKMaskedCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, dead *Tombstones) ([]Hit, int, error) {
	hits, scanned, stopped, err := ns.topKMaskedDone(q, k, unsigned, dead, doneOf(ctx), nil)
	if err != nil {
		return nil, scanned, err
	}
	if stopped {
		return nil, scanned, stopErr(ctx)
	}
	return hits, scanned, nil
}

// TopKMultiIntoCtx is TopKMultiInto with cancellation. On cancellation
// accs hold partial state and must be Reset before reuse.
func (s *Store) TopKMultiIntoCtx(ctx context.Context, qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch) error {
	stopped, err := s.topKMultiDone(qs, qlo, qhi, unsigned, accs, sc, doneOf(ctx))
	if err != nil {
		return err
	}
	if stopped {
		return stopErr(ctx)
	}
	return nil
}

// TopKMultiMaskedIntoCtx is TopKMultiMaskedInto with cancellation.
func (s *Store) TopKMultiMaskedIntoCtx(ctx context.Context, qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch, dead *Tombstones) error {
	stopped, err := s.topKMultiMaskedDone(qs, qlo, qhi, unsigned, accs, sc, dead, doneOf(ctx))
	if err != nil {
		return err
	}
	if stopped {
		return stopErr(ctx)
	}
	return nil
}

// TopKMultiIntoCtx is NormSorted.TopKMultiInto with cancellation.
func (ns *NormSorted) TopKMultiIntoCtx(ctx context.Context, qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch) error {
	stopped, err := ns.topKMultiDone(qs, qlo, qhi, unsigned, accs, scanned, sc, doneOf(ctx))
	if err != nil {
		return err
	}
	if stopped {
		return stopErr(ctx)
	}
	return nil
}

// TopKMultiMaskedIntoCtx is NormSorted.TopKMultiMaskedInto with
// cancellation.
func (ns *NormSorted) TopKMultiMaskedIntoCtx(ctx context.Context, qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch, dead *Tombstones) error {
	stopped, err := ns.topKMultiMaskedDone(qs, qlo, qhi, unsigned, accs, scanned, sc, dead, doneOf(ctx))
	if err != nil {
		return err
	}
	if stopped {
		return stopErr(ctx)
	}
	return nil
}
