package flat

import (
	"context"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// buildNormSpread returns a store of n unit-direction rows whose norms
// fall off steeply, so a top-k scan over the norm-sorted view prunes.
func buildNormSpread(t *testing.T, n, d int) (*Store, *NormSorted) {
	t.Helper()
	rng := xrand.New(7)
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := rng.NormalVec(d)
		scale := 1.0 / float64(1+i%97)
		for j := range v {
			v[j] *= scale
		}
		if err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return s, NewNormSorted(s)
}

func TestNormSortedStatsMatchScan(t *testing.T) {
	const n, d, k = 4096, 16, 8
	s, ns := buildNormSpread(t, n, d)
	q := vec.Vector(xrand.New(11).NormalVec(d))

	var stats ScanStats
	hits, scanned, err := ns.TopKStatsCtx(context.Background(), q, k, false, &stats)
	if err != nil {
		t.Fatal(err)
	}
	want, wantScanned, err := ns.TopK(q, k, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(want) || scanned != wantScanned {
		t.Fatalf("stats variant diverged: %d hits/%d scanned vs %d/%d", len(hits), scanned, len(want), wantScanned)
	}
	if stats.ScannedRows != scanned {
		t.Fatalf("ScannedRows = %d, scanned = %d", stats.ScannedRows, scanned)
	}
	totalBlocks := (n + blockRows - 1) / blockRows
	gotBlocks := (stats.ScannedRows+blockRows-1)/blockRows + stats.PrunedBlocks + stats.SkippedBlocks
	if gotBlocks != totalBlocks {
		t.Fatalf("blocks don't partition: scanned %d + pruned %d + skipped %d != %d",
			(stats.ScannedRows+blockRows-1)/blockRows, stats.PrunedBlocks, stats.SkippedBlocks, totalBlocks)
	}
	if stats.PrunedBlocks == 0 {
		t.Fatalf("norm spread should prune at least one block (scanned %d of %d)", scanned, n)
	}
	_ = s
}

func TestNormSortedMaskedStats(t *testing.T) {
	const n, d, k = 4096, 16, 8
	_, ns := buildNormSpread(t, n, d)
	q := vec.Vector(xrand.New(13).NormalVec(d))

	// Tombstone the physically-last two blocks entirely plus a few rows
	// of an early block; build the mask in physical order directly.
	dead := NewTombstones(n)
	for i := n - 2*blockRows; i < n; i++ {
		dead.Kill(i)
	}
	for i := 10; i < 20; i++ {
		dead.Kill(i)
	}

	var stats ScanStats
	hits, scanned, err := ns.TopKMaskedStatsCtx(context.Background(), q, k, false, dead, &stats)
	if err != nil {
		t.Fatal(err)
	}
	want, wantScanned, err := ns.TopKMasked(q, k, false, dead)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != len(want) || scanned != wantScanned {
		t.Fatalf("masked stats variant diverged from TopKMasked")
	}
	if stats.ScannedRows != scanned {
		t.Fatalf("ScannedRows = %d, scanned = %d", stats.ScannedRows, scanned)
	}
	// The fully-dead tail blocks are behind the norm-bound break for
	// this workload only if pruning reaches them; either way every block
	// must be accounted for exactly once.
	totalBlocks := (n + blockRows - 1) / blockRows
	gotBlocks := (stats.ScannedRows+blockRows-1)/blockRows + stats.PrunedBlocks + stats.SkippedBlocks
	if gotBlocks != totalBlocks {
		t.Fatalf("blocks don't partition: %d != %d (stats %+v)", gotBlocks, totalBlocks, stats)
	}
}

func TestMaskedScanProfile(t *testing.T) {
	const n = 1000 // 3 full blocks + a 232-row tail
	if sc, sk := MaskedScanProfile(n, nil); sc != n || sk != 0 {
		t.Fatalf("nil mask: %d, %d", sc, sk)
	}
	dead := NewTombstones(n)
	for i := blockRows; i < 2*blockRows; i++ { // second block fully dead
		dead.Kill(i)
	}
	dead.Kill(5) // partial kill elsewhere must not skip its block
	sc, sk := MaskedScanProfile(n, dead)
	if sk != 1 || sc != n-blockRows {
		t.Fatalf("profile = %d rows, %d skipped blocks; want %d, 1", sc, sk, n-blockRows)
	}
}
