package flat

import (
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// killRandom tombstones each of n rows with probability frac and
// returns the set plus the live index list.
func killRandom(rng *xrand.RNG, n int, frac float64) (*Tombstones, []int) {
	t := NewTombstones(n)
	var live []int
	for i := 0; i < n; i++ {
		if rng.Float64() < frac {
			t.Kill(i)
		} else {
			live = append(live, i)
		}
	}
	return t, live
}

// naiveTopKMasked is the reference model: score every live row with
// the scalar kernel and keep the canonical top k.
func naiveTopKMasked(s *Store, q vec.Vector, k int, unsigned bool, dead *Tombstones) []Hit {
	a := NewAcc(k)
	for i := 0; i < s.Len(); i++ {
		if dead.Dead(i) {
			continue
		}
		v := s.Dot(i, q)
		if unsigned && v < 0 {
			v = -v
		}
		a.Offer(i, v)
	}
	return a.Hits()
}

func TestTombstonesBasics(t *testing.T) {
	var nilT *Tombstones
	if nilT.Len() != 0 || nilT.Count() != 0 || nilT.Dead(3) || nilT.DeadIn(0, 100) != 0 {
		t.Fatal("nil Tombstones is not all-live")
	}
	ts := nilT.Grow(10)
	if ts.Len() != 10 || ts.Count() != 0 {
		t.Fatalf("Grow(nil, 10) = len %d count %d", ts.Len(), ts.Count())
	}
	ts.Kill(3)
	ts.Kill(3)
	ts.Kill(7)
	if ts.Count() != 2 || !ts.Dead(3) || !ts.Dead(7) || ts.Dead(4) {
		t.Fatalf("after kills: count %d", ts.Count())
	}
	big := ts.Grow(20)
	if big.Len() != 20 || big.Count() != 2 || !big.Dead(3) || big.Dead(15) {
		t.Fatal("Grow did not preserve dead bits")
	}
	big.Kill(15)
	if ts.Dead(15) || ts.Count() != 2 {
		t.Fatal("Grow shares storage with its source")
	}
}

func TestTombstonesDeadIn(t *testing.T) {
	rng := xrand.New(7)
	n := 1000
	ts, _ := killRandom(rng, n, 0.3)
	for trial := 0; trial < 200; trial++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		want := 0
		for i := lo; i < hi; i++ {
			if ts.Dead(i) {
				want++
			}
		}
		if got := ts.DeadIn(lo, hi); got != want {
			t.Fatalf("DeadIn(%d, %d) = %d, want %d", lo, hi, got, want)
		}
	}
	if got := ts.DeadIn(0, n); got != ts.Count() {
		t.Fatalf("DeadIn full range %d != Count %d", got, ts.Count())
	}
}

func TestTombstonesGather(t *testing.T) {
	rng := xrand.New(9)
	n := 300
	ts, _ := killRandom(rng, n, 0.4)
	perm := rng.Perm(n)
	g := ts.Gather(perm)
	if g.Count() != ts.Count() {
		t.Fatalf("Gather count %d != %d", g.Count(), ts.Count())
	}
	for i, p := range perm {
		if g.Dead(i) != ts.Dead(p) {
			t.Fatalf("Gather bit %d: got %v, want Dead(%d)=%v", i, g.Dead(i), p, ts.Dead(p))
		}
	}
	var nilT *Tombstones
	if nilT.Gather(perm) != nil {
		t.Fatal("Gather(nil) should stay nil")
	}
}

func TestTopKMaskedMatchesReference(t *testing.T) {
	rng := xrand.New(21)
	for _, n := range []int{1, 50, 700, 5000} {
		s, err := FromVectors(randomVecs(rng, n, 24))
		if err != nil {
			t.Fatal(err)
		}
		ns := NewNormSorted(s)
		for _, frac := range []float64{0, 0.05, 0.5, 0.95, 1} {
			dead, live := killRandom(rng.Split(uint64(1)), n, frac)
			pdead := dead.Gather(ns.Perm())
			for _, unsigned := range []bool{false, true} {
				for trial := 0; trial < 4; trial++ {
					q := vec.Vector(rng.NormalVec(24))
					k := 1 + rng.Intn(12)
					want := naiveTopKMasked(s, q, k, unsigned, dead)
					if len(want) > len(live) {
						t.Fatalf("reference returned %d hits for %d live rows", len(want), len(live))
					}
					for _, workers := range []int{1, 4} {
						got, err := s.TopKMasked(q, k, unsigned, workers, dead)
						if err != nil {
							t.Fatal(err)
						}
						if !hitsEqual(got, want) {
							t.Fatalf("n=%d frac=%v unsigned=%v workers=%d: masked %v, want %v",
								n, frac, unsigned, workers, got, want)
						}
					}
					nsGot, _, err := ns.TopKMasked(q, k, unsigned, pdead)
					if err != nil {
						t.Fatal(err)
					}
					if !hitsEqual(nsGot, want) {
						t.Fatalf("n=%d frac=%v unsigned=%v: norm-sorted masked %v, want %v",
							n, frac, unsigned, nsGot, want)
					}
				}
			}
		}
	}
}

func TestTopKMaskedZeroDeadDelegates(t *testing.T) {
	rng := xrand.New(5)
	s, _ := FromVectors(randomVecs(rng, 400, 8))
	q := vec.Vector(rng.NormalVec(8))
	base, err := s.TopK(q, 5, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, dead := range []*Tombstones{nil, NewTombstones(400)} {
		got, err := s.TopKMasked(q, 5, false, 1, dead)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(got, base) {
			t.Fatalf("zero-dead masked scan diverged: %v vs %v", got, base)
		}
	}
	if _, err := s.TopKMasked(q, 5, false, 1, NewTombstones(3)); err == nil {
		t.Fatal("mismatched tombstone length accepted")
	}
}

func TestTopKMultiMaskedMatchesSingle(t *testing.T) {
	rng := xrand.New(33)
	n, d, nq := 3000, 16, 13
	s, _ := FromVectors(randomVecs(rng, n, d))
	ns := NewNormSorted(s)
	qs, _ := FromVectors(randomVecs(rng, nq, d))
	for _, frac := range []float64{0.02, 0.5, 0.9} {
		dead, _ := killRandom(rng.Split(uint64(1)), n, frac)
		pdead := dead.Gather(ns.Perm())
		for _, unsigned := range []bool{false, true} {
			k := 1 + rng.Intn(8)
			sc := GetTileScratch()
			accs := sc.Accs(nq, k)
			if err := s.TopKMultiMaskedInto(qs, 0, nq, unsigned, accs, sc, dead); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < nq; j++ {
				want, err := s.TopKMasked(qs.Row(j), k, unsigned, 1, dead)
				if err != nil {
					t.Fatal(err)
				}
				if !hitsEqual(accs[j].Hits(), want) {
					t.Fatalf("flat multi frac=%v unsigned=%v q=%d: %v, want %v",
						frac, unsigned, j, accs[j].Hits(), want)
				}
			}
			accs = sc.Accs(nq, k)
			scanned := make([]int, nq)
			if err := ns.TopKMultiMaskedInto(qs, 0, nq, unsigned, accs, scanned, sc, pdead); err != nil {
				t.Fatal(err)
			}
			for j := 0; j < nq; j++ {
				want, wantScanned, err := ns.TopKMasked(qs.Row(j), k, unsigned, pdead)
				if err != nil {
					t.Fatal(err)
				}
				if !hitsEqual(accs[j].Hits(), want) {
					t.Fatalf("ns multi frac=%v unsigned=%v q=%d: %v, want %v",
						frac, unsigned, j, accs[j].Hits(), want)
				}
				if scanned[j] != wantScanned {
					t.Fatalf("ns multi q=%d scanned %d, want %d", j, scanned[j], wantScanned)
				}
			}
			PutTileScratch(sc)
		}
	}
}

// killClustered tombstones the first frac of rows — the shape upserts
// produce (old rows die in ingest order), and the shape block skipping
// is designed for.
func killClustered(n int, frac float64) *Tombstones {
	t := NewTombstones(n)
	for i := 0; i < int(float64(n)*frac); i++ {
		t.Kill(i)
	}
	return t
}

// scoreThenFilter is the strawman the tentpole benchmarks against:
// scan everything with the unmasked kernel asking for extra results,
// then drop tombstoned hits.
func scoreThenFilter(s *Store, q vec.Vector, k int, dead *Tombstones) []Hit {
	raw, err := s.TopK(q, k+dead.Count(), false, 1)
	if err != nil {
		panic(err)
	}
	out := raw[:0]
	for _, h := range raw {
		if !dead.Dead(h.Index) {
			out = append(out, h)
			if len(out) == k {
				break
			}
		}
	}
	return out
}

func BenchmarkTopKMasked(b *testing.B) {
	rng := xrand.New(42)
	n, d, k := 1<<16, 32, 10
	s, _ := FromVectors(randomVecs(rng, n, d))
	q := vec.Vector(rng.NormalVec(d))
	for _, bench := range []struct {
		name string
		dead *Tombstones
	}{
		{"dead0", nil},
		{"dead50-clustered", killClustered(n, 0.5)},
		{"dead50-scattered", func() *Tombstones { t, _ := killRandom(xrand.New(1), n, 0.5); return t }()},
	} {
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64((n - bench.dead.Count()) * d * 8))
			for i := 0; i < b.N; i++ {
				if _, err := s.TopKMasked(q, k, false, 1, bench.dead); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("dead50-scorethenfilter", func(b *testing.B) {
		dead := killClustered(n, 0.5)
		b.SetBytes(int64(n / 2 * d * 8))
		for i := 0; i < b.N; i++ {
			scoreThenFilter(s, q, k, dead)
		}
	})
}
