// Quantized speed tier 1: float32 columnar storage. Store32 mirrors
// Store's layout at half the bytes per element, so a scan moves twice
// the rows per cache line; scores are computed in float32 (widened to
// float64 only at the block-buffer boundary, so the top-k bookkeeping,
// tombstone triage and context plumbing are shared verbatim with the
// f64 drivers). The d=8/16 kernels have AVX2 twins in quant_amd64.s at
// twice the lanes of the f64 tile kernels (8 float32 per YMM multiply);
// the pure-Go fallbacks below spell out the exact same accumulation
// chains, and float32 arithmetic in Go is exact IEEE binary32, so the
// two are bit-identical and the dispatch gate (useQuantAsm) is free to
// differ across machines without changing answers.
//
// Scores are f32-accurate, not exact: callers that need the f64
// ordering re-rank a widened candidate set through the retained f64
// store (the serving layer's rerank pipeline). NormSorted32 keeps the
// Cauchy–Schwarz early exit sound under rounding by inflating the bound
// with a d-scaled epsilon before pruning.
package flat

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/vec"
)

// Store32 is an append-frozen float32 copy of a Store: row i occupies
// data[i*dim : (i+1)*dim], norms[i] caches the float64 Euclidean norm
// of the widened row (it drives the norm-pruned scan's bound, so it is
// kept at full precision).
type Store32 struct {
	dim   int
	data  []float32
	norms []float64
}

// NewStore32 builds the float32 view of s by rounding every element to
// the nearest binary32. When the source rows are already binary32
// representable (the f32 ingest path rounds before the WAL), the
// conversion is lossless and the view decodes bit-identically from a
// segment round trip.
func NewStore32(s *Store) *Store32 {
	n := s.Len()
	d := s.dim
	q := &Store32{
		dim:  d,
		data: make([]float32, n*d),
	}
	for i, v := range s.data {
		q.data[i] = float32(v)
	}
	q.norms = norms32(q.data, d)
	return q
}

// norms32 computes the float64 norms of the widened float32 rows — the
// single implementation shared by the builder and the segment decoder,
// so both sides of a round trip agree bit for bit.
func norms32(data []float32, d int) []float64 {
	n := len(data) / d
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		var s float64
		for _, x := range row {
			w := float64(x)
			s += w * w
		}
		norms[i] = math.Sqrt(s)
	}
	return norms
}

// Len returns the number of rows.
func (s *Store32) Len() int { return len(s.norms) }

// Dim returns the row dimension.
func (s *Store32) Dim() int { return s.dim }

// Norm returns the cached float64 norm of (widened) row i.
func (s *Store32) Norm(i int) float64 { return s.norms[i] }

// Row returns row i as a float32 view aliasing the backing array.
// Callers must not mutate it.
func (s *Store32) Row(i int) []float32 {
	return s.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
}

// ToStore widens the rows back into a float64 Store (norms recomputed
// by the append path, as everywhere). Used by the segment decoder to
// materialize record vectors from an f32 payload.
func (s *Store32) ToStore() (*Store, error) {
	fs, err := New(s.dim)
	if err != nil {
		return nil, err
	}
	fs.data = slices.Grow(fs.data, len(s.data))
	fs.norms = slices.Grow(fs.norms, s.Len())
	row := make(vec.Vector, s.dim)
	for i := 0; i < s.Len(); i++ {
		for j, x := range s.Row(i) {
			row[j] = float64(x)
		}
		if err := fs.Append(row); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// round32 rounds a float64 query to the binary32 grid the kernels
// consume. One small allocation per scan; the sweep dwarfs it.
func round32(q vec.Vector) []float32 {
	qf := make([]float32, len(q))
	for i, x := range q {
		qf[i] = float32(x)
	}
	return qf
}

// norm64of32 is the query-side twin of norms32: the float64 norm of a
// rounded query, used by the inflated Cauchy–Schwarz bound.
func norm64of32(qf []float32) float64 {
	var s float64
	for _, x := range qf {
		w := float64(x)
		s += w * w
	}
	return math.Sqrt(s)
}

func (s *Store32) checkQuery(q vec.Vector) error {
	if len(q) != s.dim {
		return fmt.Errorf("flat: query dimension %d, store has %d", len(q), s.dim)
	}
	return nil
}

func (s *Store32) checkMask(dead *Tombstones) error {
	if dead != nil && dead.Len() != s.Len() {
		return fmt.Errorf("flat: tombstones cover %d rows, store has %d", dead.Len(), s.Len())
	}
	return nil
}

// DotRange fills out[0:hi-lo] with float64-widened f32 dot products of
// rows [lo, hi) against q (rounded to float32 first). Exported for the
// equivalence tests; the scan drivers call the kernel directly.
func (s *Store32) DotRange(q vec.Vector, lo, hi int, out []float64) error {
	if err := s.checkQuery(q); err != nil {
		return err
	}
	if lo < 0 || hi > s.Len() || lo > hi {
		return fmt.Errorf("flat: DotRange [%d, %d) out of [0, %d)", lo, hi, s.Len())
	}
	if len(out) != hi-lo {
		return fmt.Errorf("flat: DotRange out length %d, want %d", len(out), hi-lo)
	}
	s.dotRange(round32(q), lo, hi, out)
	return nil
}

// dotRange fills out[0:hi-lo] with the float32 dots of rows [lo, hi).
// The 8-lane accumulation chain (twice the f64 kernels' width, matching
// one YMM register of float32) is fixed across implementations: lane l
// holds Σ row[j]·q[j] over j ≡ l (mod 8), lanes fold as
// t_i = s_i + s_{i+4}, and the result widens (t0+t1)+(t2+t3) to
// float64. The AVX2 kernels reproduce exactly this chain
// (VMULPS/VADDPS, VEXTRACTF128+VADDPS, VHADDPS×2, VCVTSS2SD).
func (s *Store32) dotRange(qf []float32, lo, hi int, out []float64) {
	d := s.dim
	switch d {
	case 16:
		if useQuantAsm {
			dot32Range16(s.data[lo*16:hi*16], qf, out[:hi-lo])
			return
		}
		dot32Range16Go(s.data, qf, lo, hi, out)
		return
	case 8:
		if useQuantAsm {
			dot32Range8(s.data[lo*8:hi*8], qf, out[:hi-lo])
			return
		}
		dot32Range8Go(s.data, qf, lo, hi, out)
		return
	}
	dot32RangeGeneric(s.data, d, qf, lo, hi, out)
}

// dot32Range16Go is the d=16 float32 kernel: a complete unroll with
// eight independent accumulator lanes, each summing its two strided
// elements without an initial zero add — exactly the chain the AVX2
// twin computes, so the two are bit-identical (including signed zeros).
func dot32Range16Go(data, q []float32, lo, hi int, out []float64) {
	q = q[:16:16]
	for r := lo; r < hi; r++ {
		row := data[r*16 : r*16+16 : r*16+16]
		s0 := row[0]*q[0] + row[8]*q[8]
		s1 := row[1]*q[1] + row[9]*q[9]
		s2 := row[2]*q[2] + row[10]*q[10]
		s3 := row[3]*q[3] + row[11]*q[11]
		s4 := row[4]*q[4] + row[12]*q[12]
		s5 := row[5]*q[5] + row[13]*q[13]
		s6 := row[6]*q[6] + row[14]*q[14]
		s7 := row[7]*q[7] + row[15]*q[15]
		t0 := s0 + s4
		t1 := s1 + s5
		t2 := s2 + s6
		t3 := s3 + s7
		out[r-lo] = float64((t0 + t1) + (t2 + t3))
	}
}

// dot32Range8Go is the d=8 specialization: one product per lane, the
// shared 8→4→1 reduction.
func dot32Range8Go(data, q []float32, lo, hi int, out []float64) {
	q = q[:8:8]
	for r := lo; r < hi; r++ {
		row := data[r*8 : r*8+8 : r*8+8]
		t0 := row[0]*q[0] + row[4]*q[4]
		t1 := row[1]*q[1] + row[5]*q[5]
		t2 := row[2]*q[2] + row[6]*q[6]
		t3 := row[3]*q[3] + row[7]*q[7]
		out[r-lo] = float64((t0 + t1) + (t2 + t3))
	}
}

// dot32RangeGeneric is the any-dimension float32 kernel: 8 lanes
// (j mod 8) with the scalar tail folded into lane 0, reduced through
// the same t_i = s_i + s_{i+4} fold. Generic dimensions have no asm
// twin, so the only contract is determinism.
func dot32RangeGeneric(data []float32, d int, q []float32, lo, hi int, out []float64) {
	q = q[:d:d]
	for r := lo; r < hi; r++ {
		off := r * d
		row := data[off : off+d : off+d]
		var s [8]float32
		j := 0
		for ; j+8 <= d; j += 8 {
			s[0] += row[j] * q[j]
			s[1] += row[j+1] * q[j+1]
			s[2] += row[j+2] * q[j+2]
			s[3] += row[j+3] * q[j+3]
			s[4] += row[j+4] * q[j+4]
			s[5] += row[j+5] * q[j+5]
			s[6] += row[j+6] * q[j+6]
			s[7] += row[j+7] * q[j+7]
		}
		for ; j < d; j++ {
			s[0] += row[j] * q[j]
		}
		t0 := s[0] + s[4]
		t1 := s[1] + s[5]
		t2 := s[2] + s[6]
		t3 := s[3] + s[7]
		out[r-lo] = float64((t0 + t1) + (t2 + t3))
	}
}

// blockScorer fills out[0:hi-lo] with the float64 scores of rows
// [lo, hi). It is the one pluggable piece of the shared quantized scan
// driver below: Store32 and StoreI8 bind their kernels (and
// query-dependent state) into a closure, and everything else — block
// loop, tombstone triage, done polling, parallel chunking, canonical
// top-k merge — is written once. Scorers must be safe for concurrent
// calls on disjoint ranges (they only read the store).
type blockScorer func(lo, hi int, out []float64)

// scanScoredBlocks is scanBlocks/scanBlocksMasked generalized over the
// scorer: fully-dead blocks are skipped before the kernel runs, clean
// blocks take the unmasked bookkeeping, and a closed done channel
// abandons the scan (returning true; the accumulator is then partial
// and must be discarded). A nil dead keeps the loop triage-free.
func scanScoredBlocks(score blockScorer, lo, hi int, unsigned bool, a *Acc, dead *Tombstones, done <-chan struct{}) bool {
	var buf [blockRows]float64
	for start := lo; start < hi; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return true
			default:
			}
		}
		end := start + blockRows
		if end > hi {
			end = hi
		}
		nb := end - start
		if dead != nil {
			nd := dead.DeadIn(start, end)
			if nd == nb {
				continue
			}
			score(start, end, buf[:nb])
			if nd == 0 {
				offerScores(a, buf[:nb], start, unsigned, nil)
			} else {
				offerScoresMasked(a, buf[:nb], start, unsigned, nil, dead)
			}
			continue
		}
		score(start, end, buf[:nb])
		offerScores(a, buf[:nb], start, unsigned, nil)
	}
	return false
}

// scoredTopKDone is the shared quantized top-k driver: the same worker
// clamp, per-chunk accumulators and canonical merge as Store.topKDone,
// parameterized on the scorer. An empty dead set degrades to the
// unmasked loop, so delete-free collections never pay the triage.
func scoredTopKDone(n, k, workers int, unsigned bool, score blockScorer, dead *Tombstones, done <-chan struct{}) ([]Hit, bool, error) {
	if k <= 0 {
		return nil, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	if dead.Count() == 0 {
		dead = nil
	}
	if workers > n/minParallelRows {
		workers = n / minParallelRows
	}
	if workers <= 1 {
		a := NewAcc(k)
		if scanScoredBlocks(score, 0, n, unsigned, &a, dead, done) {
			return nil, true, nil
		}
		return a.Hits(), false, nil
	}
	chunk := (n + workers - 1) / workers
	accs := make([]Acc, workers)
	stopped := make([]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			accs[w] = NewAcc(k)
			stopped[w] = scanScoredBlocks(score, lo, hi, unsigned, &accs[w], dead, done)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, st := range stopped {
		if st {
			return nil, true, nil
		}
	}
	merged := NewAcc(k)
	for w := range accs {
		for _, h := range accs[w].Hits() {
			merged.Offer(h.Index, h.Score)
		}
	}
	return merged.Hits(), false, nil
}

// MaxScanWorkers mirrors Store.MaxScanWorkers for the f32 view.
func (s *Store32) MaxScanWorkers() int { return s.Len() / minParallelRows }

// CanParallelScan reports whether TopK's workers hint can split this
// store's scan at all.
func (s *Store32) CanParallelScan() bool { return s.MaxScanWorkers() >= 2 }

// TopK returns up to k hits for q under the canonical ordering, scores
// computed in float32 and widened. Same parallelism contract as
// Store.TopK.
func (s *Store32) TopK(q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	return s.TopKMasked(q, k, unsigned, workers, nil)
}

// TopKMasked is TopK restricted to live rows (nil or empty dead takes
// exactly the TopK path).
func (s *Store32) TopKMasked(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, _, err := s.topKMaskedDone(q, k, unsigned, workers, dead, nil)
	return hits, err
}

// TopKCtx is TopK with cancellation.
func (s *Store32) TopKCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	return s.TopKMaskedCtx(ctx, q, k, unsigned, workers, nil)
}

// TopKMaskedCtx is TopKMasked with cancellation: identical results when
// ctx never fires, ctx's error (and no hits) when it does.
func (s *Store32) TopKMaskedCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones) ([]Hit, error) {
	hits, stopped, err := s.topKMaskedDone(q, k, unsigned, workers, dead, doneOf(ctx))
	if err != nil {
		return nil, err
	}
	if stopped {
		return nil, stopErr(ctx)
	}
	return hits, nil
}

func (s *Store32) topKMaskedDone(q vec.Vector, k int, unsigned bool, workers int, dead *Tombstones, done <-chan struct{}) ([]Hit, bool, error) {
	if err := s.checkMask(dead); err != nil {
		return nil, false, err
	}
	if err := s.checkQuery(q); err != nil {
		return nil, false, err
	}
	qf := round32(q)
	score := func(lo, hi int, out []float64) { s.dotRange(qf, lo, hi, out) }
	return scoredTopKDone(s.Len(), k, workers, unsigned, score, dead, done)
}

// f32BoundFudge inflates the Cauchy–Schwarz bound for the float32 scan:
// a float32 dot of length d differs from the exact product by at most
// ≈ d·2⁻²⁴·‖p‖·‖q‖ (plus the rounding of q itself); doubling the
// epsilon to d·2⁻²³ leaves comfortable margin, so a pruned block can
// never hide a row whose computed f32 score would have entered.
func f32BoundFudge(d int) float64 { return 1 + float64(d)*0x1p-23 }

// NormSorted32 is the descending-norm view of a Store32: physically
// reordered rows (norm descending, original index ascending), with the
// early exit guarded by the epsilon-inflated bound above. Returned hits
// carry original row indexes.
type NormSorted32 struct {
	store *Store32
	perm  []int // perm[physical] = original index
}

// NewNormSorted32 builds the reordered view (same concrete-key sort as
// NewNormSorted).
func NewNormSorted32(s *Store32) *NormSorted32 {
	n := s.Len()
	type key struct {
		norm float64
		idx  int
	}
	keys := make([]key, n)
	for i := range keys {
		keys[i] = key{norm: s.norms[i], idx: i}
	}
	slices.SortFunc(keys, func(a, b key) int {
		if a.norm != b.norm {
			if a.norm > b.norm {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	perm := make([]int, n)
	re := &Store32{
		dim:   s.dim,
		data:  make([]float32, len(s.data)),
		norms: make([]float64, n),
	}
	for phys, k := range keys {
		perm[phys] = k.idx
		copy(re.data[phys*s.dim:(phys+1)*s.dim], s.Row(k.idx))
		re.norms[phys] = k.norm
	}
	return &NormSorted32{store: re, perm: perm}
}

// Len returns the number of rows.
func (ns *NormSorted32) Len() int { return ns.store.Len() }

// Dim returns the row dimension.
func (ns *NormSorted32) Dim() int { return ns.store.dim }

// Store returns the physically reordered float32 store (read-only).
func (ns *NormSorted32) Store() *Store32 { return ns.store }

// Perm returns the physical→original index map (read-only).
func (ns *NormSorted32) Perm() []int { return ns.perm }

// TopK is the early-terminating f32 scan; scanned reports rows whose
// dot was evaluated before the inflated norm bound stopped the scan.
func (ns *NormSorted32) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, int, error) {
	return ns.TopKMasked(q, k, unsigned, nil)
}

// TopKMasked is TopK over live rows only; dead lives in the view's
// physical order (Gather(Perm()) from an original-space set).
func (ns *NormSorted32) TopKMasked(q vec.Vector, k int, unsigned bool, dead *Tombstones) ([]Hit, int, error) {
	hits, scanned, _, err := ns.topKMaskedDone(q, k, unsigned, dead, nil)
	return hits, scanned, err
}

// TopKCtx is TopK with cancellation.
func (ns *NormSorted32) TopKCtx(ctx context.Context, q vec.Vector, k int, unsigned bool) ([]Hit, int, error) {
	return ns.TopKMaskedCtx(ctx, q, k, unsigned, nil)
}

// TopKMaskedCtx is TopKMasked with cancellation.
func (ns *NormSorted32) TopKMaskedCtx(ctx context.Context, q vec.Vector, k int, unsigned bool, dead *Tombstones) ([]Hit, int, error) {
	hits, scanned, stopped, err := ns.topKMaskedDone(q, k, unsigned, dead, doneOf(ctx))
	if err != nil {
		return nil, scanned, err
	}
	if stopped {
		return nil, scanned, stopErr(ctx)
	}
	return hits, scanned, nil
}

func (ns *NormSorted32) topKMaskedDone(q vec.Vector, k int, unsigned bool, dead *Tombstones, done <-chan struct{}) ([]Hit, int, bool, error) {
	s := ns.store
	if err := s.checkMask(dead); err != nil {
		return nil, 0, false, err
	}
	if err := s.checkQuery(q); err != nil {
		return nil, 0, false, err
	}
	if k <= 0 {
		return nil, 0, false, fmt.Errorf("flat: k=%d must be positive", k)
	}
	if dead.Count() == 0 {
		dead = nil
	}
	qf := round32(q)
	// The bound must dominate the *computed* f32 scores, which are dots
	// against the rounded query — so the query norm is taken over the
	// rounded values and the product inflated by the f32 error margin.
	qn := norm64of32(qf) * f32BoundFudge(s.dim)
	n := s.Len()
	a := NewAcc(k)
	scanned := 0
	var buf [blockRows]float64
	for start := 0; start < n; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return nil, scanned, true, nil
			default:
			}
		}
		if a.Full() && s.norms[start]*qn < a.Threshold() {
			break // every remaining row is dominated by the inflated bound
		}
		end := start + blockRows
		if end > n {
			end = n
		}
		nb := end - start
		if dead != nil {
			nd := dead.DeadIn(start, end)
			if nd == nb {
				continue
			}
			s.dotRange(qf, start, end, buf[:nb])
			scanned += nb
			if nd == 0 {
				offerScores(&a, buf[:nb], start, unsigned, ns.perm)
			} else {
				offerScoresMasked(&a, buf[:nb], start, unsigned, ns.perm, dead)
			}
			continue
		}
		s.dotRange(qf, start, end, buf[:nb])
		scanned += nb
		offerScores(&a, buf[:nb], start, unsigned, ns.perm)
	}
	return a.Hits(), scanned, false, nil
}
