package flat

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// forEachKernelPath runs fn under every available kernel dispatch: the
// pure-Go tile kernels always, and the AVX2 micro-kernels when the
// machine has them. Both must produce bit-identical results.
func forEachKernelPath(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	saved := useDotTileAsm
	defer func() { useDotTileAsm = saved }()
	useDotTileAsm = false
	t.Run("go", fn)
	if saved {
		useDotTileAsm = true
		t.Run("asm", fn)
	}
}

// sameScore treats two NaNs as equal (payloads may differ between the
// scalar and SIMD reduction orders; both are rejected by Acc anyway).
func sameScore(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestDotTileMatchesDotRange pins the tile kernel's bit-identity
// contract: every (row, query) cell of the tile must equal the
// single-query kernel's score on the same operands, across dimensions
// that exercise the d=8/d=16 micro-kernels (quads plus remainders) and
// the generic path.
func TestDotTileMatchesDotRange(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		rng := xrand.New(11)
		for _, d := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 33} {
			for _, n := range []int{1, 2, 3, 5, 255, 256, 257} {
				s, err := FromVectors(randomVecs(rng, n, d))
				if err != nil {
					t.Fatal(err)
				}
				for _, nq := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
					qs, err := FromVectors(randomVecs(rng, nq, d))
					if err != nil {
						t.Fatal(err)
					}
					plo, phi := 0, n
					if n > 4 {
						plo, phi = 1, n-2 // unaligned block offsets
					}
					nb := phi - plo
					out := make([]float64, nq*nb)
					if err := s.DotTile(qs, 0, nq, plo, phi, out); err != nil {
						t.Fatalf("d=%d n=%d nq=%d: DotTile: %v", d, n, nq, err)
					}
					want := make([]float64, nb)
					for j := 0; j < nq; j++ {
						if err := s.DotRange(qs.Row(j), plo, phi, want); err != nil {
							t.Fatal(err)
						}
						for r := 0; r < nb; r++ {
							if got := out[j*nb+r]; !sameScore(got, want[r]) {
								t.Fatalf("d=%d n=%d nq=%d query %d row %d: tile %v, single %v (must be bit-identical)",
									d, n, nq, j, plo+r, got, want[r])
							}
						}
					}
				}
			}
		}
	})
}

// TestDotTileErrors checks the validated wrapper's failure modes.
func TestDotTileErrors(t *testing.T) {
	s, _ := FromVectors([]vec.Vector{{1, 2}, {3, 4}})
	qs, _ := FromVectors([]vec.Vector{{1, 2}})
	q3, _ := FromVectors([]vec.Vector{{1, 2, 3}})
	out := make([]float64, 2)
	if err := s.DotTile(q3, 0, 1, 0, 2, out); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := s.DotTile(qs, 0, 2, 0, 2, out); err == nil {
		t.Fatal("query range out of bounds accepted")
	}
	if err := s.DotTile(qs, 0, 1, 0, 3, out); err == nil {
		t.Fatal("row range out of bounds accepted")
	}
	if err := s.DotTile(qs, 0, 1, 0, 2, out[:1]); err == nil {
		t.Fatal("short out accepted")
	}
	if err := s.DotTile(qs, 0, 1, 0, 2, out); err != nil {
		t.Fatalf("valid DotTile rejected: %v", err)
	}
}

// saltedVecs builds the adversarial data set: random rows plus exact
// duplicates, zero rows, and a sign-flipped copy, forcing ties that
// only the canonical (score, index) ordering resolves.
func saltedVecs(rng *xrand.RNG, n, d int) []vec.Vector {
	vs := randomVecs(rng, n, d)
	dup := vs[rng.Intn(len(vs))].Clone()
	return append(vs, dup, dup.Clone(), vec.New(d), vec.New(d), vec.Neg(dup))
}

// tileGrid builds an adversarial query set: random rows plus exact
// duplicates of data rows (maximal ties), a zero query, and a NaN
// query (every score NaN, so the accumulators must reject everything).
func tileGrid(rng *xrand.RNG, vs []vec.Vector, nq, d int) []vec.Vector {
	qs := make([]vec.Vector, 0, nq+3)
	for i := 0; i < nq; i++ {
		qs = append(qs, vec.Vector(rng.NormalVec(d)))
	}
	qs = append(qs, vs[rng.Intn(len(vs))].Clone(), vec.New(d))
	nan := vec.New(d)
	nan[rng.Intn(d)] = math.NaN()
	qs = append(qs, nan)
	return qs
}

// TestTopKMultiMatchesTopK is the multi-query equivalence grid: over
// randomized n/d/k/q (with duplicated rows, zero rows, zero queries
// and NaN queries), TopKMulti must be bit-identical to the per-query
// single-query scan — hits, ordering, tie-breaks, NaN rejection.
func TestTopKMultiMatchesTopK(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		for _, tc := range []struct{ n, d, k, q int }{
			{1, 16, 1, 1},
			{7, 3, 2, 5},
			{300, 8, 5, 11},
			{513, 16, 10, 9},
			{1000, 16, 3, 17},
			{700, 24, 7, 6},
			{260, 1, 4, 4},
		} {
			for seed := uint64(0); seed < 2; seed++ {
				rng := xrand.New(1 + seed*997 + uint64(tc.n*31+tc.d*7+tc.k))
				vs := saltedVecs(rng, tc.n, tc.d)
				s, err := FromVectors(vs)
				if err != nil {
					t.Fatal(err)
				}
				queries := tileGrid(rng, vs, tc.q, tc.d)
				qs, err := FromVectors(queries)
				if err != nil {
					t.Fatal(err)
				}
				for _, unsigned := range []bool{false, true} {
					multi, err := s.TopKMulti(qs, tc.k, unsigned)
					if err != nil {
						t.Fatal(err)
					}
					for j, q := range queries {
						want, err := s.TopK(q, tc.k, unsigned, 1)
						if err != nil {
							t.Fatal(err)
						}
						if !hitsEqual(multi[j], want) {
							t.Fatalf("n=%d d=%d k=%d unsigned=%v query %d: multi %v != single %v",
								tc.n, tc.d, tc.k, unsigned, j, multi[j], want)
						}
					}
				}
			}
		}
	})
}

// TestNormSortedTopKMultiMatchesTopK does the same for the
// early-terminating descending-norm scan, including the per-query
// scanned counts (the multi sweep must prune exactly like the
// single-query bound, never more, never less).
func TestNormSortedTopKMultiMatchesTopK(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		for _, tc := range []struct{ n, d, k, q int }{
			{300, 16, 5, 9},
			{1000, 8, 3, 13},
			{2048, 16, 10, 7},
			{700, 24, 2, 5},
		} {
			rng := xrand.New(uint64(tc.n*131 + tc.d*17 + tc.k))
			vs := saltedVecs(rng, tc.n, tc.d)
			// Skew some norms so the bound actually prunes.
			for i := 0; i < 6; i++ {
				vec.Scale(vs[rng.Intn(len(vs))], 40)
			}
			s, err := FromVectors(vs)
			if err != nil {
				t.Fatal(err)
			}
			ns := NewNormSorted(s)
			queries := tileGrid(rng, vs, tc.q, tc.d)
			qs, err := FromVectors(queries)
			if err != nil {
				t.Fatal(err)
			}
			for _, unsigned := range []bool{false, true} {
				multi, scanned, err := ns.TopKMulti(qs, tc.k, unsigned)
				if err != nil {
					t.Fatal(err)
				}
				pruned := false
				for j, q := range queries {
					want, wantScanned, err := ns.TopK(q, tc.k, unsigned)
					if err != nil {
						t.Fatal(err)
					}
					if !hitsEqual(multi[j], want) {
						t.Fatalf("n=%d d=%d k=%d unsigned=%v query %d: multi %v != single %v",
							tc.n, tc.d, tc.k, unsigned, j, multi[j], want)
					}
					if scanned[j] != wantScanned {
						t.Fatalf("n=%d d=%d k=%d unsigned=%v query %d: multi scanned %d, single %d",
							tc.n, tc.d, tc.k, unsigned, j, scanned[j], wantScanned)
					}
					if wantScanned < s.Len() {
						pruned = true
					}
				}
				if !pruned {
					t.Fatalf("n=%d d=%d: norm bound never pruned any query", tc.n, tc.d)
				}
			}
		}
	})
}

// TestTopKMultiInputValidation checks the Into variants' contracts.
func TestTopKMultiInputValidation(t *testing.T) {
	s, _ := FromVectors([]vec.Vector{{1, 2}, {3, 4}})
	qs, _ := FromVectors([]vec.Vector{{1, 0}, {0, 1}})
	sc := GetTileScratch()
	defer PutTileScratch(sc)
	if err := s.TopKMultiInto(nil, 0, 0, false, nil, sc); err == nil {
		t.Fatal("nil query store accepted")
	}
	if err := s.TopKMultiInto(qs, 0, 3, false, make([]Acc, 3), sc); err == nil {
		t.Fatal("query range out of bounds accepted")
	}
	if err := s.TopKMultiInto(qs, 0, 2, false, make([]Acc, 1), sc); err == nil {
		t.Fatal("accumulator count mismatch accepted")
	}
	accs := sc.Accs(2, 0)
	if err := s.TopKMultiInto(qs, 0, 2, false, accs, sc); err == nil {
		t.Fatal("k=0 accumulators accepted")
	}
	if _, err := s.TopKMulti(qs, 0, false); err == nil {
		t.Fatal("TopKMulti k=0 accepted")
	}
	q3, _ := FromVectors([]vec.Vector{{1, 2, 3}})
	if _, err := s.TopKMulti(q3, 1, false); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	ns := NewNormSorted(s)
	if err := ns.TopKMultiInto(qs, 0, 2, false, sc.Accs(2, 1), make([]int, 1), sc); err == nil {
		t.Fatal("scanned length mismatch accepted")
	}
}

// TestAccReset pins the reuse semantics pooled accumulators rely on.
func TestAccReset(t *testing.T) {
	a := NewAcc(2)
	a.Offer(0, 5)
	a.Offer(1, 7)
	a.Reset(3)
	if len(a.Hits()) != 0 {
		t.Fatalf("reset left %d hits", len(a.Hits()))
	}
	a.Offer(4, 1)
	a.Offer(2, 1)
	a.Offer(3, 9)
	a.Offer(5, 0.5)
	hits := a.Hits()
	want := []Hit{{Index: 3, Score: 9}, {Index: 2, Score: 1}, {Index: 4, Score: 1}}
	if !hitsEqual(hits, want) {
		t.Fatalf("after reset: %v, want %v", hits, want)
	}
}

// TestTileKernelAllocs is the zero-allocation contract of the flat
// kernels: with a warm scratch and warm accumulators, DotTile and both
// TopKMultiInto drivers must allocate nothing.
func TestTileKernelAllocs(t *testing.T) {
	rng := xrand.New(21)
	n, d, nq, k := 1500, 16, 9, 10
	s, err := FromVectors(randomVecs(rng, n, d))
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNormSorted(s)
	qs, err := FromVectors(randomVecs(rng, nq, d))
	if err != nil {
		t.Fatal(err)
	}
	sc := GetTileScratch()
	defer PutTileScratch(sc)
	out := make([]float64, nq*256)

	if allocs := testing.AllocsPerRun(20, func() {
		if err := s.DotTile(qs, 0, nq, 0, 256, out); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("DotTile allocates %v per run, want 0", allocs)
	}

	// Warm the accumulators once so their hit storage reaches capacity.
	accs := sc.Accs(nq, k)
	if err := s.TopKMultiInto(qs, 0, nq, false, accs, sc); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		accs := sc.Accs(nq, k)
		if err := s.TopKMultiInto(qs, 0, nq, false, accs, sc); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("TopKMultiInto allocates %v per run, want 0", allocs)
	}

	scanned := make([]int, nq)
	if err := ns.TopKMultiInto(qs, 0, nq, false, sc.Accs(nq, k), scanned, sc); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		for i := range scanned {
			scanned[i] = 0
		}
		accs := sc.Accs(nq, k)
		if err := ns.TopKMultiInto(qs, 0, nq, false, accs, scanned, sc); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("NormSorted.TopKMultiInto allocates %v per run, want 0", allocs)
	}
}
