package flat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/vec"
)

// Binary block format for a Store, used by the durable-storage layer
// (internal/persist) to serialize shard/collection vector sets into
// segment snapshots. Everything is little-endian:
//
//	magic  [8]byte  "FLATBLK1"
//	dim    uint32
//	count  uint64
//	data   count*dim float64 (row-major, raw IEEE-754 bits)
//	crc    uint32   CRC-32C (Castagnoli) over everything above
//
// Norms are not stored: they are recomputed from the decoded floats by
// the same vec.Norm the append path uses, so a decoded store is
// bit-identical to one built by AppendAll over the same rows.

var blockMagic = [8]byte{'F', 'L', 'A', 'T', 'B', 'L', 'K', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// blockHeaderSize is magic + dim + count.
const blockHeaderSize = 8 + 4 + 8

// EncodedSize returns the exact byte length AppendBinary will emit.
func (s *Store) EncodedSize() int {
	return blockHeaderSize + len(s.data)*8 + 4
}

// AppendBinary appends the store's binary block encoding to buf and
// returns the extended slice.
func (s *Store) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, blockMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Len()))
	for _, v := range s.data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// DecodeStore parses one binary block from the front of data, returning
// the decoded store and the number of bytes consumed. Every length is
// validated against len(data) before any allocation, and the checksum
// must match, so arbitrary (truncated, bit-flipped) input yields an
// error, never a panic or a corrupt store.
func DecodeStore(data []byte) (*Store, int, error) {
	if len(data) < blockHeaderSize+4 {
		return nil, 0, fmt.Errorf("flat: block truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != blockMagic {
		return nil, 0, fmt.Errorf("flat: bad block magic %q", data[:8])
	}
	dim := binary.LittleEndian.Uint32(data[8:12])
	count := binary.LittleEndian.Uint64(data[12:20])
	if dim == 0 {
		return nil, 0, fmt.Errorf("flat: block has zero dimension")
	}
	// Overflow-safe payload sizing: both factors are bounded by the
	// input length before they are multiplied.
	maxFloats := uint64(len(data)) / 8
	if uint64(dim) > maxFloats || count > maxFloats || uint64(dim)*count > maxFloats {
		return nil, 0, fmt.Errorf("flat: block claims %d×%d floats, input has %d bytes",
			count, dim, len(data))
	}
	n := int(uint64(dim) * count)
	total := blockHeaderSize + n*8 + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("flat: block truncated: want %d bytes, have %d", total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[total-4 : total])
	if got := crc32.Checksum(data[:total-4], castagnoli); got != want {
		return nil, 0, fmt.Errorf("flat: block checksum mismatch: %08x != %08x", got, want)
	}
	s := &Store{
		dim:   int(dim),
		data:  make([]float64, n),
		norms: make([]float64, count),
	}
	raw := data[blockHeaderSize:]
	for i := range s.data {
		s.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	for i := range s.norms {
		s.norms[i] = vec.Norm(s.Row(i))
	}
	return s, total, nil
}
