package flat

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary block formats for the quantized stores, mirroring the Store
// block (io.go) with tier-specific payloads. Everything little-endian:
//
//	FLATBLK2 (Store32)
//	  magic  [8]byte  "FLATBLK2"
//	  dim    uint32
//	  count  uint64
//	  data   count*dim float32 (row-major, raw IEEE-754 bits)
//	  crc    uint32   CRC-32C (Castagnoli) over everything above
//
//	FLATBLK3 (StoreI8)
//	  magic  [8]byte  "FLATBLK3"
//	  dim    uint32
//	  count  uint64
//	  scale  float64  (raw IEEE-754 bits)
//	  codes  count*dim int8
//	  crc    uint32   CRC-32C (Castagnoli) over everything above
//
// As with FLATBLK1, norms are recomputed on decode (by the same
// norms32 the builder uses), every length is validated before any
// allocation, and the checksum must match — torn or bit-flipped input
// yields an error, never a panic or a corrupt store.

var (
	block32Magic = [8]byte{'F', 'L', 'A', 'T', 'B', 'L', 'K', '2'}
	blockI8Magic = [8]byte{'F', 'L', 'A', 'T', 'B', 'L', 'K', '3'}
)

// EncodedSize returns the exact byte length AppendBinary will emit.
func (s *Store32) EncodedSize() int {
	return blockHeaderSize + len(s.data)*4 + 4
}

// AppendBinary appends the store's binary block encoding to buf and
// returns the extended slice.
func (s *Store32) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, block32Magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Len()))
	for _, v := range s.data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// DecodeStore32 parses one FLATBLK2 block from the front of data,
// returning the decoded store and the number of bytes consumed.
func DecodeStore32(data []byte) (*Store32, int, error) {
	if len(data) < blockHeaderSize+4 {
		return nil, 0, fmt.Errorf("flat: f32 block truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != block32Magic {
		return nil, 0, fmt.Errorf("flat: bad f32 block magic %q", data[:8])
	}
	dim := binary.LittleEndian.Uint32(data[8:12])
	count := binary.LittleEndian.Uint64(data[12:20])
	if dim == 0 {
		return nil, 0, fmt.Errorf("flat: f32 block has zero dimension")
	}
	// Overflow-safe payload sizing: dim ≤ maxFloats/count exactly when
	// dim·count ≤ maxFloats, with no multiplication to overflow.
	maxFloats := uint64(len(data)) / 4
	if count > maxFloats || (count > 0 && uint64(dim) > maxFloats/count) {
		return nil, 0, fmt.Errorf("flat: f32 block claims %d×%d floats, input has %d bytes",
			count, dim, len(data))
	}
	n := int(uint64(dim) * count)
	total := blockHeaderSize + n*4 + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("flat: f32 block truncated: want %d bytes, have %d", total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[total-4 : total])
	if got := crc32.Checksum(data[:total-4], castagnoli); got != want {
		return nil, 0, fmt.Errorf("flat: f32 block checksum mismatch: %08x != %08x", got, want)
	}
	s := &Store32{
		dim:  int(dim),
		data: make([]float32, n),
	}
	raw := data[blockHeaderSize:]
	for i := range s.data {
		s.data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	s.norms = norms32(s.data, s.dim)
	return s, total, nil
}

// blockI8HeaderSize is magic + dim + count + scale.
const blockI8HeaderSize = blockHeaderSize + 8

// EncodedSize returns the exact byte length AppendBinary will emit.
func (s *StoreI8) EncodedSize() int {
	return blockI8HeaderSize + len(s.codes) + 4
}

// AppendBinary appends the store's binary block encoding to buf and
// returns the extended slice.
func (s *StoreI8) AppendBinary(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, blockI8Magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Len()))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.scale))
	for _, c := range s.codes {
		buf = append(buf, byte(c))
	}
	crc := crc32.Checksum(buf[start:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// DecodeStoreI8 parses one FLATBLK3 block from the front of data,
// returning the decoded store and the number of bytes consumed. The
// scale must be finite and non-negative (zero only alongside all-zero
// codes is what the encoder emits, but that pairing is the segment
// layer's requantization check, not the codec's).
func DecodeStoreI8(data []byte) (*StoreI8, int, error) {
	if len(data) < blockI8HeaderSize+4 {
		return nil, 0, fmt.Errorf("flat: int8 block truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != blockI8Magic {
		return nil, 0, fmt.Errorf("flat: bad int8 block magic %q", data[:8])
	}
	dim := binary.LittleEndian.Uint32(data[8:12])
	count := binary.LittleEndian.Uint64(data[12:20])
	scale := math.Float64frombits(binary.LittleEndian.Uint64(data[20:28]))
	if dim == 0 {
		return nil, 0, fmt.Errorf("flat: int8 block has zero dimension")
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return nil, 0, fmt.Errorf("flat: int8 block has invalid scale %v", scale)
	}
	maxCodes := uint64(len(data))
	if count > maxCodes || (count > 0 && uint64(dim) > maxCodes/count) {
		return nil, 0, fmt.Errorf("flat: int8 block claims %d×%d codes, input has %d bytes",
			count, dim, len(data))
	}
	n := int(uint64(dim) * count)
	total := blockI8HeaderSize + n + 4
	if len(data) < total {
		return nil, 0, fmt.Errorf("flat: int8 block truncated: want %d bytes, have %d", total, len(data))
	}
	want := binary.LittleEndian.Uint32(data[total-4 : total])
	if got := crc32.Checksum(data[:total-4], castagnoli); got != want {
		return nil, 0, fmt.Errorf("flat: int8 block checksum mismatch: %08x != %08x", got, want)
	}
	s := &StoreI8{
		dim:   int(dim),
		codes: make([]int8, n),
		scale: scale,
	}
	raw := data[blockI8HeaderSize:]
	for i := range s.codes {
		s.codes[i] = int8(raw[i])
	}
	return s, total, nil
}
