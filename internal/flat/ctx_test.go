package flat

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestTopKCtxIdentical pins the zero-cost contract: with a background
// (never-cancellable) context every Ctx entry point must return
// results bit-identical to its context-free twin, for both the flat
// and norm-sorted drivers, masked and unmasked, serial and parallel.
func TestTopKCtxIdentical(t *testing.T) {
	rng := xrand.New(5)
	s, err := FromVectors(randomVecs(rng, 700, 9))
	if err != nil {
		t.Fatalf("FromVectors: %v", err)
	}
	ns := NewNormSorted(s)
	dead := NewTombstones(s.Len())
	for i := 0; i < s.Len(); i += 7 {
		dead.Kill(i)
	}
	q := vec.Vector(rng.NormalVec(9))
	ctx := context.Background()

	for _, workers := range []int{1, 4} {
		base, err := s.TopK(q, 10, false, workers)
		if err != nil {
			t.Fatalf("TopK: %v", err)
		}
		got, err := s.TopKCtx(ctx, q, 10, false, workers)
		if err != nil {
			t.Fatalf("TopKCtx: %v", err)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d hits via ctx, %d without", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d hit %d: ctx %+v, plain %+v", workers, i, got[i], base[i])
			}
		}

		mbase, _ := s.TopKMasked(q, 10, false, workers, dead)
		mgot, err := s.TopKMaskedCtx(ctx, q, 10, false, workers, dead)
		if err != nil {
			t.Fatalf("TopKMaskedCtx: %v", err)
		}
		for i := range mgot {
			if mgot[i] != mbase[i] {
				t.Fatalf("masked workers=%d hit %d: ctx %+v, plain %+v", workers, i, mgot[i], mbase[i])
			}
		}
	}

	nbase, nscanned, _ := ns.TopK(q, 10, false)
	ngot, gscanned, err := ns.TopKCtx(ctx, q, 10, false)
	if err != nil {
		t.Fatalf("NormSorted.TopKCtx: %v", err)
	}
	if gscanned != nscanned || len(ngot) != len(nbase) {
		t.Fatalf("normscan ctx scanned %d/%d hits %d/%d", gscanned, nscanned, len(ngot), len(nbase))
	}
	for i := range ngot {
		if ngot[i] != nbase[i] {
			t.Fatalf("normscan hit %d: ctx %+v, plain %+v", i, ngot[i], nbase[i])
		}
	}
}

// TestTopKCtxCancelled pins the cancellation contract: an already
// cancelled context yields the context error and no hits from every
// entry point — partial accumulations are never returned.
func TestTopKCtxCancelled(t *testing.T) {
	rng := xrand.New(6)
	s, err := FromVectors(randomVecs(rng, 3000, 6))
	if err != nil {
		t.Fatalf("FromVectors: %v", err)
	}
	ns := NewNormSorted(s)
	dead := NewTombstones(s.Len())
	q := vec.Vector(rng.NormalVec(6))
	ctx := cancelledCtx()

	if hits, err := s.TopKCtx(ctx, q, 5, false, 1); !errors.Is(err, context.Canceled) || hits != nil {
		t.Fatalf("TopKCtx cancelled: hits=%v err=%v", hits, err)
	}
	if hits, err := s.TopKCtx(ctx, q, 5, false, 4); !errors.Is(err, context.Canceled) || hits != nil {
		t.Fatalf("TopKCtx cancelled parallel: hits=%v err=%v", hits, err)
	}
	if hits, err := s.TopKMaskedCtx(ctx, q, 5, false, 1, dead); !errors.Is(err, context.Canceled) || hits != nil {
		t.Fatalf("TopKMaskedCtx cancelled: hits=%v err=%v", hits, err)
	}
	if hits, _, err := ns.TopKCtx(ctx, q, 5, false); !errors.Is(err, context.Canceled) || hits != nil {
		t.Fatalf("NormSorted.TopKCtx cancelled: hits=%v err=%v", hits, err)
	}
	if hits, _, err := ns.TopKMaskedCtx(ctx, q, 5, false, dead); !errors.Is(err, context.Canceled) || hits != nil {
		t.Fatalf("NormSorted.TopKMaskedCtx cancelled: hits=%v err=%v", hits, err)
	}

	qs, _ := FromVectors(randomVecs(rng, 8, 6))
	accs := make([]Acc, 8)
	for i := range accs {
		accs[i] = NewAcc(5)
	}
	var sc TileScratch
	if err := s.TopKMultiIntoCtx(ctx, qs, 0, 8, false, accs, &sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKMultiIntoCtx cancelled: err=%v", err)
	}
	if err := s.TopKMultiMaskedIntoCtx(ctx, qs, 0, 8, false, accs, &sc, dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKMultiMaskedIntoCtx cancelled: err=%v", err)
	}
	scanned := make([]int, 8)
	if err := ns.TopKMultiIntoCtx(ctx, qs, 0, 8, false, accs, scanned, &sc); !errors.Is(err, context.Canceled) {
		t.Fatalf("NormSorted.TopKMultiIntoCtx cancelled: err=%v", err)
	}
	if err := ns.TopKMultiMaskedIntoCtx(ctx, qs, 0, 8, false, accs, scanned, &sc, dead); !errors.Is(err, context.Canceled) {
		t.Fatalf("NormSorted.TopKMultiMaskedIntoCtx cancelled: err=%v", err)
	}
}

// TestTopKCtxMidScan cancels a context while a long scan is running
// and checks the driver gives up within the deadline's neighbourhood
// rather than finishing the sweep: the block-boundary polls must
// actually fire.
func TestTopKCtxMidScan(t *testing.T) {
	rng := xrand.New(7)
	s, err := FromVectors(randomVecs(rng, 200000, 12))
	if err != nil {
		t.Fatalf("FromVectors: %v", err)
	}
	q := vec.Vector(rng.NormalVec(12))

	// Grow the store until one serial sweep takes long enough that a
	// sleep-then-cancel lands mid-scan instead of after it; scheduling
	// jitter on a loaded machine makes sub-millisecond targets flaky.
	baseline := time.Duration(0)
	for grow := 0; grow < 6; grow++ {
		start := time.Now()
		if _, err := s.TopK(q, 5, false, 1); err != nil {
			t.Fatalf("baseline TopK: %v", err)
		}
		baseline = time.Since(start)
		if baseline >= 20*time.Millisecond {
			break
		}
		if err := s.AppendAll(randomVecs(rng, s.Len(), 12)); err != nil {
			t.Fatalf("growing store: %v", err)
		}
	}
	if baseline < 20*time.Millisecond {
		t.Skipf("scan too fast to cancel mid-flight (baseline %v at n=%d)", baseline, s.Len())
	}

	for attempt := 0; attempt < 5; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(baseline / 4)
			cancel()
		}()
		start := time.Now()
		hits, err := s.TopKCtx(ctx, q, 5, false, 1)
		took := time.Since(start)
		cancel()
		if err == nil {
			// The sweep beat the cancel goroutine this round (possible
			// under scheduler jitter); try again.
			continue
		}
		if !errors.Is(err, context.Canceled) || hits != nil {
			t.Fatalf("mid-scan cancel: hits=%v err=%v", hits, err)
		}
		// A Canceled return by itself proves a block-boundary poll fired
		// mid-sweep (an unpolled scan would have completed with hits).
		// The loose bound just catches a driver that somehow kept
		// scanning long after the poll.
		if took > 2*baseline {
			t.Fatalf("cancelled scan took %v against a %v baseline", took, baseline)
		}
		t.Logf("baseline %v (n=%d), cancelled after ~%v, returned in %v", baseline, s.Len(), baseline/4, took)
		return
	}
	t.Fatal("scan completed before cancellation on every attempt")
}
