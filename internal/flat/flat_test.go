package flat

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func randomVecs(rng *xrand.RNG, n, d int) []vec.Vector {
	vs := make([]vec.Vector, n)
	for i := range vs {
		vs[i] = vec.Vector(rng.NormalVec(d))
	}
	return vs
}

func TestStoreShapeAndRows(t *testing.T) {
	rng := xrand.New(1)
	vs := randomVecs(rng, 17, 5)
	s, err := FromVectors(vs)
	if err != nil {
		t.Fatalf("FromVectors: %v", err)
	}
	if s.Len() != 17 || s.Dim() != 5 {
		t.Fatalf("shape = (%d, %d), want (17, 5)", s.Len(), s.Dim())
	}
	for i, v := range vs {
		if !vec.EqualTol(s.Row(i), v, 0) {
			t.Fatalf("row %d = %v, want %v", i, s.Row(i), v)
		}
		if s.Norm(i) != vec.Norm(v) {
			t.Fatalf("norm %d = %v, want %v", i, s.Norm(i), vec.Norm(v))
		}
	}
	rows := s.Rows()
	if len(rows) != 17 {
		t.Fatalf("Rows returned %d views", len(rows))
	}
	if &rows[3][0] != &s.data[3*5] {
		t.Fatal("Rows views do not alias the backing array")
	}
}

func TestStoreErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	if _, err := New(-3); err == nil {
		t.Fatal("New(-3) succeeded")
	}
	if _, err := FromVectors(nil); err == nil {
		t.Fatal("FromVectors(nil) succeeded")
	}
	s, _ := New(3)
	if err := s.Append(vec.Vector{1, 2}); err == nil {
		t.Fatal("short append succeeded")
	}
	if err := s.AppendAll([]vec.Vector{{1, 2, 3}, {4, 5}}); err == nil {
		t.Fatal("mixed-dimension AppendAll succeeded")
	}
	if s.Len() != 0 {
		t.Fatalf("failed AppendAll left %d rows behind", s.Len())
	}
	if err := s.Append(vec.Vector{1, 2, 3}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.DotBatch(vec.Vector{1, 2}, make([]float64, 1)); err == nil {
		t.Fatal("DotBatch with wrong query dimension succeeded")
	}
	if err := s.DotBatch(vec.Vector{1, 2, 3}, make([]float64, 5)); err == nil {
		t.Fatal("DotBatch with wrong out length succeeded")
	}
	if _, err := s.TopK(vec.Vector{1}, 1, false, 1); err == nil {
		t.Fatal("TopK with wrong query dimension succeeded")
	}
	if _, err := s.TopK(vec.Vector{1, 2, 3}, 0, false, 1); err == nil {
		t.Fatal("TopK with k=0 succeeded")
	}
	ns := NewNormSorted(s)
	if _, _, err := ns.TopK(vec.Vector{1}, 1, false); err == nil {
		t.Fatal("NormSorted.TopK with wrong query dimension succeeded")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s, _ := FromVectors([]vec.Vector{{1, 2}, {3, 4}})
	c := s.Clone()
	if err := c.Append(vec.Vector{5, 6}); err != nil {
		t.Fatalf("append: %v", err)
	}
	c.data[0] = 99
	if s.Len() != 2 || s.data[0] != 1 {
		t.Fatalf("clone mutation leaked into original: len=%d data[0]=%v", s.Len(), s.data[0])
	}
}

// TestDotBatchMatchesVecDot pins the bit-identity contract: every
// kernel path (generic, d=8, d=16 row-pair) must reproduce vec.Dot
// exactly, because the serving layer's equivalence guarantees are built
// on it.
func TestDotBatchMatchesVecDot(t *testing.T) {
	rng := xrand.New(2)
	for _, d := range []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 64} {
		for _, n := range []int{1, 2, 3, 257, 513} {
			vs := randomVecs(rng, n, d)
			s, err := FromVectors(vs)
			if err != nil {
				t.Fatalf("d=%d n=%d: %v", d, n, err)
			}
			q := vec.Vector(rng.NormalVec(d))
			out := make([]float64, n)
			if err := s.DotBatch(q, out); err != nil {
				t.Fatalf("d=%d n=%d: DotBatch: %v", d, n, err)
			}
			for i := range vs {
				if want := vec.Dot(vs[i], q); out[i] != want {
					t.Fatalf("d=%d n=%d row %d: DotBatch=%v, vec.Dot=%v (must be bit-identical)",
						d, n, i, out[i], want)
				}
			}
		}
	}
}

// naiveTopK is the reference top-k: score every row with vec.Dot and
// keep the k best under (score descending, index ascending).
func naiveTopK(vs []vec.Vector, q vec.Vector, k int, unsigned bool) []Hit {
	a := NewAcc(k)
	for i, v := range vs {
		s := vec.Dot(v, q)
		if unsigned && s < 0 {
			s = -s
		}
		a.Offer(i, s)
	}
	return a.Hits()
}

func hitsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTopKParallelMatchesSerial(t *testing.T) {
	rng := xrand.New(3)
	n, d := 3*minParallelRows+101, 16
	vs := randomVecs(rng, n, d)
	s, err := FromVectors(vs)
	if err != nil {
		t.Fatal(err)
	}
	for _, unsigned := range []bool{false, true} {
		q := vec.Vector(rng.NormalVec(d))
		serial, err := s.TopK(q, 10, unsigned, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := s.TopK(q, 10, unsigned, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !hitsEqual(serial, par) {
				t.Fatalf("unsigned=%v workers=%d: parallel %v != serial %v", unsigned, workers, par, serial)
			}
		}
	}
}

// TestNormSortedEarlyTermination checks both exactness and that the
// bound actually prunes on a norm-skewed data set.
func TestNormSortedEarlyTermination(t *testing.T) {
	rng := xrand.New(4)
	n, d := 4096, 16
	vs := randomVecs(rng, n, d)
	// Give a handful of rows much larger norms so the descending-norm
	// prefix resolves the top-k early.
	for i := 0; i < 8; i++ {
		vec.Scale(vs[rng.Intn(n)], 50)
	}
	s, err := FromVectors(vs)
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNormSorted(s)
	q := vec.Vector(rng.NormalVec(d))
	hits, scanned, err := ns.TopK(q, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if want := naiveTopK(vs, q, 5, false); !hitsEqual(hits, want) {
		t.Fatalf("norm-sorted hits %v != naive %v", hits, want)
	}
	if scanned >= n {
		t.Fatalf("norm bound never terminated: scanned %d of %d", scanned, n)
	}
	t.Logf("norm-sorted scan stopped after %d of %d rows", scanned, n)
}

func TestTopKZeroAndTieVectors(t *testing.T) {
	// Adversarial ties: duplicated rows, zero rows, sign flips.
	vs := []vec.Vector{
		{1, 0}, {0, 0}, {1, 0}, {-1, 0}, {0, 0}, {0.5, 0}, {1, 0},
	}
	s, err := FromVectors(vs)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector{2, 0}
	for _, unsigned := range []bool{false, true} {
		got, err := s.TopK(q, 4, unsigned, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveTopK(vs, q, 4, unsigned)
		if !hitsEqual(got, want) {
			t.Fatalf("unsigned=%v: got %v, want %v", unsigned, got, want)
		}
		nsGot, _, err := NewNormSorted(s).TopK(q, 4, unsigned)
		if err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(nsGot, want) {
			t.Fatalf("unsigned=%v: norm-sorted got %v, want %v", unsigned, nsGot, want)
		}
	}
}

func TestTopKOverAsking(t *testing.T) {
	vs := []vec.Vector{{1}, {2}, {3}}
	s, _ := FromVectors(vs)
	hits, err := s.TopK(vec.Vector{1}, 10, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0].Index != 2 || hits[0].Score != 3 {
		t.Fatalf("over-asking returned %v", hits)
	}
	if math.IsNaN(hits[0].Score) {
		t.Fatal("NaN score")
	}
}
