// Multi-query (GEMM-style) scan kernels. The single-query kernels in
// flat.go block the *data* dimension; the tile kernels here block the
// *query* dimension as well: DotTile scores a tile of up to maxTileQ
// query rows against a block of data rows in one pass, so each data row
// loaded from memory is amortized across the whole query tile, and the
// d=8/d=16 specializations run as register-blocked AVX2 micro-kernels
// (4 queries × 2 rows per iteration) on amd64.
//
// Every score stays bit-identical to the single-query kernels: the
// per-(row, query) accumulation is the same 4-lane split (lane i mod 4)
// combined as (s0+s1)+(s2+s3), which a 4-wide SIMD vertical
// multiply/add reproduces exactly — lane k of the vector accumulator
// *is* s_k — and the horizontal reduction performs the identical
// (s0+s1)+(s2+s3) additions. No FMA is used (fused rounding would
// break the equivalence). The tile equivalence grid and FuzzDotTile
// pin this down.
//
// TopKMulti drives the tile kernel over one data sweep, maintaining a
// per-query accumulator; the NormSorted variant applies the same
// per-query Cauchy–Schwarz block bound as the single-query scan, so
// hits *and* scanned counts match the single-query path exactly.
package flat

import (
	"fmt"
	"sync"
)

// maxTileQ is the query-tile width of the multi-query drivers: dots for
// up to maxTileQ queries are materialised per data block before the
// top-k bookkeeping runs. Two quads of the 4-query micro-kernel; at
// blockRows=256 the score tile is 16 KiB, leaving the data block
// cache-resident.
const maxTileQ = 8

// Reset reconfigures the accumulator to keep the best k hits, dropping
// any accumulated state but keeping the backing storage, so pooled
// accumulators reach a zero-allocation steady state.
func (a *Acc) Reset(k int) {
	a.k = k
	a.hits = a.hits[:0]
}

// TileScratch holds the reusable buffers of the multi-query drivers
// (the score tile, liveness flags, and on-demand accumulators). A
// zero value is ready to use; Get/PutTileScratch recycle instances
// through a package pool so steady-state batch serving allocates
// nothing per request.
type TileScratch struct {
	buf  []float64
	done []bool
	accs []Acc
}

var tileScratchPool = sync.Pool{New: func() any { return new(TileScratch) }}

// GetTileScratch takes a scratch arena from the package pool.
func GetTileScratch() *TileScratch { return tileScratchPool.Get().(*TileScratch) }

// PutTileScratch returns a scratch arena to the package pool. The
// caller must no longer hold views into it (Acc hits included).
func PutTileScratch(sc *TileScratch) { tileScratchPool.Put(sc) }

// tileBuf returns the score-tile buffer (maxTileQ × blockRows).
func (sc *TileScratch) tileBuf() []float64 {
	if cap(sc.buf) < maxTileQ*blockRows {
		sc.buf = make([]float64, maxTileQ*blockRows)
	}
	return sc.buf[:maxTileQ*blockRows]
}

// doneBuf returns a cleared n-slot liveness buffer.
func (sc *TileScratch) doneBuf(n int) []bool {
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	}
	d := sc.done[:n]
	for i := range d {
		d[i] = false
	}
	return d
}

// Accs returns n accumulators, each reset to keep k hits. The slice
// and the accumulators' storage are owned by the scratch and reused
// across calls.
func (sc *TileScratch) Accs(n, k int) []Acc {
	if cap(sc.accs) < n {
		accs := make([]Acc, n)
		copy(accs, sc.accs)
		sc.accs = accs
	}
	accs := sc.accs[:n]
	for i := range accs {
		accs[i].Reset(k)
	}
	return accs
}

// DotTile fills out with the Q×B score tile of query rows [qlo, qhi)
// of qs against data rows [plo, phi): out[j*(phi-plo)+r] =
// row(plo+r)ᵀ·qs.Row(qlo+j). The tile is computed in one pass over the
// data block — each data row load is shared by every query of the tile
// — and every score is bit-identical to Dot/DotRange on the same
// operands. out must have length (qhi-qlo)·(phi-plo).
func (s *Store) DotTile(qs *Store, qlo, qhi, plo, phi int, out []float64) error {
	if qs.dim != s.dim {
		return fmt.Errorf("flat: DotTile query dimension %d, store has %d", qs.dim, s.dim)
	}
	if qlo < 0 || qhi > qs.Len() || qlo > qhi {
		return fmt.Errorf("flat: DotTile queries [%d, %d) out of [0, %d)", qlo, qhi, qs.Len())
	}
	if plo < 0 || phi > s.Len() || plo > phi {
		return fmt.Errorf("flat: DotTile rows [%d, %d) out of [0, %d)", plo, phi, s.Len())
	}
	if len(out) != (qhi-qlo)*(phi-plo) {
		return fmt.Errorf("flat: DotTile out length %d, want %d", len(out), (qhi-qlo)*(phi-plo))
	}
	s.dotTile(qs, qlo, qhi, plo, phi, out)
	return nil
}

// dotTile is the unchecked tile kernel dispatch. Query quads run
// through the AVX2 micro-kernels when available (d=8/d=16); leftovers
// and other dimensions run the pure-Go kernels, which share the exact
// accumulation chains, so the split is invisible in the results.
func (s *Store) dotTile(qs *Store, qlo, qhi, plo, phi int, out []float64) {
	d := s.dim
	nb := phi - plo
	if nb <= 0 || qhi-qlo <= 0 {
		return
	}
	j := qlo
	switch d {
	case 16:
		if useDotTileAsm {
			for ; j+4 <= qhi; j += 4 {
				o := (j - qlo) * nb
				dotTile16x4(s.data[plo*16:phi*16], qs.data[j*16:(j+4)*16], out[o:o+4*nb])
			}
		}
		for ; j+2 <= qhi; j += 2 {
			o := (j - qlo) * nb
			dotTile16x2(s.data, qs.Row(j), qs.Row(j+1), plo, phi, out[o:o+nb], out[o+nb:o+2*nb])
		}
		if j < qhi {
			dotRange16(s.data, qs.Row(j), plo, phi, out[(j-qlo)*nb:(j-qlo+1)*nb])
		}
	case 8:
		if useDotTileAsm {
			for ; j+4 <= qhi; j += 4 {
				o := (j - qlo) * nb
				dotTile8x4(s.data[plo*8:phi*8], qs.data[j*8:(j+4)*8], out[o:o+4*nb])
			}
		}
		for ; j+2 <= qhi; j += 2 {
			o := (j - qlo) * nb
			dotTile8x2(s.data, qs.Row(j), qs.Row(j+1), plo, phi, out[o:o+nb], out[o+nb:o+2*nb])
		}
		if j < qhi {
			dotRange8(s.data, qs.Row(j), plo, phi, out[(j-qlo)*nb:(j-qlo+1)*nb])
		}
	default:
		for ; j+2 <= qhi; j += 2 {
			o := (j - qlo) * nb
			dotTileGeneric2(s.data, d, qs.Row(j), qs.Row(j+1), plo, phi, out[o:o+nb], out[o+nb:o+2*nb])
		}
		if j < qhi {
			dotRangeGeneric(s.data, d, qs.Row(j), plo, phi, out[(j-qlo)*nb:(j-qlo+1)*nb])
		}
	}
}

// dotTile16x2 is the pure-Go 2-query d=16 kernel: one row load feeds
// both queries' accumulator chains, each chain identical to
// dotRange16's per-row expression.
func dotTile16x2(data []float64, u, v []float64, lo, hi int, out0, out1 []float64) {
	u = u[:16:16]
	v = v[:16:16]
	for r := lo; r < hi; r++ {
		a := data[r*16 : r*16+16 : r*16+16]
		u0 := ((a[0]*u[0] + a[4]*u[4]) + a[8]*u[8]) + a[12]*u[12]
		u1 := ((a[1]*u[1] + a[5]*u[5]) + a[9]*u[9]) + a[13]*u[13]
		u2 := ((a[2]*u[2] + a[6]*u[6]) + a[10]*u[10]) + a[14]*u[14]
		u3 := ((a[3]*u[3] + a[7]*u[7]) + a[11]*u[11]) + a[15]*u[15]
		v0 := ((a[0]*v[0] + a[4]*v[4]) + a[8]*v[8]) + a[12]*v[12]
		v1 := ((a[1]*v[1] + a[5]*v[5]) + a[9]*v[9]) + a[13]*v[13]
		v2 := ((a[2]*v[2] + a[6]*v[6]) + a[10]*v[10]) + a[14]*v[14]
		v3 := ((a[3]*v[3] + a[7]*v[7]) + a[11]*v[11]) + a[15]*v[15]
		out0[r-lo] = (u0 + u1) + (u2 + u3)
		out1[r-lo] = (v0 + v1) + (v2 + v3)
	}
}

// dotTile8x2 is the pure-Go 2-query d=8 kernel (dotRange8's chains).
func dotTile8x2(data []float64, u, v []float64, lo, hi int, out0, out1 []float64) {
	u = u[:8:8]
	v = v[:8:8]
	for r := lo; r < hi; r++ {
		a := data[r*8 : r*8+8 : r*8+8]
		u0 := a[0]*u[0] + a[4]*u[4]
		u1 := a[1]*u[1] + a[5]*u[5]
		u2 := a[2]*u[2] + a[6]*u[6]
		u3 := a[3]*u[3] + a[7]*u[7]
		v0 := a[0]*v[0] + a[4]*v[4]
		v1 := a[1]*v[1] + a[5]*v[5]
		v2 := a[2]*v[2] + a[6]*v[6]
		v3 := a[3]*v[3] + a[7]*v[7]
		out0[r-lo] = (u0 + u1) + (u2 + u3)
		out1[r-lo] = (v0 + v1) + (v2 + v3)
	}
}

// dotTileGeneric2 is the pure-Go 2-query any-dimension kernel
// (dotRangeGeneric's chains, tail folded into lane 0).
func dotTileGeneric2(data []float64, d int, u, v []float64, lo, hi int, out0, out1 []float64) {
	u = u[:d:d]
	v = v[:d:d]
	for r := lo; r < hi; r++ {
		off := r * d
		row := data[off : off+d : off+d]
		var u0, u1, u2, u3, v0, v1, v2, v3 float64
		i := 0
		for ; i+4 <= d; i += 4 {
			a, b, c, e := row[i], row[i+1], row[i+2], row[i+3]
			u0 += a * u[i]
			u1 += b * u[i+1]
			u2 += c * u[i+2]
			u3 += e * u[i+3]
			v0 += a * v[i]
			v1 += b * v[i+1]
			v2 += c * v[i+2]
			v3 += e * v[i+3]
		}
		for ; i < d; i++ {
			u0 += row[i] * u[i]
			v0 += row[i] * v[i]
		}
		out0[r-lo] = (u0 + u1) + (u2 + u3)
		out1[r-lo] = (v0 + v1) + (v2 + v3)
	}
}

// checkMulti validates the shared TopKMultiInto contract.
func (s *Store) checkMulti(qs *Store, qlo, qhi int, accs []Acc) error {
	if qs == nil {
		return fmt.Errorf("flat: nil query store")
	}
	if qs.dim != s.dim {
		return fmt.Errorf("flat: query dimension %d, store has %d", qs.dim, s.dim)
	}
	if qlo < 0 || qhi > qs.Len() || qlo > qhi {
		return fmt.Errorf("flat: queries [%d, %d) out of [0, %d)", qlo, qhi, qs.Len())
	}
	if len(accs) != qhi-qlo {
		return fmt.Errorf("flat: %d accumulators for %d queries", len(accs), qhi-qlo)
	}
	for i := range accs {
		if accs[i].k <= 0 {
			return fmt.Errorf("flat: accumulator %d has k=%d, must be positive", i, accs[i].k)
		}
	}
	return nil
}

// TopKMultiInto answers one top-k query per row of qs[qlo:qhi] in a
// single sweep of the store, accumulating into accs (accs[j] serves
// query qlo+j and must be Reset to the desired k). Blocks are visited
// in the same order and offered through the same bookkeeping as the
// single-query TopK, so accs[j].Hits() is bit-identical — ordering,
// tie-breaks and NaN rejection included — to TopK(qs.Row(qlo+j), k,
// unsigned, 1). It allocates nothing: the score tile lives in sc.
func (s *Store) TopKMultiInto(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch) error {
	_, err := s.topKMultiDone(qs, qlo, qhi, unsigned, accs, sc, nil)
	return err
}

// topKMultiDone is the multi-query driver with the optional per-block
// done poll (nil done keeps the historical unchecked loop). A true
// first return means the sweep was abandoned and accs hold partial,
// unusable state.
func (s *Store) topKMultiDone(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, sc *TileScratch, done <-chan struct{}) (bool, error) {
	if err := s.checkMulti(qs, qlo, qhi, accs); err != nil {
		return false, err
	}
	n := s.Len()
	buf := sc.tileBuf()
	for start := 0; start < n; start += blockRows {
		if done != nil {
			select {
			case <-done:
				return true, nil
			default:
			}
		}
		end := min(start+blockRows, n)
		nb := end - start
		for g := qlo; g < qhi; g += maxTileQ {
			gh := min(g+maxTileQ, qhi)
			s.dotTile(qs, g, gh, start, end, buf)
			for j := g; j < gh; j++ {
				offerScores(&accs[j-qlo], buf[(j-g)*nb:(j-g+1)*nb], start, unsigned, nil)
			}
		}
	}
	return false, nil
}

// TopKMulti answers a top-k query for every row of qs over one data
// sweep, returning per-query hit lists (bit-identical to per-query
// TopK with workers=1). It is the allocating convenience wrapper
// around TopKMultiInto.
func (s *Store) TopKMulti(qs *Store, k int, unsigned bool) ([][]Hit, error) {
	if qs == nil {
		return nil, fmt.Errorf("flat: nil query store")
	}
	if k <= 0 {
		return nil, fmt.Errorf("flat: k=%d must be positive", k)
	}
	nq := qs.Len()
	accs := make([]Acc, nq)
	for j := range accs {
		accs[j].Reset(k)
	}
	sc := GetTileScratch()
	defer PutTileScratch(sc)
	if err := s.TopKMultiInto(qs, 0, nq, unsigned, accs, sc); err != nil {
		return nil, err
	}
	out := make([][]Hit, nq)
	for j := range accs {
		hits := accs[j].Hits()
		out[j] = make([]Hit, len(hits))
		copy(out[j], hits)
	}
	return out, nil
}

// TopKMultiInto is the multi-query early-terminating scan: one
// descending-norm sweep serving every query of qs[qlo:qhi], with the
// per-query Cauchy–Schwarz block bound applied exactly as in the
// single-query NormSorted.TopK — a query goes inactive at the first
// block whose leading norm cannot displace its k-th best hit, and only
// still-live queries are scored against a block (contiguous live runs
// feed the tile kernel). Hits (original row indexes) and the per-query
// scanned counts (accumulated into scanned[j] when non-nil) are
// bit-identical to the single-query scan.
func (ns *NormSorted) TopKMultiInto(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch) error {
	_, err := ns.topKMultiDone(qs, qlo, qhi, unsigned, accs, scanned, sc, nil)
	return err
}

// topKMultiDone is the multi-query descending-norm driver with the
// optional per-block stop poll (nil stop keeps the historical
// unchecked loop).
func (ns *NormSorted) topKMultiDone(qs *Store, qlo, qhi int, unsigned bool, accs []Acc, scanned []int, sc *TileScratch, stop <-chan struct{}) (bool, error) {
	s := ns.store
	if err := s.checkMulti(qs, qlo, qhi, accs); err != nil {
		return false, err
	}
	qn := qhi - qlo
	if scanned != nil && len(scanned) != qn {
		return false, fmt.Errorf("flat: %d scanned slots for %d queries", len(scanned), qn)
	}
	n := s.Len()
	buf := sc.tileBuf()
	done := sc.doneBuf(qn)
	live := qn
	for start := 0; start < n && live > 0; start += blockRows {
		if stop != nil {
			select {
			case <-stop:
				return true, nil
			default:
			}
		}
		lead := s.norms[start]
		end := min(start+blockRows, n)
		nb := end - start
		for j := 0; j < qn; j++ {
			if !done[j] && accs[j].Full() && lead*qs.Norm(qlo+j) < accs[j].Threshold() {
				done[j] = true
				live--
			}
		}
		for j := 0; j < qn; {
			if done[j] {
				j++
				continue
			}
			r := j + 1
			for r < qn && !done[r] && r-j < maxTileQ {
				r++
			}
			s.dotTile(qs, qlo+j, qlo+r, start, end, buf)
			for jj := j; jj < r; jj++ {
				offerScores(&accs[jj], buf[(jj-j)*nb:(jj-j+1)*nb], start, unsigned, ns.perm)
				if scanned != nil {
					scanned[jj] += nb
				}
			}
			j = r
		}
	}
	return false, nil
}

// TopKMulti is the allocating convenience wrapper: per-query hit lists
// plus per-query evaluated-row counts, bit-identical to per-query
// NormSorted.TopK.
func (ns *NormSorted) TopKMulti(qs *Store, k int, unsigned bool) ([][]Hit, []int, error) {
	if qs == nil {
		return nil, nil, fmt.Errorf("flat: nil query store")
	}
	if k <= 0 {
		return nil, nil, fmt.Errorf("flat: k=%d must be positive", k)
	}
	nq := qs.Len()
	accs := make([]Acc, nq)
	for j := range accs {
		accs[j].Reset(k)
	}
	scanned := make([]int, nq)
	sc := GetTileScratch()
	defer PutTileScratch(sc)
	if err := ns.TopKMultiInto(qs, 0, nq, unsigned, accs, scanned, sc); err != nil {
		return nil, nil, err
	}
	out := make([][]Hit, nq)
	for j := range accs {
		hits := accs[j].Hits()
		out[j] = make([]Hit, len(hits))
		copy(out[j], hits)
	}
	return out, scanned, nil
}
