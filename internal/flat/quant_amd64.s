// AVX2 quantized-store range kernels. See quant_amd64.go for the
// contracts. Like the f64 tile kernels, the float32 kernels avoid FMA
// so every multiply and add is a separately rounded IEEE operation;
// the 8-lane vector accumulator matches the Go kernel's s_0..s_7, the
// in-register fold VEXTRACTF128+VADDPS reproduces t_i = s_i + s_{i+4},
// and the VHADDPS pair computes (t0+t1)+(t2+t3) before one VCVTSS2SD
// widens the score (IEEE addition is commutative for the values
// involved). The int8 kernel is exact int32 arithmetic throughout, so
// no ordering contract is needed at all.

#include "textflag.h"

// func dot32Range16(p, q []float32, out []float64)
//
// len(out) rows of 16 float32 each; q holds one query row of 16,
// loaded once into Y8 (dims 0..7) and Y9 (dims 8..15). Main loop
// processes 2 rows with independent accumulator chains.
TEXT ·dot32Range16(SB), NOSPLIT, $0-72
	MOVQ p_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ out_base+48(FP), R9
	MOVQ out_len+56(FP), CX

	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9

loop2_32x16:
	CMPQ CX, $2
	JL   tail32x16

	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VMULPS  Y8, Y0, Y0
	VMULPS  Y9, Y1, Y1
	VMULPS  Y8, Y2, Y2
	VMULPS  Y9, Y3, Y3
	VADDPS  Y1, Y0, Y0
	VADDPS  Y3, Y2, Y2

	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VCVTSS2SD    X0, X0, X0
	MOVSD        X0, (R9)

	VEXTRACTF128 $1, Y2, X3
	VADDPS       X3, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VCVTSS2SD    X2, X2, X2
	MOVSD        X2, 8(R9)

	ADDQ $128, DI
	ADDQ $16, R9
	SUBQ $2, CX
	JMP  loop2_32x16

tail32x16:
	TESTQ CX, CX
	JZ    done32x16

	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMULPS  Y8, Y0, Y0
	VMULPS  Y9, Y1, Y1
	VADDPS  Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VCVTSS2SD    X0, X0, X0
	MOVSD        X0, (R9)

done32x16:
	VZEROUPPER
	RET

// func dot32Range8(p, q []float32, out []float64)
//
// d=8 variant: one YMM row load and multiply, same reduction.
TEXT ·dot32Range8(SB), NOSPLIT, $0-72
	MOVQ p_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ out_base+48(FP), R9
	MOVQ out_len+56(FP), CX

	VMOVUPS (SI), Y8

loop2_32x8:
	CMPQ CX, $2
	JL   tail32x8

	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y2
	VMULPS  Y8, Y0, Y0
	VMULPS  Y8, Y2, Y2

	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VCVTSS2SD    X0, X0, X0
	MOVSD        X0, (R9)

	VEXTRACTF128 $1, Y2, X3
	VADDPS       X3, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VCVTSS2SD    X2, X2, X2
	MOVSD        X2, 8(R9)

	ADDQ $64, DI
	ADDQ $16, R9
	SUBQ $2, CX
	JMP  loop2_32x8

tail32x8:
	TESTQ CX, CX
	JZ    done32x8

	VMOVUPS (DI), Y0
	VMULPS  Y8, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VCVTSS2SD    X0, X0, X0
	MOVSD        X0, (R9)

done32x8:
	VZEROUPPER
	RET

// func dotI8Range16(p []int8, q []int16, combined float64, out []float64)
//
// len(out) rows of 16 int8 each; q holds the int16-widened query codes
// (16 values = one YMM), loaded once into Y8; combined = scale·qscale
// is broadcast once into Y9. The main loop totals FOUR rows per pass:
// VPMOVSXBW sign-extends each row, VPMADDWD forms 8 exact int32 pair
// sums (products are ≤ 127², row totals ≤ 16·127² — no overflow), a
// three-VPHADDD tree plus one cross-lane VPADDD collapses the four
// rows to [d0 d1 d2 d3], and VCVTDQ2PD/VMULPD dequantize all four with
// one rounding each — identical to the scalar float64(acc)·combined.
TEXT ·dotI8Range16(SB), NOSPLIT, $0-80
	MOVQ p_base+0(FP), DI
	MOVQ q_base+24(FP), SI
	MOVQ out_base+56(FP), R9
	MOVQ out_len+64(FP), CX

	VMOVDQU      (SI), Y8
	VBROADCASTSD combined+48(FP), Y9

loop4_i8:
	CMPQ CX, $4
	JL   tail_i8

	VPMOVSXBW (DI), Y0
	VPMOVSXBW 16(DI), Y1
	VPMOVSXBW 32(DI), Y2
	VPMOVSXBW 48(DI), Y3
	VPMADDWD  Y8, Y0, Y0
	VPMADDWD  Y8, Y1, Y1
	VPMADDWD  Y8, Y2, Y2
	VPMADDWD  Y8, Y3, Y3

	// [r0:01 r0:23 r1:01 r1:23 | r0:45 r0:67 r1:45 r1:67] and rows 2,3.
	VPHADDD Y1, Y0, Y0
	VPHADDD Y3, Y2, Y2

	// [r0:0-3 r1:0-3 r2:0-3 r3:0-3 | r0:4-7 r1:4-7 r2:4-7 r3:4-7]
	VPHADDD Y2, Y0, Y0

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0

	VCVTDQ2PD X0, Y0
	VMULPD    Y9, Y0, Y0
	VMOVUPD   Y0, (R9)

	ADDQ $64, DI
	ADDQ $32, R9
	SUBQ $4, CX
	JMP  loop4_i8

tail_i8:
	TESTQ CX, CX
	JZ    done_i8

	VPMOVSXBW (DI), Y0
	VPMADDWD  Y8, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPHADDD      X0, X0, X0
	VPHADDD      X0, X0, X0
	VCVTDQ2PD    X0, X0
	VMULSD       X9, X0, X0
	MOVSD        X0, (R9)

	ADDQ $16, DI
	ADDQ $8, R9
	DECQ CX
	JMP  tail_i8

done_i8:
	VZEROUPPER
	RET
