// Equivalence harness for the columnar scans: every flat-backed engine
// must return the same argmax as the original row-slice engines in
// internal/mips, with scores agreeing to 1e-12 (in practice they are
// ==-identical, since all paths share vec.DotKernel's accumulation
// order), over randomized n/d/seed grids that include adversarial ties
// and zero vectors.
package flat_test

import (
	"math"
	"testing"

	"repro/internal/flat"
	"repro/internal/mips"
	"repro/internal/vec"
	"repro/internal/xrand"
)

const scoreTol = 1e-12

// grid generates the randomized workload for one (n, d, seed) cell,
// salting in adversarial rows: exact duplicates, zero vectors, and
// sign-flipped copies, which force ties that only the canonical
// (score, index) ordering resolves deterministically.
func grid(rng *xrand.RNG, n, d int) []vec.Vector {
	vs := make([]vec.Vector, 0, n+6)
	for i := 0; i < n; i++ {
		vs = append(vs, vec.Vector(rng.NormalVec(d)))
	}
	dup := vs[rng.Intn(len(vs))].Clone()
	vs = append(vs, dup, dup.Clone(), vec.New(d), vec.New(d), vec.Neg(dup))
	return vs
}

func TestFlatLinearScanMatchesLinearScan(t *testing.T) {
	for _, n := range []int{1, 7, 100, 1000} {
		for _, d := range []int{1, 3, 8, 16, 25} {
			for seed := uint64(0); seed < 3; seed++ {
				rng := xrand.New(1000*seed + uint64(n*31+d))
				vs := grid(rng, n, d)
				fs, err := flat.FromVectors(vs)
				if err != nil {
					t.Fatalf("n=%d d=%d seed=%d: %v", n, d, seed, err)
				}
				for trial := 0; trial < 5; trial++ {
					q := vec.Vector(rng.NormalVec(d))
					if trial == 4 {
						q = vec.New(d) // zero query: every score ties at 0
					}
					want := mips.LinearScan(vs, q)
					got, err := mips.FlatLinearScan(fs, q)
					if err != nil {
						t.Fatalf("n=%d d=%d seed=%d: %v", n, d, seed, err)
					}
					if got.Index != want.Index {
						t.Fatalf("n=%d d=%d seed=%d trial=%d: flat argmax %d, linear %d",
							n, d, seed, trial, got.Index, want.Index)
					}
					if math.Abs(got.Value-want.Value) > scoreTol {
						t.Fatalf("n=%d d=%d seed=%d: flat value %v, linear %v", n, d, seed, got.Value, want.Value)
					}
				}
			}
		}
	}
}

func TestFlatNormPrunedMatchesNormPruned(t *testing.T) {
	for _, n := range []int{1, 50, 700} {
		for _, d := range []int{2, 8, 16, 19} {
			for seed := uint64(0); seed < 3; seed++ {
				rng := xrand.New(7000*seed + uint64(n*17+d))
				vs := grid(rng, n, d)
				fs, err := flat.FromVectors(vs)
				if err != nil {
					t.Fatal(err)
				}
				np, err := mips.NewNormPruned(vs)
				if err != nil {
					t.Fatal(err)
				}
				fnp, err := mips.NewFlatNormPruned(fs)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 5; trial++ {
					q := vec.Vector(rng.NormalVec(d))
					want := np.Query(q)
					got, err := fnp.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					// NormPruned breaks argmax ties by norm order, not by
					// index, so compare via the exact scan for the argmax
					// and require value agreement with the pruned scan.
					exact := mips.LinearScan(vs, q)
					gotFlat, err := mips.FlatLinearScan(fs, q)
					if err != nil {
						t.Fatal(err)
					}
					if gotFlat.Index != exact.Index {
						t.Fatalf("n=%d d=%d seed=%d: flat exact argmax %d != %d", n, d, seed, gotFlat.Index, exact.Index)
					}
					if math.Abs(got.Value-want.Value) > scoreTol {
						t.Fatalf("n=%d d=%d seed=%d: flat pruned value %v, pruned %v", n, d, seed, got.Value, want.Value)
					}
					if math.Abs(got.Value-exact.Value) > scoreTol {
						t.Fatalf("n=%d d=%d seed=%d: pruned value %v != exact %v", n, d, seed, got.Value, exact.Value)
					}
				}
			}
		}
	}
}

// TestFlatTopKMatchesLinearScanTopK sweeps k as well, asserting the full
// ranked list (argmax chain) agrees with a naive vec.Dot reference.
func TestFlatTopKMatchesLinearScanTopK(t *testing.T) {
	type ref struct {
		idx   int
		score float64
	}
	naive := func(vs []vec.Vector, q vec.Vector, k int, unsigned bool) []ref {
		out := []ref{}
		for i, v := range vs {
			s := vec.Dot(v, q)
			if unsigned && s < 0 {
				s = -s
			}
			out = append(out, ref{i, s})
		}
		// Selection sort under the canonical ordering (small n).
		for a := 0; a < len(out); a++ {
			best := a
			for b := a + 1; b < len(out); b++ {
				if out[b].score > out[best].score ||
					(out[b].score == out[best].score && out[b].idx < out[best].idx) {
					best = b
				}
			}
			out[a], out[best] = out[best], out[a]
		}
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	for _, n := range []int{5, 64, 400} {
		for _, d := range []int{4, 16} {
			for _, k := range []int{1, 3, 10, 1000} {
				for seed := uint64(0); seed < 2; seed++ {
					rng := xrand.New(9000*seed + uint64(n+d+k))
					vs := grid(rng, n, d)
					fs, err := flat.FromVectors(vs)
					if err != nil {
						t.Fatal(err)
					}
					ns := flat.NewNormSorted(fs)
					for _, unsigned := range []bool{false, true} {
						q := vec.Vector(rng.NormalVec(d))
						want := naive(vs, q, k, unsigned)
						got, err := fs.TopK(q, k, unsigned, 1)
						if err != nil {
							t.Fatal(err)
						}
						nsGot, _, err := ns.TopK(q, k, unsigned)
						if err != nil {
							t.Fatal(err)
						}
						for name, hits := range map[string][]flat.Hit{"flat": got, "normsorted": nsGot} {
							if len(hits) != len(want) {
								t.Fatalf("%s n=%d k=%d: %d hits, want %d", name, n, k, len(hits), len(want))
							}
							for i := range want {
								if hits[i].Index != want[i].idx {
									t.Fatalf("%s n=%d d=%d k=%d unsigned=%v rank %d: index %d, want %d",
										name, n, d, k, unsigned, i, hits[i].Index, want[i].idx)
								}
								if math.Abs(hits[i].Score-want[i].score) > scoreTol {
									t.Fatalf("%s rank %d: score %v, want %v", name, i, hits[i].Score, want[i].score)
								}
							}
						}
					}
				}
			}
		}
	}
}
