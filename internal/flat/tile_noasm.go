//go:build !amd64

package flat

// useDotTileAsm is false off amd64: every tile kernel runs the pure-Go
// multi-query path (same accumulation chains, same results).
var useDotTileAsm = false

func dotTile16x4(p, q, out []float64) { panic("flat: dotTile16x4 asm unavailable") }

func dotTile8x4(p, q, out []float64) { panic("flat: dotTile8x4 asm unavailable") }
