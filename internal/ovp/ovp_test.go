package ovp

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/embed"
	"repro/internal/xrand"
)

func TestPlantedCertificate(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		in, pair := Planted(rng, 20, 30, 32, 0.3, true)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := CountOrthogonal(in); got != 1 {
			t.Fatalf("trial %d: %d orthogonal pairs, want exactly 1", trial, got)
		}
		if bitvec.DotBits(in.P[pair.PIdx], in.Q[pair.QIdx]) != 0 {
			t.Fatal("certified pair is not orthogonal")
		}
	}
}

func TestPlantedNegative(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 30; trial++ {
		in, pair := Planted(rng, 20, 30, 32, 0.3, false)
		if pair.PIdx != -1 {
			t.Fatal("negative instance must not certify a pair")
		}
		if got := CountOrthogonal(in); got != 0 {
			t.Fatalf("trial %d: %d orthogonal pairs, want 0", trial, got)
		}
	}
}

func TestPlantedSmallDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Planted(xrand.New(3), 2, 2, 6, 0.5, true)
}

func TestSolveNaive(t *testing.T) {
	rng := xrand.New(4)
	in, want := Planted(rng, 15, 25, 24, 0.25, true)
	got, ok := SolveNaive(in)
	if !ok {
		t.Fatal("planted pair not found")
	}
	if got != want {
		t.Fatalf("found %+v, want %+v", got, want)
	}
	neg, _ := Planted(rng, 15, 25, 24, 0.25, false)
	if _, ok := SolveNaive(neg); ok {
		t.Fatal("false positive on negative instance")
	}
}

func TestSolveChunked(t *testing.T) {
	rng := xrand.New(5)
	in, want := Planted(rng, 33, 20, 24, 0.25, true)
	for _, chunk := range []int{1, 4, 7, 33, 100} {
		got, ok := SolveChunked(in, chunk, SolveNaive)
		if !ok || got != want {
			t.Fatalf("chunk=%d: got %+v ok=%v, want %+v", chunk, got, ok, want)
		}
	}
	neg, _ := Planted(rng, 33, 20, 24, 0.25, false)
	if _, ok := SolveChunked(neg, 8, SolveNaive); ok {
		t.Fatal("false positive")
	}
}

func TestSolveChunkedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SolveChunked(&Instance{D: 8}, 0, SolveNaive)
}

func TestValidate(t *testing.T) {
	if err := (&Instance{D: 0}).Validate(); err == nil {
		t.Fatal("d=0 must fail")
	}
	in := &Instance{D: 8, P: []*bitvec.Bits{bitvec.NewBits(8)}, Q: []*bitvec.Bits{bitvec.NewBits(7)}}
	if err := in.Validate(); err == nil {
		t.Fatal("ragged Q must fail")
	}
}

func TestRandomShape(t *testing.T) {
	rng := xrand.New(6)
	in := Random(rng, 10, 12, 40, 0.5)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, p := range in.P {
		ones += p.OnesCount()
	}
	if ones < 120 || ones > 280 { // 10·40·0.5 = 200 expected
		t.Fatalf("density off: %d ones", ones)
	}
}

// The Lemma 2 pipeline, run forward: each embedding must turn OVP into a
// join whose threshold test exactly identifies the planted pair.

func TestPipelineSignedPM1(t *testing.T) {
	rng := xrand.New(7)
	const d = 16
	e, err := embed.NewSignedPM1(d)
	if err != nil {
		t.Fatal(err)
	}
	in, want := Planted(rng, 12, 18, d, 0.25, true)
	got, ok := SolveViaSignsEmbedding(in, e)
	if !ok || got != want {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, want)
	}
	neg, _ := Planted(rng, 12, 18, d, 0.25, false)
	if _, ok := SolveViaSignsEmbedding(neg, e); ok {
		t.Fatal("false positive")
	}
}

func TestPipelineChebyshev(t *testing.T) {
	rng := xrand.New(8)
	const d = 8
	for q := 1; q <= 3; q++ {
		e, err := embed.NewChebyshevPM1(d, q)
		if err != nil {
			t.Fatal(err)
		}
		in, want := Planted(rng, 8, 10, d, 0.25, true)
		got, ok := SolveViaSignsEmbedding(in, e)
		if !ok || got != want {
			t.Fatalf("q=%d: got %+v ok=%v, want %+v", q, got, ok, want)
		}
		neg, _ := Planted(rng, 8, 10, d, 0.25, false)
		if _, ok := SolveViaSignsEmbedding(neg, e); ok {
			t.Fatalf("q=%d: false positive", q)
		}
	}
}

func TestPipelineChopped(t *testing.T) {
	rng := xrand.New(9)
	const d = 20
	for _, k := range []int{2, 4, 5} {
		e, err := embed.NewChopped01(d, k)
		if err != nil {
			t.Fatal(err)
		}
		in, want := Planted(rng, 10, 14, d, 0.2, true)
		got, ok := SolveViaBitsEmbedding(in, e)
		if !ok || got != want {
			t.Fatalf("k=%d: got %+v ok=%v, want %+v", k, got, ok, want)
		}
		neg, _ := Planted(rng, 10, 14, d, 0.2, false)
		if _, ok := SolveViaBitsEmbedding(neg, e); ok {
			t.Fatalf("k=%d: false positive", k)
		}
	}
}

func BenchmarkSolveNaive_n64_d128(b *testing.B) {
	rng := xrand.New(10)
	in, _ := Planted(rng, 64, 64, 128, 0.3, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveNaive(in)
	}
}

func BenchmarkPipelineChopped_d20k4(b *testing.B) {
	rng := xrand.New(11)
	e, err := embed.NewChopped01(20, 4)
	if err != nil {
		b.Fatal(err)
	}
	in, _ := Planted(rng, 16, 16, 20, 0.2, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveViaBitsEmbedding(in, e)
	}
}
