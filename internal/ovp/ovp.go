// Package ovp implements the Orthogonal Vectors Problem substrate of the
// paper's hardness results: bit-packed OVP instances, planted-instance
// generators with certified ground truth, exact solvers, the Lemma 1
// unbalanced splitter, and the full Lemma 2 pipeline that reduces OVP to
// approximate IPS join through the gap embeddings of Lemma 3.
package ovp

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/embed"
	"repro/internal/xrand"
)

// Instance is an OVP instance: detect p ∈ P, q ∈ Q with pᵀq = 0.
type Instance struct {
	D    int
	P, Q []*bitvec.Bits
}

// Pair identifies a pair of vectors (index into P, index into Q).
type Pair struct{ PIdx, QIdx int }

// Validate checks structural consistency.
func (in *Instance) Validate() error {
	if in.D <= 0 {
		return fmt.Errorf("ovp: dimension %d must be positive", in.D)
	}
	if len(in.P) == 0 || len(in.Q) == 0 {
		return fmt.Errorf("ovp: empty side (|P|=%d, |Q|=%d)", len(in.P), len(in.Q))
	}
	for i, v := range in.P {
		if v.N != in.D {
			return fmt.Errorf("ovp: P[%d] has dimension %d, want %d", i, v.N, in.D)
		}
	}
	for i, v := range in.Q {
		if v.N != in.D {
			return fmt.Errorf("ovp: Q[%d] has dimension %d, want %d", i, v.N, in.D)
		}
	}
	return nil
}

// Random returns an instance with iid Bernoulli(density) coordinates.
// No orthogonality structure is guaranteed.
func Random(rng *xrand.RNG, nP, nQ, d int, density float64) *Instance {
	in := &Instance{D: d, P: make([]*bitvec.Bits, nP), Q: make([]*bitvec.Bits, nQ)}
	gen := func() *bitvec.Bits {
		b := bitvec.NewBits(d)
		for i := 0; i < d; i++ {
			if rng.Bernoulli(density) {
				b.SetBit(i, 1)
			}
		}
		return b
	}
	for i := range in.P {
		in.P[i] = gen()
	}
	for i := range in.Q {
		in.Q[i] = gen()
	}
	return in
}

// Planted returns an instance with *certified* ground truth: when plant
// is true, exactly the pair (P[pi], Q[qi]) is orthogonal; when false, no
// orthogonal pair exists at all. The certificate works by reserving
// coordinates 0–2 as overlap guards:
//
//   - every non-planted P vector has bit 0 and bit 2 set;
//   - every non-planted Q vector has bit 0 and bit 1 set;
//   - the planted p* has bit 1 set, the planted q* has bit 2 set,
//
// so every pair except (p*, q*) overlaps inside {0,1,2}. The random
// tails of p* and q* are drawn from disjoint coordinate halves, making
// p*ᵀq* = 0 exactly. Requires d ≥ 7.
func Planted(rng *xrand.RNG, nP, nQ, d int, density float64, plant bool) (*Instance, Pair) {
	if d < 7 {
		panic(fmt.Sprintf("ovp: Planted requires d >= 7, got %d", d))
	}
	in := &Instance{D: d, P: make([]*bitvec.Bits, nP), Q: make([]*bitvec.Bits, nQ)}
	tail := d - 3 // coordinates 3..d−1 are free
	half := tail / 2
	fill := func(b *bitvec.Bits, lo, hi int) {
		for i := lo; i < hi; i++ {
			if rng.Bernoulli(density) {
				b.SetBit(i, 1)
			}
		}
	}
	for i := range in.P {
		b := bitvec.NewBits(d)
		b.SetBit(0, 1)
		b.SetBit(2, 1)
		fill(b, 3, d)
		in.P[i] = b
	}
	for i := range in.Q {
		b := bitvec.NewBits(d)
		b.SetBit(0, 1)
		b.SetBit(1, 1)
		fill(b, 3, d)
		in.Q[i] = b
	}
	pi, qi := rng.Intn(nP), rng.Intn(nQ)
	if !plant {
		return in, Pair{-1, -1}
	}
	pStar := bitvec.NewBits(d)
	pStar.SetBit(1, 1)
	fill(pStar, 3, 3+half) // first half of the tail only
	qStar := bitvec.NewBits(d)
	qStar.SetBit(2, 1)
	fill(qStar, 3+half, d) // second half only
	in.P[pi], in.Q[qi] = pStar, qStar
	return in, Pair{pi, qi}
}

// SolveNaive scans all pairs with the bit-packed AND/popcount kernel and
// returns the first orthogonal pair, or found=false. Time O(|P|·|Q|·d/64).
func SolveNaive(in *Instance) (Pair, bool) {
	for qi, q := range in.Q {
		for pi, p := range in.P {
			if bitvec.DotBits(p, q) == 0 {
				return Pair{pi, qi}, true
			}
		}
	}
	return Pair{-1, -1}, false
}

// CountOrthogonal returns the number of orthogonal pairs (for test
// certification).
func CountOrthogonal(in *Instance) int {
	n := 0
	for _, q := range in.Q {
		for _, p := range in.P {
			if bitvec.DotBits(p, q) == 0 {
				n++
			}
		}
	}
	return n
}

// SolveChunked implements the Lemma 1 splitter: it cuts P into chunks of
// the given size and solves each (chunk, Q) subproblem with the supplied
// solver, demonstrating how an unbalanced-OVP algorithm solves balanced
// OVP. The returned pair is re-indexed into the original P.
func SolveChunked(in *Instance, chunk int,
	solve func(*Instance) (Pair, bool)) (Pair, bool) {
	if chunk <= 0 {
		panic(fmt.Sprintf("ovp: chunk size %d must be positive", chunk))
	}
	for lo := 0; lo < len(in.P); lo += chunk {
		hi := lo + chunk
		if hi > len(in.P) {
			hi = len(in.P)
		}
		sub := &Instance{D: in.D, P: in.P[lo:hi], Q: in.Q}
		if pair, ok := solve(sub); ok {
			return Pair{pair.PIdx + lo, pair.QIdx}, true
		}
	}
	return Pair{-1, -1}, false
}

// SignsEmbedding is the Lemma 3 interface for embeddings into {−1,1}
// (embeddings 1 and 2).
type SignsEmbedding interface {
	F(*bitvec.Bits) *bitvec.Signs
	G(*bitvec.Bits) *bitvec.Signs
	Params() embed.Params
}

// BitsEmbedding is the Lemma 3 interface for embeddings into {0,1}
// (embedding 3).
type BitsEmbedding interface {
	F(*bitvec.Bits) *bitvec.Bits
	G(*bitvec.Bits) *bitvec.Bits
	Params() embed.Params
}

// SolveViaSignsEmbedding runs the Lemma 2 pipeline with a {−1,1}
// embedding: embed both sides, then run an (exact) (cs, s) join on the
// embedded vectors — a pair at (signed or absolute) inner product ≥ s
// certifies an orthogonal input pair. This is the reduction that
// transfers OVP hardness to IPS join; run forward, it is also a
// correct (if quadratic) OVP solver, which the tests exploit.
func SolveViaSignsEmbedding(in *Instance, e SignsEmbedding) (Pair, bool) {
	p := e.Params()
	fs := make([]*bitvec.Signs, len(in.P))
	for i, x := range in.P {
		fs[i] = e.F(x)
	}
	gs := make([]*bitvec.Signs, len(in.Q))
	for i, y := range in.Q {
		gs[i] = e.G(y)
	}
	for qi, g := range gs {
		for pi, f := range fs {
			dot := bitvec.DotSigns(f, g)
			v := float64(dot)
			if !p.Signed && v < 0 {
				v = -v
			}
			if v >= p.S {
				return Pair{pi, qi}, true
			}
		}
	}
	return Pair{-1, -1}, false
}

// SolveViaBitsEmbedding is the {0,1} counterpart (embedding 3).
func SolveViaBitsEmbedding(in *Instance, e BitsEmbedding) (Pair, bool) {
	p := e.Params()
	fs := make([]*bitvec.Bits, len(in.P))
	for i, x := range in.P {
		fs[i] = e.F(x)
	}
	gs := make([]*bitvec.Bits, len(in.Q))
	for i, y := range in.Q {
		gs[i] = e.G(y)
	}
	for qi, g := range gs {
		for pi, f := range fs {
			if float64(bitvec.DotBits(f, g)) >= p.S {
				return Pair{pi, qi}, true
			}
		}
	}
	return Pair{-1, -1}, false
}
