package server

import (
	"cmp"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/flat"
	"repro/internal/vec"
)

// shard owns one horizontal slice of a collection. All mutation happens
// on the shard's dedicated goroutine (the ops loop), so index rebuilds
// for different shards of one ingest proceed in parallel without locks;
// readers see a consistent (ids, vectors, index) triple through a
// single atomic snapshot pointer and never block on writers.
type shard struct {
	id      int
	seed    uint64
	snap    atomic.Pointer[shardSnap]
	ops     chan func()
	done    chan struct{}
	queries atomic.Int64
}

// shardSnap is an immutable shard state: the id slice, the columnar
// vector store, and the index built over the store (local row i ↔
// global ID ids[i]). Snapshots are never mutated after publication, so
// readers holding one can scan the store without synchronization.
type shardSnap struct {
	ids   []int
	fs    *flat.Store
	index ShardIndex

	nsOnce sync.Once
	ns     *flat.NormSorted
}

// normSorted lazily builds — once per snapshot, the store being
// immutable — the descending-norm view used by norm-pruned joins, so
// a join fan-out reuses one build across every query-shard pairing
// and across requests until the next ingest.
func (sn *shardSnap) normSorted() *flat.NormSorted {
	sn.nsOnce.Do(func() { sn.ns = flat.NewNormSorted(sn.fs) })
	return sn.ns
}

func newShard(id int, seed uint64) *shard {
	s := &shard{
		id:   id,
		seed: seed,
		ops:  make(chan func()),
		done: make(chan struct{}),
	}
	s.snap.Store(&shardSnap{index: emptyIndex{}})
	go s.loop()
	return s
}

// loop is the owner goroutine: it applies mutations one at a time.
func (s *shard) loop() {
	defer close(s.done)
	for fn := range s.ops {
		fn()
	}
}

// close stops the owner goroutine (idempotent callers must not race).
func (s *shard) close() {
	close(s.ops)
	<-s.done
}

// prepare builds — but does not publish — the snapshot that would
// result from appending (ids, vs) and rebuilding the index under the
// given spec. The build runs on the owner goroutine, so prepares for
// different shards of one ingest proceed in parallel; the current
// snapshot stays live for concurrent readers throughout. The caller
// publishes the result with commit only once every shard's prepare
// has succeeded, keeping a failed ingest free of side effects.
func (s *shard) prepare(spec IndexSpec, ids []int, vs []vec.Vector) (*shardSnap, error) {
	type result struct {
		snap *shardSnap
		err  error
	}
	resc := make(chan result, 1)
	s.ops <- func() {
		old := s.snap.Load()
		nids := make([]int, 0, len(old.ids)+len(ids))
		nids = append(nids, old.ids...)
		nids = append(nids, ids...)
		nfs, err := appendStore(old.fs, vs)
		if err != nil {
			resc <- result{err: err}
			return
		}
		index, err := buildShardIndex(spec, nfs, s.seed)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{snap: &shardSnap{ids: nids, fs: nfs, index: index}}
	}
	r := <-resc
	return r.snap, r.err
}

// appendStore builds the columnar store for the next snapshot: a deep
// copy of the current store (which must stay live for readers) plus
// the new rows. A nil old store adopts the batch's dimension.
func appendStore(old *flat.Store, vs []vec.Vector) (*flat.Store, error) {
	if len(vs) == 0 {
		return old, nil
	}
	var nfs *flat.Store
	var err error
	if old == nil {
		nfs, err = flat.New(len(vs[0]))
		if err != nil {
			return nil, err
		}
	} else {
		// Reserve the batch's rows up front so the existing data is
		// copied exactly once per snapshot rebuild.
		nfs = old.CloneGrow(len(vs))
	}
	if err := nfs.AppendAll(vs); err != nil {
		return nil, err
	}
	return nfs, nil
}

// commit publishes a prepared snapshot on the owner goroutine.
func (s *shard) commit(snap *shardSnap) {
	done := make(chan struct{})
	s.ops <- func() {
		s.snap.Store(snap)
		close(done)
	}
	<-done
}

// topK answers a query against the current snapshot, translating local
// hit indices to global record IDs. workers is the intra-shard scan
// parallelism hint passed through to the index. The returned list keeps
// the canonical (score descending, global ID ascending) order so the
// k-way merge's tie-breaking is exact even when the ID-to-shard
// assignment does not preserve ID order within a shard.
func (s *shard) topK(q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	snap := s.snap.Load()
	s.queries.Add(1)
	local, err := snap.index.TopK(q, k, unsigned, workers)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(local))
	for i, h := range local {
		out[i] = Hit{ID: snap.ids[h.ID], Score: h.Score}
	}
	sortHitsCanonical(out)
	return out, nil
}

// sortHitsCanonical sorts hits into the canonical (score descending,
// ID ascending) order without allocating (slices.SortFunc, unlike
// sort.Slice, needs no reflection). All (score, ID) keys within one
// shard are distinct — IDs are unique — so the non-stable sort is
// deterministic.
func sortHitsCanonical(hs []Hit) {
	slices.SortFunc(hs, func(a, b Hit) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// size returns the current record count.
func (s *shard) size() int { return len(s.snap.Load().ids) }

// scanParallelism returns how many workers the current snapshot's
// index can actually spend on one scan (1 when the engine ignores the
// hint or the shard is too small — large flat-backed exact shards
// only).
func (s *shard) scanParallelism() int {
	if p, ok := s.snap.Load().index.(parallelScanner); ok {
		if w := p.maxScanWorkers(); w > 1 {
			return w
		}
	}
	return 1
}
