package server

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flat"
	"repro/internal/trace"
	"repro/internal/vec"
)

// shard owns one horizontal slice of a collection. All mutation happens
// on the shard's dedicated goroutine (the ops loop), so index rebuilds
// for different shards of one ingest proceed in parallel without locks;
// readers see a consistent (ids, vectors, index) triple through a
// single atomic snapshot pointer and never block on writers.
type shard struct {
	id   int
	seed uint64
	// overfetch is the resolved candidate-widening factor for re-ranked
	// queries on quantized indexes; fixed at collection construction.
	overfetch int
	snap      atomic.Pointer[shardSnap]
	ops       chan func()
	done      chan struct{}
	queries   atomic.Int64
}

// shardSnap is an immutable shard state: the id slice, the columnar
// vector store, and the index built over the store (local row i ↔
// global ID ids[i]). Snapshots are never mutated after publication, so
// readers holding one can scan the store without synchronization.
//
// Mutations extend the triple: rows maps a global ID to its local row,
// and dead marks tombstoned rows (nil until the first delete — the
// zero-tombstone fast paths key off that). An upsert tombstones the
// old row and appends the new one, so rows always points at the
// newest; a rows entry whose row is dead means the ID is not live
// (delete publication shares the map instead of copying it). rows is
// lazy — see rowIndex — so append-only shards never build or copy it.
type shardSnap struct {
	ids   []int
	fs    *flat.Store
	index ShardIndex
	rows  map[int]int
	dead  *flat.Tombstones

	nsOnce sync.Once
	ns     *flat.NormSorted

	liveOnce sync.Once
	live     *shardSnap
}

// rowIndex returns the id→row map, deriving it from ids on first use.
// ids can hold an id twice after an upsert (the tombstoned old row and
// the appended newest one); in-order iteration makes the last
// occurrence win, which is the newest row — the same invariant the
// eager updates below maintain. Accessed only on the shard's owner
// goroutine, so the lazy build needs no synchronization; append-only
// shards never pay for the map at all.
func (sn *shardSnap) rowIndex() map[int]int {
	if sn.rows == nil && len(sn.ids) > 0 {
		rows := make(map[int]int, len(sn.ids))
		for i, id := range sn.ids {
			rows[id] = i
		}
		sn.rows = rows
	}
	return sn.rows
}

// normSorted lazily builds — once per snapshot, the store being
// immutable — the descending-norm view used by norm-pruned joins, so
// a join fan-out reuses one build across every query-shard pairing
// and across requests until the next ingest.
func (sn *shardSnap) normSorted() *flat.NormSorted {
	sn.nsOnce.Do(func() { sn.ns = flat.NewNormSorted(sn.fs) })
	return sn.ns
}

// liveView returns a snapshot holding only the live rows — what the
// join engines iterate, so a join can never emit a tombstoned row.
// With no tombstones it is the snapshot itself (free); otherwise a
// compacted (ids, fs) pair is built once per snapshot and cached, so
// the cost is paid by the first join after a delete, not per request.
// The view carries no serving index (joins build their own structures
// over fs) and no rows/dead bookkeeping — it is read-only.
func (sn *shardSnap) liveView() *shardSnap {
	if sn.dead.Count() == 0 {
		return sn
	}
	sn.liveOnce.Do(func() {
		nfs, err := flat.New(sn.fs.Dim())
		if err != nil {
			// Unreachable: sn.fs exists, so its dim is positive.
			sn.live = &shardSnap{index: emptyIndex{}}
			return
		}
		ids := make([]int, 0, sn.fs.Len()-sn.dead.Count())
		for i := 0; i < sn.fs.Len(); i++ {
			if sn.dead.Dead(i) {
				continue
			}
			if err := nfs.Append(sn.fs.Row(i)); err != nil {
				sn.live = &shardSnap{index: emptyIndex{}}
				return
			}
			ids = append(ids, sn.ids[i])
		}
		sn.live = &shardSnap{ids: ids, fs: nfs, index: emptyIndex{}}
	})
	return sn.live
}

func newShard(id int, seed uint64, overfetch int) *shard {
	s := &shard{
		id:        id,
		seed:      seed,
		overfetch: overfetch,
		ops:       make(chan func()),
		done:      make(chan struct{}),
	}
	s.snap.Store(&shardSnap{index: emptyIndex{}})
	go s.loop()
	return s
}

// loop is the owner goroutine: it applies mutations one at a time.
func (s *shard) loop() {
	defer close(s.done)
	for fn := range s.ops {
		fn()
	}
}

// close stops the owner goroutine (idempotent callers must not race).
func (s *shard) close() {
	close(s.ops)
	<-s.done
}

// prepare builds — but does not publish — the snapshot that would
// result from appending (ids, vs) and rebuilding the index under the
// given spec. The build runs on the owner goroutine, so prepares for
// different shards of one ingest proceed in parallel; the current
// snapshot stays live for concurrent readers throughout. The caller
// publishes the result with commit only once every shard's prepare
// has succeeded, keeping a failed ingest free of side effects.
func (s *shard) prepare(spec IndexSpec, ids []int, vs []vec.Vector) (*shardSnap, error) {
	type result struct {
		snap *shardSnap
		err  error
	}
	resc := make(chan result, 1)
	s.ops <- func() {
		old := s.snap.Load()
		nids := make([]int, 0, len(old.ids)+len(ids))
		nids = append(nids, old.ids...)
		nids = append(nids, ids...)
		// Extend the row index incrementally only when the shard has
		// already materialized one (i.e. it has seen mutations);
		// append-only shards keep rows nil and never copy a map here.
		var rows map[int]int
		if old.rows != nil {
			rows = make(map[int]int, len(old.rows)+len(ids))
			for id, r := range old.rows {
				rows[id] = r
			}
			for i, id := range ids {
				rows[id] = len(old.ids) + i
			}
		}
		nfs, err := appendStore(old.fs, vs)
		if err != nil {
			resc <- result{err: err}
			return
		}
		var dead *flat.Tombstones
		if old.dead.Count() > 0 {
			dead = old.dead.Grow(nfs.Len())
		}
		index, err := buildMaskedIndex(spec, nfs, s.seed, s.overfetch, dead)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{snap: &shardSnap{ids: nids, fs: nfs, index: index, rows: rows, dead: dead}}
	}
	r := <-resc
	return r.snap, r.err
}

// buildMaskedIndex builds the shard index and restricts it to live
// rows when the shard carries tombstones.
func buildMaskedIndex(spec IndexSpec, fs *flat.Store, seed uint64, overfetch int, dead *flat.Tombstones) (ShardIndex, error) {
	index, err := buildShardIndex(spec, fs, seed, overfetch)
	if err != nil {
		return nil, err
	}
	return maskIndex(index, dead)
}

// maskIndex applies a tombstone set to an index (no-op when empty).
func maskIndex(index ShardIndex, dead *flat.Tombstones) (ShardIndex, error) {
	if dead.Count() == 0 {
		return index, nil
	}
	dm, ok := index.(deadMasker)
	if !ok {
		return nil, fmt.Errorf("server: index %T does not support deletions", index)
	}
	return dm.withDead(dead), nil
}

// prepareUpsert builds — but does not publish — the snapshot that
// results from insert-or-replace of (ids, vs): replaced IDs have their
// old row tombstoned and every record lands in a fresh appended row,
// so the store stays append-only and the index rebuild is uniform with
// ingest. Runs on the owner goroutine; the caller commits.
func (s *shard) prepareUpsert(spec IndexSpec, ids []int, vs []vec.Vector) (*shardSnap, error) {
	type result struct {
		snap *shardSnap
		err  error
	}
	resc := make(chan result, 1)
	s.ops <- func() {
		old := s.snap.Load()
		base := 0
		if old.fs != nil {
			base = old.fs.Len()
		}
		nids := make([]int, 0, len(old.ids)+len(ids))
		nids = append(nids, old.ids...)
		nids = append(nids, ids...)
		orows := old.rowIndex()
		rows := make(map[int]int, len(orows)+len(ids))
		for id, r := range orows {
			rows[id] = r
		}
		nfs, err := appendStore(old.fs, vs)
		if err != nil {
			resc <- result{err: err}
			return
		}
		dead := old.dead.Grow(nfs.Len())
		for i, id := range ids {
			if r, ok := rows[id]; ok && !dead.Dead(r) {
				dead.Kill(r)
			}
			rows[id] = base + i
		}
		if dead.Count() == 0 {
			dead = nil // keep the zero-tombstone fast paths
		}
		index, err := buildMaskedIndex(spec, nfs, s.seed, s.overfetch, dead)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{snap: &shardSnap{ids: nids, fs: nfs, index: index, rows: rows, dead: dead}}
	}
	r := <-resc
	return r.snap, r.err
}

// prepareDelete builds — but does not publish — the snapshot with the
// given IDs tombstoned, returning how many were live. A delete-only
// snapshot is cheap: it shares the store, id slice and rows map with
// the old one; only the bitmap is copied and the index re-masked.
// IDs that are unknown or already dead are no-ops. Returns (nil, 0)
// when nothing changed so the caller can skip the commit.
func (s *shard) prepareDelete(ids []int) (*shardSnap, int, error) {
	type result struct {
		snap    *shardSnap
		removed int
		err     error
	}
	resc := make(chan result, 1)
	s.ops <- func() {
		old := s.snap.Load()
		if old.fs == nil {
			resc <- result{}
			return
		}
		dead := old.dead.Grow(old.fs.Len())
		rows := old.rowIndex()
		removed := 0
		for _, id := range ids {
			if r, ok := rows[id]; ok && !dead.Dead(r) {
				dead.Kill(r)
				removed++
			}
		}
		if removed == 0 {
			resc <- result{}
			return
		}
		index, err := maskIndex(old.index, dead)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{snap: &shardSnap{ids: old.ids, fs: old.fs, index: index, rows: rows, dead: dead}, removed: removed}
	}
	r := <-resc
	return r.snap, r.removed, r.err
}

// prepareCompact builds — but does not publish — the fully-compacted
// snapshot: live rows repacked into a fresh contiguous store, a fresh
// rows map, no tombstones, and the index rebuilt over the compact
// store. Returns nil when the shard has no tombstones.
func (s *shard) prepareCompact(spec IndexSpec) (*shardSnap, error) {
	type result struct {
		snap *shardSnap
		err  error
	}
	resc := make(chan result, 1)
	s.ops <- func() {
		old := s.snap.Load()
		if old.dead.Count() == 0 {
			resc <- result{}
			return
		}
		nfs, err := flat.New(old.fs.Dim())
		if err != nil {
			resc <- result{err: err}
			return
		}
		nids := make([]int, 0, old.fs.Len()-old.dead.Count())
		rows := make(map[int]int, old.fs.Len()-old.dead.Count())
		for i := 0; i < old.fs.Len(); i++ {
			if old.dead.Dead(i) {
				continue
			}
			if err := nfs.Append(old.fs.Row(i)); err != nil {
				resc <- result{err: err}
				return
			}
			rows[old.ids[i]] = len(nids)
			nids = append(nids, old.ids[i])
		}
		index, err := buildShardIndex(spec, nfs, s.seed, s.overfetch)
		if err != nil {
			resc <- result{err: err}
			return
		}
		resc <- result{snap: &shardSnap{ids: nids, fs: nfs, index: index, rows: rows}}
	}
	r := <-resc
	return r.snap, r.err
}

// appendStore builds the columnar store for the next snapshot: a deep
// copy of the current store (which must stay live for readers) plus
// the new rows. A nil old store adopts the batch's dimension.
func appendStore(old *flat.Store, vs []vec.Vector) (*flat.Store, error) {
	if len(vs) == 0 {
		return old, nil
	}
	var nfs *flat.Store
	var err error
	if old == nil {
		nfs, err = flat.New(len(vs[0]))
		if err != nil {
			return nil, err
		}
	} else {
		// Reserve the batch's rows up front so the existing data is
		// copied exactly once per snapshot rebuild.
		nfs = old.CloneGrow(len(vs))
	}
	if err := nfs.AppendAll(vs); err != nil {
		return nil, err
	}
	return nfs, nil
}

// commit publishes a prepared snapshot on the owner goroutine.
func (s *shard) commit(snap *shardSnap) {
	done := make(chan struct{})
	s.ops <- func() {
		s.snap.Store(snap)
		close(done)
	}
	<-done
}

// topK answers a query against the current snapshot, translating local
// hit indices to global record IDs. workers is the intra-shard scan
// parallelism hint passed through to the index. rerank asks engines
// that support it (f32 quantized) for exact re-ranked scores; engines
// without the capability — including those already exact — ignore it.
// ex, when non-nil, receives this shard's explain accounting (see
// explain.go); a traced request additionally gets one shard_scan span.
// The returned list keeps the canonical (score descending, global ID
// ascending) order so the k-way merge's tie-breaking is exact even when
// the ID-to-shard assignment does not preserve ID order within a shard.
func (s *shard) topK(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, rerank bool, ex *ShardExplain) ([]Hit, error) {
	snap := s.snap.Load()
	s.queries.Add(1)
	sp := trace.FromContext(ctx).StartSpan("shard_scan")
	sp.SetInt("shard", int64(s.id))
	defer sp.End()
	var start time.Time
	if ex != nil {
		start = time.Now()
		ex.Shard = s.id
		ex.Records = len(snap.ids)
		ex.Live = len(snap.ids) - snap.dead.Count()
	}
	local, err := indexTopKEx(ctx, snap.index, q, k, unsigned, workers, rerank, ex)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(local))
	for i, h := range local {
		out[i] = Hit{ID: snap.ids[h.ID], Score: h.Score}
	}
	sortHitsCanonical(out)
	if ex != nil {
		ex.Micros = time.Since(start).Microseconds()
		sp.SetInt("rows_scanned", int64(ex.RowsScanned))
	}
	return out, nil
}

// indexTopK dispatches one query to an index, routing through the
// exact re-rank pipeline when asked for and available. Shared by the
// per-query shard path and the batch executor's per-query fallback, so
// both honor rerank identically.
func indexTopK(ctx context.Context, index ShardIndex, q vec.Vector, k int, unsigned bool, workers int, rerank bool) ([]Hit, error) {
	if rerank {
		if ri, ok := index.(rerankIndex); ok {
			return ri.TopKRerank(ctx, q, k, unsigned, workers)
		}
	}
	return index.TopK(ctx, q, k, unsigned, workers)
}

// sortHitsCanonical sorts hits into the canonical (score descending,
// ID ascending) order without allocating (slices.SortFunc, unlike
// sort.Slice, needs no reflection). All (score, ID) keys within one
// shard are distinct — IDs are unique — so the non-stable sort is
// deterministic.
func sortHitsCanonical(hs []Hit) {
	slices.SortFunc(hs, func(a, b Hit) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
}

// size returns the current record count.
func (s *shard) size() int { return len(s.snap.Load().ids) }

// scanParallelism returns how many workers the current snapshot's
// index can actually spend on one scan (1 when the engine ignores the
// hint or the shard is too small — large flat-backed exact shards
// only).
func (s *shard) scanParallelism() int {
	if p, ok := s.snap.Load().index.(parallelScanner); ok {
		if w := p.maxScanWorkers(); w > 1 {
			return w
		}
	}
	return 1
}
