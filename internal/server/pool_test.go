package server

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolForEachRunsEveryTask(t *testing.T) {
	p := NewPool(4)
	var hits [100]atomic.Int32
	p.ForEach(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

// TestBorrowingExecutor pins the nested-parallelism contract: every
// task runs exactly once, slots are returned afterwards, and a
// saturated pool degrades to inline execution instead of blocking.
func TestBorrowingExecutor(t *testing.T) {
	p := NewPool(3)
	var hits [50]atomic.Int32
	p.Borrowing().ForEach(len(hits), func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
	// All borrowed slots must be back: a full blocking ForEach still
	// completes.
	p.ForEach(3, func(int) {})

	// Saturate the pool, then borrow: must run inline, not block.
	for i := 0; i < p.Workers(); i++ {
		if !p.TryAcquire() {
			t.Fatal("could not saturate pool")
		}
	}
	var ran atomic.Int32
	p.Borrowing().ForEach(10, func(int) { ran.Add(1) })
	if ran.Load() != 10 {
		t.Fatalf("saturated borrowing ran %d of 10 tasks", ran.Load())
	}
	for i := 0; i < p.Workers(); i++ {
		p.Release()
	}

	// Nested inside a pool task (the shard-pair join shape): must not
	// deadlock and must cover every index.
	var nested atomic.Int32
	p.ForEach(p.Workers(), func(int) {
		p.Borrowing().ForEach(8, func(int) { nested.Add(1) })
	})
	if want := int32(p.Workers() * 8); nested.Load() != want {
		t.Fatalf("nested borrowing ran %d of %d tasks", nested.Load(), want)
	}
}

// TestBorrowingHonorsSingleWorkerBudget pins the worker-budget
// invariant on a 1-worker pool: ForEach's inline path holds the slot,
// so a nested borrower cannot run a second concurrent task.
func TestBorrowingHonorsSingleWorkerBudget(t *testing.T) {
	p := NewPool(1)
	var concurrent, peak atomic.Int32
	p.ForEach(4, func(int) {
		p.Borrowing().ForEach(6, func(int) {
			cur := concurrent.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			concurrent.Add(-1)
		})
	})
	if got := peak.Load(); got > 1 {
		t.Fatalf("1-worker pool reached %d concurrent tasks", got)
	}
}
