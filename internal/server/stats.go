package server

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// latencyRing records the most recent query latencies in a fixed ring
// and reports quantiles over the retained window. A bounded window
// keeps /stats O(1) in traffic and biases the percentiles toward
// current behaviour, which is what an operator wants to see.
type latencyRing struct {
	mu    sync.Mutex
	buf   []float64 // milliseconds
	pos   int
	count int
}

const latencyWindow = 4096

func newLatencyRing() *latencyRing {
	return &latencyRing{buf: make([]float64, latencyWindow)}
}

// observe records one query duration.
func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.pos] = ms
	r.pos = (r.pos + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// quantiles returns the requested latency quantiles in milliseconds
// over the retained window, or nil when nothing has been recorded.
func (r *latencyRing) quantiles(qs ...float64) []float64 {
	r.mu.Lock()
	sample := make([]float64, r.count)
	copy(sample, r.buf[:r.count])
	r.mu.Unlock()
	if len(sample) == 0 {
		return nil
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = stats.Quantile(sample, q)
	}
	return out
}

// LatencyStats is the percentile summary exposed by /stats.
type LatencyStats struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
}

// summary renders the ring as a LatencyStats (zero value when empty).
func (r *latencyRing) summary() LatencyStats {
	qs := r.quantiles(0.50, 0.90, 0.99)
	if qs == nil {
		return LatencyStats{}
	}
	return LatencyStats{P50: qs[0], P90: qs[1], P99: qs[2]}
}

// ShardStats describes one shard in /stats. Records counts physical
// rows (live + tombstoned); Live and Tombstoned break it down.
type ShardStats struct {
	ID         int   `json:"id"`
	Records    int   `json:"records"`
	Live       int   `json:"live"`
	Tombstoned int   `json:"tombstoned"`
	Queries    int64 `json:"queries"`
}

// CollectionStats describes one collection in /stats. Records is the
// live count (the relation holds live rows only); Tombstoned counts
// deleted-but-not-yet-compacted rows still occupying shard storage.
type CollectionStats struct {
	Dim         int    `json:"dim"`
	Records     int    `json:"records"`
	Tombstoned  int    `json:"tombstoned"`
	Compactions int64  `json:"compactions"`
	Compacting  bool   `json:"compacting"`
	Version     uint64 `json:"version"`
	Index       string `json:"index"`
	Precision   string `json:"precision"`
	// VectorBytes is the resident vector payload by storage precision:
	// the f64 truth rows every collection retains, plus the quantized
	// copy (f32 or int8) when the collection runs a compact tier.
	// Counts cover physical rows (live + tombstoned).
	VectorBytes map[string]int64 `json:"vector_bytes"`
	Queries     int64            `json:"queries"`
	Latency     LatencyStats     `json:"latency"`
	// Health is the failure-domain state ("active", "degraded",
	// "quarantined"); HealthReason the cause while not active.
	Health       string `json:"health"`
	HealthReason string `json:"health_reason,omitempty"`
	// Repairs counts successful background repairs (degraded → active);
	// Scrubs/ScrubErrors the integrity scrubber's passes and failures,
	// LastScrubUnix the wall time of the last completed pass (0 until
	// the first one).
	Repairs       int64        `json:"repairs"`
	Scrubs        int64        `json:"scrubs"`
	ScrubErrors   int64        `json:"scrub_errors"`
	LastScrubUnix int64        `json:"last_scrub_unix,omitempty"`
	Shards        []ShardStats `json:"shards"`
}

// CacheStats describes the query cache in /stats.
type CacheStats struct {
	Capacity      int   `json:"capacity"`
	Size          int   `json:"size"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
}

// Stats is the full /stats payload.
type Stats struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Workers       int                        `json:"workers"`
	Cache         CacheStats                 `json:"cache"`
	Collections   map[string]CollectionStats `json:"collections"`
	Joins         int64                      `json:"joins"`
}
