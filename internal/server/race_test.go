package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// TestConcurrentIngestSearchConsistency hammers a flat-backed
// collection with concurrent batch searches while an ingester appends
// batches, under -race in CI. The invariant: a query must never observe
// a partially-published columnar store. Record i's vector is
// (i+1)·e_{i mod d}, so against the all-ones query every legitimate hit
// for ID i scores exactly i+1 — any torn row (zeros, half-copied data)
// would surface as a score that disagrees with its ID.
func TestConcurrentIngestSearchConsistency(t *testing.T) {
	const (
		d         = 8
		batches   = 30
		batchSize = 50
		searchers = 4
	)
	mkRec := func(i int) store.Record {
		v := vec.New(d)
		v[i%d] = float64(i + 1)
		return store.Record{ID: i, Vec: v}
	}
	for _, kind := range []string{KindExact, KindNormScan} {
		t.Run(kind, func(t *testing.T) {
			s := New(Config{DefaultShards: 4, CacheCapacity: -1})
			defer s.Close()
			// Seed one batch so searches always have data.
			first := make([]store.Record, batchSize)
			for i := range first {
				first[i] = mkRec(i)
			}
			if _, _, err := s.Ingest("c", &IndexSpec{Kind: kind}, 4, first); err != nil {
				t.Fatal(err)
			}

			q := vec.New(d)
			for i := range q {
				q[i] = 1
			}
			queries := []vec.Vector{q, q, q, q}

			var stop atomic.Bool
			var wg sync.WaitGroup
			errs := make(chan error, searchers+1)

			wg.Add(1)
			go func() {
				defer wg.Done()
				defer stop.Store(true)
				for b := 1; b < batches; b++ {
					recs := make([]store.Record, batchSize)
					for i := range recs {
						recs[i] = mkRec(b*batchSize + i)
					}
					if _, _, err := s.Ingest("c", nil, 0, recs); err != nil {
						errs <- err
						return
					}
				}
			}()

			for w := 0; w < searchers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						res, err := s.Search("c", queries, 20, false)
						if err != nil {
							errs <- err
							return
						}
						for _, r := range res {
							if r.Err != nil {
								errs <- r.Err
								return
							}
							for _, h := range r.Hits {
								if want := float64(h.ID + 1); h.Score != want {
									t.Errorf("kind=%s: hit ID %d scored %v, want %v (torn snapshot?)",
										kind, h.ID, h.Score, want)
									return
								}
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// After the dust settles, the full ranking must be exact.
			res, err := s.Search("c", []vec.Vector{q}, 5, false)
			if err != nil {
				t.Fatal(err)
			}
			total := batches * batchSize
			for i, h := range res[0].Hits {
				if want := total - i; h.ID != want-1 || h.Score != float64(want) {
					t.Fatalf("kind=%s final rank %d: got ID %d score %v, want ID %d score %d",
						kind, i, h.ID, h.Score, want-1, want)
				}
			}
		})
	}
}
