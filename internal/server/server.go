package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/vec"
)

// Config configures a Server. Zero values select sensible defaults.
type Config struct {
	// DefaultShards is the shard count for collections created without
	// an explicit one (default 4).
	DefaultShards int
	// CacheCapacity bounds the query-result LRU (default 4096 entries;
	// negative disables caching).
	CacheCapacity int
	// Workers bounds the batch executor (default GOMAXPROCS).
	Workers int
	// Seed derives per-collection and per-shard hashing seeds.
	Seed uint64
}

func (c *Config) defaults() {
	if c.DefaultShards == 0 {
		c.DefaultShards = 4
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
}

// Server owns the collections, the shared worker pool and the query
// cache. It is safe for concurrent use.
type Server struct {
	cfg    Config
	mu     sync.RWMutex
	cols   map[string]*Collection
	closed bool
	cache  *queryCache
	pool   *Pool
	joins  atomic.Int64
	start  time.Time
}

// New creates a server.
func New(cfg Config) *Server {
	cfg.defaults()
	return &Server{
		cfg:   cfg,
		cols:  make(map[string]*Collection),
		cache: newQueryCache(cfg.CacheCapacity),
		pool:  NewPool(cfg.Workers),
		start: time.Now(),
	}
}

// Close stops every collection's shard goroutines and marks the
// server closed: later EnsureCollection/Ingest calls fail instead of
// silently respawning collections whose goroutines nothing would ever
// stop. Existing collection handles stay searchable (final snapshots).
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, c := range s.cols {
		c.close()
	}
}

// Collection returns the named collection, if it exists.
func (s *Server) Collection(name string) (*Collection, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[name]
	return c, ok
}

// Collections returns the collection names in sorted order.
func (s *Server) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.cols))
	for n := range s.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnsureCollection returns the named collection, creating it with the
// given spec and shard count on first use. A nil spec or zero shard
// count defaults; on an existing collection a non-nil spec must match
// the one it was created with.
func (s *Server) EnsureCollection(name string, spec *IndexSpec, shards int) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty collection name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: closed")
	}
	if c, ok := s.cols[name]; ok {
		if spec != nil && *spec != c.spec {
			return nil, fmt.Errorf("server: collection %q already exists with index %q", name, c.spec.kind())
		}
		if shards != 0 && shards != len(c.shards) {
			return nil, fmt.Errorf("server: collection %q already exists with %d shards", name, len(c.shards))
		}
		return c, nil
	}
	var sp IndexSpec
	if spec != nil {
		sp = *spec
	}
	if shards == 0 {
		shards = s.cfg.DefaultShards
	}
	c, err := newCollection(name, sp, shards, s.cfg.Seed+uint64(len(s.cols))*0x100000001b3)
	if err != nil {
		return nil, err
	}
	s.cols[name] = c
	return c, nil
}

// Ingest appends records into the named collection (creating it on
// first use), then explicitly invalidates the collection's cached
// query results. It returns the new version and the number of cache
// entries dropped.
func (s *Server) Ingest(name string, spec *IndexSpec, shards int, recs []store.Record) (version uint64, invalidated int, err error) {
	c, err := s.EnsureCollection(name, spec, shards)
	if err != nil {
		return 0, 0, err
	}
	version, err = c.Ingest(recs)
	if err != nil {
		return 0, 0, err
	}
	return version, s.cache.invalidate(name), nil
}

// SearchResult is one query's outcome within a batch.
type SearchResult struct {
	Hits   []Hit
	Cached bool
	Err    error
}

// Search answers a batch of top-k queries against the named collection.
// A single query fans out across the shards on the worker pool; a
// batch is tiled — cache misses are packed into one columnar query
// store, the pool fans out per query tile, and every tile sweeps each
// shard snapshot once through the register-blocked multi-query kernels
// (see batch.go), answering each query bit-identically to the
// per-query path. Results are served from / stored into the LRU cache
// keyed by the collection version observed at entry.
func (s *Server) Search(name string, queries []vec.Vector, k int, unsigned bool) ([]SearchResult, error) {
	c, ok := s.Collection(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown collection %q", name)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("server: empty query batch")
	}
	out := make([]SearchResult, len(queries))
	if len(queries) == 1 {
		s.searchSingle(c, name, queries[0], k, unsigned, &out[0])
	} else {
		s.searchBatch(c, name, queries, k, unsigned, out)
	}
	return out, nil
}

// searchSingle is the one-query path: shard fan-out on the pool, LRU
// in front (key construction skipped entirely when caching is off).
func (s *Server) searchSingle(c *Collection, name string, q vec.Vector, k int, unsigned bool, res *SearchResult) {
	qstart := time.Now()
	var key string
	if cacheOn := s.cache.enabled(); cacheOn {
		key = cacheKey(name, c.Version(), k, unsigned, q)
		if hits, ok := s.cache.get(key); ok {
			*res = SearchResult{Hits: hits, Cached: true}
			c.lat.observe(time.Since(qstart))
			return
		}
	} else {
		key = ""
	}
	hits, err := c.SearchOne(s.pool, q, k, unsigned)
	if err != nil {
		res.Err = err
		return
	}
	if key != "" {
		s.cache.put(name, key, hits)
	}
	*res = SearchResult{Hits: hits}
	c.lat.observe(time.Since(qstart))
}

// Stats snapshots the whole server for /stats.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	cols := make(map[string]*Collection, len(s.cols))
	for n, c := range s.cols {
		cols[n] = c
	}
	s.mu.RUnlock()
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.pool.Workers(),
		Cache: CacheStats{
			Capacity:      s.cfg.CacheCapacity,
			Size:          s.cache.len(),
			Hits:          s.cache.hits.Load(),
			Misses:        s.cache.misses.Load(),
			Invalidations: s.cache.invalidations.Load(),
		},
		Collections: make(map[string]CollectionStats, len(cols)),
		Joins:       s.joins.Load(),
	}
	for n, c := range cols {
		st.Collections[n] = c.statsSnapshot()
	}
	return st
}
