package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errfs"
	"repro/internal/persist"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vec"
)

// Config configures a Server. Zero values select sensible defaults.
type Config struct {
	// DefaultShards is the shard count for collections created without
	// an explicit one (default 4).
	DefaultShards int
	// CacheCapacity bounds the query-result LRU (default 4096 entries;
	// negative disables caching).
	CacheCapacity int
	// Workers bounds the batch executor (default GOMAXPROCS).
	Workers int
	// Seed derives per-collection and per-shard hashing seeds.
	Seed uint64

	// DataDir enables durability: every collection gets a directory
	// under it holding a manifest, a write-ahead log and segment
	// snapshots (see internal/persist). Empty keeps the server purely
	// in-memory. Use Open — not New — for a durable server, so
	// existing collections are recovered before serving starts.
	DataDir string
	// Fsync is the WAL fsync policy: "always", "interval" (default)
	// or "never".
	Fsync string
	// FsyncInterval is the background fsync period for the "interval"
	// policy (default 100ms).
	FsyncInterval time.Duration
	// CheckpointBytes is the WAL size above which a collection's log
	// is compacted into a segment snapshot (default 64 MiB).
	CheckpointBytes int64
	// RecoverMode decides what a boot-time recovery failure does:
	// "strict" (default) fails the whole boot; "quarantine" keeps
	// booting and serves the damaged collection as a 503-with-reason
	// placeholder, its data directory untouched.
	RecoverMode string
	// ScrubInterval is the per-collection background integrity
	// scrubber's period (re-verify segment whole-file CRCs, degrade on
	// mismatch). Zero disables scrubbing.
	ScrubInterval time.Duration
	// FS routes every filesystem operation the server and its
	// collections perform. Nil means the real filesystem; tests and
	// chaos harnesses install an errfs.Faulty to inject disk faults.
	FS errfs.FS

	// CompactFraction triggers background compaction of a collection
	// once tombstoned rows exceed this fraction of all rows (default
	// 0.25; negative disables compaction).
	CompactFraction float64
	// CompactMinDead is the minimum tombstone count before compaction
	// is considered at all (default 1024; negative means any count).
	CompactMinDead int

	// DefaultTimeout bounds queries that arrive without their own
	// deadline (zero means unbounded). Requests carrying an explicit
	// timeout_ms use that instead, even when longer.
	DefaultTimeout time.Duration
	// MaxInflight caps concurrently executing queries per collection;
	// zero or negative disables admission control.
	MaxInflight int
	// MaxQueue caps queries waiting for an admission slot once
	// MaxInflight are running; beyond it queries are shed with
	// ErrOverloaded (HTTP 429). Negative means an unbounded queue.
	MaxQueue int
	// MaxBodyBytes caps HTTP request bodies on mutating endpoints
	// (default 32 MiB; negative disables the limit).
	MaxBodyBytes int64

	// RerankOverfetch is the default candidate-widening factor for
	// re-ranked queries on quantized (f32/int8) collections: a re-ranked
	// query fetches k·overfetch quantized candidates and re-scores them
	// through the exact f64 rows (default 4). A collection spec's own
	// Overfetch overrides it.
	RerankOverfetch int

	// Tracing enables the per-request tracing plane: every instrumented
	// HTTP request gets a trace (adopting an incoming W3C traceparent),
	// spans are recorded through the pipeline stages, finished traces
	// land in the /debug/requests ring, and trace spans feed the
	// ipsd_stage_seconds histograms. Off (the zero value) the request
	// path carries a nil trace handle, which costs zero allocations.
	Tracing bool
	// TraceBuffer is how many finished traces each route's debug ring
	// retains (default 32).
	TraceBuffer int
	// SlowQueryMS, when positive, logs one structured line — with the
	// full span tree — for every traced request slower than this many
	// milliseconds.
	SlowQueryMS int
}

func (c *Config) defaults() {
	if c.DefaultShards == 0 {
		c.DefaultShards = 4
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 4096
	}
}

// persistPolicy translates the config's durability knobs. The fsync
// mode string must have been validated (Open does; New falls back to
// the default interval mode on a bad string).
func (c *Config) persistPolicy() persist.Policy {
	mode, _ := persist.ParseFsyncMode(c.Fsync)
	return persist.Policy{
		Mode:            mode,
		Interval:        c.FsyncInterval,
		CheckpointBytes: c.CheckpointBytes,
		FS:              c.FS,
	}
}

// fsys returns the filesystem the server itself uses (data-dir
// enumeration, quarantined-directory removal).
func (s *Server) fsys() errfs.FS {
	if s.cfg.FS != nil {
		return s.cfg.FS
	}
	return errfs.OS
}

// ErrUnavailable marks failures that are the server's fault — a WAL
// or disk error, shutdown in progress, or a concurrent drop — rather
// than a malformed request. The HTTP layer maps it to 503 so clients
// and load balancers retry instead of treating it as a 4xx.
var ErrUnavailable = errors.New("server unavailable")

// Server owns the collections, the shared worker pool and the query
// cache. It is safe for concurrent use.
type Server struct {
	cfg  Config
	mu   sync.RWMutex
	cols map[string]*Collection
	// dropping holds names whose Drop is tearing down state outside
	// s.mu; EnsureCollection refuses them so a racing re-create cannot
	// build a fresh data directory that the in-flight Drop then
	// deletes out from under it.
	dropping map[string]struct{}
	// creating holds names being built outside s.mu (collection
	// construction fsyncs the manifest and WAL on a durable server,
	// which must not stall unrelated requests); the channel closes
	// when the attempt finishes, successfully or not.
	creating map[string]chan struct{}
	// created counts creation attempts, feeding per-collection seeds.
	created int
	// gens hands out collection incarnation numbers for cache keys.
	gens   atomic.Uint64
	closed bool
	cache  *queryCache
	pool   *Pool
	joins  atomic.Int64
	start  time.Time
	// traces is the debug-plane registry behind /debug/requests and
	// /debug/trace/{id}; nil when Config.Tracing is off (the nil
	// registry is inert, so call sites never branch).
	traces *trace.Registry
	// stages holds the ipsd_stage_seconds{stage,collection} histograms,
	// fed from trace spans at request finish and from the persist
	// observer (wal_append/wal_fsync/checkpoint, tracing or not).
	stages *stageMetrics
	// slowQuery is the slow-query log threshold (0 disables).
	slowQuery time.Duration
}

// New creates a server. For a durable server (Config.DataDir set) use
// Open instead, so collections persisted by earlier runs are recovered
// before anything is served.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:       cfg,
		cols:      make(map[string]*Collection),
		dropping:  make(map[string]struct{}),
		creating:  make(map[string]chan struct{}),
		cache:     newQueryCache(cfg.CacheCapacity),
		pool:      NewPool(cfg.Workers),
		start:     time.Now(),
		stages:    newStageMetrics(),
		slowQuery: time.Duration(cfg.SlowQueryMS) * time.Millisecond,
	}
	if cfg.Tracing {
		s.traces = trace.NewRegistry(cfg.TraceBuffer)
	}
	return s
}

// Open creates a server and, when cfg.DataDir is set, recovers every
// collection persisted under it: for each collection directory the
// newest valid segment snapshot is loaded, the WAL tail replayed, the
// index rebuilt from the manifest's spec, and the log reopened so new
// ingests append to it. Under RecoverMode "strict" (the default) boot
// fails — rather than silently serving a subset — if any collection
// directory cannot be recovered; under "quarantine" the damaged
// collection is served as a 503-with-reason placeholder, its directory
// untouched, and the rest of the server boots normally.
func Open(cfg Config) (*Server, error) {
	if _, err := persist.ParseFsyncMode(cfg.Fsync); err != nil {
		return nil, err
	}
	mode, err := ParseRecoverMode(cfg.RecoverMode)
	if err != nil {
		return nil, err
	}
	cfg.RecoverMode = mode
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	if err := s.recoverDataDir(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// seedStride spaces per-collection hashing seeds.
const seedStride = 0x100000001b3

// collectionSeed derives the hashing seed for the ordinal-th created
// collection. Durable collections persist the result in their manifest
// so recovery rebuilds approximate (alsh/sketch) indexes with the
// original seed no matter what order the data dir enumerates in.
func (s *Server) collectionSeed(ordinal int) uint64 {
	return s.cfg.Seed + uint64(ordinal)*seedStride
}

// noteRecoveredSeed advances the creation counter past a recovered
// manifest's seed, so collections created after this boot never reuse
// a seed a recovered collection pinned (collections dropped in earlier
// lives leave ordinal holes the naive count would refill). Callers
// hold s.mu.
func (s *Server) noteRecoveredSeed(seed uint64) {
	s.created++
	if diff := seed - s.cfg.Seed; diff%seedStride == 0 {
		if ordinal := int(diff / seedStride); ordinal+1 > s.created {
			s.created = ordinal + 1
		}
	}
}

// recoverDataDir rebuilds all collections from cfg.DataDir.
func (s *Server) recoverDataDir() error {
	if err := s.fsys().MkdirAll(s.cfg.DataDir, 0o755); err != nil {
		return err
	}
	entries, err := s.fsys().ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	quarantine := s.cfg.RecoverMode == RecoverQuarantine
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.cfg.DataDir, e.Name())
		if !persist.HasManifest(dir) {
			continue
		}
		lg, rec, err := persist.Open(dir, s.cfg.persistPolicy())
		if err != nil {
			if quarantine {
				s.adoptQuarantined(dir, e.Name(), err)
				continue
			}
			return fmt.Errorf("server: recovering %s: %w", dir, err)
		}
		if err := s.adoptRecovered(lg, rec); err != nil {
			lg.Close()
			if quarantine {
				s.adoptQuarantined(dir, e.Name(), err)
				continue
			}
			return fmt.Errorf("server: recovering %s: %w", dir, err)
		}
	}
	return nil
}

// adoptQuarantined registers a 503-serving placeholder for a
// collection directory that failed recovery. The directory is left
// exactly as recovery found it (forensics, or a fixed binary/disk may
// recover it on the next boot); only an explicit DELETE removes it.
// The collection name comes from the manifest when it is readable,
// else the directory name.
func (s *Server) adoptQuarantined(dir, dirName string, cause error) {
	name := dirName
	if m, err := persist.ReadManifest(dir); err == nil && m.Name != "" {
		name = m.Name
	}
	slog.Warn("server: quarantining collection", "collection", name, "dir", dir, "error", cause)
	c := newQuarantined(name, dir, s.fsys(), cause.Error())
	c.gen = s.gens.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.cols[name]; ok {
		// Two directories claiming one collection name: keep the one
		// that recovered (or quarantined) first, leave this directory on
		// disk for the operator.
		slog.Warn("server: collection already registered; leaving directory unserved", "collection", name, "dir", dir)
		return
	}
	s.cols[name] = c
}

// adoptRecovered builds one collection from a recovered log: create it
// under the manifest's spec/shards, replay the recovered records as a
// single batch (the log is attached only afterwards, so the replay
// does not re-append to the WAL), then attach the log for new ingests.
func (s *Server) adoptRecovered(lg *persist.Log, rec *persist.Recovered) error {
	var spec IndexSpec
	if len(rec.Manifest.Index) > 0 {
		if err := json.Unmarshal(rec.Manifest.Index, &spec); err != nil {
			return fmt.Errorf("manifest index spec: %w", err)
		}
	}
	name := rec.Manifest.Name
	if name == "" {
		return fmt.Errorf("manifest has no collection name")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: closed")
	}
	if _, ok := s.cols[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("collection %q recovered twice", name)
	}
	// The manifest pins the seed the collection was created with, so
	// alsh/sketch shard indexes hash identically across restarts even
	// though recovery enumerates the data dir in name order.
	c, err := newCollection(name, spec, rec.Manifest.Shards, rec.Manifest.Seed, s.cfg.RerankOverfetch)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	c.gen = s.gens.Add(1)
	s.configureCompaction(c)
	s.noteRecoveredSeed(rec.Manifest.Seed)
	s.cols[name] = c
	s.mu.Unlock()
	if len(rec.Recs) > 0 {
		if _, err := c.Ingest(rec.Recs); err != nil {
			return fmt.Errorf("replaying %d records: %w", len(rec.Recs), err)
		}
	}
	c.attachLog(lg)
	return nil
}

// Close stops every collection's shard goroutines, flushes and closes
// their write-ahead logs, and marks the server closed: later
// EnsureCollection/Ingest calls fail instead of silently respawning
// collections whose goroutines nothing would ever stop. Existing
// collection handles stay searchable (final snapshots). The first log
// flush/close error is returned.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	var first error
	for _, c := range s.cols {
		c.close()
		if err := c.closeLog(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Drop removes the named collection: it disappears from the map (new
// requests 404), its shard goroutines stop, and its data directory —
// WAL, segments, manifest — is deleted. In-flight searches holding the
// collection keep reading its final immutable snapshots. The returned
// bool reports whether the collection existed.
func (s *Server) Drop(name string) (bool, error) {
	s.mu.Lock()
	c, ok := s.cols[name]
	if ok {
		delete(s.cols, name)
		// Block re-creation until the teardown below (which runs
		// outside s.mu) has finished deleting the data directory, so
		// a racing PUT cannot build a fresh directory that this Drop
		// then destroys.
		s.dropping[name] = struct{}{}
	}
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	defer func() {
		s.mu.Lock()
		delete(s.dropping, name)
		s.mu.Unlock()
	}()
	// Dropping must invalidate cached results: a successor collection
	// with the same name restarts versions at 0, which would otherwise
	// revive stale entries keyed under the old life's versions.
	s.cache.invalidate(name)
	c.close()
	return true, c.removeLog()
}

// safeDirName matches collection names that can be used verbatim as a
// directory name. Anything else (path separators, "..", control
// bytes…) is mapped through a hash; the manifest carries the real name
// so recovery never depends on the directory spelling.
var safeDirName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,200}$`)

func collectionDirName(name string) string {
	if safeDirName.MatchString(name) {
		return name
	}
	sum := sha256.Sum256([]byte(name))
	return "x-" + hex.EncodeToString(sum[:16])
}

// Closed reports whether Close has run: the liveness signal behind
// /healthz (a closed server cannot serve, so it must stop advertising
// itself as alive).
func (s *Server) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Readiness reports whether the server should receive traffic: nil
// when it is open and every collection is active. A degraded or
// quarantined collection makes the whole process unready — a load
// balancer should prefer replicas that can serve everything — while
// /healthz stays green so the orchestrator does not restart a process
// that is busy repairing itself.
func (s *Server) Readiness() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("server is closed")
	}
	cols := make(map[string]*Collection, len(s.cols))
	for n, c := range s.cols {
		cols[n] = c
	}
	s.mu.RUnlock()
	var unready []string
	for n, c := range cols {
		if st := c.healthState(); st != HealthActive {
			unready = append(unready, fmt.Sprintf("%s (%s)", n, st))
		}
	}
	if len(unready) == 0 {
		return nil
	}
	sort.Strings(unready)
	return fmt.Errorf("collections not active: %s", strings.Join(unready, ", "))
}

// Collection returns the named collection, if it exists.
func (s *Server) Collection(name string) (*Collection, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.cols[name]
	return c, ok
}

// Collections returns the collection names in sorted order.
func (s *Server) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.cols))
	for n := range s.cols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EnsureCollection returns the named collection, creating it with the
// given spec and shard count on first use. A nil spec or zero shard
// count defaults; on an existing collection a non-nil spec must match
// the one it was created with.
func (s *Server) EnsureCollection(name string, spec *IndexSpec, shards int) (*Collection, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty collection name")
	}
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: server is closed", ErrUnavailable)
		}
		if c, ok := s.cols[name]; ok {
			s.mu.Unlock()
			if st, reason := c.healthInfo(); st == HealthQuarantined {
				// The placeholder's zero spec must not be compared against
				// the request's: the real spec lives in the unreadable
				// directory. 503 (not 400/409) so the client knows this is
				// the server's problem and a retry after repair can work.
				return nil, fmt.Errorf("%w: collection %q is quarantined: %s", ErrUnavailable, name, reason)
			}
			if spec != nil && *spec != c.spec {
				return nil, fmt.Errorf("server: collection %q already exists with index %q", name, c.spec.kind())
			}
			if shards != 0 && shards != len(c.shards) {
				return nil, fmt.Errorf("server: collection %q already exists with %d shards", name, len(c.shards))
			}
			return c, nil
		}
		if _, busy := s.dropping[name]; busy {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: collection %q is being dropped; retry", ErrUnavailable, name)
		}
		if ch, busy := s.creating[name]; busy {
			// Another request is building this collection; wait for it
			// and re-check (it may have succeeded or failed).
			s.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.creating[name] = ch
		s.created++
		seed := s.collectionSeed(s.created - 1)
		s.mu.Unlock()

		// Construction runs outside s.mu: on a durable server it
		// fsyncs the manifest and the fresh WAL, which must not stall
		// requests against other collections. The reservation above
		// keeps this single-flight per name.
		c, err := s.buildCollection(name, specOrDefault(spec), shardsOrDefault(shards, s.cfg.DefaultShards), seed)

		s.mu.Lock()
		delete(s.creating, name)
		close(ch)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if s.closed {
			s.mu.Unlock()
			// Lost the race with Close: tear the never-published
			// collection down (no records were acknowledged, so
			// removing its fresh data dir loses nothing).
			c.close()
			c.removeLog()
			return nil, fmt.Errorf("%w: server is closed", ErrUnavailable)
		}
		s.cols[name] = c
		s.mu.Unlock()
		return c, nil
	}
}

// configureCompaction applies the server's compaction and admission
// knobs to a freshly built collection (both the create and the
// recovery path).
func (s *Server) configureCompaction(c *Collection) {
	if s.cfg.CompactFraction != 0 {
		c.compactFrac = s.cfg.CompactFraction
	}
	if s.cfg.CompactMinDead > 0 {
		c.compactMin = s.cfg.CompactMinDead
	} else if s.cfg.CompactMinDead < 0 {
		c.compactMin = 0
	}
	c.adm = newGate(s.cfg.MaxInflight, s.cfg.MaxQueue)
	c.scrubEvery = s.cfg.ScrubInterval
	c.fsys = s.fsys()
	name := c.name
	c.stageObs = func(stage string, d time.Duration) {
		s.stages.observe(stage, name, d)
	}
}

func specOrDefault(spec *IndexSpec) IndexSpec {
	if spec != nil {
		return *spec
	}
	return IndexSpec{}
}

func shardsOrDefault(shards, def int) int {
	if shards == 0 {
		return def
	}
	return shards
}

// buildCollection constructs a collection and (on a durable server)
// its data directory. On any failure nothing is left running: the
// shard-owner goroutines newCollection spawned are stopped.
func (s *Server) buildCollection(name string, spec IndexSpec, shards int, seed uint64) (*Collection, error) {
	c, err := newCollection(name, spec, shards, seed, s.cfg.RerankOverfetch)
	if err != nil {
		return nil, err
	}
	c.gen = s.gens.Add(1)
	s.configureCompaction(c)
	if s.cfg.DataDir != "" {
		lg, err := s.createLog(name, spec, shards, seed)
		if err != nil {
			c.close()
			return nil, fmt.Errorf("%w: collection %q: %w", ErrUnavailable, name, err)
		}
		c.attachLog(lg)
	}
	return c, nil
}

// createLog initializes a new collection's data directory.
func (s *Server) createLog(name string, sp IndexSpec, shards int, seed uint64) (*persist.Log, error) {
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	return persist.Create(
		filepath.Join(s.cfg.DataDir, collectionDirName(name)),
		persist.Manifest{Name: name, Shards: shards, Seed: seed, Index: specJSON},
		s.cfg.persistPolicy(),
	)
}

// Ingest appends records into the named collection (creating it on
// first use), then explicitly invalidates the collection's cached
// query results. It returns the new version and the number of cache
// entries dropped.
func (s *Server) Ingest(name string, spec *IndexSpec, shards int, recs []store.Record) (version uint64, invalidated int, err error) {
	c, err := s.EnsureCollection(name, spec, shards)
	if err != nil {
		return 0, 0, err
	}
	version, err = c.Ingest(recs)
	if err != nil {
		return 0, 0, err
	}
	return version, s.cache.invalidate(name), nil
}

// Upsert inserts or replaces records by ID in the named collection
// (creating it on first use), then invalidates the collection's cached
// query results — a cached hit list may contain a record this batch
// just replaced. Returns the new version and the number of cache
// entries dropped.
func (s *Server) Upsert(name string, spec *IndexSpec, shards int, recs []store.Record) (version uint64, invalidated int, err error) {
	c, err := s.EnsureCollection(name, spec, shards)
	if err != nil {
		return 0, 0, err
	}
	version, err = c.Upsert(recs)
	if err != nil {
		return 0, 0, err
	}
	return version, s.cache.invalidate(name), nil
}

// Delete removes records by ID from the named collection and
// invalidates its cached query results, so a cached hit can never
// return a tombstoned ID. Unknown IDs are no-ops; deleted reports how
// many records were actually removed. Deleting from an unknown
// collection is an error.
func (s *Server) Delete(name string, ids []int) (version uint64, deleted, invalidated int, err error) {
	c, ok := s.Collection(name)
	if !ok {
		return 0, 0, 0, fmt.Errorf("server: unknown collection %q", name)
	}
	version, deleted, err = c.Delete(ids)
	if err != nil {
		return 0, 0, 0, err
	}
	return version, deleted, s.cache.invalidate(name), nil
}

// SearchResult is one query's outcome within a batch.
type SearchResult struct {
	Hits   []Hit
	Cached bool
	Err    error
	// Explain carries the per-shard execution detail when the request
	// asked for it (single-query requests only).
	Explain *QueryExplain
}

// Search answers a batch of top-k queries against the named collection.
// A single query fans out across the shards on the worker pool; a
// batch is tiled — cache misses are packed into one columnar query
// store, the pool fans out per query tile, and every tile sweeps each
// shard snapshot once through the register-blocked multi-query kernels
// (see batch.go), answering each query bit-identically to the
// per-query path. Results are served from / stored into the LRU cache
// keyed by the collection version observed at entry.
func (s *Server) Search(name string, queries []vec.Vector, k int, unsigned bool) ([]SearchResult, error) {
	return s.SearchCtx(context.Background(), name, queries, k, unsigned)
}

// SearchCtx is Search with a request context: the whole batch is one
// admission unit against the collection's gate (ErrOverloaded when
// shed), and ctx's deadline/cancellation propagates through the pool
// into the block-level scan kernels, so an expired query stops within
// one row block. Queries abandoned mid-scan carry ctx's error in
// their SearchResult.Err; a pre-admission failure is returned as the
// call error instead.
func (s *Server) SearchCtx(ctx context.Context, name string, queries []vec.Vector, k int, unsigned bool) ([]SearchResult, error) {
	return s.SearchWithOpts(ctx, name, queries, SearchOpts{K: k, Unsigned: unsigned})
}

// SearchOpts carries one search request's parameters beyond the query
// vectors themselves.
type SearchOpts struct {
	// K is the number of hits per query (must be positive).
	K int
	// Unsigned ranks by |pᵀq| instead of pᵀq.
	Unsigned bool
	// Rerank asks f32 collections for exact scores: each shard widens
	// its quantized candidate set by the collection's overfetch factor
	// and re-scores it through the retained f64 rows, making the answer
	// bit-identical to an f64 exact scan whenever the candidate set
	// covers the true top k. int8 collections re-rank unconditionally;
	// on exact (f64) engines the flag is a no-op.
	Rerank bool
	// Explain collects per-shard execution detail (rows scanned, blocks
	// pruned or skipped, rerank candidates, timings) into
	// SearchResult.Explain. Single-query requests only; the hits are
	// bit-identical to an unexplained query.
	Explain bool
}

// SearchWithOpts is SearchCtx with the full option set (notably the
// exact re-rank flag for quantized collections).
func (s *Server) SearchWithOpts(ctx context.Context, name string, queries []vec.Vector, opts SearchOpts) ([]SearchResult, error) {
	c, ok := s.Collection(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown collection %q", name)
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("server: empty query batch")
	}
	if opts.Explain && len(queries) > 1 {
		return nil, fmt.Errorf("server: explain supports single-query requests only")
	}
	tr := trace.FromContext(ctx)
	tr.SetCollection(name)
	asp := tr.StartSpan("admission")
	err := c.adm.enter(ctx)
	asp.End()
	if err != nil {
		return nil, err
	}
	defer c.adm.exit()
	out := make([]SearchResult, len(queries))
	if len(queries) == 1 {
		s.searchSingle(ctx, c, name, queries[0], opts, &out[0])
	} else {
		s.searchBatch(ctx, c, name, queries, opts, out)
	}
	return out, nil
}

// countTimeout bumps the collection's deadline-miss counter when err
// is a context error.
func (c *Collection) countTimeout(err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		c.timeouts.Add(1)
	}
}

// searchSingle is the one-query path: shard fan-out on the pool, LRU
// in front (key construction skipped entirely when caching is off).
func (s *Server) searchSingle(ctx context.Context, c *Collection, name string, q vec.Vector, opts SearchOpts, res *SearchResult) {
	k, unsigned := opts.K, opts.Unsigned
	tr := trace.FromContext(ctx)
	var qe *QueryExplain
	var shardsEx []ShardExplain
	if opts.Explain {
		qe = &QueryExplain{
			TraceID:    tr.ID(),
			Collection: name,
			Index:      c.spec.kind(),
			Precision:  c.spec.precision(),
			K:          k,
			// Rerank reports the effective behavior: int8 collections
			// always re-rank through the exact f64 rows, whatever the
			// request asked for.
			Rerank: opts.Rerank || c.spec.precision() == PrecisionI8,
		}
		shardsEx = make([]ShardExplain, len(c.shards))
	}
	qstart := time.Now()
	var key string
	if cacheOn := s.cache.enabled(); cacheOn {
		csp := tr.StartSpan("cache")
		key = cacheKey(name, c.gen, c.Version(), k, unsigned, opts.Rerank, q)
		hits, ok := s.cache.get(key)
		csp.End()
		if ok {
			if qe != nil {
				qe.CacheHit = true
			}
			*res = SearchResult{Hits: hits, Cached: true, Explain: qe}
			c.observeLatency(time.Since(qstart))
			return
		}
	} else {
		key = ""
	}
	hits, err := c.searchOne(ctx, s.pool, q, k, unsigned, opts.Rerank, shardsEx)
	if err != nil {
		// A cancelled scan returns partial garbage-free state but no
		// hits; nothing is cached, so the next identical query runs
		// fresh rather than inheriting a poisoned entry.
		c.countTimeout(err)
		res.Err = err
		return
	}
	if key != "" {
		s.cache.put(name, key, hits)
	}
	if qe != nil {
		qe.fill(shardsEx)
	}
	*res = SearchResult{Hits: hits, Explain: qe}
	c.observeLatency(time.Since(qstart))
}

// recordTrace feeds a finished trace's spans into the per-stage
// histograms. Requests that never resolved a collection are skipped, so
// the stage label cardinality stays bounded by (stages × collections).
func (s *Server) recordTrace(tr *trace.Trace) {
	col := tr.Collection()
	if col == "" {
		return
	}
	tr.SpanDurations(func(stage string, d time.Duration) {
		s.stages.observe(stage, col, d)
	})
}

// maybeLogSlow emits one structured slow-query line — the full exported
// span tree included — when the finished trace overran the threshold.
func (s *Server) maybeLogSlow(tr *trace.Trace) {
	if s.slowQuery <= 0 || tr == nil || tr.Duration() < s.slowQuery {
		return
	}
	e := tr.Export()
	slog.Warn("slow request",
		"trace_id", e.TraceID,
		"route", e.Route,
		"collection", e.Collection,
		"status", e.Status,
		"duration_micros", e.DurationUS,
		"spans", e.Spans)
}

// Stats snapshots the whole server for /stats.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	cols := make(map[string]*Collection, len(s.cols))
	for n, c := range s.cols {
		cols[n] = c
	}
	s.mu.RUnlock()
	st := Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.pool.Workers(),
		Cache: CacheStats{
			Capacity:      s.cfg.CacheCapacity,
			Size:          s.cache.len(),
			Hits:          s.cache.hits.Load(),
			Misses:        s.cache.misses.Load(),
			Invalidations: s.cache.invalidations.Load(),
		},
		Collections: make(map[string]CollectionStats, len(cols)),
		Joins:       s.joins.Load(),
	}
	for n, c := range cols {
		st.Collections[n] = c.statsSnapshot()
	}
	return st
}
