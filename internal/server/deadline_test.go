package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// waitPoolIdle asserts every scan-pool slot has been released: a
// cancelled request that leaked a slot (or a goroutine still holding
// one) would leave len(sem) > 0 forever.
func waitPoolIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(s.pool.sem) == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool not idle: %d/%d slots still held", len(s.pool.sem), cap(s.pool.sem))
}

// seedKind builds a collection of the given index kind with unsigned
// data (so the sketch engine is usable) and returns the query set.
func seedKind(t *testing.T, s *Server, name, kind string, n, d, nq int) []vec.Vector {
	t.Helper()
	rng := xrand.New(77)
	items := dataset.Gaussian(rng, n, d, true)
	queries := dataset.Gaussian(rng, nq, d, true)
	recs := make([]store.Record, len(items))
	for i, v := range items {
		recs[i] = store.Record{ID: i, Vec: v}
	}
	spec := &IndexSpec{Kind: kind}
	if kind == KindSketch {
		spec.Kappa = 2
		spec.Copies = 9
	}
	if _, _, err := s.Ingest(name, spec, 3, recs); err != nil {
		t.Fatalf("ingest %s: %v", kind, err)
	}
	return queries
}

// expiredCtx returns a context whose deadline has already fired.
func expiredCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestDeadlineMatrix drives every index kind through single and
// batched searches under three deadline regimes: already expired
// (every result must carry a context error), generous (results must be
// bit-identical to the no-deadline answers), and absent (the baseline).
// After each cancelled run the scan pool must drain back to idle.
func TestDeadlineMatrix(t *testing.T) {
	for _, kind := range []string{KindExact, KindNormScan, KindALSH, KindSketch} {
		t.Run(kind, func(t *testing.T) {
			s := New(Config{DefaultShards: 3, CacheCapacity: -1})
			defer s.Close()
			queries := seedKind(t, s, "m", kind, 400, 16, 24)

			base, err := s.Search("m", queries, 5, true)
			if err != nil {
				t.Fatalf("baseline search: %v", err)
			}
			for i, r := range base {
				if r.Err != nil {
					t.Fatalf("baseline query %d: %v", i, r.Err)
				}
			}

			// Generous deadline: bit-identical to the baseline.
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			gen, err := s.SearchCtx(ctx, "m", queries, 5, true)
			cancel()
			if err != nil {
				t.Fatalf("generous-deadline search: %v", err)
			}
			for i := range gen {
				if gen[i].Err != nil {
					t.Fatalf("generous-deadline query %d: %v", i, gen[i].Err)
				}
				if len(gen[i].Hits) != len(base[i].Hits) {
					t.Fatalf("query %d: %d hits with deadline, %d without", i, len(gen[i].Hits), len(base[i].Hits))
				}
				for j := range gen[i].Hits {
					if gen[i].Hits[j] != base[i].Hits[j] {
						t.Fatalf("query %d hit %d: %+v with deadline, %+v without",
							i, j, gen[i].Hits[j], base[i].Hits[j])
					}
				}
			}

			// Expired deadline, single query (SearchOne path).
			res, err := s.SearchCtx(expiredCtx(), "m", queries[:1], 5, true)
			if err != nil {
				t.Fatalf("expired single: top-level %v", err)
			}
			if !errors.Is(res[0].Err, context.Canceled) && !errors.Is(res[0].Err, context.DeadlineExceeded) {
				t.Fatalf("expired single: err = %v, want a context error", res[0].Err)
			}
			if res[0].Hits != nil {
				t.Fatalf("expired single returned %d hits", len(res[0].Hits))
			}

			// Expired deadline, batch (tile pipeline path).
			res, err = s.SearchCtx(expiredCtx(), "m", queries, 5, true)
			if err != nil {
				t.Fatalf("expired batch: top-level %v", err)
			}
			for i, r := range res {
				if !errors.Is(r.Err, context.Canceled) && !errors.Is(r.Err, context.DeadlineExceeded) {
					t.Fatalf("expired batch query %d: err = %v, want a context error", i, r.Err)
				}
			}
			waitPoolIdle(t, s)

			// The timeout counter saw every cancelled query.
			c, _ := s.Collection("m")
			if got := c.timeouts.Load(); got < int64(1+len(queries)) {
				t.Fatalf("timeouts counter = %d, want >= %d", got, 1+len(queries))
			}
		})
	}
}

// TestJoinDeadline pins cancellation through the join path: an expired
// context fails with a context error on every engine, a generous one
// matches the no-deadline join exactly, and the pool drains either way.
func TestJoinDeadline(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: -1})
	defer s.Close()
	seedKind(t, s, "p", KindExact, 300, 12, 1)
	seedKind(t, s, "q", KindExact, 60, 12, 1)

	for _, engine := range []string{"exact", "normpruned", "lsh"} {
		t.Run(engine, func(t *testing.T) {
			req := JoinRequest{Data: "p", Queries: "q", Engine: engine, S: 0.3, Variant: "unsigned"}
			base, err := s.Join(req)
			if err != nil {
				t.Fatalf("baseline join: %v", err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			gen, err := s.JoinCtx(ctx, req)
			cancel()
			if err != nil {
				t.Fatalf("generous-deadline join: %v", err)
			}
			if gen.Pairs == nil || len(gen.Pairs) != len(base.Pairs) {
				t.Fatalf("join with deadline found %d pairs, baseline %d", len(gen.Pairs), len(base.Pairs))
			}

			if _, err := s.JoinCtx(expiredCtx(), req); !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("expired join: err = %v, want a context error", err)
			}
			waitPoolIdle(t, s)
		})
	}
}

// TestHTTPDeadline504 is the acceptance scenario: a short-deadline
// search against a collection whose full scan takes much longer must
// come back 504 quickly — in a fraction of the scan time — and free
// its pool slot. Batched searches and joins expire the same way.
func TestHTTPDeadline504(t *testing.T) {
	s := New(Config{DefaultShards: 1, CacheCapacity: -1, Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rng := xrand.New(9)
	const n, d = 1 << 17, 32
	var q []float64

	// Grow the collection until a full scan takes well over the 2ms
	// deadline; a fixed size would be flaky across kernel speeds.
	var baseline time.Duration
	for grow, next := 0, 0; grow < 4; grow++ {
		items := dataset.Gaussian(rng, n, d, true)
		recs := make([]store.Record, len(items))
		for i, v := range items {
			recs[i] = store.Record{ID: next + i, Vec: v}
		}
		next += len(items)
		if _, _, err := s.Ingest("big", &IndexSpec{Kind: KindExact}, 1, recs); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		if q == nil {
			q = items[0]
		}
		start := time.Now()
		if code := doJSON(t, ts, http.MethodPost, "/collections/big/search",
			SearchRequest{Q: q, K: 3, Unsigned: true}, nil); code != http.StatusOK {
			t.Fatalf("baseline status %d", code)
		}
		baseline = time.Since(start)
		if baseline >= 25*time.Millisecond {
			break
		}
	}
	if baseline < 10*time.Millisecond {
		t.Skipf("scan too fast to expire a 2ms deadline (baseline %v)", baseline)
	}

	// The 2ms-deadline run must 504 without riding out the scan.
	var e map[string]string
	start := time.Now()
	code := doJSON(t, ts, http.MethodPost, "/collections/big/search",
		SearchRequest{Q: q, K: 3, Unsigned: true, TimeoutMS: 2}, &e)
	took := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline search status %d (%v), want 504", code, e)
	}
	if baseline > 40*time.Millisecond && took > baseline/2 {
		t.Fatalf("deadline search took %v against a %v scan; cancellation did not cut it short", took, baseline)
	}
	t.Logf("baseline scan %v, 2ms-deadline response %v", baseline, took)

	// Batch path expires too.
	if code := doJSON(t, ts, http.MethodPost, "/collections/big/search",
		SearchRequest{Queries: [][]float64{q, q}, K: 3, Unsigned: true, TimeoutMS: 2}, &e); code != http.StatusGatewayTimeout {
		t.Fatalf("deadline batch status %d (%v), want 504", code, e)
	}

	waitPoolIdle(t, s)
}

// TestCancelledQueryDoesNotPoisonCache is the regression for the
// cache-poisoning hazard: a query abandoned mid-scan must not store
// its partial (empty) result under the query's cache key. The same
// query re-run without a deadline must compute fresh, correct hits —
// and only then become cache-served.
func TestCancelledQueryDoesNotPoisonCache(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: 128})
	defer s.Close()
	queries := seedKind(t, s, "m", KindExact, 300, 8, 8)

	// Cancelled single query: must error, must not cache.
	res, err := s.SearchCtx(expiredCtx(), "m", queries[:1], 3, true)
	if err != nil || res[0].Err == nil {
		t.Fatalf("cancelled query: err=%v res.Err=%v", err, res[0].Err)
	}
	fresh, err := s.Search("m", queries[:1], 3, true)
	if err != nil || fresh[0].Err != nil {
		t.Fatalf("post-cancel query: err=%v res.Err=%v", err, fresh[0].Err)
	}
	if fresh[0].Cached {
		t.Fatal("post-cancel query was served from cache: the cancelled run poisoned it")
	}
	if len(fresh[0].Hits) != 3 {
		t.Fatalf("post-cancel query returned %d hits, want 3", len(fresh[0].Hits))
	}
	again, _ := s.Search("m", queries[:1], 3, true)
	if !again[0].Cached {
		t.Fatal("repeat query not cache-served; completed results should populate the cache")
	}
	for i := range again[0].Hits {
		if again[0].Hits[i] != fresh[0].Hits[i] {
			t.Fatalf("cached hit %d = %+v, computed %+v", i, again[0].Hits[i], fresh[0].Hits[i])
		}
	}

	// Same contract for the batch pipeline.
	if _, err := s.SearchCtx(expiredCtx(), "m", queries, 3, true); err != nil {
		t.Fatalf("cancelled batch: %v", err)
	}
	batch, err := s.Search("m", queries, 3, true)
	if err != nil {
		t.Fatalf("post-cancel batch: %v", err)
	}
	for i, r := range batch {
		if r.Err != nil {
			t.Fatalf("post-cancel batch query %d: %v", i, r.Err)
		}
		if i > 0 && r.Cached {
			// queries[0] was legitimately cached above; the rest must
			// have been computed fresh, not replayed from a poisoned
			// entry.
			t.Fatalf("post-cancel batch query %d claims cached", i)
		}
	}
}

// TestAdmissionShedsWith429 pins the overload contract end to end: with
// both execution slots and queue occupied, a search is shed with 429
// and a Retry-After hint, an admission-failed query never reaches the
// cache, and once the slot frees the same request serves normally.
func TestAdmissionShedsWith429(t *testing.T) {
	s := New(Config{DefaultShards: 1, CacheCapacity: 128, MaxInflight: 1, MaxQueue: 0})
	defer s.Close()
	queries := seedKind(t, s, "m", KindExact, 100, 8, 2)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	c, _ := s.Collection("m")
	if err := c.adm.enter(context.Background()); err != nil {
		t.Fatalf("occupying the admission slot: %v", err)
	}

	body := strings.NewReader(fmt.Sprintf(`{"q":%s,"k":1,"unsigned":true}`, jsonVec(queries[0])))
	resp, err := ts.Client().Post(ts.URL+"/collections/m/search", "application/json", body)
	if err != nil {
		t.Fatalf("shed request: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated search status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	// The shed query must not have cached anything.
	c.adm.exit()
	var ok SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/m/search",
		SearchRequest{Q: queries[0], K: 1, Unsigned: true}, &ok); code != http.StatusOK {
		t.Fatalf("post-shed search status %d", code)
	}
	if ok.Cached != 0 {
		t.Fatal("post-shed search was cache-served; the shed query should never have reached the cache")
	}
	if _, _, shed := c.adm.snapshot(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}
}

func jsonVec(v vec.Vector) string {
	parts := make([]string, len(v))
	for i, f := range v {
		parts[i] = fmt.Sprintf("%g", f)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TestGate unit-tests the admission gate itself: slot accounting,
// immediate shedding on a full queue, queued waiters admitted in turn,
// and waiters abandoning the queue when their context fires.
func TestGate(t *testing.T) {
	g := newGate(1, 0)
	if err := g.enter(context.Background()); err != nil {
		t.Fatalf("first enter: %v", err)
	}
	if err := g.enter(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second enter = %v, want ErrOverloaded", err)
	}
	if inflight, _, shed := g.snapshot(); inflight != 1 || shed != 1 {
		t.Fatalf("snapshot inflight=%d shed=%d, want 1, 1", inflight, shed)
	}
	g.exit()
	if err := g.enter(context.Background()); err != nil {
		t.Fatalf("enter after exit: %v", err)
	}
	g.exit()

	// With queue room, a waiter blocks until the slot frees.
	g = newGate(1, 4)
	if err := g.enter(context.Background()); err != nil {
		t.Fatalf("enter: %v", err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- g.enter(context.Background()) }()
	select {
	case err := <-admitted:
		t.Fatalf("waiter admitted while the slot was held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.exit()
	if err := <-admitted; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	g.exit()

	// A queued waiter whose deadline fires gives up with the ctx error.
	g = newGate(1, 4)
	if err := g.enter(context.Background()); err != nil {
		t.Fatalf("enter: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.enter(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter = %v, want DeadlineExceeded", err)
	}
	g.exit()
	if inflight, queued, _ := g.snapshot(); inflight != 0 || queued != 0 {
		t.Fatalf("final snapshot inflight=%d queued=%d, want 0, 0", inflight, queued)
	}

	// nil gate admits everything.
	var nilGate *gate
	if err := nilGate.enter(context.Background()); err != nil {
		t.Fatalf("nil gate enter: %v", err)
	}
	nilGate.exit()
}

// TestForEachCtx pins the cancellable feed: a nil context runs every
// task, a pre-cancelled one runs none, and a mid-run cancellation
// stops feeding while letting started tasks finish — with every slot
// released afterwards.
func TestForEachCtx(t *testing.T) {
	p := NewPool(2)

	var ran atomic.Int64
	if err := p.ForEachCtx(nil, 16, func(int) { ran.Add(1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if ran.Load() != 16 {
		t.Fatalf("nil ctx ran %d/16 tasks", ran.Load())
	}

	ran.Store(0)
	if err := p.ForEachCtx(expiredCtx(), 16, func(int) { ran.Add(1) }); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: err = %v, want Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("expired ctx still ran %d tasks", ran.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	ran.Store(0)
	err := p.ForEachCtx(ctx, 64, func(i int) {
		if i == 1 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		ran.Add(1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: err = %v, want Canceled", err)
	}
	if n := ran.Load(); n == 0 || n == 64 {
		t.Fatalf("mid-run cancel ran %d/64 tasks; want some but not all", n)
	}
	if len(p.sem) != 0 {
		t.Fatalf("%d slots still held after cancelled ForEachCtx", len(p.sem))
	}
}

// TestHTTPBodyLimit413 pins the request-body cap: an ingest larger
// than Config.MaxBodyBytes is rejected with a structured 413 and the
// collection is untouched, while a small body still lands.
func TestHTTPBodyLimit413(t *testing.T) {
	s := New(Config{DefaultShards: 1, MaxBodyBytes: 2 << 10})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rng := xrand.New(3)
	items := dataset.Gaussian(rng, 200, 16, false)
	recs := make([]RecordJSON, len(items))
	for i, v := range items {
		id := i
		recs[i] = RecordJSON{ID: &id, Vec: v}
	}
	var e map[string]string
	if code := doJSON(t, ts, http.MethodPut, "/collections/c",
		IngestRequest{Records: recs}, &e); code != http.StatusRequestEntityTooLarge || e["error"] == "" {
		t.Fatalf("oversized ingest: status %d, error %q; want structured 413", code, e["error"])
	}
	if _, ok := s.Collection("c"); ok {
		if c, _ := s.Collection("c"); c.Len() != 0 {
			t.Fatalf("rejected ingest left %d records behind", c.Len())
		}
	}
	if code := doJSON(t, ts, http.MethodPut, "/collections/c",
		IngestRequest{Records: recs[:2]}, nil); code != http.StatusOK {
		t.Fatalf("small ingest after 413: status %d", code)
	}
}

// TestMetricsEndpoint exercises GET /metrics: the Prometheus text
// content type, per-route HTTP histograms and status counts, and the
// per-collection query/admission/timeout series, all reflecting the
// traffic the test just generated.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: 64, MaxInflight: 1, MaxQueue: 0})
	defer s.Close()
	queries := seedKind(t, s, "met", KindExact, 200, 8, 4)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	// Traffic: two identical searches (second is a cache hit), one
	// expired-deadline search (timeout counter), one shed search (429).
	for i := 0; i < 2; i++ {
		if code := doJSON(t, ts, http.MethodPost, "/collections/met/search",
			SearchRequest{Q: queries[0], K: 2, Unsigned: true}, nil); code != http.StatusOK {
			t.Fatalf("search %d status %d", i, code)
		}
	}
	c, _ := s.Collection("met")
	if _, err := s.SearchCtx(expiredCtx(), "met", []vec.Vector{queries[1]}, 2, true); err != nil {
		t.Fatalf("expired search: %v", err)
	}
	if err := c.adm.enter(context.Background()); err != nil {
		t.Fatalf("occupying slot: %v", err)
	}
	doJSON(t, ts, http.MethodPost, "/collections/met/search",
		SearchRequest{Q: queries[2], K: 2, Unsigned: true}, nil)
	c.adm.exit()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	page := string(raw)
	for _, want := range []string{
		"ipsd_uptime_seconds ",
		"ipsd_pool_workers ",
		"ipsd_cache_hits_total 1",
		"ipsd_http_inflight ",
		`ipsd_http_requests_total{route="search",code="2xx"} 2`,
		`ipsd_http_requests_total{route="search",code="4xx"} 1`,
		`ipsd_http_request_duration_seconds_bucket{route="search",le="+Inf"}`,
		`ipsd_http_request_duration_seconds_count{route="search"}`,
		`ipsd_collection_records{collection="met"} 200`,
		`ipsd_queries_total{collection="met"}`,
		`ipsd_query_timeouts_total{collection="met"} 1`,
		`ipsd_admission_shed_total{collection="met"} 1`,
		`ipsd_admission_inflight{collection="met"} 0`,
		`ipsd_wal_fsync_lag_seconds{collection="met"} 0`,
		`ipsd_query_duration_seconds_bucket{collection="met",le="+Inf"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics page:\n%s", page)
	}

	// Histogram buckets must be cumulative (monotone non-decreasing).
	var last int64 = -1
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, `ipsd_http_request_duration_seconds_bucket{route="search"`) {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("parsing bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
	if last < 3 {
		t.Fatalf("search route histogram count = %d, want >= 3", last)
	}
}
