package server

// Failure-domain tests: disk faults injected through the errfs VFS
// must degrade exactly one collection (reads keep serving, mutations
// fail closed with 503), the background repair probe must restore it
// once the fault heals, and a restart must recover the acknowledged
// state bit-identically — never a rejected batch, never a panic.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/errfs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// faultyConfig is durableConfig routed through a fault injector.
func faultyConfig(dir string, f *errfs.Faulty) Config {
	cfg := durableConfig(dir)
	cfg.FS = f
	return cfg
}

// TestWALFaultDegradesServing: a latched WAL fsync failure turns the
// collection read-only — the failed ingest is reported, reads keep
// answering from the last snapshots, mutations 503 — and the repair
// probe restores active service once the disk heals. A restart then
// recovers exactly the acknowledged batches.
func TestWALFaultDegradesServing(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	s, err := Open(faultyConfig(dir, f))
	if err != nil {
		t.Fatal(err)
	}
	const n, d, q, k = 900, 6, 20, 3
	recs := randRecords(n, d, 1)
	queries := randQueries(q, d, 2)

	if _, _, err := s.Ingest("c", nil, 2, recs[:600]); err != nil {
		t.Fatal(err)
	}
	want := searchAll(t, s, "c", queries, k)
	c, _ := s.Collection("c")

	f.Inject(errfs.Rule{Op: errfs.OpSync, Path: "wal-"})
	if _, _, err := s.Ingest("c", nil, 0, recs[600:700]); err == nil {
		t.Fatal("ingest succeeded while WAL fsync faults")
	}
	waitFor(t, "collection to degrade", func() bool { return c.healthState() == HealthDegraded })

	// Reads keep serving the pre-fault state; the rejected batch is
	// invisible (its IDs were rolled back).
	if got := searchAll(t, s, "c", queries, k); !reflect.DeepEqual(got, want) {
		t.Fatal("degraded reads differ from the pre-fault snapshot")
	}
	if c.Len() != 600 {
		t.Fatalf("len %d while degraded, want 600", c.Len())
	}
	// Mutations fail closed with the retryable class.
	if _, _, err := s.Ingest("c", nil, 0, recs[600:700]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("degraded ingest err=%v, want ErrUnavailable", err)
	}
	if _, _, err := s.Upsert("c", nil, 0, recs[:10]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("degraded upsert err=%v, want ErrUnavailable", err)
	}
	if _, _, _, err := s.Delete("c", []int{0}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("degraded delete err=%v, want ErrUnavailable", err)
	}
	// Readiness names the degraded collection so the orchestrator
	// drains traffic without restarting the process.
	if err := s.Readiness(); err == nil || !strings.Contains(err.Error(), "c (degraded)") {
		t.Fatalf("Readiness() = %v, want degraded collection named", err)
	}

	f.Clear()
	waitFor(t, "repair probe to reactivate", func() bool { return c.healthState() == HealthActive })
	if c.repairs.Load() == 0 {
		t.Fatal("repair counter did not advance")
	}
	if err := s.Readiness(); err != nil {
		t.Fatalf("Readiness() after repair: %v", err)
	}
	if _, _, err := s.Ingest("c", nil, 0, recs[600:]); err != nil {
		t.Fatalf("ingest after repair: %v", err)
	}
	wantAll := searchAll(t, s, "c", queries, k)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, _ := s2.Collection("c")
	if c2.Len() != n {
		t.Fatalf("recovered %d records, want %d (600 pre-fault + 300 post-repair)", c2.Len(), n)
	}
	if got := searchAll(t, s2, "c", queries, k); !reflect.DeepEqual(got, wantAll) {
		t.Fatal("post-restart answers differ from pre-restart")
	}
}

// TestENOSPCMidCheckpointDegradesNotPanics is the satellite scenario at
// the serving layer: ENOSPC kills a background checkpoint's segment
// write. The collection degrades (no panic, no 5xx on reads), the old
// segment and WAL still recover bit-identically, and once space frees
// a successful checkpoint re-activates the collection.
func TestENOSPCMidCheckpointDegradesNotPanics(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	cfg := faultyConfig(dir, f)
	cfg.CheckpointBytes = 1 // checkpoint after every ingest batch
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n, d, q, k = 800, 5, 20, 3
	recs := randRecords(n, d, 5)
	queries := randQueries(q, d, 6)

	if _, _, err := s.Ingest("c", nil, 2, recs[:400]); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("c")
	colDir := filepath.Join(dir, "c")
	hasSegment := func() bool {
		ents, err := os.ReadDir(colDir)
		if err != nil {
			return false
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "segment-") && strings.HasSuffix(e.Name(), ".seg") {
				return true
			}
		}
		return false
	}
	waitFor(t, "first clean checkpoint segment", hasSegment)

	// Disk "fills": every segment write now dies half-way.
	f.Inject(errfs.Rule{Op: errfs.OpWrite, Path: "segment-", Kind: errfs.KindShortWrite})
	if _, _, err := s.Ingest("c", nil, 0, recs[400:]); err != nil {
		t.Fatalf("ingest (WAL path is healthy): %v", err)
	}
	waitFor(t, "checkpoint failure to degrade the collection", func() bool {
		return c.healthState() == HealthDegraded
	})
	// Reads never see a 5xx: the full acknowledged state keeps serving.
	want := searchAll(t, s, "c", queries, k)
	if c.Len() != n {
		t.Fatalf("len %d while degraded, want %d", c.Len(), n)
	}

	// Space frees; the probe's retried checkpoint must succeed and
	// re-activate the collection.
	f.Clear()
	waitFor(t, "repair probe to reactivate", func() bool { return c.healthState() == HealthActive })

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := searchAll(t, s2, "c", queries, k); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered answers differ from the degraded-but-serving state")
	}
}

// TestScrubberDetectsCorruptionAndSelfHeals: the background scrubber
// finds a flipped bit in a segment, degrades the collection, and the
// repair probe — fresh checkpoint, drop the corrupt file, clean scrub —
// brings it back to active without operator action.
func TestScrubberDetectsCorruptionAndSelfHeals(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.CheckpointBytes = 1
	cfg.ScrubInterval = 20 * time.Millisecond
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := randRecords(500, 5, 7)
	if _, _, err := s.Ingest("c", nil, 2, recs); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("c")
	colDir := filepath.Join(dir, "c")
	newestSegment := func() string {
		ents, _ := os.ReadDir(colDir)
		newest := ""
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "segment-") && strings.HasSuffix(e.Name(), ".seg") {
				newest = e.Name() // ReadDir sorts; last wins
			}
		}
		return newest
	}
	waitFor(t, "checkpoint segment", func() bool { return newestSegment() != "" })
	waitFor(t, "a clean scrub pass", func() bool { return c.scrubs.Load() > 0 })

	// Bit rot.
	seg := filepath.Join(colDir, newestSegment())
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "scrubber to degrade the collection", func() bool { return c.healthState() == HealthDegraded })
	if _, reason := c.healthInfo(); !strings.Contains(reason, "scrub") {
		t.Fatalf("degrade reason %q does not name the scrub", reason)
	}
	if c.scrubErrors.Load() == 0 {
		t.Fatal("scrub error counter did not advance")
	}
	waitFor(t, "self-heal back to active", func() bool { return c.healthState() == HealthActive })
	if c.repairs.Load() == 0 {
		t.Fatal("repair counter did not advance")
	}
	// The healed directory scrubs clean.
	if _, err := c.logHandle().ScrubSegments(); err != nil {
		t.Fatalf("scrub after self-heal: %v", err)
	}
}

// TestQuarantineBoot: with -recover=quarantine an unrecoverable
// collection becomes a 503-serving placeholder — boot succeeds, the
// damaged directory is left byte-for-byte untouched, reads and writes
// both fail with the retryable class, and DELETE discards it. Strict
// mode (the default) still refuses the boot.
func TestQuarantineBoot(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs := randRecords(300, 4, 9)
	if _, _, err := s1.Ingest("bad", nil, 2, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Ingest("good", nil, 2, recs); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt one collection's manifest so recovery cannot trust the
	// directory at all.
	manifest := filepath.Join(dir, "bad", "manifest.json")
	if err := os.WriteFile(manifest, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict: the boot fails loudly.
	if _, err := Open(durableConfig(dir)); err == nil {
		t.Fatal("strict boot succeeded over a corrupt manifest")
	}

	cfg := durableConfig(dir)
	cfg.RecoverMode = RecoverQuarantine
	s2, err := Open(cfg)
	if err != nil {
		t.Fatalf("quarantine boot: %v", err)
	}
	defer s2.Close()
	// The healthy sibling recovered fully.
	g, ok := s2.Collection("good")
	if !ok || g.Len() != 300 || g.healthState() != HealthActive {
		t.Fatalf("sibling collection: ok=%v len=%d state=%v", ok, g.Len(), g.healthState())
	}
	// The damaged one is present, quarantined, and 503s both ways.
	b, ok := s2.Collection("bad")
	if !ok || b.healthState() != HealthQuarantined {
		t.Fatalf("quarantined collection: ok=%v state=%v", ok, b.healthState())
	}
	results, err := s2.Search("bad", randQueries(1, 4, 1), 1, false)
	if err == nil {
		for _, r := range results {
			if r.Err != nil {
				err = r.Err
			}
		}
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("search on quarantined collection err=%v, want ErrUnavailable", err)
	}
	if _, _, err := s2.Ingest("bad", nil, 0, recs[:10]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("ingest on quarantined collection err=%v, want ErrUnavailable", err)
	}
	// A PUT that would re-create it is refused too — shadowing the
	// damaged directory would orphan the operator's forensics.
	if _, err := s2.EnsureCollection("bad", &IndexSpec{Kind: KindExact}, 2); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("EnsureCollection on quarantined err=%v, want ErrUnavailable", err)
	}
	if err := s2.Readiness(); err == nil || !strings.Contains(err.Error(), "bad (quarantined)") {
		t.Fatalf("Readiness() = %v, want quarantined collection named", err)
	}
	// Untouched for forensics: the corrupt manifest is byte-identical.
	got, err := os.ReadFile(manifest)
	if err != nil || string(got) != "{torn" {
		t.Fatalf("quarantined directory was modified: %q %v", got, err)
	}

	// DELETE discards the placeholder and its directory; the name is
	// then free for a fresh collection.
	dropped, err := s2.Drop("bad")
	if !dropped || err != nil {
		t.Fatalf("Drop(quarantined) = %v, %v", dropped, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bad")); !os.IsNotExist(err) {
		t.Fatalf("quarantined directory survived Drop: %v", err)
	}
	if err := s2.Readiness(); err != nil {
		t.Fatalf("Readiness() after dropping the quarantined collection: %v", err)
	}
	if _, _, err := s2.Ingest("bad", nil, 2, recs[:50]); err != nil {
		t.Fatalf("re-creating the dropped name: %v", err)
	}
}

// TestDropWhileDegradedDoesNotDeadlock races DELETE against the repair
// probe of a collection whose disk is still broken: Drop must complete
// promptly (the probe exits on the closed bg channel / ErrClosed), the
// directory must be gone, and the name reusable. Run under -race this
// also pins the probe/close lock ordering.
func TestDropWhileDegradedDoesNotDeadlock(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	s, err := Open(faultyConfig(dir, f))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := randRecords(400, 4, 11)
	if _, _, err := s.Ingest("c", nil, 2, recs[:300]); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("c")

	// Latch the WAL and keep the disk broken, so the repair probe is
	// mid-backoff/mid-failing-repair when Drop lands.
	f.Inject(errfs.Rule{Op: errfs.OpSync, Path: "wal-"})
	if _, _, err := s.Ingest("c", nil, 0, recs[300:310]); err == nil {
		t.Fatal("ingest succeeded under WAL sync fault")
	}
	waitFor(t, "collection to degrade", func() bool { return c.healthState() == HealthDegraded })

	done := make(chan error, 1)
	go func() {
		// The latched log reports its failure at close; the directory
		// must be removed regardless.
		_, err := s.Drop("c")
		done <- err
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drop deadlocked against the repair probe")
	}
	if _, err := os.Stat(filepath.Join(dir, "c")); !os.IsNotExist(err) {
		t.Fatalf("data directory survived Drop: %v", err)
	}
	if _, ok := s.Collection("c"); ok {
		t.Fatal("dropped collection still registered")
	}
	// The name is immediately reusable on the healed disk.
	f.Clear()
	if _, _, err := s.Ingest("c", nil, 2, recs[:50]); err != nil {
		t.Fatalf("re-create after drop: %v", err)
	}
}

// TestHealthzReadyzSplit pins the liveness/readiness contract over
// HTTP: a degraded collection fails readiness but NOT liveness (a
// restart would lose repair progress), /stats and /metrics expose the
// state, and a closed server fails /healthz — the satellite fix for
// the old 200-after-Close bug.
func TestHealthzReadyzSplit(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	if _, _, err := s.Ingest("c", nil, 0, randRecords(50, 4, 13)); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz on live server: %d", st)
	}
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz on ready server: %d", st)
	}

	c, _ := s.Collection("c")
	c.setHealth(HealthDegraded, "test fault")
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatalf("healthz on degraded server: %d, want 200 (liveness must not restart a repairing process)", st)
	}
	st, body := get("/readyz")
	if st != http.StatusServiceUnavailable || !strings.Contains(body, "c (degraded)") {
		t.Fatalf("readyz on degraded server: %d %q", st, body)
	}
	if _, body := get("/stats"); !strings.Contains(body, `"health":"degraded"`) || !strings.Contains(body, "test fault") {
		t.Fatalf("stats does not expose health: %s", body)
	}
	if _, body := get("/metrics"); !strings.Contains(body, `ipsd_collection_health{collection="c",state="degraded"} 1`) {
		t.Fatalf("metrics missing health series:\n%s", body)
	}

	c.setHealth(HealthActive, "")
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatalf("readyz after reactivation: %d", st)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, body = get("/healthz")
	if st != http.StatusServiceUnavailable || !strings.Contains(body, "closed") {
		t.Fatalf("healthz on closed server: %d %q, want 503", st, body)
	}
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("readyz on closed server: %d, want 503", st)
	}
}

// TestDegradedMutation503WithRetryAfter pins the wire contract the
// loadgen retry client consumes: a mutation against a degraded
// collection answers 503 with a Retry-After hint and an error body.
func TestDegradedMutation503WithRetryAfter(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()
	if _, _, err := s.Ingest("c", nil, 0, randRecords(50, 4, 13)); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("c")
	c.setHealth(HealthDegraded, "test fault")

	id := 7
	body, _ := json.Marshal(IngestRequest{Records: []RecordJSON{{ID: &id, Vec: []float64{1, 2, 3, 4}}}})
	resp, err := http.Post(ts.URL+"/collections/c/vectors", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("upsert on degraded collection: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}
	// Reads still answer 200.
	q, _ := json.Marshal(SearchRequest{Q: []float64{1, 0, 0, 0}, K: 1})
	resp2, err := http.Post(ts.URL+"/collections/c/search", "application/json", strings.NewReader(string(q)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("search on degraded collection: %d, want 200", resp2.StatusCode)
	}
}
