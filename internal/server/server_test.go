package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/flat"
	"repro/internal/mips"
	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// records wraps vectors as store records with sequential IDs.
func records(vs []vec.Vector, base int) []store.Record {
	recs := make([]store.Record, len(vs))
	for i, v := range vs {
		recs[i] = store.Record{ID: base + i, Vec: v}
	}
	return recs
}

// exactTopK is the reference answer: full scan with the canonical
// (score descending, ID ascending) ordering.
func exactTopK(recs []store.Record, q vec.Vector, k int, unsigned bool) []Hit {
	acc := flat.NewAcc(k)
	for _, r := range recs {
		v := vec.Dot(r.Vec, q)
		if unsigned && v < 0 {
			v = -v
		}
		acc.Offer(r.ID, v)
	}
	return flatHits(acc.Hits())
}

func TestMergeTopK(t *testing.T) {
	lists := [][]Hit{
		{{ID: 0, Score: 9}, {ID: 4, Score: 5}, {ID: 8, Score: 1}},
		{{ID: 1, Score: 9}, {ID: 5, Score: 5}},
		{},
		{{ID: 2, Score: 7}},
	}
	got := mergeTopK(lists, 4)
	want := []Hit{{ID: 0, Score: 9}, {ID: 1, Score: 9}, {ID: 2, Score: 7}, {ID: 4, Score: 5}}
	if len(got) != len(want) {
		t.Fatalf("merged %d hits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got := mergeTopK(lists, 100); len(got) != 6 {
		t.Fatalf("over-asking returned %d hits, want 6", len(got))
	}
}

// TestShardedMatchesLinearScan is the shard-merge correctness test:
// the sharded top-k must equal the unsharded exact answer, with top-1
// checked against mips.LinearScan.
func TestShardedMatchesLinearScan(t *testing.T) {
	rng := xrand.New(7)
	data := dataset.Gaussian(rng, 500, 12, false)
	queries := dataset.Gaussian(rng, 40, 12, false)

	for _, nshards := range []int{1, 4, 7} {
		s := New(Config{DefaultShards: nshards, CacheCapacity: -1})
		defer s.Close()
		if _, _, err := s.Ingest("items", &IndexSpec{Kind: KindExact}, nshards, records(data, 0)); err != nil {
			t.Fatalf("shards=%d: ingest: %v", nshards, err)
		}
		results, err := s.Search("items", queries, 10, false)
		if err != nil {
			t.Fatalf("shards=%d: search: %v", nshards, err)
		}
		for qi, res := range results {
			if res.Err != nil {
				t.Fatalf("shards=%d query %d: %v", nshards, qi, res.Err)
			}
			want := exactTopK(records(data, 0), queries[qi], 10, false)
			if len(res.Hits) != len(want) {
				t.Fatalf("shards=%d query %d: %d hits, want %d", nshards, qi, len(res.Hits), len(want))
			}
			for i := range want {
				if res.Hits[i] != want[i] {
					t.Fatalf("shards=%d query %d hit %d: got %+v, want %+v",
						nshards, qi, i, res.Hits[i], want[i])
				}
			}
			// Top-1 against the mips package's linear scan baseline.
			ls := mips.LinearScan(data, queries[qi])
			if res.Hits[0].ID != ls.Index || res.Hits[0].Score != ls.Value {
				t.Fatalf("shards=%d query %d: top-1 (%d, %v), LinearScan (%d, %v)",
					nshards, qi, res.Hits[0].ID, res.Hits[0].Score, ls.Index, ls.Value)
			}
		}
	}
}

// TestNormScanMatchesExact checks the norm-pruned per-shard engine
// returns exactly the full-scan answer on skewed-norm data.
func TestNormScanMatchesExact(t *testing.T) {
	rng := xrand.New(11)
	lf := dataset.NewLatentFactor(rng, 400, 30, 10, 1.0)
	s := New(Config{})
	defer s.Close()
	if _, _, err := s.Ingest("items", &IndexSpec{Kind: KindNormScan}, 3, records(lf.Items, 0)); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	for _, unsigned := range []bool{false, true} {
		results, err := s.Search("items", lf.Users, 5, unsigned)
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		for qi, res := range results {
			want := exactTopK(records(lf.Items, 0), lf.Users[qi], 5, unsigned)
			for i := range want {
				if res.Hits[i] != want[i] {
					t.Fatalf("unsigned=%v query %d hit %d: got %+v, want %+v",
						unsigned, qi, i, res.Hits[i], want[i])
				}
			}
		}
	}
}

// TestConcurrentIngestSearch hammers one collection with concurrent
// ingest batches and search batches; run under -race it checks the
// snapshot discipline, and every answer must be internally consistent
// (scores exactly verified against a relation snapshot).
func TestConcurrentIngestSearch(t *testing.T) {
	rng := xrand.New(3)
	dim := 8
	s := New(Config{DefaultShards: 4, CacheCapacity: 64})
	defer s.Close()

	// Seed the collection so searches always have data.
	if _, _, err := s.Ingest("live", &IndexSpec{Kind: KindExact}, 4,
		records(dataset.Gaussian(rng, 50, dim, false), 0)); err != nil {
		t.Fatalf("seed ingest: %v", err)
	}

	const (
		writers        = 3
		readers        = 4
		batchesPerGoro = 8
		batchSize      = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(100 + w))
			for b := 0; b < batchesPerGoro; b++ {
				base := 1000 + (w*batchesPerGoro+b)*batchSize
				vs := dataset.Gaussian(r, batchSize, dim, false)
				if _, _, err := s.Ingest("live", nil, 0, records(vs, base)); err != nil {
					errc <- fmt.Errorf("writer %d batch %d: %w", w, b, err)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(200 + g))
			col, _ := s.Collection("live")
			for b := 0; b < batchesPerGoro; b++ {
				qs := dataset.Gaussian(r, 10, dim, false)
				results, err := s.Search("live", qs, 3, false)
				if err != nil {
					errc <- fmt.Errorf("reader %d batch %d: %w", g, b, err)
					return
				}
				rel, _ := col.Relation()
				byID := make(map[int]vec.Vector, len(rel.Recs))
				for _, rec := range rel.Recs {
					byID[rec.ID] = rec.Vec
				}
				for qi, res := range results {
					if res.Err != nil {
						errc <- fmt.Errorf("reader %d query %d: %w", g, qi, res.Err)
						return
					}
					for _, h := range res.Hits {
						p, ok := byID[h.ID]
						if !ok {
							// The hit predates this relation snapshot only if
							// IDs were removed, which never happens.
							errc <- fmt.Errorf("reader %d: hit ID %d not in relation", g, h.ID)
							return
						}
						if got := vec.Dot(p, qs[qi]); got != h.Score {
							errc <- fmt.Errorf("reader %d: hit %d score %v, dot %v", g, h.ID, h.Score, got)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := s.Stats()
	cs := st.Collections["live"]
	if cs.Records != 50+writers*batchesPerGoro*batchSize {
		t.Fatalf("final record count %d, want %d", cs.Records, 50+writers*batchesPerGoro*batchSize)
	}
	total := 0
	for _, sh := range cs.Shards {
		total += sh.Records
	}
	if total != cs.Records {
		t.Fatalf("shard sizes sum to %d, want %d", total, cs.Records)
	}
}

func TestCacheHitAndInvalidation(t *testing.T) {
	rng := xrand.New(5)
	data := dataset.Gaussian(rng, 60, 6, false)
	q := dataset.Gaussian(rng, 1, 6, false)

	s := New(Config{DefaultShards: 2, CacheCapacity: 16})
	defer s.Close()
	if _, _, err := s.Ingest("c", nil, 0, records(data, 0)); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	first, err := s.Search("c", q, 3, false)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if first[0].Cached {
		t.Fatal("first search reported a cache hit")
	}
	second, err := s.Search("c", q, 3, false)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if !second[0].Cached {
		t.Fatal("repeat search missed the cache")
	}

	// Ingest a dominating vector; the cache must be invalidated and the
	// fresh answer must surface the new record.
	big := vec.Scaled(vec.Normalized(q[0]), 100)
	_, invalidated, err := s.Ingest("c", nil, 0, []store.Record{{ID: 999, Vec: big}})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if invalidated == 0 {
		t.Fatal("ingest invalidated no cache entries")
	}
	third, err := s.Search("c", q, 3, false)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if third[0].Cached {
		t.Fatal("post-ingest search served a stale cache entry")
	}
	if third[0].Hits[0].ID != 999 {
		t.Fatalf("post-ingest top hit %d, want 999", third[0].Hits[0].ID)
	}
}

func TestDuplicateAndAutoIDs(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	v := vec.Vector{1, 0}
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{{ID: 7, Vec: v}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{{ID: 7, Vec: v}}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// A rejected batch must leave no trace: ID 10 was reserved before
	// the duplicate 7 aborted the batch, and must be free again.
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{
		{ID: 10, Vec: v}, {ID: 7, Vec: v},
	}); err == nil {
		t.Fatal("duplicate ID in batch accepted")
	}
	col, _ := s.Collection("c")
	if col.Len() != 1 {
		t.Fatalf("failed batch published records: %d, want 1", col.Len())
	}
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{{ID: 10, Vec: v}}); err != nil {
		t.Fatalf("re-ingest after failed batch: %v", err)
	}
	// Auto IDs skip taken ones.
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{
		{ID: AutoID, Vec: vec.Vector{0, 1}},
		{ID: AutoID, Vec: vec.Vector{0.5, 0.5}},
	}); err != nil {
		t.Fatalf("auto-ID ingest: %v", err)
	}
	if col.Len() != 4 {
		t.Fatalf("collection has %d records, want 4", col.Len())
	}
}

func TestShardPrepareFailureLeavesSnapshot(t *testing.T) {
	sh := newShard(0, 1, defaultOverfetch)
	defer sh.close()
	if err := func() error {
		snap, err := sh.prepare(IndexSpec{Kind: KindExact}, []int{0}, []vec.Vector{{1, 0}})
		if err != nil {
			return err
		}
		sh.commit(snap)
		return nil
	}(); err != nil {
		t.Fatalf("seed prepare: %v", err)
	}
	// A failing build must not disturb the published snapshot.
	if _, err := sh.prepare(IndexSpec{Kind: "bogus"}, []int{1}, []vec.Vector{{0, 1}}); err == nil {
		t.Fatal("bogus index kind built")
	}
	if sh.size() != 1 {
		t.Fatalf("failed prepare changed shard size to %d", sh.size())
	}
	hits, err := sh.topK(context.Background(), vec.Vector{1, 0}, 1, false, 1, false, nil)
	if err != nil || len(hits) != 1 || hits[0].ID != 0 {
		t.Fatalf("shard unusable after failed prepare: hits=%v err=%v", hits, err)
	}
}

func TestIngestAfterCloseFailsCleanly(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{{ID: 0, Vec: vec.Vector{1}}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	col, _ := s.Collection("c")
	s.Close()
	// A stale handle must get an error, not a panic on a closed channel.
	if _, err := col.Ingest([]store.Record{{ID: 1, Vec: vec.Vector{2}}}); err == nil {
		t.Fatal("ingest on closed collection succeeded")
	}
	// The server must not respawn collections after Close.
	if _, _, err := s.Ingest("fresh", nil, 0, []store.Record{{ID: 0, Vec: vec.Vector{1}}}); err == nil {
		t.Fatal("ingest on closed server succeeded")
	}
	// Reads keep working against the final snapshots.
	if hits, err := col.SearchOne(context.Background(), nil, vec.Vector{1}, 1, false); err != nil || len(hits) != 1 {
		t.Fatalf("search on closed collection: hits=%v err=%v", hits, err)
	}
}

func TestIndexSpecValidate(t *testing.T) {
	bad := []IndexSpec{
		{Kind: "bogus"},
		{Kind: KindALSH, K: -1},
		{Kind: KindSketch, Kappa: 1.5},
		{Kind: KindSketch, Copies: -2},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Fatalf("spec %+v validated", sp)
		}
	}
	good := []IndexSpec{{}, {Kind: KindExact}, {Kind: KindSketch, Kappa: 2.5, Copies: 5}}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Fatalf("spec %+v rejected: %v", sp, err)
		}
	}
}

func TestJoinEndToEnd(t *testing.T) {
	rng := xrand.New(9)
	P, Q, plantedAt := dataset.Planted(rng, 80, 20, 10, 0.9, []int{2, 5, 11})
	s := New(Config{})
	defer s.Close()
	if _, _, err := s.Ingest("data", nil, 0, records(P, 0)); err != nil {
		t.Fatalf("ingest P: %v", err)
	}
	if _, _, err := s.Ingest("queries", nil, 0, records(Q, 0)); err != nil {
		t.Fatalf("ingest Q: %v", err)
	}
	resp, err := s.Join(JoinRequest{Data: "data", Queries: "queries", Engine: "exact", S: 0.8, C: 0.9})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	found := make(map[int]int)
	for _, p := range resp.Pairs {
		found[p.QueryID] = p.DataID
	}
	for qi, pi := range plantedAt {
		if found[qi] != pi {
			t.Fatalf("planted pair (q=%d, p=%d) not reported; got %v", qi, pi, resp.Pairs)
		}
	}
}

func TestSearcherIndexAdapter(t *testing.T) {
	rng := xrand.New(13)
	data := dataset.Gaussian(rng, 100, 8, true)
	sp := core.Spec{Variant: core.Signed, S: 0.9, C: 1}
	ix, err := FromSearchBuilder(core.ExactSearch{}, data, sp)
	if err != nil {
		t.Fatalf("FromSearchBuilder: %v", err)
	}
	q := vec.Normalized(data[17])
	hits, err := ix.TopK(context.Background(), q, 1, false, 1)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(hits) != 1 || hits[0].ID != 17 {
		t.Fatalf("adapter returned %+v, want data index 17", hits)
	}
}
