package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vec"
)

// NewHandler wires the server's HTTP/JSON API:
//
//	PUT  /collections/{name}          bulk ingest (creates on first use)
//	DELETE /collections/{name}        drop the collection and its data dir
//	PUT  /collections/{name}/vectors/{id}    upsert one record by ID
//	DELETE /collections/{name}/vectors/{id}  delete one record by ID
//	POST /collections/{name}/vectors         batch upsert (explicit IDs)
//	POST /collections/{name}/vectors/delete  batch delete by ID list
//	POST /collections/{name}/search   top-k MIPS, single or batched
//	POST /collections/{a}/join/{b}    (cs, s) join: {a} is the data
//	                                  collection P, {b} the queries Q
//	POST /collections/{name}/join     self-join of {name}, identity
//	                                  pairs excluded
//	POST /join                        body-addressed join (data/queries
//	                                  named in the request body)
//	GET  /healthz                     liveness (503 once the server closes)
//	GET  /readyz                      readiness (503 while any collection
//	                                  is degraded or quarantined)
//	GET  /stats                       shard sizes, query counts, latency
//	GET  /metrics                     Prometheus text exposition
//
// Every route is instrumented (per-route latency histogram + status
// counts, served at /metrics), and mutating routes cap their request
// body at Config.MaxBodyBytes (default 32 MiB; oversized bodies get a
// structured 413).
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	hm := newHTTPMetrics()
	maxBody := s.cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = defaultMaxBodyBytes
	}
	route := func(pattern, label string, h http.HandlerFunc, limited bool) {
		if limited && maxBody > 0 {
			h = limitBody(maxBody, h)
		}
		mux.HandleFunc(pattern, instrument(s, hm, label, h))
	}
	route("PUT /collections/{name}", "ingest", s.handleIngest, true)
	route("DELETE /collections/{name}", "drop", s.handleDrop, false)
	route("PUT /collections/{name}/vectors/{id}", "upsert_one", s.handleUpsertOne, true)
	route("DELETE /collections/{name}/vectors/{id}", "delete_one", s.handleDeleteOne, false)
	route("POST /collections/{name}/vectors", "upsert_batch", s.handleUpsertBatch, true)
	route("POST /collections/{name}/vectors/delete", "delete_batch", s.handleDeleteBatch, true)
	route("POST /collections/{name}/search", "search", s.handleSearch, false)
	route("POST /collections/{a}/join/{b}", "join", s.handleJoinPath, false)
	route("POST /collections/{name}/join", "join", s.handleSelfJoin, false)
	route("POST /join", "join", s.handleJoin, false)
	route("GET /healthz", "healthz", s.handleHealthz, false)
	route("GET /readyz", "readyz", s.handleReadyz, false)
	route("GET /stats", "stats", s.handleStats, false)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		s.handleMetrics(hm, w, r)
	})
	// The debug plane is deliberately outside instrument(): polling
	// /debug/requests must not mint traces of itself or skew the
	// per-route latency histograms.
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	return mux
}

// defaultMaxBodyBytes caps mutating request bodies when the config
// leaves Config.MaxBodyBytes zero.
const defaultMaxBodyBytes = 32 << 20

// limitBody wraps a handler so its request body reads past max fail
// with *http.MaxBytesError (surfaced as a 413 by bodyError).
func limitBody(max int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, max)
		h(w, r)
	}
}

// statusRecorder captures the status a handler wrote so the metrics
// middleware can count it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-route metrics — latency
// histogram, status-class counters, the server-wide in-flight gauge —
// and, when tracing is on, a per-request trace: W3C traceparent is
// honored inbound and echoed outbound, the trace rides the request
// context through every stage, and the finished trace lands in the
// debug registry, the stage histograms, and (past the threshold) the
// slow-query log. With tracing off the request path is exactly the
// pre-tracing one: no trace allocation, no context wrapping.
func instrument(s *Server, hm *httpMetrics, label string, h http.HandlerFunc) http.HandlerFunc {
	rm := hm.register(label)
	return func(w http.ResponseWriter, r *http.Request) {
		hm.inflight.Add(1)
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if s.traces == nil {
			h(sr, r)
			rm.observe(sr.status, time.Since(start))
			hm.inflight.Add(-1)
			return
		}
		tr := trace.New(label, r.Header.Get("traceparent"))
		w.Header().Set("Traceparent", tr.Traceparent())
		s.traces.Start(tr)
		h(sr, r.WithContext(trace.NewContext(r.Context(), tr)))
		d := time.Since(start)
		tr.Finish(sr.status, d)
		s.traces.Finish(tr)
		s.recordTrace(tr)
		s.maybeLogSlow(tr)
		rm.observe(sr.status, d)
		hm.inflight.Add(-1)
	}
}

// DebugRequests is the GET /debug/requests body: requests in flight
// right now plus the most recent finished traces, grouped by route.
type DebugRequests struct {
	Active []trace.Exported            `json:"active"`
	Recent map[string][]trace.Exported `json:"recent"`
}

// handleDebugRequests serves GET /debug/requests from the trace
// registry: in-flight requests (oldest first — the stuck ones surface
// at the top) and the per-route rings of recent traces (newest first).
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	active := s.traces.Active()
	resp := DebugRequests{
		Active: make([]trace.Exported, 0, len(active)),
		Recent: make(map[string][]trace.Exported),
	}
	for _, tr := range active {
		resp.Active = append(resp.Active, tr.Export())
	}
	routes, byRoute := s.traces.Recent()
	for _, route := range routes {
		exps := make([]trace.Exported, 0, len(byRoute[route]))
		for _, tr := range byRoute[route] {
			exps = append(exps, tr.Export())
		}
		resp.Recent[route] = exps
	}
	writeJSON(w, http.StatusOK, resp)
}

var errTracingDisabled = errors.New("server: tracing is disabled")

// handleDebugTrace serves GET /debug/trace/{id}: the full span tree of
// one request, active or recently finished, by trace id (as reported in
// slow-query log lines, explain output, and Traceparent response
// headers).
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		httpError(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	id := r.PathValue("id")
	tr := s.traces.Lookup(id)
	if tr == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("server: no trace %q (buffer holds the most recent per route)", id))
		return
	}
	writeJSON(w, http.StatusOK, tr.Export())
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(hm *httpMetrics, w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s, hm)
}

// requestCtx derives the query's working context from the HTTP request:
// the client's timeout_ms wins when positive (even when longer than
// the server default), otherwise Config.DefaultTimeout applies; zero
// both ways leaves only the connection's own cancellation. The cancel
// func must always be called.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// queryStatus maps a search/join failure to its HTTP status: shed
// queries are 429 (retryable now), deadline/cancellation 504, server
// faults 503, everything else a plain 400.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// hintRetry attaches a Retry-After header to the retryable status
// classes — 429 (shed) and 503 (degraded/closing/quarantined) — so
// well-behaved clients back off instead of hammering a server that
// already said "not now".
func hintRetry(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
}

// queryError writes a search/join failure, attaching Retry-After to
// the retryable (429/503) responses so well-behaved clients back off.
func queryError(w http.ResponseWriter, err error) {
	status := queryStatus(err)
	hintRetry(w, status)
	httpError(w, status, err)
}

// bodyError writes a request-body decode failure: 413 when the body
// limiter tripped, 400 otherwise.
func bodyError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		status = http.StatusRequestEntityTooLarge
	}
	httpError(w, status, fmt.Errorf("decoding body: %w", err))
}

// RecordJSON is a record on the wire. A missing "id" asks the server
// to assign one.
type RecordJSON struct {
	ID    *int              `json:"id,omitempty"`
	Vec   []float64         `json:"vec"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// IngestRequest is the PUT /collections/{name} body.
type IngestRequest struct {
	// Index and Shards configure the collection on first use; on an
	// existing collection they must match or be omitted.
	Index   *IndexSpec   `json:"index,omitempty"`
	Shards  int          `json:"shards,omitempty"`
	Records []RecordJSON `json:"records"`
}

// IngestResponse reports the ingest outcome.
type IngestResponse struct {
	Collection  string `json:"collection"`
	Appended    int    `json:"appended"`
	Records     int    `json:"records"`
	Version     uint64 `json:"version"`
	Invalidated int    `json:"invalidated"`
}

// SearchRequest is the POST /collections/{name}/search body. Exactly
// one of Q (single query) or Queries (batch) must be set.
type SearchRequest struct {
	Q        []float64   `json:"q,omitempty"`
	Queries  [][]float64 `json:"queries,omitempty"`
	K        int         `json:"k,omitempty"` // default 1
	Unsigned bool        `json:"unsigned,omitempty"`
	// Rerank asks a quantized (f32) collection for exact re-ranked
	// scores; int8 collections always re-rank, f64 ones ignore it.
	Rerank bool `json:"rerank,omitempty"`
	// TimeoutMS is the client's deadline for the whole request in
	// milliseconds; it overrides the server's default timeout (in both
	// directions). Zero means use the default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Explain asks for a per-shard execution breakdown (rows scanned,
	// blocks pruned, rerank candidates, per-stage timings) alongside the
	// hits. Single-query requests only; it works even when server-side
	// tracing is disabled.
	Explain bool `json:"explain,omitempty"`
}

// SearchResponse reports search hits: Matches for a single query,
// Results (one list per query, in order) for a batch.
type SearchResponse struct {
	Matches []Hit   `json:"matches,omitempty"`
	Results [][]Hit `json:"results,omitempty"`
	Cached  int     `json:"cached"`
	TookMS  float64 `json:"took_ms"`
	// Explain is present iff the request set "explain": true.
	Explain *QueryExplain `json:"explain,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	recs := make([]store.Record, len(req.Records))
	for i, rj := range req.Records {
		id := AutoID
		if rj.ID != nil {
			id = *rj.ID
		}
		recs[i] = store.Record{ID: id, Vec: vec.Vector(rj.Vec), Attrs: rj.Attrs}
	}
	version, invalidated, err := s.Ingest(name, req.Index, req.Shards, recs)
	if err != nil {
		// Server faults (WAL/disk failure, shutdown, concurrent drop)
		// are retryable 503s; everything else really is a malformed
		// request (bad dimension, duplicate ID, spec mismatch).
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnavailable) {
			status = http.StatusServiceUnavailable
		}
		hintRetry(w, status)
		httpError(w, status, err)
		return
	}
	total := len(recs)
	if c, ok := s.Collection(name); ok {
		total = c.Len()
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Collection:  name,
		Appended:    len(recs),
		Records:     total,
		Version:     version,
		Invalidated: invalidated,
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	single := len(req.Q) > 0
	if single == (len(req.Queries) > 0) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("set exactly one of \"q\" and \"queries\""))
		return
	}
	if req.Explain && !single {
		httpError(w, http.StatusBadRequest, fmt.Errorf("\"explain\" supports single-query requests only"))
		return
	}
	k := req.K
	if k == 0 {
		k = 1
	}
	queries := req.Queries
	if single {
		queries = [][]float64{req.Q}
	}
	qs := make([]vec.Vector, len(queries))
	for i, q := range queries {
		qs[i] = vec.Vector(q)
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	if req.Explain && trace.FromContext(ctx) == nil {
		// Explain wants stage timings even when server-side tracing is
		// off: give this one request a private trace. It is never
		// registered, so it costs nothing beyond the request itself.
		ctx = trace.NewContext(ctx, trace.New("search", r.Header.Get("traceparent")))
	}
	start := time.Now()
	results, err := s.SearchWithOpts(ctx, name, qs, SearchOpts{K: k, Unsigned: req.Unsigned, Rerank: req.Rerank, Explain: req.Explain})
	if err != nil {
		if _, ok := s.Collection(name); !ok {
			httpError(w, http.StatusNotFound, err)
			return
		}
		queryError(w, err)
		return
	}
	resp := SearchResponse{TookMS: float64(time.Since(start)) / float64(time.Millisecond)}
	lists := make([][]Hit, len(results))
	for i, res := range results {
		if res.Err != nil {
			queryError(w, res.Err)
			return
		}
		for _, h := range res.Hits {
			// Overflowing queries (finite on the wire, ±Inf/NaN after the
			// inner product) would otherwise kill the JSON encoder
			// mid-response; reject them as client errors instead.
			if math.IsInf(h.Score, 0) || math.IsNaN(h.Score) {
				httpError(w, http.StatusBadRequest,
					fmt.Errorf("query %d produced a non-finite score for record %d", i, h.ID))
				return
			}
		}
		if res.Cached {
			resp.Cached++
		}
		if res.Hits == nil {
			lists[i] = []Hit{} // keep JSON arrays, not nulls
		} else {
			lists[i] = res.Hits
		}
	}
	if single {
		resp.Matches = lists[0]
		if qe := results[0].Explain; qe != nil {
			qe.StageMicros = stageMicros(trace.FromContext(ctx))
			resp.Explain = qe
		}
	} else {
		resp.Results = lists
	}
	writeJSON(w, http.StatusOK, resp)
}

// UpsertResponse reports an upsert outcome. Records is the live count
// after the batch (replacements don't grow it, inserts do).
type UpsertResponse struct {
	Collection  string `json:"collection"`
	Upserted    int    `json:"upserted"`
	Records     int    `json:"records"`
	Version     uint64 `json:"version"`
	Invalidated int    `json:"invalidated"`
}

// DeleteVectorsRequest is the POST /collections/{name}/vectors/delete
// body.
type DeleteVectorsRequest struct {
	IDs []int `json:"ids"`
}

// DeleteVectorsResponse reports a delete outcome. Deleted counts the
// records actually removed (unknown IDs are no-ops); Records is the
// live count afterwards.
type DeleteVectorsResponse struct {
	Collection  string `json:"collection"`
	Deleted     int    `json:"deleted"`
	Records     int    `json:"records"`
	Version     uint64 `json:"version"`
	Invalidated int    `json:"invalidated"`
}

// mutationStatus maps an upsert/delete failure to its HTTP status.
func mutationStatus(err error) int {
	if errors.Is(err, ErrUnavailable) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// serveUpsert runs an upsert batch and writes the response; shared by
// the single-record and batch routes.
func (s *Server) serveUpsert(w http.ResponseWriter, name string, spec *IndexSpec, shards int, recs []store.Record) {
	version, invalidated, err := s.Upsert(name, spec, shards, recs)
	if err != nil {
		status := mutationStatus(err)
		hintRetry(w, status)
		httpError(w, status, err)
		return
	}
	total := len(recs)
	if c, ok := s.Collection(name); ok {
		total = c.Len()
	}
	writeJSON(w, http.StatusOK, UpsertResponse{
		Collection:  name,
		Upserted:    len(recs),
		Records:     total,
		Version:     version,
		Invalidated: invalidated,
	})
}

// handleUpsertOne serves PUT /collections/{name}/vectors/{id}: insert
// or replace a single record. The body is a RecordJSON; a body "id"
// must agree with the path.
func (s *Server) handleUpsertOne(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("record id: %w", err))
		return
	}
	var rj RecordJSON
	if err := json.NewDecoder(r.Body).Decode(&rj); err != nil {
		bodyError(w, err)
		return
	}
	if rj.ID != nil && *rj.ID != id {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("body id %d disagrees with path id %d", *rj.ID, id))
		return
	}
	s.serveUpsert(w, name, nil, 0, []store.Record{{ID: id, Vec: vec.Vector(rj.Vec), Attrs: rj.Attrs}})
}

// handleUpsertBatch serves POST /collections/{name}/vectors: an
// IngestRequest-shaped body whose records must all carry explicit IDs.
func (s *Server) handleUpsertBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	recs := make([]store.Record, len(req.Records))
	for i, rj := range req.Records {
		if rj.ID == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("record %d: upsert requires an id", i))
			return
		}
		recs[i] = store.Record{ID: *rj.ID, Vec: vec.Vector(rj.Vec), Attrs: rj.Attrs}
	}
	s.serveUpsert(w, name, req.Index, req.Shards, recs)
}

// handleDeleteOne serves DELETE /collections/{name}/vectors/{id}. An
// ID that is not live (never ingested, or already deleted) is a 404.
func (s *Server) handleDeleteOne(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("record id: %w", err))
		return
	}
	version, deleted, invalidated, err := s.Delete(name, []int{id})
	if err != nil {
		status := mutationStatus(err)
		if _, ok := s.Collection(name); !ok {
			status = http.StatusNotFound
		}
		hintRetry(w, status)
		httpError(w, status, err)
		return
	}
	if deleted == 0 {
		httpError(w, http.StatusNotFound, fmt.Errorf("server: collection %q has no record %d", name, id))
		return
	}
	total := 0
	if c, ok := s.Collection(name); ok {
		total = c.Len()
	}
	writeJSON(w, http.StatusOK, DeleteVectorsResponse{
		Collection:  name,
		Deleted:     deleted,
		Records:     total,
		Version:     version,
		Invalidated: invalidated,
	})
}

// handleDeleteBatch serves POST /collections/{name}/vectors/delete.
// Unknown IDs are no-ops, so the route is idempotent; Deleted reports
// how many records the call actually removed.
func (s *Server) handleDeleteBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req DeleteVectorsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	version, deleted, invalidated, err := s.Delete(name, req.IDs)
	if err != nil {
		status := mutationStatus(err)
		if _, ok := s.Collection(name); !ok {
			status = http.StatusNotFound
		}
		hintRetry(w, status)
		httpError(w, status, err)
		return
	}
	total := 0
	if c, ok := s.Collection(name); ok {
		total = c.Len()
	}
	writeJSON(w, http.StatusOK, DeleteVectorsResponse{
		Collection:  name,
		Deleted:     deleted,
		Records:     total,
		Version:     version,
		Invalidated: invalidated,
	})
}

// handleJoin serves the body-addressed POST /join route.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	s.serveJoin(w, r, req)
}

// handleJoinPath serves POST /collections/{a}/join/{b}: {a} is the data
// collection P, {b} the queries collection Q; naming the same
// collection twice is a self-join (identity pairs kept unless the body
// sets exclude_self).
func (s *Server) handleJoinPath(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	req.Data = r.PathValue("a")
	req.Queries = r.PathValue("b")
	s.serveJoin(w, r, req)
}

// handleSelfJoin serves POST /collections/{name}/join: a self-join of
// {name} with identity pairs always excluded.
func (s *Server) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		bodyError(w, err)
		return
	}
	s.serveJoin(w, r, selfJoinRequest(r.PathValue("name"), req))
}

// serveJoin runs a resolved join request and writes the response. A
// named-but-unknown collection maps to 404; shed joins 429, expired
// ones 504; every other rejection — including a body that omits the
// collection names on the legacy /join route — stays a 400.
func (s *Server) serveJoin(w http.ResponseWriter, r *http.Request, req JoinRequest) {
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	resp, err := s.JoinCtx(ctx, req)
	if err != nil {
		if _, ok := s.Collection(req.Data); !ok && req.Data != "" {
			httpError(w, http.StatusNotFound, err)
			return
		}
		if _, ok := s.Collection(req.Queries); !ok && req.Queries != "" {
			httpError(w, http.StatusNotFound, err)
			return
		}
		queryError(w, err)
		return
	}
	for _, p := range resp.Pairs {
		if math.IsInf(p.Value, 0) || math.IsNaN(p.Value) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("join produced a non-finite value for pair (%d, %d)", p.DataID, p.QueryID))
			return
		}
	}
	if resp.Pairs == nil {
		resp.Pairs = []JoinPair{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// DropResponse reports a DELETE /collections/{name}. Dropped is true
// whenever the collection was removed from serving; Warning carries a
// data-directory cleanup failure (the drop itself still happened — a
// retry would 404 — so this is not reported as an error status).
type DropResponse struct {
	Collection string `json:"collection"`
	Dropped    bool   `json:"dropped"`
	Warning    string `json:"warning,omitempty"`
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	found, err := s.Drop(name)
	if !found {
		httpError(w, http.StatusNotFound, fmt.Errorf("server: unknown collection %q", name))
		return
	}
	resp := DropResponse{Collection: name, Dropped: true}
	if err != nil {
		resp.Warning = fmt.Sprintf("data directory cleanup: %v", err)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness only: is this process able to serve HTTP
// at all? A closed server says no (503) so orchestrators stop routing
// to and eventually replace it; degraded/quarantined collections do
// NOT fail liveness — restarting a process that is mid-repair would
// only lose the repair progress. Readiness lives at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "closed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"collections": s.Collections(),
	})
}

// handleReadyz is readiness: should a load balancer send traffic here?
// Ready means open and every collection active; a degraded or
// quarantined collection 503s with the offending collections named, so
// traffic prefers replicas that can serve everything.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.Readiness(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unready",
			"reason": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// jsonBufPool recycles response buffers so steady-state serving does
// not allocate (and regrow) an encoder buffer per response. Buffers
// that ballooned on a huge response are dropped rather than pooled.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledJSONBuf = 1 << 20

// writeJSON encodes into a pooled buffer first: once WriteHeader has
// fired, an encoder error (e.g. a non-finite float that slipped past
// the handler checks) could not be reported, and the client would see
// a truncated 200. Buffering turns that into a clean 500 with a
// structured body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		buf.Reset()
		status = http.StatusInternalServerError
		_ = json.NewEncoder(buf).Encode(map[string]string{
			"error": fmt.Sprintf("encoding response: %v", err),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledJSONBuf {
		jsonBufPool.Put(buf)
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
