package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func durableConfig(dir string) Config {
	return Config{
		DataDir:         dir,
		Fsync:           "always",
		CheckpointBytes: 1 << 30, // tests trigger checkpoints explicitly via size overrides
	}
}

func randRecords(n, d int, seed uint64) []store.Record {
	rng := xrand.New(seed)
	recs := make([]store.Record, n)
	for i := range recs {
		v := make(vec.Vector, d)
		for j := range v {
			v[j] = rng.Normal()
		}
		recs[i] = store.Record{ID: i, Vec: v}
		if i%5 == 0 {
			recs[i].Attrs = map[string]string{"tag": fmt.Sprintf("t%d", i)}
		}
	}
	return recs
}

func randQueries(q, d int, seed uint64) []vec.Vector {
	rng := xrand.New(seed)
	out := make([]vec.Vector, q)
	for i := range out {
		out[i] = vec.Vector(rng.NormalVec(d))
	}
	return out
}

// searchAll answers every query, failing the test on errors.
func searchAll(t *testing.T, s *Server, name string, queries []vec.Vector, k int) [][]Hit {
	t.Helper()
	results, err := s.Search(name, queries, k, false)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Hit, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		out[i] = r.Hits
	}
	return out
}

// TestRestartRecoversCollections is the core durability contract: a
// closed durable server reopens with every collection — spec, shard
// count, records — intact, and serves bit-identical search results.
func TestRestartRecoversCollections(t *testing.T) {
	dir := t.TempDir()
	const n, d, q, k = 3000, 8, 40, 5
	recs := randRecords(n, d, 1)
	queries := randQueries(q, d, 2)

	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Two collections with different specs/shard counts, ingested in
	// several batches.
	for lo := 0; lo < n; lo += 700 {
		hi := min(lo+700, n)
		if _, _, err := s1.Ingest("exact", &IndexSpec{Kind: KindExact}, 4, recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s1.Ingest("pruned", &IndexSpec{Kind: KindNormScan}, 2, recs[:1000]); err != nil {
		t.Fatal(err)
	}
	wantExact := searchAll(t, s1, "exact", queries, k)
	wantPruned := searchAll(t, s1, "pruned", queries, k)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Collections(); !reflect.DeepEqual(got, []string{"exact", "pruned"}) {
		t.Fatalf("recovered collections %v", got)
	}
	c, _ := s2.Collection("exact")
	if c.Len() != n || c.Spec().Kind != KindExact || c.Shards() != 4 {
		t.Fatalf("exact recovered wrong: len=%d spec=%+v shards=%d", c.Len(), c.Spec(), c.Shards())
	}
	if got := searchAll(t, s2, "exact", queries, k); !reflect.DeepEqual(got, wantExact) {
		t.Fatal("exact search results differ after restart")
	}
	if got := searchAll(t, s2, "pruned", queries, k); !reflect.DeepEqual(got, wantPruned) {
		t.Fatal("pruned search results differ after restart")
	}

	// The recovered server keeps ingesting durably: auto-IDs must not
	// collide with recovered IDs.
	v := make(vec.Vector, d)
	version, _, err := s2.Ingest("exact", nil, 0, []store.Record{{ID: AutoID, Vec: v}})
	if err != nil {
		t.Fatal(err)
	}
	if version == 0 {
		t.Fatal("ingest after recovery did not bump the version")
	}
	c, _ = s2.Collection("exact")
	if c.Len() != n+1 {
		t.Fatalf("len %d after post-recovery ingest, want %d", c.Len(), n+1)
	}
}

// TestCrashRecoversAcknowledgedWrites simulates kill -9: the first
// server is never closed; a second server opens a copy of its data
// directory and must see every acknowledged (fsync=always) write,
// bit-identical to an in-memory reference collection fed the same
// batches.
func TestCrashRecoversAcknowledgedWrites(t *testing.T) {
	dir := t.TempDir()
	const n, d, q, k = 2000, 6, 25, 3
	recs := randRecords(n, d, 3)
	queries := randQueries(q, d, 4)

	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	ref := New(Config{}) // in-memory reference run
	defer ref.Close()
	for lo := 0; lo < n; lo += 333 {
		hi := min(lo+333, n)
		if _, _, err := s1.Ingest("col", nil, 4, recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ref.Ingest("col", nil, 4, recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: copy the directory out from under the live server,
	// exactly what a kill -9 leaves behind (fsync=always means every
	// acknowledged frame is already on disk).
	crashed := t.TempDir()
	copyTree(t, dir, crashed)

	s2, err := Open(durableConfig(crashed))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := searchAll(t, s2, "col", queries, k)
	want := searchAll(t, ref, "col", queries, k)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered search results differ from the in-memory reference")
	}
	s1.Close()
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDuringIngest drives enough batches through a tiny
// checkpoint threshold that WAL compaction runs while ingest continues,
// then verifies a restart still recovers everything.
func TestCheckpointDuringIngest(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.Fsync = "interval"
	cfg.FsyncInterval = time.Millisecond
	cfg.CheckpointBytes = 4 << 10
	const n, d = 5000, 4
	recs := randRecords(n, d, 5)

	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += 100 {
		if _, _, err := s1.Ingest("col", nil, 2, recs[lo:lo+100]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// At least one segment must exist (the threshold is tiny), and the
	// restart must see all records.
	colDir := filepath.Join(dir, "col")
	entries, err := os.ReadDir(colDir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "segment-") {
			segs++
		}
	}
	if segs == 0 {
		t.Fatal("no segment written despite a 4KiB checkpoint threshold")
	}
	s2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, ok := s2.Collection("col")
	if !ok || c.Len() != n {
		t.Fatalf("recovered %d records, want %d", c.Len(), n)
	}
	rel, _ := c.Relation()
	for i, r := range rel.Recs {
		if r.ID != recs[i].ID {
			t.Fatalf("record %d has ID %d, want %d", i, r.ID, recs[i].ID)
		}
		for j := range r.Vec {
			if r.Vec[j] != recs[i].Vec[j] {
				t.Fatalf("record %d vector differs", i)
			}
		}
	}
}

// TestRestartKeepsApproxIndexSeeds: alsh is approximate, but its
// hashing is seeded — the manifest pins the seed, so a restarted
// server must answer alsh queries identically to the original (even
// though recovery enumerates collections in directory order, not
// creation order).
func TestRestartKeepsApproxIndexSeeds(t *testing.T) {
	dir := t.TempDir()
	const n, d, q, k = 2000, 8, 30, 3
	recs := randRecords(n, d, 20)
	// ALSH's SIMPLE transform needs data inside the unit ball.
	maxNorm := 0.0
	for _, r := range recs {
		if nrm := vec.Norm(r.Vec); nrm > maxNorm {
			maxNorm = nrm
		}
	}
	for _, r := range recs {
		for j := range r.Vec {
			r.Vec[j] /= maxNorm * (1 + 1e-9)
		}
	}
	queries := randQueries(q, d, 21)
	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Create in an order that differs from the directory sort order so
	// a naive ordinal-based reseed would shuffle seeds on recovery.
	if _, _, err := s1.Ingest("zeta", &IndexSpec{Kind: KindALSH}, 2, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.Ingest("alpha", &IndexSpec{Kind: KindALSH}, 2, recs[:500]); err != nil {
		t.Fatal(err)
	}
	wantZeta := searchAll(t, s1, "zeta", queries, k)
	wantAlpha := searchAll(t, s1, "alpha", queries, k)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := searchAll(t, s2, "zeta", queries, k); !reflect.DeepEqual(got, wantZeta) {
		t.Fatal("alsh collection zeta answers differently after restart")
	}
	if got := searchAll(t, s2, "alpha", queries, k); !reflect.DeepEqual(got, wantAlpha) {
		t.Fatal("alsh collection alpha answers differently after restart")
	}
}

// TestDropCollection covers the DELETE semantics at the API level:
// gone from the map, 404 afterwards, data directory removed, and the
// name immediately reusable.
func TestDropCollection(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := randRecords(100, 4, 7)
	if _, _, err := s.Ingest("col", nil, 2, recs); err != nil {
		t.Fatal(err)
	}
	colDir := filepath.Join(dir, "col")
	if _, err := os.Stat(colDir); err != nil {
		t.Fatalf("data dir missing before drop: %v", err)
	}
	found, err := s.Drop("col")
	if err != nil || !found {
		t.Fatalf("drop: found=%v err=%v", found, err)
	}
	if _, err := os.Stat(colDir); !os.IsNotExist(err) {
		t.Fatalf("data dir still present after drop: %v", err)
	}
	if found, _ := s.Drop("col"); found {
		t.Fatal("second drop still found the collection")
	}
	if _, err := s.Search("col", randQueries(1, 4, 8), 1, false); err == nil {
		t.Fatal("search on dropped collection succeeded")
	}
	// Recreating under the same name starts fresh (and persists again).
	if _, _, err := s.Ingest("col", nil, 2, recs[:10]); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("col")
	if c.Len() != 10 {
		t.Fatalf("recreated collection has %d records", c.Len())
	}
}

// TestDropRouteHTTP exercises DELETE /collections/{name} through the
// handler: 200 with a body, then 404.
func TestDropRouteHTTP(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, _, err := s.Ingest("col", nil, 2, randRecords(10, 3, 9)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(s)

	req := httptest.NewRequest(http.MethodDelete, "/collections/col", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("DELETE: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"dropped":true`) {
		t.Fatalf("DELETE body %s", w.Body)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/collections/col", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("second DELETE: %d", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodDelete, "/collections/never", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: %d", w.Code)
	}
}

// TestDropRaceWithSearch hammers search/ingest against a concurrent
// drop: every request must either succeed or fail cleanly with
// "unknown collection"/"closed" — no panics, no torn state. Run under
// -race in CI.
func TestDropRaceWithSearch(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	recs := randRecords(500, 4, 10)
	queries := randQueries(4, 4, 11)
	for round := 0; round < 20; round++ {
		if _, _, err := s.Ingest("col", nil, 0, recs); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					results, err := s.Search("col", queries, 3, false)
					if err != nil {
						continue // unknown collection: dropped already
					}
					for _, r := range results {
						if r.Err != nil {
							t.Errorf("search error mid-drop: %v", r.Err)
						}
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.Drop("col"); err != nil {
				t.Errorf("drop: %v", err)
			}
		}()
		close(start)
		wg.Wait()
	}
}

// TestOpenRejectsBadFsync: config validation happens at boot.
func TestOpenRejectsBadFsync(t *testing.T) {
	if _, err := Open(Config{DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("Open accepted a bogus fsync mode")
	}
}

// TestCollectionDirNameSafety: hostile collection names never escape
// the data dir.
func TestCollectionDirNameSafety(t *testing.T) {
	for _, name := range []string{"..", "../evil", "a/b", ".", "", "x y", "ok-name_1.2"} {
		got := collectionDirName(name)
		if strings.ContainsAny(got, "/\\") || got == "." || got == ".." || got == "" {
			t.Fatalf("collectionDirName(%q) = %q is unsafe", name, got)
		}
	}
	if collectionDirName("plain") != "plain" {
		t.Fatal("clean names should map to themselves")
	}
	if collectionDirName("a/b") == collectionDirName("a/c") {
		t.Fatal("distinct unsafe names collided")
	}
}

// TestDurableIngestAttrsSurvive: attributes round-trip disk.
func TestDurableIngestAttrsSurvive(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	recs := []store.Record{
		{ID: 1, Vec: vec.Vector{1, 2}, Attrs: map[string]string{"title": "first", "lang": "go"}},
		{ID: 2, Vec: vec.Vector{3, 4}},
	}
	if _, _, err := s1.Ingest("col", nil, 1, recs); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, _ := s2.Collection("col")
	rel, _ := c.Relation()
	if len(rel.Recs) != 2 {
		t.Fatalf("recovered %d records", len(rel.Recs))
	}
	if rel.Recs[0].Attrs["title"] != "first" || rel.Recs[0].Attrs["lang"] != "go" {
		t.Fatalf("attrs lost: %+v", rel.Recs[0].Attrs)
	}
	if rel.Recs[1].Attrs != nil {
		t.Fatalf("phantom attrs: %+v", rel.Recs[1].Attrs)
	}
}
