package server

// Online similarity joins: the serving-layer face of the join Engine
// layer. A join runs directly over the two collections' per-shard
// columnar snapshots — no row materialisation — fanning the |P-shards| ×
// |Q-shards| pairs out on the server's worker pool, translating each
// pair's matches into record-ID space, and merging the partials per
// query through join.MergePerQuery. Threshold mode reports the single
// best partner per satisfied query (Definition 1); top-k-pairs mode
// reports up to k pairs per query.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/join"
	"repro/internal/lsh"
	"repro/internal/trace"
)

// JoinRequest asks for an approximate (cs, s) join: for each query
// vector in the Queries collection, report partners from the Data
// collection per Definition 1.
type JoinRequest struct {
	// Data and Queries name the two collections (P and Q). A self-join
	// names the same collection twice.
	Data    string `json:"data"`
	Queries string `json:"queries"`
	// Engine is "exact" (alias "tiled"), "normpruned", "lsh" or
	// "sketch" (default "exact").
	Engine string `json:"engine,omitempty"`
	// Variant is "signed" (default) or "unsigned".
	Variant string `json:"variant,omitempty"`
	// S is the promise threshold, C the approximation factor
	// (default 1).
	S float64 `json:"s"`
	C float64 `json:"c,omitempty"`
	// TopK switches to top-k-pairs mode: up to TopK pairs per query at
	// value ≥ c·s, in decreasing order. 0 (default) is threshold mode:
	// the single best pair per satisfied query.
	TopK int `json:"topk,omitempty"`
	// ExcludeSelf drops identity pairs (same record ID on both sides)
	// before merging — the useful default for self-joins, where every
	// record trivially matches itself. The self-join endpoint sets it.
	ExcludeSelf bool `json:"exclude_self,omitempty"`
	// K, L shape the LSH banding (defaults 8, 16); Kappa, Copies the
	// sketch engine (defaults 2, 9).
	K      int     `json:"k,omitempty"`
	L      int     `json:"l,omitempty"`
	Kappa  float64 `json:"kappa,omitempty"`
	Copies int     `json:"copies,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	// TimeoutMS is the client's deadline in milliseconds, overriding
	// the server default (zero means use the default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// JoinPair is one reported pair, in record-ID space.
type JoinPair struct {
	DataID  int     `json:"data_id"`
	QueryID int     `json:"query_id"`
	Value   float64 `json:"value"`
}

// JoinResponse is the join outcome. Pairs are ordered by ascending
// query ID; within one query by decreasing value, ties toward the
// smaller data ID.
type JoinResponse struct {
	Engine   string     `json:"engine"`
	TopK     int        `json:"topk,omitempty"`
	Pairs    []JoinPair `json:"pairs"`
	Compared int64      `json:"compared"`
	TookMS   float64    `json:"took_ms"`
}

// joinEngine builds the flat join engine for a request.
func joinEngine(req JoinRequest) (join.Engine, error) {
	switch req.Engine {
	case "", "exact", "tiled":
		return join.Tiled{}, nil
	case "normpruned", "normscan":
		return join.NormPruned{}, nil
	case "lsh":
		k, l := defaultBanding(req.K, req.L)
		return join.LSH{
			NewFamily: func(d int) (lsh.Family, error) { return lsh.NewHyperplane(d) },
			K:         k, L: l, Seed: req.Seed,
		}, nil
	case "sketch":
		kappa, copies := defaultSketch(req.Kappa, req.Copies)
		return join.Sketch{Kappa: kappa, Copies: copies, Seed: req.Seed}, nil
	}
	return nil, fmt.Errorf("server: unknown join engine %q", req.Engine)
}

// joinSpec resolves and validates the (cs, s) specification.
func joinSpec(req JoinRequest) (core.Spec, error) {
	sp := core.Spec{S: req.S, C: req.C}
	if sp.C == 0 {
		sp.C = 1
	}
	switch req.Variant {
	case "", "signed":
		sp.Variant = core.Signed
	case "unsigned":
		sp.Variant = core.Unsigned
	default:
		return sp, fmt.Errorf("server: unknown variant %q", req.Variant)
	}
	return sp, sp.Validate()
}

// shardSnaps returns the collection's current non-empty shard
// snapshots as live views: a shard carrying tombstones contributes a
// compacted copy holding only its live rows, so the join engines —
// which sweep whole columnar stores and know nothing of deletions —
// can never report a deleted record. Each snapshot is immutable, so a
// join scans it safely while ingests publish newer ones.
func (c *Collection) shardSnaps() []*shardSnap {
	snaps := make([]*shardSnap, 0, len(c.shards))
	for _, sh := range c.shards {
		snap := sh.snap.Load().liveView()
		if snap.fs != nil && snap.fs.Len() > 0 {
			snaps = append(snaps, snap)
		}
	}
	return snaps
}

// ctxJoinRunner wraps a join.Runner so every Q-tile observes the
// request context: once ctx fires, remaining tiles are skipped (their
// partials are discarded anyway — JoinCtx returns the context error).
type ctxJoinRunner struct {
	done  <-chan struct{}
	inner join.Runner
}

func (r ctxJoinRunner) ForEach(n int, fn func(i int)) {
	r.inner.ForEach(n, func(i int) {
		select {
		case <-r.done:
			return
		default:
		}
		fn(i)
	})
}

// joinRunner returns inner wrapped with per-tile ctx checks, or inner
// itself when ctx can never fire (keeping the historical zero-check
// path).
func joinRunner(ctx context.Context, inner join.Runner) join.Runner {
	done := doneChan(ctx)
	if done == nil {
		return inner
	}
	return ctxJoinRunner{done: done, inner: inner}
}

// Join runs the requested join over current shard snapshots of the two
// collections and maps matches back to record IDs. The exact engines
// accept at c·s like the approximate ones (c = 1 recovers the strict
// exact join), so the same request shape drives every engine.
func (s *Server) Join(req JoinRequest) (*JoinResponse, error) {
	return s.JoinCtx(context.Background(), req)
}

// JoinCtx is Join with a request context: the join is one admission
// unit against the data collection's gate, the pair fan-out stops
// feeding once ctx fires, and each pair's Q-tile runner skips
// remaining tiles. A cancelled join returns ctx's error and no pairs.
func (s *Server) JoinCtx(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	dataCol, ok := s.Collection(req.Data)
	if !ok {
		return nil, fmt.Errorf("server: unknown data collection %q", req.Data)
	}
	queryCol, ok := s.Collection(req.Queries)
	if !ok {
		return nil, fmt.Errorf("server: unknown queries collection %q", req.Queries)
	}
	sp, err := joinSpec(req)
	if err != nil {
		return nil, err
	}
	if req.TopK < 0 {
		return nil, fmt.Errorf("server: topk %d must be non-negative", req.TopK)
	}
	eng, err := joinEngine(req)
	if err != nil {
		return nil, err
	}
	// Joins are reads: degraded collections keep serving their last
	// published snapshots, but quarantine on either side blocks.
	if err := dataCol.checkReadable(); err != nil {
		return nil, err
	}
	if err := queryCol.checkReadable(); err != nil {
		return nil, err
	}
	tr := trace.FromContext(ctx)
	tr.SetCollection(req.Data)
	asp := tr.StartSpan("admission")
	admErr := dataCol.adm.enter(ctx)
	asp.End()
	if admErr != nil {
		return nil, admErr
	}
	defer dataCol.adm.exit()
	dsnaps := dataCol.shardSnaps()
	qsnaps := queryCol.shardSnaps()
	if len(dsnaps) == 0 || len(qsnaps) == 0 {
		return nil, fmt.Errorf("server: join requires non-empty collections")
	}
	if dd, qd := dsnaps[0].fs.Dim(), qsnaps[0].fs.Dim(); dd != qd {
		return nil, fmt.Errorf("server: dimension mismatch: %q has %d, %q has %d",
			req.Data, dd, req.Queries, qd)
	}

	// With self-exclusion the per-pair join must over-fetch by one: the
	// identity pair can displace the legitimate answer within its shard
	// pair (IDs are shard-disjoint, so it appears at most once per
	// query, and only on diagonal pairs). The sketch engine cannot
	// over-fetch — its recoverer is top-1 by construction — so a
	// self-join through it would silently drop most answers (a query's
	// recovered argmax is usually itself); reject it instead.
	engineK := req.TopK
	if req.ExcludeSelf {
		if eng.Name() == "sketch" {
			return nil, fmt.Errorf("server: the sketch engine reports a single pair per query and cannot exclude self-pairs; use exact, normpruned or lsh for self-joins")
		}
		if engineK == 0 {
			engineK = 2
		} else {
			engineK++
		}
	}
	unsigned := sp.Variant == core.Unsigned

	start := time.Now()

	// Per-P engine state (norm view, LSH index, sketch recoverer) is
	// built once per data shard, not once per shard pair: normpruned
	// reuses the snapshot's cached view (amortized across requests
	// too), the other preparable engines build per request — worth it
	// only when several query shards would otherwise each rebuild.
	perShard := make([]join.Engine, len(dsnaps))
	for d := range perShard {
		perShard[d] = eng
	}
	if _, ok := eng.(join.NormPruned); ok {
		for d, sn := range dsnaps {
			perShard[d] = join.NormPruned{Sorted: sn.normSorted()}
		}
	} else if p, ok := eng.(join.Preparer); ok && len(qsnaps) > 1 {
		for d, sn := range dsnaps {
			prepared, err := p.Prepare(sn.fs)
			if err != nil {
				return nil, err
			}
			perShard[d] = prepared
		}
	}

	type pair struct{ d, q int }
	pairs := make([]pair, 0, len(dsnaps)*len(qsnaps))
	for d := range dsnaps {
		for q := range qsnaps {
			pairs = append(pairs, pair{d, q})
		}
	}
	parts := make([]join.Result, len(pairs))
	errs := make([]error, len(pairs))
	run := func(i int, runner join.Runner) {
		pr := pairs[i]
		dsnap, qsnap := dsnaps[pr.d], qsnaps[pr.q]
		res, err := perShard[pr.d].Join(dsnap.fs, qsnap.fs, sp.S, sp.CS(),
			join.Opts{Unsigned: unsigned, TopK: engineK, Runner: runner})
		if err != nil {
			errs[i] = err
			return
		}
		// Translate local row indices into record-ID space; the merge
		// below then operates on globally comparable matches.
		keep := res.Matches[:0]
		for _, m := range res.Matches {
			m.PIdx = dsnap.ids[m.PIdx]
			m.QIdx = qsnap.ids[m.QIdx]
			if req.ExcludeSelf && m.PIdx == m.QIdx {
				continue
			}
			keep = append(keep, m)
		}
		res.Matches = keep
		parts[i] = res
	}
	ssp := tr.StartSpan("scan")
	var feedErr error
	if len(pairs) == 1 {
		// A single shard pair cannot fan out, so the engine itself may
		// spread Q-tiles over the pool with the blocking executor.
		run(0, joinRunner(ctx, s.pool))
	} else {
		// Pair-level fan-out holds pool slots, so the per-pair Q-tile
		// runner must never block on the same pool — the borrowing
		// executor soaks up whatever slots the pair fan-out leaves
		// idle (few pairs on a wide pool) and degrades to inline when
		// there are none.
		feedErr = s.pool.ForEachCtx(ctx, len(pairs), func(i int) {
			run(i, joinRunner(ctx, s.pool.Borrowing()))
		})
	}
	ssp.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if feedErr == nil {
		// Pairs that ran with skipped Q-tiles hold partial match sets;
		// the post-run check catches a cancellation the feed never saw.
		feedErr = ctx.Err()
	}
	if feedErr != nil {
		dataCol.countTimeout(feedErr)
		return nil, feedErr
	}
	msp := tr.StartSpan("merge")
	merged := join.MergePerQuery(parts, req.TopK)
	msp.End()
	s.joins.Add(1)
	resp := &JoinResponse{
		Engine:   eng.Name(),
		TopK:     req.TopK,
		Pairs:    make([]JoinPair, len(merged.Matches)),
		Compared: merged.Compared,
		TookMS:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	for i, m := range merged.Matches {
		resp.Pairs[i] = JoinPair{DataID: m.PIdx, QueryID: m.QIdx, Value: m.Value}
	}
	return resp, nil
}

// selfJoinRequest resolves a request into the self-join of name:
// both sides the same collection, identity pairs excluded. It is the
// single definition of the self-join policy, shared by the
// programmatic API and the HTTP route.
func selfJoinRequest(name string, req JoinRequest) JoinRequest {
	req.Data, req.Queries = name, name
	req.ExcludeSelf = true
	return req
}

// SelfJoin joins a collection with itself, excluding identity pairs.
func (s *Server) SelfJoin(name string, req JoinRequest) (*JoinResponse, error) {
	return s.Join(selfJoinRequest(name, req))
}

// SelfJoinCtx is SelfJoin with a request context (see JoinCtx).
func (s *Server) SelfJoinCtx(ctx context.Context, name string, req JoinRequest) (*JoinResponse, error) {
	return s.JoinCtx(ctx, selfJoinRequest(name, req))
}
