package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// modelSet is the map-based reference the interleaving harness checks
// the server against: the live record set, nothing else.
type modelSet map[int]store.Record

func (m modelSet) upsert(recs []store.Record) {
	for _, r := range recs {
		m[r.ID] = r
	}
}

func (m modelSet) delete(ids []int) int {
	n := 0
	for _, id := range ids {
		if _, ok := m[id]; ok {
			delete(m, id)
			n++
		}
	}
	return n
}

// topK is the model's search answer: full scan over the live set with
// the canonical (score descending, ID ascending) ordering — the exact
// contract the server's masked kernels must reproduce bit-identically.
func (m modelSet) topK(q vec.Vector, k int, unsigned bool) []Hit {
	recs := make([]store.Record, 0, len(m))
	for _, r := range m {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return exactTopK(recs, q, k, unsigned)
}

// mutationScript drives a deterministic random interleaving of upsert,
// delete and search ops against both the server and the model,
// failing on the first divergence. Searches mix single queries and
// batches (the tiled executor path) and both variants.
func mutationScript(t *testing.T, s *Server, m modelSet, name string, seed uint64, ops, universe, d, k int) {
	t.Helper()
	if _, err := s.EnsureCollection(name, &IndexSpec{Kind: KindExact}, 0); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	randVec := func() vec.Vector { return vec.Vector(rng.NormalVec(d)) }
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.35: // upsert batch: mix of fresh inserts and replacements
			nb := 1 + rng.Intn(8)
			batch := make([]store.Record, 0, nb)
			seen := map[int]struct{}{}
			for len(batch) < nb {
				id := rng.Intn(universe)
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				batch = append(batch, store.Record{ID: id, Vec: randVec()})
			}
			if _, _, err := s.Upsert(name, &IndexSpec{Kind: KindExact}, 0, batch); err != nil {
				t.Fatalf("op %d: upsert: %v", op, err)
			}
			m.upsert(batch)
		case r < 0.55: // delete batch, often including unknown ids
			nb := 1 + rng.Intn(8)
			ids := make([]int, nb)
			for i := range ids {
				ids[i] = rng.Intn(universe + universe/4) // some never-ingested ids
			}
			_, deleted, _, err := s.Delete(name, ids)
			if err != nil {
				t.Fatalf("op %d: delete: %v", op, err)
			}
			if want := m.delete(ids); deleted != want {
				t.Fatalf("op %d: deleted %d records, model says %d", op, deleted, want)
			}
		default: // search: single query or small batch, signed or unsigned
			nq := 1 + rng.Intn(3)
			qs := make([]vec.Vector, nq)
			for i := range qs {
				qs[i] = randVec()
			}
			unsigned := rng.Float64() < 0.3
			results, err := s.Search(name, qs, k, unsigned)
			if err != nil {
				t.Fatalf("op %d: search: %v", op, err)
			}
			for qi, res := range results {
				if res.Err != nil {
					t.Fatalf("op %d query %d: %v", op, qi, res.Err)
				}
				want := m.topK(qs[qi], k, unsigned)
				if !reflect.DeepEqual(res.Hits, want) {
					t.Fatalf("op %d query %d (unsigned=%v): hits diverge from model\n got %v\nwant %v",
						op, qi, unsigned, res.Hits, want)
				}
				for _, h := range res.Hits {
					if _, live := m[h.ID]; !live {
						t.Fatalf("op %d query %d: hit on dead id %d (cached=%v)", op, qi, h.ID, res.Cached)
					}
				}
			}
		}
	}
}

// TestMutationInterleavingMatchesReference randomizes upserts, deletes
// and searches against an in-memory server and checks every search
// bit-identically (hits and ordering) against the map-based model —
// across shard counts, with the cache on (its invalidation is part of
// the contract under test) and compaction triggered aggressively so
// scans race snapshot swaps.
func TestMutationInterleavingMatchesReference(t *testing.T) {
	for _, shards := range []int{1, 3} {
		for _, compact := range []bool{false, true} {
			t.Run(fmt.Sprintf("shards=%d/compact=%v", shards, compact), func(t *testing.T) {
				cfg := Config{DefaultShards: shards}
				if compact {
					cfg.CompactFraction = 0.05
					cfg.CompactMinDead = -1 // any tombstone count qualifies
				} else {
					cfg.CompactFraction = -1 // disabled: tombstones accumulate
				}
				s := New(cfg)
				defer s.Close()
				mutationScript(t, s, modelSet{}, "col", 42+uint64(shards), 400, 300, 8, 5)
			})
		}
	}
}

// TestMutationDurableRestartAndCrash runs the interleaving against a
// durable (fsync=always) server, then checks both recovery paths
// against the model: a kill -9 image (directory copied out from under
// the live server, never closed) and a clean restart. Both must serve
// bit-identical results.
func TestMutationDurableRestartAndCrash(t *testing.T) {
	dir := t.TempDir()
	const universe, d, k = 200, 6, 5
	s1, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	m := modelSet{}
	mutationScript(t, s1, m, "col", 99, 250, universe, d, k)

	queries := randQueries(20, d, 7)
	verify := func(s *Server, label string) {
		t.Helper()
		for qi, q := range queries {
			got := searchAll(t, s, "col", []vec.Vector{q}, k)[0]
			if want := m.topK(q, k, false); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s query %d: hits diverge from model\n got %v\nwant %v", label, qi, got, want)
			}
		}
	}
	verify(s1, "pre-crash")

	// kill -9: copy the directory while the server is live and unclosed.
	crashed := t.TempDir()
	copyTree(t, dir, crashed)
	s2, err := Open(durableConfig(crashed))
	if err != nil {
		t.Fatal(err)
	}
	verify(s2, "kill-9 recovery")
	if c, _ := s2.Collection("col"); c.Len() != len(m) {
		t.Fatalf("kill-9 recovery: %d live records, model has %d", c.Len(), len(m))
	}
	// The recovered server keeps mutating correctly.
	mutationScript(t, s2, m.clone(), "col", 123, 60, universe, d, k)
	s2.Close()

	// Clean restart of the original directory.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	verify(s3, "clean restart")
	mutationScript(t, s3, m, "col", 321, 60, universe, d, k)
}

func (m modelSet) clone() modelSet {
	out := make(modelSet, len(m))
	for id, r := range m {
		out[id] = r
	}
	return out
}

// TestCacheNeverServesTombstonedHits pins the satellite contract
// directly: a cached result list containing an id must stop being
// served the moment that id is deleted or its vector replaced.
func TestCacheNeverServesTombstonedHits(t *testing.T) {
	s := New(Config{DefaultShards: 2}) // cache on (default capacity)
	defer s.Close()
	d := 4
	recs := randRecords(50, d, 11)
	if _, _, err := s.Ingest("col", nil, 0, recs); err != nil {
		t.Fatal(err)
	}
	q := vec.Vector(xrand.New(12).NormalVec(d))

	first := searchAll(t, s, "col", []vec.Vector{q}, 3)[0]
	// Same query again: must now be a cache hit.
	res, err := s.Search("col", []vec.Vector{q}, 3, false)
	if err != nil || res[0].Err != nil {
		t.Fatalf("search: %v / %v", err, res[0].Err)
	}
	if !res[0].Cached {
		t.Fatal("second identical search was not served from cache")
	}

	// Delete the top hit: the cached entry must not survive.
	top := first[0].ID
	if _, deleted, _, err := s.Delete("col", []int{top}); err != nil || deleted != 1 {
		t.Fatalf("delete: %v (deleted=%d)", err, deleted)
	}
	after, err := s.Search("col", []vec.Vector{q}, 3, false)
	if err != nil || after[0].Err != nil {
		t.Fatalf("search: %v / %v", err, after[0].Err)
	}
	if after[0].Cached {
		t.Fatal("search after delete served a stale cached result")
	}
	for _, h := range after[0].Hits {
		if h.ID == top {
			t.Fatalf("search after delete returned tombstoned id %d", top)
		}
	}

	// Replace the new top hit's vector with its negation: the cached
	// score would be stale, so the entry must be gone too.
	top2 := after[0].Hits[0].ID
	neg := make(vec.Vector, d)
	var old vec.Vector
	for _, r := range recs {
		if r.ID == top2 {
			old = r.Vec
		}
	}
	for i, v := range old {
		neg[i] = -v
	}
	if _, _, err := s.Upsert("col", nil, 0, []store.Record{{ID: top2, Vec: neg}}); err != nil {
		t.Fatal(err)
	}
	final, err := s.Search("col", []vec.Vector{q}, 3, false)
	if err != nil || final[0].Err != nil {
		t.Fatalf("search: %v / %v", err, final[0].Err)
	}
	if final[0].Cached {
		t.Fatal("search after upsert served a stale cached result")
	}
	for _, h := range final[0].Hits {
		if h.ID == top2 {
			t.Fatalf("replaced record %d still ranked by its old score", top2)
		}
	}
}

// TestCompactionRewritesShards forces the trigger, waits for the
// background pass, and checks it erased every tombstone without
// changing search results — and that on a durable server the segment
// on disk shed the deleted rows.
func TestCompactionRewritesShards(t *testing.T) {
	dir := t.TempDir()
	cfg := durableConfig(dir)
	cfg.DefaultShards = 3
	cfg.CompactFraction = 0.20
	cfg.CompactMinDead = -1
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n, d, k = 600, 8, 10
	recs := randRecords(n, d, 21)
	if _, _, err := s.Ingest("col", nil, 0, recs); err != nil {
		t.Fatal(err)
	}
	// Delete 40% — over the 20% trigger.
	var doomed []int
	for id := 0; id < n; id++ {
		if id%5 < 2 {
			doomed = append(doomed, id)
		}
	}
	if _, deleted, _, err := s.Delete("col", doomed); err != nil || deleted != len(doomed) {
		t.Fatalf("delete: %v (deleted=%d want %d)", err, deleted, len(doomed))
	}
	live := make(modelSet)
	for _, r := range recs {
		if r.ID%5 >= 2 {
			live[r.ID] = r
		}
	}

	c, _ := s.Collection("col")
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := c.statsSnapshot()
		if st.Compactions > 0 && !st.Compacting && st.Tombstoned == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := c.statsSnapshot()
	if st.Records != len(live) {
		t.Fatalf("post-compaction records %d, want %d", st.Records, len(live))
	}
	for _, sh := range st.Shards {
		if sh.Tombstoned != 0 || sh.Live != sh.Records {
			t.Fatalf("shard %d not compacted: %+v", sh.ID, sh)
		}
	}
	for qi, q := range randQueries(15, d, 22) {
		got := searchAll(t, s, "col", []vec.Vector{q}, k)[0]
		if want := live.topK(q, k, false); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-compaction query %d diverges from model", qi)
		}
	}

	// The compaction checkpoint rewrote the on-disk state: a fresh
	// process must recover the live set without replaying the deletes.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, _ := s2.Collection("col")
	if c2.Len() != len(live) {
		t.Fatalf("recovered %d records, want %d", c2.Len(), len(live))
	}
	if tomb := c2.statsSnapshot().Tombstoned; tomb != 0 {
		t.Fatalf("recovered collection carries %d tombstones", tomb)
	}
}

// TestUpsertValidation pins the explicit-ID and duplicate rules, and
// that a rejected batch leaves no reserved ids behind.
func TestUpsertValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	v := vec.Vector{1, 0}
	if _, _, err := s.Upsert("col", nil, 0, []store.Record{{ID: AutoID, Vec: v}}); err == nil {
		t.Fatal("upsert accepted AutoID")
	}
	if _, _, err := s.Upsert("col", nil, 0, []store.Record{{ID: 1, Vec: v}, {ID: 1, Vec: v}}); err == nil {
		t.Fatal("upsert accepted a duplicate id in one batch")
	}
	// The failed batches must not have reserved id 1: a fresh upsert of
	// it succeeds and the auto-ID allocator can still hand it out.
	if _, _, err := s.Upsert("col", nil, 0, []store.Record{{ID: 1, Vec: v}}); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("col")
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	// Deleting from an unknown collection is an error; unknown ids are
	// no-ops that do not bump the version.
	if _, _, _, err := s.Delete("nope", []int{1}); err == nil {
		t.Fatal("delete on unknown collection succeeded")
	}
	before := c.Version()
	if _, deleted, _, err := s.Delete("col", []int{5, 6, 7}); err != nil || deleted != 0 {
		t.Fatalf("delete of unknown ids: %v (deleted=%d)", err, deleted)
	}
	if c.Version() != before {
		t.Fatal("no-op delete bumped the version")
	}
}

// TestAutoIDReuseAfterDelete documents the allocator contract: seenIDs
// tracks live ids only, so an auto-ID server may re-hand-out an id
// freed by a delete.
func TestAutoIDReuseAfterDelete(t *testing.T) {
	s := New(Config{DefaultShards: 1})
	defer s.Close()
	v := vec.Vector{1}
	if _, _, err := s.Ingest("col", nil, 0, []store.Record{{ID: AutoID, Vec: v}, {ID: AutoID, Vec: v}}); err != nil {
		t.Fatal(err)
	}
	if _, deleted, _, err := s.Delete("col", []int{0}); err != nil || deleted != 1 {
		t.Fatalf("delete: %v (%d)", err, deleted)
	}
	if _, _, err := s.Upsert("col", nil, 0, []store.Record{{ID: 0, Vec: vec.Vector{2}}}); err != nil {
		t.Fatalf("re-upsert of deleted id: %v", err)
	}
	c, _ := s.Collection("col")
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

// TestMutationHTTPRoutes drives the new vector routes end to end.
func TestMutationHTTPRoutes(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	id7, id4, id8 := 7, 4, 8
	// Single upsert creates the collection.
	var ur UpsertResponse
	if code := doJSON(t, ts, http.MethodPut, "/collections/c/vectors/7",
		RecordJSON{Vec: []float64{1, 0}}, &ur); code != http.StatusOK {
		t.Fatalf("upsert status %d", code)
	}
	if ur.Upserted != 1 || ur.Records != 1 {
		t.Fatalf("upsert response: %+v", ur)
	}
	// Batch upsert: one replacement, one insert.
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/vectors", IngestRequest{
		Records: []RecordJSON{{ID: &id7, Vec: []float64{0, 1}}, {ID: &id8, Vec: []float64{1, 1}}},
	}, &ur); code != http.StatusOK {
		t.Fatalf("batch upsert status %d", code)
	}
	if ur.Records != 2 {
		t.Fatalf("batch upsert response: %+v", ur)
	}
	// A record without an id is rejected.
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/vectors",
		IngestRequest{Records: []RecordJSON{{Vec: []float64{1, 0}}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("id-less batch upsert status %d", code)
	}
	// Search sees the replaced vector, not the original.
	var sr SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/search",
		SearchRequest{Q: []float64{0, 1}, K: 1}, &sr); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}
	if len(sr.Matches) != 1 || sr.Matches[0].ID != 7 || sr.Matches[0].Score != 1 {
		t.Fatalf("search after upsert: %+v", sr.Matches)
	}

	// Single delete; a second delete of the same id is a 404.
	if code := doJSON(t, ts, http.MethodDelete, "/collections/c/vectors/7", nil, nil); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	if code := doJSON(t, ts, http.MethodDelete, "/collections/c/vectors/7", nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete status %d", code)
	}
	// Batch delete is idempotent and reports the true count.
	var dr DeleteVectorsResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/vectors/delete",
		DeleteVectorsRequest{IDs: []int{8, 8, 99}}, &dr); code != http.StatusOK {
		t.Fatalf("batch delete status %d", code)
	}
	if dr.Deleted != 1 || dr.Records != 0 {
		t.Fatalf("batch delete response: %+v", dr)
	}
	// Unknown collection maps to 404.
	if code := doJSON(t, ts, http.MethodDelete, "/collections/nope/vectors/1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("delete on unknown collection status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/nope/vectors/delete",
		DeleteVectorsRequest{IDs: []int{1}}, nil); code != http.StatusNotFound {
		t.Fatalf("batch delete on unknown collection status %d", code)
	}
	// Body/path id disagreement is a 400.
	if code := doJSON(t, ts, http.MethodPut, "/collections/c/vectors/3",
		RecordJSON{ID: &id4, Vec: []float64{1, 0}}, nil); code != http.StatusBadRequest {
		t.Fatalf("id mismatch status %d", code)
	}
}

// TestJoinSkipsTombstonedRows: joins run over live views, so a deleted
// record can appear on neither side of a reported pair.
func TestJoinSkipsTombstonedRows(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	recs := []store.Record{
		{ID: 0, Vec: vec.Vector{1, 0}},
		{ID: 1, Vec: vec.Vector{0.9, 0.1}},
		{ID: 2, Vec: vec.Vector{0, 1}},
	}
	if _, _, err := s.Ingest("col", nil, 0, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Delete("col", []int{1}); err != nil {
		t.Fatal(err)
	}
	resp, err := s.SelfJoin("col", JoinRequest{S: 0.1, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Pairs {
		if p.DataID == 1 || p.QueryID == 1 {
			t.Fatalf("join reported tombstoned record: %+v", p)
		}
	}
}
