package server

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the batch executor: a bounded parallel-for over task
// indices. The bound is a server-wide semaphore, so a single request
// carrying a thousand queries saturates every core while any number
// of concurrent requests still share the same worker budget instead
// of multiplying it.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool with the given parallelism; n <= 0 defaults
// to GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Workers returns the pool parallelism.
func (p *Pool) Workers() int { return cap(p.sem) }

// TryAcquire claims one worker slot without blocking, reporting whether
// a slot was free. It lets callers borrow budget for extra intra-task
// parallelism (e.g. splitting one shard scan across row blocks) while
// keeping the pool's invariant that concurrent requests share, rather
// than multiply, the worker budget. Every successful TryAcquire must be
// paired with Release.
func (p *Pool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (p *Pool) Release() { <-p.sem }

// Borrowing returns an executor that spreads tasks over worker slots
// claimed non-blockingly from the pool (TryAcquire), always keeping
// the calling goroutine as one participant. Unlike ForEach it can
// safely run *inside* a pool task: when the pool is saturated it
// simply degrades to inline execution instead of deadlocking, so it
// is the executor to hand to nested parallel work (e.g. the Q-tile
// fan-out of one shard-pair join running under the pair-level
// ForEach).
func (p *Pool) Borrowing() *BorrowingExecutor { return &BorrowingExecutor{pool: p} }

// BorrowingExecutor is the non-blocking nested-parallelism executor
// returned by Pool.Borrowing. It satisfies the serving and join
// layers' parallel-for contracts.
type BorrowingExecutor struct{ pool *Pool }

// ForEach invokes fn(i) for every i in [0, n), running inline plus on
// however many workers it could borrow without blocking. Slots are
// released before returning.
func (b *BorrowingExecutor) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	extras := 0
	for extras < n-1 && b.pool.TryAcquire() {
		extras++
	}
	if extras == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extras)
	for w := 0; w < extras; w++ {
		go func() {
			defer func() {
				b.pool.Release()
				wg.Done()
			}()
			work()
		}()
	}
	work()
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0, n) and blocks until all
// calls return. At most Workers tasks run at once across every
// concurrent ForEach on the pool; the feeding goroutine blocks while
// the pool is saturated, which back-pressures oversized requests.
// Tasks must not themselves call ForEach on the same pool (slots are
// held for a task's full duration, so nesting can deadlock); use
// Borrowing for nested parallelism.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || cap(p.sem) == 1 {
		// Inline, but still holding a slot per task: the budget must
		// stay honest for concurrent requests and for Borrowing
		// executors watching for idle slots — a free slot here would
		// let a nested borrower run a second scan on a pool sized for
		// one.
		for i := 0; i < n; i++ {
			p.sem <- struct{}{}
			fn(i)
			<-p.sem
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.sem <- struct{}{}
		go func(i int) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// ForEachCtx is ForEach with cancellation: the feeding loop stops
// submitting tasks once ctx is cancelled (the cancellable feed also
// means a request queued behind a saturated pool stops waiting for a
// slot the moment its deadline fires, releasing nothing it never
// held). Tasks already started always run to completion — fn itself is
// expected to observe ctx — and every claimed slot is released before
// return. Returns ctx.Err() when any task was skipped, nil when all n
// ran. A nil or never-cancellable ctx takes exactly the ForEach path.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	if done == nil {
		p.ForEach(n, fn)
		return nil
	}
	if n <= 0 {
		return nil
	}
	if n == 1 || cap(p.sem) == 1 {
		for i := 0; i < n; i++ {
			// The explicit Err check makes an already-expired context
			// deterministic (select picks randomly among ready cases, so
			// without it one task could still sneak through).
			if err := ctx.Err(); err != nil {
				return err
			}
			select {
			case <-done:
				return ctx.Err()
			case p.sem <- struct{}{}:
			}
			fn(i)
			<-p.sem
		}
		return nil
	}
	var wg sync.WaitGroup
	var err error
	for i := 0; i < n; i++ {
		if err = ctx.Err(); err != nil {
			break
		}
		var acquired bool
		select {
		case <-done:
		case p.sem <- struct{}{}:
			acquired = true
		}
		if !acquired {
			err = ctx.Err()
			break
		}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-p.sem
				wg.Done()
			}()
			fn(i)
		}(i)
	}
	wg.Wait()
	return err
}
