// Package server is the online serving subsystem of the reproduction: a
// concurrent, sharded inner-product search and join server. Named
// collections wrap store.Relation snapshots; each collection is split
// across N goroutine-owned shards, every shard holding its own index
// built from a selectable engine (exact scan, norm-pruned MIPS scan,
// §4.1 ALSH, or the §4.3 sketch recovery structure). Queries fan out to
// the shards and the per-shard top-k lists are combined by a k-way
// merge; batches run on a worker pool and results are memoized in an
// LRU cache invalidated on ingest.
package server

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/transform"
	"repro/internal/vec"
)

// Hit is one search answer: a record ID and its (absolute, for
// unsigned) inner product with the query.
type Hit struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// ShardIndex answers top-k MIPS queries over one shard's vectors.
// Returned hits carry *local* indices into the build store, are ordered
// by decreasing score with ties broken by increasing index, and have
// exact scores (re-verified against the stored vectors by
// candidate-based engines). Implementations must return a structured
// error — never panic — on a query dimension mismatch.
type ShardIndex interface {
	// TopK returns up to k hits for q; unsigned ranks by |pᵀq|.
	// workers > 1 permits the engine to parallelize its scan across
	// that many goroutines (engines may ignore the hint). ctx carries
	// the request deadline: engines backed by the flat drivers abandon
	// the scan within one row-block of cancellation and return ctx's
	// error; a never-cancelled ctx costs nothing (the drivers keep
	// their unchecked fast path).
	TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error)
}

// IndexSpec selects and parameterizes the per-shard index engine. The
// zero value of every field means "use the engine default".
type IndexSpec struct {
	// Kind is one of "exact", "normscan", "alsh", "sketch".
	Kind string `json:"kind"`
	// U is the ALSH query-ball radius (default 1).
	U float64 `json:"u,omitempty"`
	// K, L are the ALSH banding parameters (defaults 8, 16).
	K int `json:"k,omitempty"`
	L int `json:"l,omitempty"`
	// Kappa, Copies parameterize the sketch recoverer (defaults 2, 9).
	Kappa  float64 `json:"kappa,omitempty"`
	Copies int     `json:"copies,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	// Precision selects the vector storage tier: "f64" (the default;
	// exact scores), "f32" (half the scan bytes, f32-accurate scores,
	// opt-in exact re-rank per query), or "int8" (an eighth of the scan
	// bytes; approximate candidates always re-ranked through the
	// retained f64 rows, so answers stay exact). f32 supports the exact
	// and normscan kinds, int8 the exact kind only; alsh and sketch are
	// f64-only (they already verify candidates against the f64 store).
	Precision string `json:"precision,omitempty"`
	// Overfetch widens re-ranked candidate sets: a re-ranked query
	// fetches k·Overfetch quantized candidates before exact re-scoring
	// (default 4, via Config.RerankOverfetch).
	Overfetch int `json:"overfetch,omitempty"`
}

// Validate checks that the spec names a registered engine and that
// its parameters are usable (zero always means "default"), so bad
// specs fail at collection creation instead of at the first ingest.
func (s IndexSpec) Validate() error {
	switch s.Kind {
	case "", KindExact, KindNormScan, KindALSH, KindSketch:
	default:
		return fmt.Errorf("server: unknown index kind %q (want %s, %s, %s or %s)",
			s.Kind, KindExact, KindNormScan, KindALSH, KindSketch)
	}
	if s.U < 0 || s.K < 0 || s.L < 0 || s.Copies < 0 {
		return fmt.Errorf("server: index %q: negative parameter (u=%v k=%d l=%d copies=%d)",
			s.kind(), s.U, s.K, s.L, s.Copies)
	}
	if s.Kind == KindSketch && s.Kappa != 0 && s.Kappa < 2 {
		return fmt.Errorf("server: index %q: kappa %v must be >= 2", s.kind(), s.Kappa)
	}
	if s.Kappa < 0 {
		return fmt.Errorf("server: index %q: negative kappa %v", s.kind(), s.Kappa)
	}
	switch s.precision() {
	case PrecisionF64:
	case PrecisionF32:
		if k := s.kind(); k != KindExact && k != KindNormScan {
			return fmt.Errorf("server: precision %q supports index kinds %s and %s, not %q",
				PrecisionF32, KindExact, KindNormScan, k)
		}
	case PrecisionI8:
		if k := s.kind(); k != KindExact {
			return fmt.Errorf("server: precision %q supports index kind %s only, not %q",
				PrecisionI8, KindExact, k)
		}
	default:
		return fmt.Errorf("server: unknown precision %q (want %s, %s or %s)",
			s.Precision, PrecisionF64, PrecisionF32, PrecisionI8)
	}
	if s.Overfetch < 0 {
		return fmt.Errorf("server: negative rerank overfetch %d", s.Overfetch)
	}
	if s.Overfetch > maxOverfetch {
		return fmt.Errorf("server: rerank overfetch %d exceeds the cap %d", s.Overfetch, maxOverfetch)
	}
	return nil
}

// kind returns the effective engine name (defaulting to exact).
func (s IndexSpec) kind() string {
	if s.Kind == "" {
		return KindExact
	}
	return s.Kind
}

// The registered index kinds.
const (
	KindExact    = "exact"
	KindNormScan = "normscan"
	KindALSH     = "alsh"
	KindSketch   = "sketch"
)

// The registered storage precisions (IndexSpec.Precision).
const (
	PrecisionF64 = "f64"
	PrecisionF32 = "f32"
	PrecisionI8  = "int8"
)

// precision returns the effective storage precision (defaulting to
// f64, the tier every collection used before precisions existed).
func (s IndexSpec) precision() string {
	if s.Precision == "" {
		return PrecisionF64
	}
	return s.Precision
}

// Overfetch bounds: re-ranking k·overfetch candidates costs
// O(k·overfetch·d) exact flops per query, so the cap keeps a
// misconfigured spec from turning every query into a near-full exact
// scan through the scalar (non-blocked) re-rank path.
const (
	defaultOverfetch = 4
	maxOverfetch     = 1024
)

// defaultBanding resolves zero LSH banding parameters to the repo-wide
// defaults (K=8 concatenated hashes, L=16 tables) — the single source
// of truth for both the shard indexes and the join engines.
func defaultBanding(k, l int) (int, int) {
	if k == 0 {
		k = 8
	}
	if l == 0 {
		l = 16
	}
	return k, l
}

// defaultSketch resolves zero sketch parameters (κ=2, 9 copies).
func defaultSketch(kappa float64, copies int) (float64, int) {
	if kappa == 0 {
		kappa = 2
	}
	if copies == 0 {
		copies = 9
	}
	return kappa, copies
}

// buildShardIndex constructs the index for one shard over its columnar
// store. Shard seeds are derived from the spec seed so shards hash
// independently. Candidate-based engines (alsh, sketch) index row views
// of the store — slice headers into the contiguous backing array, no
// float copies — and verify candidates through the store's kernel.
// Quantized precisions (f32, int8) build their compact view from fs at
// index-build time and retain fs itself as the exact re-rank truth;
// overfetch scales their re-ranked candidate sets.
func buildShardIndex(spec IndexSpec, fs *flat.Store, shardSeed uint64, overfetch int) (ShardIndex, error) {
	if fs == nil || fs.Len() == 0 {
		return emptyIndex{}, nil
	}
	switch spec.kind() {
	case KindExact:
		switch spec.precision() {
		case PrecisionF32:
			return exact32Index{fs: fs, s32: flat.NewStore32(fs), overfetch: overfetch}, nil
		case PrecisionI8:
			return exactI8Index{fs: fs, i8: flat.NewStoreI8(fs), overfetch: overfetch}, nil
		}
		return exactIndex{fs: fs}, nil
	case KindNormScan:
		if spec.precision() == PrecisionF32 {
			return normScan32Index{fs: fs, ns: flat.NewNormSorted32(flat.NewStore32(fs)), overfetch: overfetch}, nil
		}
		return normScanIndex{ns: flat.NewNormSorted(fs)}, nil
	case KindALSH:
		return newALSHIndex(spec, fs, shardSeed)
	case KindSketch:
		kappa, copies := defaultSketch(spec.Kappa, spec.Copies)
		rec, err := sketch.NewRecoverer(fs.Rows(), kappa, copies, spec.Seed^shardSeed)
		if err != nil {
			return nil, err
		}
		return sketchIndex{rec: rec, fs: fs}, nil
	}
	return nil, fmt.Errorf("server: unknown index kind %q", spec.Kind)
}

// deadMasker is implemented by engines that can serve the live-rows
// view of their shard after deletions. withDead returns an index
// answering exactly as if the store held only the rows dead does not
// mark — same local row indices, canonical ordering — with dead given
// in the store's original row space. Calling withDead on an
// already-masked index replaces its dead set (each engine rebuilds its
// view from its own immutable structures), so delete publication never
// needs the unmasked original.
type deadMasker interface {
	withDead(dead *flat.Tombstones) ShardIndex
}

// batchIndex is implemented by indexes whose scan can serve a whole
// query tile in one data sweep through the register-blocked
// multi-query kernels: accs[j] receives the top-k hits (local row
// indices, canonical order) for query row qlo+j of qs, bit-identical
// to TopK(qs.Row(qlo+j), k, unsigned, 1). The batch executor tiles
// incoming queries per shard snapshot and dispatches through this
// interface; engines without a columnar sweep (alsh, sketch) fall back
// to per-query TopK.
type batchIndex interface {
	topKMulti(ctx context.Context, qs *flat.Store, qlo, qhi int, unsigned bool, accs []flat.Acc, sc *flat.TileScratch) error
}

// emptyIndex serves a shard that holds no vectors yet.
type emptyIndex struct{}

func (emptyIndex) TopK(context.Context, vec.Vector, int, bool, int) ([]Hit, error) {
	return nil, nil
}

func (ix emptyIndex) withDead(*flat.Tombstones) ShardIndex { return ix }

// topKMulti implements batchIndex: no rows, so every accumulator stays
// empty, exactly like the per-query path.
func (emptyIndex) topKMulti(context.Context, *flat.Store, int, int, bool, []flat.Acc, *flat.TileScratch) error {
	return nil
}

// flatHits converts flat scan hits into serving-layer hits.
func flatHits(hs []flat.Hit) []Hit {
	out := make([]Hit, len(hs))
	for i, h := range hs {
		out[i] = Hit{ID: h.Index, Score: h.Score}
	}
	return out
}

// parallelScanner marks indexes whose TopK can actually spend a
// workers hint, reporting how many workers the scan can use, so the
// serving layer only reserves the parallelism budget it will spend.
type parallelScanner interface {
	maxScanWorkers() int
}

// exactIndex is the Θ(nd) full scan — the ground-truth engine and the
// default for collections that must return exact answers. It runs the
// blocked columnar kernel, splitting the scan across workers goroutines
// for large shards. dead (nil until the first delete) restricts the
// scan to live rows; the masked kernels delegate straight to the
// unmasked ones when it is empty, so the mutation path costs nothing
// on a collection that never deletes.
type exactIndex struct {
	fs   *flat.Store
	dead *flat.Tombstones
}

func (ix exactIndex) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	hs, err := ix.fs.TopKMaskedCtx(ctx, q, k, unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	return flatHits(hs), nil
}

func (ix exactIndex) maxScanWorkers() int { return ix.fs.MaxScanWorkers() }

func (ix exactIndex) withDead(dead *flat.Tombstones) ShardIndex {
	return exactIndex{fs: ix.fs, dead: dead}
}

// topKMulti implements batchIndex via the store's one-sweep
// multi-query driver.
func (ix exactIndex) topKMulti(ctx context.Context, qs *flat.Store, qlo, qhi int, unsigned bool, accs []flat.Acc, sc *flat.TileScratch) error {
	return ix.fs.TopKMultiMaskedIntoCtx(ctx, qs, qlo, qhi, unsigned, accs, sc, ix.dead)
}

// rerankIndex is implemented by engines that can widen their candidate
// set and re-score it through retained exact (f64) rows: TopKRerank
// answers like TopK but with scores bit-identical to the f64 exact
// scan's — same hits, same canonical order — as long as the quantized
// candidate set covered the true top k (guaranteed-approximate, exact
// once overfetch covers the quantization error). int8 engines re-rank
// unconditionally (their raw scores are too coarse to serve); for f32
// engines re-ranking is the per-query opt-in behind SearchOpts.Rerank.
type rerankIndex interface {
	TopKRerank(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error)
}

// overfetchK widens k by the overfetch factor, saturating instead of
// overflowing on absurd k.
func overfetchK(k, overfetch int) int {
	if overfetch <= 1 {
		return k
	}
	if k > int(^uint(0)>>1)/overfetch {
		return k
	}
	return k * overfetch
}

// rerankHits re-scores quantized candidates (local row indices) through
// the exact f64 store and returns the top k under the canonical
// ordering. Scores come from the same DotRange kernel as the exact
// scan, so a candidate set that covers the true top k yields answers
// bit-identical to exactIndex. The candidate set is at most
// k·overfetch rows, so the loop needs no ctx polling beyond the entry
// check its callers already performed.
func rerankHits(fs *flat.Store, q vec.Vector, cands []Hit, k int, unsigned bool) ([]Hit, error) {
	acc := flat.NewAcc(k)
	var out [1]float64
	for _, h := range cands {
		if err := fs.DotRange(q, h.ID, h.ID+1, out[:]); err != nil {
			return nil, err
		}
		v := out[0]
		if unsigned && v < 0 {
			v = -v
		}
		acc.Offer(h.ID, v)
	}
	return flatHits(acc.Hits()), nil
}

// exact32Index is the f32 full scan: half the bytes per row of
// exactIndex, f32-accurate scores, with the exact f64 rows retained for
// the opt-in re-rank path.
type exact32Index struct {
	fs        *flat.Store
	s32       *flat.Store32
	dead      *flat.Tombstones
	overfetch int
}

func (ix exact32Index) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	hs, err := ix.s32.TopKMaskedCtx(ctx, q, k, unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	return flatHits(hs), nil
}

func (ix exact32Index) TopKRerank(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	cands, err := ix.TopK(ctx, q, overfetchK(k, ix.overfetch), unsigned, workers)
	if err != nil {
		return nil, err
	}
	return rerankHits(ix.fs, q, cands, k, unsigned)
}

func (ix exact32Index) maxScanWorkers() int { return ix.s32.MaxScanWorkers() }

func (ix exact32Index) withDead(dead *flat.Tombstones) ShardIndex {
	return exact32Index{fs: ix.fs, s32: ix.s32, dead: dead, overfetch: ix.overfetch}
}

// normScan32Index is the f32 norm-pruned scan: descending-norm f32 rows
// with the epsilon-inflated Cauchy–Schwarz early exit (see
// flat.NormSorted32), plus the retained f64 rows for re-ranking.
// Returned hits already carry original row indices (the view maps them
// back through its permutation).
type normScan32Index struct {
	fs *flat.Store
	ns *flat.NormSorted32
	// dead lives in the view's physical row order, like normScanIndex.
	dead      *flat.Tombstones
	overfetch int
}

func (ix normScan32Index) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int) ([]Hit, error) {
	hs, _, err := ix.ns.TopKMaskedCtx(ctx, q, k, unsigned, ix.dead)
	if err != nil {
		return nil, err
	}
	return flatHits(hs), nil
}

func (ix normScan32Index) TopKRerank(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	cands, err := ix.TopK(ctx, q, overfetchK(k, ix.overfetch), unsigned, workers)
	if err != nil {
		return nil, err
	}
	return rerankHits(ix.fs, q, cands, k, unsigned)
}

func (ix normScan32Index) withDead(dead *flat.Tombstones) ShardIndex {
	return normScan32Index{fs: ix.fs, ns: ix.ns, dead: dead.Gather(ix.ns.Perm()), overfetch: ix.overfetch}
}

// exactI8Index is the int8 tier: an eighth of the scan bytes, scores
// from exact int32 accumulation over symmetric codes. Raw int8 scores
// are candidates only — TopK itself fetches k·overfetch candidates and
// re-ranks them through the retained f64 rows, so this engine never
// serves an approximate score (the same candidate-then-verify guarantee
// alsh and sketch carry).
type exactI8Index struct {
	fs        *flat.Store
	i8        *flat.StoreI8
	dead      *flat.Tombstones
	overfetch int
}

func (ix exactI8Index) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	hs, err := ix.i8.TopKMaskedCtx(ctx, q, overfetchK(k, ix.overfetch), unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	return rerankHits(ix.fs, q, flatHits(hs), k, unsigned)
}

// TopKRerank is TopK: the int8 tier always re-ranks.
func (ix exactI8Index) TopKRerank(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int) ([]Hit, error) {
	return ix.TopK(ctx, q, k, unsigned, workers)
}

func (ix exactI8Index) maxScanWorkers() int { return ix.i8.MaxScanWorkers() }

func (ix exactI8Index) withDead(dead *flat.Tombstones) ShardIndex {
	return exactI8Index{fs: ix.fs, i8: ix.i8, dead: dead, overfetch: ix.overfetch}
}

// normScanIndex is the exact top-k variant of mips.NormPruned over the
// norm-sorted columnar view: row-blocks are visited in decreasing-norm
// order and the scan stops at the first block whose Cauchy–Schwarz
// bound ‖p‖·‖q‖ — which also bounds |pᵀq| — cannot displace the k-th
// best hit.
type normScanIndex struct {
	ns *flat.NormSorted
	// dead lives in the norm-sorted physical row order (withDead
	// pre-permutes once per delete publication, so the scan never pays
	// a per-row indirection).
	dead *flat.Tombstones
}

func (ix normScanIndex) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int) ([]Hit, error) {
	hs, _, err := ix.ns.TopKMaskedCtx(ctx, q, k, unsigned, ix.dead)
	if err != nil {
		return nil, err
	}
	return flatHits(hs), nil
}

func (ix normScanIndex) withDead(dead *flat.Tombstones) ShardIndex {
	return normScanIndex{ns: ix.ns, dead: dead.Gather(ix.ns.Perm())}
}

// topKMulti implements batchIndex: one descending-norm sweep serves
// the whole tile, the Cauchy–Schwarz bound applied per query.
func (ix normScanIndex) topKMulti(ctx context.Context, qs *flat.Store, qlo, qhi int, unsigned bool, accs []flat.Acc, sc *flat.TileScratch) error {
	return ix.ns.TopKMultiMaskedIntoCtx(ctx, qs, qlo, qhi, unsigned, accs, nil, sc, ix.dead)
}

// alshIndex is the §4.1 structure (SIMPLE map + hyperplane banding):
// approximate candidates from the index, exact scores verified through
// the shard's columnar store.
type alshIndex struct {
	fs   *flat.Store
	ix   *lsh.Index
	u    float64
	dead *flat.Tombstones
}

func newALSHIndex(spec IndexSpec, fs *flat.Store, shardSeed uint64) (*alshIndex, error) {
	u := spec.U
	if u == 0 {
		u = 1
	}
	k, l := defaultBanding(spec.K, spec.L)
	tr, err := transform.NewSimple(fs.Dim(), u)
	if err != nil {
		return nil, err
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	fam, err := lsh.NewAsymmetric("simple-alsh",
		lsh.MapPair{Data: tr.Data, Query: tr.Query}, inner)
	if err != nil {
		return nil, err
	}
	ix, err := lsh.NewIndex(fam, k, l, spec.Seed^shardSeed)
	if err != nil {
		return nil, err
	}
	ix.InsertAll(fs.Rows())
	return &alshIndex{fs: fs, ix: ix, u: u}, nil
}

func (ix *alshIndex) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int) ([]Hit, error) {
	if len(q) != ix.fs.Dim() {
		return nil, fmt.Errorf("server: query dimension %d, index has %d", len(q), ix.fs.Dim())
	}
	// Candidate scoring is cheap per row but the candidate set is
	// unbounded; poll the deadline at entry and periodically through the
	// verification loop (a nil Done keeps the loop poll-free).
	done := ctx.Done()
	if done != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	probe := q
	if n := vec.Norm(q); n > ix.u {
		probe = vec.Scaled(q, (1-1e-12)*ix.u/n)
	}
	acc := flat.NewAcc(k)
	scored := 0
	var stopped bool
	score := func(pi int) {
		if done != nil {
			if scored++; scored&1023 == 0 {
				select {
				case <-done:
					stopped = true
					return
				default:
				}
			}
		}
		if ix.dead.Dead(pi) {
			return
		}
		v := ix.fs.Dot(pi, q)
		if unsigned && v < 0 {
			v = -v
		}
		acc.Offer(pi, v)
	}
	seen := make(map[int]bool)
	for _, pi := range ix.ix.Candidates(probe) {
		if stopped {
			return nil, ctx.Err()
		}
		seen[pi] = true
		score(pi)
	}
	if unsigned {
		// The paper's unsigned reduction: probe −q too.
		for _, pi := range ix.ix.Candidates(vec.Neg(probe)) {
			if stopped {
				return nil, ctx.Err()
			}
			if !seen[pi] {
				score(pi)
			}
		}
	}
	if stopped {
		return nil, ctx.Err()
	}
	return flatHits(acc.Hits()), nil
}

func (ix *alshIndex) withDead(dead *flat.Tombstones) ShardIndex {
	return &alshIndex{fs: ix.fs, ix: ix.ix, u: ix.u, dead: dead}
}

// sketchIndex answers via the §4.3 trie recoverer (unsigned only,
// top-1 by construction); the recovered candidate's score is
// re-verified against the columnar store. A tombstoned recovery yields
// no hit — the sketch has no second candidate — so recall degrades on
// deleted rows until compaction rebuilds the recoverer over live rows.
type sketchIndex struct {
	rec  *sketch.Recoverer
	fs   *flat.Store
	dead *flat.Tombstones
}

func (ix sketchIndex) withDead(dead *flat.Tombstones) ShardIndex {
	return sketchIndex{rec: ix.rec, fs: ix.fs, dead: dead}
}

func (ix sketchIndex) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int) ([]Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !unsigned {
		return nil, fmt.Errorf("server: sketch index answers unsigned queries only")
	}
	if len(q) != ix.fs.Dim() {
		return nil, fmt.Errorf("server: query dimension %d, index has %d", len(q), ix.fs.Dim())
	}
	// The recoverer's score is already the exact |pᵀq| over this
	// shard's store rows (bit-identical to fs.Dot — shared kernel).
	idx, v := ix.rec.Query(q)
	if idx < 0 || ix.dead.Dead(idx) {
		return nil, nil
	}
	return []Hit{{ID: idx, Score: v}}, nil
}

// searcherIndex adapts any core.Searcher — i.e. anything built by a
// registered core.SearchBuilder — into a top-1 ShardIndex, so the
// serving layer can host every (cs, s) engine the offline layer knows.
type searcherIndex struct {
	s  core.Searcher
	sp core.Spec
}

// FromSearchBuilder builds P into a top-1 ShardIndex driven by the
// given (cs, s) spec: a hit is returned only when the searcher reports
// a point clearing c·s.
func FromSearchBuilder(b core.SearchBuilder, P []vec.Vector, sp core.Spec) (ShardIndex, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	s, err := b.Build(P)
	if err != nil {
		return nil, err
	}
	return searcherIndex{s: s, sp: sp}, nil
}

func (ix searcherIndex) TopK(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int) ([]Hit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := ix.sp
	if unsigned {
		sp.Variant = core.Unsigned
	} else {
		sp.Variant = core.Signed
	}
	idx, v, ok := ix.s.Search(q, sp)
	if !ok {
		return nil, nil
	}
	return []Hit{{ID: idx, Score: v}}, nil
}
