// Package server is the online serving subsystem of the reproduction: a
// concurrent, sharded inner-product search and join server. Named
// collections wrap store.Relation snapshots; each collection is split
// across N goroutine-owned shards, every shard holding its own index
// built from a selectable engine (exact scan, norm-pruned MIPS scan,
// §4.1 ALSH, or the §4.3 sketch recovery structure). Queries fan out to
// the shards and the per-shard top-k lists are combined by a k-way
// merge; batches run on a worker pool and results are memoized in an
// LRU cache invalidated on ingest.
package server

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/lsh"
	"repro/internal/sketch"
	"repro/internal/transform"
	"repro/internal/vec"
)

// Hit is one search answer: a record ID and its (absolute, for
// unsigned) inner product with the query.
type Hit struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// ShardIndex answers top-k MIPS queries over one shard's vectors.
// Returned hits carry *local* indices into the build slice, are ordered
// by decreasing score with ties broken by increasing index, and have
// exact scores (re-verified against the raw vectors by candidate-based
// engines).
type ShardIndex interface {
	// TopK returns up to k hits for q; unsigned ranks by |pᵀq|.
	TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error)
}

// IndexSpec selects and parameterizes the per-shard index engine. The
// zero value of every field means "use the engine default".
type IndexSpec struct {
	// Kind is one of "exact", "normscan", "alsh", "sketch".
	Kind string `json:"kind"`
	// U is the ALSH query-ball radius (default 1).
	U float64 `json:"u,omitempty"`
	// K, L are the ALSH banding parameters (defaults 8, 16).
	K int `json:"k,omitempty"`
	L int `json:"l,omitempty"`
	// Kappa, Copies parameterize the sketch recoverer (defaults 2, 9).
	Kappa  float64 `json:"kappa,omitempty"`
	Copies int     `json:"copies,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// Validate checks that the spec names a registered engine and that
// its parameters are usable (zero always means "default"), so bad
// specs fail at collection creation instead of at the first ingest.
func (s IndexSpec) Validate() error {
	switch s.Kind {
	case "", KindExact, KindNormScan, KindALSH, KindSketch:
	default:
		return fmt.Errorf("server: unknown index kind %q (want %s, %s, %s or %s)",
			s.Kind, KindExact, KindNormScan, KindALSH, KindSketch)
	}
	if s.U < 0 || s.K < 0 || s.L < 0 || s.Copies < 0 {
		return fmt.Errorf("server: index %q: negative parameter (u=%v k=%d l=%d copies=%d)",
			s.kind(), s.U, s.K, s.L, s.Copies)
	}
	if s.Kind == KindSketch && s.Kappa != 0 && s.Kappa < 2 {
		return fmt.Errorf("server: index %q: kappa %v must be >= 2", s.kind(), s.Kappa)
	}
	if s.Kappa < 0 {
		return fmt.Errorf("server: index %q: negative kappa %v", s.kind(), s.Kappa)
	}
	return nil
}

// kind returns the effective engine name (defaulting to exact).
func (s IndexSpec) kind() string {
	if s.Kind == "" {
		return KindExact
	}
	return s.Kind
}

// The registered index kinds.
const (
	KindExact    = "exact"
	KindNormScan = "normscan"
	KindALSH     = "alsh"
	KindSketch   = "sketch"
)

// defaultBanding resolves zero LSH banding parameters to the repo-wide
// defaults (K=8 concatenated hashes, L=16 tables) — the single source
// of truth for both the shard indexes and the join engines.
func defaultBanding(k, l int) (int, int) {
	if k == 0 {
		k = 8
	}
	if l == 0 {
		l = 16
	}
	return k, l
}

// defaultSketch resolves zero sketch parameters (κ=2, 9 copies).
func defaultSketch(kappa float64, copies int) (float64, int) {
	if kappa == 0 {
		kappa = 2
	}
	if copies == 0 {
		copies = 9
	}
	return kappa, copies
}

// buildShardIndex constructs the index for one shard. Shard seeds are
// derived from the spec seed so shards hash independently.
func buildShardIndex(spec IndexSpec, vs []vec.Vector, shardSeed uint64) (ShardIndex, error) {
	if len(vs) == 0 {
		return emptyIndex{}, nil
	}
	switch spec.kind() {
	case KindExact:
		return exactIndex{data: vs}, nil
	case KindNormScan:
		return newNormScanIndex(vs), nil
	case KindALSH:
		return newALSHIndex(spec, vs, shardSeed)
	case KindSketch:
		kappa, copies := defaultSketch(spec.Kappa, spec.Copies)
		rec, err := sketch.NewRecoverer(vs, kappa, copies, spec.Seed^shardSeed)
		if err != nil {
			return nil, err
		}
		return sketchIndex{rec: rec, data: vs}, nil
	}
	return nil, fmt.Errorf("server: unknown index kind %q", spec.Kind)
}

// emptyIndex serves a shard that holds no vectors yet.
type emptyIndex struct{}

func (emptyIndex) TopK(vec.Vector, int, bool) ([]Hit, error) { return nil, nil }

// topKAcc accumulates the k best (local index, score) pairs with the
// canonical ordering: score descending, index ascending on ties.
type topKAcc struct {
	k    int
	hits []Hit
}

func (a *topKAcc) offer(id int, score float64) {
	if len(a.hits) == a.k {
		last := a.hits[a.k-1]
		if score < last.Score || (score == last.Score && id > last.ID) {
			return
		}
		a.hits = a.hits[:a.k-1]
	}
	pos := sort.Search(len(a.hits), func(i int) bool {
		h := a.hits[i]
		return h.Score < score || (h.Score == score && h.ID > id)
	})
	a.hits = append(a.hits, Hit{})
	copy(a.hits[pos+1:], a.hits[pos:])
	a.hits[pos] = Hit{ID: id, Score: score}
}

// worst returns the current k-th best score, or -Inf while under-full.
func (a *topKAcc) full() bool { return len(a.hits) == a.k }

// exactIndex is the Θ(nd) full scan — the ground-truth engine and the
// default for collections that must return exact answers.
type exactIndex struct{ data []vec.Vector }

func (ix exactIndex) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	acc := topKAcc{k: k}
	for i, p := range ix.data {
		v := vec.Dot(p, q)
		if unsigned && v < 0 {
			v = -v
		}
		acc.offer(i, v)
	}
	return acc.hits, nil
}

// normScanIndex is the exact top-k variant of mips.NormPruned: vectors
// are visited in decreasing-norm order and the scan stops once the
// Cauchy–Schwarz bound ‖p‖·‖q‖ — which also bounds |pᵀq| — cannot
// displace the k-th best hit.
type normScanIndex struct {
	data  []vec.Vector
	order []int
	norms []float64
}

func newNormScanIndex(vs []vec.Vector) *normScanIndex {
	ix := &normScanIndex{
		data:  vs,
		order: make([]int, len(vs)),
		norms: make([]float64, len(vs)),
	}
	for i, p := range vs {
		ix.order[i] = i
		ix.norms[i] = vec.Norm(p)
	}
	sort.Slice(ix.order, func(a, b int) bool {
		na, nb := ix.norms[ix.order[a]], ix.norms[ix.order[b]]
		if na != nb {
			return na > nb
		}
		return ix.order[a] < ix.order[b]
	})
	return ix
}

func (ix *normScanIndex) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	qn := vec.Norm(q)
	acc := topKAcc{k: k}
	for _, i := range ix.order {
		if acc.full() && ix.norms[i]*qn < acc.hits[k-1].Score {
			break // no remaining vector can enter the top k
		}
		v := vec.Dot(ix.data[i], q)
		if unsigned && v < 0 {
			v = -v
		}
		acc.offer(i, v)
	}
	return acc.hits, nil
}

// alshIndex is the §4.1 structure (SIMPLE map + hyperplane banding):
// approximate candidates from the index, exact scores over them.
type alshIndex struct {
	data []vec.Vector
	ix   *lsh.Index
	u    float64
}

func newALSHIndex(spec IndexSpec, vs []vec.Vector, shardSeed uint64) (*alshIndex, error) {
	u := spec.U
	if u == 0 {
		u = 1
	}
	k, l := defaultBanding(spec.K, spec.L)
	tr, err := transform.NewSimple(len(vs[0]), u)
	if err != nil {
		return nil, err
	}
	inner, err := lsh.NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	fam, err := lsh.NewAsymmetric("simple-alsh",
		lsh.MapPair{Data: tr.Data, Query: tr.Query}, inner)
	if err != nil {
		return nil, err
	}
	ix, err := lsh.NewIndex(fam, k, l, spec.Seed^shardSeed)
	if err != nil {
		return nil, err
	}
	ix.InsertAll(vs)
	return &alshIndex{data: vs, ix: ix, u: u}, nil
}

func (ix *alshIndex) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	probe := q
	if n := vec.Norm(q); n > ix.u {
		probe = vec.Scaled(q, (1-1e-12)*ix.u/n)
	}
	acc := topKAcc{k: k}
	score := func(pi int) {
		v := vec.Dot(ix.data[pi], q)
		if unsigned && v < 0 {
			v = -v
		}
		acc.offer(pi, v)
	}
	seen := make(map[int]bool)
	for _, pi := range ix.ix.Candidates(probe) {
		seen[pi] = true
		score(pi)
	}
	if unsigned {
		// The paper's unsigned reduction: probe −q too.
		for _, pi := range ix.ix.Candidates(vec.Neg(probe)) {
			if !seen[pi] {
				score(pi)
			}
		}
	}
	return acc.hits, nil
}

// sketchIndex answers via the §4.3 trie recoverer (unsigned only,
// top-1 by construction).
type sketchIndex struct {
	rec  *sketch.Recoverer
	data []vec.Vector
}

func (ix sketchIndex) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	if !unsigned {
		return nil, fmt.Errorf("server: sketch index answers unsigned queries only")
	}
	idx, v := ix.rec.Query(q)
	if idx < 0 {
		return nil, nil
	}
	return []Hit{{ID: idx, Score: v}}, nil
}

// searcherIndex adapts any core.Searcher — i.e. anything built by a
// registered core.SearchBuilder — into a top-1 ShardIndex, so the
// serving layer can host every (cs, s) engine the offline layer knows.
type searcherIndex struct {
	s  core.Searcher
	sp core.Spec
}

// FromSearchBuilder builds P into a top-1 ShardIndex driven by the
// given (cs, s) spec: a hit is returned only when the searcher reports
// a point clearing c·s.
func FromSearchBuilder(b core.SearchBuilder, P []vec.Vector, sp core.Spec) (ShardIndex, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	s, err := b.Build(P)
	if err != nil {
		return nil, err
	}
	return searcherIndex{s: s, sp: sp}, nil
}

func (ix searcherIndex) TopK(q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	sp := ix.sp
	if unsigned {
		sp.Variant = core.Unsigned
	} else {
		sp.Variant = core.Signed
	}
	idx, v, ok := ix.s.Search(q, sp)
	if !ok {
		return nil, nil
	}
	return []Hit{{ID: idx, Score: v}}, nil
}
