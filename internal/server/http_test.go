package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatalf("encoding request: %v", err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func TestHTTPAPI(t *testing.T) {
	s := New(Config{DefaultShards: 4, CacheCapacity: 32})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rng := xrand.New(21)
	items := dataset.Gaussian(rng, 200, 8, false)
	users := dataset.Gaussian(rng, 30, 8, false)

	// Bulk ingest with explicit IDs.
	recs := make([]RecordJSON, len(items))
	for i, v := range items {
		id := i
		recs[i] = RecordJSON{ID: &id, Vec: v}
	}
	var ing IngestResponse
	if code := doJSON(t, ts, http.MethodPut, "/collections/items",
		IngestRequest{Index: &IndexSpec{Kind: KindExact}, Shards: 4, Records: recs}, &ing); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	if ing.Records != len(items) || ing.Version != 1 {
		t.Fatalf("ingest response %+v", ing)
	}

	// Single search.
	var single SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/items/search",
		SearchRequest{Q: users[0], K: 5}, &single); code != http.StatusOK {
		t.Fatalf("single search status %d", code)
	}
	if len(single.Matches) != 5 {
		t.Fatalf("single search returned %d matches, want 5", len(single.Matches))
	}

	// Batched search agrees with the single answers.
	qs := make([][]float64, len(users))
	for i, u := range users {
		qs[i] = u
	}
	var batch SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/items/search",
		SearchRequest{Queries: qs, K: 5}, &batch); code != http.StatusOK {
		t.Fatalf("batch search status %d", code)
	}
	if len(batch.Results) != len(users) {
		t.Fatalf("batch returned %d result lists, want %d", len(batch.Results), len(users))
	}
	for i := range batch.Results[0] {
		if batch.Results[0][i] != single.Matches[i] {
			t.Fatalf("batch result %d = %+v, single = %+v", i, batch.Results[0][i], single.Matches[i])
		}
	}

	// The repeat single query must be cache-served.
	var repeat SearchResponse
	doJSON(t, ts, http.MethodPost, "/collections/items/search", SearchRequest{Q: users[0], K: 5}, &repeat)
	if repeat.Cached != 1 {
		t.Fatalf("repeat search cached=%d, want 1", repeat.Cached)
	}

	// Join between two served collections.
	urecs := make([]RecordJSON, len(users))
	for i, v := range users {
		id := i
		urecs[i] = RecordJSON{ID: &id, Vec: v}
	}
	doJSON(t, ts, http.MethodPut, "/collections/users", IngestRequest{Records: urecs}, nil)
	var jr JoinResponse
	if code := doJSON(t, ts, http.MethodPost, "/join",
		JoinRequest{Data: "items", Queries: "users", Engine: "exact", S: 0.5}, &jr); code != http.StatusOK {
		t.Fatalf("join status %d", code)
	}
	if jr.Engine != "tiled" || jr.Compared != int64(len(items)*len(users)) {
		t.Fatalf("join response %+v", jr)
	}

	// Health and stats.
	var hz map[string]any
	if code := doJSON(t, ts, http.MethodGet, "/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	var st Stats
	if code := doJSON(t, ts, http.MethodGet, "/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	cs, ok := st.Collections["items"]
	if !ok {
		t.Fatal("stats missing collection items")
	}
	if cs.Records != len(items) || len(cs.Shards) != 4 {
		t.Fatalf("stats collection %+v", cs)
	}
	total := 0
	for _, sh := range cs.Shards {
		total += sh.Records
	}
	if total != len(items) {
		t.Fatalf("shard sizes sum to %d, want %d", total, len(items))
	}
	if cs.Latency.P50 < 0 || cs.Latency.P99 < cs.Latency.P50 {
		t.Fatalf("implausible latency summary %+v", cs.Latency)
	}

	// Error paths.
	var e map[string]string
	if code := doJSON(t, ts, http.MethodPost, "/collections/nope/search",
		SearchRequest{Q: users[0], K: 1}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown collection status %d (%v)", code, e)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/items/search",
		SearchRequest{K: 1}, &e); code != http.StatusBadRequest {
		t.Fatalf("empty query status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/items/search",
		SearchRequest{Q: []float64{1}, K: 1}, &e); code != http.StatusBadRequest {
		t.Fatalf("dimension mismatch status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPut, "/collections/items",
		IngestRequest{Index: &IndexSpec{Kind: KindALSH}}, &e); code != http.StatusBadRequest {
		t.Fatalf("index respec status %d", code)
	}
}

func TestHTTPSketchUnsignedOnly(t *testing.T) {
	s := New(Config{DefaultShards: 1})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	rng := xrand.New(33)
	items := dataset.Gaussian(rng, 64, 8, true)
	recs := make([]RecordJSON, len(items))
	for i, v := range items {
		id := i
		recs[i] = RecordJSON{ID: &id, Vec: v}
	}
	if code := doJSON(t, ts, http.MethodPut, "/collections/sk",
		IngestRequest{Index: &IndexSpec{Kind: KindSketch, Kappa: 2, Copies: 9}, Shards: 1, Records: recs}, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	var e map[string]string
	if code := doJSON(t, ts, http.MethodPost, "/collections/sk/search",
		SearchRequest{Q: items[0], K: 1}, &e); code != http.StatusBadRequest {
		t.Fatalf("signed query against sketch index: status %d, want 400", code)
	}
	var ok SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/sk/search",
		SearchRequest{Q: items[0], K: 1, Unsigned: true}, &ok); code != http.StatusOK {
		t.Fatalf("unsigned query status %d", code)
	}
	if len(ok.Matches) != 1 {
		t.Fatalf("unsigned query returned %d matches, want 1", len(ok.Matches))
	}
}

// TestHTTPDimensionMismatch pins the structured-400 contract for every
// dimension-mismatch path: mixed-dimension ingest batches, follow-up
// batches that disagree with the collection, single and batched queries
// of the wrong width, and overflow queries whose scores are not
// JSON-representable. None of these may panic or return a non-JSON
// body — they used to be able to reach vec.Dot's panic (or kill the
// JSON encoder mid-response) through the index engines.
func TestHTTPDimensionMismatch(t *testing.T) {
	for _, kind := range []string{KindExact, KindNormScan, KindALSH} {
		t.Run(kind, func(t *testing.T) {
			s := New(Config{DefaultShards: 2})
			defer s.Close()
			ts := httptest.NewServer(NewHandler(s))
			defer ts.Close()

			var e map[string]string
			// Mixed dimensions inside the very first batch.
			if code := doJSON(t, ts, http.MethodPut, "/collections/c",
				IngestRequest{Index: &IndexSpec{Kind: kind}, Records: []RecordJSON{
					{Vec: []float64{1, 0, 0}},
					{Vec: []float64{1, 0}},
				}}, &e); code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("mixed-dimension first batch: status %d, error %q", code, e["error"])
			}
			// A rejected batch must leave no records behind.
			if code := doJSON(t, ts, http.MethodPut, "/collections/c",
				IngestRequest{Index: &IndexSpec{Kind: kind}, Records: []RecordJSON{
					{Vec: []float64{0.6, 0, 0}},
					{Vec: []float64{0, 0.6, 0}},
				}}, nil); code != http.StatusOK {
				t.Fatalf("clean ingest after rejected batch: status %d", code)
			}
			// A follow-up batch with the wrong dimension.
			if code := doJSON(t, ts, http.MethodPut, "/collections/c",
				IngestRequest{Records: []RecordJSON{{Vec: []float64{1, 2, 3, 4}}}}, &e); code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("wrong-dimension follow-up batch: status %d, error %q", code, e["error"])
			}
			// Single query, wrong width.
			if code := doJSON(t, ts, http.MethodPost, "/collections/c/search",
				SearchRequest{Q: []float64{1, 0}}, &e); code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("wrong-dimension single query: status %d, error %q", code, e["error"])
			}
			// Batch where only the second query is malformed.
			if code := doJSON(t, ts, http.MethodPost, "/collections/c/search",
				SearchRequest{Queries: [][]float64{{1, 0, 0}, {1, 0, 0, 0, 0}}}, &e); code != http.StatusBadRequest || e["error"] == "" {
				t.Fatalf("wrong-dimension batched query: status %d, error %q", code, e["error"])
			}
			// Well-formed request, and the collection still serves.
			var ok SearchResponse
			if code := doJSON(t, ts, http.MethodPost, "/collections/c/search",
				SearchRequest{Q: []float64{1, 0, 0}, K: 2, Unsigned: true}, &ok); code != http.StatusOK {
				t.Fatalf("valid query after mismatches: status %d", code)
			}
			// Exact engines must return both records; alsh is
			// candidate-based and may legitimately miss.
			if kind != KindALSH && len(ok.Matches) != 2 {
				t.Fatalf("valid query returned %d matches, want 2", len(ok.Matches))
			}
		})
	}
}

// TestHTTPNonFiniteScores pins the fuzz-found encoder bug: a finite
// query whose inner products overflow to ±Inf must yield a structured
// 400, not an empty 200 from a failed JSON encode.
func TestHTTPNonFiniteScores(t *testing.T) {
	s := New(Config{DefaultShards: 1})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	if code := doJSON(t, ts, http.MethodPut, "/collections/big",
		IngestRequest{Records: []RecordJSON{{Vec: []float64{1e308, 1e308}}}}, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	var e map[string]string
	if code := doJSON(t, ts, http.MethodPost, "/collections/big/search",
		SearchRequest{Q: []float64{1e308, 1e308}}, &e); code != http.StatusBadRequest || e["error"] == "" {
		t.Fatalf("overflowing query: status %d, error %q (want 400 with error)", code, e["error"])
	}
}
