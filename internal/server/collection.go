package server

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errfs"
	"repro/internal/persist"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/vec"
)

// Collection is a named, sharded vector set. The source of truth is a
// store.Versioned relation (immutable snapshots, used by the join
// endpoint and /stats); serving happens against per-shard indexes that
// are rebuilt on the shard-owner goroutines at ingest time. When the
// server is durable, every ingest batch is appended to the
// collection's write-ahead log before it becomes visible, and a
// background checkpoint compacts the log into segment snapshots.
type Collection struct {
	name   string
	spec   IndexSpec
	rel    *store.Versioned
	shards []*shard
	// gen is the collection's incarnation number, unique within the
	// owning server's lifetime; it namespaces cache keys so entries
	// from a dropped collection can never serve a same-name successor.
	gen uint64

	ingestMu sync.Mutex
	// seenIDs is the currently-live ID set: deletes remove from it, so
	// AutoID assignment may reuse an ID after its record is deleted.
	seenIDs map[int]struct{}
	nextID  int
	closed  bool
	log     *persist.Log // nil on an in-memory server

	// compactFrac and compactMin gate background compaction: it runs
	// when tombstoned rows reach compactMin and the given fraction of
	// all rows. compacting is the single-flight latch; compactions
	// counts completed runs for /stats.
	compactFrac float64
	compactMin  int
	compacting  atomic.Bool
	compactions atomic.Int64

	queries atomic.Int64
	lat     *latencyRing
	// hist is the cumulative fixed-bucket query latency histogram
	// behind /metrics (the ring above serves /stats' windowed
	// percentiles; Prometheus wants monotone counters it can rate()).
	hist *latencyHist
	// timeouts counts queries abandoned because their deadline fired
	// mid-scan (or before it started).
	timeouts atomic.Int64
	// adm is the per-collection admission gate; nil means unlimited.
	adm *gate
	// stageObs, when set by the owning server, receives per-stage
	// durations (wal_append, wal_fsync, checkpoint) for the
	// ipsd_stage_seconds histograms. Nil-safe via observeStage.
	stageObs func(stage string, d time.Duration)

	// Failure-domain state (see health.go): health holds a HealthState,
	// healthReason (under healthMu) the human-readable cause. repairing
	// is the repair probe's single-flight latch; bg closes at shutdown
	// to stop the probe and the scrubber.
	health       atomic.Int32
	healthMu     sync.Mutex
	healthReason string
	repairing    atomic.Bool
	repairs      atomic.Int64
	scrubs       atomic.Int64
	scrubErrors  atomic.Int64
	lastScrub    atomic.Int64 // unix seconds of the last completed scrub
	scrubEvery   time.Duration
	bg           chan struct{}
	bgOnce       sync.Once
	// quarDir and fsys let Drop delete a quarantined placeholder's data
	// directory even though it never got a log attached.
	quarDir string
	fsys    errfs.FS
}

// Default compaction trigger: rewrite a collection's shards once a
// quarter of the rows are tombstones, but never churn over a handful
// of dead rows — rebuilding indexes costs more than scanning past
// them until the dead set has real size.
const (
	defaultCompactFraction = 0.25
	defaultCompactMinDead  = 1024
)

// attachLog makes later ingests durable through lg. It is called once,
// before the collection starts serving ingests (at creation, or after
// boot-time replay so recovered records are not re-appended). The
// collection's storage precision is stamped onto the log here so every
// checkpoint segment carries the matching payload encoding.
func (c *Collection) attachLog(lg *persist.Log) {
	lg.SetPrecision(persist.Precision(c.spec.precision()))
	// Any latched WAL failure or failed background checkpoint degrades
	// this collection (read-only until the repair probe succeeds)
	// instead of surfacing one mutation at a time. The hook runs on its
	// own goroutine, so no lock ordering couples persist to the server.
	lg.SetFaultHook(func(err error) {
		c.degrade(fmt.Sprintf("wal/checkpoint fault: %v", err))
	})
	// The log's observer feeds fsync and checkpoint durations into the
	// per-stage histograms. It runs with the log's mutex held, and
	// observeStage only touches atomics, honoring the record-only rule.
	lg.SetObserver(c.observeStage)
	c.ingestMu.Lock()
	c.log = lg
	c.ingestMu.Unlock()
	c.startScrubber()
}

// closeLog flushes and closes the WAL, if any. Callers hold the
// server's collection map lock only; the log serializes internally.
func (c *Collection) closeLog() error {
	if c.log == nil {
		return nil
	}
	return c.log.Close()
}

// removeLog closes the WAL and deletes the collection's data
// directory, if any. A quarantined placeholder has no log but still
// owns its (damaged) directory, which DELETE must be able to discard.
func (c *Collection) removeLog() error {
	if c.log != nil {
		return c.log.Remove()
	}
	if c.quarDir != "" {
		fsys := c.fsys
		if fsys == nil {
			fsys = errfs.OS
		}
		return fsys.RemoveAll(c.quarDir)
	}
	return nil
}

// persistSnapshot is the checkpointer's coherent view: taking ingestMu
// means no ingest is mid-flight, so the relation's records correspond
// exactly to the WAL prefix through LastSeq.
func (c *Collection) persistSnapshot() ([]store.Record, uint64) {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	rel, _ := c.rel.Snapshot()
	return rel.Recs, c.log.LastSeq()
}

func newCollection(name string, spec IndexSpec, nshards int, seed uint64, overfetch int) (*Collection, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if nshards <= 0 {
		return nil, fmt.Errorf("server: collection %q: shard count %d must be positive", name, nshards)
	}
	// The spec's own overfetch wins (and is part of the persisted spec,
	// so it survives recovery); otherwise the server-resolved default
	// passed in applies.
	if spec.Overfetch > 0 {
		overfetch = spec.Overfetch
	}
	if overfetch <= 0 {
		overfetch = defaultOverfetch
	}
	c := &Collection{
		name:        name,
		spec:        spec,
		rel:         store.NewVersioned(name),
		shards:      make([]*shard, nshards),
		seenIDs:     make(map[int]struct{}),
		compactFrac: defaultCompactFraction,
		compactMin:  defaultCompactMinDead,
		lat:         newLatencyRing(),
		hist:        newLatencyHist(),
		bg:          make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i] = newShard(i, seed+uint64(i)*0x9e3779b97f4a7c15+1, overfetch)
	}
	return c, nil
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Spec returns the index spec the collection was created with.
func (c *Collection) Spec() IndexSpec { return c.spec }

// Shards returns the shard count.
func (c *Collection) Shards() int { return len(c.shards) }

// Len returns the current record count.
func (c *Collection) Len() int { return c.rel.Len() }

// Version returns the current ingest version.
func (c *Collection) Version() uint64 { return c.rel.Version() }

// Relation returns the current immutable relation snapshot and its
// version (for joins and diagnostics).
func (c *Collection) Relation() (*store.Relation, uint64) { return c.rel.Snapshot() }

// shardFor maps a record ID to its home shard.
func (c *Collection) shardFor(id int) int {
	n := len(c.shards)
	return ((id % n) + n) % n
}

// Ingest validates and appends records, assigns IDs to records that
// carry the sentinel AutoID, partitions the batch by ID across the
// shards, and rebuilds every touched shard's index in parallel on the
// shard-owner goroutines. The batch is all-or-nothing: records and
// new indexes become visible only after every shard's rebuild has
// succeeded, and a rejected batch leaves no trace (IDs reserved for
// it are released). Note each touched shard rebuilds its index over
// its full vector set, so prefer fewer, larger batches for the
// rebuild-heavy index kinds (alsh, sketch). Returns the new version.
func (c *Collection) Ingest(recs []store.Record) (uint64, error) {
	if len(recs) == 0 {
		return c.rel.Version(), nil
	}
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("%w: collection %q is closed", ErrUnavailable, c.name)
	}
	if err := c.checkMutable(); err != nil {
		return 0, err
	}

	// Validate dimensions before touching any state; ingestMu
	// serializes appends, so the later Append of this same batch
	// cannot fail.
	if err := c.rel.CheckAppend(recs); err != nil {
		return 0, err
	}

	// Assign and reserve IDs; any later failure releases the whole
	// batch's reservations.
	assigned := make([]store.Record, len(recs))
	copy(assigned, recs)
	if c.spec.precision() == PrecisionF32 {
		// Round to binary32 before anything durable or visible sees the
		// batch: the WAL, the relation, the shard stores and the segment
		// snapshots then all hold the identical rounded rows, which is
		// what makes the f32 segment encoding lossless.
		if err := roundRecords32(c.name, assigned); err != nil {
			return 0, err
		}
	}
	reserved := make([]int, 0, len(assigned))
	rollback := func() {
		for _, id := range reserved {
			delete(c.seenIDs, id)
		}
	}
	for i := range assigned {
		if assigned[i].ID == AutoID {
			for {
				if _, dup := c.seenIDs[c.nextID]; !dup {
					break
				}
				c.nextID++
			}
			assigned[i].ID = c.nextID
			c.nextID++
		}
		if _, dup := c.seenIDs[assigned[i].ID]; dup {
			rollback()
			return 0, fmt.Errorf("server: collection %q: duplicate record ID %d", c.name, assigned[i].ID)
		}
		c.seenIDs[assigned[i].ID] = struct{}{}
		reserved = append(reserved, assigned[i].ID)
	}

	byShard := make(map[int]int, len(c.shards))
	for _, r := range assigned {
		byShard[c.shardFor(r.ID)]++
	}
	ids := make(map[int][]int, len(byShard))
	vs := make(map[int][]vec.Vector, len(byShard))
	for si, n := range byShard {
		ids[si] = make([]int, 0, n)
		vs[si] = make([]vec.Vector, 0, n)
	}
	for _, r := range assigned {
		si := c.shardFor(r.ID)
		ids[si] = append(ids[si], r.ID)
		vs[si] = append(vs[si], r.Vec)
	}

	// Phase 1: build every touched shard's new snapshot in parallel on
	// the shard-owner goroutines, publishing nothing yet.
	snaps := make([]*shardSnap, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for si := range ids {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snaps[si], errs[si] = c.shards[si].prepare(c.spec, ids[si], vs[si])
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rollback()
			return 0, fmt.Errorf("server: collection %q: index build: %w", c.name, err)
		}
	}

	// Write-ahead: the batch must be durable (per the fsync policy)
	// before any of it becomes visible, so a crash can never lose a
	// write that a reader — or the ingest response — has observed. A
	// WAL failure aborts the ingest with no trace, same as an index
	// build failure.
	if c.log != nil {
		wstart := time.Now()
		if _, err := c.log.Append(assigned); err != nil {
			rollback()
			return 0, fmt.Errorf("%w: collection %q: wal append: %w", ErrUnavailable, c.name, err)
		}
		c.observeStage("wal_append", time.Since(wstart))
	}

	// Phase 2: publish — shard snapshots first, the version-bumping
	// relation append last. Ordering matters for the query cache: the
	// version may only advance once every shard already serves data at
	// least that new, so a result cached under the version a searcher
	// observed can never be *older* than that version claims (it can
	// transiently be newer, which the ingest's explicit invalidation
	// cleans up, and version-embedded keys strand anything it misses).
	for si, snap := range snaps {
		if snap != nil {
			c.shards[si].commit(snap)
		}
	}
	version, err := c.rel.Append(assigned)
	if err != nil {
		// Unreachable: CheckAppend vetted this batch under ingestMu.
		rollback()
		return 0, fmt.Errorf("server: collection %q: append after commit: %w", c.name, err)
	}
	if c.log != nil {
		// Compact the WAL into a segment snapshot once its tail
		// outgrows the threshold. Runs in the background; the snapshot
		// callback re-takes ingestMu for a coherent view.
		c.log.MaybeCheckpoint(c.persistSnapshot)
	}
	return version, nil
}

// AutoID marks a record whose ID the collection assigns at ingest.
const AutoID = -1 << 62

// roundRecords32 rewrites every record's vector (into fresh slices —
// the caller's records may alias request data) with its elements
// rounded to binary32, the invariant the f32 storage tier maintains
// end to end. A finite element whose rounding overflows to ±Inf is
// rejected: it would silently change the score semantics rather than
// just the precision.
func roundRecords32(name string, recs []store.Record) error {
	for i := range recs {
		v := make([]float64, len(recs[i].Vec))
		for j, x := range recs[i].Vec {
			r := float64(float32(x))
			if math.IsInf(r, 0) && !math.IsInf(x, 0) {
				return fmt.Errorf("server: collection %q: record %d element %d (%g) overflows float32",
					name, i, j, x)
			}
			v[j] = r
		}
		recs[i].Vec = v
	}
	return nil
}

// Upsert inserts or replaces records by ID: a live ID gets its vector
// and attributes overwritten, an unknown (or deleted) ID is inserted.
// Every record must carry an explicit ID — AutoID has nothing to
// address — and a batch must not name the same ID twice (the intended
// final state would be ambiguous). Replacement tombstones the old row
// in its shard and appends the new one, so the change is one WAL
// frame, one index rebuild per touched shard, and one atomic snapshot
// swap; the space held by replaced rows is reclaimed by background
// compaction. All-or-nothing like Ingest. Returns the new version.
func (c *Collection) Upsert(recs []store.Record) (uint64, error) {
	if len(recs) == 0 {
		return c.rel.Version(), nil
	}
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("%w: collection %q is closed", ErrUnavailable, c.name)
	}
	if err := c.checkMutable(); err != nil {
		return 0, err
	}
	if err := c.rel.CheckAppend(recs); err != nil {
		return 0, err
	}
	if c.spec.precision() == PrecisionF32 {
		// Same binary32 rounding as Ingest, on a private copy (the
		// caller keeps its slices).
		rounded := make([]store.Record, len(recs))
		copy(rounded, recs)
		if err := roundRecords32(c.name, rounded); err != nil {
			return 0, err
		}
		recs = rounded
	}
	inBatch := make(map[int]struct{}, len(recs))
	for _, r := range recs {
		if r.ID == AutoID {
			return 0, fmt.Errorf("server: collection %q: upsert requires explicit record IDs", c.name)
		}
		if _, dup := inBatch[r.ID]; dup {
			return 0, fmt.Errorf("server: collection %q: duplicate record ID %d in upsert batch", c.name, r.ID)
		}
		inBatch[r.ID] = struct{}{}
	}

	// Reserve IDs that are new to the collection; a failed batch
	// releases exactly those (IDs that were already live stay live).
	reserved := make([]int, 0, len(recs))
	for _, r := range recs {
		if _, ok := c.seenIDs[r.ID]; !ok {
			c.seenIDs[r.ID] = struct{}{}
			reserved = append(reserved, r.ID)
		}
	}
	rollback := func() {
		for _, id := range reserved {
			delete(c.seenIDs, id)
		}
	}

	ids := make(map[int][]int)
	vs := make(map[int][]vec.Vector)
	for _, r := range recs {
		si := c.shardFor(r.ID)
		ids[si] = append(ids[si], r.ID)
		vs[si] = append(vs[si], r.Vec)
	}

	snaps := make([]*shardSnap, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for si := range ids {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snaps[si], errs[si] = c.shards[si].prepareUpsert(c.spec, ids[si], vs[si])
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rollback()
			return 0, fmt.Errorf("server: collection %q: index build: %w", c.name, err)
		}
	}

	if c.log != nil {
		wstart := time.Now()
		if _, err := c.log.AppendUpsert(recs); err != nil {
			rollback()
			return 0, fmt.Errorf("%w: collection %q: wal append: %w", ErrUnavailable, c.name, err)
		}
		c.observeStage("wal_append", time.Since(wstart))
	}

	for si, snap := range snaps {
		if snap != nil {
			c.shards[si].commit(snap)
		}
	}
	version, err := c.rel.Mutate(recs, nil)
	if err != nil {
		// Unreachable: CheckAppend vetted this batch under ingestMu.
		rollback()
		return 0, fmt.Errorf("server: collection %q: mutate after commit: %w", c.name, err)
	}
	if c.log != nil {
		c.log.MaybeCheckpoint(c.persistSnapshot)
	}
	c.maybeCompact()
	return version, nil
}

// Delete removes records by ID. Unknown IDs are no-ops (the count of
// actually-removed records is returned alongside the version, which
// only advances when something was removed). The rows are tombstoned
// — scans skip them block-wise immediately — and their space is
// reclaimed by background compaction.
func (c *Collection) Delete(ids []int) (uint64, int, error) {
	if len(ids) == 0 {
		return c.rel.Version(), 0, nil
	}
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	if c.closed {
		return 0, 0, fmt.Errorf("%w: collection %q is closed", ErrUnavailable, c.name)
	}
	if err := c.checkMutable(); err != nil {
		return 0, 0, err
	}
	// Keep only IDs that are currently live, deduplicated, in request
	// order: the WAL frame then records exactly what changed.
	present := make([]int, 0, len(ids))
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		if _, ok := c.seenIDs[id]; ok {
			present = append(present, id)
		}
	}
	if len(present) == 0 {
		return c.rel.Version(), 0, nil
	}

	byShard := make(map[int][]int)
	for _, id := range present {
		si := c.shardFor(id)
		byShard[si] = append(byShard[si], id)
	}
	snaps := make([]*shardSnap, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for si := range byShard {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snaps[si], _, errs[si] = c.shards[si].prepareDelete(byShard[si])
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("server: collection %q: delete: %w", c.name, err)
		}
	}

	if c.log != nil {
		wstart := time.Now()
		if _, err := c.log.AppendDelete(present); err != nil {
			return 0, 0, fmt.Errorf("%w: collection %q: wal append: %w", ErrUnavailable, c.name, err)
		}
		c.observeStage("wal_append", time.Since(wstart))
	}

	for si, snap := range snaps {
		if snap != nil {
			c.shards[si].commit(snap)
		}
	}
	del := make(map[int]struct{}, len(present))
	for _, id := range present {
		del[id] = struct{}{}
		delete(c.seenIDs, id)
	}
	version, err := c.rel.Mutate(nil, del)
	if err != nil {
		// Unreachable: Mutate without upserts cannot fail validation.
		return 0, 0, fmt.Errorf("server: collection %q: mutate after commit: %w", c.name, err)
	}
	if c.log != nil {
		c.log.MaybeCheckpoint(c.persistSnapshot)
	}
	c.maybeCompact()
	return version, len(present), nil
}

// deadTotal sums tombstoned and total rows across the shards.
func (c *Collection) deadTotal() (dead, rows int) {
	for _, sh := range c.shards {
		sn := sh.snap.Load()
		dead += sn.dead.Count()
		if sn.fs != nil {
			rows += sn.fs.Len()
		}
	}
	return dead, rows
}

// maybeCompact starts a background compaction when tombstoned rows
// exceed the trigger (compactMin dead rows and compactFrac of all
// rows) and none is already running. Reports whether one was started.
func (c *Collection) maybeCompact() bool {
	if c.compactFrac < 0 {
		return false
	}
	dead, rows := c.deadTotal()
	if dead < c.compactMin || dead == 0 || float64(dead) < c.compactFrac*float64(rows) {
		return false
	}
	if !c.compacting.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer c.compacting.Store(false)
		if err := c.compact(); err != nil {
			slog.Error("server: compaction failed", "collection", c.name, "error", err)
		}
	}()
	return true
}

// compact rewrites every tombstone-carrying shard to live rows only —
// fresh contiguous store, rebuilt index, no bitmap — and then
// checkpoints the WAL into a segment, so the on-disk state is rewritten
// without the deleted rows too. Searches never block: they keep
// reading the old snapshots until the atomic swap. Writers are held
// out (ingestMu) during the rebuild, exactly like an ingest of
// comparable size.
func (c *Collection) compact() error {
	c.ingestMu.Lock()
	if c.closed {
		c.ingestMu.Unlock()
		return nil
	}
	snaps := make([]*shardSnap, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for si := range c.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			snaps[si], errs[si] = c.shards[si].prepareCompact(c.spec)
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			c.ingestMu.Unlock()
			return err
		}
	}
	for si, snap := range snaps {
		if snap != nil {
			c.shards[si].commit(snap)
		}
	}
	c.ingestMu.Unlock()
	c.compactions.Add(1)
	// The segment write reuses the checkpointer's rotate/retain
	// machinery; persistSnapshot re-takes ingestMu itself, which is why
	// the lock must be released first. The relation holds only live
	// records, so the new segment sheds every tombstoned row.
	if c.log != nil {
		return c.log.Checkpoint(c.persistSnapshot)
	}
	return nil
}

// walFsyncLag reports the collection WAL's fsync lag for /metrics;
// zero for an in-memory collection.
func (c *Collection) walFsyncLag() time.Duration {
	c.ingestMu.Lock()
	lg := c.log
	c.ingestMu.Unlock()
	if lg == nil {
		return 0
	}
	return lg.FsyncLag()
}

// observeLatency records one served query's wall time in both latency
// sinks: the windowed ring behind /stats and the cumulative histogram
// behind /metrics.
func (c *Collection) observeLatency(d time.Duration) {
	c.lat.observe(d)
	c.hist.observe(d)
}

// observeStage forwards one durability-stage duration (wal_append,
// wal_fsync, checkpoint) to the server's per-stage histograms; a
// collection without an owner drops it. Only touches atomics, so it is
// safe under the persist log's mutex.
func (c *Collection) observeStage(stage string, d time.Duration) {
	if c.stageObs != nil {
		c.stageObs(stage, d)
	}
}

// SearchOne answers a single top-k query. When pool is non-nil the
// shard fan-out runs on the worker pool; for a single-shard collection
// any worker slots that are idle right now are borrowed (non-blocking,
// released at return) to split the scan across row blocks, so one query
// against one large shard still uses every idle core while the pool's
// shared budget keeps concurrent requests from multiplying goroutines.
// When pool is nil (the batch executor path, where parallelism already
// comes from concurrent queries) shards are scanned serially on the
// calling goroutine.
//
// ctx carries the request deadline; the shard scans poll it per row
// block, so a cancelled query stops within one block and the first
// ctx error is returned. A nil ctx means no deadline.
func (c *Collection) SearchOne(ctx context.Context, pool *Pool, q vec.Vector, k int, unsigned bool) ([]Hit, error) {
	return c.searchOne(ctx, pool, q, k, unsigned, false, nil)
}

// searchOne is SearchOne plus the rerank flag — on an f32 collection it
// routes every shard through the exact re-rank pipeline (int8 shards
// re-rank unconditionally; exact engines ignore the flag) — and the
// explain slot: a non-nil ex must hold one ShardExplain per shard,
// filled in place by the fan-out.
func (c *Collection) searchOne(ctx context.Context, pool *Pool, q vec.Vector, k int, unsigned bool, rerank bool, ex []ShardExplain) ([]Hit, error) {
	if k <= 0 {
		return nil, fmt.Errorf("server: k=%d must be positive", k)
	}
	// Degraded collections keep serving reads from their last published
	// snapshots; only quarantine — no trustworthy snapshot — blocks them.
	if err := c.checkReadable(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rel, _ := c.rel.Snapshot()
	if rel.Dim != 0 && len(q) != rel.Dim {
		return nil, fmt.Errorf("server: collection %q: query dimension %d, want %d", c.name, len(q), rel.Dim)
	}
	c.queries.Add(1)
	lists := make([][]Hit, len(c.shards))
	errs := make([]error, len(c.shards))
	workers := 1
	if pool != nil && len(c.shards) == 1 {
		// Single-shard path over an index that can split its scan: the
		// scan runs inline on this goroutine, so borrow idle slots for
		// row-block parallelism — but no more than the scan can spend,
		// so excess slots aren't held hostage from concurrent requests.
		// Borrowing must never happen on the multi-shard path below —
		// holding slots while ForEach blocks acquiring more could
		// deadlock concurrent searches against each other; there,
		// parallelism comes from the shard fan-out itself.
		want := c.shards[0].scanParallelism() - 1
		if max := pool.Workers() - 1; want > max {
			want = max
		}
		extras := 0
		for extras < want && pool.TryAcquire() {
			extras++
		}
		if extras > 0 {
			defer func() {
				for i := 0; i < extras; i++ {
					pool.Release()
				}
			}()
		}
		workers = 1 + extras
	}
	scan := func(i int) {
		var shx *ShardExplain
		if ex != nil {
			shx = &ex[i]
		}
		lists[i], errs[i] = c.shards[i].topK(ctx, q, k, unsigned, workers, rerank, shx)
	}
	tr := trace.FromContext(ctx)
	ssp := tr.StartSpan("scan")
	var feedErr error
	if pool != nil && len(c.shards) > 1 {
		feedErr = pool.ForEachCtx(ctx, len(c.shards), scan)
	} else {
		done := doneChan(ctx)
		for i := range c.shards {
			if done != nil {
				select {
				case <-done:
					feedErr = ctx.Err()
				default:
				}
				if feedErr != nil {
					break
				}
			}
			scan(i)
		}
	}
	ssp.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if feedErr != nil {
		return nil, feedErr
	}
	msp := tr.StartSpan("merge")
	hits := mergeTopK(lists, k)
	msp.End()
	return hits, nil
}

// doneChan returns ctx's cancellation channel, or nil when ctx is nil
// or can never fire.
func doneChan(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// vectorBytes reports the resident vector payload per storage
// precision, computed arithmetically from physical shard rows (live +
// tombstoned): every collection retains the f64 truth rows; quantized
// tiers additionally hold their compact copy.
func (c *Collection) vectorBytes() map[string]int64 {
	rows := 0
	dim := 0
	for _, sh := range c.shards {
		if sn := sh.snap.Load(); sn.fs != nil {
			rows += sn.fs.Len()
			dim = sn.fs.Dim()
		}
	}
	elems := int64(rows) * int64(dim)
	vb := map[string]int64{PrecisionF64: elems * 8}
	switch c.spec.precision() {
	case PrecisionF32:
		vb[PrecisionF32] = elems * 4
	case PrecisionI8:
		vb[PrecisionI8] = elems
	}
	return vb
}

// statsSnapshot renders the collection for /stats.
func (c *Collection) statsSnapshot() CollectionStats {
	rel, version := c.rel.Snapshot()
	health, reason := c.healthInfo()
	cs := CollectionStats{
		Dim:           rel.Dim,
		Records:       len(rel.Recs),
		Compactions:   c.compactions.Load(),
		Compacting:    c.compacting.Load(),
		Version:       version,
		Index:         c.spec.kind(),
		Precision:     c.spec.precision(),
		VectorBytes:   c.vectorBytes(),
		Queries:       c.queries.Load(),
		Latency:       c.lat.summary(),
		Health:        health.String(),
		HealthReason:  reason,
		Repairs:       c.repairs.Load(),
		Scrubs:        c.scrubs.Load(),
		ScrubErrors:   c.scrubErrors.Load(),
		LastScrubUnix: c.lastScrub.Load(),
		Shards:        make([]ShardStats, len(c.shards)),
	}
	for i, sh := range c.shards {
		sn := sh.snap.Load()
		dead := sn.dead.Count()
		size := sh.size()
		cs.Shards[i] = ShardStats{
			ID:         i,
			Records:    size,
			Live:       size - dead,
			Tombstoned: dead,
			Queries:    sh.queries.Load(),
		}
		cs.Tombstoned += dead
	}
	return cs
}

// close stops the shard-owner goroutines. It serializes with Ingest
// through ingestMu, so an in-flight ingest finishes before the ops
// channels close and later ingests fail cleanly instead of panicking.
// Searches keep working against the final snapshots.
func (c *Collection) close() {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	// Stop the repair probe and the scrubber. Neither holds ingestMu
	// while waiting on bg, so closing it under the lock cannot deadlock;
	// an in-flight repair checkpoint finishes against the still-open log
	// (closeLog/removeLog run after close and drain it on ckptMu).
	c.bgOnce.Do(func() { close(c.bg) })
	for _, sh := range c.shards {
		sh.close()
	}
}
