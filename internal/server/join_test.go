package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// bruteJoin computes the expected served join in record-ID space: for
// each query record, the k best data records (1 for threshold mode) at
// value ≥ cs, under the canonical (query ID asc; value desc; data ID
// asc) ordering, optionally excluding identity pairs.
func bruteJoin(data, queries []store.Record, cs float64, unsigned bool, k int, excludeSelf bool) []JoinPair {
	if k <= 0 {
		k = 1
	}
	var out []JoinPair
	qs := append([]store.Record(nil), queries...)
	sort.Slice(qs, func(a, b int) bool { return qs[a].ID < qs[b].ID })
	for _, q := range qs {
		var cands []JoinPair
		for _, p := range data {
			if excludeSelf && p.ID == q.ID {
				continue
			}
			v := vec.Dot(p.Vec, q.Vec)
			if unsigned && v < 0 {
				v = -v
			}
			if v >= cs {
				cands = append(cands, JoinPair{DataID: p.ID, QueryID: q.ID, Value: v})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].Value != cands[b].Value {
				return cands[a].Value > cands[b].Value
			}
			return cands[a].DataID < cands[b].DataID
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		out = append(out, cands...)
	}
	return out
}

func samePairs(t *testing.T, label string, want, got []JoinPair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// joinWorkload ingests two collections with scattered record IDs (so
// the ID→shard partition is exercised) and returns their records.
func joinWorkload(t *testing.T, s *Server, nd, nq, d int, seed uint64) (data, queries []store.Record) {
	t.Helper()
	rng := xrand.New(seed)
	data = make([]store.Record, nd)
	for i := range data {
		data[i] = store.Record{ID: i*3 + 1, Vec: vec.Vector(rng.UnitVec(d))}
	}
	queries = make([]store.Record, nq)
	for i := range queries {
		queries[i] = store.Record{ID: i * 7, Vec: vec.Vector(rng.UnitVec(d))}
	}
	// Plant strong partners for a few queries.
	for i := 0; i < nq; i += 3 {
		data[(i*5)%nd].Vec = vec.Scaled(queries[i].Vec.Clone(), 0.97)
	}
	if _, _, err := s.Ingest("data", nil, 0, data); err != nil {
		t.Fatalf("ingest data: %v", err)
	}
	if _, _, err := s.Ingest("queries", nil, 0, queries); err != nil {
		t.Fatalf("ingest queries: %v", err)
	}
	return data, queries
}

// TestServedJoinMatchesBruteForce drives Server.Join across engines,
// modes and variants on multi-shard collections and compares the pair
// lists against the record-space brute force.
func TestServedJoinMatchesBruteForce(t *testing.T) {
	s := New(Config{DefaultShards: 4})
	defer s.Close()
	data, queries := joinWorkload(t, s, 90, 30, 8, 21)
	for _, engine := range []string{"exact", "normpruned"} {
		for _, unsigned := range []bool{false, true} {
			for _, topk := range []int{0, 3} {
				variant := "signed"
				if unsigned {
					variant = "unsigned"
				}
				label := fmt.Sprintf("%s/%s/topk=%d", engine, variant, topk)
				resp, err := s.Join(JoinRequest{
					Data: "data", Queries: "queries",
					Engine: engine, Variant: variant, S: 0.6, TopK: topk,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				want := bruteJoin(data, queries, 0.6, unsigned, topk, false)
				samePairs(t, label, want, resp.Pairs)
				if resp.Compared != int64(len(data))*int64(len(queries)) && engine == "exact" {
					t.Fatalf("%s: compared %d, want %d", label, resp.Compared, len(data)*len(queries))
				}
			}
		}
	}
}

// TestJoinPathEndpoint exercises POST /collections/{a}/join/{b} end to
// end: {a} is the data side, {b} the queries side.
func TestJoinPathEndpoint(t *testing.T) {
	s := New(Config{DefaultShards: 3})
	defer s.Close()
	data, queries := joinWorkload(t, s, 60, 20, 8, 5)
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var jr JoinResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/data/join/queries",
		JoinRequest{S: 0.55, TopK: 2}, &jr); code != http.StatusOK {
		t.Fatalf("join status %d", code)
	}
	want := bruteJoin(data, queries, 0.55, false, 2, false)
	samePairs(t, "path join", want, jr.Pairs)
	if jr.Engine != "tiled" || jr.TopK != 2 {
		t.Fatalf("response metadata %+v", jr)
	}

	// Unknown collections are 404s, bad parameters 400s.
	if code := doJSON(t, ts, http.MethodPost, "/collections/nope/join/queries",
		JoinRequest{S: 0.5}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown data collection status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/data/join/nope",
		JoinRequest{S: 0.5}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown queries collection status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/data/join/queries",
		JoinRequest{S: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative s status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/data/join/queries",
		JoinRequest{S: 0.5, Engine: "warp"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown engine status %d", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/collections/data/join/queries",
		JoinRequest{S: 0.5, TopK: -2}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative topk status %d", code)
	}
	// The legacy body-addressed route: omitting the collection names is
	// a malformed request (400), not a missing resource (404).
	if code := doJSON(t, ts, http.MethodPost, "/join",
		JoinRequest{S: 0.5}, nil); code != http.StatusBadRequest {
		t.Fatalf("nameless /join status %d, want 400", code)
	}
	if code := doJSON(t, ts, http.MethodPost, "/join",
		JoinRequest{Data: "data", Queries: "ghost", S: 0.5}, nil); code != http.StatusNotFound {
		t.Fatalf("/join with unknown queries status %d, want 404", code)
	}
}

// TestSelfJoinEndpoint checks POST /collections/{name}/join: identity
// pairs are excluded, and each query still gets its best other-record
// partner — not dropped outright when its own vector wins the argmax.
func TestSelfJoinEndpoint(t *testing.T) {
	s := New(Config{DefaultShards: 4})
	defer s.Close()
	rng := xrand.New(33)
	const n, d = 80, 8
	recs := make([]store.Record, n)
	for i := range recs {
		recs[i] = store.Record{ID: i, Vec: vec.Vector(rng.UnitVec(d))}
	}
	// Mutual near-duplicates: 10 pairs at inner product ≈ 0.98.
	for i := 0; i < 20; i += 2 {
		recs[i+1].Vec = vec.Scaled(recs[i].Vec.Clone(), 0.98)
	}
	if _, _, err := s.Ingest("c", nil, 0, recs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	var jr JoinResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/join",
		JoinRequest{S: 0.9}, &jr); code != http.StatusOK {
		t.Fatalf("self-join status %d", code)
	}
	want := bruteJoin(recs, recs, 0.9, false, 0, true)
	samePairs(t, "self join", want, jr.Pairs)
	if len(jr.Pairs) < 20 {
		t.Fatalf("self-join found %d pairs, want ≥ 20 planted", len(jr.Pairs))
	}
	for _, p := range jr.Pairs {
		if p.DataID == p.QueryID {
			t.Fatalf("identity pair %+v reported", p)
		}
	}

	// The sketch engine is top-1 by construction and cannot over-fetch
	// past the identity pair — self-joins through it must be rejected,
	// not silently emptied.
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/join",
		JoinRequest{S: 0.9, Engine: "sketch", Variant: "unsigned"}, nil); code != http.StatusBadRequest {
		t.Fatalf("sketch self-join status %d, want 400", code)
	}

	// The two-collection path with the same name keeps identity pairs
	// unless exclude_self is set in the body.
	if code := doJSON(t, ts, http.MethodPost, "/collections/c/join/c",
		JoinRequest{S: 0.9}, &jr); code != http.StatusOK {
		t.Fatalf("c join c status %d", code)
	}
	// Every record's argmax is itself (unit self-product 1.0), except
	// the 10 scaled duplicates whose original beats their shrunk self
	// (0.98 > 0.98²).
	identity := 0
	for _, p := range jr.Pairs {
		if p.DataID == p.QueryID {
			identity++
		}
	}
	if want := n - 10; identity != want {
		t.Fatalf("c join c reported %d identity pairs, want %d", identity, want)
	}
}

// TestServedJoinLSHRecall runs the LSH engine through the server on a
// planted workload and requires high recall against the exact engine.
func TestServedJoinLSHRecall(t *testing.T) {
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	_, _ = joinWorkload(t, s, 200, 24, 16, 55)
	exact, err := s.Join(JoinRequest{Data: "data", Queries: "queries", S: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lshResp, err := s.Join(JoinRequest{
		Data: "data", Queries: "queries",
		Engine: "lsh", S: 0.9, C: 0.5, K: 6, L: 24, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	matched := make(map[int]bool, len(lshResp.Pairs))
	for _, p := range lshResp.Pairs {
		matched[p.QueryID] = true
	}
	hit := 0
	for _, p := range exact.Pairs {
		if matched[p.QueryID] {
			hit++
		}
	}
	if len(exact.Pairs) == 0 {
		t.Fatal("exact join found nothing — workload broken")
	}
	if recall := float64(hit) / float64(len(exact.Pairs)); recall < 0.9 {
		t.Fatalf("served LSH recall %v too low", recall)
	}
	if lshResp.Compared >= exact.Compared {
		t.Fatalf("LSH compared %d, exact %d — not subquadratic", lshResp.Compared, exact.Compared)
	}
}

// TestConcurrentJoinIngest hammers joins (API and HTTP paths) while an
// ingester appends to both collections, under -race in CI. Joins run
// against immutable shard snapshots, so every reported pair must be
// internally consistent: value exactly e_{id mod d}-structured like the
// ingest, and pair counts monotone over snapshot growth are not
// required — only that no join errors or torn reads occur.
func TestConcurrentJoinIngest(t *testing.T) {
	const (
		d       = 8
		batches = 20
		batch   = 25
		joiners = 3
	)
	s := New(Config{DefaultShards: 4})
	defer s.Close()
	mkRec := func(i int) store.Record {
		v := vec.New(d)
		v[i%d] = float64(i%9) + 1
		return store.Record{ID: i, Vec: v}
	}
	seed := make([]store.Record, batch)
	for i := range seed {
		seed[i] = mkRec(i)
	}
	if _, _, err := s.Ingest("a", nil, 0, seed); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("b", nil, 0, seed); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, joiners+1)

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for bi := 1; bi < batches; bi++ {
			recs := make([]store.Record, batch)
			for i := range recs {
				recs[i] = mkRec(bi*batch + i)
			}
			name := "a"
			if bi%2 == 0 {
				name = "b"
			}
			if _, _, err := s.Ingest(name, nil, 0, recs); err != nil {
				errs <- err
				return
			}
		}
	}()

	for w := 0; w < joiners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			engines := []string{"exact", "normpruned"}
			for !stop.Load() {
				resp, err := s.Join(JoinRequest{
					Data: "a", Queries: "b",
					Engine: engines[w%len(engines)], S: 1, TopK: w % 3,
				})
				if err != nil {
					errs <- err
					return
				}
				for _, p := range resp.Pairs {
					// Every vector is (m)·e_{id mod d} with m = id%9+1 ∈
					// [1, 9]; any defined pair value must be a product of
					// two such magnitudes on a shared axis.
					if p.Value < 1 || p.Value > 81 {
						errs <- fmt.Errorf("torn pair %+v", p)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
