package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// FuzzSearchHandler throws arbitrary bytes at the search endpoint's
// JSON decode path (and, through it, the whole flat-backed query
// pipeline). Whatever the body, the handler must not panic, must answer
// with 200 or a 4xx, and must emit valid JSON: malformed bodies,
// dimension mismatches, absurd k values and NaN-free-but-weird vectors
// all map to structured errors.
func FuzzSearchHandler(f *testing.F) {
	seeds := []string{
		`{"q":[1,0,0,0]}`,
		`{"q":[1,0,0,0],"k":3,"unsigned":true}`,
		`{"queries":[[1,0,0,0],[0,1,0,0]],"k":2}`,
		`{"q":[1,2]}`,                      // wrong dimension
		`{"q":[]}`,                         // neither q nor queries
		`{"q":[1,0,0,0],"queries":[[1]]}`,  // both set
		`{"queries":[[1,0,0,0],[1,2]]}`,    // mixed dimensions in a batch
		`{"q":[1,0,0,0],"k":-5}`,           // negative k
		`{"q":[1,0,0,0],"k":999999}`,       // over-asking
		`{"queries":[null,[1,0,0,0]]}`,     // null query row
		`{"q":[1e308,1e308,-1e308,1e308]}`, // overflow-prone values
		`{`,                                // truncated JSON
		`[]`,
		`42`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Config{DefaultShards: 2, CacheCapacity: 16})
		defer s.Close()
		recs := make([]store.Record, 32)
		for i := range recs {
			v := vec.New(4)
			v[i%4] = float64(i + 1)
			recs[i] = store.Record{ID: i, Vec: v}
		}
		if _, _, err := s.Ingest("c", nil, 0, recs); err != nil {
			t.Fatal(err)
		}
		h := NewHandler(s)
		req := httptest.NewRequest(http.MethodPost, "/collections/c/search", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		res := rec.Result()
		if res.StatusCode != http.StatusOK &&
			(res.StatusCode < 400 || res.StatusCode >= 500) {
			t.Fatalf("status %d for body %q (want 200 or 4xx)", res.StatusCode, body)
		}
		var payload any
		if err := json.NewDecoder(res.Body).Decode(&payload); err != nil {
			t.Fatalf("non-JSON response for body %q: %v", body, err)
		}
		if res.StatusCode != http.StatusOK {
			m, ok := payload.(map[string]any)
			if !ok || m["error"] == "" {
				t.Fatalf("error response for body %q lacks an error field: %v", body, payload)
			}
		}
	})
}
