package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// FuzzSearchHandler throws arbitrary bytes at the search endpoint's
// JSON decode path (and, through it, the whole flat-backed query
// pipeline). Whatever the body, the handler must not panic, must answer
// with 200 or a 4xx, and must emit valid JSON: malformed bodies,
// dimension mismatches, absurd k values and NaN-free-but-weird vectors
// all map to structured errors.
func FuzzSearchHandler(f *testing.F) {
	seeds := []string{
		`{"q":[1,0,0,0]}`,
		`{"q":[1,0,0,0],"k":3,"unsigned":true}`,
		`{"queries":[[1,0,0,0],[0,1,0,0]],"k":2}`,
		`{"q":[1,2]}`,                      // wrong dimension
		`{"q":[]}`,                         // neither q nor queries
		`{"q":[1,0,0,0],"queries":[[1]]}`,  // both set
		`{"queries":[[1,0,0,0],[1,2]]}`,    // mixed dimensions in a batch
		`{"q":[1,0,0,0],"k":-5}`,           // negative k
		`{"q":[1,0,0,0],"k":999999}`,       // over-asking
		`{"queries":[null,[1,0,0,0]]}`,     // null query row
		`{"q":[1e308,1e308,-1e308,1e308]}`, // overflow-prone values
		`{`,                                // truncated JSON
		`[]`,
		`42`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Config{DefaultShards: 2, CacheCapacity: 16})
		defer s.Close()
		recs := make([]store.Record, 32)
		for i := range recs {
			v := vec.New(4)
			v[i%4] = float64(i + 1)
			recs[i] = store.Record{ID: i, Vec: v}
		}
		if _, _, err := s.Ingest("c", nil, 0, recs); err != nil {
			t.Fatal(err)
		}
		h := NewHandler(s)
		req := httptest.NewRequest(http.MethodPost, "/collections/c/search", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic
		checkFuzzResponse(t, rec, body)
	})
}

// checkFuzzResponse asserts the handler contract shared by the fuzz
// targets: 200 or a structured 4xx, always valid JSON.
func checkFuzzResponse(t *testing.T, rec *httptest.ResponseRecorder, body []byte) {
	t.Helper()
	res := rec.Result()
	if res.StatusCode != http.StatusOK &&
		(res.StatusCode < 400 || res.StatusCode >= 500) {
		t.Fatalf("status %d for body %q (want 200 or 4xx)", res.StatusCode, body)
	}
	var payload any
	if err := json.NewDecoder(res.Body).Decode(&payload); err != nil {
		t.Fatalf("non-JSON response for body %q: %v", body, err)
	}
	if res.StatusCode != http.StatusOK {
		m, ok := payload.(map[string]any)
		var msg string
		if ok {
			msg, _ = m["error"].(string)
		}
		if msg == "" {
			t.Fatalf("error response for body %q lacks an error field: %v", body, payload)
		}
	}
}

// FuzzJoinHandler throws arbitrary bytes at the join endpoint's JSON
// path — and, through it, the whole shard-pair join pipeline: engine
// selection, spec validation, top-k handling and the per-pair merge.
// Bodies alternate between the two-collection route and the self-join
// route; whatever the body, the handler must not panic and must answer
// 200 or a structured 4xx with valid JSON.
func FuzzJoinHandler(f *testing.F) {
	seeds := []string{
		`{"s":0.5}`,
		`{"s":0.5,"engine":"normpruned","topk":3}`,
		`{"s":0.9,"engine":"lsh","variant":"unsigned","k":2,"l":4}`,
		`{"s":0.9,"engine":"sketch","variant":"unsigned","kappa":2}`,
		`{"s":0.9,"engine":"sketch"}`,            // sketch is unsigned-only
		`{"s":0.5,"engine":"warp"}`,              // unknown engine
		`{"s":0.5,"variant":"sideways"}`,         // unknown variant
		`{"s":-1}`,                               // invalid threshold
		`{"s":0.5,"c":7}`,                        // c out of (0,1]
		`{"s":0.5,"topk":-3}`,                    // negative topk
		`{"s":0.5,"topk":999999}`,                // absurd topk
		`{"s":1e308,"c":1e-308}`,                 // overflow-prone spec
		`{"s":0.5,"exclude_self":true}`,          // exclusion on the pair route
		`{"s":0.5,"data":"x","queries":"ghost"}`, // body names ignored on path routes
		`{`, `[]`, `42`, ``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		s := New(Config{DefaultShards: 2, CacheCapacity: 16})
		defer s.Close()
		recs := make([]store.Record, 24)
		for i := range recs {
			v := vec.New(4)
			v[i%4] = float64(i%5) + 1
			recs[i] = store.Record{ID: i, Vec: v}
		}
		if _, _, err := s.Ingest("a", nil, 0, recs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Ingest("b", nil, 0, recs[:7]); err != nil {
			t.Fatal(err)
		}
		h := NewHandler(s)
		for _, path := range []string{"/collections/a/join/b", "/collections/a/join"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req) // must not panic
			checkFuzzResponse(t, rec, body)
		}
	})
}
