// Per-collection failure domains. A collection is its own blast
// radius: disk faults degrade or quarantine that one collection while
// the rest of the server keeps serving.
//
//	active      — everything works.
//	degraded    — the WAL latched a write/sync failure or a scrub found
//	              a corrupt segment. Reads keep serving the last
//	              published snapshots; mutations fail closed with 503.
//	              A background repair probe retries with capped
//	              exponential backoff and restores active on success.
//	quarantined — boot-time recovery failed under -recover=quarantine.
//	              The data directory is left untouched for forensics;
//	              reads and writes both 503 (there is no trustworthy
//	              snapshot to serve). DELETE still works so an operator
//	              can discard the collection.
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/errfs"
	"repro/internal/persist"
	"repro/internal/store"
)

// HealthState is a collection's failure-domain state.
type HealthState int32

const (
	HealthActive HealthState = iota
	HealthDegraded
	HealthQuarantined
)

// String returns the /stats and /metrics spelling of the state.
func (h HealthState) String() string {
	switch h {
	case HealthDegraded:
		return "degraded"
	case HealthQuarantined:
		return "quarantined"
	default:
		return "active"
	}
}

// healthStates enumerates every state for the one-series-per-state
// /metrics exposition.
var healthStates = [...]HealthState{HealthActive, HealthDegraded, HealthQuarantined}

// Recovery modes for Config.RecoverMode / the -recover flag.
const (
	// RecoverStrict (the default) fails the whole boot when any
	// collection directory cannot be recovered.
	RecoverStrict = "strict"
	// RecoverQuarantine keeps booting: the unrecoverable collection is
	// served as a 503-with-reason placeholder and its directory is left
	// exactly as recovery found it.
	RecoverQuarantine = "quarantine"
)

// ParseRecoverMode validates a -recover flag spelling ("" = strict).
func ParseRecoverMode(s string) (string, error) {
	switch s {
	case "", RecoverStrict:
		return RecoverStrict, nil
	case RecoverQuarantine:
		return RecoverQuarantine, nil
	}
	return "", fmt.Errorf("server: unknown recover mode %q (want strict or quarantine)", s)
}

// Repair probe backoff: first retry almost immediately (most latched
// faults in tests and real life are transient), then double up to a
// polling cadence that won't hammer a genuinely dead disk.
const (
	repairBaseBackoff = 50 * time.Millisecond
	repairMaxBackoff  = 5 * time.Second
)

// healthState returns the current state (lock-free; the reason string
// needs healthInfo).
func (c *Collection) healthState() HealthState {
	return HealthState(c.health.Load())
}

// healthInfo returns the state and its human-readable reason.
func (c *Collection) healthInfo() (HealthState, string) {
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	return HealthState(c.health.Load()), c.healthReason
}

// setHealth transitions unconditionally (boot-time quarantine and
// tests); degrade/activate are the runtime transitions.
func (c *Collection) setHealth(st HealthState, reason string) {
	c.healthMu.Lock()
	c.health.Store(int32(st))
	c.healthReason = reason
	c.healthMu.Unlock()
}

// degrade moves an active collection to degraded and starts the repair
// probe. Idempotent: a second fault while already degraded keeps the
// first reason (it names the root cause), and a quarantined collection
// never "improves" to degraded.
func (c *Collection) degrade(reason string) {
	if !c.health.CompareAndSwap(int32(HealthActive), int32(HealthDegraded)) {
		return
	}
	c.healthMu.Lock()
	c.healthReason = reason
	c.healthMu.Unlock()
	slog.Warn("server: collection degraded", "collection", c.name, "reason", reason)
	c.startRepairProbe()
}

// activate restores a repaired collection to active.
func (c *Collection) activate() {
	if !c.health.CompareAndSwap(int32(HealthDegraded), int32(HealthActive)) {
		return
	}
	c.healthMu.Lock()
	c.healthReason = ""
	c.healthMu.Unlock()
	slog.Info("server: collection repaired, serving mutations again", "collection", c.name)
}

// checkMutable gates the mutation paths: only an active collection
// accepts writes. The error carries ErrUnavailable so the HTTP layer
// answers 503 (retryable) rather than 4xx.
func (c *Collection) checkMutable() error {
	if st, reason := c.healthInfo(); st != HealthActive {
		return fmt.Errorf("%w: collection %q is %s (%s): mutations are disabled",
			ErrUnavailable, c.name, st, reason)
	}
	return nil
}

// checkReadable gates the read paths: degraded collections keep
// serving their last published snapshots, only quarantine blocks reads
// (there is no snapshot whose integrity recovery could vouch for).
func (c *Collection) checkReadable() error {
	if c.healthState() != HealthQuarantined {
		return nil
	}
	_, reason := c.healthInfo()
	return fmt.Errorf("%w: collection %q is quarantined: %s", ErrUnavailable, c.name, reason)
}

// logHandle returns the attached WAL, if any.
func (c *Collection) logHandle() *persist.Log {
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	return c.log
}

// startRepairProbe spawns the single-flight background goroutine that
// retries repair with capped exponential backoff until the collection
// is active again, the collection shuts down, or the log closes
// (Drop). The probe never holds a lock while sleeping, and everything
// it calls either takes ingestMu briefly or serializes on the log's
// own checkpoint mutex — Drop's close() path takes ingestMu and then
// waits on ckptMu only after releasing it, so the two can never
// deadlock.
func (c *Collection) startRepairProbe() {
	if !c.repairing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.repairing.Store(false)
		backoff := repairBaseBackoff
		var lastErr string
		for {
			select {
			case <-c.bg:
				return
			case <-time.After(backoff):
			}
			if c.healthState() != HealthDegraded {
				return
			}
			err := c.repairOnce()
			if err == nil {
				c.repairs.Add(1)
				c.activate()
				return
			}
			if errors.Is(err, persist.ErrClosed) {
				return
			}
			if msg := err.Error(); msg != lastErr {
				slog.Warn("server: repair attempt failed",
					"collection", c.name, "retry_in", backoff.String(), "error", err)
				lastErr = msg
			}
			if backoff *= 2; backoff > repairMaxBackoff {
				backoff = repairMaxBackoff
			}
		}
	}()
}

// repairOnce is one end-to-end repair attempt; nil means the
// collection's durability machinery is provably healthy again:
//
//  1. clear a latched WAL failure (persist.Log.Repair proves the torn
//     tail is gone before rotating to a fresh file);
//  2. checkpoint, so a fault that only broke segment writing (e.g.
//     ENOSPC mid-checkpoint) is re-exercised — success leaves a fresh
//     verified segment on disk;
//  3. drop corrupt segments now superseded by a newer valid one;
//  4. scrub what remains.
func (c *Collection) repairOnce() error {
	lg := c.logHandle()
	if lg == nil {
		return nil
	}
	if lg.Failed() != nil {
		if err := lg.Repair(); err != nil {
			return err
		}
	}
	if err := lg.Checkpoint(c.persistSnapshot); err != nil {
		return err
	}
	if _, err := lg.DropCorruptSegments(); err != nil {
		return err
	}
	if _, err := lg.ScrubSegments(); err != nil {
		return err
	}
	return nil
}

// startScrubber spawns the background integrity scrubber: every
// scrubEvery it re-reads the collection's segment files and verifies
// their whole-file CRCs, degrading the collection on a mismatch.
// Segments are immutable after the rename that publishes them, so this
// is pure detection of on-disk corruption, not a consistency check.
func (c *Collection) startScrubber() {
	if c.scrubEvery <= 0 || c.logHandle() == nil {
		return
	}
	go func() {
		t := time.NewTicker(c.scrubEvery)
		defer t.Stop()
		for {
			select {
			case <-c.bg:
				return
			case <-t.C:
				if err := c.scrubOnce(); errors.Is(err, persist.ErrClosed) {
					return
				}
			}
		}
	}()
}

// scrubOnce runs one scrub pass and records its outcome.
func (c *Collection) scrubOnce() error {
	lg := c.logHandle()
	if lg == nil {
		return nil
	}
	_, err := lg.ScrubSegments()
	if errors.Is(err, persist.ErrClosed) {
		return err
	}
	c.scrubs.Add(1)
	c.lastScrub.Store(time.Now().Unix())
	if err != nil {
		c.scrubErrors.Add(1)
		c.degrade(fmt.Sprintf("scrub: %v", err))
	}
	return err
}

// newQuarantined builds the placeholder served in place of a
// collection whose boot-time recovery failed: it has no shards and no
// log — every read and mutation 503s through the health gates — but it
// occupies the name (so a PUT cannot silently shadow the damaged
// directory) and carries enough to let DELETE remove the directory.
func newQuarantined(name, dir string, fsys errfs.FS, reason string) *Collection {
	c := &Collection{
		name:    name,
		rel:     store.NewVersioned(name),
		seenIDs: make(map[int]struct{}),
		lat:     newLatencyRing(),
		hist:    newLatencyHist(),
		bg:      make(chan struct{}),
		quarDir: dir,
		fsys:    fsys,
	}
	c.setHealth(HealthQuarantined, reason)
	return c
}
