package server

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// benchServer builds a populated server for the search benchmarks.
func benchServer(b *testing.B, n, d, shards int, kind string) (*Server, []vec.Vector) {
	b.Helper()
	rng := xrand.New(1)
	lf := dataset.NewLatentFactor(rng, n, 256, d, 0.5)
	lf.ScaleItemsToUnitBall()
	s := New(Config{DefaultShards: shards, CacheCapacity: -1})
	b.Cleanup(func() { s.Close() })
	recs := records(lf.Items, 0)
	if _, _, err := s.Ingest("bench", &IndexSpec{Kind: kind}, shards, recs); err != nil {
		b.Fatalf("ingest: %v", err)
	}
	return s, lf.Users
}

// BenchmarkServerSearchSingle measures one top-10 query (shard fan-out
// on the pool) per iteration, across shard counts.
func BenchmarkServerSearchSingle(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, users := benchServer(b, 20000, 16, shards, KindExact)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search("bench", users[i%len(users):i%len(users)+1], 10, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerSearchBatch measures a 256-query batched top-10
// request (the worker-pool path); ns/op is per batch.
func BenchmarkServerSearchBatch(b *testing.B) {
	for _, kind := range []string{KindExact, KindNormScan} {
		b.Run("index="+kind, func(b *testing.B) {
			s, users := benchServer(b, 20000, 16, 4, kind)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search("bench", users, 10, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerIngest measures sustained ingest across durability
// modes: pure in-memory, and WAL-backed under each fsync policy. One
// iteration pre-seeds a fresh 4-shard collection with 20k vectors
// (untimed), then times 30 appended batches of 1000×16 — the loadgen
// chunk shape against a realistically sized collection, so the number
// reflects steady-state ingest (snapshot rebuild + index build + WAL)
// rather than the first-batch corner. The interval-mode number is the
// one the durability acceptance bar compares against memory (within
// 20%).
func BenchmarkServerIngest(b *testing.B) {
	const base, batches, per = 20_000, 30, 1000
	rng := xrand.New(2)
	vs := dataset.Gaussian(rng, base+batches*per, 16, false)
	seed := records(vs[:base], 0)
	for _, mode := range []string{"memory", "wal-never", "wal-interval", "wal-always"} {
		b.Run("durability="+mode, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := Config{DefaultShards: 4}
				if mode != "memory" {
					cfg.DataDir = b.TempDir()
					cfg.Fsync = mode[len("wal-"):]
				}
				s, err := Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := s.Ingest("bench", nil, 0, seed); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for j := 0; j < batches; j++ {
					lo := base + j*per
					if _, _, err := s.Ingest("bench", nil, 0, records(vs[lo:lo+per], lo)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkMergeTopK measures the k-way merge over 8 shard lists.
func BenchmarkMergeTopK(b *testing.B) {
	lists := make([][]Hit, 8)
	rng := xrand.New(3)
	for s := range lists {
		l := make([]Hit, 10)
		v := 10.0
		for i := range l {
			v -= rng.Float64()
			l[i] = Hit{ID: s*10 + i, Score: v}
		}
		lists[s] = l
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mergeTopK(lists, 10)
	}
}
