package server

// Query explain: the serving-layer face of the per-shard scan
// accounting. A search request carrying explain:true gets, alongside
// its hits, one ShardExplain per shard — rows actually scanned, blocks
// the Cauchy–Schwarz bound pruned, blocks skipped as fully tombstoned,
// re-rank candidate counts — plus per-stage timings lifted from the
// request's trace. Engines opt in through the explainIndex interface;
// engines without scan accounting (alsh, sketch) still report shard
// size and timing through the generic fallback.

import (
	"context"
	"time"

	"repro/internal/flat"
	"repro/internal/trace"
	"repro/internal/vec"
)

// ShardExplain is one shard's contribution to an explained query.
type ShardExplain struct {
	Shard   int `json:"shard"`
	Records int `json:"records"`
	Live    int `json:"live"`
	// RowsScanned counts rows the scan kernel actually evaluated
	// (candidate-based engines leave it zero — they never sweep).
	RowsScanned int `json:"rows_scanned"`
	// CSPrunedBlocks counts row blocks the norm-sorted scan's
	// Cauchy–Schwarz bound cut off (normscan engines only).
	CSPrunedBlocks int `json:"cs_pruned_blocks"`
	// TombstoneSkippedBlocks counts row blocks skipped whole because
	// every row in them was tombstoned.
	TombstoneSkippedBlocks int `json:"tombstone_skipped_blocks"`
	// RerankCandidates counts quantized candidates re-scored through
	// the exact f64 rows (quantized tiers only).
	RerankCandidates int   `json:"rerank_candidates"`
	Micros           int64 `json:"micros"`
}

// QueryExplain is the explain:true payload of a search response.
type QueryExplain struct {
	TraceID    string `json:"trace_id,omitempty"`
	Collection string `json:"collection"`
	Index      string `json:"index"`
	Precision  string `json:"precision"`
	K          int    `json:"k"`
	Rerank     bool   `json:"rerank"`
	CacheHit   bool   `json:"cache_hit"`
	// RowsScanned and RerankCandidates aggregate the per-shard counts.
	RowsScanned      int `json:"rows_scanned"`
	RerankCandidates int `json:"rerank_candidates"`
	// StageMicros sums the request's closed trace spans by stage name
	// (admission, cache, scan, merge, ...).
	StageMicros map[string]int64 `json:"stage_micros,omitempty"`
	Shards      []ShardExplain   `json:"shards,omitempty"`
}

// fill aggregates the per-shard detail into the query-level totals.
func (qe *QueryExplain) fill(shards []ShardExplain) {
	qe.Shards = shards
	for i := range shards {
		qe.RowsScanned += shards[i].RowsScanned
		qe.RerankCandidates += shards[i].RerankCandidates
	}
}

// stageMicros sums a trace's closed spans by name for the explain
// payload; nil when the trace is nil or recorded nothing.
func stageMicros(tr *trace.Trace) map[string]int64 {
	var m map[string]int64
	tr.SpanDurations(func(name string, d time.Duration) {
		if m == nil {
			m = make(map[string]int64)
		}
		m[name] += d.Microseconds()
	})
	return m
}

// explainIndex is implemented by engines that can account for their
// scan work. topKExplain answers exactly like TopK (or TopKRerank when
// rerank is set and the engine supports it) while filling ex's scan
// counters; hits must stay bit-identical to the unexplained path.
type explainIndex interface {
	topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, rerank bool, ex *ShardExplain) ([]Hit, error)
}

// indexTopKEx is indexTopK plus per-shard explain accounting. A nil ex
// takes the plain path untouched; an engine without explainIndex
// answers normally and leaves the scan counters zero.
func indexTopKEx(ctx context.Context, index ShardIndex, q vec.Vector, k int, unsigned bool, workers int, rerank bool, ex *ShardExplain) ([]Hit, error) {
	if ex != nil {
		if ei, ok := index.(explainIndex); ok {
			return ei.topKExplain(ctx, q, k, unsigned, workers, rerank, ex)
		}
	}
	return indexTopK(ctx, index, q, k, unsigned, workers, rerank)
}

// topKExplain implements explainIndex for the f64 exact scan: the
// masked sweep visits every block that is not fully tombstoned, so the
// profile is query-independent.
func (ix exactIndex) topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, _ bool, ex *ShardExplain) ([]Hit, error) {
	hs, err := ix.fs.TopKMaskedCtx(ctx, q, k, unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	ex.RowsScanned, ex.TombstoneSkippedBlocks = flat.MaskedScanProfile(ix.fs.Len(), ix.dead)
	return flatHits(hs), nil
}

// topKExplain implements explainIndex for the f32 exact scan,
// accounting for the widened candidate fetch when re-ranking.
func (ix exact32Index) topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, rerank bool, ex *ShardExplain) ([]Hit, error) {
	fetch := k
	if rerank {
		fetch = overfetchK(k, ix.overfetch)
	}
	hs, err := ix.s32.TopKMaskedCtx(ctx, q, fetch, unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	ex.RowsScanned, ex.TombstoneSkippedBlocks = flat.MaskedScanProfile(ix.s32.Len(), ix.dead)
	cands := flatHits(hs)
	if !rerank {
		return cands, nil
	}
	ex.RerankCandidates = len(cands)
	return rerankHits(ix.fs, q, cands, k, unsigned)
}

// topKExplain implements explainIndex for the int8 tier, which always
// re-ranks its widened candidate set.
func (ix exactI8Index) topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, workers int, _ bool, ex *ShardExplain) ([]Hit, error) {
	hs, err := ix.i8.TopKMaskedCtx(ctx, q, overfetchK(k, ix.overfetch), unsigned, workers, ix.dead)
	if err != nil {
		return nil, err
	}
	ex.RowsScanned, ex.TombstoneSkippedBlocks = flat.MaskedScanProfile(ix.i8.Len(), ix.dead)
	cands := flatHits(hs)
	ex.RerankCandidates = len(cands)
	return rerankHits(ix.fs, q, cands, k, unsigned)
}

// topKExplain implements explainIndex for the f64 norm-pruned scan:
// the stats driver reports the real scanned/pruned/skipped partition
// of the descending-norm sweep.
func (ix normScanIndex) topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int, _ bool, ex *ShardExplain) ([]Hit, error) {
	var stats flat.ScanStats
	hs, _, err := ix.ns.TopKMaskedStatsCtx(ctx, q, k, unsigned, ix.dead, &stats)
	if err != nil {
		return nil, err
	}
	ex.RowsScanned = stats.ScannedRows
	ex.CSPrunedBlocks = stats.PrunedBlocks
	ex.TombstoneSkippedBlocks = stats.SkippedBlocks
	return flatHits(hs), nil
}

// topKExplain implements explainIndex for the f32 norm-pruned scan.
// The f32 driver reports rows scanned but not a block partition, so
// only RowsScanned is filled.
func (ix normScan32Index) topKExplain(ctx context.Context, q vec.Vector, k int, unsigned bool, _ int, rerank bool, ex *ShardExplain) ([]Hit, error) {
	fetch := k
	if rerank {
		fetch = overfetchK(k, ix.overfetch)
	}
	hs, scanned, err := ix.ns.TopKMaskedCtx(ctx, q, fetch, unsigned, ix.dead)
	if err != nil {
		return nil, err
	}
	ex.RowsScanned = scanned
	cands := flatHits(hs)
	if !rerank {
		return cands, nil
	}
	ex.RerankCandidates = len(cands)
	return rerankHits(ix.fs, q, cands, k, unsigned)
}
