package server

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/mips"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The serving-layer equivalence harness: after the columnar-store
// migration, every flat-backed index must return top-k lists identical
// to the old row-slice reference — mips.LinearScan for the argmax and a
// naive vec.Dot accumulator for the full ranked list — across
// randomized n/d/k/seed grids seeded with adversarial ties (duplicate
// rows, zero rows, sign flips). Exact engines must match ID-for-ID with
// scores within 1e-12 (they are ==-identical in practice, since every
// path shares vec.DotKernel's accumulation order); candidate engines
// (alsh, sketch) must report exactly verified scores for whatever they
// return.

const equivTol = 1e-12

// adversarial salts tie-forcing rows into a random set.
func adversarial(rng *xrand.RNG, n, d int) []vec.Vector {
	vs := make([]vec.Vector, 0, n+5)
	for i := 0; i < n; i++ {
		vs = append(vs, vec.Vector(rng.NormalVec(d)))
	}
	dup := vs[rng.Intn(len(vs))]
	vs = append(vs, dup.Clone(), dup.Clone(), vec.New(d), vec.New(d), vec.Neg(dup))
	return vs
}

func hitsEquivalent(t *testing.T, ctx string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\n got: %v\nwant: %v", ctx, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s rank %d: ID %d, want %d\n got: %v\nwant: %v", ctx, i, got[i].ID, want[i].ID, got, want)
		}
		if math.Abs(got[i].Score-want[i].Score) > equivTol {
			t.Fatalf("%s rank %d: score %v, want %v", ctx, i, got[i].Score, want[i].Score)
		}
	}
}

// TestExactEnginesMatchLinearScanGrid sweeps shard counts, n, d, k and
// seeds: the flat-backed exact and normscan engines must reproduce the
// naive reference exactly, and top-1 must agree with mips.LinearScan.
func TestExactEnginesMatchLinearScanGrid(t *testing.T) {
	for _, kind := range []string{KindExact, KindNormScan} {
		for _, shards := range []int{1, 3} {
			for _, n := range []int{1, 40, 500} {
				for _, d := range []int{1, 8, 16, 21} {
					for seed := uint64(0); seed < 2; seed++ {
						rng := xrand.New(seed*100003 + uint64(n*37+d*5+shards))
						data := adversarial(rng, n, d)
						recs := records(data, 0)
						s := New(Config{DefaultShards: shards, CacheCapacity: -1})
						if _, _, err := s.Ingest("c", &IndexSpec{Kind: kind}, shards, recs); err != nil {
							t.Fatal(err)
						}
						for _, k := range []int{1, 7, 2 * len(data)} {
							for _, unsigned := range []bool{false, true} {
								for trial := 0; trial < 3; trial++ {
									q := vec.Vector(rng.NormalVec(d))
									if trial == 2 {
										q = vec.New(d) // all-ties query
									}
									ctx := fmt.Sprintf("kind=%s shards=%d n=%d d=%d k=%d unsigned=%v seed=%d trial=%d",
										kind, shards, n, d, k, unsigned, seed, trial)
									res, err := s.Search("c", []vec.Vector{q}, k, unsigned)
									if err != nil {
										t.Fatalf("%s: %v", ctx, err)
									}
									if res[0].Err != nil {
										t.Fatalf("%s: %v", ctx, res[0].Err)
									}
									want := exactTopK(recs, q, k, unsigned)
									hitsEquivalent(t, ctx, res[0].Hits, want)
									if !unsigned && len(res[0].Hits) > 0 {
										ls := mips.LinearScan(data, q)
										if res[0].Hits[0].ID != ls.Index {
											t.Fatalf("%s: top-1 ID %d, mips.LinearScan argmax %d",
												ctx, res[0].Hits[0].ID, ls.Index)
										}
										if math.Abs(res[0].Hits[0].Score-ls.Value) > equivTol {
											t.Fatalf("%s: top-1 score %v, mips.LinearScan %v",
												ctx, res[0].Hits[0].Score, ls.Value)
										}
									}
								}
							}
						}
						s.Close()
					}
				}
			}
		}
	}
}

// TestCandidateEnginesVerifyScores checks the flat-backed candidate
// engines: whatever alsh/sketch return, the reported score must equal
// the exact (absolute) inner product of that record — i.e. candidate
// verification through the columnar store is exact — and hits must
// keep the canonical ordering.
func TestCandidateEnginesVerifyScores(t *testing.T) {
	for _, kind := range []string{KindALSH, KindSketch} {
		for seed := uint64(0); seed < 3; seed++ {
			rng := xrand.New(31 + seed)
			data := adversarial(rng, 300, 16)
			// alsh expects unit-ball data; scale in place.
			scale := 0.0
			for _, v := range data {
				if n := vec.Norm(v); n > scale {
					scale = n
				}
			}
			for _, v := range data {
				if scale > 0 {
					vec.Scale(v, 1/scale)
				}
			}
			recs := records(data, 0)
			byID := make(map[int]vec.Vector, len(recs))
			for _, r := range recs {
				byID[r.ID] = r.Vec
			}
			s := New(Config{DefaultShards: 2, CacheCapacity: -1})
			if _, _, err := s.Ingest("c", &IndexSpec{Kind: kind}, 2, recs); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				q := vec.Vector(rng.NormalVec(16))
				res, err := s.Search("c", []vec.Vector{q}, 5, true)
				if err != nil {
					t.Fatal(err)
				}
				if res[0].Err != nil {
					t.Fatal(res[0].Err)
				}
				prev := math.Inf(1)
				prevID := -1
				for _, h := range res[0].Hits {
					v, ok := byID[h.ID]
					if !ok {
						t.Fatalf("kind=%s: hit for unknown ID %d", kind, h.ID)
					}
					want := math.Abs(vec.Dot(v, q))
					if math.Abs(h.Score-want) > equivTol {
						t.Fatalf("kind=%s ID=%d: reported score %v, exact %v", kind, h.ID, h.Score, want)
					}
					if h.Score > prev || (h.Score == prev && h.ID < prevID) {
						t.Fatalf("kind=%s: hits out of canonical order: %v", kind, res[0].Hits)
					}
					prev, prevID = h.Score, h.ID
				}
			}
			s.Close()
		}
	}
}

// TestSingleShardParallelScanMatchesExact drives the slot-borrowing
// path: a single-shard collection large enough for flat.Store.TopK to
// split the scan across borrowed pool slots must still return exactly
// the reference answer (the chunk merge preserves canonical ordering),
// including under concurrent single-query load.
func TestSingleShardParallelScanMatchesExact(t *testing.T) {
	rng := xrand.New(97)
	data := adversarial(rng, 13000, 16)
	recs := records(data, 0)
	s := New(Config{DefaultShards: 1, Workers: 8, CacheCapacity: -1})
	defer s.Close()
	if _, _, err := s.Ingest("c", &IndexSpec{Kind: KindExact}, 1, recs); err != nil {
		t.Fatal(err)
	}
	queries := make([]vec.Vector, 8)
	for i := range queries {
		queries[i] = vec.Vector(rng.NormalVec(16))
	}
	var wg sync.WaitGroup
	for _, q := range queries {
		wg.Add(1)
		go func(q vec.Vector) {
			defer wg.Done()
			res, err := s.Search("c", []vec.Vector{q}, 10, false)
			if err != nil {
				t.Error(err)
				return
			}
			if res[0].Err != nil {
				t.Error(res[0].Err)
				return
			}
			want := exactTopK(recs, q, 10, false)
			for i := range want {
				if res[0].Hits[i] != want[i] {
					t.Errorf("rank %d: got %+v, want %+v", i, res[0].Hits[i], want[i])
					return
				}
			}
		}(q)
	}
	wg.Wait()
}

// TestBatchSearchMatchesPerQuery pins the tiled batch executor to the
// per-query path: for every index kind, a batch answer (multi-query
// tile sweep over the shard snapshots) must be identical — hits,
// ordering, scores, per-query errors — to issuing each query alone,
// including wrong-dimension queries mixed into the batch and enough
// queries to span several tiles.
func TestBatchSearchMatchesPerQuery(t *testing.T) {
	for _, kind := range []string{KindExact, KindNormScan, KindALSH, KindSketch} {
		for _, shards := range []int{1, 4} {
			rng := xrand.New(uint64(len(kind)*1009 + shards))
			data := adversarial(rng, 400, 16)
			// alsh expects unit-ball data; scale in place.
			scale := 0.0
			for _, v := range data {
				if n := vec.Norm(v); n > scale {
					scale = n
				}
			}
			for _, v := range data {
				vec.Scale(v, 1/scale)
			}
			s := New(Config{DefaultShards: shards, CacheCapacity: -1})
			if _, _, err := s.Ingest("c", &IndexSpec{Kind: kind}, shards, records(data, 0)); err != nil {
				t.Fatal(err)
			}
			unsigned := kind == KindSketch // sketch serves unsigned only
			queries := make([]vec.Vector, 0, searchTileQ+20)
			for i := 0; i < searchTileQ+17; i++ {
				queries = append(queries, vec.Vector(rng.NormalVec(16)))
			}
			queries = append(queries, vec.New(16))                  // all-ties query
			queries = append(queries, data[7].Clone())              // exact-row query
			queries = append(queries, vec.Vector(rng.NormalVec(9))) // wrong dimension
			batch, err := s.Search("c", queries, 5, unsigned)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				single, err := s.Search("c", []vec.Vector{q}, 5, unsigned)
				if err != nil {
					t.Fatal(err)
				}
				ctx := fmt.Sprintf("kind=%s shards=%d query=%d", kind, shards, i)
				if (batch[i].Err == nil) != (single[0].Err == nil) {
					t.Fatalf("%s: batch err %v, single err %v", ctx, batch[i].Err, single[0].Err)
				}
				if batch[i].Err != nil {
					if batch[i].Err.Error() != single[0].Err.Error() {
						t.Fatalf("%s: batch err %q, single err %q", ctx, batch[i].Err, single[0].Err)
					}
					continue
				}
				if len(batch[i].Hits) != len(single[0].Hits) {
					t.Fatalf("%s: batch %v != single %v", ctx, batch[i].Hits, single[0].Hits)
				}
				for r := range single[0].Hits {
					if batch[i].Hits[r] != single[0].Hits[r] {
						t.Fatalf("%s rank %d: batch %v != single %v (must be bit-identical)",
							ctx, r, batch[i].Hits, single[0].Hits)
					}
				}
			}
			s.Close()
		}
	}
}

// TestBatchSearchCaching checks the batch executor's cache interplay:
// a repeated batch is served from the LRU with identical hits, and the
// k<=0 rejection matches the per-query path.
func TestBatchSearchCaching(t *testing.T) {
	rng := xrand.New(99)
	data := adversarial(rng, 200, 8)
	s := New(Config{DefaultShards: 2})
	defer s.Close()
	if _, _, err := s.Ingest("c", nil, 0, records(data, 0)); err != nil {
		t.Fatal(err)
	}
	queries := make([]vec.Vector, 40)
	for i := range queries {
		queries[i] = vec.Vector(rng.NormalVec(8))
	}
	first, err := s.Search("c", queries, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Err != nil || first[i].Cached {
			t.Fatalf("query %d: err=%v cached=%v on cold cache", i, first[i].Err, first[i].Cached)
		}
	}
	second, err := s.Search("c", queries, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("query %d not served from cache", i)
		}
		if len(second[i].Hits) != len(first[i].Hits) {
			t.Fatalf("query %d: cached hits differ", i)
		}
		for r := range first[i].Hits {
			if second[i].Hits[r] != first[i].Hits[r] {
				t.Fatalf("query %d rank %d: cached hit differs", i, r)
			}
		}
	}
	bad, err := s.Search("c", queries, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bad {
		if bad[i].Err == nil {
			t.Fatalf("query %d: k=0 accepted by batch path", i)
		}
	}
}
