package server

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/sketch"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The recall harness guards the approximate engines' quality at their
// default parameters, so storage/kernel refactors (like the columnar
// store migration) cannot silently degrade them. The workload is a
// latent-factor recommender set under the paper's Definition 1 promise:
// background items are unit-normalized latent factors, and every query
// gets one planted partner at inner product ≈ plantedTarget — the
// "(cs, s) with a certified partner" regime both §4.1 ALSH and the
// §4.3 sketch are designed for. Floors are set ≥ 0.9 with the measured
// values well above (≈ 1.0 at these seeds), so a regression has to be
// real to trip them.
const (
	recallItems   = 4000
	recallQueries = 256
	recallDim     = 16
	plantedTarget = 0.95
	recallFloor   = 0.9
)

// recallWorkload builds the planted latent-factor set: items (planted
// partner for query i lives at record ID i) and queries.
func recallWorkload(seed uint64) (items, queries []vec.Vector) {
	rng := xrand.New(seed)
	lf := dataset.NewLatentFactor(rng, recallItems, recallQueries, recallDim, 0.3)
	queries = make([]vec.Vector, recallQueries)
	items = make([]vec.Vector, 0, recallItems+recallQueries)
	for i, u := range lf.Users {
		queries[i] = vec.Normalized(u)
		items = append(items, vec.Scaled(queries[i], plantedTarget))
	}
	for _, it := range lf.Items {
		items = append(items, vec.Normalized(it))
	}
	return items, queries
}

// recallServers builds one server per index kind over the same items.
func recallServer(t *testing.T, kind string, items []vec.Vector) *Server {
	t.Helper()
	s := New(Config{DefaultShards: 2, CacheCapacity: -1})
	t.Cleanup(func() { s.Close() })
	if _, _, err := s.Ingest("items", &IndexSpec{Kind: kind}, 2, records(items, 0)); err != nil {
		t.Fatalf("ingest %s: %v", kind, err)
	}
	return s
}

// TestALSHRecallFloor asserts recall@10 of the default ALSH index: the
// exact argmax (the planted partner) must appear in the ALSH top-10 for
// at least recallFloor of the queries.
func TestALSHRecallFloor(t *testing.T) {
	items, queries := recallWorkload(1234)
	approx := recallServer(t, KindALSH, items)
	exact := recallServer(t, KindExact, items)
	const k = 10
	hits, setHit, setTotal := 0, 0, 0
	for _, q := range queries {
		ares, err := approx.Search("items", []vec.Vector{q}, k, true)
		if err != nil {
			t.Fatal(err)
		}
		eres, err := exact.Search("items", []vec.Vector{q}, k, true)
		if err != nil {
			t.Fatal(err)
		}
		if ares[0].Err != nil || eres[0].Err != nil {
			t.Fatal(ares[0].Err, eres[0].Err)
		}
		got := make(map[int]bool, len(ares[0].Hits))
		for _, h := range ares[0].Hits {
			got[h.ID] = true
		}
		if got[eres[0].Hits[0].ID] {
			hits++
		}
		for _, h := range eres[0].Hits {
			setTotal++
			if got[h.ID] {
				setHit++
			}
		}
	}
	recall := float64(hits) / float64(len(queries))
	t.Logf("alsh recall@%d (argmax containment) = %.3f, set recall@%d = %.3f",
		k, recall, k, float64(setHit)/float64(setTotal))
	if recall < recallFloor {
		t.Fatalf("alsh recall@%d = %.3f below floor %.2f at default params", k, recall, recallFloor)
	}
}

// TestSketchRecallFloor asserts the §4.3 guarantee rate of the default
// sketch index: the recovered value must clear c·OPT (c = 1/n^{1/κ},
// the structure's certified approximation) for at least recallFloor of
// the queries, and the index must answer at all for that fraction.
func TestSketchRecallFloor(t *testing.T) {
	items, queries := recallWorkload(5678)
	approx := recallServer(t, KindSketch, items)
	exact := recallServer(t, KindExact, items)
	c := 1 / sketch.ApproxFactor(len(items), 2) // default kappa = 2
	satisfied := 0
	for _, q := range queries {
		ares, err := approx.Search("items", []vec.Vector{q}, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		eres, err := exact.Search("items", []vec.Vector{q}, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		if ares[0].Err != nil || eres[0].Err != nil {
			t.Fatal(ares[0].Err, eres[0].Err)
		}
		opt := eres[0].Hits[0].Score
		if len(ares[0].Hits) == 1 && ares[0].Hits[0].Score >= c*opt {
			satisfied++
		}
	}
	rate := float64(satisfied) / float64(len(queries))
	t.Logf("sketch guarantee rate (value ≥ %.4f·OPT) = %.3f", c, rate)
	if rate < recallFloor {
		t.Fatalf("sketch guarantee rate %.3f below floor %.2f at default params", rate, recallFloor)
	}
}
