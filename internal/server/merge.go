package server

import "container/heap"

// mergeTopK combines per-shard top-k lists — each already ordered by
// (score descending, ID ascending) — into the global top-k under the
// same ordering, via a k-way heap merge: the heap holds one cursor per
// non-empty list and pops the best head until k hits are emitted.
func mergeTopK(lists [][]Hit, k int) []Hit {
	if k <= 0 {
		return nil
	}
	h := make(mergeHeap, 0, len(lists))
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeCursor{list: l})
		}
	}
	heap.Init(&h)
	out := make([]Hit, 0, k)
	for len(h) > 0 && len(out) < k {
		c := &h[0]
		out = append(out, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

// mergeCursor walks one shard's hit list.
type mergeCursor struct {
	list []Hit
	pos  int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int { return len(h) }

func (h mergeHeap) Less(a, b int) bool {
	x, y := h[a].list[h[a].pos], h[b].list[h[b].pos]
	if x.Score != y.Score {
		return x.Score > y.Score
	}
	return x.ID < y.ID
}

func (h mergeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }

func (h *mergeHeap) Push(x any) { *h = append(*h, x.(mergeCursor)) }

func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
