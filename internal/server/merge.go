package server

// mergeTopK combines per-shard top-k lists — each already ordered by
// (score descending, ID ascending) — into the global top-k under the
// same ordering, via a k-way heap merge: the heap holds one cursor per
// non-empty list and pops the best head until k hits are emitted.
func mergeTopK(lists [][]Hit, k int) []Hit {
	if k <= 0 {
		return nil
	}
	scratch := make(mergeHeap, 0, len(lists))
	return mergeTopKInto(lists, k, make([]Hit, 0, k), &scratch)
}

// mergeTopKInto is the allocation-free core of mergeTopK: merged hits
// are appended to dst and the cursor heap's backing array is recycled
// through scratch. dst must have spare capacity for k more entries if
// the caller needs previously returned slices to stay stable. The
// appended portion is returned. The heap operations are hand-rolled
// (no container/heap) so nothing is boxed through an interface.
func mergeTopKInto(lists [][]Hit, k int, dst []Hit, scratch *mergeHeap) []Hit {
	h := (*scratch)[:0]
	for _, l := range lists {
		if len(l) > 0 {
			h = append(h, mergeCursor{list: l})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	base := len(dst)
	for len(h) > 0 && len(dst)-base < k {
		c := &h[0]
		dst = append(dst, c.list[c.pos])
		c.pos++
		if c.pos == len(c.list) {
			n := len(h) - 1
			h[0] = h[n]
			h = h[:n]
		}
		h.siftDown(0)
	}
	*scratch = h[:0]
	return dst[base:]
}

// mergeCursor walks one shard's hit list.
type mergeCursor struct {
	list []Hit
	pos  int
}

type mergeHeap []mergeCursor

// less orders cursors by their head hit under the canonical
// (score descending, ID ascending) ordering.
func (h mergeHeap) less(a, b int) bool {
	x, y := h[a].list[h[a].pos], h[b].list[h[b].pos]
	if x.Score != y.Score {
		return x.Score > y.Score
	}
	return x.ID < y.ID
}

// siftDown restores the heap property below i.
func (h mergeHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
