// Prometheus-text metrics for ipsd, hand-rolled: the exposition format
// is a dozen lines of fmt, which is cheaper than a client library and
// keeps the module dependency-free. Everything here is lock-free on
// the hot path — observations touch only atomics — and the /metrics
// handler assembles the page from counter loads, so scraping never
// contends with serving.
package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets are the latency histogram upper bounds in seconds,
// spanning cache hits (sub-millisecond) through multi-second overload
// tails. The last implicit bucket is +Inf.
var histBuckets = [...]float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// latencyHist is a fixed-bucket cumulative histogram in the Prometheus
// style: per-bucket counts plus a running sum, all atomics, so observe
// costs a branchy search over 14 bounds and two atomic adds.
type latencyHist struct {
	counts [len(histBuckets) + 1]atomic.Int64 // +1: the +Inf bucket
	sumNS  atomic.Int64
	count  atomic.Int64
}

func newLatencyHist() *latencyHist { return &latencyHist{} }

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	i := sort.SearchFloat64s(histBuckets[:], s)
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.count.Add(1)
}

// writeProm renders the histogram as a Prometheus histogram metric
// with the given (possibly empty) label set. labels must already be
// rendered ("route=\"search\"") or empty.
func (h *latencyHist) writeProm(w io.Writer, name, labels string) {
	sep, end := "{", "}"
	if labels != "" {
		sep, end = "{"+labels+",", "}"
	}
	cum := int64(0)
	for i, ub := range histBuckets[:] {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"%s\"%s %d\n", name, sep, formatBound(ub), end, cum)
	}
	cum += h.counts[len(histBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, sep, end, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	}
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form, no exponent for this range.
func formatBound(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", f), "0"), ".")
}

// promLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// stageCardinalityCap bounds the live (stage, collection) series count:
// stage names are a small fixed set and collections are few, so the cap
// is far above any sane deployment — it only guards against a pathological
// churn of collection names growing the map without bound.
const stageCardinalityCap = 512

// stageMetrics holds the ipsd_stage_seconds{stage,collection}
// histograms. The hot path (observe) takes a read lock and two atomic
// adds; the write lock is only taken the first time a (stage,
// collection) pair appears.
type stageMetrics struct {
	mu    sync.RWMutex
	hists map[string]*stageHist // key: stage + "\x00" + collection
}

// stageHist is one (stage, collection) series.
type stageHist struct {
	stage      string
	collection string
	hist       *latencyHist
}

func newStageMetrics() *stageMetrics {
	return &stageMetrics{hists: make(map[string]*stageHist)}
}

func (m *stageMetrics) observe(stage, collection string, d time.Duration) {
	key := stage + "\x00" + collection
	m.mu.RLock()
	h, ok := m.hists[key]
	m.mu.RUnlock()
	if !ok {
		m.mu.Lock()
		h, ok = m.hists[key]
		if !ok {
			if len(m.hists) >= stageCardinalityCap {
				m.mu.Unlock()
				return
			}
			h = &stageHist{stage: stage, collection: collection, hist: newLatencyHist()}
			m.hists[key] = h
		}
		m.mu.Unlock()
	}
	h.hist.observe(d)
}

// writeTo renders the stage histograms in stable (stage, collection)
// order; a server that has observed nothing emits nothing.
func (m *stageMetrics) writeTo(w io.Writer) {
	m.mu.RLock()
	hs := make([]*stageHist, 0, len(m.hists))
	for _, h := range m.hists {
		hs = append(hs, h)
	}
	m.mu.RUnlock()
	if len(hs) == 0 {
		return
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].stage != hs[j].stage {
			return hs[i].stage < hs[j].stage
		}
		return hs[i].collection < hs[j].collection
	})
	fmt.Fprintf(w, "# HELP ipsd_stage_seconds Pipeline stage duration by stage and collection.\n")
	fmt.Fprintf(w, "# TYPE ipsd_stage_seconds histogram\n")
	for _, h := range hs {
		h.hist.writeProm(w, "ipsd_stage_seconds",
			fmt.Sprintf("stage=%q,collection=%q", promLabel(h.stage), promLabel(h.collection)))
	}
}

// writeRuntimeMetrics emits the Go runtime gauges and the build-info
// series, so dashboards can correlate serving latency with GC activity
// and pin a scrape to a binary version.
func writeRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_goroutines Number of goroutines that currently exist.\n")
	fmt.Fprintf(w, "# TYPE go_goroutines gauge\n")
	fmt.Fprintf(w, "go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_memstats_heap_alloc_bytes Heap bytes allocated and in use.\n")
	fmt.Fprintf(w, "# TYPE go_memstats_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "go_memstats_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_memstats_heap_sys_bytes Heap bytes obtained from the OS.\n")
	fmt.Fprintf(w, "# TYPE go_memstats_heap_sys_bytes gauge\n")
	fmt.Fprintf(w, "go_memstats_heap_sys_bytes %d\n", ms.HeapSys)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n")
	fmt.Fprintf(w, "# TYPE go_gc_cycles_total counter\n")
	fmt.Fprintf(w, "go_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n")
	fmt.Fprintf(w, "# TYPE go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(w, "# HELP ipsd_build_info Build metadata (value is always 1).\n")
	fmt.Fprintf(w, "# TYPE ipsd_build_info gauge\n")
	fmt.Fprintf(w, "ipsd_build_info{version=%q,go=%q} 1\n",
		promLabel(buildVersion()), promLabel(runtime.Version()))
}

// buildVersion reports the main module's version as embedded by the Go
// toolchain ("(devel)" for a plain go build).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// routeMetrics is one HTTP route's counters: a latency histogram plus
// per-status-class request counts.
type routeMetrics struct {
	route    string
	hist     *latencyHist
	statuses [6]atomic.Int64 // index status/100: [2]=2xx … [5]=5xx
}

func (rm *routeMetrics) observe(status int, d time.Duration) {
	rm.hist.observe(d)
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	rm.statuses[class].Add(1)
}

// httpMetrics aggregates per-route request metrics. Routes are
// registered once at mux construction, so the map is effectively
// read-only after startup; the mutex only guards registration.
type httpMetrics struct {
	mu     sync.Mutex
	routes []*routeMetrics
	// inflight counts requests currently inside any instrumented
	// handler.
	inflight atomic.Int64
}

func newHTTPMetrics() *httpMetrics { return &httpMetrics{} }

// register creates (or returns) the metrics slot for a route label.
func (m *httpMetrics) register(route string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rm := range m.routes {
		if rm.route == route {
			return rm
		}
	}
	rm := &routeMetrics{route: route, hist: newLatencyHist()}
	m.routes = append(m.routes, rm)
	return rm
}

// snapshotRoutes returns the registered routes sorted by label for
// stable exposition order.
func (m *httpMetrics) snapshotRoutes() []*routeMetrics {
	m.mu.Lock()
	rs := make([]*routeMetrics, len(m.routes))
	copy(rs, m.routes)
	m.mu.Unlock()
	sort.Slice(rs, func(i, j int) bool { return rs[i].route < rs[j].route })
	return rs
}

// writeMetrics renders the whole /metrics page: server-wide gauges,
// per-route HTTP histograms and status counts, and per-collection
// query/admission/durability series.
func writeMetrics(w io.Writer, s *Server, hm *httpMetrics) {
	fmt.Fprintf(w, "# HELP ipsd_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE ipsd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "ipsd_uptime_seconds %g\n", time.Since(s.start).Seconds())

	fmt.Fprintf(w, "# HELP ipsd_pool_workers Scan pool capacity.\n")
	fmt.Fprintf(w, "# TYPE ipsd_pool_workers gauge\n")
	fmt.Fprintf(w, "ipsd_pool_workers %d\n", s.pool.Workers())
	fmt.Fprintf(w, "# HELP ipsd_pool_in_use Scan pool slots currently held.\n")
	fmt.Fprintf(w, "# TYPE ipsd_pool_in_use gauge\n")
	fmt.Fprintf(w, "ipsd_pool_in_use %d\n", len(s.pool.sem))

	fmt.Fprintf(w, "# HELP ipsd_cache_hits_total Query cache hits.\n")
	fmt.Fprintf(w, "# TYPE ipsd_cache_hits_total counter\n")
	fmt.Fprintf(w, "ipsd_cache_hits_total %d\n", s.cache.hits.Load())
	fmt.Fprintf(w, "# HELP ipsd_cache_misses_total Query cache misses.\n")
	fmt.Fprintf(w, "# TYPE ipsd_cache_misses_total counter\n")
	fmt.Fprintf(w, "ipsd_cache_misses_total %d\n", s.cache.misses.Load())
	fmt.Fprintf(w, "# HELP ipsd_cache_invalidations_total Query cache entries dropped by writes.\n")
	fmt.Fprintf(w, "# TYPE ipsd_cache_invalidations_total counter\n")
	fmt.Fprintf(w, "ipsd_cache_invalidations_total %d\n", s.cache.invalidations.Load())
	fmt.Fprintf(w, "# HELP ipsd_cache_size Query cache entries resident.\n")
	fmt.Fprintf(w, "# TYPE ipsd_cache_size gauge\n")
	fmt.Fprintf(w, "ipsd_cache_size %d\n", s.cache.len())

	fmt.Fprintf(w, "# HELP ipsd_joins_total Join requests served.\n")
	fmt.Fprintf(w, "# TYPE ipsd_joins_total counter\n")
	fmt.Fprintf(w, "ipsd_joins_total %d\n", s.joins.Load())

	writeRuntimeMetrics(w)
	s.stages.writeTo(w)

	if hm != nil {
		fmt.Fprintf(w, "# HELP ipsd_http_inflight HTTP requests currently being served.\n")
		fmt.Fprintf(w, "# TYPE ipsd_http_inflight gauge\n")
		fmt.Fprintf(w, "ipsd_http_inflight %d\n", hm.inflight.Load())
		routes := hm.snapshotRoutes()
		fmt.Fprintf(w, "# HELP ipsd_http_requests_total HTTP requests by route and status class.\n")
		fmt.Fprintf(w, "# TYPE ipsd_http_requests_total counter\n")
		for _, rm := range routes {
			for class := 1; class <= 5; class++ {
				if n := rm.statuses[class].Load(); n > 0 {
					fmt.Fprintf(w, "ipsd_http_requests_total{route=%q,code=\"%dxx\"} %d\n",
						promLabel(rm.route), class, n)
				}
			}
		}
		fmt.Fprintf(w, "# HELP ipsd_http_request_duration_seconds HTTP request latency by route.\n")
		fmt.Fprintf(w, "# TYPE ipsd_http_request_duration_seconds histogram\n")
		for _, rm := range routes {
			rm.hist.writeProm(w, "ipsd_http_request_duration_seconds",
				fmt.Sprintf("route=%q", promLabel(rm.route)))
		}
	}

	s.mu.RLock()
	names := make([]string, 0, len(s.cols))
	cols := make(map[string]*Collection, len(s.cols))
	for n, c := range s.cols {
		names = append(names, n)
		cols[n] = c
	}
	s.mu.RUnlock()
	sort.Strings(names)
	if len(names) == 0 {
		return
	}

	emit := func(name, typ, help string, val func(c *Collection) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, n := range names {
			fmt.Fprintf(w, "%s{collection=%q} %s\n", name, promLabel(n), val(cols[n]))
		}
	}
	emit("ipsd_collection_records", "gauge", "Live plus tombstoned rows per collection.",
		func(c *Collection) string { _, rows := c.deadTotal(); return fmt.Sprintf("%d", rows) })
	emit("ipsd_collection_tombstones", "gauge", "Tombstoned rows awaiting compaction.",
		func(c *Collection) string { dead, _ := c.deadTotal(); return fmt.Sprintf("%d", dead) })
	emit("ipsd_compactions_total", "counter", "Completed background compactions.",
		func(c *Collection) string { return fmt.Sprintf("%d", c.compactions.Load()) })
	emit("ipsd_queries_total", "counter", "Queries executed (cache misses reaching the scan layer).",
		func(c *Collection) string { return fmt.Sprintf("%d", c.queries.Load()) })
	emit("ipsd_query_timeouts_total", "counter", "Queries abandoned because their deadline fired.",
		func(c *Collection) string { return fmt.Sprintf("%d", c.timeouts.Load()) })
	emit("ipsd_admission_inflight", "gauge", "Queries currently admitted past the gate.",
		func(c *Collection) string { inflight, _, _ := c.adm.snapshot(); return fmt.Sprintf("%d", inflight) })
	emit("ipsd_admission_queued", "gauge", "Queries waiting for an admission slot.",
		func(c *Collection) string { _, queued, _ := c.adm.snapshot(); return fmt.Sprintf("%d", queued) })
	emit("ipsd_admission_shed_total", "counter", "Queries rejected with 429 by the admission gate.",
		func(c *Collection) string { _, _, shed := c.adm.snapshot(); return fmt.Sprintf("%d", shed) })
	emit("ipsd_wal_fsync_lag_seconds", "gauge", "Age of the oldest acknowledged-but-unsynced WAL append.",
		func(c *Collection) string { return fmt.Sprintf("%g", c.walFsyncLag().Seconds()) })
	emit("ipsd_collection_repairs_total", "counter", "Successful background repairs (degraded back to active).",
		func(c *Collection) string { return fmt.Sprintf("%d", c.repairs.Load()) })
	emit("ipsd_collection_scrubs_total", "counter", "Completed integrity scrub passes over segment files.",
		func(c *Collection) string { return fmt.Sprintf("%d", c.scrubs.Load()) })
	emit("ipsd_collection_scrub_errors_total", "counter", "Scrub passes that found a corrupt segment.",
		func(c *Collection) string { return fmt.Sprintf("%d", c.scrubErrors.Load()) })
	emit("ipsd_collection_last_scrub_timestamp_seconds", "gauge", "Unix time of the last completed scrub pass (0 before the first).",
		func(c *Collection) string { return fmt.Sprintf("%d", c.lastScrub.Load()) })

	// Health is one series per (collection, state) pair, Kubernetes
	// kube_pod_status_phase style: exactly one of the three is 1, so
	// alerts can match on state by label instead of decoding an enum.
	fmt.Fprintf(w, "# HELP ipsd_collection_health Collection failure-domain state (1 for the current state, 0 otherwise).\n")
	fmt.Fprintf(w, "# TYPE ipsd_collection_health gauge\n")
	for _, n := range names {
		cur := cols[n].healthState()
		for _, st := range healthStates {
			v := 0
			if st == cur {
				v = 1
			}
			fmt.Fprintf(w, "ipsd_collection_health{collection=%q,state=%q} %d\n",
				promLabel(n), st.String(), v)
		}
	}

	// Vector residency is multi-series per collection (one series per
	// storage precision), so it cannot ride the single-series emit
	// helper above.
	fmt.Fprintf(w, "# HELP ipsd_collection_vector_bytes Resident vector payload bytes by storage precision.\n")
	fmt.Fprintf(w, "# TYPE ipsd_collection_vector_bytes gauge\n")
	for _, n := range names {
		vb := cols[n].vectorBytes()
		precs := make([]string, 0, len(vb))
		for p := range vb {
			precs = append(precs, p)
		}
		sort.Strings(precs)
		for _, p := range precs {
			fmt.Fprintf(w, "ipsd_collection_vector_bytes{collection=%q,precision=%q} %d\n",
				promLabel(n), p, vb[p])
		}
	}

	fmt.Fprintf(w, "# HELP ipsd_query_duration_seconds Served query latency per collection.\n")
	fmt.Fprintf(w, "# TYPE ipsd_query_duration_seconds histogram\n")
	for _, n := range names {
		cols[n].hist.writeProm(w, "ipsd_query_duration_seconds",
			fmt.Sprintf("collection=%q", promLabel(n)))
	}
}
