package server

import (
	"context"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// The precision-tier grid: every quantized tier must track the f64
// exact scan on the planted latent-factor workload, and the re-rank
// pipeline must reproduce f64 answers bit for bit. f32 comparisons run
// against an f64 reference fed the *pre-rounded* vectors (the f32
// ingest path rounds to binary32, so that is the ground truth an f32
// collection can possibly agree with); int8 comparisons run against
// the raw vectors (the int8 tier retains them exactly).

// round32 rounds one vector to binary32 per element.
func round32(v vec.Vector) vec.Vector {
	out := make(vec.Vector, len(v))
	for i, x := range v {
		out[i] = float64(float32(x))
	}
	return out
}

func round32All(vs []vec.Vector) []vec.Vector {
	out := make([]vec.Vector, len(vs))
	for i, v := range vs {
		out[i] = round32(v)
	}
	return out
}

// tierServer builds a single-purpose server over items with the given
// spec (cache off, 2 shards, so the merge path is exercised).
func tierServer(t *testing.T, spec IndexSpec, items []vec.Vector) *Server {
	t.Helper()
	s := New(Config{DefaultShards: 2, CacheCapacity: -1})
	t.Cleanup(func() { s.Close() })
	if _, _, err := s.Ingest("items", &spec, 2, records(items, 0)); err != nil {
		t.Fatalf("ingest %q/%q: %v", spec.kind(), spec.precision(), err)
	}
	return s
}

// searchOpts answers every query one at a time under opts.
func searchOpts(t *testing.T, s *Server, queries []vec.Vector, opts SearchOpts) [][]Hit {
	t.Helper()
	out := make([][]Hit, len(queries))
	for i, q := range queries {
		res, err := s.SearchWithOpts(context.Background(), "items", []vec.Vector{q}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Err != nil {
			t.Fatal(res[0].Err)
		}
		out[i] = res[0].Hits
	}
	return out
}

// setRecall returns the fraction of reference hits present in got,
// aggregated over all queries.
func setRecall(got, want [][]Hit) float64 {
	hit, total := 0, 0
	for i := range want {
		ids := make(map[int]bool, len(got[i]))
		for _, h := range got[i] {
			ids[h.ID] = true
		}
		for _, h := range want[i] {
			total++
			if ids[h.ID] {
				hit++
			}
		}
	}
	return float64(hit) / float64(total)
}

// sameHitsBitExact requires identical IDs, order, and score bits.
func sameHitsBitExact(got, want [][]Hit) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range want[i] {
			if got[i][j].ID != want[i][j].ID ||
				math.Float64bits(got[i][j].Score) != math.Float64bits(want[i][j].Score) {
				return false
			}
		}
	}
	return true
}

// TestPrecisionTierEquivalence is the tier grid on the latent-factor
// workload: raw f32 set recall ≥ 0.999; f32+rerank bit-identical to
// the f64 scan over the rounded vectors (both kinds, both variants);
// int8 (always re-ranked) recall@10 ≥ 0.99 with every shared hit's
// score bit-identical to f64's.
func TestPrecisionTierEquivalence(t *testing.T) {
	items, queries := recallWorkload(424242)
	rounded := round32All(items)
	const k = 10

	refRaw := tierServer(t, IndexSpec{Kind: KindExact}, items)
	refRound := tierServer(t, IndexSpec{Kind: KindExact}, rounded)
	f32exact := tierServer(t, IndexSpec{Kind: KindExact, Precision: PrecisionF32}, items)
	f32norm := tierServer(t, IndexSpec{Kind: KindNormScan, Precision: PrecisionF32}, items)
	i8 := tierServer(t, IndexSpec{Kind: KindExact, Precision: PrecisionI8}, items)

	for _, unsigned := range []bool{false, true} {
		raw := SearchOpts{K: k, Unsigned: unsigned}
		rr := SearchOpts{K: k, Unsigned: unsigned, Rerank: true}
		wantRaw := searchOpts(t, refRaw, queries, raw)
		wantRound := searchOpts(t, refRound, queries, raw)

		// Raw f32 scores: approximate, but the hit sets must be nearly
		// identical to the rounded-f64 reference.
		for name, s := range map[string]*Server{"exact": f32exact, "normscan": f32norm} {
			got := searchOpts(t, s, queries, raw)
			if r := setRecall(got, wantRound); r < 0.999 {
				t.Errorf("unsigned=%v f32/%s raw set recall %.4f < 0.999", unsigned, name, r)
			}
			// Re-ranked: bit-identical to the f64 scan of the rounded rows.
			if got := searchOpts(t, s, queries, rr); !sameHitsBitExact(got, wantRound) {
				t.Errorf("unsigned=%v f32/%s rerank results differ from f64 over rounded vectors", unsigned, name)
			}
		}

		// int8 always re-ranks; recall floor plus bit-exact scores on
		// every hit shared with the f64 list.
		got := searchOpts(t, i8, queries, raw)
		if r := setRecall(got, wantRaw); r < 0.99 {
			t.Errorf("unsigned=%v int8 recall@%d %.4f < 0.99", unsigned, k, r)
		}
		for i := range wantRaw {
			scores := make(map[int]uint64, len(wantRaw[i]))
			for _, h := range wantRaw[i] {
				scores[h.ID] = math.Float64bits(h.Score)
			}
			for _, h := range got[i] {
				if bits, ok := scores[h.ID]; ok && bits != math.Float64bits(h.Score) {
					t.Fatalf("unsigned=%v query %d: int8 re-ranked score for %d not bit-identical to f64",
						unsigned, i, h.ID)
				}
			}
		}
	}
}

// TestPrecisionTierBatchMatchesSingle: the batch executor's per-query
// fallback must answer quantized (and re-ranked) queries bit-identically
// to the single-query path.
func TestPrecisionTierBatchMatchesSingle(t *testing.T) {
	items, queries := recallWorkload(777)
	queries = queries[:64]
	const k = 5
	for _, spec := range []IndexSpec{
		{Kind: KindExact, Precision: PrecisionF32},
		{Kind: KindNormScan, Precision: PrecisionF32},
		{Kind: KindExact, Precision: PrecisionI8},
	} {
		s := tierServer(t, spec, items)
		for _, rerank := range []bool{false, true} {
			opts := SearchOpts{K: k, Unsigned: true, Rerank: rerank}
			want := searchOpts(t, s, queries, opts)
			res, err := s.SearchWithOpts(context.Background(), "items", queries, opts)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]Hit, len(res))
			for i, r := range res {
				if r.Err != nil {
					t.Fatal(r.Err)
				}
				got[i] = r.Hits
			}
			if !sameHitsBitExact(got, want) {
				t.Fatalf("%s/%s rerank=%v: batch results differ from single-query path",
					spec.kind(), spec.precision(), rerank)
			}
		}
	}
}

// TestPrecisionTierMutations runs deletes and upserts through the
// quantized tiers: tombstoned IDs must vanish from every tier's
// answers, and f32+rerank must stay bit-identical to an f64 reference
// collection fed the identical (pre-rounded) mutations.
func TestPrecisionTierMutations(t *testing.T) {
	items, queries := recallWorkload(1357)
	rounded := round32All(items)
	queries = queries[:48]
	const k = 10

	ref := tierServer(t, IndexSpec{Kind: KindExact}, rounded)
	tiers := map[string]*Server{
		"f32/exact":    tierServer(t, IndexSpec{Kind: KindExact, Precision: PrecisionF32}, items),
		"f32/normscan": tierServer(t, IndexSpec{Kind: KindNormScan, Precision: PrecisionF32}, items),
		"int8/exact":   tierServer(t, IndexSpec{Kind: KindExact, Precision: PrecisionI8}, items),
	}

	// Delete every 7th record, then upsert every 11th with a fresh
	// vector (rounded copies go to the reference so the ground truth
	// matches what the f32 tier stores).
	var del []int
	for id := 0; id < len(items); id += 7 {
		del = append(del, id)
	}
	var ups []store.Record
	for id := 5; id < len(items); id += 11 {
		nv := vec.Scaled(items[id%len(items)], -0.5)
		ups = append(ups, store.Record{ID: id, Vec: nv})
	}
	apply := func(s *Server, recs []store.Record) {
		if _, _, _, err := s.Delete("items", del); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Upsert("items", nil, 0, recs); err != nil {
			t.Fatal(err)
		}
	}
	refUps := make([]store.Record, len(ups))
	for i, r := range ups {
		refUps[i] = store.Record{ID: r.ID, Vec: round32(r.Vec)}
	}
	apply(ref, refUps)
	for _, s := range tiers {
		apply(s, ups)
	}

	deleted := make(map[int]bool, len(del))
	for _, id := range del {
		deleted[id] = true
	}
	for _, r := range ups {
		delete(deleted, r.ID)
	}
	want := searchOpts(t, ref, queries, SearchOpts{K: k, Unsigned: true, Rerank: true})
	for name, s := range tiers {
		got := searchOpts(t, s, queries, SearchOpts{K: k, Unsigned: true, Rerank: true})
		for i := range got {
			for _, h := range got[i] {
				if deleted[h.ID] {
					t.Fatalf("%s: tombstoned ID %d served after delete", name, h.ID)
				}
			}
		}
		if strings.HasPrefix(name, "f32") {
			if !sameHitsBitExact(got, want) {
				t.Errorf("%s: post-mutation rerank results differ from f64 reference", name)
			}
		} else if r := setRecall(got, want); r < 0.99 {
			t.Errorf("%s: post-mutation recall %.4f < 0.99", name, r)
		}
	}
}

// TestPrecisionTierContextCancel: a pre-cancelled context must surface
// context.Canceled through every tier's scan path.
func TestPrecisionTierContextCancel(t *testing.T) {
	items, queries := recallWorkload(97)
	for _, spec := range []IndexSpec{
		{Kind: KindExact, Precision: PrecisionF32},
		{Kind: KindNormScan, Precision: PrecisionF32},
		{Kind: KindExact, Precision: PrecisionI8},
	} {
		s := tierServer(t, spec, items)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := s.SearchWithOpts(ctx, "items", queries[:1], SearchOpts{K: 3, Rerank: true})
		if err == nil && (len(res) == 0 || res[0].Err == nil) {
			t.Fatalf("%s/%s: cancelled context did not stop the search", spec.kind(), spec.precision())
		}
	}
}

// TestPrecisionSpecValidation pins the spec surface: precisions bind to
// their supported kinds, junk precisions and out-of-range overfetch are
// rejected, and a precision mismatch on an existing collection fails
// EnsureCollection like any other spec mismatch.
func TestPrecisionSpecValidation(t *testing.T) {
	bad := []IndexSpec{
		{Kind: KindALSH, Precision: PrecisionF32},
		{Kind: KindSketch, Precision: PrecisionF32},
		{Kind: KindNormScan, Precision: PrecisionI8},
		{Kind: KindALSH, Precision: PrecisionI8},
		{Precision: "f16"},
		{Overfetch: -1},
		{Overfetch: maxOverfetch + 1},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
	}
	good := []IndexSpec{
		{},
		{Precision: PrecisionF64, Overfetch: 16},
		{Kind: KindExact, Precision: PrecisionF32},
		{Kind: KindNormScan, Precision: PrecisionF32},
		{Kind: KindExact, Precision: PrecisionI8, Overfetch: maxOverfetch},
		{Kind: KindALSH}, // f64 default stays valid for every kind
	}
	for _, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", spec, err)
		}
	}

	s := New(Config{})
	defer s.Close()
	if _, err := s.EnsureCollection("c", &IndexSpec{Kind: KindExact, Precision: PrecisionF32}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnsureCollection("c", &IndexSpec{Kind: KindExact, Precision: PrecisionI8}, 0); err == nil {
		t.Fatal("precision mismatch accepted on existing collection")
	}
}

// TestF32IngestRounding: an f32 collection's visible records are the
// binary32 roundings of what was ingested (WAL, relation and shards all
// share them), and a finite element that overflows float32 is rejected.
func TestF32IngestRounding(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	v := vec.Vector{0.1, 1e-42, 3.3333333333333}
	if _, _, err := s.Ingest("c", &IndexSpec{Precision: PrecisionF32}, 1, []store.Record{{ID: 1, Vec: v}}); err != nil {
		t.Fatal(err)
	}
	c, _ := s.Collection("c")
	rel, _ := c.Relation()
	for j, x := range rel.Recs[0].Vec {
		if math.Float64bits(x) != math.Float64bits(float64(float32(v[j]))) {
			t.Fatalf("element %d stored as %v, want binary32 rounding of %v", j, x, v[j])
		}
	}
	// The caller's slice must not have been rewritten in place.
	if v[2] != 3.3333333333333 {
		t.Fatal("ingest mutated the caller's vector")
	}
	if _, _, err := s.Ingest("c", nil, 0, []store.Record{{ID: 2, Vec: vec.Vector{1e300, 0, 0}}}); err == nil {
		t.Fatal("float32 overflow accepted into an f32 collection")
	}
	if _, _, err := s.Upsert("c", nil, 0, []store.Record{{ID: 1, Vec: vec.Vector{0, 1e-320, 0}}}); err != nil {
		t.Fatal(err)
	}
	rel, _ = c.Relation()
	for _, r := range rel.Recs {
		if r.ID == 1 && r.Vec[1] != 0 {
			t.Fatalf("upsert stored %v, want the binary32 rounding 0", r.Vec[1])
		}
	}
}

// TestPrecisionStatsAndMetrics: /stats carries the precision and the
// per-tier resident vector bytes, and /metrics exposes the same as a
// labeled gauge.
func TestPrecisionStatsAndMetrics(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	const n, d = 40, 8
	recs := randRecords(n, d, 11)
	if _, _, err := s.Ingest("qi8", &IndexSpec{Precision: PrecisionI8}, 2, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("qf32", &IndexSpec{Precision: PrecisionF32}, 2, recs); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Ingest("plain", nil, 2, recs); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	elems := int64(n * d)
	check := func(name, prec string, want map[string]int64) {
		cs, ok := st.Collections[name]
		if !ok {
			t.Fatalf("no stats for %q", name)
		}
		if cs.Precision != prec {
			t.Errorf("%s precision %q, want %q", name, cs.Precision, prec)
		}
		if !reflect.DeepEqual(cs.VectorBytes, want) {
			t.Errorf("%s vector bytes %v, want %v", name, cs.VectorBytes, want)
		}
	}
	check("plain", PrecisionF64, map[string]int64{PrecisionF64: elems * 8})
	check("qf32", PrecisionF32, map[string]int64{PrecisionF64: elems * 8, PrecisionF32: elems * 4})
	check("qi8", PrecisionI8, map[string]int64{PrecisionF64: elems * 8, PrecisionI8: elems})

	var sb strings.Builder
	writeMetrics(&sb, s, nil)
	page := sb.String()
	for _, want := range []string{
		`ipsd_collection_vector_bytes{collection="qi8",precision="int8"} ` + itoa(elems),
		`ipsd_collection_vector_bytes{collection="qf32",precision="f32"} ` + itoa(elems*4),
		`ipsd_collection_vector_bytes{collection="plain",precision="f64"} ` + itoa(elems*8),
	} {
		if !strings.Contains(page, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func itoa(v int64) string {
	return strconv.FormatInt(v, 10)
}

// TestInt8CrashRecoveryIdenticalAnswers is the int8 durability
// contract: after a simulated kill -9 (directory copied out from under
// a live fsync=always server, checkpointing after every batch so both
// the segment and WAL-replay paths run), the recovered collection must
// serve post-rerank answers bit-identical to the original's — which
// requires the quantization scale to reconstruct exactly.
func TestInt8CrashRecoveryIdenticalAnswers(t *testing.T) {
	dir := t.TempDir()
	const n, d, q, k = 2000, 8, 25, 5
	recs := randRecords(n, d, 21)
	queries := randQueries(q, d, 22)

	cfg := durableConfig(dir)
	cfg.CheckpointBytes = 1 // checkpoint after every batch: segments carry the codes
	s1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := &IndexSpec{Kind: KindExact, Precision: PrecisionI8}
	for lo := 0; lo < n; lo += 500 {
		hi := min(lo+500, n)
		if _, _, err := s1.Ingest("col", spec, 2, recs[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	want := make([][]Hit, len(queries))
	for i, qv := range queries {
		res, err := s1.SearchWithOpts(context.Background(), "col", []vec.Vector{qv}, SearchOpts{K: k, Unsigned: true})
		if err != nil || res[0].Err != nil {
			t.Fatal(err, res[0].Err)
		}
		want[i] = res[0].Hits
	}

	crashed := t.TempDir()
	copyTree(t, dir, crashed)
	cfg2 := durableConfig(crashed)
	s2, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c, _ := s2.Collection("col")
	if c.Spec().Precision != PrecisionI8 {
		t.Fatalf("recovered precision %q", c.Spec().Precision)
	}
	got := make([][]Hit, len(queries))
	for i, qv := range queries {
		res, err := s2.SearchWithOpts(context.Background(), "col", []vec.Vector{qv}, SearchOpts{K: k, Unsigned: true})
		if err != nil || res[0].Err != nil {
			t.Fatal(err, res[0].Err)
		}
		got[i] = res[0].Hits
	}
	if !sameHitsBitExact(got, want) {
		t.Fatal("int8 answers differ after crash recovery")
	}
	s1.Close()
}
