package server

// The batch executor. PR 2/3 made single scans stream the columnar
// store; until this file the batch path still ran one pool task per
// query, so a 256-query request swept every shard snapshot 256 times
// and allocated cache keys, hit lists and sort closures per query.
// Now a batch is tiled: cache misses are packed into one pooled
// columnar query store, the pool fans out per query *tile*, and each
// tile task sweeps every shard snapshot once through the
// register-blocked multi-query kernels (batchIndex), translating,
// sorting and k-way-merging through pooled scratch. Steady state does
// O(tiles) small allocations per request instead of O(queries·shards).
//
// Results are bit-identical to the per-query path: the tile scan is
// bit-identical to TopK (flat's contract), translation and canonical
// per-shard ordering are shared with shard.topK, and the same k-way
// merge combines the shard lists.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/flat"
	"repro/internal/trace"
	"repro/internal/vec"
)

// searchTileQ is the query-tile size of the batch executor: the unit
// of parallel work handed to the pool, and the number of queries that
// share one sweep of each shard snapshot.
const searchTileQ = 32

// batchState is the pooled per-request state of the batch executor.
type batchState struct {
	qstore *flat.Store
	miss   []int
	keys   []string
	snaps  []*shardSnap
}

var batchStatePool = sync.Pool{New: func() any { return new(batchState) }}

func getBatchState() *batchState { return batchStatePool.Get().(*batchState) }

func putBatchState(bs *batchState) {
	// Drop snapshot references so pooling does not pin retired shard
	// data; keys keep their backing array (overwritten next use).
	for i := range bs.snaps {
		bs.snaps[i] = nil
	}
	bs.snaps = bs.snaps[:0]
	bs.miss = bs.miss[:0]
	bs.keys = bs.keys[:0]
	batchStatePool.Put(bs)
}

// tileScratch is the pooled per-tile-task state.
type tileScratch struct {
	tile  flat.TileScratch
	lists [][]Hit // per (shard, tile query) translated hit lists
	trans []Hit   // arena backing lists
	qerrs []error
	heap  mergeHeap
	per   [][]Hit // per-query gather of shard lists for the merge
}

var tileScratchPool = sync.Pool{New: func() any { return new(tileScratch) }}

func getTileScratch() *tileScratch { return tileScratchPool.Get().(*tileScratch) }

func putTileScratch(ts *tileScratch) {
	for i := range ts.lists {
		ts.lists[i] = nil
	}
	for i := range ts.per {
		ts.per[i] = nil
	}
	tileScratchPool.Put(ts)
}

// grow returns s resized to n elements, reusing capacity.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// searchBatch answers a multi-query request. out[i] receives query
// i's result; cached answers are resolved inline, the misses are
// packed into one columnar store and fanned out per tile on the pool.
// ctx propagates into every tile's scan; queries whose tile was
// cancelled (mid-scan or before it started) carry the context error
// and are never cached.
func (s *Server) searchBatch(ctx context.Context, c *Collection, name string, queries []vec.Vector, opts SearchOpts, out []SearchResult) {
	k, unsigned := opts.K, opts.Unsigned
	version := c.Version()
	cacheOn := s.cache.enabled()
	bs := getBatchState()
	defer putBatchState(bs)

	// Resolve cache hits; collect misses (with their keys, so the tile
	// tasks don't serialize the key bytes a second time at put).
	miss, keys := bs.miss[:0], bs.keys[:0]
	for i := range queries {
		if cacheOn {
			qstart := time.Now()
			key := cacheKey(name, c.gen, version, k, unsigned, opts.Rerank, queries[i])
			if hits, ok := s.cache.get(key); ok {
				out[i] = SearchResult{Hits: hits, Cached: true}
				c.observeLatency(time.Since(qstart))
				continue
			}
			keys = append(keys, key)
		}
		miss = append(miss, i)
	}
	bs.miss, bs.keys = miss, keys
	if len(miss) == 0 {
		return
	}
	if k <= 0 {
		err := fmt.Errorf("server: k=%d must be positive", k)
		for _, i := range miss {
			out[i] = SearchResult{Err: err}
		}
		return
	}

	// Per-query dimension validation against the relation snapshot
	// (same rule and message as SearchOne). Invalid queries keep their
	// error; the rest stay in miss order.
	rel, _ := c.rel.Snapshot()
	valid, vkeys := miss[:0], keys[:0]
	for mi, i := range miss {
		if rel.Dim != 0 && len(queries[i]) != rel.Dim {
			out[i] = SearchResult{Err: fmt.Errorf("server: collection %q: query dimension %d, want %d", c.name, len(queries[i]), rel.Dim)}
			continue
		}
		valid = append(valid, i)
		if cacheOn {
			vkeys = append(vkeys, keys[mi])
		}
	}
	bs.miss, bs.keys = valid, vkeys
	if len(valid) == 0 {
		return
	}
	c.queries.Add(int64(len(valid)))

	// Pin one snapshot per shard for the whole batch.
	snaps := bs.snaps[:0]
	for _, sh := range c.shards {
		snaps = append(snaps, sh.snap.Load())
		sh.queries.Add(int64(len(valid)))
	}
	bs.snaps = snaps

	if rel.Dim == 0 {
		// Nothing ingested yet: every shard serves the empty index.
		// The per-query path returns a non-nil empty merge result;
		// keep that shape.
		start := time.Now()
		empty := make([]Hit, 0)
		for vi, i := range valid {
			if cacheOn {
				s.cache.put(name, vkeys[vi], empty)
			}
			out[i] = SearchResult{Hits: empty}
			c.observeLatency(time.Since(start))
		}
		return
	}

	// Pack the miss queries into one contiguous columnar store: the
	// tile kernels want query rows adjacent, and the norms computed
	// here (vec.Norm, as everywhere) drive the per-query
	// Cauchy–Schwarz bounds of normscan shards.
	if bs.qstore == nil {
		bs.qstore, _ = flat.New(rel.Dim)
	}
	_ = bs.qstore.ResetDim(rel.Dim)
	for _, i := range valid {
		_ = bs.qstore.Append(vec.Vector(queries[i])) // dims pre-checked
	}

	tiles := (len(valid) + searchTileQ - 1) / searchTileQ
	// tileDone marks tiles whose task ran to completion; when the
	// cancellable fan-out stops feeding, the queries of never-started
	// tiles must still get an answer (the context error) rather than a
	// zero SearchResult.
	tileDone := make([]bool, tiles)
	ssp := trace.FromContext(ctx).StartSpan("scan")
	feedErr := s.pool.ForEachCtx(ctx, tiles, func(t int) {
		s.searchTile(ctx, c, name, queries, bs, t, opts, cacheOn, out)
		tileDone[t] = true
	})
	ssp.End()
	if feedErr != nil {
		for t, done := range tileDone {
			if done {
				continue
			}
			tlo := t * searchTileQ
			thi := min(tlo+searchTileQ, len(valid))
			for _, i := range valid[tlo:thi] {
				out[i] = SearchResult{Err: feedErr}
				c.countTimeout(feedErr)
			}
		}
	}
}

// searchTile runs one query tile against every shard snapshot and
// merges the per-shard lists. It allocates only the result hits that
// escape to the caller (one arena per task, or exact per-query slices
// when they must outlive the request inside the cache).
func (s *Server) searchTile(ctx context.Context, c *Collection, name string, queries []vec.Vector, bs *batchState, t int, opts SearchOpts, cacheOn bool, out []SearchResult) {
	k, unsigned := opts.K, opts.Unsigned
	valid, snaps, qst := bs.miss, bs.snaps, bs.qstore
	tlo := t * searchTileQ
	thi := min(tlo+searchTileQ, len(valid))
	tn := thi - tlo
	nsh := len(snaps)
	start := time.Now()

	ts := getTileScratch()
	defer putTileScratch(ts)
	ts.lists = grow(ts.lists, nsh*tn)
	ts.qerrs = grow(ts.qerrs, tn)
	for j := range ts.qerrs {
		ts.qerrs[j] = nil
	}
	// The translation arena is sized up front: growing it mid-loop
	// would invalidate earlier lists aliasing it.
	ts.trans = grow(ts.trans, 0)[:0]
	if cap(ts.trans) < nsh*tn*k {
		ts.trans = make([]Hit, 0, nsh*tn*k)
	}

	for si, snap := range snaps {
		if bi, ok := snap.index.(batchIndex); ok {
			accs := ts.tile.Accs(tn, k)
			if err := bi.topKMulti(ctx, qst, tlo, thi, unsigned, accs, &ts.tile); err != nil {
				for j := 0; j < tn; j++ {
					if ts.qerrs[j] == nil {
						ts.qerrs[j] = err
					}
				}
				continue
			}
			for j := 0; j < tn; j++ {
				local := accs[j].Hits()
				base := len(ts.trans)
				for _, h := range local {
					ts.trans = append(ts.trans, Hit{ID: snap.ids[h.Index], Score: h.Score})
				}
				hs := ts.trans[base:]
				sortHitsCanonical(hs)
				ts.lists[si*tn+j] = hs
			}
			continue
		}
		// Engines without a one-sweep tile kernel — candidate-based
		// (alsh, sketch) and the quantized tiers — answer per query,
		// exactly like the old executor (workers=1). indexTopK routes
		// re-rank requests identically to the single-query path, so a
		// batched rerank query is bit-identical to its solo twin.
		for j := 0; j < tn; j++ {
			local, err := indexTopK(ctx, snap.index, vec.Vector(queries[valid[tlo+j]]), k, unsigned, 1, opts.Rerank)
			if err != nil {
				if ts.qerrs[j] == nil {
					ts.qerrs[j] = err
				}
				ts.lists[si*tn+j] = nil
				continue
			}
			base := len(ts.trans)
			for _, h := range local {
				ts.trans = append(ts.trans, Hit{ID: snap.ids[h.ID], Score: h.Score})
			}
			hs := ts.trans[base:]
			sortHitsCanonical(hs)
			ts.lists[si*tn+j] = hs
		}
	}

	// Merge per query. Without the cache the merged hits live in one
	// arena per task; with it each query gets an exact-size slice,
	// since cached hits outlive the request.
	var arena []Hit
	if !cacheOn {
		arena = make([]Hit, 0, tn*k)
	}
	ts.per = grow(ts.per, nsh)
	for j := 0; j < tn; j++ {
		i := valid[tlo+j]
		if ts.qerrs[j] != nil {
			out[i] = SearchResult{Err: ts.qerrs[j]}
			c.countTimeout(ts.qerrs[j])
			continue
		}
		for si := 0; si < nsh; si++ {
			ts.per[si] = ts.lists[si*tn+j]
		}
		var hits []Hit
		if cacheOn {
			hits = mergeTopKInto(ts.per, k, make([]Hit, 0, k), &ts.heap)
			s.cache.put(name, bs.keys[tlo+j], hits)
		} else {
			hits = mergeTopKInto(ts.per, k, arena, &ts.heap)
			arena = arena[:len(arena)+len(hits)]
		}
		out[i] = SearchResult{Hits: hits}
		c.observeLatency(time.Since(start))
	}
}
