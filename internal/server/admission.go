package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded is returned when a collection's admission gate sheds a
// query: every execution slot is busy and the wait queue is full. The
// HTTP layer maps it to 429 with a Retry-After hint, so clients back
// off instead of piling more work onto a saturated server.
var ErrOverloaded = errors.New("server: overloaded, retry later")

// gate is a per-collection admission controller: at most `slots`
// queries execute concurrently, at most `maxQueue` more wait for a
// slot, and everything beyond that is shed immediately with
// ErrOverloaded. Shedding at the door keeps a burst from stacking up
// goroutines that each hold request state while blocked on the scan
// pool — under sustained overload the server answers 429 in
// microseconds instead of timing everything out.
//
// A waiter whose context fires while queued gives up with the context
// error, so an admission queue can never outlive the deadlines of the
// requests in it.
type gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64 // admitted and not yet exited
	shed     atomic.Int64 // cumulative rejections (ErrOverloaded only)
}

// newGate builds a gate admitting maxInflight concurrent queries with
// a wait queue of maxQueue. maxInflight <= 0 disables admission
// control (returns nil — callers treat a nil gate as unlimited);
// maxQueue < 0 means an unbounded queue.
func newGate(maxInflight, maxQueue int) *gate {
	if maxInflight <= 0 {
		return nil
	}
	g := &gate{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
	if maxQueue < 0 {
		g.maxQueue = 1 << 62
	}
	return g
}

// enter tries to admit one query, blocking in the wait queue until a
// slot frees, ctx fires, or the queue is already full (immediate
// ErrOverloaded). On nil error the caller owns a slot and must call
// exit exactly once.
func (g *gate) enter(ctx context.Context) error {
	if g == nil {
		return nil
	}
	// Fast path: free slot, no queueing.
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	default:
	}
	// Queue if there is room. The counter admits small transient
	// overshoot under races; the bound is a shed threshold, not an
	// exact rendezvous, and being off by a waiter or two is fine.
	if g.queued.Load() >= g.maxQueue {
		g.shed.Add(1)
		return ErrOverloaded
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	done := doneChan(ctx)
	if done == nil {
		g.slots <- struct{}{}
		g.inflight.Add(1)
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		g.inflight.Add(1)
		return nil
	case <-done:
		return ctx.Err()
	}
}

// exit releases the slot claimed by a successful enter.
func (g *gate) exit() {
	if g == nil {
		return
	}
	g.inflight.Add(-1)
	<-g.slots
}

// snapshot returns the gate's instantaneous and cumulative counters
// for /metrics: currently admitted, currently queued, and total shed.
func (g *gate) snapshot() (inflight, queued, shed int64) {
	if g == nil {
		return 0, 0, 0
	}
	return g.inflight.Load(), g.queued.Load(), g.shed.Load()
}
