package server

// Tests for the observability plane: query explain, the slow-query
// log, the /debug endpoints, and a promtool-style validation of the
// /metrics exposition.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// explainFixture ingests n gaussian vectors into one collection over
// the handler and returns the test server.
func explainFixture(t *testing.T, s *Server, name string, spec *IndexSpec, shards, n, dim int) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	rng := xrand.New(7)
	items := dataset.Gaussian(rng, n, dim, false)
	recs := make([]RecordJSON, len(items))
	for i, v := range items {
		id := i
		recs[i] = RecordJSON{ID: &id, Vec: v}
	}
	if code := doJSON(t, ts, http.MethodPut, "/collections/"+name,
		IngestRequest{Index: spec, Shards: shards, Records: recs}, nil); code != http.StatusOK {
		t.Fatalf("ingest status %d", code)
	}
	return ts
}

// TestExplainInt8ConsistentWithStats is the acceptance check: explain
// on an int8 collection reports per-shard scan counts that agree with
// /stats, names rerank candidates, and flags the cache hit on a
// repeat. Tracing is deliberately left off — explain must work anyway.
func TestExplainInt8ConsistentWithStats(t *testing.T) {
	s := New(Config{DefaultShards: 3, CacheCapacity: 32})
	defer s.Close()
	ts := explainFixture(t, s, "q8", &IndexSpec{Kind: KindExact, Precision: PrecisionI8}, 3, 300, 8)

	q := make([]float64, 8)
	q[0] = 1
	var resp SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/q8/search",
		SearchRequest{Q: q, K: 5, Explain: true}, &resp); code != http.StatusOK {
		t.Fatalf("explain search status %d", code)
	}
	qe := resp.Explain
	if qe == nil {
		t.Fatal("explain: true returned no explain block")
	}
	if qe.Precision != PrecisionI8 || qe.Index != KindExact || qe.K != 5 || !qe.Rerank {
		t.Fatalf("explain header wrong: %+v", qe)
	}
	if qe.CacheHit {
		t.Fatal("first query reported a cache hit")
	}
	if len(qe.Shards) != 3 {
		t.Fatalf("explain has %d shards, want 3", len(qe.Shards))
	}

	var st Stats
	if code := doJSON(t, ts, http.MethodGet, "/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	cs := st.Collections["q8"]
	if len(cs.Shards) != 3 {
		t.Fatalf("stats has %d shards, want 3", len(cs.Shards))
	}
	var totalRows int
	for _, shx := range qe.Shards {
		ss := cs.Shards[shx.Shard]
		// No tombstones: an exact int8 scan reads every physical row
		// the shard holds, which is exactly the /stats record count.
		if shx.RowsScanned != ss.Records {
			t.Fatalf("shard %d scanned %d rows, /stats says %d records", shx.Shard, shx.RowsScanned, ss.Records)
		}
		if shx.Live != ss.Live {
			t.Fatalf("shard %d explain live=%d, /stats live=%d", shx.Shard, shx.Live, ss.Live)
		}
		if shx.RerankCandidates <= 0 {
			t.Fatalf("shard %d: int8 always re-ranks, yet rerank_candidates=%d", shx.Shard, shx.RerankCandidates)
		}
		totalRows += shx.RowsScanned
	}
	if totalRows != 300 || qe.RowsScanned != totalRows {
		t.Fatalf("total rows scanned %d (aggregate %d), want 300", totalRows, qe.RowsScanned)
	}
	if qe.RerankCandidates <= 0 {
		t.Fatalf("aggregate rerank_candidates=%d, want > 0", qe.RerankCandidates)
	}
	if _, ok := qe.StageMicros["scan"]; !ok {
		t.Fatalf("stage_micros misses the scan stage: %v", qe.StageMicros)
	}

	// The same query again is a cache hit, and explain says so.
	var again SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/q8/search",
		SearchRequest{Q: q, K: 5, Explain: true}, &again); code != http.StatusOK {
		t.Fatalf("repeat search status %d", code)
	}
	if again.Explain == nil || !again.Explain.CacheHit {
		t.Fatalf("repeat query explain = %+v, want cache_hit", again.Explain)
	}

	// Batched explain is rejected up front.
	req, _ := json.Marshal(SearchRequest{Queries: [][]float64{q, q}, K: 5, Explain: true})
	hr, err := ts.Client().Post(ts.URL+"/collections/q8/search", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatalf("batch explain: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch explain status %d, want 400", hr.StatusCode)
	}
}

// TestExplainCountsPrunedBlocks checks the normscan engine surfaces its
// Cauchy–Schwarz block pruning through explain.
func TestExplainCountsPrunedBlocks(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: -1})
	defer s.Close()
	ts := explainFixture(t, s, "ns", &IndexSpec{Kind: KindNormScan}, 2, 4000, 8)

	// A near-zero-norm query keeps every block prunable except those
	// needed to fill k; a tiny k maximizes pruning.
	q := make([]float64, 8)
	q[0] = 1e-9
	var resp SearchResponse
	if code := doJSON(t, ts, http.MethodPost, "/collections/ns/search",
		SearchRequest{Q: q, K: 1, Explain: true}, &resp); code != http.StatusOK {
		t.Fatalf("explain search status %d", code)
	}
	if resp.Explain == nil {
		t.Fatal("no explain block")
	}
	var pruned, scanned int
	for _, shx := range resp.Explain.Shards {
		pruned += shx.CSPrunedBlocks
		scanned += shx.RowsScanned
	}
	if pruned == 0 {
		t.Fatalf("normscan explain reports no pruned blocks (scanned %d rows): %+v", scanned, resp.Explain.Shards)
	}
	if scanned >= 4000 {
		t.Fatalf("pruning claimed but all %d rows scanned", scanned)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer usable as an slog sink
// written to from server goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLogAndDebugTrace drives a traced server with a
// threshold of ~0, captures the structured slow-query line, and
// resolves its trace id at /debug/trace/{id}.
func TestSlowQueryLogAndDebugTrace(t *testing.T) {
	var logs syncBuffer
	old := slog.Default()
	slog.SetDefault(slog.New(slog.NewJSONHandler(&logs, nil)))
	defer slog.SetDefault(old)

	s := New(Config{DefaultShards: 2, CacheCapacity: -1, Tracing: true})
	defer s.Close()
	s.slowQuery = time.Nanosecond // everything is slow
	ts := explainFixture(t, s, "slow", &IndexSpec{Kind: KindExact}, 2, 100, 8)

	q := make([]float64, 8)
	q[0] = 1
	if code := doJSON(t, ts, http.MethodPost, "/collections/slow/search",
		SearchRequest{Q: q, K: 3}, nil); code != http.StatusOK {
		t.Fatalf("search status %d", code)
	}

	// The slow line is written after the handler body, so the client
	// can win the race to here; poll briefly.
	var line map[string]any
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, l := range strings.Split(logs.String(), "\n") {
			if !strings.Contains(l, "slow request") || !strings.Contains(l, `"route":"search"`) {
				continue
			}
			if err := json.Unmarshal([]byte(l), &line); err != nil {
				t.Fatalf("slow-query line is not JSON: %v\n%s", err, l)
			}
		}
		if line != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line == nil {
		t.Fatalf("no slow-query line for route=search in:\n%s", logs.String())
	}
	id, _ := line["trace_id"].(string)
	if id == "" {
		t.Fatalf("slow-query line carries no trace_id: %v", line)
	}
	if col, _ := line["collection"].(string); col != "slow" {
		t.Fatalf("slow-query line collection = %q, want slow", col)
	}
	if _, ok := line["spans"]; !ok {
		t.Fatalf("slow-query line has no span tree: %v", line)
	}

	// The id from the log line resolves at /debug/trace/{id}.
	var exp trace.Exported
	if code := doJSON(t, ts, http.MethodGet, "/debug/trace/"+id, nil, &exp); code != http.StatusOK {
		t.Fatalf("debug trace status %d for id %q", code, id)
	}
	if exp.TraceID != id || exp.Route != "search" || exp.Active {
		t.Fatalf("debug trace = %+v, want finished search trace %s", exp, id)
	}
	found := false
	for _, sp := range exp.Spans {
		if sp.Name == "scan" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace has no scan span: %+v", exp.Spans)
	}

	// An unknown id is a 404, not an empty 200.
	if code := doJSON(t, ts, http.MethodGet, "/debug/trace/ffffffffffffffffffffffffffffffff", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace id status %d, want 404", code)
	}
}

// TestDebugRequests exercises the recent-by-route ring and the
// tracing-disabled 404.
func TestDebugRequests(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: -1, Tracing: true, TraceBuffer: 4})
	defer s.Close()
	ts := explainFixture(t, s, "dbg", &IndexSpec{Kind: KindExact}, 2, 50, 4)

	q := []float64{1, 0, 0, 0}
	for i := 0; i < 6; i++ {
		if code := doJSON(t, ts, http.MethodPost, "/collections/dbg/search",
			SearchRequest{Q: q, K: 2}, nil); code != http.StatusOK {
			t.Fatalf("search %d status %d", i, code)
		}
	}
	var dbg DebugRequests
	if code := doJSON(t, ts, http.MethodGet, "/debug/requests", nil, &dbg); code != http.StatusOK {
		t.Fatalf("debug requests status %d", code)
	}
	recent := dbg.Recent["search"]
	if len(recent) != 4 {
		t.Fatalf("search ring holds %d traces, want 4 (TraceBuffer)", len(recent))
	}
	for i, e := range recent {
		if e.Route != "search" || e.Active || e.Collection != "dbg" {
			t.Fatalf("recent[%d] = %+v, want finished search trace on dbg", i, e)
		}
		if i > 0 && e.Start.After(recent[i-1].Start) {
			t.Fatalf("recent traces not newest-first: %v after %v", recent[i-1].Start, e.Start)
		}
	}
	// The ingest that seeded the fixture is in its own route ring.
	if len(dbg.Recent["ingest"]) == 0 {
		t.Fatalf("ingest route missing from recent: %v", dbg.Recent)
	}

	// Tracing disabled: the debug plane 404s.
	s2 := New(Config{DefaultShards: 1})
	defer s2.Close()
	ts2 := httptest.NewServer(NewHandler(s2))
	defer ts2.Close()
	if code := doJSON(t, ts2, http.MethodGet, "/debug/requests", nil, nil); code != http.StatusNotFound {
		t.Fatalf("debug requests with tracing off: status %d, want 404", code)
	}
	if code := doJSON(t, ts2, http.MethodGet, "/debug/trace/abc", nil, nil); code != http.StatusNotFound {
		t.Fatalf("debug trace with tracing off: status %d, want 404", code)
	}
}

// TestTraceparentPropagation checks an inbound W3C traceparent is
// adopted (same trace id, new span id) and echoed on the response.
func TestTraceparentPropagation(t *testing.T) {
	s := New(Config{DefaultShards: 1, Tracing: true})
	defer s.Close()
	ts := explainFixture(t, s, "tp", &IndexSpec{Kind: KindExact}, 1, 10, 4)

	body, _ := json.Marshal(SearchRequest{Q: []float64{1, 0, 0, 0}, K: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/collections/tp/search", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	const inID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req.Header.Set("traceparent", "00-"+inID+"-00f067aa0ba902b7-01")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	resp.Body.Close()
	echo := resp.Header.Get("Traceparent")
	gotID, gotSpan, ok := trace.Parse(echo)
	if !ok || gotID != inID {
		t.Fatalf("response traceparent %q does not adopt inbound trace id %s", echo, inID)
	}
	if gotSpan == "00f067aa0ba902b7" {
		t.Fatal("server echoed the client's span id instead of minting its own")
	}
	var exp trace.Exported
	if code := doJSON(t, ts, http.MethodGet, "/debug/trace/"+inID, nil, &exp); code != http.StatusOK {
		t.Fatalf("adopted trace id not resolvable: status %d", code)
	}
	if exp.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("parent span id = %q, want the client's", exp.ParentSpanID)
	}
}

// promNameRe is the exposition-format metric/label name grammar.
var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// validatePromText is a promtool-check-metrics-style validator for the
// Prometheus text exposition format. It enforces:
//
//   - every sample belongs to a family announced by # HELP and # TYPE
//     lines that precede its first sample, each appearing exactly once;
//   - families are contiguous (a family never reopens after another
//     family's samples began);
//   - metric names match the name grammar; label values are properly
//     quoted with only \\, \", \n escapes;
//   - histogram buckets are cumulative (monotone nondecreasing in file
//     order), end at le="+Inf", and the +Inf bucket equals _count;
//   - every histogram label set has exactly one _sum and one _count.
func validatePromText(t *testing.T, text string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	closed := map[string]bool{} // family → samples ended
	current := ""
	type histState struct {
		buckets map[string][]float64 // labels-minus-le → cumulative counts
		lastLe  map[string]string
		sum     map[string]int
		count   map[string]float64
		hasInf  map[string]bool
	}
	hists := map[string]*histState{}

	family := func(name string) string {
		for fam, typ := range typeSeen {
			if typ == "histogram" {
				for _, suf := range []string{"_bucket", "_sum", "_count"} {
					if name == fam+suf {
						return fam
					}
				}
			}
		}
		return name
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d: %s\n%s", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				fail("malformed comment")
			}
			name := fields[2]
			if !promNameRe.MatchString(name) {
				fail("bad metric name %q", name)
			}
			if closed[name] {
				fail("family %s reopened after other samples", name)
			}
			if fields[1] == "HELP" {
				if helpSeen[name] {
					fail("duplicate HELP for %s", name)
				}
				helpSeen[name] = true
			} else {
				if _, dup := typeSeen[name]; dup {
					fail("duplicate TYPE for %s", name)
				}
				typeSeen[name] = fields[3]
			}
			continue
		}

		// Sample line: name[{labels}] value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				fail("unbalanced label braces")
			}
			labels = line[i+1 : j]
			rest := strings.TrimSpace(line[j+1:])
			if _, err := strconv.ParseFloat(rest, 64); err != nil {
				fail("bad sample value %q", rest)
			}
		} else {
			i := strings.IndexByte(line, ' ')
			if i < 0 {
				fail("no value")
			}
			name = line[:i]
			if _, err := strconv.ParseFloat(strings.TrimSpace(line[i+1:]), 64); err != nil {
				fail("bad sample value")
			}
		}
		if !promNameRe.MatchString(name) {
			fail("bad metric name %q", name)
		}
		fam := family(name)
		if !helpSeen[fam] || typeSeen[fam] == "" {
			fail("sample for %s (family %s) before HELP+TYPE", name, fam)
		}
		if closed[fam] {
			fail("family %s reopened", fam)
		}
		if current != fam {
			if current != "" {
				closed[current] = true
			}
			current = fam
		}

		// Parse labels, checking names and escaping.
		le := ""
		var nonLe []string
		for rest := labels; rest != ""; {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				fail("label without value in %q", labels)
			}
			lname := rest[:eq]
			if !promNameRe.MatchString(lname) {
				fail("bad label name %q", lname)
			}
			if len(rest) < eq+2 || rest[eq+1] != '"' {
				fail("unquoted label value in %q", labels)
			}
			v := rest[eq+2:]
			end, esc := -1, false
			for i := 0; i < len(v); i++ {
				if esc {
					if v[i] != '\\' && v[i] != '"' && v[i] != 'n' {
						fail("invalid escape \\%c in label value", v[i])
					}
					esc = false
					continue
				}
				if v[i] == '\\' {
					esc = true
				} else if v[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				fail("unterminated label value in %q", labels)
			}
			val := v[:end]
			if lname == "le" {
				le = val
			} else {
				nonLe = append(nonLe, lname+"="+val)
			}
			rest = v[end+1:]
			rest = strings.TrimPrefix(rest, ",")
		}

		if typeSeen[fam] == "histogram" {
			h := hists[fam]
			if h == nil {
				h = &histState{
					buckets: map[string][]float64{}, lastLe: map[string]string{},
					sum: map[string]int{}, count: map[string]float64{}, hasInf: map[string]bool{},
				}
				hists[fam] = h
			}
			key := strings.Join(nonLe, ",")
			val, _ := strconv.ParseFloat(strings.TrimSpace(line[strings.LastIndexByte(line, ' ')+1:]), 64)
			switch {
			case name == fam+"_bucket":
				if le == "" {
					fail("histogram bucket without le label")
				}
				bs := h.buckets[key]
				if len(bs) > 0 && val < bs[len(bs)-1] {
					fail("bucket counts not cumulative for {%s}: %g after %g", key, val, bs[len(bs)-1])
				}
				h.buckets[key] = append(bs, val)
				h.lastLe[key] = le
				if le == "+Inf" {
					h.hasInf[key] = true
				}
			case name == fam+"_sum":
				h.sum[key]++
			case name == fam+"_count":
				h.count[key] = val
			default:
				fail("histogram family %s has plain sample %s", fam, name)
			}
		}
	}
	for fam, h := range hists {
		for key, bs := range h.buckets {
			if !h.hasInf[key] || h.lastLe[key] != "+Inf" {
				t.Fatalf("%s{%s}: bucket series does not end at le=\"+Inf\"", fam, key)
			}
			cnt, ok := h.count[key]
			if !ok {
				t.Fatalf("%s{%s}: no _count", fam, key)
			}
			if h.sum[key] != 1 {
				t.Fatalf("%s{%s}: %d _sum samples, want 1", fam, key, h.sum[key])
			}
			if bs[len(bs)-1] != cnt {
				t.Fatalf("%s{%s}: +Inf bucket %g != count %g", fam, key, bs[len(bs)-1], cnt)
			}
		}
	}
}

// TestMetricsPromFormat drives traffic through a traced server and
// validates the whole /metrics page, including the new
// ipsd_stage_seconds and runtime/build-info series.
func TestMetricsPromFormat(t *testing.T) {
	s := New(Config{DefaultShards: 2, CacheCapacity: 32, Tracing: true})
	defer s.Close()
	ts := explainFixture(t, s, "m\"x\\y", &IndexSpec{Kind: KindExact}, 2, 100, 4)

	q := []float64{1, 0, 0, 0}
	for i := 0; i < 3; i++ {
		if code := doJSON(t, ts, http.MethodPost, `/collections/m"x\y/search`,
			SearchRequest{Q: q, K: 2}, nil); code != http.StatusOK {
			t.Fatalf("search status %d", code)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	text := buf.String()
	validatePromText(t, text)

	for _, want := range []string{
		"ipsd_stage_seconds_bucket{stage=\"scan\",",
		"go_goroutines ",
		"go_gc_cycles_total ",
		"ipsd_build_info{version=",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics page misses %q", want)
		}
	}
}
