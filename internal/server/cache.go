package server

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/vec"
)

// queryCache is an LRU memo of search results keyed by the exact query
// bytes (collection, version, k, variant, coordinates — no hashing, so
// a hit is never a collision). Entries are tagged with their collection
// so ingest can invalidate explicitly; keys also embed the collection
// version, making any entry that survives a missed invalidation
// unreachable rather than stale.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element

	hits, misses, invalidations atomic.Int64
}

type cacheEntry struct {
	key        string
	collection string
	hits       []Hit
}

// newQueryCache creates a cache holding up to capacity results;
// capacity <= 0 disables caching.
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache memoizes at all; the serving layer
// skips key construction entirely when it does not.
func (c *queryCache) enabled() bool { return c.cap > 0 }

// cacheKey serializes a search identity to an exact binary key. gen is
// the collection incarnation (unique per created/recovered Collection
// within this server's life): a dropped-and-recreated collection
// restarts versions at 0, so without it an in-flight put racing the
// drop's invalidate could strand an old-incarnation entry that a
// same-name successor would later serve.
func cacheKey(collection string, gen, version uint64, k int, unsigned, rerank bool, q vec.Vector) string {
	buf := make([]byte, 0, len(collection)+1+26+8*len(q))
	buf = append(buf, collection...)
	buf = append(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(k))
	if unsigned {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	// Re-ranked and raw-score answers differ on f32 collections, so
	// they must never share an entry.
	if rerank {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, x := range q {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return string(buf)
}

// get returns the memoized hits for key, if present.
func (c *queryCache) get(key string) ([]Hit, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).hits, true
}

// put memoizes hits under key, evicting the least recently used entry
// when over capacity.
func (c *queryCache) put(collection, key string, hits []Hit) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).hits = hits
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, collection: collection, hits: hits})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// invalidate drops every entry belonging to the collection (called on
// ingest) and returns the number removed.
func (c *queryCache) invalidate(collection string) int {
	if c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.collection == collection {
			c.ll.Remove(el)
			delete(c.items, e.key)
			removed++
		}
		el = next
	}
	if removed > 0 {
		c.invalidations.Add(int64(removed))
	}
	return removed
}

// len returns the current entry count.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
