package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeVia writes data to path through fsys, propagating the first
// error. It mirrors the write-then-sync shape persist uses.
func writeVia(fsys FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := writeVia(OS, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
}

// TestRuleMatching pins the rule semantics the chaos tests lean on:
// op and path filters, After skip-ahead, and the Count bound after
// which the schedule heals.
func TestRuleMatching(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS, 1)
	f.Inject(Rule{Op: OpSync, Path: "wal", After: 1, Count: 2})

	path := filepath.Join(dir, "wal-0001")
	// Writes are a different op class: never faulted.
	if err := writeVia(f, path, []byte("x")); err == nil {
		// First sync is let through by After: 1... so writeVia succeeds.
	} else {
		t.Fatalf("first write+sync should pass (After=1): %v", err)
	}
	// Syncs 2 and 3 fault with EIO, sync 4 passes (Count exhausted).
	for i, wantErr := range []bool{true, true, false} {
		err := writeVia(f, path, []byte("x"))
		if wantErr && !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d: err=%v, want EIO", i+2, err)
		}
		if !wantErr && err != nil {
			t.Fatalf("sync %d: err=%v after Count exhausted", i+2, err)
		}
	}
	// Path filter: a non-matching path is never faulted.
	f.Inject(Rule{Op: OpSync, Path: "wal"}) // unlimited, but wrong path below
	if err := writeVia(f, filepath.Join(dir, "seg-0001"), []byte("x")); err != nil {
		t.Fatalf("non-matching path faulted: %v", err)
	}
	if got := f.InjectedFor(OpSync); got != 2 {
		t.Fatalf("InjectedFor(sync) = %d, want 2", got)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	f := NewFaulty(OS, 1)
	f.Inject(Rule{Op: OpWrite, Kind: KindShortWrite, Count: 1})
	path := filepath.Join(dir, "seg")
	err := writeVia(f, path, []byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write err=%v, want ENOSPC", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The first half of the buffer really landed: the torn-append shape.
	if string(got) != "01234" {
		t.Fatalf("file holds %q after short write, want %q", got, "01234")
	}
	// The rule healed after one shot.
	if err := writeVia(f, path, []byte("full")); err != nil {
		t.Fatal(err)
	}
}

func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "seg.tmp")
	dst := filepath.Join(dir, "seg")
	if err := os.WriteFile(src, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := NewFaulty(OS, 1)
	f.Inject(Rule{Op: OpRename, Kind: KindTornRename, Count: 1})
	if err := f.Rename(src, dst); err == nil {
		t.Fatal("torn rename reported success")
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("destination holds %q after torn rename, want the torn prefix %q", got, "01234")
	}
	// Healed: the retry is atomic and complete.
	if err := f.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(dst); string(got) != "0123456789" {
		t.Fatalf("destination holds %q after healed rename", got)
	}
}

// TestSeededScheduleIsReproducible: two injectors with the same seed
// fire on exactly the same calls; a different seed gives a different
// schedule. This is what makes a chaos run replayable from its flags.
func TestSeededScheduleIsReproducible(t *testing.T) {
	schedule := func(seed uint64) []bool {
		f := NewFaulty(OS, seed)
		f.Inject(Rule{Op: OpStat, Prob: 0.5})
		fired := make([]bool, 64)
		for i := range fired {
			_, err := f.Stat(filepath.Join(t.TempDir(), "missing"))
			// Injected faults are EIO; the passthrough error is ENOENT.
			fired[i] = errors.Is(err, syscall.EIO)
		}
		return fired
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestClearHeals(t *testing.T) {
	f := NewFaulty(OS, 1)
	f.Inject(Rule{Op: OpMkdir})
	dir := filepath.Join(t.TempDir(), "x")
	if err := f.MkdirAll(dir, 0o755); !errors.Is(err, syscall.EIO) {
		t.Fatalf("mkdir err=%v, want EIO", err)
	}
	f.Clear()
	if err := f.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("mkdir after Clear: %v", err)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", f.Injected())
	}
}

func TestParseOp(t *testing.T) {
	if op, err := ParseOp("sync"); err != nil || op != OpSync {
		t.Fatalf("ParseOp(sync) = %v, %v", op, err)
	}
	if _, err := ParseOp("fsync"); err == nil {
		t.Fatal("ParseOp accepted an unknown op")
	}
}
