// Package errfs is the filesystem seam under the persist layer: a
// minimal FS interface covering exactly the operations the WAL and
// segment machinery perform, a zero-cost passthrough to the real OS,
// and a fault-injecting implementation for tests and chaos harnesses.
//
// Faults are declared as rules — matched per operation and per path
// substring, optionally after N clean calls, for a bounded count, or
// probabilistically from a seeded generator — so a test can script "the
// 3rd fsync of this collection's WAL fails with EIO" or a chaos run can
// ask for "2% of all writes fail with ENOSPC until 25 faults have
// fired". Beyond plain error returns, rules can inject short writes
// (half the buffer lands, then ENOSPC) and torn renames (the
// destination is left holding a torn prefix of the source while the
// call reports failure — the post-crash state of a non-atomic rename),
// which is what exercises the recovery fallback paths for real.
package errfs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// File is the writable-file surface the persist layer needs from an
// open WAL or temp file.
type File interface {
	io.Writer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FS is the filesystem surface the persist layer performs all its I/O
// through. Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(name string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(name string) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory so renames/creates within it are
	// durable.
	SyncDir(name string) error
}

// OS is the production filesystem: every call passes straight through
// to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(name string) error                  { return os.RemoveAll(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Op names one FS operation class for rule matching.
type Op string

const (
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpReadDir  Op = "readdir"
	OpMkdir    Op = "mkdir"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpStat     Op = "stat"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
)

// ParseOp validates a flag spelling of an operation class.
func ParseOp(s string) (Op, error) {
	switch op := Op(s); op {
	case OpOpen, OpRead, OpReadDir, OpMkdir, OpRename, OpRemove,
		OpStat, OpWrite, OpSync, OpTruncate, OpSyncDir:
		return op, nil
	}
	return "", fmt.Errorf("errfs: unknown operation %q", s)
}

// Kind selects how a matched rule manifests.
type Kind int

const (
	// KindErr fails the call with Rule.Err (default EIO) and no side
	// effect.
	KindErr Kind = iota
	// KindShortWrite (writes only) persists the first half of the
	// buffer, then fails with Rule.Err (default ENOSPC) — the classic
	// torn-append shape.
	KindShortWrite
	// KindTornRename (renames only) leaves the destination holding a
	// torn prefix of the source while the call reports Rule.Err: the
	// observable post-crash state of a non-atomic rename.
	KindTornRename
)

// Rule is one fault-injection clause. The zero value of every matching
// field means "any".
type Rule struct {
	// Op restricts the rule to one operation class ("" matches all).
	Op Op
	// Path is a substring the operation's path must contain ("" matches
	// all). Matching is against the full path as the caller spelled it.
	Path string
	// After lets this many matching calls through before the rule can
	// fire.
	After int
	// Count bounds how many faults the rule injects (0 = unlimited).
	Count int
	// Prob, when positive, fires the rule on each eligible call with
	// this probability, drawn from the Faulty's seeded generator;
	// zero fires deterministically on every eligible call.
	Prob float64
	// Kind selects the failure shape (default KindErr).
	Kind Kind
	// Err is the injected error (default EIO; ENOSPC for short writes).
	Err error
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// Faulty wraps an inner FS (usually OS, over a test temp dir) and
// injects faults per the installed rules. All real I/O that the rules
// let through hits the inner FS, so recovery code paths exercise real
// files.
type Faulty struct {
	inner FS

	mu       sync.Mutex
	rules    []*ruleState
	rng      uint64
	byOp     map[Op]int64
	injected atomic.Int64
}

// NewFaulty wraps inner with a fault injector whose probabilistic rules
// draw from a generator seeded with seed (so a chaos schedule is
// reproducible).
func NewFaulty(inner FS, seed uint64) *Faulty {
	if inner == nil {
		inner = OS
	}
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Faulty{inner: inner, rng: seed, byOp: make(map[Op]int64)}
}

// Inject appends rules to the schedule. Rules are evaluated in
// installation order; the first match fires.
func (f *Faulty) Inject(rules ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range rules {
		f.rules = append(f.rules, &ruleState{Rule: r})
	}
}

// Clear drops every installed rule (the faults "heal").
func (f *Faulty) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many faults have fired in total.
func (f *Faulty) Injected() int64 { return f.injected.Load() }

// InjectedFor reports how many faults have fired for one operation
// class.
func (f *Faulty) InjectedFor(op Op) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byOp[op]
}

// rand returns the next [0,1) draw from the seeded xorshift64* stream.
// Callers hold mu.
func (f *Faulty) rand() float64 {
	x := f.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	f.rng = x
	return float64((x*0x2545f4914f6cdd1d)>>11) / float64(1<<53)
}

type fault struct {
	kind Kind
	err  error
}

// check consults the rules for (op, path) and returns the fault to
// inject, or nil to let the call through.
func (f *Faulty) check(op Op, path string) *fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && f.rand() >= r.Prob {
			continue
		}
		r.fired++
		f.injected.Add(1)
		f.byOp[op]++
		err := r.Err
		if err == nil {
			if r.Kind == KindShortWrite {
				err = syscall.ENOSPC
			} else {
				err = syscall.EIO
			}
		}
		return &fault{kind: r.Kind, err: err}
	}
	return nil
}

func pathErr(op string, path string, err error) error {
	return &os.PathError{Op: op, Path: path, Err: err}
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if ft := f.check(OpOpen, name); ft != nil {
		return nil, pathErr("open", name, ft.err)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, name: name, inner: inner}, nil
}

func (f *Faulty) ReadFile(name string) ([]byte, error) {
	if ft := f.check(OpRead, name); ft != nil {
		return nil, pathErr("read", name, ft.err)
	}
	return f.inner.ReadFile(name)
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	if ft := f.check(OpReadDir, name); ft != nil {
		return nil, pathErr("readdir", name, ft.err)
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) MkdirAll(name string, perm os.FileMode) error {
	if ft := f.check(OpMkdir, name); ft != nil {
		return pathErr("mkdir", name, ft.err)
	}
	return f.inner.MkdirAll(name, perm)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	if ft := f.check(OpRename, newpath); ft != nil {
		if ft.kind == KindTornRename {
			// Leave the destination holding a torn prefix of the source —
			// what a crash through a non-atomic rename exposes — while
			// still reporting failure to the caller. The source survives,
			// so retry/fallback paths see the same world a real recovery
			// would.
			if data, rerr := f.inner.ReadFile(oldpath); rerr == nil {
				if g, cerr := f.inner.OpenFile(newpath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644); cerr == nil {
					_, _ = g.Write(data[:len(data)/2])
					_ = g.Sync()
					_ = g.Close()
				}
			}
		}
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ft.err}
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	if ft := f.check(OpRemove, name); ft != nil {
		return pathErr("remove", name, ft.err)
	}
	return f.inner.Remove(name)
}

func (f *Faulty) RemoveAll(name string) error {
	if ft := f.check(OpRemove, name); ft != nil {
		return pathErr("removeall", name, ft.err)
	}
	return f.inner.RemoveAll(name)
}

func (f *Faulty) Stat(name string) (os.FileInfo, error) {
	if ft := f.check(OpStat, name); ft != nil {
		return nil, pathErr("stat", name, ft.err)
	}
	return f.inner.Stat(name)
}

func (f *Faulty) SyncDir(name string) error {
	if ft := f.check(OpSyncDir, name); ft != nil {
		return pathErr("syncdir", name, ft.err)
	}
	return f.inner.SyncDir(name)
}

// faultyFile routes per-file operations back through the injector so
// rules can target writes/syncs on an already-open WAL.
type faultyFile struct {
	fs    *Faulty
	name  string
	inner File
}

func (w *faultyFile) Write(p []byte) (int, error) {
	if ft := w.fs.check(OpWrite, w.name); ft != nil {
		if ft.kind == KindShortWrite && len(p) > 0 {
			n, werr := w.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, pathErr("write", w.name, ft.err)
		}
		return 0, pathErr("write", w.name, ft.err)
	}
	return w.inner.Write(p)
}

func (w *faultyFile) Seek(offset int64, whence int) (int64, error) {
	return w.inner.Seek(offset, whence)
}

func (w *faultyFile) Truncate(size int64) error {
	if ft := w.fs.check(OpTruncate, w.name); ft != nil {
		return pathErr("truncate", w.name, ft.err)
	}
	return w.inner.Truncate(size)
}

func (w *faultyFile) Sync() error {
	if ft := w.fs.check(OpSync, w.name); ft != nil {
		return pathErr("sync", w.name, ft.err)
	}
	return w.inner.Sync()
}

func (w *faultyFile) Close() error { return w.inner.Close() }
