// Package bitvec provides bit-packed vectors over the domains {0,1} and
// {−1,+1}, together with the concatenation (⊕), repetition and tensor (⊗)
// operators used by the gap embeddings of Ahle et al. (Lemma 3).
//
// Both representations pack 64 coordinates per machine word so that inner
// products reduce to AND/XOR + popcount kernels. Unused tail bits are kept
// at zero as an invariant, which the dot-product kernels rely on.
package bitvec

import (
	"fmt"
	"math/bits"
)

func words(n int) int { return (n + 63) / 64 }

// tailMask returns the mask of valid bits in the last word of an n-bit
// vector, or ^0 when n is a multiple of 64 (including n = 0 with no words).
func tailMask(n int) uint64 {
	r := n % 64
	if r == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << r) - 1
}

// Bits is a packed vector over {0,1}.
type Bits struct {
	N int
	W []uint64
}

// NewBits returns an all-zero {0,1} vector of dimension n.
func NewBits(n int) *Bits {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative dimension %d", n))
	}
	return &Bits{N: n, W: make([]uint64, words(n))}
}

// BitsFromInts builds a {0,1} vector from a slice of 0/1 integers.
func BitsFromInts(xs []int) *Bits {
	b := NewBits(len(xs))
	for i, v := range xs {
		switch v {
		case 0:
		case 1:
			b.SetBit(i, 1)
		default:
			panic(fmt.Sprintf("bitvec: BitsFromInts value %d at %d not in {0,1}", v, i))
		}
	}
	return b
}

// Clone returns a deep copy.
func (b *Bits) Clone() *Bits {
	w := make([]uint64, len(b.W))
	copy(w, b.W)
	return &Bits{N: b.N, W: w}
}

// Bit returns coordinate i as 0 or 1.
func (b *Bits) Bit(i int) int {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, b.N))
	}
	return int(b.W[i/64] >> (uint(i) % 64) & 1)
}

// SetBit assigns coordinate i to v ∈ {0,1}.
func (b *Bits) SetBit(i, v int) {
	if i < 0 || i >= b.N {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, b.N))
	}
	m := uint64(1) << (uint(i) % 64)
	switch v {
	case 0:
		b.W[i/64] &^= m
	case 1:
		b.W[i/64] |= m
	default:
		panic(fmt.Sprintf("bitvec: SetBit value %d not in {0,1}", v))
	}
}

// OnesCount returns the number of 1 coordinates.
func (b *Bits) OnesCount() int {
	c := 0
	for _, w := range b.W {
		c += bits.OnesCount64(w)
	}
	return c
}

// DotBits returns the inner product of two {0,1} vectors, i.e. the size
// of the intersection of their supports. Panics on dimension mismatch.
func DotBits(x, y *Bits) int {
	if x.N != y.N {
		panic(fmt.Sprintf("bitvec: DotBits dimension mismatch %d != %d", x.N, y.N))
	}
	c := 0
	for i, w := range x.W {
		c += bits.OnesCount64(w & y.W[i])
	}
	return c
}

// Ints returns the vector as a slice of 0/1 integers.
func (b *Bits) Ints() []int {
	out := make([]int, b.N)
	for i := range out {
		out[i] = b.Bit(i)
	}
	return out
}

// Floats returns the vector as float64 coordinates.
func (b *Bits) Floats() []float64 {
	out := make([]float64, b.N)
	for i := range out {
		out[i] = float64(b.Bit(i))
	}
	return out
}

// String renders the vector as a 0/1 string, most significant coordinate
// last (coordinate order).
func (b *Bits) String() string {
	buf := make([]byte, b.N)
	for i := 0; i < b.N; i++ {
		buf[i] = byte('0' + b.Bit(i))
	}
	return string(buf)
}

// writer appends bit runs to a packed word slice, handling arbitrary
// (non-word-aligned) offsets.
type writer struct {
	w []uint64
	n int
}

func newWriter(capBits int) *writer {
	return &writer{w: make([]uint64, 0, words(capBits))}
}

// writeBits appends the low n bits of src (packed) to the stream. If flip
// is true every appended bit is complemented.
func (wr *writer) writeBits(src []uint64, n int, flip bool) {
	if n == 0 {
		return
	}
	need := words(wr.n + n)
	for len(wr.w) < need {
		wr.w = append(wr.w, 0)
	}
	off := uint(wr.n % 64)
	wi := wr.n / 64
	full := n / 64
	for k := 0; k < full; k++ {
		v := src[k]
		if flip {
			v = ^v
		}
		wr.w[wi+k] |= v << off
		if off != 0 {
			wr.w[wi+k+1] |= v >> (64 - off)
		}
	}
	rem := n % 64
	if rem > 0 {
		v := src[full]
		if flip {
			v = ^v
		}
		v &= (uint64(1) << uint(rem)) - 1
		idx := wi + full
		wr.w[idx] |= v << off
		if off != 0 && int(off)+rem > 64 {
			wr.w[idx+1] |= v >> (64 - off)
		}
	}
	wr.n += n
}

// writeBit appends a single bit.
func (wr *writer) writeBit(v int) {
	var one [1]uint64
	one[0] = uint64(v)
	wr.writeBits(one[:], 1, false)
}

func (wr *writer) bits() *Bits {
	b := &Bits{N: wr.n, W: wr.w}
	if len(b.W) > 0 {
		b.W[len(b.W)-1] &= tailMask(b.N)
	}
	return b
}

// ConcatBits returns x ⊕ y (coordinates of x followed by those of y).
func ConcatBits(xs ...*Bits) *Bits {
	total := 0
	for _, x := range xs {
		total += x.N
	}
	wr := newWriter(total)
	for _, x := range xs {
		wr.writeBits(x.W, x.N, false)
	}
	return wr.bits()
}

// RepeatBits returns x^{⊕n}: x concatenated with itself n times.
func RepeatBits(x *Bits, n int) *Bits {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: RepeatBits negative count %d", n))
	}
	wr := newWriter(x.N * n)
	for i := 0; i < n; i++ {
		wr.writeBits(x.W, x.N, false)
	}
	return wr.bits()
}

// TensorBits returns x ⊗ y for {0,1} vectors, laid out row-major:
// (x⊗y)[i·dim(y)+j] = x[i] AND y[j]. It satisfies
// DotBits(x1⊗x2, y1⊗y2) = DotBits(x1,y1)·DotBits(x2,y2).
func TensorBits(x, y *Bits) *Bits {
	wr := newWriter(x.N * y.N)
	zero := make([]uint64, len(y.W))
	for i := 0; i < x.N; i++ {
		if x.Bit(i) == 1 {
			wr.writeBits(y.W, y.N, false)
		} else {
			wr.writeBits(zero, y.N, false)
		}
	}
	return wr.bits()
}

// Signs is a packed vector over {−1,+1}. Bit 0 encodes +1 and bit 1
// encodes −1, so coordinate i has value 1 − 2·bit(i).
type Signs struct {
	N int
	W []uint64
}

// NewSigns returns the all +1 vector of dimension n.
func NewSigns(n int) *Signs {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative dimension %d", n))
	}
	return &Signs{N: n, W: make([]uint64, words(n))}
}

// SignsFromInts builds a {−1,+1} vector from a slice of ±1 integers.
func SignsFromInts(xs []int) *Signs {
	s := NewSigns(len(xs))
	for i, v := range xs {
		switch v {
		case 1:
		case -1:
			s.setBitRaw(i, 1)
		default:
			panic(fmt.Sprintf("bitvec: SignsFromInts value %d at %d not in {-1,1}", v, i))
		}
	}
	return s
}

// Clone returns a deep copy.
func (s *Signs) Clone() *Signs {
	w := make([]uint64, len(s.W))
	copy(w, s.W)
	return &Signs{N: s.N, W: w}
}

func (s *Signs) setBitRaw(i, v int) {
	m := uint64(1) << (uint(i) % 64)
	if v == 0 {
		s.W[i/64] &^= m
	} else {
		s.W[i/64] |= m
	}
}

// Sign returns coordinate i as +1 or −1.
func (s *Signs) Sign(i int) int {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, s.N))
	}
	return 1 - 2*int(s.W[i/64]>>(uint(i)%64)&1)
}

// SetSign assigns coordinate i to v ∈ {−1,+1}.
func (s *Signs) SetSign(i, v int) {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, s.N))
	}
	switch v {
	case 1:
		s.setBitRaw(i, 0)
	case -1:
		s.setBitRaw(i, 1)
	default:
		panic(fmt.Sprintf("bitvec: SetSign value %d not in {-1,1}", v))
	}
}

// DotSigns returns the inner product of two {−1,+1} vectors:
// n − 2·(number of disagreeing coordinates). Panics on dimension mismatch.
func DotSigns(x, y *Signs) int {
	if x.N != y.N {
		panic(fmt.Sprintf("bitvec: DotSigns dimension mismatch %d != %d", x.N, y.N))
	}
	dis := 0
	for i, w := range x.W {
		dis += bits.OnesCount64(w ^ y.W[i])
	}
	return x.N - 2*dis
}

// Neg returns −x as a new vector.
func (s *Signs) Neg() *Signs {
	out := NewSigns(s.N)
	for i, w := range s.W {
		out.W[i] = ^w
	}
	if len(out.W) > 0 {
		out.W[len(out.W)-1] &= tailMask(s.N)
	}
	return out
}

// Ints returns the vector as ±1 integers.
func (s *Signs) Ints() []int {
	out := make([]int, s.N)
	for i := range out {
		out[i] = s.Sign(i)
	}
	return out
}

// Floats returns the vector as float64 coordinates.
func (s *Signs) Floats() []float64 {
	out := make([]float64, s.N)
	for i := range out {
		out[i] = float64(s.Sign(i))
	}
	return out
}

// ConcatSigns returns x ⊕ y ⊕ … for {−1,+1} vectors.
func ConcatSigns(xs ...*Signs) *Signs {
	total := 0
	for _, x := range xs {
		total += x.N
	}
	wr := newWriter(total)
	for _, x := range xs {
		wr.writeBits(x.W, x.N, false)
	}
	b := wr.bits()
	return &Signs{N: b.N, W: b.W}
}

// RepeatSigns returns x^{⊕n}.
func RepeatSigns(x *Signs, n int) *Signs {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: RepeatSigns negative count %d", n))
	}
	wr := newWriter(x.N * n)
	for i := 0; i < n; i++ {
		wr.writeBits(x.W, x.N, false)
	}
	b := wr.bits()
	return &Signs{N: b.N, W: b.W}
}

// TensorSigns returns x ⊗ y for {−1,+1} vectors:
// (x⊗y)[i·dim(y)+j] = x[i]·y[j]. In the sign-bit encoding this is an XOR
// expansion: the (i,j) bit is bit_x(i) XOR bit_y(j). It satisfies
// DotSigns(x1⊗x2, y1⊗y2) = DotSigns(x1,y1)·DotSigns(x2,y2).
func TensorSigns(x, y *Signs) *Signs {
	wr := newWriter(x.N * y.N)
	for i := 0; i < x.N; i++ {
		// x[i] = +1: copy y; x[i] = −1: copy −y (flip bits).
		flip := x.W[i/64]>>(uint(i)%64)&1 == 1
		wr.writeBits(y.W, y.N, flip)
	}
	b := wr.bits()
	return &Signs{N: b.N, W: b.W}
}

// AllOnes returns the all +1 vector of dimension n (paper notation 1^d).
func AllOnes(n int) *Signs { return NewSigns(n) }

// AllMinusOnes returns the all −1 vector of dimension n.
func AllMinusOnes(n int) *Signs { return NewSigns(n).Neg() }
