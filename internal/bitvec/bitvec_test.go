package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBits(r *rand.Rand, n int) *Bits {
	b := NewBits(n)
	for i := 0; i < n; i++ {
		b.SetBit(i, r.Intn(2))
	}
	return b
}

func randSigns(r *rand.Rand, n int) *Signs {
	s := NewSigns(n)
	for i := 0; i < n; i++ {
		s.SetSign(i, 1-2*r.Intn(2))
	}
	return s
}

func naiveDotBits(x, y *Bits) int {
	d := 0
	for i := 0; i < x.N; i++ {
		d += x.Bit(i) * y.Bit(i)
	}
	return d
}

func naiveDotSigns(x, y *Signs) int {
	d := 0
	for i := 0; i < x.N; i++ {
		d += x.Sign(i) * y.Sign(i)
	}
	return d
}

func TestBitsBasics(t *testing.T) {
	b := NewBits(70)
	b.SetBit(0, 1)
	b.SetBit(69, 1)
	if b.Bit(0) != 1 || b.Bit(69) != 1 || b.Bit(35) != 0 {
		t.Fatal("SetBit/Bit roundtrip failed")
	}
	if b.OnesCount() != 2 {
		t.Fatalf("OnesCount = %d", b.OnesCount())
	}
	b.SetBit(69, 0)
	if b.OnesCount() != 1 {
		t.Fatalf("OnesCount after clear = %d", b.OnesCount())
	}
}

func TestBitsFromInts(t *testing.T) {
	b := BitsFromInts([]int{1, 0, 1, 1})
	if b.String() != "1011" {
		t.Fatalf("String = %q", b.String())
	}
	got := b.Ints()
	want := []int{1, 0, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ints = %v", got)
		}
	}
	f := b.Floats()
	if f[0] != 1 || f[1] != 0 {
		t.Fatalf("Floats = %v", f)
	}
}

func TestBitsFromIntsRejectsBadValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BitsFromInts([]int{2})
}

func TestDotBitsMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(300)
		x, y := randBits(r, n), randBits(r, n)
		if DotBits(x, y) != naiveDotBits(x, y) {
			t.Fatalf("trial %d n=%d: DotBits mismatch", trial, n)
		}
	}
}

func TestSignsBasics(t *testing.T) {
	s := NewSigns(5)
	for i := 0; i < 5; i++ {
		if s.Sign(i) != 1 {
			t.Fatal("NewSigns must be all +1")
		}
	}
	s.SetSign(3, -1)
	if s.Sign(3) != -1 {
		t.Fatal("SetSign(-1) failed")
	}
	s.SetSign(3, 1)
	if s.Sign(3) != 1 {
		t.Fatal("SetSign(+1) failed")
	}
}

func TestSignsFromInts(t *testing.T) {
	s := SignsFromInts([]int{1, -1, 1})
	got := s.Ints()
	if got[0] != 1 || got[1] != -1 || got[2] != 1 {
		t.Fatalf("Ints = %v", got)
	}
	f := s.Floats()
	if f[1] != -1 {
		t.Fatalf("Floats = %v", f)
	}
}

func TestDotSignsMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(300)
		x, y := randSigns(r, n), randSigns(r, n)
		if DotSigns(x, y) != naiveDotSigns(x, y) {
			t.Fatalf("trial %d n=%d: DotSigns mismatch", trial, n)
		}
	}
}

func TestNeg(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randSigns(r, 130)
	nx := x.Neg()
	for i := 0; i < x.N; i++ {
		if nx.Sign(i) != -x.Sign(i) {
			t.Fatalf("Neg mismatch at %d", i)
		}
	}
	// Tail bits must remain zero so dot kernels stay valid.
	y := randSigns(r, 130)
	if DotSigns(nx, y) != -DotSigns(x, y) {
		t.Fatal("DotSigns(Neg(x), y) != -DotSigns(x, y)")
	}
}

func TestConcatBits(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		a, b := randBits(r, 1+r.Intn(100)), randBits(r, 1+r.Intn(100))
		c := ConcatBits(a, b)
		if c.N != a.N+b.N {
			t.Fatalf("Concat length %d", c.N)
		}
		for i := 0; i < a.N; i++ {
			if c.Bit(i) != a.Bit(i) {
				t.Fatalf("Concat bit %d mismatch", i)
			}
		}
		for i := 0; i < b.N; i++ {
			if c.Bit(a.N+i) != b.Bit(i) {
				t.Fatalf("Concat bit %d (second) mismatch", i)
			}
		}
	}
}

func TestConcatDotAdditivity(t *testing.T) {
	// Dot(x1⊕x2, y1⊕y2) = Dot(x1,y1) + Dot(x2,y2), for both domains.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 1+r.Intn(80), 1+r.Intn(80)
		x1, y1 := randBits(r, n1), randBits(r, n1)
		x2, y2 := randBits(r, n2), randBits(r, n2)
		if DotBits(ConcatBits(x1, x2), ConcatBits(y1, y2)) != DotBits(x1, y1)+DotBits(x2, y2) {
			t.Fatal("bits concat additivity failed")
		}
		s1, t1 := randSigns(r, n1), randSigns(r, n1)
		s2, t2 := randSigns(r, n2), randSigns(r, n2)
		if DotSigns(ConcatSigns(s1, s2), ConcatSigns(t1, t2)) != DotSigns(s1, t1)+DotSigns(s2, t2) {
			t.Fatal("signs concat additivity failed")
		}
	}
}

func TestRepeat(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x, y := randBits(r, 37), randBits(r, 37)
	if DotBits(RepeatBits(x, 5), RepeatBits(y, 5)) != 5*DotBits(x, y) {
		t.Fatal("RepeatBits dot law failed")
	}
	s, u := randSigns(r, 37), randSigns(r, 37)
	if DotSigns(RepeatSigns(s, 5), RepeatSigns(u, 5)) != 5*DotSigns(s, u) {
		t.Fatal("RepeatSigns dot law failed")
	}
	if RepeatBits(x, 0).N != 0 {
		t.Fatal("RepeatBits 0 should be empty")
	}
}

func TestTensorBitsLaw(t *testing.T) {
	// Dot(x1⊗x2, y1⊗y2) = Dot(x1,y1)·Dot(x2,y2).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := 1+r.Intn(40), 1+r.Intn(40)
		x1, y1 := randBits(r, n1), randBits(r, n1)
		x2, y2 := randBits(r, n2), randBits(r, n2)
		return DotBits(TensorBits(x1, x2), TensorBits(y1, y2)) ==
			DotBits(x1, y1)*DotBits(x2, y2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorSignsLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := 1+r.Intn(40), 1+r.Intn(40)
		x1, y1 := randSigns(r, n1), randSigns(r, n1)
		x2, y2 := randSigns(r, n2), randSigns(r, n2)
		return DotSigns(TensorSigns(x1, x2), TensorSigns(y1, y2)) ==
			DotSigns(x1, y1)*DotSigns(x2, y2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorLayout(t *testing.T) {
	x := BitsFromInts([]int{1, 0})
	y := BitsFromInts([]int{1, 1, 0})
	z := TensorBits(x, y)
	want := []int{1, 1, 0, 0, 0, 0}
	got := z.Ints()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TensorBits layout = %v, want %v", got, want)
		}
	}
	sx := SignsFromInts([]int{1, -1})
	sy := SignsFromInts([]int{1, -1})
	sz := TensorSigns(sx, sy)
	swant := []int{1, -1, -1, 1}
	sgot := sz.Ints()
	for i := range swant {
		if sgot[i] != swant[i] {
			t.Fatalf("TensorSigns layout = %v, want %v", sgot, swant)
		}
	}
}

func TestTensorUnalignedWidths(t *testing.T) {
	// Exercise the bit-writer across word boundaries with awkward widths.
	r := rand.New(rand.NewSource(7))
	for _, n2 := range []int{1, 63, 64, 65, 127, 128, 129} {
		x1, y1 := randSigns(r, 3), randSigns(r, 3)
		x2, y2 := randSigns(r, n2), randSigns(r, n2)
		if DotSigns(TensorSigns(x1, x2), TensorSigns(y1, y2)) !=
			DotSigns(x1, y1)*DotSigns(x2, y2) {
			t.Fatalf("tensor law failed at inner width %d", n2)
		}
	}
}

func TestAllOnes(t *testing.T) {
	a := AllOnes(100)
	m := AllMinusOnes(100)
	if DotSigns(a, m) != -100 {
		t.Fatalf("AllOnes·AllMinusOnes = %d", DotSigns(a, m))
	}
	if DotSigns(a, a) != 100 {
		t.Fatalf("AllOnes·AllOnes = %d", DotSigns(a, a))
	}
}

func TestClones(t *testing.T) {
	b := BitsFromInts([]int{1, 0, 1})
	c := b.Clone()
	c.SetBit(1, 1)
	if b.Bit(1) != 0 {
		t.Fatal("Bits.Clone must be deep")
	}
	s := SignsFromInts([]int{1, -1})
	u := s.Clone()
	u.SetSign(0, -1)
	if s.Sign(0) != 1 {
		t.Fatal("Signs.Clone must be deep")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { NewBits(3).Bit(3) },
		func() { NewBits(3).SetBit(-1, 0) },
		func() { NewSigns(3).Sign(5) },
		func() { NewSigns(3).SetSign(0, 0) },
		func() { DotBits(NewBits(2), NewBits(3)) },
		func() { DotSigns(NewSigns(2), NewSigns(3)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func BenchmarkDotSigns4096(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	x, y := randSigns(r, 4096), randSigns(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DotSigns(x, y)
	}
}

func BenchmarkTensorSigns64x64(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x, y := randSigns(r, 64), randSigns(r, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TensorSigns(x, y)
	}
}
