// Package cheb implements Chebyshev polynomials of the first kind, the
// analytic engine behind the unsigned {−1,1} gap embedding (Lemma 3,
// embedding 2) of Ahle et al. The embedding realises b^q·T_q(u/b) as an
// exact inner product of {−1,1} vectors; this package provides the
// reference scalar evaluations and the growth bounds used to certify the
// embedding's (cs, s) parameters.
package cheb

import (
	"fmt"
	"math"
)

// T evaluates the Chebyshev polynomial of the first kind T_q(x) using the
// numerically appropriate closed form: cos/cosh expressions inside and
// outside [−1, 1]. Exact for all real x; q must be nonnegative.
func T(q int, x float64) float64 {
	if q < 0 {
		panic(fmt.Sprintf("cheb: negative order %d", q))
	}
	switch {
	case x >= 1:
		return math.Cosh(float64(q) * math.Acosh(x))
	case x <= -1:
		s := 1.0
		if q%2 == 1 {
			s = -1
		}
		return s * math.Cosh(float64(q)*math.Acosh(-x))
	default:
		return math.Cos(float64(q) * math.Acos(x))
	}
}

// TRec evaluates T_q(x) via the defining recurrence
// T_0 = 1, T_1 = x, T_q = 2x·T_{q−1} − T_{q−2}. It is used in tests to
// cross-validate T and mirrors the recursion the embedding implements on
// vectors.
func TRec(q int, x float64) float64 {
	if q < 0 {
		panic(fmt.Sprintf("cheb: negative order %d", q))
	}
	if q == 0 {
		return 1
	}
	prev, cur := 1.0, x
	for i := 2; i <= q; i++ {
		prev, cur = cur, 2*x*cur-prev
	}
	return cur
}

// ScaledRec evaluates b^q·T_q(u/b) for integer-friendly arguments via the
// scaled recurrence S_0 = 1, S_1 = u, S_q = 2u·S_{q−1} − b²·S_{q−2},
// which is exactly the inner-product recursion realised by the vector
// embedding. All intermediate values stay integral when u and b are.
func ScaledRec(q int, u, b float64) float64 {
	if q < 0 {
		panic(fmt.Sprintf("cheb: negative order %d", q))
	}
	if q == 0 {
		return 1
	}
	prev, cur := 1.0, u
	for i := 2; i <= q; i++ {
		prev, cur = cur, 2*u*cur-b*b*prev
	}
	return cur
}

// GrowthLowerBound returns the lower bound e^{q·√ε}/2 for T_q(1+ε),
// valid for 0 < ε < 1/2. It follows from
// T_q(1+ε) = cosh(q·acosh(1+ε)) ≥ cosh(q√ε) ≥ e^{q√ε}/2,
// and is the form the paper's embedding-2 threshold
// s = (2d)^q·e^{q/√d}/2 uses. Used to certify the gap of embedding 2.
func GrowthLowerBound(q int, eps float64) float64 {
	if eps <= 0 || eps >= 0.5 {
		panic(fmt.Sprintf("cheb: GrowthLowerBound eps %v out of (0, 1/2)", eps))
	}
	return math.Exp(float64(q)*math.Sqrt(eps)) / 2
}

// MaxAbsOnUnit returns the maximum of |T_q| on [−1, 1], which is 1 for
// every q ≥ 0 (the defining extremal property). Provided for
// documentation value and used in tests.
func MaxAbsOnUnit(q int) float64 { return 1 }
