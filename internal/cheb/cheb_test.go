package cheb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSmallOrders(t *testing.T) {
	// T_0 = 1, T_1 = x, T_2 = 2x²−1, T_3 = 4x³−3x.
	for _, x := range []float64{-2, -1, -0.5, 0, 0.3, 1, 1.5} {
		if got := T(0, x); got != 1 {
			t.Fatalf("T_0(%v) = %v", x, got)
		}
		if got := T(1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("T_1(%v) = %v", x, got)
		}
		if got, want := T(2, x), 2*x*x-1; math.Abs(got-want) > 1e-9 {
			t.Fatalf("T_2(%v) = %v, want %v", x, got, want)
		}
		if got, want := T(3, x), 4*x*x*x-3*x; math.Abs(got-want) > 1e-9 {
			t.Fatalf("T_3(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestClosedFormMatchesRecurrence(t *testing.T) {
	f := func(qRaw uint8, xRaw int16) bool {
		q := int(qRaw % 20)
		x := float64(xRaw) / 10000 * 1.3 // spans inside and outside [-1,1]
		a, b := T(q, x), TRec(q, x)
		scale := math.Max(1, math.Abs(b))
		return math.Abs(a-b)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedOnUnitInterval(t *testing.T) {
	for q := 0; q <= 30; q++ {
		for x := -1.0; x <= 1.0; x += 0.01 {
			if v := math.Abs(T(q, x)); v > 1+1e-9 {
				t.Fatalf("|T_%d(%v)| = %v > 1", q, x, v)
			}
		}
		if MaxAbsOnUnit(q) != 1 {
			t.Fatal("MaxAbsOnUnit must be 1")
		}
	}
}

func TestGrowthOutsideUnit(t *testing.T) {
	// T_q(1+ε) ≥ e^{q√ε}/2 for 0 < ε < 1/2 (the form used by the paper's
	// embedding-2 threshold).
	for _, q := range []int{1, 2, 5, 10, 20} {
		for _, eps := range []float64{0.01, 0.1, 0.25, 0.49} {
			got := T(q, 1+eps)
			want := GrowthLowerBound(q, eps)
			if got < want {
				t.Fatalf("T_%d(1+%v) = %v < e^{q√ε}/2 = %v", q, eps, got, want)
			}
		}
	}
}

func TestScaledRecMatchesDefinition(t *testing.T) {
	// ScaledRec(q, u, b) must equal b^q·T_q(u/b).
	f := func(qRaw uint8, uRaw, bRaw int8) bool {
		q := int(qRaw % 12)
		b := float64(int(bRaw%10) + 11) // b in [2..20]-ish, nonzero
		u := float64(uRaw)
		got := ScaledRec(q, u, b)
		want := math.Pow(b, float64(q)) * T(q, u/b)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(got-want)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScaledRecIntegrality(t *testing.T) {
	// With integer u, b all values must be exactly integral.
	for q := 0; q <= 10; q++ {
		v := ScaledRec(q, 7, 16)
		if v != math.Trunc(v) {
			t.Fatalf("ScaledRec(%d,7,16) = %v not integral", q, v)
		}
	}
}

func TestSemigroupProperty(t *testing.T) {
	// T_m(T_n(x)) = T_{mn}(x).
	for _, m := range []int{1, 2, 3} {
		for _, n := range []int{1, 2, 4} {
			for x := -0.95; x <= 0.96; x += 0.1 {
				lhs := T(m, T(n, x))
				rhs := T(m*n, x)
				if math.Abs(lhs-rhs) > 1e-9 {
					t.Fatalf("T_%d(T_%d(%v)): %v != %v", m, n, x, lhs, rhs)
				}
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for i, f := range []func(){
		func() { T(-1, 0) },
		func() { TRec(-1, 0) },
		func() { ScaledRec(-2, 0, 1) },
		func() { GrowthLowerBound(1, 0.7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
