package lsh

import (
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestMultiProbeFindsPlanted(t *testing.T) {
	const d, n = 16, 500
	rng := xrand.New(1)
	mp, err := NewMultiProbe(d, 10, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector(rng.UnitVec(d))
	planted := q.Clone()
	planted[0] += 0.05
	vec.Normalize(planted)
	id := mp.Insert(planted)
	for i := 1; i < n; i++ {
		mp.Insert(vec.Vector(rng.UnitVec(d)))
	}
	if mp.Len() != n {
		t.Fatalf("Len = %d", mp.Len())
	}
	best, _ := mp.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
	if best != id {
		t.Fatalf("Query = %d, want %d", best, id)
	}
}

func TestMultiProbeBeatsZeroProbeRecall(t *testing.T) {
	// With few tables, adding probes must find at least as many planted
	// neighbours as probing only the exact bucket.
	const d, n, plants = 16, 400, 30
	rng := xrand.New(3)
	queries := make([]vec.Vector, plants)
	data := make([]vec.Vector, 0, n)
	for i := 0; i < plants; i++ {
		q := vec.Vector(rng.UnitVec(d))
		queries[i] = q
		p := q.Clone()
		p[1] += 0.1
		vec.Normalize(p)
		data = append(data, p) // planted partner has id i
	}
	for len(data) < n {
		data = append(data, vec.Vector(rng.UnitVec(d)))
	}
	recall := func(probes int) int {
		mp, err := NewMultiProbe(d, 12, 2, probes, 4)
		if err != nil {
			t.Fatal(err)
		}
		mp.InsertAll(data)
		hits := 0
		for i, q := range queries {
			for _, cand := range mp.Candidates(q) {
				if cand == i {
					hits++
					break
				}
			}
		}
		return hits
	}
	r0, r4 := recall(0), recall(4)
	if r4 < r0 {
		t.Fatalf("probes reduced recall: %d -> %d", r0, r4)
	}
	if r4 == 0 {
		t.Fatal("multiprobe found nothing")
	}
	if r4 == r0 {
		t.Logf("probes did not change recall (%d) — acceptable but unusual", r0)
	}
}

func TestMultiProbeCandidatesDeduplicated(t *testing.T) {
	mp, err := NewMultiProbe(4, 4, 6, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := vec.Vector{1, 0, 0, 0}
	mp.Insert(p)
	cands := mp.Candidates(p)
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v", cands)
	}
}

func TestMultiProbeValidation(t *testing.T) {
	if _, err := NewMultiProbe(0, 4, 2, 1, 1); err == nil {
		t.Fatal("dim=0 must fail")
	}
	if _, err := NewMultiProbe(4, 0, 2, 1, 1); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := NewMultiProbe(4, 64, 2, 1, 1); err == nil {
		t.Fatal("K>63 must fail")
	}
	if _, err := NewMultiProbe(4, 4, 2, 5, 1); err == nil {
		t.Fatal("probes>K must fail")
	}
	if _, err := NewMultiProbe(4, 4, 0, 1, 1); err == nil {
		t.Fatal("L=0 must fail")
	}
}

func TestMultiProbeDimMismatchPanics(t *testing.T) {
	mp, _ := NewMultiProbe(4, 2, 2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mp.Insert(vec.Vector{1, 2})
}

func BenchmarkMultiProbeQuery(b *testing.B) {
	const d, n = 32, 2000
	rng := xrand.New(6)
	mp, err := NewMultiProbe(d, 12, 4, 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mp.Insert(vec.Vector(rng.UnitVec(d)))
	}
	q := vec.Vector(rng.UnitVec(d))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
	}
}
