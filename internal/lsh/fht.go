package lsh

import (
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// This file implements the practical angular LSH the paper recommends
// for §4.1 ("in practice one may want to use a recent LSH family from
// [7]" — Andoni, Indyk, Kapralov, Laarhoven, Razenshteyn, Schmidt,
// "Practical and Optimal LSH for Angular Distance"): cross-polytope
// hashing under *pseudo-random rotations* HD₃HD₂HD₁ built from the fast
// Hadamard transform, replacing the dense Gaussian rotation's O(d²)
// hash cost with O(d·log d).

// FHT applies the (unnormalised) fast Walsh–Hadamard transform in
// place. len(x) must be a power of two.
func FHT(x vec.Vector) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("lsh: FHT length %d is not a power of two", n))
	}
	for h := 1; h < n; h <<= 1 {
		for i := 0; i < n; i += h << 1 {
			for j := i; j < i+h; j++ {
				a, b := x[j], x[j+h]
				x[j], x[j+h] = a+b, a-b
			}
		}
	}
}

// nextPow2 returns the smallest power of two ≥ n.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FastCrossPolytope is the cross-polytope family with HD₃HD₂HD₁
// pseudo-rotations: three rounds of random-sign flips followed by
// normalised Hadamard transforms. Hash evaluation costs O(d log d).
type FastCrossPolytope struct {
	D int
	// padded is the power-of-two working dimension.
	padded int
}

// NewFastCrossPolytope returns the family for dimension d.
func NewFastCrossPolytope(d int) (*FastCrossPolytope, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	return &FastCrossPolytope{D: d, padded: nextPow2(d)}, nil
}

// Name implements Family.
func (f *FastCrossPolytope) Name() string { return "fast-cross-polytope" }

type fastCPHasher struct {
	d, padded int
	signs     [3][]float64 // ±1 diagonal matrices D₁, D₂, D₃
	scale     float64
}

// Sample implements Family.
func (f *FastCrossPolytope) Sample(rng *xrand.RNG) Hasher {
	h := fastCPHasher{
		d:      f.D,
		padded: f.padded,
		scale:  1 / math.Sqrt(float64(f.padded)),
	}
	for r := 0; r < 3; r++ {
		s := make([]float64, f.padded)
		for i := range s {
			s[i] = float64(rng.Sign())
		}
		h.signs[r] = s
	}
	return symmetricHasher{f: h.hash}
}

func (h fastCPHasher) hash(x vec.Vector) uint64 {
	if len(x) != h.d {
		panic(fmt.Sprintf("lsh: hash dimension %d != %d", len(x), h.d))
	}
	buf := make(vec.Vector, h.padded)
	copy(buf, x)
	for r := 0; r < 3; r++ {
		s := h.signs[r]
		for i := range buf {
			buf[i] *= s[i]
		}
		FHT(buf)
		for i := range buf {
			buf[i] *= h.scale
		}
	}
	idx, _ := vec.ArgMaxAbs(buf)
	if idx < 0 {
		return 0
	}
	out := uint64(2 * idx)
	if buf[idx] < 0 {
		out++
	}
	return out
}
