package lsh

import (
	"fmt"
	"sort"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// MultiProbe is a query-directed multi-probe index over hyperplane
// codes: each table stores a K-bit sign code, and a query additionally
// probes the buckets obtained by flipping its lowest-margin bits (the
// hyperplanes it barely cleared). This trades a small amount of query
// work for a large reduction in the number of tables L — the standard
// engineering refinement of the banding scheme used by the paper's
// upper-bound constructions.
type MultiProbe struct {
	K, L, Probes int
	planes       [][]vec.Vector // [L][K] hyperplane normals
	tables       []map[uint64][]int32
	data         []vec.Vector
	dim          int
}

// NewMultiProbe builds an index with K hyperplanes per table, L tables,
// and `probes` additional bit-flip probes per table per query.
func NewMultiProbe(dim, k, l, probes int, seed uint64) (*MultiProbe, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", dim)
	}
	if k <= 0 || k > 63 || l <= 0 {
		return nil, fmt.Errorf("lsh: invalid multiprobe shape K=%d L=%d", k, l)
	}
	if probes < 0 || probes > k {
		return nil, fmt.Errorf("lsh: probes %d out of [0, K=%d]", probes, k)
	}
	rng := xrand.New(seed)
	mp := &MultiProbe{K: k, L: l, Probes: probes, dim: dim,
		planes: make([][]vec.Vector, l), tables: make([]map[uint64][]int32, l)}
	for i := 0; i < l; i++ {
		mp.planes[i] = make([]vec.Vector, k)
		for j := 0; j < k; j++ {
			mp.planes[i][j] = vec.Vector(rng.NormalVec(dim))
		}
		mp.tables[i] = make(map[uint64][]int32)
	}
	return mp, nil
}

// code returns the K-bit sign code of x in table i, along with the
// per-bit margins |aᵀx| (the flip costs).
func (mp *MultiProbe) code(i int, x vec.Vector, margins []float64) uint64 {
	var c uint64
	for j, a := range mp.planes[i] {
		d := vec.Dot(a, x)
		if d >= 0 {
			c |= 1 << uint(j)
		}
		if margins != nil {
			if d < 0 {
				d = -d
			}
			margins[j] = d
		}
	}
	return c
}

// Insert adds a data vector and returns its id.
func (mp *MultiProbe) Insert(p vec.Vector) int {
	if len(p) != mp.dim {
		panic(fmt.Sprintf("lsh: insert dimension %d != %d", len(p), mp.dim))
	}
	id := int32(len(mp.data))
	mp.data = append(mp.data, p)
	for i := 0; i < mp.L; i++ {
		c := mp.code(i, p, nil)
		mp.tables[i][c] = append(mp.tables[i][c], id)
	}
	return int(id)
}

// InsertAll adds a batch.
func (mp *MultiProbe) InsertAll(ps []vec.Vector) {
	for _, p := range ps {
		mp.Insert(p)
	}
}

// Len returns the number of indexed vectors.
func (mp *MultiProbe) Len() int { return len(mp.data) }

// Candidates returns deduplicated candidate ids for q, probing the
// exact bucket plus the `Probes` single-bit flips of the lowest-margin
// hyperplanes in every table.
func (mp *MultiProbe) Candidates(q vec.Vector) []int {
	if len(q) != mp.dim {
		panic(fmt.Sprintf("lsh: query dimension %d != %d", len(q), mp.dim))
	}
	seen := make(map[int32]struct{})
	var out []int
	margins := make([]float64, mp.K)
	order := make([]int, mp.K)
	for i := 0; i < mp.L; i++ {
		c := mp.code(i, q, margins)
		// Rank bits by increasing margin: cheapest flips first.
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, b int) bool { return margins[order[a]] < margins[order[b]] })
		probeCodes := make([]uint64, 0, 1+mp.Probes)
		probeCodes = append(probeCodes, c)
		for p := 0; p < mp.Probes; p++ {
			probeCodes = append(probeCodes, c^(1<<uint(order[p])))
		}
		for _, pc := range probeCodes {
			for _, id := range mp.tables[i][pc] {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				out = append(out, int(id))
			}
		}
	}
	return out
}

// Query returns the best candidate under the score function, or (-1, 0).
func (mp *MultiProbe) Query(q vec.Vector, score func(p vec.Vector) float64) (int, float64) {
	best, bv := -1, 0.0
	for _, id := range mp.Candidates(q) {
		if v := score(mp.data[id]); best == -1 || v > bv {
			best, bv = id, v
		}
	}
	return best, bv
}
