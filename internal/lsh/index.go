package lsh

import (
	"fmt"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Index is a classic (K, L) banding LSH index: L tables, each keyed by
// the concatenation of K independently sampled hash functions. With a
// family of quality ρ and K ≈ log n, L ≈ n^ρ the index answers
// approximate queries in sublinear time — this is the data-structure
// side of the paper's upper bounds.
type Index struct {
	K, L    int
	family  Family
	hashers [][]Hasher // [L][K]
	tables  []map[uint64][]int32
	data    []vec.Vector
}

// NewIndex samples K·L hash functions from the family. Deterministic
// given the seed.
func NewIndex(f Family, k, l int, seed uint64) (*Index, error) {
	if f == nil {
		return nil, fmt.Errorf("lsh: nil family")
	}
	if k <= 0 || l <= 0 {
		return nil, fmt.Errorf("lsh: invalid index shape K=%d L=%d", k, l)
	}
	rng := xrand.New(seed)
	hs := make([][]Hasher, l)
	tables := make([]map[uint64][]int32, l)
	for i := 0; i < l; i++ {
		hs[i] = make([]Hasher, k)
		for j := 0; j < k; j++ {
			hs[i][j] = f.Sample(rng)
		}
		tables[i] = make(map[uint64][]int32)
	}
	return &Index{K: k, L: l, family: f, hashers: hs, tables: tables}, nil
}

// combine folds K hash values into a single table key.
func combine(hs []uint64) uint64 {
	key := uint64(1469598103934665603)
	for _, h := range hs {
		key ^= h
		key *= 1099511628211
		key ^= key >> 29
	}
	return key
}

// dataKey computes the table-i key of a data vector.
func (ix *Index) dataKey(i int, p vec.Vector) uint64 {
	hs := make([]uint64, ix.K)
	for j, h := range ix.hashers[i] {
		hs[j] = h.HashData(p)
	}
	return combine(hs)
}

// queryKey computes the table-i key of a query vector.
func (ix *Index) queryKey(i int, q vec.Vector) uint64 {
	hs := make([]uint64, ix.K)
	for j, h := range ix.hashers[i] {
		hs[j] = h.HashQuery(q)
	}
	return combine(hs)
}

// Insert adds a data vector and returns its id.
func (ix *Index) Insert(p vec.Vector) int {
	id := int32(len(ix.data))
	ix.data = append(ix.data, p)
	for i := 0; i < ix.L; i++ {
		k := ix.dataKey(i, p)
		ix.tables[i][k] = append(ix.tables[i][k], id)
	}
	return int(id)
}

// InsertAll adds a batch of data vectors.
func (ix *Index) InsertAll(ps []vec.Vector) {
	for _, p := range ps {
		ix.Insert(p)
	}
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.data) }

// Data returns the stored vector with the given id.
func (ix *Index) Data(id int) vec.Vector { return ix.data[id] }

// Candidates returns the deduplicated ids colliding with q in any table,
// in ascending id order is NOT guaranteed; callers needing determinism
// should sort. The result length is also the query's candidate cost.
func (ix *Index) Candidates(q vec.Vector) []int {
	seen := make(map[int32]struct{})
	var out []int
	for i := 0; i < ix.L; i++ {
		k := ix.queryKey(i, q)
		for _, id := range ix.tables[i][k] {
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			out = append(out, int(id))
		}
	}
	return out
}

// Query returns the candidate (id, vector) maximising the score function
// over the colliding candidates, or (-1, 0) when no candidate collides.
// Typical scores: vec.Dot with the raw query (signed MIPS) or AbsDot
// (unsigned).
func (ix *Index) Query(q vec.Vector, score func(p vec.Vector) float64) (int, float64) {
	best, bv := -1, 0.0
	for _, id := range ix.Candidates(q) {
		if v := score(ix.data[id]); best == -1 || v > bv {
			best, bv = id, v
		}
	}
	return best, bv
}
