package lsh

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestFHTKnownTransform(t *testing.T) {
	x := vec.Vector{1, 0, 0, 0}
	FHT(x)
	for _, v := range x {
		if v != 1 {
			t.Fatalf("FHT(e0) = %v, want all ones", x)
		}
	}
	y := vec.Vector{1, 1, 1, 1}
	FHT(y)
	want := vec.Vector{4, 0, 0, 0}
	if !vec.EqualTol(y, want, 0) {
		t.Fatalf("FHT(1111) = %v, want %v", y, want)
	}
}

func TestFHTInvolution(t *testing.T) {
	// H·H = n·I: applying twice recovers n·x.
	rng := xrand.New(1)
	x := vec.Vector(rng.NormalVec(16))
	orig := x.Clone()
	FHT(x)
	FHT(x)
	if !vec.EqualTol(x, vec.Scaled(orig, 16), 1e-9) {
		t.Fatal("FHT twice must give n·x")
	}
}

func TestFHTPreservesNormScaled(t *testing.T) {
	// H/√n is orthogonal: ‖Hx‖ = √n·‖x‖.
	rng := xrand.New(2)
	x := vec.Vector(rng.NormalVec(64))
	n0 := vec.Norm(x)
	FHT(x)
	if got := vec.Norm(x) / math.Sqrt(64); math.Abs(got-n0) > 1e-9 {
		t.Fatalf("scaled norm %v, want %v", got, n0)
	}
}

func TestFHTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FHT(vec.Vector{1, 2, 3})
}

func TestFastCrossPolytopeMonotone(t *testing.T) {
	f, err := NewFastCrossPolytope(8)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "fast-cross-polytope" {
		t.Fatal("name")
	}
	var prev float64 = -1
	for _, ip := range []float64{0.0, 0.5, 0.9, 0.99} {
		p, q := unitPairWithIP(8, ip)
		c := EstimateCollision(f, p, q, 4000, 3)
		if c < prev-0.03 {
			t.Fatalf("collision not monotone: %v after %v (ip=%v)", c, prev, ip)
		}
		prev = c
	}
	p, _ := unitPairWithIP(8, 0.5)
	if got := EstimateCollision(f, p, p, 300, 4); got != 1 {
		t.Fatalf("self collision = %v", got)
	}
}

func TestFastCrossPolytopeNonPow2Dim(t *testing.T) {
	// Dimension 5 pads to 8; hashing must still work and stay in range.
	f, err := NewFastCrossPolytope(5)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Sample(xrand.New(5))
	rng := xrand.New(6)
	for i := 0; i < 100; i++ {
		x := vec.Vector(rng.UnitVec(5))
		b := h.HashData(x)
		if b >= 16 { // padded dim 8 → 16 buckets
			t.Fatalf("bucket %d out of range", b)
		}
	}
}

func TestFastCrossPolytopeMatchesDenseQuality(t *testing.T) {
	// The pseudo-rotation family should separate near/far pairs about as
	// well as the dense Gaussian cross-polytope.
	fast, _ := NewFastCrossPolytope(16)
	dense, _ := NewCrossPolytope(16)
	near, farIP := 0.9, 0.1
	sep := func(f Family, seed uint64) float64 {
		pn, qn := unitPairWithIP(16, near)
		pf, qf := unitPairWithIP(16, farIP)
		return EstimateCollision(f, pn, qn, 4000, seed) -
			EstimateCollision(f, pf, qf, 4000, seed+1)
	}
	sf, sd := sep(fast, 7), sep(dense, 9)
	if sf < sd-0.1 {
		t.Fatalf("fast separation %v much worse than dense %v", sf, sd)
	}
}

func BenchmarkCrossPolytopeHash(b *testing.B) {
	const d = 128
	rng := xrand.New(10)
	x := vec.Vector(rng.UnitVec(d))
	dense, _ := NewCrossPolytope(d)
	fast, _ := NewFastCrossPolytope(d)
	dh := dense.Sample(xrand.New(11))
	fh := fast.Sample(xrand.New(12))
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dh.HashData(x)
		}
	})
	b.Run("fht", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fh.HashData(x)
		}
	})
}
