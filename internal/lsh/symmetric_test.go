package lsh

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestSymmetricIPSIsSymmetric(t *testing.T) {
	f, err := NewSymmetricIPS(4, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h := f.Sample(xrand.New(1))
	x := vec.Vector{0.25, -0.5, 0.125, 0.0625}
	if h.HashData(x) != h.HashQuery(x) {
		t.Fatal("§4.2 family must hash data and queries identically")
	}
}

func TestSymmetricIPSIdenticalVectorsAlwaysCollide(t *testing.T) {
	f, err := NewSymmetricIPS(3, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p := vec.Vector{0.5, 0.25, -0.25}
	if got := EstimateCollision(f, p, p, 300, 2); got != 1 {
		t.Fatalf("self collision = %v, want the trivial 1", got)
	}
}

func TestSymmetricIPSCollisionTracksInnerProduct(t *testing.T) {
	// For distinct vectors the collision probability must match the
	// hyperplane law on the embedded sphere: 1 − acos(pᵀq ± ε)/π.
	f, err := NewSymmetricIPS(4, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point-friendly coordinates keep quantization exact.
	p := vec.Vector{0.5, 0.25, 0, 0}
	q := vec.Vector{0.5, -0.25, 0.25, 0}
	got := EstimateCollision(f, p, q, 6000, 3)
	want := HyperplaneCollision(vec.Dot(p, q))
	if math.Abs(got-want) > 0.1+0.04 { // ε slack + MC noise
		t.Fatalf("collision %v, want ≈ %v", got, want)
	}
}

func TestSymmetricIPSSeparatesThresholds(t *testing.T) {
	// A pair above s must collide strictly more often than a pair below
	// cs, i.e. the family is a usable LSH for distinct vectors.
	f, err := NewSymmetricIPS(4, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pHigh := vec.Vector{0.75, 0, 0, 0}
	qHigh := vec.Vector{0.75, 0.25, 0, 0} // ip ≈ 0.56
	pLow := vec.Vector{0.75, 0, 0, 0}
	qLow := vec.Vector{0, 0.75, 0.25, 0} // ip = 0
	cHigh := EstimateCollision(f, pHigh, qHigh, 4000, 4)
	cLow := EstimateCollision(f, pLow, qLow, 4000, 5)
	if cHigh <= cLow+0.1 {
		t.Fatalf("no separation: high %v vs low %v", cHigh, cLow)
	}
}

func TestSymmetricIPSValidation(t *testing.T) {
	if _, err := NewSymmetricIPS(0, 8, 0.1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewSymmetricIPS(4, 6, 2); err == nil {
		t.Fatal("eps=2 must fail")
	}
}
