package lsh

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// NormRangeMIPS improves the §4.1 construction by norm-range
// partitioning: equation (3)'s exponent ρ = (1−s/U)/(1+(1−2c)s/U)
// degrades as the data-norm spread U grows, so the data is split into
// geometric norm bands [M/2^{i+1}, M/2^i], each band is rescaled to the
// unit ball and indexed under its own SIMPLE-ALSH, and queries probe
// every band, keeping the best verified inner product. Within a band
// the effective norm spread is at most 2, restoring a strong exponent
// regardless of the global spread — the standard range-LSH refinement
// of asymmetric MIPS indexes.
type NormRangeMIPS struct {
	bands []*normBand
	data  []vec.Vector
}

type normBand struct {
	index *Index
	ids   []int // global ids of the band members
	scale float64
	u     float64
}

// NormRangeOptions configures NewNormRangeMIPS.
type NormRangeOptions struct {
	// MaxBands caps the number of geometric bands (default 8); vectors
	// below M/2^MaxBands share the last band.
	MaxBands int
	// K, L are the per-band banding parameters (defaults 8, 16).
	K, L int
	Seed uint64
}

// NewNormRangeMIPS builds the banded index. Zero-norm vectors are
// excluded from all bands (they can never win a MIPS query).
func NewNormRangeMIPS(data []vec.Vector, opts NormRangeOptions) (*NormRangeMIPS, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("lsh: empty data set")
	}
	if opts.MaxBands == 0 {
		opts.MaxBands = 8
	}
	if opts.MaxBands < 1 {
		return nil, fmt.Errorf("lsh: MaxBands %d must be positive", opts.MaxBands)
	}
	if opts.K == 0 {
		opts.K = 8
	}
	if opts.L == 0 {
		opts.L = 16
	}
	d := len(data[0])
	maxNorm := 0.0
	norms := make([]float64, len(data))
	for i, p := range data {
		if len(p) != d {
			return nil, fmt.Errorf("lsh: row %d has dimension %d, want %d", i, len(p), d)
		}
		norms[i] = vec.Norm(p)
		if norms[i] > maxNorm {
			maxNorm = norms[i]
		}
	}
	if maxNorm == 0 {
		return nil, fmt.Errorf("lsh: all data vectors are zero")
	}
	// Band b holds norms in (maxNorm/2^{b+1}, maxNorm/2^b], with the last
	// band absorbing everything smaller.
	members := make([][]int, opts.MaxBands)
	for i, n := range norms {
		if n == 0 {
			continue
		}
		b := 0
		if n < maxNorm {
			b = int(math.Floor(math.Log2(maxNorm / n)))
		}
		if b >= opts.MaxBands {
			b = opts.MaxBands - 1
		}
		members[b] = append(members[b], i)
	}
	rng := xrand.New(opts.Seed)
	nr := &NormRangeMIPS{data: data}
	for b, ids := range members {
		if len(ids) == 0 {
			continue
		}
		bandMax := 0.0
		for _, id := range ids {
			if norms[id] > bandMax {
				bandMax = norms[id]
			}
		}
		scale := 1 / bandMax
		tr, err := transform.NewSimple(d, 1)
		if err != nil {
			return nil, err
		}
		inner, err := NewHyperplane(tr.OutputDim())
		if err != nil {
			return nil, err
		}
		fam, err := NewAsymmetric(fmt.Sprintf("range-alsh-band-%d", b),
			MapPair{Data: tr.Data, Query: tr.Query}, inner)
		if err != nil {
			return nil, err
		}
		ix, err := NewIndex(fam, opts.K, opts.L, rng.Split(uint64(b)).Uint64())
		if err != nil {
			return nil, err
		}
		// Sort band members for deterministic insertion order.
		sort.Ints(ids)
		for _, id := range ids {
			ix.Insert(vec.Scaled(data[id], scale))
		}
		nr.bands = append(nr.bands, &normBand{index: ix, ids: ids, scale: scale, u: 1})
	}
	return nr, nil
}

// Bands returns the number of non-empty norm bands.
func (nr *NormRangeMIPS) Bands() int { return len(nr.bands) }

// Query probes every band and returns the global index and exact inner
// product of the best verified candidate, or (-1, 0).
func (nr *NormRangeMIPS) Query(q vec.Vector) (int, float64) {
	probe := q
	if n := vec.Norm(q); n > 1 {
		probe = vec.Scaled(q, (1-1e-12)/n)
	}
	best, bv := -1, 0.0
	for _, band := range nr.bands {
		local, _ := band.index.Query(probe, func(p vec.Vector) float64 {
			// p is the band-scaled vector; scoring by it preserves the
			// within-band order, and the cross-band comparison below uses
			// the true product.
			return vec.Dot(p, q)
		})
		if local < 0 {
			continue
		}
		id := band.ids[local]
		if v := vec.Dot(nr.data[id], q); best == -1 || v > bv {
			best, bv = id, v
		}
	}
	return best, bv
}
