package lsh

import (
	"testing"

	"repro/internal/transform"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// skewedCorpus builds vectors with strongly varying norms and one
// planted high-inner-product partner for the query.
func skewedCorpus(seed uint64, n, d int) ([]vec.Vector, vec.Vector, int) {
	rng := xrand.New(seed)
	q := vec.Vector(rng.UnitVec(d))
	data := make([]vec.Vector, n)
	for i := range data {
		v := vec.Vector(rng.UnitVec(d))
		// Norms spread over three orders of magnitude.
		vec.Scale(v, 0.001+0.999*rng.Float64()*rng.Float64()*rng.Float64())
		data[i] = v
	}
	planted := n / 2
	data[planted] = vec.Scaled(q.Clone(), 0.02) // small norm, perfect angle
	// Ensure nothing with a big norm accidentally aligns better.
	for i := range data {
		if i != planted && vec.Dot(data[i], q) >= 0.02 {
			vec.Scale(data[i], 0.01/vec.Norm(data[i]))
		}
	}
	return data, q, planted
}

func TestNormRangeMIPSFindsSmallNormWinner(t *testing.T) {
	// The winner has tiny norm: a single global-U index rarely surfaces
	// it (its normalized inner product is minuscule at U = maxNorm), but
	// the norm-banded index must.
	data, q, planted := skewedCorpus(1, 400, 16)
	nr, err := NewNormRangeMIPS(data, NormRangeOptions{K: 6, L: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nr.Bands() < 2 {
		t.Fatalf("expected multiple bands, got %d", nr.Bands())
	}
	got, val := nr.Query(q)
	if got != planted {
		// The banded index must at least find something within 80% of the
		// optimum; finding the exact planted winner is the common case.
		exact := vec.Dot(data[planted], q)
		if val < 0.8*exact {
			t.Fatalf("Query = (%d, %v), want planted %d (%v)", got, val, planted, exact)
		}
	}
}

func TestNormRangeMIPSDeterministic(t *testing.T) {
	data, q, _ := skewedCorpus(3, 100, 8)
	build := func() (int, float64) {
		nr, err := NewNormRangeMIPS(data, NormRangeOptions{K: 4, L: 8, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return nr.Query(q)
	}
	i1, v1 := build()
	i2, v2 := build()
	if i1 != i2 || v1 != v2 {
		t.Fatalf("non-deterministic: (%d,%v) vs (%d,%v)", i1, v1, i2, v2)
	}
}

func TestNormRangeMIPSZeroVectors(t *testing.T) {
	data := []vec.Vector{{0, 0}, {0.5, 0}, {0, 0}}
	nr, err := NewNormRangeMIPS(data, NormRangeOptions{K: 2, L: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := nr.Query(vec.Vector{1, 0})
	if got != 1 {
		t.Fatalf("Query = %d, want 1 (zero vectors excluded)", got)
	}
}

func TestNormRangeMIPSValidation(t *testing.T) {
	if _, err := NewNormRangeMIPS(nil, NormRangeOptions{}); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := NewNormRangeMIPS([]vec.Vector{{0}}, NormRangeOptions{}); err == nil {
		t.Fatal("all-zero data must fail")
	}
	if _, err := NewNormRangeMIPS([]vec.Vector{{1}, {1, 2}}, NormRangeOptions{}); err == nil {
		t.Fatal("ragged data must fail")
	}
	if _, err := NewNormRangeMIPS([]vec.Vector{{1}}, NormRangeOptions{MaxBands: -1}); err == nil {
		t.Fatal("negative MaxBands must fail")
	}
}

func TestNormRangeBeatsSingleIndexOnSkewedData(t *testing.T) {
	// Aggregate recall across several skewed corpora: the banded index
	// must recover at least as many planted winners as a single
	// unit-ball index built with U = 1 over globally rescaled data.
	const trials = 10
	bandHits, flatHits := 0, 0
	for trial := 0; trial < trials; trial++ {
		data, q, planted := skewedCorpus(uint64(10+trial), 300, 16)
		nr, err := NewNormRangeMIPS(data, NormRangeOptions{K: 6, L: 16, Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := nr.Query(q); got == planted {
			bandHits++
		}
		// Flat single index: rescale everything by the global max norm.
		maxNorm := 0.0
		for _, p := range data {
			if n := vec.Norm(p); n > maxNorm {
				maxNorm = n
			}
		}
		flat := make([]vec.Vector, len(data))
		for i, p := range data {
			flat[i] = vec.Scaled(p, 1/maxNorm)
		}
		fam := mustSimpleALSHFamily(t, 16)
		ix, err := NewIndex(fam, 6, 16, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		ix.InsertAll(flat)
		probe := q
		if n := vec.Norm(q); n > 1 {
			probe = vec.Scaled(q, (1-1e-12)/n)
		}
		if got, _ := ix.Query(probe, func(p vec.Vector) float64 { return vec.Dot(p, probe) }); got == planted {
			flatHits++
		}
	}
	if bandHits < flatHits {
		t.Fatalf("norm banding (%d/%d) worse than flat index (%d/%d)",
			bandHits, trials, flatHits, trials)
	}
	if bandHits < trials/2 {
		t.Fatalf("norm banding recovered only %d/%d planted winners", bandHits, trials)
	}
}

func mustSimpleALSHFamily(t *testing.T, d int) Family {
	t.Helper()
	tr, err := transform.NewSimple(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := NewHyperplane(tr.OutputDim())
	if err != nil {
		t.Fatal(err)
	}
	fam, err := NewAsymmetric("simple-alsh", MapPair{Data: tr.Data, Query: tr.Query}, inner)
	if err != nil {
		t.Fatal(err)
	}
	return fam
}
