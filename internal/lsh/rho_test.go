package lsh

import (
	"math"
	"testing"
)

func TestRhoDataDepFormula(t *testing.T) {
	// Spot values of equation (3).
	cases := []struct{ c, s, want float64 }{
		{0.5, 0.5, (1 - 0.5) / (1 + 0)},
		{0.9, 0.5, 0.5 / (1 + (1-1.8)*0.5)},
		{0.5, 0.9, 0.1 / 1.0},
	}
	for _, tc := range cases {
		if got := RhoDataDep(tc.c, tc.s); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("RhoDataDep(%v,%v) = %v, want %v", tc.c, tc.s, got, tc.want)
		}
	}
}

func TestRhoDataDepLimits(t *testing.T) {
	// s → 1 makes the exponent vanish (exact near-duplicate search is easy);
	// s → 0 makes it approach 1 (no better than linear scan).
	if got := RhoDataDep(0.5, 0.999); got > 0.01 {
		t.Fatalf("rho near s=1 should vanish, got %v", got)
	}
	if got := RhoDataDep(0.5, 0.001); got < 0.99 {
		t.Fatalf("rho near s=0 should approach 1, got %v", got)
	}
}

func TestRhoDataDepU(t *testing.T) {
	if got, want := RhoDataDepU(0.5, 1.0, 2.0), RhoDataDep(0.5, 0.5); got != want {
		t.Fatalf("RhoDataDepU = %v, want %v", got, want)
	}
}

func TestDataDepDominatesSimple(t *testing.T) {
	// The paper: "our bound is always stronger than the one from [39]".
	for c := 0.05; c < 1; c += 0.05 {
		for s := 0.05; s < 1; s += 0.05 {
			dd, simp := RhoDataDep(c, s), RhoSimple(c, s)
			if dd > simp+1e-9 {
				t.Fatalf("c=%v s=%v: DATA-DEP %v worse than SIMP %v", c, s, dd, simp)
			}
		}
	}
}

func TestDataDepVsMHALSHCrossover(t *testing.T) {
	// The paper: the §4.1 LSH beats MH-ALSH for large s and c (e.g.
	// s ≥ 1/3 normalized, c ≥ 0.83) but can lose for small s.
	if dd, mh := RhoDataDep(0.9, 0.5), RhoMH(0.9, 0.5); dd >= mh {
		t.Fatalf("expected DATA-DEP %v < MH-ALSH %v at c=0.9 s=0.5", dd, mh)
	}
	if dd, mh := RhoDataDep(0.9, 0.2), RhoMH(0.9, 0.2); dd <= mh {
		t.Fatalf("expected DATA-DEP %v > MH-ALSH %v at c=0.9 s=0.2", dd, mh)
	}
}

func TestRhoRanges(t *testing.T) {
	for c := 0.1; c < 1; c += 0.2 {
		for s := 0.1; s < 1; s += 0.2 {
			for name, rho := range map[string]float64{
				"datadep": RhoDataDep(c, s),
				"simp":    RhoSimple(c, s),
				"mh":      RhoMH(c, s),
			} {
				if rho <= 0 || rho >= 1+1e-9 {
					t.Fatalf("%s rho(c=%v,s=%v) = %v out of (0,1]", name, c, s, rho)
				}
			}
		}
	}
}

func TestHyperplaneCollisionEndpoints(t *testing.T) {
	if got := HyperplaneCollision(1); got != 1 {
		t.Fatalf("P(1) = %v", got)
	}
	if got := HyperplaneCollision(-1); got != 0 {
		t.Fatalf("P(-1) = %v", got)
	}
	if got := HyperplaneCollision(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("P(0) = %v", got)
	}
	// Clamping outside [−1, 1].
	if HyperplaneCollision(1.5) != 1 || HyperplaneCollision(-2) != 0 {
		t.Fatal("clamping failed")
	}
}

func TestMHCollision(t *testing.T) {
	if got := MHCollision(1); got != 1 {
		t.Fatalf("MH(1) = %v", got)
	}
	if got := MHCollision(0); got != 0 {
		t.Fatalf("MH(0) = %v", got)
	}
	if got := MHCollision(0.5); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("MH(0.5) = %v", got)
	}
}

func TestRhoSpherical(t *testing.T) {
	// Equation (3) must agree with 1/(2c'²−1) under the SIMPLE reduction:
	// r² = 2(1−s), (c'r)² = 2(1−cs).
	c, s := 0.7, 0.4
	cPrime := math.Sqrt((1 - c*s) / (1 - s))
	if got, want := RhoSpherical(cPrime), RhoDataDep(c, s); math.Abs(got-want) > 1e-12 {
		t.Fatalf("spherical %v != datadep %v", got, want)
	}
}

func TestRhoSphericalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for c' <= 1")
		}
	}()
	RhoSpherical(1.0)
}

func TestFigure2Series(t *testing.T) {
	pts := Figure2Series(0.7, 50)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	for i, p := range pts {
		if p.S <= 0 || p.S >= 1 {
			t.Fatalf("point %d: s=%v", i, p.S)
		}
		if p.DataDep > p.Simp+1e-9 {
			t.Fatalf("point %d: DATA-DEP above SIMP", i)
		}
	}
	// All three curves must be decreasing in s.
	for i := 1; i < len(pts); i++ {
		if pts[i].DataDep > pts[i-1].DataDep+1e-9 ||
			pts[i].Simp > pts[i-1].Simp+1e-9 ||
			pts[i].MHALSH > pts[i-1].MHALSH+1e-9 {
			t.Fatalf("curve not decreasing at s=%v", pts[i].S)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	for i, f := range []func(){
		func() { RhoDataDep(0, 0.5) },
		func() { RhoDataDep(0.5, 0) },
		func() { RhoDataDep(1.2, 0.5) },
		func() { RhoDataDepU(0.5, 0.5, 0) },
		func() { Figure2Series(0.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
