// Package lsh provides the locality-sensitive hashing machinery of the
// IPS-join reproduction: symmetric and asymmetric hash families
// (Definition 2 of Ahle et al.), a banding index for sub-quadratic
// joins, analytic ρ curves for the three schemes compared in the
// paper's Figure 2, and Monte-Carlo collision-probability estimation.
package lsh

import (
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Hasher is a single sampled (possibly asymmetric) hash function pair
// (h_p, h_q) in the sense of Definition 2: data vectors are hashed with
// HashData, query vectors with HashQuery, and a "collision" means the
// two values are equal.
type Hasher interface {
	HashData(p vec.Vector) uint64
	HashQuery(q vec.Vector) uint64
}

// Family samples hashers. Implementations must be deterministic given
// the RNG stream.
type Family interface {
	Sample(rng *xrand.RNG) Hasher
	// Name identifies the family in reports.
	Name() string
}

// symmetricHasher adapts a single-function hash to the Hasher interface.
type symmetricHasher struct {
	f func(vec.Vector) uint64
}

func (s symmetricHasher) HashData(p vec.Vector) uint64  { return s.f(p) }
func (s symmetricHasher) HashQuery(q vec.Vector) uint64 { return s.f(q) }

// Hyperplane is Charikar's sign-random-projection family on R^d:
// h(x) = [aᵀx ≥ 0] with Gaussian a. For unit vectors with angle θ the
// collision probability is exactly 1 − θ/π.
type Hyperplane struct{ D int }

// NewHyperplane returns the family for dimension d.
func NewHyperplane(d int) (*Hyperplane, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	return &Hyperplane{D: d}, nil
}

// Name implements Family.
func (h *Hyperplane) Name() string { return "hyperplane" }

// Sample implements Family.
func (h *Hyperplane) Sample(rng *xrand.RNG) Hasher {
	a := vec.Vector(rng.NormalVec(h.D))
	return symmetricHasher{f: func(x vec.Vector) uint64 {
		if vec.Dot(a, x) >= 0 {
			return 1
		}
		return 0
	}}
}

// CrossPolytope is the cross-polytope family: apply a random Gaussian
// rotation and hash to the index (and sign) of the largest-magnitude
// coordinate, giving 2d buckets. It is the practical stand-in for the
// optimal spherical LSH of Andoni–Razenshteyn used analytically in §4.1.
type CrossPolytope struct{ D int }

// NewCrossPolytope returns the family for dimension d.
func NewCrossPolytope(d int) (*CrossPolytope, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	return &CrossPolytope{D: d}, nil
}

// Name implements Family.
func (c *CrossPolytope) Name() string { return "cross-polytope" }

// Sample implements Family.
func (c *CrossPolytope) Sample(rng *xrand.RNG) Hasher {
	// A d×d iid Gaussian matrix is a rotation up to scaling, which argmax
	// hashing is invariant to.
	g := vec.NewMatrix(c.D, c.D)
	for i := range g.Data {
		g.Data[i] = rng.Normal()
	}
	return symmetricHasher{f: func(x vec.Vector) uint64 {
		y := g.MulVec(x)
		idx, _ := vec.ArgMaxAbs(y)
		if idx < 0 {
			return 0
		}
		h := uint64(2 * idx)
		if y[idx] < 0 {
			h++
		}
		return h
	}}
}

// E2LSH is the p-stable Euclidean family of Datar et al.:
// h(x) = ⌊(aᵀx + b)/w⌋ with Gaussian a and uniform b ∈ [0, w).
type E2LSH struct {
	D int
	W float64
}

// NewE2LSH returns the family with bucket width w.
func NewE2LSH(d int, w float64) (*E2LSH, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	if w <= 0 {
		return nil, fmt.Errorf("lsh: bucket width %v must be positive", w)
	}
	return &E2LSH{D: d, W: w}, nil
}

// Name implements Family.
func (e *E2LSH) Name() string { return "e2lsh" }

// Sample implements Family.
func (e *E2LSH) Sample(rng *xrand.RNG) Hasher {
	a := vec.Vector(rng.NormalVec(e.D))
	b := rng.Float64() * e.W
	return symmetricHasher{f: func(x vec.Vector) uint64 {
		return uint64(int64(math.Floor((vec.Dot(a, x) + b) / e.W)))
	}}
}

// MinHash is the minwise family over binary vectors (interpreted as
// sets: coordinate i belongs to the set when x[i] > 0.5). Collision
// probability equals the Jaccard similarity |x∩y|/|x∪y|.
type MinHash struct{ D int }

// NewMinHash returns the family for universe size d.
func NewMinHash(d int) (*MinHash, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	return &MinHash{D: d}, nil
}

// Name implements Family.
func (m *MinHash) Name() string { return "minhash" }

// permHash returns a pseudo-random priority for element i under the
// sampled permutation seed.
func permHash(seed uint64, i int) uint64 {
	x := seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Sample implements Family.
func (m *MinHash) Sample(rng *xrand.RNG) Hasher {
	seed := rng.Uint64()
	return symmetricHasher{f: func(x vec.Vector) uint64 {
		best := ^uint64(0)
		empty := true
		for i, v := range x {
			if v > 0.5 {
				empty = false
				if h := permHash(seed, i); h < best {
					best = h
				}
			}
		}
		if empty {
			return ^uint64(0) // empty sets collide only with empty sets
		}
		return best
	}}
}

// AsymMinHash is the MH-ALSH family of Shrivastava–Li [46]: data sets
// are padded with fresh dummy elements up to size M before minwise
// hashing, queries are hashed unpadded. For |p∩q| = a it gives collision
// probability a/(M + |q| − a).
type AsymMinHash struct {
	D int
	// M is the padding target (must be ≥ every data-set size).
	M int
}

// NewAsymMinHash returns the family with padding target m.
func NewAsymMinHash(d, m int) (*AsymMinHash, error) {
	if d <= 0 {
		return nil, fmt.Errorf("lsh: dimension %d must be positive", d)
	}
	if m <= 0 {
		return nil, fmt.Errorf("lsh: padding target %d must be positive", m)
	}
	return &AsymMinHash{D: d, M: m}, nil
}

// Name implements Family.
func (a *AsymMinHash) Name() string { return "mh-alsh" }

type asymMinHasher struct {
	seed uint64
	d, m int
}

func (h asymMinHasher) support(x vec.Vector) (best uint64, size int) {
	best = ^uint64(0)
	for i, v := range x {
		if v > 0.5 {
			size++
			if ph := permHash(h.seed, i); ph < best {
				best = ph
			}
		}
	}
	return best, size
}

// HashData pads the set with (m − |x|) dummy elements drawn from a
// disjoint universe before taking the min.
func (h asymMinHasher) HashData(p vec.Vector) uint64 {
	best, size := h.support(p)
	if size > h.m {
		panic(fmt.Sprintf("lsh: data set size %d exceeds padding target %d", size, h.m))
	}
	for j := 0; j < h.m-size; j++ {
		// Dummy universe starts at d and is unique per data vector slot j;
		// the paper pads with *new* elements, so dummies never collide with
		// query elements. Using index d+j is enough because queries are
		// never padded.
		if ph := permHash(h.seed, h.d+1+j); ph < best {
			best = ph
		}
	}
	return best
}

// HashQuery hashes the unpadded query set.
func (h asymMinHasher) HashQuery(q vec.Vector) uint64 {
	best, size := h.support(q)
	if size == 0 {
		return ^uint64(0) - 1 // never collides with data minima
	}
	return best
}

// Sample implements Family.
func (a *AsymMinHash) Sample(rng *xrand.RNG) Hasher {
	return asymMinHasher{seed: rng.Uint64(), d: a.D, m: a.M}
}

// MapPair holds the two sides of an asymmetric pre-transform.
type MapPair struct {
	Data  func(vec.Vector) vec.Vector
	Query func(vec.Vector) vec.Vector
}

// Asymmetric composes a (data, query) pre-transform with an inner
// (usually symmetric) family on the transformed space. This is how the
// paper's §4.1 ALSH is assembled: SIMPLE map + spherical LSH.
type Asymmetric struct {
	Maps  MapPair
	Inner Family
	Label string
}

// NewAsymmetric wires a transform pair in front of an inner family.
func NewAsymmetric(label string, maps MapPair, inner Family) (*Asymmetric, error) {
	if maps.Data == nil || maps.Query == nil {
		return nil, fmt.Errorf("lsh: asymmetric family needs both maps")
	}
	if inner == nil {
		return nil, fmt.Errorf("lsh: asymmetric family needs an inner family")
	}
	return &Asymmetric{Maps: maps, Inner: inner, Label: label}, nil
}

// Name implements Family.
func (a *Asymmetric) Name() string { return a.Label }

type asymHasher struct {
	inner Hasher
	maps  MapPair
}

func (h asymHasher) HashData(p vec.Vector) uint64  { return h.inner.HashData(h.maps.Data(p)) }
func (h asymHasher) HashQuery(q vec.Vector) uint64 { return h.inner.HashQuery(h.maps.Query(q)) }

// Sample implements Family.
func (a *Asymmetric) Sample(rng *xrand.RNG) Hasher {
	return asymHasher{inner: a.Inner.Sample(rng), maps: a.Maps}
}

// EstimateCollision estimates Pr[h_p(p) = h_q(q)] over `trials`
// independently sampled hashers. Deterministic given the seed.
func EstimateCollision(f Family, p, q vec.Vector, trials int, seed uint64) float64 {
	if trials <= 0 {
		panic(fmt.Sprintf("lsh: trials %d must be positive", trials))
	}
	rng := xrand.New(seed)
	hits := 0
	for i := 0; i < trials; i++ {
		h := f.Sample(rng)
		if h.HashData(p) == h.HashQuery(q) {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
