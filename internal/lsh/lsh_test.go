package lsh

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// unitPairWithIP returns two unit vectors with inner product exactly t.
func unitPairWithIP(d int, t float64) (vec.Vector, vec.Vector) {
	p := vec.New(d)
	p[0] = 1
	q := vec.New(d)
	q[0] = t
	q[1] = math.Sqrt(1 - t*t)
	return p, q
}

func TestHyperplaneCollisionMatchesAnalytic(t *testing.T) {
	f, err := NewHyperplane(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, ip := range []float64{-0.5, 0, 0.3, 0.8, 0.95} {
		p, q := unitPairWithIP(8, ip)
		got := EstimateCollision(f, p, q, 20000, 1)
		want := HyperplaneCollision(ip)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("ip=%v: MC collision %v vs analytic %v", ip, got, want)
		}
	}
}

func TestHyperplaneSymmetric(t *testing.T) {
	f, _ := NewHyperplane(4)
	h := f.Sample(xrand.New(2))
	x := vec.Vector{0.3, -0.2, 0.5, 0.1}
	if h.HashData(x) != h.HashQuery(x) {
		t.Fatal("hyperplane must be symmetric")
	}
}

func TestCrossPolytopeMonotone(t *testing.T) {
	// Collision probability must increase with inner product.
	f, err := NewCrossPolytope(8)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	for _, ip := range []float64{0.0, 0.5, 0.9, 0.99} {
		p, q := unitPairWithIP(8, ip)
		c := EstimateCollision(f, p, q, 4000, 3)
		if c < prev-0.03 {
			t.Fatalf("cross-polytope collision not monotone: %v after %v (ip=%v)", c, prev, ip)
		}
		prev = c
	}
	// Identical vectors always collide.
	p, _ := unitPairWithIP(8, 0.5)
	if got := EstimateCollision(f, p, p, 200, 4); got != 1 {
		t.Fatalf("self collision = %v", got)
	}
}

func TestCrossPolytopeBucketRange(t *testing.T) {
	f, _ := NewCrossPolytope(5)
	h := f.Sample(xrand.New(5))
	rng := xrand.New(6)
	for i := 0; i < 100; i++ {
		x := vec.Vector(rng.UnitVec(5))
		b := h.HashData(x)
		if b >= 10 {
			t.Fatalf("bucket %d out of range [0,10)", b)
		}
	}
}

func TestE2LSHCloserCollidesMore(t *testing.T) {
	f, err := NewE2LSH(6, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	base := vec.Vector{1, 0, 0, 0, 0, 0}
	near := vec.Vector{1.1, 0, 0, 0, 0, 0}
	far := vec.Vector{4, 0, 0, 0, 0, 0}
	cNear := EstimateCollision(f, base, near, 8000, 7)
	cFar := EstimateCollision(f, base, far, 8000, 7)
	if cNear <= cFar {
		t.Fatalf("near %v should collide more than far %v", cNear, cFar)
	}
}

func setVec(d int, elems ...int) vec.Vector {
	x := vec.New(d)
	for _, e := range elems {
		x[e] = 1
	}
	return x
}

func TestMinHashJaccard(t *testing.T) {
	f, err := NewMinHash(10)
	if err != nil {
		t.Fatal(err)
	}
	// |∩| = 2, |∪| = 4 → J = 0.5
	x := setVec(10, 0, 1, 2)
	y := setVec(10, 1, 2, 3)
	got := EstimateCollision(f, x, y, 20000, 8)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("minhash collision %v, want 0.5", got)
	}
	// Disjoint sets never collide.
	z := setVec(10, 7, 8)
	if got := EstimateCollision(f, x, z, 5000, 9); got != 0 {
		t.Fatalf("disjoint collision = %v", got)
	}
}

func TestAsymMinHashCollision(t *testing.T) {
	// Collision probability = a/(M + |q| − a) with padding target M.
	const d, M = 20, 5
	f, err := NewAsymMinHash(d, M)
	if err != nil {
		t.Fatal(err)
	}
	p := setVec(d, 0, 1, 2)    // |p| = 3 (padded to 5)
	q := setVec(d, 1, 2, 3, 4) // |q| = 4, a = 2
	want := 2.0 / float64(M+4-2)
	got := EstimateCollision(f, p, q, 30000, 10)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("MH-ALSH collision %v, want %v", got, want)
	}
}

func TestAsymMinHashPaddingAsymmetry(t *testing.T) {
	// The same set hashed as data vs query must differ when padded:
	// self-collision probability drops to |p|/M.
	const d, M = 15, 6
	f, _ := NewAsymMinHash(d, M)
	p := setVec(d, 0, 1, 2) // |p| = 3
	got := EstimateCollision(f, p, p, 30000, 11)
	want := 3.0 / float64(M) // a=3, M+|q|−a = 6+3−3 = 6
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("padded self collision %v, want %v", got, want)
	}
}

func TestAsymMinHashOversizePanics(t *testing.T) {
	f, _ := NewAsymMinHash(10, 2)
	h := f.Sample(xrand.New(12))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for data set larger than M")
		}
	}()
	h.HashData(setVec(10, 0, 1, 2))
}

func TestAsymmetricComposition(t *testing.T) {
	// SIMPLE map + hyperplane: collision for (p, q) must match the
	// analytic 1 − acos(pᵀq/U)/π.
	const d, U = 5, 2.0
	inner, _ := NewHyperplane(d + 2)
	dataMap := func(p vec.Vector) vec.Vector {
		out := make(vec.Vector, d+2)
		copy(out, p)
		out[d] = math.Sqrt(1 - vec.Norm2(p))
		return out
	}
	queryMap := func(q vec.Vector) vec.Vector {
		out := make(vec.Vector, d+2)
		for i, v := range q {
			out[i] = v / U
		}
		out[d+1] = math.Sqrt(1 - vec.Norm2(q)/(U*U))
		return out
	}
	f, err := NewAsymmetric("simple-alsh", MapPair{Data: dataMap, Query: queryMap}, inner)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "simple-alsh" {
		t.Fatal("name")
	}
	p := vec.Vector{0.6, 0, 0, 0, 0}
	q := vec.Vector{1.0, 0.5, 0, 0, 0}
	want := HyperplaneCollision(vec.Dot(p, q) / U)
	got := EstimateCollision(f, p, q, 20000, 13)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("asymmetric collision %v, want %v", got, want)
	}
}

func TestNewAsymmetricValidation(t *testing.T) {
	inner, _ := NewHyperplane(3)
	if _, err := NewAsymmetric("x", MapPair{}, inner); err == nil {
		t.Fatal("missing maps must fail")
	}
	id := func(v vec.Vector) vec.Vector { return v }
	if _, err := NewAsymmetric("x", MapPair{Data: id, Query: id}, nil); err == nil {
		t.Fatal("nil inner must fail")
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewHyperplane(0); err == nil {
		t.Fatal("hyperplane d=0")
	}
	if _, err := NewCrossPolytope(-1); err == nil {
		t.Fatal("cross-polytope d=-1")
	}
	if _, err := NewE2LSH(3, 0); err == nil {
		t.Fatal("e2lsh w=0")
	}
	if _, err := NewMinHash(0); err == nil {
		t.Fatal("minhash d=0")
	}
	if _, err := NewAsymMinHash(3, 0); err == nil {
		t.Fatal("asym minhash M=0")
	}
}

func TestEstimateCollisionDeterministic(t *testing.T) {
	f, _ := NewHyperplane(4)
	p, q := unitPairWithIP(4, 0.5)
	a := EstimateCollision(f, p, q, 500, 42)
	b := EstimateCollision(f, p, q, 500, 42)
	if a != b {
		t.Fatal("same seed must give same estimate")
	}
}
