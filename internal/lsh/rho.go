package lsh

import (
	"fmt"
	"math"
)

// This file implements the analytic ρ curves compared in Figure 2 of
// the paper: DATA-DEP (the paper's §4.1 construction, equation 3), SIMP
// (Neyshabur–Srebro SIMPLE-ALSH with hyperplane hashing) and MH-ALSH
// (Shrivastava–Li asymmetric minwise hashing for binary data). All
// curves are parameterised by the normalized threshold s ∈ (0, 1)
// (inner product divided by U) and approximation factor c ∈ (0, 1).

// validateCS panics on parameters outside the meaningful range.
func validateCS(c, s float64) {
	if !(c > 0 && c < 1) {
		panic(fmt.Sprintf("lsh: approximation factor c=%v out of (0,1)", c))
	}
	if !(s > 0 && s <= 1) {
		panic(fmt.Sprintf("lsh: normalized threshold s=%v out of (0,1]", s))
	}
}

// RhoDataDep is equation (3) of the paper: the exponent obtained by
// plugging the optimal data-dependent spherical LSH of
// Andoni–Razenshteyn into the SIMPLE reduction with query radius U = 1:
//
//	ρ = (1 − s) / (1 + (1 − 2c)·s).
func RhoDataDep(c, s float64) float64 {
	validateCS(c, s)
	return (1 - s) / (1 + (1-2*c)*s)
}

// RhoDataDepU generalises equation (3) to query radius U:
// ρ = (1 − s/U)/(1 + (1−2c)·s/U) with s the unnormalized threshold.
func RhoDataDepU(c, s, u float64) float64 {
	if u <= 0 {
		panic(fmt.Sprintf("lsh: query radius U=%v must be positive", u))
	}
	return RhoDataDep(c, s/u)
}

// HyperplaneCollision returns the exact collision probability
// 1 − acos(t)/π of sign-random-projection hashing for unit vectors with
// inner product t ∈ [−1, 1].
func HyperplaneCollision(t float64) float64 {
	if t > 1 {
		t = 1
	}
	if t < -1 {
		t = -1
	}
	return 1 - math.Acos(t)/math.Pi
}

// RhoSimple is the exponent of SIMPLE-ALSH [39]: SIMPLE map onto the
// unit sphere followed by hyperplane hashing, so
// ρ = log P(s) / log P(cs) with P(t) = 1 − acos(t)/π.
func RhoSimple(c, s float64) float64 {
	validateCS(c, s)
	p1 := HyperplaneCollision(s)
	p2 := HyperplaneCollision(c * s)
	return math.Log(p1) / math.Log(p2)
}

// MHCollision returns the collision probability of asymmetric minwise
// hashing for binary vectors normalized so the padding target is 1:
// for (normalized) inner product t and worst-case query size 1 it is
// t/(2 − t), per Shrivastava–Li [46].
func MHCollision(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t > 1 {
		t = 1
	}
	return t / (2 - t)
}

// RhoMH is the exponent of MH-ALSH [46] for binary data under the
// normalization above: ρ = log MHCollision(s) / log MHCollision(cs).
func RhoMH(c, s float64) float64 {
	validateCS(c, s)
	return math.Log(MHCollision(s)) / math.Log(MHCollision(c*s))
}

// RhoSpherical is the generic spherical-LSH exponent 1/(2c'²−1) of
// Andoni–Razenshteyn for Euclidean approximation factor c' > 1 on the
// sphere. Equation (3) is exactly this value after the SIMPLE map, with
// r² = 2(1−s) and (c'r)² = 2(1−cs).
func RhoSpherical(cPrime float64) float64 {
	if cPrime <= 1 {
		panic(fmt.Sprintf("lsh: spherical approximation c'=%v must exceed 1", cPrime))
	}
	return 1 / (2*cPrime*cPrime - 1)
}

// Figure2Point is one sample of the Figure 2 comparison.
type Figure2Point struct {
	S                     float64
	DataDep, Simp, MHALSH float64
}

// Figure2Series computes the three ρ curves on a uniform s grid, the
// exact content of the paper's Figure 2 for a fixed approximation c.
func Figure2Series(c float64, points int) []Figure2Point {
	if points < 2 {
		panic(fmt.Sprintf("lsh: need at least 2 points, got %d", points))
	}
	out := make([]Figure2Point, 0, points)
	for i := 1; i <= points; i++ {
		s := float64(i) / float64(points+1)
		out = append(out, Figure2Point{
			S:       s,
			DataDep: RhoDataDep(c, s),
			Simp:    RhoSimple(c, s),
			MHALSH:  RhoMH(c, s),
		})
	}
	return out
}
