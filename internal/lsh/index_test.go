package lsh

import (
	"math"
	"sort"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestIndexFindsPlantedNeighbor(t *testing.T) {
	// Plant a vector very close to the query among random noise; a
	// hyperplane index with reasonable (K, L) must surface it.
	const d, n = 16, 400
	rng := xrand.New(20)
	f, _ := NewHyperplane(d)
	ix, err := NewIndex(f, 8, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.Vector(rng.UnitVec(d))
	planted := q.Clone()
	planted[0] += 0.05
	vec.Normalize(planted)
	plantedID := ix.Insert(planted)
	for i := 1; i < n; i++ {
		ix.Insert(vec.Vector(rng.UnitVec(d)))
	}
	if ix.Len() != n {
		t.Fatalf("Len = %d", ix.Len())
	}
	best, score := ix.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
	if best != plantedID {
		t.Fatalf("Query returned %d (score %v), want planted %d", best, score, plantedID)
	}
	if math.Abs(score-vec.Dot(planted, q)) > 1e-12 {
		t.Fatalf("score %v mismatch", score)
	}
}

func TestIndexSubquadraticCandidates(t *testing.T) {
	// With random data the candidate set should be far below n.
	const d, n = 16, 1000
	rng := xrand.New(22)
	f, _ := NewHyperplane(d)
	ix, _ := NewIndex(f, 12, 4, 23)
	for i := 0; i < n; i++ {
		ix.Insert(vec.Vector(rng.UnitVec(d)))
	}
	total := 0
	const queries = 20
	for i := 0; i < queries; i++ {
		total += len(ix.Candidates(vec.Vector(rng.UnitVec(d))))
	}
	if avg := float64(total) / queries; avg > n/4 {
		t.Fatalf("average candidates %v too close to linear scan", avg)
	}
}

func TestIndexCandidatesDeduplicated(t *testing.T) {
	const d = 8
	f, _ := NewHyperplane(d)
	ix, _ := NewIndex(f, 2, 8, 24)
	p := vec.Vector{1, 0, 0, 0, 0, 0, 0, 0}
	ix.Insert(p)
	cands := ix.Candidates(p) // identical vector collides in every table
	if len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("candidates = %v, want [0]", cands)
	}
}

func TestIndexEmptyQuery(t *testing.T) {
	f, _ := NewHyperplane(4)
	ix, _ := NewIndex(f, 2, 2, 25)
	id, score := ix.Query(vec.Vector{1, 0, 0, 0}, func(p vec.Vector) float64 { return 0 })
	if id != -1 || score != 0 {
		t.Fatalf("empty index Query = (%d, %v)", id, score)
	}
}

func TestIndexDeterministicAcrossBuilds(t *testing.T) {
	const d = 8
	rng := xrand.New(26)
	data := make([]vec.Vector, 50)
	for i := range data {
		data[i] = vec.Vector(rng.UnitVec(d))
	}
	q := vec.Vector(rng.UnitVec(d))
	f, _ := NewHyperplane(d)
	build := func() []int {
		ix, _ := NewIndex(f, 4, 6, 27)
		ix.InsertAll(data)
		c := ix.Candidates(q)
		sort.Ints(c)
		return c
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("candidate sets differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("candidate sets differ at %d: %v vs %v", i, a, b)
		}
	}
}

func TestIndexValidation(t *testing.T) {
	f, _ := NewHyperplane(4)
	if _, err := NewIndex(nil, 1, 1, 0); err == nil {
		t.Fatal("nil family must fail")
	}
	if _, err := NewIndex(f, 0, 1, 0); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := NewIndex(f, 1, 0, 0); err == nil {
		t.Fatal("L=0 must fail")
	}
}

func TestIndexWithAsymmetricFamily(t *testing.T) {
	// MH-ALSH index over binary sets: querying with a set should surface
	// the data set with largest intersection.
	const d, m = 30, 6
	f, _ := NewAsymMinHash(d, m)
	ix, _ := NewIndex(f, 1, 24, 28)
	a := setVec(d, 0, 1, 2, 3, 4, 5) // overlap 4 with query
	b := setVec(d, 0, 1, 10, 11)     // overlap 2
	c := setVec(d, 20, 21, 22)       // overlap 0
	ix.InsertAll([]vec.Vector{a, b, c})
	q := setVec(d, 0, 1, 2, 3, 7)
	id, _ := ix.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
	if id != 0 {
		t.Fatalf("Query = %d, want 0", id)
	}
}

func BenchmarkIndexInsert(b *testing.B) {
	const d = 32
	rng := xrand.New(29)
	f, _ := NewHyperplane(d)
	ix, _ := NewIndex(f, 8, 8, 30)
	v := vec.Vector(rng.UnitVec(d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Insert(v)
	}
}

func BenchmarkIndexQuery1k(b *testing.B) {
	const d, n = 32, 1000
	rng := xrand.New(31)
	f, _ := NewHyperplane(d)
	ix, _ := NewIndex(f, 8, 8, 32)
	for i := 0; i < n; i++ {
		ix.Insert(vec.Vector(rng.UnitVec(d)))
	}
	q := vec.Vector(rng.UnitVec(d))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Query(q, func(p vec.Vector) float64 { return vec.Dot(p, q) })
	}
}
