package lsh

import (
	"repro/internal/transform"
	"repro/internal/vec"
)

// NewSymmetricIPS builds the paper's §4.2 construction: a *symmetric*
// LSH for signed inner product search on coinciding data/query domains
// (the unit ball), circumventing the Neyshabur–Srebro impossibility by
// relaxing the collision guarantee for identical vectors.
//
// Every vector — data or query alike — is mapped by
// f(p) = (p, √(1−‖p‖²)·v_p) onto the unit sphere, where {v_u} is the
// deterministic Reed–Solomon ε-incoherent family of [38] indexed by the
// k-bit fixed-point representation of p, and the sphere is hashed with
// hyperplane LSH. For distinct vectors the embedded inner product is
// pᵀq ± ε, so the family behaves like an (s+ε, cs−ε) sphere LSH; for
// identical vectors the collision probability is the trivial 1, which
// is exactly the case the relaxed definition disregards.
func NewSymmetricIPS(d, bits int, eps float64) (Family, error) {
	tr, err := transform.NewSymmetric(d, bits, eps)
	if err != nil {
		return nil, err
	}
	inner, err := NewHyperplane(tr.OutputDim())
	if err != nil {
		return nil, err
	}
	m := func(x vec.Vector) vec.Vector { return tr.Map(x) }
	return NewAsymmetric("symmetric-ips", MapPair{Data: m, Query: m}, inner)
}
