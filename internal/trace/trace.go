// Package trace is the dependency-free per-request tracing spine of
// ipsd. A Trace is one request's execution record: a W3C trace id, the
// wall-clock start, and a flat timeline of named spans with monotonic
// offsets and durations plus integer attributes (rows scanned, blocks
// pruned, rerank candidates, ...). Traces live in a Registry — an
// active set plus a small per-route ring of recently finished requests
// — backing the /debug/requests and /debug/trace/{id} endpoints, the
// slow-query log, and the per-stage latency histograms.
//
// The nil *Trace is a valid, inert handle: every method no-ops on a
// nil receiver without allocating, so call sites on the hot path thread
// the handle unconditionally and the tracing-off build of a request is
// byte-identical in behavior and zero-allocation (pinned by
// TestDisabledTraceZeroAlloc).
package trace

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// Trace is one request's execution record. Create with New; a nil
// *Trace is inert.
type Trace struct {
	traceID string // 32 lowercase hex chars
	spanID  string // 16 lowercase hex chars, this process's root span
	parent  string // parent span id from an incoming traceparent, "" if none
	route   string
	start   time.Time

	mu         sync.Mutex
	collection string
	spans      []*Span
	status     int
	dur        time.Duration
	done       bool
}

// Span is one named stage of a trace. A nil *Span is inert, so spans
// started on a nil trace cost nothing to finish.
type Span struct {
	tr    *Trace
	name  string
	start time.Duration // offset from the trace start
	dur   time.Duration
	attrs []Attr
	done  bool
}

// Attr is one integer annotation on a span.
type Attr struct {
	Key string
	Val int64
}

// New starts a trace for route. traceparent, when it is a valid W3C
// header, donates the trace id (and records the caller's span id as
// the parent); otherwise fresh random ids are generated.
func New(route, traceparent string) *Trace {
	tid, parent, ok := Parse(traceparent)
	if !ok {
		tid = randHex(16)
		parent = ""
	}
	return &Trace{
		traceID: tid,
		spanID:  randHex(8),
		parent:  parent,
		route:   route,
		start:   time.Now(),
	}
}

// ID returns the 32-hex-char trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Route returns the route label the trace was started under.
func (t *Trace) Route() string {
	if t == nil {
		return ""
	}
	return t.route
}

// Traceparent renders the outgoing W3C header value for this trace
// ("" on nil).
func (t *Trace) Traceparent() string {
	if t == nil {
		return ""
	}
	return Format(t.traceID, t.spanID)
}

// SetCollection tags the trace with the collection it ended up
// touching; the per-stage histograms are keyed by it.
func (t *Trace) SetCollection(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.collection = name
	t.mu.Unlock()
}

// Collection returns the collection tag ("" on nil or untagged).
func (t *Trace) Collection() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.collection
}

// StartSpan opens a named span at the current monotonic offset. Spans
// may be opened from concurrent goroutines (per-shard scans); the
// timeline stays consistent because offsets come from the trace's own
// start. Returns nil — for free — on a nil trace.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tr: t, name: name, start: time.Since(t.start)}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, fixing its duration.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	d := time.Since(sp.tr.start) - sp.start
	sp.tr.mu.Lock()
	if !sp.done {
		sp.done = true
		sp.dur = d
	}
	sp.tr.mu.Unlock()
}

// SetInt attaches an integer attribute to the span.
func (sp *Span) SetInt(key string, val int64) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Val: val})
	sp.tr.mu.Unlock()
}

// Finish seals the trace with its response status and total duration.
// Idempotent; the first call wins.
func (t *Trace) Finish(status int, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.status = status
		t.dur = dur
	}
	t.mu.Unlock()
}

// Duration returns the sealed duration, or the live age of an
// unfinished trace.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.dur
	}
	return time.Since(t.start)
}

// Exported is the JSON shape of a trace for /debug/trace/{id} and the
// slow-query log.
type Exported struct {
	TraceID      string         `json:"trace_id"`
	ParentSpanID string         `json:"parent_span_id,omitempty"`
	Route        string         `json:"route"`
	Collection   string         `json:"collection,omitempty"`
	Start        time.Time      `json:"start"`
	DurationUS   int64          `json:"duration_micros"`
	Status       int            `json:"status,omitempty"`
	Active       bool           `json:"active"`
	Spans        []ExportedSpan `json:"spans"`
}

// ExportedSpan is one span in the exported timeline.
type ExportedSpan struct {
	Name    string           `json:"name"`
	StartUS int64            `json:"start_micros"`
	DurUS   int64            `json:"duration_micros"`
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// Export snapshots the trace (safe concurrently with span recording on
// an active trace). Returns the zero value on nil.
func (t *Trace) Export() Exported {
	if t == nil {
		return Exported{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := Exported{
		TraceID:      t.traceID,
		ParentSpanID: t.parent,
		Route:        t.route,
		Collection:   t.collection,
		Start:        t.start,
		Status:       t.status,
		Active:       !t.done,
	}
	if t.done {
		e.DurationUS = t.dur.Microseconds()
	} else {
		e.DurationUS = time.Since(t.start).Microseconds()
	}
	e.Spans = make([]ExportedSpan, len(t.spans))
	for i, sp := range t.spans {
		es := ExportedSpan{
			Name:    sp.name,
			StartUS: sp.start.Microseconds(),
			DurUS:   sp.dur.Microseconds(),
		}
		if len(sp.attrs) > 0 {
			es.Attrs = make(map[string]int64, len(sp.attrs))
			for _, a := range sp.attrs {
				es.Attrs[a.Key] += a.Val
			}
		}
		e.Spans[i] = es
	}
	return e
}

// SpanDurations invokes fn for every closed span with its name and
// duration; the stage-histogram feeder uses it at finish time without
// paying for a full export.
func (t *Trace) SpanDurations(fn func(name string, d time.Duration)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.done {
			fn(sp.name, sp.dur)
		}
	}
}

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The miss path
// is a plain context-chain walk: no allocation, so hot paths call it
// unconditionally.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

const hexDigits = "0123456789abcdef"

// randHex returns 2n lowercase hex chars of randomness, never all
// zeros (the W3C spec reserves the all-zero id as invalid).
func randHex(n int) string {
	b := make([]byte, 2*n)
	for {
		zero := true
		for i := 0; i < 2*n; i += 16 {
			v := rand.Uint64()
			if v != 0 {
				zero = false
			}
			for j := i; j < i+16 && j < 2*n; j++ {
				b[j] = hexDigits[v&0xf]
				v >>= 4
			}
		}
		if !zero {
			return string(b)
		}
	}
}
