package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	sid := "00f067aa0ba902b7"
	good := "00-" + tid + "-" + sid + "-01"
	gotTID, gotSID, ok := Parse(good)
	if !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("Parse(%q) = %q, %q, %v", good, gotTID, gotSID, ok)
	}
	bad := []string{
		"",
		"00-" + tid + "-" + sid,            // truncated
		"00-" + tid + "-" + sid + "-01-02", // extra field
		"ff-" + tid + "-" + sid + "-01",    // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // zero span id
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00_" + tid + "-" + sid + "-01",                     // wrong separator
	}
	for _, h := range bad {
		if _, _, ok := Parse(h); ok {
			t.Errorf("Parse(%q) accepted a malformed header", h)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	tid, sid := NewIDs()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("NewIDs lengths = %d, %d", len(tid), len(sid))
	}
	gotTID, gotSID, ok := Parse(Format(tid, sid))
	if !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("round trip failed: %q %q %v", gotTID, gotSID, ok)
	}
}

func TestTraceSpansAndExport(t *testing.T) {
	tr := New("search", "")
	tr.SetCollection("items")
	sp := tr.StartSpan("scan")
	sp.SetInt("rows", 128)
	sp.SetInt("rows", 72) // attrs with one key accumulate
	sp.End()
	tr.Finish(200, 5*time.Millisecond)
	tr.Finish(500, time.Hour) // first Finish wins

	e := tr.Export()
	if e.TraceID != tr.ID() || e.Route != "search" || e.Collection != "items" {
		t.Fatalf("export header mismatch: %+v", e)
	}
	if e.Active || e.Status != 200 || e.DurationUS != 5000 {
		t.Fatalf("export finish state mismatch: %+v", e)
	}
	if len(e.Spans) != 1 || e.Spans[0].Name != "scan" || e.Spans[0].Attrs["rows"] != 200 {
		t.Fatalf("export spans mismatch: %+v", e.Spans)
	}

	var stages []string
	tr.SpanDurations(func(name string, d time.Duration) { stages = append(stages, name) })
	if len(stages) != 1 || stages[0] != "scan" {
		t.Fatalf("SpanDurations visited %v", stages)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
	tr := New("x", "")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext lost the trace")
	}
}

func TestTraceparentAdoptsIncomingID(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	tr := New("search", "00-"+tid+"-00f067aa0ba902b7-01")
	if tr.ID() != tid {
		t.Fatalf("trace did not adopt the incoming id: %q", tr.ID())
	}
	outTID, outSID, ok := Parse(tr.Traceparent())
	if !ok || outTID != tid || outSID == "00f067aa0ba902b7" {
		t.Fatalf("outgoing traceparent %q should keep the trace id and mint a new span id", tr.Traceparent())
	}
}

func TestRegistryRingAndLookup(t *testing.T) {
	g := NewRegistry(2)
	var traces []*Trace
	for i := 0; i < 3; i++ {
		tr := New("search", "")
		g.Start(tr)
		traces = append(traces, tr)
	}
	if got := len(g.Active()); got != 3 {
		t.Fatalf("active = %d, want 3", got)
	}
	for _, tr := range traces {
		tr.Finish(200, time.Millisecond)
		g.Finish(tr)
	}
	if got := len(g.Active()); got != 0 {
		t.Fatalf("active after finish = %d, want 0", got)
	}
	routes, byRoute := g.Recent()
	if len(routes) != 1 || routes[0] != "search" {
		t.Fatalf("routes = %v", routes)
	}
	recent := byRoute["search"]
	if len(recent) != 2 || recent[0] != traces[2] || recent[1] != traces[1] {
		t.Fatalf("ring should hold the 2 newest traces newest-first")
	}
	if g.Lookup(traces[0].ID()) != nil {
		t.Fatalf("oldest trace should have aged out of the ring")
	}
	if g.Lookup(traces[2].ID()) != traces[2] {
		t.Fatalf("newest trace should resolve by id")
	}
}

// TestDisabledTraceZeroAlloc pins the tracing-off contract: with no
// trace in the context, every call the hot path makes — FromContext,
// StartSpan, SetInt, End, SetCollection, Finish, registry updates —
// must allocate nothing.
func TestDisabledTraceZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var g *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		tr := FromContext(ctx)
		g.Start(tr)
		tr.SetCollection("items")
		sp := tr.StartSpan("scan")
		sp.SetInt("rows", 1)
		sp.End()
		tr.Finish(200, 0)
		g.Finish(tr)
		_ = tr.ID()
	})
	if allocs != 0 {
		t.Fatalf("disabled-trace hot path allocates %.1f per run, want 0", allocs)
	}
}
