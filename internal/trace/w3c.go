package trace

// W3C Trace Context (traceparent) parsing and rendering. Only the
// parts ipsd needs: version 00 headers of the exact canonical shape
// version-traceid-parentid-flags with lowercase hex fields. Anything
// else is rejected and the server starts a fresh trace — a malformed
// header must never poison the debug plane.

// Parse splits a traceparent header into its trace id and parent span
// id. ok is false when the header is absent or malformed.
func Parse(h string) (traceID, parentID string, ok bool) {
	// 2 (version) + 1 + 32 (trace id) + 1 + 16 (span id) + 1 + 2 (flags)
	if len(h) != 55 {
		return "", "", false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	version := h[0:2]
	tid := h[3:35]
	sid := h[36:52]
	flags := h[53:55]
	if !isHexLower(version) || !isHexLower(tid) || !isHexLower(sid) || !isHexLower(flags) {
		return "", "", false
	}
	// Version ff is forbidden by the spec; the all-zero ids are invalid.
	if version == "ff" || allZero(tid) || allZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

// Format renders a version-00 sampled traceparent for the ids.
func Format(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// NewIDs mints a random (trace id, span id) pair for clients that
// originate a trace (cmd/loadgen).
func NewIDs() (traceID, spanID string) {
	return randHex(16), randHex(8)
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
