package trace

import (
	"sort"
	"sync"
)

// Registry is the debug plane's trace store: the set of currently
// active traces plus a fixed-size ring of recently finished traces per
// route (x/net/trace style). It is lock-cheap by construction — one
// mutex acquisition when a request starts and one when it finishes,
// never per span — so tracing's steady-state cost stays at two short
// critical sections per request.
//
// A nil *Registry is valid and inert, mirroring the nil *Trace
// contract.
type Registry struct {
	mu       sync.Mutex
	perRoute int
	active   map[string]*Trace
	recent   map[string]*ring
	routes   []string // insertion-ordered route labels
}

// ring is a fixed-capacity overwrite-oldest buffer of finished traces.
type ring struct {
	buf  []*Trace
	next int
	n    int
}

func (r *ring) push(t *Trace) {
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// newest-first snapshot of the ring's contents.
func (r *ring) snapshot() []*Trace {
	out := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// NewRegistry builds a registry keeping up to perRoute finished traces
// per route (<= 0 selects the default of 32).
func NewRegistry(perRoute int) *Registry {
	if perRoute <= 0 {
		perRoute = 32
	}
	return &Registry{
		perRoute: perRoute,
		active:   make(map[string]*Trace),
		recent:   make(map[string]*ring),
	}
}

// Start registers t as active.
func (g *Registry) Start(t *Trace) {
	if g == nil || t == nil {
		return
	}
	g.mu.Lock()
	g.active[t.traceID] = t
	g.mu.Unlock()
}

// Finish moves t from the active set into its route's recent ring.
func (g *Registry) Finish(t *Trace) {
	if g == nil || t == nil {
		return
	}
	g.mu.Lock()
	delete(g.active, t.traceID)
	r, ok := g.recent[t.route]
	if !ok {
		r = &ring{buf: make([]*Trace, g.perRoute)}
		g.recent[t.route] = r
		g.routes = append(g.routes, t.route)
	}
	r.push(t)
	g.mu.Unlock()
}

// Lookup finds a trace by id among the active set and every recent
// ring; nil when the id has aged out (or never existed).
func (g *Registry) Lookup(id string) *Trace {
	if g == nil || id == "" {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if t, ok := g.active[id]; ok {
		return t
	}
	for _, r := range g.recent {
		for _, t := range r.buf {
			if t != nil && t.traceID == id {
				return t
			}
		}
	}
	return nil
}

// Active returns the in-flight traces, oldest first.
func (g *Registry) Active() []*Trace {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	out := make([]*Trace, 0, len(g.active))
	for _, t := range g.active {
		out = append(out, t)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].start.Before(out[j].start) })
	return out
}

// Recent returns every route label (sorted) with its finished traces,
// newest first.
func (g *Registry) Recent() (routes []string, byRoute map[string][]*Trace) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	routes = append([]string(nil), g.routes...)
	sort.Strings(routes)
	byRoute = make(map[string][]*Trace, len(routes))
	for _, route := range routes {
		byRoute[route] = g.recent[route].snapshot()
	}
	return routes, byRoute
}
