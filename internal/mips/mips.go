// Package mips implements the exact maximum-inner-product-search
// baselines the paper positions itself against: the linear scan, the
// norm-pruned descending scan (the LEMP-style bound ‖p‖·‖q‖ of
// Teflioudi et al. [50]), and a Ram–Gray style ball tree with the
// maximum-inner-product bound qᵀc + r·‖q‖ [43]. These are the "exact
// methods [that] do not guarantee subquadratic running time" and they
// suffer the curse of dimensionality — which the benchmarks make
// visible — but on structured data they prune aggressively and are the
// practical yardstick for the approximate structures.
package mips

import (
	"fmt"
	"sort"

	"repro/internal/flat"
	"repro/internal/vec"
)

// Result is an exact MIPS answer with the work spent finding it.
type Result struct {
	Index int
	Value float64
	// Scanned counts candidate vectors whose inner product was evaluated.
	Scanned int
}

// LinearScan evaluates every inner product (the Θ(nd) baseline).
func LinearScan(data []vec.Vector, q vec.Vector) Result {
	res := Result{Index: -1}
	for i, p := range data {
		res.Scanned++
		if v := vec.Dot(p, q); res.Index == -1 || v > res.Value {
			res.Index, res.Value = i, v
		}
	}
	return res
}

// FlatLinearScan is LinearScan over a columnar store: the same Θ(nd)
// answer, computed by the blocked contiguous kernel (bit-identical
// scores, since both route through vec.DotKernel).
func FlatLinearScan(fs *flat.Store, q vec.Vector) (Result, error) {
	hits, err := fs.TopK(q, 1, false, 1)
	if err != nil {
		return Result{}, err
	}
	res := Result{Index: -1, Scanned: fs.Len()}
	if len(hits) > 0 {
		res.Index, res.Value = hits[0].Index, hits[0].Score
	}
	return res, nil
}

// FlatNormPruned is NormPruned over the norm-sorted columnar view: the
// same exact answer and the same Cauchy–Schwarz early termination, but
// the prefix it scans is contiguous in memory (block-granular
// termination, so Scanned can exceed NormPruned's count by at most one
// block).
type FlatNormPruned struct {
	ns *flat.NormSorted
}

// NewFlatNormPruned preprocesses the store in O(n log n + n·d).
func NewFlatNormPruned(fs *flat.Store) (*FlatNormPruned, error) {
	if fs == nil || fs.Len() == 0 {
		return nil, fmt.Errorf("mips: empty data set")
	}
	return &FlatNormPruned{ns: flat.NewNormSorted(fs)}, nil
}

// Query returns the exact MIPS answer, typically scanning only a norm
// prefix of the data.
func (np *FlatNormPruned) Query(q vec.Vector) (Result, error) {
	hits, scanned, err := np.ns.TopK(q, 1, false)
	if err != nil {
		return Result{}, err
	}
	res := Result{Index: -1, Scanned: scanned}
	if len(hits) > 0 {
		res.Index, res.Value = hits[0].Index, hits[0].Score
	}
	return res, nil
}

// queryStore packs a query batch into a columnar store so the
// multi-query tile kernels can amortize every data-row load across the
// batch.
func queryStore(qs []vec.Vector) (*flat.Store, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("mips: empty query batch")
	}
	return flat.FromVectors(qs)
}

// FlatLinearScanBatch answers one exact MIPS query per element of qs
// over a single sweep of the store, through the register-blocked
// multi-query kernel. Each answer is bit-identical to
// FlatLinearScan(fs, qs[i]) — and therefore to LinearScan on the row
// slices — at a fraction of the per-query memory traffic.
func FlatLinearScanBatch(fs *flat.Store, qs []vec.Vector) ([]Result, error) {
	qstore, err := queryStore(qs)
	if err != nil {
		return nil, err
	}
	hits, err := fs.TopKMulti(qstore, 1, false)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(qs))
	for i, h := range hits {
		out[i] = Result{Index: -1, Scanned: fs.Len()}
		if len(h) > 0 {
			out[i].Index, out[i].Value = h[0].Index, h[0].Score
		}
	}
	return out, nil
}

// QueryBatch answers one exact MIPS query per element of qs in a
// single descending-norm sweep, with the Cauchy–Schwarz bound applied
// per query exactly as in Query: answers and per-query scanned counts
// are bit-identical to calling Query per element.
func (np *FlatNormPruned) QueryBatch(qs []vec.Vector) ([]Result, error) {
	qstore, err := queryStore(qs)
	if err != nil {
		return nil, err
	}
	hits, scanned, err := np.ns.TopKMulti(qstore, 1, false)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(qs))
	for i, h := range hits {
		out[i] = Result{Index: -1, Scanned: scanned[i]}
		if len(h) > 0 {
			out[i].Index, out[i].Value = h[0].Index, h[0].Score
		}
	}
	return out, nil
}

// NormPruned is the descending-norm scan: data is sorted by ‖p‖ once;
// a query walks the list from the largest norm and stops as soon as
// ‖p‖·‖q‖ — an upper bound on every remaining inner product — cannot
// beat the best found so far (the Cauchy–Schwarz prefix bound that
// LEMP [50] builds on).
type NormPruned struct {
	data  []vec.Vector
	order []int // indices sorted by descending norm
	norms []float64
}

// NewNormPruned preprocesses the data in O(n log n).
func NewNormPruned(data []vec.Vector) (*NormPruned, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("mips: empty data set")
	}
	np := &NormPruned{
		data:  data,
		order: make([]int, len(data)),
		norms: make([]float64, len(data)),
	}
	for i, p := range data {
		np.order[i] = i
		np.norms[i] = vec.Norm(p)
	}
	sort.Slice(np.order, func(a, b int) bool {
		return np.norms[np.order[a]] > np.norms[np.order[b]]
	})
	return np, nil
}

// Query returns the exact MIPS answer, typically scanning only a norm
// prefix of the data.
func (np *NormPruned) Query(q vec.Vector) Result {
	qn := vec.Norm(q)
	res := Result{Index: -1}
	for _, i := range np.order {
		if res.Index != -1 && np.norms[i]*qn <= res.Value {
			break // no remaining vector can win
		}
		res.Scanned++
		if v := vec.Dot(np.data[i], q); res.Index == -1 || v > res.Value {
			res.Index, res.Value = i, v
		}
	}
	return res
}

// BallTree is a Ram–Gray style exact MIPS tree: a binary space
// partition where each node stores the centroid c and covering radius r
// of its points, giving the upper bound
//
//	max_{p ∈ node} pᵀq ≤ qᵀc + r·‖q‖
//
// used for best-first branch-and-bound search.
type BallTree struct {
	data []vec.Vector
	root *ballNode
	// LeafSize is the scan threshold at leaves.
	LeafSize int
}

type ballNode struct {
	center      vec.Vector
	radius      float64
	points      []int // leaf payload (nil for internal nodes)
	left, right *ballNode
}

// NewBallTree builds the tree in O(n log n · d) expected time.
func NewBallTree(data []vec.Vector, leafSize int) (*BallTree, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("mips: empty data set")
	}
	if leafSize <= 0 {
		return nil, fmt.Errorf("mips: leaf size %d must be positive", leafSize)
	}
	t := &BallTree{data: data, LeafSize: leafSize}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(idx)
	return t, nil
}

// build recursively splits the index set by the dimension-of-max-spread
// midpoint rule.
func (t *BallTree) build(idx []int) *ballNode {
	node := &ballNode{center: t.centroid(idx)}
	for _, i := range idx {
		if d := vec.Norm(vec.Sub(t.data[i], node.center)); d > node.radius {
			node.radius = d
		}
	}
	if len(idx) <= t.LeafSize {
		node.points = idx
		return node
	}
	dim, mid := t.splitRule(idx)
	var left, right []int
	for _, i := range idx {
		if t.data[i][dim] < mid {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		node.points = idx // degenerate split: make a leaf
		return node
	}
	node.left = t.build(left)
	node.right = t.build(right)
	return node
}

func (t *BallTree) centroid(idx []int) vec.Vector {
	c := vec.New(len(t.data[0]))
	for _, i := range idx {
		vec.Axpy(1, t.data[i], c)
	}
	return vec.Scale(c, 1/float64(len(idx)))
}

// splitRule picks the coordinate with maximum spread and its midpoint.
func (t *BallTree) splitRule(idx []int) (int, float64) {
	d := len(t.data[0])
	bestDim, bestSpread, bestMid := 0, -1.0, 0.0
	for dim := 0; dim < d; dim++ {
		lo, hi := t.data[idx[0]][dim], t.data[idx[0]][dim]
		for _, i := range idx[1:] {
			v := t.data[i][dim]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestDim, bestSpread, bestMid = dim, spread, (lo+hi)/2
		}
	}
	return bestDim, bestMid
}

// mipBound is the Ram–Gray node bound max pᵀq ≤ qᵀc + r‖q‖.
func mipBound(n *ballNode, q vec.Vector, qNorm float64) float64 {
	return vec.Dot(q, n.center) + n.radius*qNorm
}

// Query returns the exact MIPS answer via branch-and-bound.
func (t *BallTree) Query(q vec.Vector) Result {
	res := Result{Index: -1}
	qNorm := vec.Norm(q)
	t.search(t.root, q, qNorm, &res)
	return res
}

func (t *BallTree) search(n *ballNode, q vec.Vector, qNorm float64, res *Result) {
	if res.Index != -1 && mipBound(n, q, qNorm) <= res.Value {
		return // the whole ball is dominated
	}
	if n.points != nil {
		for _, i := range n.points {
			res.Scanned++
			if v := vec.Dot(t.data[i], q); res.Index == -1 || v > res.Value {
				res.Index, res.Value = i, v
			}
		}
		return
	}
	// Descend into the more promising child first for tighter pruning.
	lb, rb := mipBound(n.left, q, qNorm), mipBound(n.right, q, qNorm)
	first, second := n.left, n.right
	if rb > lb {
		first, second = n.right, n.left
	}
	t.search(first, q, qNorm, res)
	t.search(second, q, qNorm, res)
}

// Depth returns the tree height (for diagnostics).
func (t *BallTree) Depth() int { return depth(t.root) }

func depth(n *ballNode) int {
	if n == nil || n.points != nil {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if r > l {
		l = r
	}
	return l + 1
}
