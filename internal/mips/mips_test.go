package mips

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/flat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// checkAgree asserts the solver reproduces the linear-scan answer value
// (ties may differ in index, so compare values).
func checkAgree(t *testing.T, data []vec.Vector, q vec.Vector, got Result) {
	t.Helper()
	want := LinearScan(data, q)
	if got.Index < 0 || got.Index >= len(data) {
		t.Fatalf("index %d out of range", got.Index)
	}
	if got.Value != want.Value {
		t.Fatalf("value %v, want %v (index %d vs %d)", got.Value, want.Value, got.Index, want.Index)
	}
	if gotV := vec.Dot(data[got.Index], q); gotV != got.Value {
		t.Fatalf("reported value %v inconsistent with index (%v)", got.Value, gotV)
	}
}

func TestLinearScan(t *testing.T) {
	data := []vec.Vector{{1, 0}, {0, 2}, {-3, 0}}
	res := LinearScan(data, vec.Vector{0, 1})
	if res.Index != 1 || res.Value != 2 || res.Scanned != 3 {
		t.Fatalf("LinearScan = %+v", res)
	}
	empty := LinearScan(nil, vec.Vector{1})
	if empty.Index != -1 {
		t.Fatal("empty scan must return -1")
	}
}

func TestNormPrunedCorrectness(t *testing.T) {
	rng := xrand.New(1)
	lf := dataset.NewLatentFactor(rng, 500, 30, 12, 0.8)
	np, err := NewNormPruned(lf.Items)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range lf.Users {
		checkAgree(t, lf.Items, q, np.Query(q))
	}
}

func TestNormPrunedPrunes(t *testing.T) {
	// With strongly skewed norms the scan should stop early on average.
	rng := xrand.New(2)
	lf := dataset.NewLatentFactor(rng, 2000, 40, 12, 1.2)
	np, err := NewNormPruned(lf.Items)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, q := range lf.Users {
		total += np.Query(q).Scanned
	}
	avg := float64(total) / float64(len(lf.Users))
	if avg > float64(len(lf.Items))*0.8 {
		t.Fatalf("norm pruning ineffective: avg scanned %v of %d", avg, len(lf.Items))
	}
}

func TestNormPrunedEmpty(t *testing.T) {
	if _, err := NewNormPruned(nil); err == nil {
		t.Fatal("empty data must fail")
	}
}

func TestBallTreeCorrectness(t *testing.T) {
	rng := xrand.New(3)
	for _, n := range []int{1, 2, 17, 300} {
		data := dataset.Gaussian(rng, n, 6, false)
		bt, err := NewBallTree(data, 8)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			q := vec.Vector(rng.NormalVec(6))
			checkAgree(t, data, q, bt.Query(q))
		}
	}
}

func TestBallTreeClusteredDataPrunes(t *testing.T) {
	// Two well-separated clusters: queries aligned with one cluster
	// should prune (most of) the other.
	rng := xrand.New(4)
	const n, d = 2000, 8
	data := make([]vec.Vector, n)
	for i := range data {
		v := vec.Vector(rng.NormalVec(d))
		vec.Scale(v, 0.05)
		if i < n/2 {
			v[0] += 10
		} else {
			v[0] -= 10
		}
		data[i] = v
	}
	bt, err := NewBallTree(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	q := vec.New(d)
	q[0] = 1 // MIPS answer is deep in the +10 cluster
	res := bt.Query(q)
	checkAgree(t, data, q, res)
	if res.Scanned > n/2 {
		t.Fatalf("ball tree scanned %d of %d on separable data", res.Scanned, n)
	}
}

func TestBallTreeValidation(t *testing.T) {
	if _, err := NewBallTree(nil, 4); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := NewBallTree([]vec.Vector{{1}}, 0); err == nil {
		t.Fatal("leafSize=0 must fail")
	}
}

func TestBallTreeDuplicatePoints(t *testing.T) {
	// Identical points force degenerate splits; the build must terminate
	// and answer correctly.
	data := make([]vec.Vector, 50)
	for i := range data {
		data[i] = vec.Vector{1, 2}
	}
	bt, err := NewBallTree(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := bt.Query(vec.Vector{1, 0})
	if res.Value != 1 {
		t.Fatalf("value %v", res.Value)
	}
	if bt.Depth() < 1 {
		t.Fatal("depth")
	}
}

func TestCurseOfDimensionality(t *testing.T) {
	// The paper (citing Weber et al.): exact space partitioning degrades
	// to a full scan as dimension grows on unstructured data. Verify the
	// trend: the scanned fraction at d=64 exceeds that at d=4.
	rng := xrand.New(5)
	frac := func(d int) float64 {
		data := dataset.Gaussian(rng, 800, d, true)
		bt, err := NewBallTree(data, 16)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const queries = 15
		for i := 0; i < queries; i++ {
			total += bt.Query(vec.Vector(rng.UnitVec(d))).Scanned
		}
		return float64(total) / float64(queries*800)
	}
	lo, hi := frac(4), frac(64)
	if hi <= lo {
		t.Fatalf("expected degradation with dimension: d=4 %.3f vs d=64 %.3f", lo, hi)
	}
}

func BenchmarkMIPSBaselines(b *testing.B) {
	rng := xrand.New(6)
	lf := dataset.NewLatentFactor(rng, 5000, 64, 16, 0.8)
	np, err := NewNormPruned(lf.Items)
	if err != nil {
		b.Fatal(err)
	}
	bt, err := NewBallTree(lf.Items, 32)
	if err != nil {
		b.Fatal(err)
	}
	for name, query := range map[string]func(vec.Vector) Result{
		"linear":     func(q vec.Vector) Result { return LinearScan(lf.Items, q) },
		"norm-prune": np.Query,
		"ball-tree":  bt.Query,
	} {
		b.Run(fmt.Sprintf("%s/n=5000", name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				query(lf.Users[i%len(lf.Users)])
			}
		})
	}
}

func TestFlatLinearScanMatchesRowScan(t *testing.T) {
	rng := xrand.New(51)
	data := dataset.Gaussian(rng, 400, 16, false)
	fs, err := flat.FromVectors(data)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		q := vec.Vector(rng.NormalVec(16))
		want := LinearScan(data, q)
		got, err := FlatLinearScan(fs, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || got.Value != want.Value {
			t.Fatalf("trial %d: flat (%d, %v), row (%d, %v)", trial, got.Index, got.Value, want.Index, want.Value)
		}
		if got.Scanned != len(data) {
			t.Fatalf("flat scan reported %d scanned, want %d", got.Scanned, len(data))
		}
	}
	if _, err := FlatLinearScan(fs, vec.Vector{1}); err == nil {
		t.Fatal("dimension mismatch did not error")
	}
}

func TestFlatNormPrunedMatchesAndPrunes(t *testing.T) {
	rng := xrand.New(52)
	// Skewed norms (lognormal popularity) make the prefix bound bite.
	lf := dataset.NewLatentFactor(rng, 4096, 8, 16, 1.0)
	fs, err := flat.FromVectors(lf.Items)
	if err != nil {
		t.Fatal(err)
	}
	np, err := NewFlatNormPruned(fs)
	if err != nil {
		t.Fatal(err)
	}
	totalScanned := 0
	for _, q := range lf.Users {
		got, err := np.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		checkAgree(t, lf.Items, q, got)
		totalScanned += got.Scanned
	}
	if avg := totalScanned / len(lf.Users); avg >= len(lf.Items) {
		t.Fatalf("flat norm-pruned scan never pruned: average scanned %d of %d", avg, len(lf.Items))
	}
	if _, err := NewFlatNormPruned(nil); err == nil {
		t.Fatal("nil store accepted")
	}
}

// TestFlatBatchMatchesPerQuery pins the batch MIPS entry points to the
// per-query references: FlatLinearScanBatch must reproduce
// FlatLinearScan (and LinearScan) bit for bit, and
// FlatNormPruned.QueryBatch must reproduce Query — values, argmax
// indexes, and scanned counts.
func TestFlatBatchMatchesPerQuery(t *testing.T) {
	rng := xrand.New(77)
	for _, tc := range []struct{ n, d, q int }{
		{1, 4, 1},
		{53, 16, 9},
		{1000, 8, 17},
		{700, 24, 5},
	} {
		data := make([]vec.Vector, tc.n)
		for i := range data {
			data[i] = vec.Vector(rng.NormalVec(tc.d))
		}
		// Duplicate a row to force an argmax tie.
		if tc.n > 3 {
			data[3] = data[0].Clone()
		}
		fs, err := flat.FromVectors(data)
		if err != nil {
			t.Fatal(err)
		}
		np, err := NewFlatNormPruned(fs)
		if err != nil {
			t.Fatal(err)
		}
		qs := make([]vec.Vector, tc.q)
		for i := range qs {
			qs[i] = vec.Vector(rng.NormalVec(tc.d))
		}
		qs[tc.q-1] = vec.New(tc.d) // zero query ties every score

		batch, err := FlatLinearScanBatch(fs, qs)
		if err != nil {
			t.Fatal(err)
		}
		npBatch, err := np.QueryBatch(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, err := FlatLinearScan(fs, q)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != want {
				t.Fatalf("n=%d d=%d query %d: batch %+v, per-query %+v", tc.n, tc.d, i, batch[i], want)
			}
			if ls := LinearScan(data, q); batch[i].Index != ls.Index || batch[i].Value != ls.Value {
				t.Fatalf("n=%d d=%d query %d: batch %+v, LinearScan %+v", tc.n, tc.d, i, batch[i], ls)
			}
			npWant, err := np.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if npBatch[i] != npWant {
				t.Fatalf("n=%d d=%d query %d: norm-pruned batch %+v, per-query %+v", tc.n, tc.d, i, npBatch[i], npWant)
			}
		}
	}
	if _, err := FlatLinearScanBatch(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}
