package persist

import (
	"fmt"
	"repro/internal/errfs"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// benchRecords builds n random d-dimensional records.
func benchRecords(n, d int, seed uint64) []store.Record {
	rng := xrand.New(seed)
	recs := make([]store.Record, n)
	for i := range recs {
		v := make(vec.Vector, d)
		for j := range v {
			v[j] = rng.Normal()
		}
		recs[i] = store.Record{ID: i, Vec: v}
	}
	return recs
}

// BenchmarkWALAppend measures one-batch WAL appends under each fsync
// policy (1000 records × 16 dims per batch, the loadgen chunk shape
// scaled down).
func BenchmarkWALAppend(b *testing.B) {
	for _, mode := range []FsyncMode{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			dir := b.TempDir()
			pol := testPolicy(mode)
			pol.CheckpointBytes = 1 << 40 // never checkpoint during the bench
			l := mustCreateB(b, dir, pol)
			defer l.Close()
			recs := benchRecords(1000, 16, 1)
			bytesPer := int64(len(encodeBatch(nil, 1, opAppend, recs)) + frameHeaderSize)
			b.SetBytes(bytesPer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func mustCreateB(b *testing.B, dir string, pol Policy) *Log {
	b.Helper()
	l, err := Create(dir, Manifest{Name: "bench", Shards: 4}, pol)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkSegmentWrite measures checkpoint segment serialization
// (encode + atomic write) for a 100k×16 collection.
func BenchmarkSegmentWrite(b *testing.B) {
	recs := benchRecords(100_000, 16, 2)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := writeSegment(errfs.OS, dir, uint64(i+1), recs, PrecisionF64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures a full boot-time recovery — the number the
// README quotes for restart cost — across WAL-only, segment-only and
// mixed layouts of a 100k×16 collection.
func BenchmarkRecover(b *testing.B) {
	const n, d = 100_000, 16
	recs := benchRecords(n, d, 3)
	layouts := []struct {
		name  string
		build func(b *testing.B, dir string)
	}{
		{"wal-tail", func(b *testing.B, dir string) {
			l := mustCreateB(b, dir, testPolicy(FsyncNever))
			for lo := 0; lo < n; lo += 20_000 {
				if _, err := l.Append(recs[lo : lo+20_000]); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"segment", func(b *testing.B, dir string) {
			l := mustCreateB(b, dir, testPolicy(FsyncNever))
			for lo := 0; lo < n; lo += 20_000 {
				if _, err := l.Append(recs[lo : lo+20_000]); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Checkpoint(func() ([]store.Record, uint64) { return recs, l.LastSeq() }); err != nil {
				b.Fatal(err)
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"segment+tail", func(b *testing.B, dir string) {
			l := mustCreateB(b, dir, testPolicy(FsyncNever))
			half := n / 2
			if _, err := l.Append(recs[:half]); err != nil {
				b.Fatal(err)
			}
			if err := l.Checkpoint(func() ([]store.Record, uint64) { return recs[:half], l.LastSeq() }); err != nil {
				b.Fatal(err)
			}
			for lo := half; lo < n; lo += 10_000 {
				if _, err := l.Append(recs[lo : lo+10_000]); err != nil {
					b.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		}},
	}
	for _, lay := range layouts {
		b.Run(fmt.Sprintf("layout=%s/n=%d", lay.name, n), func(b *testing.B) {
			dir := b.TempDir()
			lay.build(b, dir)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, rec, err := Open(dir, testPolicy(FsyncNever))
				if err != nil {
					b.Fatal(err)
				}
				if len(rec.Recs) != n {
					b.Fatalf("recovered %d records, want %d", len(rec.Recs), n)
				}
				if err := l.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
