package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/store"
	"repro/internal/vec"
)

// WAL file format (all little-endian):
//
//	magic   [8]byte "IPSWAL1\n"
//	frames  ...
//
// One frame carries one mutation batch:
//
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload:
//	  seq    uint64  batch sequence number (1-based, consecutive)
//	  meta   uint32  op in the top 4 bits, record/id count below
//	  append/upsert (op 0 / 1): count × record:
//	    id      int64
//	    dim     uint32
//	    nattrs  uint32
//	    nattrs × (key, value)   each uint32 length + bytes, keys sorted
//	    dim × float64           raw IEEE-754 bits
//	  delete (op 2): count × id int64
//
// Op 0 is the original append frame, so every WAL written before
// mutations existed still decodes: its meta word's top bits are zero.
// Replay applies ops in sequence order with upsert semantics — append
// and upsert replace an id that is already live and insert it
// otherwise, delete of an unknown id is a no-op — so re-replaying a
// prefix (segment overlap) or re-ingesting a batch after a crash
// converges to the same live set.
//
// Attribute keys are sorted at encode time so the encoding is
// canonical: the same batch always produces the same bytes, which the
// crash-recovery tests rely on when comparing durable prefixes.

var walMagic = [8]byte{'I', 'P', 'S', 'W', 'A', 'L', '1', '\n'}

// Frame op codes, carried in the top bits of the payload meta word.
const (
	opAppend = 0 // insert records (pre-mutation encoding)
	opUpsert = 1 // insert-or-replace records by id
	opDelete = 2 // remove ids

	opShift   = 28
	countMask = 1<<opShift - 1
)

const (
	frameHeaderSize = 8 // u32 length + u32 crc
	// maxFrameBytes bounds a single frame so a corrupt length field
	// cannot drive a giant allocation. 1 GiB comfortably exceeds any
	// real ingest batch.
	maxFrameBytes = 1 << 30
)

// Truncation vs corruption: a truncated tail is the expected shape of
// a crash mid-append and recovery silently stops there; anything else
// (bad magic, checksum mismatch, malformed payload, sequence gap) is
// reported so callers can surface it.
var (
	errTruncated = errors.New("persist: wal frame truncated")
	errCorrupt   = errors.New("persist: wal frame corrupt")
)

// encodeBatch appends the canonical payload encoding of an append or
// upsert frame (seq, op, recs) to buf and returns the extended slice.
func encodeBatch(buf []byte, seq uint64, op uint32, recs []store.Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, op<<opShift|uint32(len(recs)))
	var keys []string
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Vec)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Attrs)))
		if len(r.Attrs) > 0 {
			keys = keys[:0]
			for k := range r.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				buf = appendString(buf, k)
				buf = appendString(buf, r.Attrs[k])
			}
		}
		for _, v := range r.Vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// encodeDelete appends the canonical payload encoding of a delete
// frame (seq, ids) to buf and returns the extended slice.
func encodeDelete(buf []byte, seq uint64, ids []int) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint32(buf, opDelete<<opShift|uint32(len(ids)))
	for _, id := range ids {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(id)))
	}
	return buf
}

// decodeBatch parses a frame payload into a walBatch (end is left for
// the caller). Every length field is validated against the remaining
// input before any allocation.
func decodeBatch(payload []byte) (b walBatch, err error) {
	rest := payload
	if len(rest) < 12 {
		return b, fmt.Errorf("%w: payload header", errCorrupt)
	}
	b.seq = binary.LittleEndian.Uint64(rest)
	meta := binary.LittleEndian.Uint32(rest[8:])
	b.op = meta >> opShift
	count := meta & countMask
	rest = rest[12:]
	switch b.op {
	case opAppend, opUpsert:
	case opDelete:
		if uint64(count)*8 != uint64(len(rest)) {
			return b, fmt.Errorf("%w: %d delete ids in %d payload bytes", errCorrupt, count, len(rest))
		}
		b.ids = make([]int, count)
		for i := range b.ids {
			b.ids[i] = int(int64(binary.LittleEndian.Uint64(rest[i*8:])))
		}
		return b, nil
	default:
		return b, fmt.Errorf("%w: unknown frame op %d", errCorrupt, b.op)
	}
	// A record costs at least 16 bytes (id + dim + nattrs), so a
	// count claim beyond len(rest)/16 is corrupt, not an allocation.
	if uint64(count) > uint64(len(rest))/16 {
		return b, fmt.Errorf("%w: %d records in %d payload bytes", errCorrupt, count, len(rest))
	}
	recs := make([]store.Record, count)
	for i := range recs {
		if len(rest) < 16 {
			return b, fmt.Errorf("%w: record %d header", errCorrupt, i)
		}
		recs[i].ID = int(int64(binary.LittleEndian.Uint64(rest)))
		dim := binary.LittleEndian.Uint32(rest[8:])
		nattrs := binary.LittleEndian.Uint32(rest[12:])
		rest = rest[16:]
		if nattrs > 0 {
			// Each attribute costs at least 8 bytes of length fields.
			if uint64(nattrs) > uint64(len(rest))/8 {
				return b, fmt.Errorf("%w: record %d claims %d attrs", errCorrupt, i, nattrs)
			}
			attrs := make(map[string]string, nattrs)
			for a := uint32(0); a < nattrs; a++ {
				var k, v string
				if k, rest, err = takeString(rest); err != nil {
					return b, fmt.Errorf("%w: record %d attr key", errCorrupt, i)
				}
				if v, rest, err = takeString(rest); err != nil {
					return b, fmt.Errorf("%w: record %d attr value", errCorrupt, i)
				}
				attrs[k] = v
			}
			recs[i].Attrs = attrs
		}
		if uint64(dim) > uint64(len(rest))/8 {
			return b, fmt.Errorf("%w: record %d claims dimension %d with %d bytes left",
				errCorrupt, i, dim, len(rest))
		}
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = math.Float64frombits(binary.LittleEndian.Uint64(rest[j*8:]))
		}
		rest = rest[int(dim)*8:]
		recs[i].Vec = v
	}
	if len(rest) != 0 {
		return b, fmt.Errorf("%w: %d trailing payload bytes", errCorrupt, len(rest))
	}
	b.recs = recs
	return b, nil
}

func takeString(rest []byte) (string, []byte, error) {
	if len(rest) < 4 {
		return "", nil, errCorrupt
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(n) > uint64(len(rest)) {
		return "", nil, errCorrupt
	}
	return string(rest[:n]), rest[n:], nil
}

// appendFrame wraps an already-encoded payload (buf[payloadStart:]) in
// a frame header written into buf[payloadStart-frameHeaderSize:].
// Callers reserve the header bytes before encoding the payload so the
// whole frame lands in one contiguous write.
func finishFrame(buf []byte, payloadStart int) ([]byte, error) {
	payload := buf[payloadStart:]
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("persist: frame payload %d bytes exceeds limit %d", len(payload), maxFrameBytes)
	}
	hdr := buf[payloadStart-frameHeaderSize:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// decodeFrame parses one frame from the front of data, returning the
// payload view (aliasing data) and the total frame size. errTruncated
// means data ends mid-frame; errCorrupt means the frame is framed but
// fails its checksum or claims an impossible length.
func decodeFrame(data []byte) (payload []byte, n int, err error) {
	if len(data) < frameHeaderSize {
		return nil, 0, errTruncated
	}
	length := binary.LittleEndian.Uint32(data)
	if length > maxFrameBytes {
		return nil, 0, fmt.Errorf("%w: frame length %d", errCorrupt, length)
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	total := frameHeaderSize + int(length)
	if len(data) < total {
		return nil, 0, errTruncated
	}
	payload = data[frameHeaderSize:total]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: checksum %08x != %08x", errCorrupt, got, want)
	}
	return payload, total, nil
}

// walScan is the result of scanning one WAL file's bytes.
type walScan struct {
	// magicOK reports whether the file header parsed; when false the
	// file must be rewritten from scratch before appending.
	magicOK bool
	// batches holds every decoded (seq, recs) frame in file order;
	// each carries the byte offset just past its frame so recovery can
	// truncate precisely after the last frame it accepts.
	batches []walBatch
	// err is the reason scanning stopped early (nil if the whole file
	// parsed; errTruncated for a clean torn tail).
	err error
}

type walBatch struct {
	seq  uint64
	op   uint32
	recs []store.Record // append/upsert payload
	ids  []int          // delete payload
	end  int64          // offset just past this frame
}

// replayState materializes the live record set while WAL frames are
// replayed over a segment base. Upserts of a live id replace it in
// place (matching the serving layer's relation semantics), upserts of
// an unknown or deleted id append, deletes mark the slot dead; finish
// compacts the survivors in order. Applying the same frame twice
// converges, which is what makes segment-overlapping replay and
// crash-then-reingest idempotent.
//
// The id→slot map is lazy: until the first delete frame, record frames
// are accumulated without any per-record bookkeeping, and index
// reconstructs the exact eager state from the accumulated rows (first
// live occurrence keeps the slot, later occurrences replace it in
// place). A mutation-free log — the common restart — replays with no
// map at all, which keeps recovery at its pre-mutation cost.
type replayState struct {
	rows    []store.Record
	live    []bool      // nil while pos is nil (everything provisionally live)
	pos     map[int]int // id → newest live slot in rows; nil until indexed
	dead    int
	applied bool // a WAL frame landed on top of the base
}

// newReplayState adopts base (the segment's records) without copying;
// the caller hands over ownership.
func newReplayState(base []store.Record) *replayState {
	return &replayState{rows: base}
}

// index builds pos/live from the accumulated rows by replaying them
// with upsert semantics, exactly as eager tracking would have: a
// duplicate id replaces the record at its first live slot and the
// later slot dies, so slot order is preserved.
func (st *replayState) index() {
	if st.pos != nil {
		return
	}
	st.pos = make(map[int]int, len(st.rows))
	st.live = make([]bool, len(st.rows))
	for i, r := range st.rows {
		if p, ok := st.pos[r.ID]; ok && st.live[p] {
			st.rows[p] = r
			st.dead++
			continue
		}
		st.pos[r.ID] = i
		st.live[i] = true
	}
}

func (st *replayState) apply(b walBatch) {
	st.applied = true
	switch b.op {
	case opAppend, opUpsert:
		if st.pos == nil {
			// No delete seen yet: defer replace resolution to index.
			st.rows = append(st.rows, b.recs...)
			return
		}
		for _, r := range b.recs {
			if p, ok := st.pos[r.ID]; ok && st.live[p] {
				st.rows[p] = r
				continue
			}
			st.pos[r.ID] = len(st.rows)
			st.rows = append(st.rows, r)
			st.live = append(st.live, true)
		}
	case opDelete:
		st.index()
		for _, id := range b.ids {
			if p, ok := st.pos[id]; ok && st.live[p] {
				st.live[p] = false
				st.dead++
			}
		}
	}
}

// finish returns the live records in slot order. It resolves any
// still-deferred duplicate appends/upserts first; a segment-only
// recovery (no WAL frames replayed) skips that entirely, since a
// segment is written from the live relation and cannot hold
// duplicates.
func (st *replayState) finish() []store.Record {
	if !st.applied && st.pos == nil {
		return st.rows
	}
	st.index()
	if st.dead == 0 {
		return st.rows
	}
	out := st.rows[:0]
	for i, r := range st.rows {
		if st.live[i] {
			out = append(out, r)
		}
	}
	return out
}

// scanWAL decodes as many frames as possible from a WAL file image.
func scanWAL(data []byte) walScan {
	if len(data) < len(walMagic) || [8]byte(data[:8]) != walMagic {
		err := errCorrupt
		if len(data) < len(walMagic) {
			err = errTruncated
		}
		return walScan{err: fmt.Errorf("%w: wal magic", err)}
	}
	sc := walScan{magicOK: true}
	offset := int64(len(walMagic))
	rest := data[len(walMagic):]
	for len(rest) > 0 {
		payload, n, err := decodeFrame(rest)
		if err != nil {
			sc.err = err
			return sc
		}
		b, err := decodeBatch(payload)
		if err != nil {
			sc.err = err
			return sc
		}
		offset += int64(n)
		b.end = offset
		sc.batches = append(sc.batches, b)
		rest = rest[n:]
	}
	return sc
}
