package persist

import (
	"os"
	"path/filepath"
	"repro/internal/errfs"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// walOp is one logical mutation in a test scenario, mirrored into both
// the log under test and the reference model.
type walOp struct {
	op   uint32
	recs []store.Record
	ids  []int
}

// applyModel replays ops through the documented replay semantics:
// upsert-in-place for live ids, append otherwise, delete is a no-op on
// unknown ids. The model is the oracle the recovery assertions use.
func applyModel(live []store.Record, ops ...walOp) []store.Record {
	out := append([]store.Record(nil), live...)
	find := func(id int) int {
		for i, r := range out {
			if r.ID == id {
				return i
			}
		}
		return -1
	}
	for _, o := range ops {
		switch o.op {
		case opAppend, opUpsert:
			for _, r := range o.recs {
				if p := find(r.ID); p >= 0 {
					out[p] = r
				} else {
					out = append(out, r)
				}
			}
		case opDelete:
			for _, id := range o.ids {
				if p := find(id); p >= 0 {
					out = append(out[:p], out[p+1:]...)
				}
			}
		}
	}
	return out
}

// appendOp writes one walOp through the public Log API.
func appendOp(t *testing.T, l *Log, o walOp) uint64 {
	t.Helper()
	var seq uint64
	var err error
	switch o.op {
	case opAppend:
		seq, err = l.Append(o.recs)
	case opUpsert:
		seq, err = l.AppendUpsert(o.recs)
	case opDelete:
		seq, err = l.AppendDelete(o.ids)
	}
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func rec(id int, base float64) store.Record {
	return store.Record{ID: id, Vec: vec.Vector{base, base + 1, base + 2}}
}

// mutationOps is the shared scenario: inserts, an upsert mixing
// replace and insert, deletes including an id never seen and an id
// already upserted.
func mutationOps() []walOp {
	return []walOp{
		{op: opAppend, recs: []store.Record{rec(1, 10), rec(2, 20), rec(3, 30)}},
		{op: opUpsert, recs: []store.Record{rec(2, 200), rec(4, 40)}},
		{op: opDelete, ids: []int{3, 777}},
		{op: opUpsert, recs: []store.Record{rec(3, 300)}},
		{op: opDelete, ids: []int{1}},
	}
}

func TestMutationReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncAlways))
	ops := mutationOps()
	for _, o := range ops {
		appendOp(t, l, o)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want := applyModel(nil, ops...)
	for i := 0; i < 3; i++ { // repeated recovery must be idempotent
		l2, rcv, err := Open(dir, testPolicy(FsyncAlways))
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if rcv.LastSeq != uint64(len(ops)) {
			t.Fatalf("LastSeq %d, want %d", rcv.LastSeq, len(ops))
		}
		checkRecovered(t, rcv, want)
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMutationReplaySegmentOverlap checkpoints mid-scenario while the
// WAL keeps every frame: replay must skip the frames the segment
// covers rather than double-applying upserts and deletes.
func TestMutationReplaySegmentOverlap(t *testing.T) {
	ops := mutationOps()
	for split := 1; split < len(ops); split++ {
		dir := t.TempDir()
		l := mustCreate(t, dir, testPolicy(FsyncNever))
		for _, o := range ops {
			appendOp(t, l, o)
		}
		// Segment materializes the live set after ops[:split]; the WAL
		// still holds all frames (written directly, like a crash between
		// segment rename and WAL cleanup).
		if _, err := writeSegment(errfs.OS, dir, uint64(split), applyModel(nil, ops[:split]...), PrecisionF64); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, rcv, err := Open(dir, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("split=%d: %v", split, err)
		}
		checkRecovered(t, rcv, applyModel(nil, ops...))
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashTornMutationFrames cuts the WAL at every byte offset of the
// mutation frames: recovery must materialize exactly the ops whose
// frames are fully durable.
func TestCrashTornMutationFrames(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	ops := mutationOps()
	for _, o := range ops {
		appendOp(t, l, o)
	}
	active := l.active
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, active))
	if err != nil {
		t.Fatal(err)
	}
	sc := scanWAL(full)
	if sc.err != nil || len(sc.batches) != len(ops) {
		t.Fatalf("fixture scan: err=%v batches=%d", sc.err, len(sc.batches))
	}
	for cut := int64(len(walMagic)); cut <= int64(len(full)); cut++ {
		crashed := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crashed, active), cut); err != nil {
			t.Fatal(err)
		}
		durable := 0
		for durable < len(ops) && sc.batches[durable].end <= cut {
			durable++
		}
		l2, rcv, err := Open(crashed, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		if rcv.LastSeq != uint64(durable) {
			t.Fatalf("cut=%d: LastSeq %d, want %d", cut, rcv.LastSeq, durable)
		}
		checkRecovered(t, rcv, applyModel(nil, ops[:durable]...))
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestUpsertCrashReingestIdempotent is the retry path: an upsert frame
// tears mid-write, the client re-sends it after recovery, and the final
// state must equal the never-crashed run — including when the original
// frame survived intact (duplicate application).
func TestUpsertCrashReingestIdempotent(t *testing.T) {
	base := []store.Record{rec(1, 10), rec(2, 20)}
	up := walOp{op: opUpsert, recs: []store.Record{rec(2, 200), rec(5, 50)}}
	want := applyModel(base, up)
	for _, tear := range []int{0, 10, -1} { // full tear, partial frame, intact
		dir := t.TempDir()
		l := mustCreate(t, dir, testPolicy(FsyncNever))
		if _, err := l.Append(base); err != nil {
			t.Fatal(err)
		}
		tail := l.walBytes
		appendOp(t, l, up)
		active := l.active
		full := l.walBytes
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		cut := full
		if tear >= 0 {
			cut = tail + int64(tear)
		}
		if err := os.Truncate(filepath.Join(dir, active), cut); err != nil {
			t.Fatal(err)
		}
		l2, _, err := Open(dir, testPolicy(FsyncNever))
		if err != nil {
			t.Fatal(err)
		}
		appendOp(t, l2, up) // client retries
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		_, rcv, err := Open(dir, testPolicy(FsyncNever))
		if err != nil {
			t.Fatal(err)
		}
		checkRecovered(t, rcv, want)
	}
}

func TestDeleteFrameRoundTrip(t *testing.T) {
	for _, ids := range [][]int{nil, {7}, {0, -3, 1 << 45, 7, 7}} {
		payload := encodeDelete(nil, 9, ids)
		b, err := decodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		if b.seq != 9 || b.op != opDelete || len(b.ids) != len(ids) {
			t.Fatalf("decoded seq=%d op=%d n=%d", b.seq, b.op, len(b.ids))
		}
		for i := range ids {
			if b.ids[i] != ids[i] {
				t.Fatalf("id %d: %d != %d", i, b.ids[i], ids[i])
			}
		}
	}
}

func TestDecodeBatchRejectsBadOps(t *testing.T) {
	// Unknown op code.
	bad := encodeBatch(nil, 1, 7, nil)
	if _, err := decodeBatch(bad); err == nil {
		t.Fatal("accepted op 7")
	}
	// Delete frame whose id count disagrees with the payload size.
	short := encodeDelete(nil, 1, []int{1, 2, 3})
	if _, err := decodeBatch(short[:len(short)-8]); err == nil {
		t.Fatal("accepted short delete payload")
	}
}
