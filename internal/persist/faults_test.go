package persist

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/errfs"
	"repro/internal/store"
)

// faultyPolicy is testPolicy routed through a fault injector.
func faultyPolicy(mode FsyncMode, f *errfs.Faulty) Policy {
	pol := testPolicy(mode)
	pol.FS = f
	return pol
}

// TestSyncFaultLatchesAndRepairs drives the full degrade/repair cycle
// at the log layer: a WAL fsync failure latches the log (appends fail
// fast, the fault hook fires), Repair with the fault still present is
// refused, and Repair after the fault heals rotates to a fresh WAL and
// serves appends again — with recovery seeing exactly the acknowledged
// batches, never the rejected one.
func TestSyncFaultLatchesAndRepairs(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	l := mustCreate(t, dir, faultyPolicy(FsyncAlways, f))

	b1, b2, b3 := testBatch(0, 4, 3), testBatch(4, 4, 3), testBatch(8, 4, 3)
	if _, err := l.Append(b1); err != nil {
		t.Fatal(err)
	}

	hookErr := make(chan error, 8)
	l.SetFaultHook(func(err error) { hookErr <- err })
	f.Inject(errfs.Rule{Op: errfs.OpSync, Path: "wal-"})

	if _, err := l.Append(b2); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append under sync fault: %v, want EIO", err)
	}
	select {
	case err := <-hookErr:
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("fault hook got %v, want EIO", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fault hook never fired")
	}
	if l.Failed() == nil {
		t.Fatal("log did not latch the sync failure")
	}
	// Latched: the next append fails fast without touching the disk.
	if _, err := l.Append(b3); err == nil {
		t.Fatal("append on a latched log succeeded")
	}
	// Repair needs a working disk: with the fault still injected the
	// latch must stay set (clearing it would un-prove the torn tail).
	if err := l.Repair(); err == nil {
		t.Fatal("Repair succeeded while the disk still faults syncs")
	}
	if l.Failed() == nil {
		t.Fatal("failed Repair cleared the latch")
	}

	f.Clear()
	if err := l.Repair(); err != nil {
		t.Fatalf("Repair after faults healed: %v", err)
	}
	if l.Failed() != nil {
		t.Fatalf("latch still set after successful Repair: %v", l.Failed())
	}
	if _, err := l.Append(b3); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees the acknowledged batches and only those: b2 was
	// reported rejected, so it must not resurrect.
	_, rec, err := Open(dir, testPolicy(FsyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, rec, b1, b3)
}

// TestENOSPCMidCheckpoint is the satellite scenario: a checkpoint's
// segment write dies half-way with ENOSPC. The torn temp file must
// never shadow the previous good segment, recovery must reproduce the
// exact pre-fault state plus the acknowledged WAL tail, and once the
// "disk" heals a later checkpoint must succeed.
func TestENOSPCMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	l := mustCreate(t, dir, faultyPolicy(FsyncAlways, f))

	b1, b2 := testBatch(0, 6, 3), testBatch(6, 6, 3)
	if _, err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	// A first, clean checkpoint: segment 1 on disk.
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return b1, 1 }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(b2); err != nil {
		t.Fatal(err)
	}

	// Half the segment lands, then ENOSPC. The write goes to the .tmp
	// path, so the torn bytes never carry the segment name.
	f.Inject(errfs.Rule{Op: errfs.OpWrite, Path: segPrefix, Kind: errfs.KindShortWrite, Count: 1})
	snap := func() ([]store.Record, uint64) { return append(append([]store.Record{}, b1...), b2...), 2 }
	if err := l.Checkpoint(snap); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("checkpoint under ENOSPC: %v, want ENOSPC", err)
	}
	// The failed checkpoint already rotated the WAL; the append path is
	// not latched — only segment writing broke.
	if l.Failed() != nil {
		t.Fatalf("segment-write failure latched the append path: %v", l.Failed())
	}

	// The old segment is still the newest *valid* one and recovery from
	// a copy of the directory reproduces b1+b2 exactly.
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("good segment gone after failed checkpoint: %v", err)
	}
	copyDir := t.TempDir()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(copyDir, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l2, rec, err := Open(copyDir, testPolicy(FsyncAlways))
	if err != nil {
		t.Fatalf("recovery after torn checkpoint: %v", err)
	}
	checkRecovered(t, rec, b1, b2)
	l2.Close()

	// Healed: the retried checkpoint writes a complete segment 2 and a
	// scrub pass over the directory comes back clean.
	f.Clear()
	if err := l.Checkpoint(snap); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Fatalf("healed checkpoint left no segment 2: %v", err)
	}
	if n, err := l.ScrubSegments(); err != nil || n == 0 {
		t.Fatalf("scrub after heal: checked=%d err=%v", n, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubDetectsCorruptionAndDropsSuperseded: flipping one byte in a
// retained segment turns the scrub red; DropCorruptSegments removes it
// only when a newer valid segment supersedes it, and never touches the
// newest one.
func TestScrubDetectsCorruptionAndDropsSuperseded(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncAlways))
	defer l.Close()

	b1, b2 := testBatch(0, 5, 3), testBatch(5, 5, 3)
	if _, err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return b1, 1 }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(b2); err != nil {
		t.Fatal(err)
	}
	both := append(append([]store.Record{}, b1...), b2...)
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return both, 2 }); err != nil {
		t.Fatal(err)
	}
	if n, err := l.ScrubSegments(); err != nil || n != 2 {
		t.Fatalf("clean scrub: checked=%d err=%v, want 2 segments", n, err)
	}

	// Corrupt the older segment (1): scrub reports it, drop removes it
	// because segment 2 verifies.
	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ScrubSegments(); err == nil {
		t.Fatal("scrub missed a corrupt segment")
	}
	removed, err := l.DropCorruptSegments()
	if err != nil || removed != 1 {
		t.Fatalf("DropCorruptSegments: removed=%d err=%v, want 1", removed, err)
	}
	if _, err := os.Stat(seg1); !os.IsNotExist(err) {
		t.Fatalf("corrupt superseded segment still on disk: %v", err)
	}
	if n, err := l.ScrubSegments(); err != nil || n != 1 {
		t.Fatalf("scrub after drop: checked=%d err=%v", n, err)
	}

	// Corrupt the newest segment: drop must refuse (recovery's fallback
	// chain owns that case), scrub keeps flagging it.
	seg2 := filepath.Join(dir, segName(2))
	data, err = os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if removed, _ := l.DropCorruptSegments(); removed != 0 {
		t.Fatalf("DropCorruptSegments removed the newest segment (%d removed)", removed)
	}
	if _, err := os.Stat(seg2); err != nil {
		t.Fatal("newest segment vanished")
	}
	if _, err := l.ScrubSegments(); err == nil {
		t.Fatal("scrub passed a corrupt newest segment")
	}
}

// TestTornRenameOnSegmentPublish: the rename that publishes a segment
// dies leaving a torn destination. Recovery must fall back past the
// garbage file to the previous good segment + WAL and reproduce every
// acknowledged batch.
func TestTornRenameOnSegmentPublish(t *testing.T) {
	dir := t.TempDir()
	f := errfs.NewFaulty(nil, 1)
	l := mustCreate(t, dir, faultyPolicy(FsyncAlways, f))

	b1, b2 := testBatch(0, 6, 3), testBatch(6, 6, 3)
	if _, err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return b1, 1 }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(b2); err != nil {
		t.Fatal(err)
	}
	f.Inject(errfs.Rule{Op: errfs.OpRename, Path: segPrefix, Kind: errfs.KindTornRename, Count: 1})
	snap := func() ([]store.Record, uint64) { return append(append([]store.Record{}, b1...), b2...), 2 }
	if err := l.Checkpoint(snap); err == nil {
		t.Fatal("checkpoint with torn publish rename succeeded")
	}
	// The torn destination fails its CRC, so recovery must skip it.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, testPolicy(FsyncAlways))
	if err != nil {
		t.Fatalf("recovery after torn segment publish: %v", err)
	}
	defer l2.Close()
	checkRecovered(t, rec, b1, b2)
	// And the torn file is droppable once a valid newer segment exists.
	if err := l2.Checkpoint(snap); err != nil {
		t.Fatalf("checkpoint on recovered log: %v", err)
	}
	if _, err := l2.ScrubSegments(); err != nil {
		if _, derr := l2.DropCorruptSegments(); derr != nil {
			t.Fatalf("drop after torn publish: %v", derr)
		}
		if _, err := l2.ScrubSegments(); err != nil {
			t.Fatalf("scrub still red after drop: %v", err)
		}
	}
}
