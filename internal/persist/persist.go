// Package persist is the durable storage subsystem behind the serving
// layer: a per-collection write-ahead log plus immutable columnar
// segment snapshots, so a restarted server recovers every acknowledged
// write by loading the newest valid segment and replaying the WAL tail.
//
// On-disk layout of one collection directory:
//
//	manifest.json            collection name, shard count, index spec
//	segment-<seq>.seg        immutable snapshot of records 1..seq
//	wal-<first>.log          frames with sequence numbers >= first
//
// The WAL is a sequence of length+CRC32C framed record batches; exactly
// one WAL file is active at a time (older ones exist only transiently
// while a checkpoint is compacting them into a segment). A checkpoint
// rotates the WAL, writes a segment covering every published record,
// and deletes the rotated files, so recovery cost stays bounded by the
// checkpoint threshold rather than the collection's lifetime.
//
// Recovery semantics: the newest segment whose checksum verifies is
// loaded, then WAL frames with sequence numbers above the segment's are
// replayed in order until the first truncated, corrupt, or
// out-of-sequence frame. Everything after that point is discarded (the
// active WAL is truncated back to the last good frame), so the store
// always reopens to the longest durable prefix of acknowledged writes
// and never serves corrupt data.
package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/errfs"
)

// FsyncMode selects when WAL appends are made durable.
type FsyncMode int

const (
	// FsyncInterval (the default) fsyncs the WAL on a background timer:
	// a crash loses at most the last Interval of acknowledged writes.
	FsyncInterval FsyncMode = iota
	// FsyncAlways fsyncs before every append returns: an acknowledged
	// write survives any crash.
	FsyncAlways
	// FsyncNever leaves flushing to the OS page cache: a clean process
	// exit (including kill -9) loses nothing, a power failure may lose
	// everything since the last checkpoint or rotation.
	FsyncNever
)

// String returns the flag spelling of the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncMode parses the -fsync flag spelling ("" = interval).
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync mode %q (want always, interval or never)", s)
}

// Policy configures a Log's durability/compaction behavior. Zero
// values select defaults.
type Policy struct {
	// Mode is the WAL fsync policy (default FsyncInterval).
	Mode FsyncMode
	// Interval is the background fsync period for FsyncInterval
	// (default 100ms).
	Interval time.Duration
	// CheckpointBytes is the WAL size above which MaybeCheckpoint
	// compacts the log into a segment (default 64 MiB).
	CheckpointBytes int64
	// FS routes every file operation the log performs. Nil means the
	// real filesystem (errfs.OS); tests and chaos harnesses install an
	// errfs.Faulty to inject disk faults without patching call sites.
	FS errfs.FS
}

func (p *Policy) withDefaults() {
	if p.Interval <= 0 {
		p.Interval = 100 * time.Millisecond
	}
	if p.CheckpointBytes <= 0 {
		p.CheckpointBytes = 64 << 20
	}
	if p.FS == nil {
		p.FS = errfs.OS
	}
}

// Manifest describes a persisted collection. Index is an opaque blob
// owned by the serving layer (its IndexSpec JSON), so persist stays
// independent of the index engines. Seed pins the collection's hashing
// seed so a recovered collection rebuilds its (approximate) indexes
// exactly as the original did, regardless of recovery order.
type Manifest struct {
	Name   string          `json:"name"`
	Shards int             `json:"shards"`
	Seed   uint64          `json:"seed,omitempty"`
	Index  json.RawMessage `json:"index,omitempty"`
}

const (
	manifestName = "manifest.json"
	lockName     = "lock"
)

// ErrClosed marks operations against a log that has been closed (e.g.
// a background scrub or checkpoint racing a Drop). Callers use it to
// tell shutdown races from real disk faults.
var ErrClosed = errors.New("persist: log is closed")

const (
	walPrefix  = "wal-"
	walSuffix  = ".log"
	segPrefix  = "segment-"
	segSuffix  = ".seg"
	tmpSuffix  = ".tmp"
	seqNameFmt = "%020d"
)

func walName(firstSeq uint64) string {
	return walPrefix + fmt.Sprintf(seqNameFmt, firstSeq) + walSuffix
}

func segName(seq uint64) string {
	return segPrefix + fmt.Sprintf(seqNameFmt, seq) + segSuffix
}

// parseSeqName extracts the sequence number from a wal/segment file
// name of the given shape.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSeqFiles returns the sequence numbers of every well-formed
// prefix/suffix file in dir, ascending.
func listSeqFiles(fsys errfs.FS, dir, prefix, suffix string) ([]uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeqName(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// writeFileAtomic writes name in dir via a temp file + fsync + rename +
// directory fsync, so a crash leaves either the old file (or nothing)
// or the complete new one — never a partial write under the real name.
func writeFileAtomic(fsys errfs.FS, dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+tmpSuffix)
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// writeManifest persists the manifest atomically.
func writeManifest(fsys errfs.FS, dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(fsys, dir, manifestName, append(data, '\n'))
}

// ReadManifest loads a collection directory's manifest.
func ReadManifest(dir string) (Manifest, error) {
	return readManifest(errfs.OS, dir)
}

func readManifest(fsys errfs.FS, dir string) (Manifest, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("persist: %s: bad manifest: %w", dir, err)
	}
	return m, nil
}

// HasManifest reports whether dir looks like a persisted collection.
func HasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}
