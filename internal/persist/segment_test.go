package persist

import (
	"os"
	"path/filepath"
	"repro/internal/errfs"
	"testing"
)

func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100} {
		recs := testBatch(1000, n, 8)
		data, err := encodeSegment(77, recs, PrecisionF64)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}
		seq, got, err := decodeSegment(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if seq != 77 {
			t.Fatalf("n=%d: seq %d, want 77", n, seq)
		}
		if len(got) != len(recs) {
			t.Fatalf("n=%d: %d records, want %d", n, len(got), len(recs))
		}
		for i := range recs {
			if !recordsEqual(recs[i], got[i]) {
				t.Fatalf("n=%d: record %d differs", n, i)
			}
		}
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	recs := testBatch(0, 20, 6)
	data, err := encodeSegment(5, recs, PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at a spread of offsets.
	for cut := 0; cut < len(data); cut += 13 {
		if _, _, err := decodeSegment(data[:cut]); err == nil {
			t.Fatalf("cut=%d: decode accepted truncated segment", cut)
		}
	}
	// Bit flips at a spread of offsets (covering header, ids, floats,
	// attrs and the trailing checksum itself).
	for off := 0; off < len(data); off += 11 {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x01
		if _, _, err := decodeSegment(bad); err == nil {
			t.Fatalf("off=%d: decode accepted corrupt segment", off)
		}
	}
}

func TestSegmentWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	recs := testBatch(50, 30, 4)
	if _, err := writeSegment(errfs.OS, dir, 9, recs, PrecisionF64); err != nil {
		t.Fatal(err)
	}
	// The temp file must be gone, the real file present.
	if _, err := os.Stat(filepath.Join(dir, segName(9)+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatalf("temp segment file left behind: %v", err)
	}
	seq, got, size, err := readSegment(errfs.OS, dir, 9)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("segment size %d", size)
	}
	if seq != 9 || len(got) != len(recs) {
		t.Fatalf("read back seq=%d n=%d", seq, len(got))
	}
	for i := range recs {
		if !recordsEqual(recs[i], got[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSegmentRejectsMixedDimensions(t *testing.T) {
	recs := testBatch(0, 2, 4)
	recs[1].Vec = recs[1].Vec[:3]
	if _, err := encodeSegment(1, recs, PrecisionF64); err == nil {
		t.Fatal("encode accepted mixed dimensions")
	}
}
