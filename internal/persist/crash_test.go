package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"repro/internal/errfs"
	"testing"

	"repro/internal/store"
)

// copyDir clones a collection directory into a fresh temp dir, so each
// simulated crash mutates its own copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("unexpected subdirectory %s", e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildCrashFixture writes nBatches batches and returns the closed
// directory plus the batches and the active WAL file name.
func buildCrashFixture(t *testing.T, nBatches, recsPer, dim int) (string, [][]store.Record, string) {
	t.Helper()
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	batches := make([][]store.Record, nBatches)
	for i := range batches {
		batches[i] = testBatch(i*100, recsPer, dim)
		if _, err := l.Append(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	active := l.active
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, batches, active
}

// TestCrashTruncateEveryOffset is the mid-append kill harness: the WAL
// is cut at every byte offset of the last frame (simulating a crash at
// that exact point of the write) and recovery must yield exactly the
// longest durable prefix — every complete earlier batch, the last one
// only once its final byte is on disk — and reopen appendable.
func TestCrashTruncateEveryOffset(t *testing.T) {
	const nBatches = 3
	dir, batches, active := buildCrashFixture(t, nBatches, 4, 5)
	walPath := filepath.Join(dir, active)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the last frame's start by rescanning.
	sc := scanWAL(full)
	if sc.err != nil || len(sc.batches) != nBatches {
		t.Fatalf("fixture scan: err=%v batches=%d", sc.err, len(sc.batches))
	}
	lastStart := sc.batches[nBatches-2].end
	if int64(len(full)) != sc.batches[nBatches-1].end {
		t.Fatalf("fixture has trailing bytes")
	}

	for cut := lastStart; cut <= int64(len(full)); cut++ {
		crashed := copyDir(t, dir)
		if err := os.Truncate(filepath.Join(crashed, active), cut); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(crashed, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		want := batches[:nBatches-1]
		wantSeq := uint64(nBatches - 1)
		if cut == int64(len(full)) {
			want = batches
			wantSeq = nBatches
		}
		if rec.LastSeq != wantSeq {
			t.Fatalf("cut=%d: LastSeq %d, want %d", cut, rec.LastSeq, wantSeq)
		}
		checkRecovered(t, rec, want...)
		// The torn tail must be gone: appending and reopening again
		// yields prefix + new batch.
		extra := testBatch(9000, 2, 5)
		if seq, err := l.Append(extra); err != nil || seq != wantSeq+1 {
			t.Fatalf("cut=%d: append after recovery: seq=%d err=%v", cut, seq, err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, rec2, err := Open(crashed, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		checkRecovered(t, rec2, append(append([][]store.Record{}, want...), extra)...)
	}
}

// TestCrashBitFlips flips one byte at a spread of WAL offsets: recovery
// must stop before the damaged frame and never surface corrupt records.
func TestCrashBitFlips(t *testing.T) {
	const nBatches = 3
	dir, batches, active := buildCrashFixture(t, nBatches, 3, 4)
	walPath := filepath.Join(dir, active)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	sc := scanWAL(full)
	frameStart := func(i int) int64 {
		if i == 0 {
			return int64(len(walMagic))
		}
		return sc.batches[i-1].end
	}
	for off := int64(0); off < int64(len(full)); off += 5 {
		crashed := copyDir(t, dir)
		p := filepath.Join(crashed, active)
		data := append([]byte(nil), full...)
		data[off] ^= 0x10
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, rec, err := Open(crashed, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("off=%d: open: %v", off, err)
		}
		// The damaged byte lives in some frame i (or the magic):
		// everything before that frame must be recovered, nothing from
		// it or after. (A flip inside a frame's length field can only
		// shrink/grow the claimed frame, which breaks its checksum or
		// truncates — either way the prefix property holds.)
		hurt := 0
		if off >= int64(len(walMagic)) {
			hurt = nBatches
			for i := 0; i < nBatches; i++ {
				if off >= frameStart(i) && off < sc.batches[i].end {
					hurt = i
					break
				}
			}
		}
		checkRecovered(t, rec, batches[:hurt]...)
	}
}

// TestCrashTornSegmentFallsBack corrupts the newest segment while the
// WAL still holds every frame (the state a crash leaves when it dies
// after the segment rename but before anything is deleted — or when
// the rename itself tore). Recovery must ignore the bad segment and
// rebuild everything from the WAL (or an older good segment).
func TestCrashTornSegmentFallsBack(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	var all []store.Record
	for i := 0; i < 3; i++ {
		b := testBatch(i*10, 4, 3)
		all = append(all, b...)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Write a segment covering everything but keep the WAL by writing
	// it directly instead of going through Checkpoint.
	if _, err := writeSegment(errfs.OS, dir, 3, all, PrecisionF64); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"bit-flip", func(d []byte) []byte { d[len(d)/2] ^= 0x01; return d }},
		{"truncated", func(d []byte) []byte { return d[:len(d)*2/3] }},
		{"empty", func(d []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			crashed := copyDir(t, dir)
			p := filepath.Join(crashed, segName(3))
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			l2, rec, err := Open(crashed, testPolicy(FsyncNever))
			if err != nil {
				t.Fatalf("open with torn segment: %v", err)
			}
			defer l2.Close()
			if rec.LastSeq != 3 {
				t.Fatalf("LastSeq %d, want 3", rec.LastSeq)
			}
			checkRecovered(t, rec, all)
		})
	}
}

// TestCrashMidCheckpointLeftoverTemp simulates dying while the segment
// temp file was being written: the .tmp must be ignored and the WAL
// replayed as usual.
func TestCrashMidCheckpointLeftoverTemp(t *testing.T) {
	dir, batches, _ := buildCrashFixture(t, 2, 3, 3)
	junk := []byte("partial segment write")
	if err := os.WriteFile(filepath.Join(dir, segName(2)+tmpSuffix), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(dir, testPolicy(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	checkRecovered(t, rec, batches...)
}

// TestGapRefusesOpen: when the WAL frames that a (now corrupt) segment
// covered are already deleted, recovery cannot reconstruct the durable
// prefix — Open must refuse loudly instead of silently truncating away
// the still-valid newer tail (which would destroy the evidence an
// operator needs to restore the segment from backup).
func TestGapRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	var all []store.Record
	for i := 0; i < 3; i++ {
		b := testBatch(i*10, 3, 4)
		all = append(all, b...)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint compacts frames 1..3 into segment-3 and deletes the
	// old WAL; frame 4 then lands in the fresh WAL.
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return all, l.LastSeq() }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(testBatch(100, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the only segment: batches 1..3 are now unrecoverable and
	// the WAL starts at frame 4 — an unbridgeable gap.
	p := filepath.Join(dir, segName(3))
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	before := dirSnapshot(t, dir)
	if _, _, err := Open(dir, testPolicy(FsyncNever)); err == nil {
		t.Fatal("Open succeeded despite an unbridgeable WAL gap")
	}
	// Nothing on disk may have been modified by the refused open.
	if after := dirSnapshot(t, dir); !reflect.DeepEqual(before, after) {
		t.Fatalf("refused Open modified the directory:\n before %v\n after  %v", before, after)
	}
}

// dirSnapshot maps file name -> size for every file in dir.
func dirSnapshot(t *testing.T, dir string) map[string]int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = info.Size()
	}
	return out
}

// TestRecoveredPrefixNeverRegresses: recovery after recovery (no new
// writes) must be idempotent.
func TestRecoverIdempotent(t *testing.T) {
	dir, batches, _ := buildCrashFixture(t, 3, 2, 4)
	for i := 0; i < 3; i++ {
		l, rec, err := Open(dir, testPolicy(FsyncNever))
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		checkRecovered(t, rec, batches...)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
