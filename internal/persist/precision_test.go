package persist

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/flat"
	"repro/internal/store"
)

// roundBatch32 rounds every vector element to binary32, the invariant
// the f32 ingest path establishes before anything reaches the WAL —
// and the reason an f32 segment is lossless.
func roundBatch32(recs []store.Record) []store.Record {
	out := make([]store.Record, len(recs))
	for i, r := range recs {
		out[i] = r
		v := make([]float64, len(r.Vec))
		for j, x := range r.Vec {
			v[j] = float64(float32(x))
		}
		out[i].Vec = v
	}
	return out
}

// TestSegmentPrecisionRoundTrip covers the format-2 payloads: f32
// segments must reproduce pre-rounded vectors bit for bit, and int8
// segments must reproduce the exact f64 truth rows (the codes block is
// verified internally by the decoder).
func TestSegmentPrecisionRoundTrip(t *testing.T) {
	for _, prec := range []Precision{PrecisionF32, PrecisionI8} {
		for _, n := range []int{0, 1, 100} {
			recs := testBatch(1000, n, 8)
			if prec == PrecisionF32 {
				recs = roundBatch32(recs)
			}
			data, err := encodeSegment(77, recs, prec)
			if err != nil {
				t.Fatalf("%s n=%d: encode: %v", prec, n, err)
			}
			if format := binary.LittleEndian.Uint32(data[8:]); format != segFormatV2 {
				t.Fatalf("%s n=%d: wrote format %d, want %d", prec, n, format, segFormatV2)
			}
			seq, got, err := decodeSegment(data)
			if err != nil {
				t.Fatalf("%s n=%d: decode: %v", prec, n, err)
			}
			if seq != 77 || len(got) != len(recs) {
				t.Fatalf("%s n=%d: seq=%d records=%d", prec, n, seq, len(got))
			}
			for i := range recs {
				if !recordsEqual(recs[i], got[i]) {
					t.Fatalf("%s n=%d: record %d differs:\n got  %+v\n want %+v",
						prec, n, i, got[i], recs[i])
				}
			}
		}
	}
}

// TestSegmentV2RejectsCorruption repeats the bit-flip sweep on the
// format-2 encodings.
func TestSegmentV2RejectsCorruption(t *testing.T) {
	for _, prec := range []Precision{PrecisionF32, PrecisionI8} {
		recs := testBatch(0, 20, 6)
		if prec == PrecisionF32 {
			recs = roundBatch32(recs)
		}
		data, err := encodeSegment(5, recs, prec)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(data); cut += 13 {
			if _, _, err := decodeSegment(data[:cut]); err == nil {
				t.Fatalf("%s cut=%d: decode accepted truncated segment", prec, cut)
			}
		}
		for off := 0; off < len(data); off += 11 {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x01
			if _, _, err := decodeSegment(bad); err == nil {
				t.Fatalf("%s off=%d: decode accepted corrupt segment", prec, off)
			}
		}
	}
}

// TestSegmentI8RequantizationCheck rebuilds an int8 segment with one
// code flipped but all checksums patched up: the only remaining defense
// is the decoder's requantize-and-compare, which must reject it.
func TestSegmentI8RequantizationCheck(t *testing.T) {
	recs := testBatch(10, 8, 4)
	data, err := encodeSegment(3, recs, PrecisionI8)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the FLATBLK3 block inside the image.
	magic := []byte("FLATBLK3")
	off := -1
	for i := 0; i+len(magic) <= len(data); i++ {
		if string(data[i:i+len(magic)]) == string(magic) {
			off = i
			break
		}
	}
	if off < 0 {
		t.Fatal("no FLATBLK3 block in int8 segment")
	}
	dim := binary.LittleEndian.Uint32(data[off+8:])
	count := binary.LittleEndian.Uint64(data[off+12:])
	blockLen := 28 + int(dim)*int(count) + 4
	bad := append([]byte(nil), data...)
	bad[off+28] ^= 0x7f // first code
	// Patch the block CRC, then the segment CRC, so only the
	// requantization comparison can object.
	castag := crc32.MakeTable(crc32.Castagnoli)
	binary.LittleEndian.PutUint32(bad[off+blockLen-4:], crc32.Checksum(bad[off:off+blockLen-4], castag))
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.Checksum(bad[8:len(bad)-4], castag))
	if _, _, err := decodeSegment(bad); err == nil {
		t.Fatal("decode accepted int8 codes that do not requantize from the truth rows")
	}
	// Sanity: the untampered image still decodes.
	if _, _, err := decodeSegment(data); err != nil {
		t.Fatalf("pristine segment failed: %v", err)
	}
}

// TestLogPrecisionCheckpointRecovery runs the full durability cycle at
// int8 precision: append → checkpoint (format-2 segment) → more
// appends → reopen. Recovery must reproduce every acknowledged record
// bit for bit, proving the quantization scale round-trips through a
// restart (the decoder verifies codes against requantized truth).
func TestLogPrecisionCheckpointRecovery(t *testing.T) {
	for _, prec := range []Precision{PrecisionF32, PrecisionI8} {
		dir := filepath.Join(t.TempDir(), "col")
		l, err := Create(dir, Manifest{Name: "col"}, Policy{Mode: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		l.SetPrecision(prec)
		batch1 := testBatch(0, 40, 8)
		batch2 := testBatch(40, 25, 8)
		if prec == PrecisionF32 {
			batch1, batch2 = roundBatch32(batch1), roundBatch32(batch2)
		}
		if _, err := l.Append(batch1); err != nil {
			t.Fatal(err)
		}
		all := append(append([]store.Record(nil), batch1...), batch2...)
		if err := l.Checkpoint(func() ([]store.Record, uint64) { return batch1, 1 }); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(batch2); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// The checkpoint must have produced a format-2 segment.
		segData, err := os.ReadFile(filepath.Join(dir, segName(1)))
		if err != nil {
			t.Fatal(err)
		}
		if format := binary.LittleEndian.Uint32(segData[8:]); format != segFormatV2 {
			t.Fatalf("%s: checkpoint wrote format %d", prec, format)
		}
		l2, rec, err := Open(dir, Policy{Mode: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if len(rec.Recs) != len(all) {
			t.Fatalf("%s: recovered %d records, want %d", prec, len(rec.Recs), len(all))
		}
		for i := range all {
			if !recordsEqual(all[i], rec.Recs[i]) {
				t.Fatalf("%s: recovered record %d differs", prec, i)
			}
		}
	}
}

// TestStoreI8ScaleDeterminism double-checks the property recovery
// relies on: quantizing the same rows from scratch — as replay and
// compaction both do — always lands on the identical scale and codes.
func TestStoreI8ScaleDeterminism(t *testing.T) {
	recs := testBatch(7, 60, 8)
	build := func() *flat.StoreI8 {
		fs, err := flat.New(8)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := fs.Append(r.Vec); err != nil {
				t.Fatal(err)
			}
		}
		return flat.NewStoreI8(fs)
	}
	a, b := build(), build()
	if !a.Equal(b) {
		t.Fatal("rebuilding the int8 store changed codes or scale")
	}
	if math.IsNaN(a.Scale()) || a.Scale() <= 0 {
		t.Fatalf("scale %v", a.Scale())
	}
}
