package persist

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// testBatch builds a deterministic batch with IDs, attrs on some
// records, and awkward float values.
func testBatch(base, n, dim int) []store.Record {
	recs := make([]store.Record, n)
	for i := range recs {
		v := make(vec.Vector, dim)
		for j := range v {
			v[j] = float64(base+i)*0.25 - float64(j)*1e-3
		}
		if i == 0 {
			v[0] = math.Inf(1)
			if dim > 1 {
				v[1] = -0.0
			}
		}
		recs[i] = store.Record{ID: base + i, Vec: v}
		if i%3 == 0 {
			recs[i].Attrs = map[string]string{"kind": "test", "i": string(rune('a' + i%26))}
		}
	}
	return recs
}

func TestBatchRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7} {
		recs := testBatch(100, n, 5)
		payload := encodeBatch(nil, 42, opAppend, recs)
		b, err := decodeBatch(payload)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		got := b.recs
		if b.seq != 42 {
			t.Fatalf("n=%d: seq %d, want 42", n, b.seq)
		}
		if b.op != opAppend {
			t.Fatalf("n=%d: op %d, want append", n, b.op)
		}
		if len(got) != len(recs) {
			t.Fatalf("n=%d: %d records, want %d", n, len(got), len(recs))
		}
		for i := range recs {
			if !recordsEqual(recs[i], got[i]) {
				t.Fatalf("n=%d: record %d differs:\n got  %+v\n want %+v", n, i, got[i], recs[i])
			}
		}
	}
}

// recordsEqual compares bit-identically (NaN-safe, -0 vs +0 distinct).
func recordsEqual(a, b store.Record) bool {
	if a.ID != b.ID || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Vec {
		if math.Float64bits(a.Vec[i]) != math.Float64bits(b.Vec[i]) {
			return false
		}
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	return true
}

func TestEncodeBatchCanonical(t *testing.T) {
	recs := []store.Record{{
		ID:    1,
		Vec:   vec.Vector{1, 2},
		Attrs: map[string]string{"b": "2", "a": "1", "c": "3"},
	}}
	first := encodeBatch(nil, 1, opAppend, recs)
	for i := 0; i < 20; i++ {
		if got := encodeBatch(nil, 1, opAppend, recs); !reflect.DeepEqual(got, first) {
			t.Fatalf("encoding is not canonical across runs")
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	recs := testBatch(0, 4, 3)
	buf := make([]byte, frameHeaderSize)
	buf = encodeBatch(buf, 7, opAppend, recs)
	buf, err := finishFrame(buf, frameHeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	payload, n, err := decodeFrame(buf)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("frame size %d, want %d", n, len(buf))
	}
	if b, err := decodeBatch(payload); err != nil || b.seq != 7 {
		t.Fatalf("payload decode: seq=%d err=%v", b.seq, err)
	}
}

func TestDecodeFrameTruncatedAndCorrupt(t *testing.T) {
	buf := make([]byte, frameHeaderSize)
	buf = encodeBatch(buf, 1, opAppend, testBatch(0, 2, 4))
	buf, err := finishFrame(buf, frameHeaderSize)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix is a truncation, not corruption.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := decodeFrame(buf[:cut]); err == nil {
			t.Fatalf("cut=%d: decode succeeded on truncated frame", cut)
		}
	}
	// A flipped payload byte must fail the checksum.
	for off := frameHeaderSize; off < len(buf); off += 7 {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x40
		if _, _, err := decodeFrame(bad); err == nil {
			t.Fatalf("off=%d: decode accepted corrupt payload", off)
		}
	}
}

func TestScanWALStopsAtBadFrame(t *testing.T) {
	var data []byte
	data = append(data, walMagic[:]...)
	frameEnds := []int64{}
	for i := 0; i < 3; i++ {
		start := len(data)
		f := make([]byte, frameHeaderSize)
		f = encodeBatch(f, uint64(i+1), opAppend, testBatch(i*10, 2, 3))
		f, err := finishFrame(f, frameHeaderSize)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, f...)
		frameEnds = append(frameEnds, int64(start+len(f)))
	}
	sc := scanWAL(data)
	if sc.err != nil || len(sc.batches) != 3 {
		t.Fatalf("clean scan: err=%v batches=%d", sc.err, len(sc.batches))
	}
	for i, b := range sc.batches {
		if b.end != frameEnds[i] {
			t.Fatalf("batch %d end %d, want %d", i, b.end, frameEnds[i])
		}
	}

	// Corrupt the second frame: scan keeps frame 1 only.
	bad := append([]byte(nil), data...)
	bad[frameEnds[0]+frameHeaderSize+2] ^= 0xff
	sc = scanWAL(bad)
	if sc.err == nil {
		t.Fatal("scan of corrupt wal reported no error")
	}
	if len(sc.batches) != 1 || sc.batches[0].seq != 1 {
		t.Fatalf("corrupt scan kept %d batches", len(sc.batches))
	}
}
