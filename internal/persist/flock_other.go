//go:build !unix

package persist

import "os"

// Non-unix platforms get no advisory lock: correctness still holds
// for a single server process per data dir, which the deployment docs
// require anyway.
func lockDir(string) (*os.File, error) { return nil, nil }

func unlockDir(*os.File) error { return nil }
