package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/flat"
	"repro/internal/store"
)

// Segment file format (all little-endian):
//
//	magic   [8]byte "IPSSEG1\n"
//	format  uint32  (currently 1)
//	seq     uint64  WAL sequence covered: the segment holds every
//	                record of batches 1..seq
//	count   uint64  record count
//	ids     count × int64
//	vecs    flat.Store binary block (omitted when count == 0) — the
//	                columnar dim/count header, raw little-endian float64
//	                rows and block checksum from flat.AppendBinary
//	attrs   uint32 nWith, then nWith × (uint64 recIndex, uint32 n,
//	                n × (key, value) length-prefixed strings)
//	crc     uint32  CRC-32C of everything after the magic
//
// Segments are written to a temp file, fsynced, renamed into place and
// the directory fsynced, so a crash mid-checkpoint leaves at most an
// ignored .tmp file; a rename that still manages to surface a torn
// segment is caught by the trailing checksum and the loader falls back
// to the next-older segment (plus whatever WAL frames remain).

var segMagic = [8]byte{'I', 'P', 'S', 'S', 'E', 'G', '1', '\n'}

const segFormat = 1

// encodeSegment builds the full segment file image for (seq, recs).
// All records must share one dimension (they come from one relation).
func encodeSegment(seq uint64, recs []store.Record) ([]byte, error) {
	var fs *flat.Store
	if len(recs) > 0 {
		var err error
		if fs, err = flat.New(len(recs[0].Vec)); err != nil {
			return nil, fmt.Errorf("persist: segment: %w", err)
		}
		for i, r := range recs {
			if err := fs.Append(r.Vec); err != nil {
				return nil, fmt.Errorf("persist: segment record %d: %w", i, err)
			}
		}
	}
	size := 8 + 4 + 8 + 8 + len(recs)*8 + 4
	if fs != nil {
		size += fs.EncodedSize()
	}
	buf := make([]byte, 0, size+64)
	buf = append(buf, segMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, segFormat)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
	}
	if fs != nil {
		buf = fs.AppendBinary(buf)
	}
	nWith := 0
	for _, r := range recs {
		if len(r.Attrs) > 0 {
			nWith++
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nWith))
	for i, r := range recs {
		if len(r.Attrs) == 0 {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i))
		buf = appendAttrs(buf, r.Attrs)
	}
	crc := crc32.Checksum(buf[8:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc), nil
}

func appendAttrs(buf []byte, attrs map[string]string) []byte {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	// Canonical order, matching the WAL encoding.
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, attrs[k])
	}
	return buf
}

// decodeSegment parses and verifies a whole segment file image,
// returning the covered WAL sequence and the records. Record vectors
// are row views into one contiguous decoded flat.Store — no per-row
// copies.
func decodeSegment(data []byte) (seq uint64, recs []store.Record, err error) {
	if len(data) < 8+4+8+8+4 {
		return 0, nil, fmt.Errorf("persist: segment truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != segMagic {
		return 0, nil, fmt.Errorf("persist: bad segment magic %q", data[:8])
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[8:len(data)-4], castagnoli); got != want {
		return 0, nil, fmt.Errorf("persist: segment checksum mismatch: %08x != %08x", got, want)
	}
	rest := data[8 : len(data)-4]
	format := binary.LittleEndian.Uint32(rest)
	if format != segFormat {
		return 0, nil, fmt.Errorf("persist: unsupported segment format %d", format)
	}
	seq = binary.LittleEndian.Uint64(rest[4:])
	count := binary.LittleEndian.Uint64(rest[12:])
	rest = rest[20:]
	if uint64(len(rest))/8 < count {
		return 0, nil, fmt.Errorf("persist: segment claims %d records in %d bytes", count, len(rest))
	}
	recs = make([]store.Record, count)
	for i := range recs {
		recs[i].ID = int(int64(binary.LittleEndian.Uint64(rest[i*8:])))
	}
	rest = rest[int(count)*8:]
	if count > 0 {
		fs, n, err := flat.DecodeStore(rest)
		if err != nil {
			return 0, nil, fmt.Errorf("persist: segment vectors: %w", err)
		}
		if uint64(fs.Len()) != count {
			return 0, nil, fmt.Errorf("persist: segment vector block has %d rows, want %d", fs.Len(), count)
		}
		for i := range recs {
			recs[i].Vec = fs.Row(i)
		}
		rest = rest[n:]
	}
	if len(rest) < 4 {
		return 0, nil, fmt.Errorf("persist: segment attrs truncated")
	}
	nWith := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	for a := uint32(0); a < nWith; a++ {
		if len(rest) < 12 {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d truncated", a)
		}
		idx := binary.LittleEndian.Uint64(rest)
		n := binary.LittleEndian.Uint32(rest[8:])
		rest = rest[12:]
		if idx >= count {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d targets record %d of %d", a, idx, count)
		}
		if uint64(n) > uint64(len(rest))/8 {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d claims %d attrs", a, n)
		}
		attrs := make(map[string]string, n)
		for j := uint32(0); j < n; j++ {
			var k, v string
			if k, rest, err = takeString(rest); err != nil {
				return 0, nil, fmt.Errorf("persist: segment attr entry %d key: %w", a, err)
			}
			if v, rest, err = takeString(rest); err != nil {
				return 0, nil, fmt.Errorf("persist: segment attr entry %d value: %w", a, err)
			}
			attrs[k] = v
		}
		recs[idx].Attrs = attrs
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("persist: %d trailing segment bytes", len(rest))
	}
	return seq, recs, nil
}

// writeSegment atomically writes segment-<seq>.seg in dir, returning
// the segment's byte size.
func writeSegment(dir string, seq uint64, recs []store.Record) (int64, error) {
	data, err := encodeSegment(seq, recs)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), writeFileAtomic(dir, segName(seq), data)
}

// readSegment loads and verifies one segment file, also reporting its
// byte size (which feeds the scaled checkpoint threshold).
func readSegment(dir string, seq uint64) (uint64, []store.Record, int64, error) {
	data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
	if err != nil {
		return 0, nil, 0, err
	}
	seg, recs, err := decodeSegment(data)
	return seg, recs, int64(len(data)), err
}
