package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"

	"repro/internal/errfs"
	"repro/internal/flat"
	"repro/internal/store"
)

// Segment file format (all little-endian):
//
//	magic   [8]byte "IPSSEG1\n"
//	format  uint32  (1 or 2)
//	prec    byte    format 2 only: storage precision (0 f64, 1 f32,
//	                2 int8)
//	seq     uint64  WAL sequence covered: the segment holds every
//	                record of batches 1..seq
//	count   uint64  record count
//	ids     count × int64
//	vecs    vector payload (omitted when count == 0), by precision:
//	                f64 — one flat.Store binary block (FLATBLK1): the
//	                columnar dim/count header, raw little-endian float64
//	                rows and block checksum from flat.AppendBinary;
//	                f32 — one flat.Store32 block (FLATBLK2), lossless
//	                because the f32 ingest path rounds vectors to
//	                binary32 before they reach the WAL;
//	                int8 — the FLATBLK1 f64 truth block (re-ranking
//	                needs the exact rows) followed by the FLATBLK3 code
//	                block carrying the quantization scale. The decoder
//	                requantizes the truth rows and insists on
//	                bit-identical codes and scale, so a restart provably
//	                reconstructs the same quantized index it lost.
//	attrs   uint32 nWith, then nWith × (uint64 recIndex, uint32 n,
//	                n × (key, value) length-prefixed strings)
//	crc     uint32  CRC-32C of everything after the magic
//
// f64 collections keep writing format 1 — byte-identical to every
// segment written before precisions existed — so existing data
// directories open unchanged and new f64 directories stay readable by
// older builds. Only f32/int8 collections emit format 2.
//
// Segments are written to a temp file, fsynced, renamed into place and
// the directory fsynced, so a crash mid-checkpoint leaves at most an
// ignored .tmp file; a rename that still manages to surface a torn
// segment is caught by the trailing checksum and the loader falls back
// to the next-older segment (plus whatever WAL frames remain).

var segMagic = [8]byte{'I', 'P', 'S', 'S', 'E', 'G', '1', '\n'}

const (
	segFormat   = 1
	segFormatV2 = 2
)

// Precision names a collection's vector storage tier. It rides in the
// server's index spec (and therefore the manifest) and selects the
// segment payload encoding above.
type Precision string

const (
	PrecisionF64 Precision = "f64"
	PrecisionF32 Precision = "f32"
	PrecisionI8  Precision = "int8"
)

// precCode maps a precision to its format-2 header byte. The zero
// Precision ("") counts as f64 so callers that never opted in keep the
// legacy behavior everywhere.
func precCode(p Precision) (byte, error) {
	switch p {
	case "", PrecisionF64:
		return 0, nil
	case PrecisionF32:
		return 1, nil
	case PrecisionI8:
		return 2, nil
	}
	return 0, fmt.Errorf("persist: unknown precision %q", p)
}

func precFromCode(b byte) (Precision, error) {
	switch b {
	case 0:
		return PrecisionF64, nil
	case 1:
		return PrecisionF32, nil
	case 2:
		return PrecisionI8, nil
	}
	return "", fmt.Errorf("persist: unknown segment precision code %d", b)
}

// encodeSegment builds the full segment file image for (seq, recs) at
// the given storage precision. All records must share one dimension
// (they come from one relation).
func encodeSegment(seq uint64, recs []store.Record, prec Precision) ([]byte, error) {
	code, err := precCode(prec)
	if err != nil {
		return nil, err
	}
	var fs *flat.Store
	if len(recs) > 0 {
		if fs, err = flat.New(len(recs[0].Vec)); err != nil {
			return nil, fmt.Errorf("persist: segment: %w", err)
		}
		for i, r := range recs {
			if err := fs.Append(r.Vec); err != nil {
				return nil, fmt.Errorf("persist: segment record %d: %w", i, err)
			}
		}
	}
	size := 8 + 4 + 1 + 8 + 8 + len(recs)*8 + 4
	if fs != nil {
		size += fs.EncodedSize() * 2
	}
	buf := make([]byte, 0, size+64)
	buf = append(buf, segMagic[:]...)
	if code == 0 {
		buf = binary.LittleEndian.AppendUint32(buf, segFormat)
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, segFormatV2)
		buf = append(buf, code)
	}
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.ID))
	}
	if fs != nil {
		switch code {
		case 0:
			buf = fs.AppendBinary(buf)
		case 1:
			buf = flat.NewStore32(fs).AppendBinary(buf)
		case 2:
			buf = fs.AppendBinary(buf)
			buf = flat.NewStoreI8(fs).AppendBinary(buf)
		}
	}
	nWith := 0
	for _, r := range recs {
		if len(r.Attrs) > 0 {
			nWith++
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nWith))
	for i, r := range recs {
		if len(r.Attrs) == 0 {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(i))
		buf = appendAttrs(buf, r.Attrs)
	}
	crc := crc32.Checksum(buf[8:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, crc), nil
}

func appendAttrs(buf []byte, attrs map[string]string) []byte {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	// Canonical order, matching the WAL encoding.
	sort.Strings(keys)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(keys)))
	for _, k := range keys {
		buf = appendString(buf, k)
		buf = appendString(buf, attrs[k])
	}
	return buf
}

// decodeSegment parses and verifies a whole segment file image,
// returning the covered WAL sequence and the records. Record vectors
// are row views into one contiguous decoded flat.Store — no per-row
// copies.
func decodeSegment(data []byte) (seq uint64, recs []store.Record, err error) {
	if len(data) < 8+4+8+8+4 {
		return 0, nil, fmt.Errorf("persist: segment truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != segMagic {
		return 0, nil, fmt.Errorf("persist: bad segment magic %q", data[:8])
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[8:len(data)-4], castagnoli); got != want {
		return 0, nil, fmt.Errorf("persist: segment checksum mismatch: %08x != %08x", got, want)
	}
	rest := data[8 : len(data)-4]
	format := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	prec := PrecisionF64
	if format == segFormatV2 {
		if len(rest) < 1+8+8 {
			return 0, nil, fmt.Errorf("persist: v2 segment header truncated")
		}
		if prec, err = precFromCode(rest[0]); err != nil {
			return 0, nil, err
		}
		rest = rest[1:]
	} else if format != segFormat {
		return 0, nil, fmt.Errorf("persist: unsupported segment format %d", format)
	}
	seq = binary.LittleEndian.Uint64(rest)
	count := binary.LittleEndian.Uint64(rest[8:])
	rest = rest[16:]
	if uint64(len(rest))/8 < count {
		return 0, nil, fmt.Errorf("persist: segment claims %d records in %d bytes", count, len(rest))
	}
	recs = make([]store.Record, count)
	for i := range recs {
		recs[i].ID = int(int64(binary.LittleEndian.Uint64(rest[i*8:])))
	}
	rest = rest[int(count)*8:]
	if count > 0 {
		var fs *flat.Store
		var n int
		switch prec {
		case PrecisionF32:
			s32, n32, err := flat.DecodeStore32(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("persist: segment f32 vectors: %w", err)
			}
			if fs, err = s32.ToStore(); err != nil {
				return 0, nil, fmt.Errorf("persist: segment f32 vectors: %w", err)
			}
			n = n32
		default:
			if fs, n, err = flat.DecodeStore(rest); err != nil {
				return 0, nil, fmt.Errorf("persist: segment vectors: %w", err)
			}
		}
		if uint64(fs.Len()) != count {
			return 0, nil, fmt.Errorf("persist: segment vector block has %d rows, want %d", fs.Len(), count)
		}
		for i := range recs {
			recs[i].Vec = fs.Row(i)
		}
		rest = rest[n:]
		if prec == PrecisionI8 {
			// The code block is redundant with requantizing the truth
			// rows — which is exactly why it is worth carrying: decoding
			// proves the deterministic scale survives a crash/restart
			// cycle bit for bit.
			codes, n8, err := flat.DecodeStoreI8(rest)
			if err != nil {
				return 0, nil, fmt.Errorf("persist: segment int8 codes: %w", err)
			}
			if !codes.Equal(flat.NewStoreI8(fs)) {
				return 0, nil, fmt.Errorf("persist: segment int8 codes do not requantize from the stored vectors")
			}
			rest = rest[n8:]
		}
	}
	if len(rest) < 4 {
		return 0, nil, fmt.Errorf("persist: segment attrs truncated")
	}
	nWith := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	for a := uint32(0); a < nWith; a++ {
		if len(rest) < 12 {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d truncated", a)
		}
		idx := binary.LittleEndian.Uint64(rest)
		n := binary.LittleEndian.Uint32(rest[8:])
		rest = rest[12:]
		if idx >= count {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d targets record %d of %d", a, idx, count)
		}
		if uint64(n) > uint64(len(rest))/8 {
			return 0, nil, fmt.Errorf("persist: segment attr entry %d claims %d attrs", a, n)
		}
		attrs := make(map[string]string, n)
		for j := uint32(0); j < n; j++ {
			var k, v string
			if k, rest, err = takeString(rest); err != nil {
				return 0, nil, fmt.Errorf("persist: segment attr entry %d key: %w", a, err)
			}
			if v, rest, err = takeString(rest); err != nil {
				return 0, nil, fmt.Errorf("persist: segment attr entry %d value: %w", a, err)
			}
			attrs[k] = v
		}
		recs[idx].Attrs = attrs
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("persist: %d trailing segment bytes", len(rest))
	}
	return seq, recs, nil
}

// verifySegmentData checks a segment file image's magic and trailing
// whole-file CRC without decoding the payload — the integrity scrubber's
// cheap pass over immutable files.
func verifySegmentData(data []byte) error {
	if len(data) < 8+4+8+8+4 {
		return fmt.Errorf("persist: segment truncated: %d bytes", len(data))
	}
	if [8]byte(data[:8]) != segMagic {
		return fmt.Errorf("persist: bad segment magic %q", data[:8])
	}
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[8:len(data)-4], castagnoli); got != want {
		return fmt.Errorf("persist: segment checksum mismatch: %08x != %08x", got, want)
	}
	return nil
}

// writeSegment atomically writes segment-<seq>.seg in dir, returning
// the segment's byte size.
func writeSegment(fsys errfs.FS, dir string, seq uint64, recs []store.Record, prec Precision) (int64, error) {
	data, err := encodeSegment(seq, recs, prec)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), writeFileAtomic(fsys, dir, segName(seq), data)
}

// readSegment loads and verifies one segment file, also reporting its
// byte size (which feeds the scaled checkpoint threshold).
func readSegment(fsys errfs.FS, dir string, seq uint64) (uint64, []store.Record, int64, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, segName(seq)))
	if err != nil {
		return 0, nil, 0, err
	}
	seg, recs, err := decodeSegment(data)
	return seg, recs, int64(len(data)), err
}
