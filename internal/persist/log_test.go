package persist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"repro/internal/errfs"
	"testing"
	"time"

	"repro/internal/store"
)

func testPolicy(mode FsyncMode) Policy {
	return Policy{Mode: mode, Interval: 5 * time.Millisecond, CheckpointBytes: 1 << 20}
}

func mustCreate(t *testing.T, dir string, pol Policy) *Log {
	t.Helper()
	l, err := Create(dir, Manifest{Name: "c", Shards: 4, Index: json.RawMessage(`{"kind":"exact"}`)}, pol)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// checkRecovered asserts rec holds exactly the given batches, in order.
func checkRecovered(t *testing.T, rec *Recovered, batches ...[]store.Record) {
	t.Helper()
	var want []store.Record
	for _, b := range batches {
		want = append(want, b...)
	}
	if len(rec.Recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec.Recs), len(want))
	}
	for i := range want {
		if !recordsEqual(rec.Recs[i], want[i]) {
			t.Fatalf("recovered record %d differs:\n got  %+v\n want %+v", i, rec.Recs[i], want[i])
		}
	}
}

func TestLogAppendReopen(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := mustCreate(t, dir, testPolicy(mode))
			b1, b2 := testBatch(0, 5, 3), testBatch(5, 4, 3)
			if seq, err := l.Append(b1); err != nil || seq != 1 {
				t.Fatalf("append 1: seq=%d err=%v", seq, err)
			}
			if seq, err := l.Append(b2); err != nil || seq != 2 {
				t.Fatalf("append 2: seq=%d err=%v", seq, err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, rec, err := Open(dir, testPolicy(mode))
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			if rec.Manifest.Name != "c" || rec.Manifest.Shards != 4 {
				t.Fatalf("manifest %+v", rec.Manifest)
			}
			if rec.LastSeq != 2 {
				t.Fatalf("LastSeq %d, want 2", rec.LastSeq)
			}
			checkRecovered(t, rec, b1, b2)

			// Appends continue the sequence after reopen.
			if seq, err := l2.Append(testBatch(9, 1, 3)); err != nil || seq != 3 {
				t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
			}
		})
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	l.Close()
	if _, err := Create(dir, Manifest{Name: "c2"}, testPolicy(FsyncNever)); err == nil {
		t.Fatal("Create over an existing collection directory succeeded")
	}
}

// TestDirectoryLockExcludesSecondOpener: two Logs must never share a
// directory — the second opener fails fast instead of truncating the
// first one's active WAL.
func TestDirectoryLockExcludesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	defer l.Close()
	if _, _, err := Open(dir, testPolicy(FsyncNever)); err == nil {
		t.Fatal("second Open of a locked directory succeeded")
	}
	if _, err := Create(dir, Manifest{Name: "c2"}, testPolicy(FsyncNever)); err == nil {
		t.Fatal("Create over a locked directory succeeded")
	}
	// After Close the directory is reopenable.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, err := Open(dir, testPolicy(FsyncNever))
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	l2.Close()
}

// TestCreateScrubsLeftovers: a manifest-less directory holding stale
// WAL/segment files (the debris of an interrupted removal) must be
// scrubbed by Create — a stale high-seq segment adopted into the new
// collection would shadow every new WAL frame at recovery.
func TestCreateScrubsLeftovers(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	old := testBatch(0, 3, 4)
	if _, err := l.Append(old); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func() ([]store.Record, uint64) { return old, l.LastSeq() }); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the interrupted removal: manifest gone, segment + WAL
	// left behind.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}

	l2 := mustCreate(t, dir, testPolicy(FsyncNever))
	fresh := testBatch(100, 2, 4)
	if seq, err := l2.Append(fresh); err != nil || seq != 1 {
		t.Fatalf("append into re-created dir: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec, err := Open(dir, testPolicy(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	// Only the fresh batch — nothing from the dropped incarnation.
	checkRecovered(t, rec, fresh)
}

func TestCheckpointCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	var all []store.Record
	for i := 0; i < 5; i++ {
		b := testBatch(i*10, 6, 4)
		all = append(all, b...)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := func() ([]store.Record, uint64) { return all, l.LastSeq() }
	if err := l.Checkpoint(snapshot); err != nil {
		t.Fatal(err)
	}

	// One segment at seq 5, exactly one (fresh) WAL file.
	segs, err := listSeqFiles(errfs.OS, dir, segPrefix, segSuffix)
	if err != nil || len(segs) != 1 || segs[0] != 5 {
		t.Fatalf("segments %v err=%v, want [5]", segs, err)
	}
	wals, err := listSeqFiles(errfs.OS, dir, walPrefix, walSuffix)
	if err != nil || len(wals) != 1 || wals[0] != 6 {
		t.Fatalf("wals %v err=%v, want [6]", wals, err)
	}
	if got := l.WALBytes(); got != int64(len(walMagic)) {
		t.Fatalf("active wal %d bytes after checkpoint, want %d", got, len(walMagic))
	}

	// Appends after the checkpoint extend the new WAL; recovery stitches
	// segment + tail together.
	tail := testBatch(90, 3, 4)
	if seq, err := l.Append(tail); err != nil || seq != 6 {
		t.Fatalf("append after checkpoint: seq=%d err=%v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, testPolicy(FsyncNever))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.LastSeq != 6 {
		t.Fatalf("LastSeq %d, want 6", rec.LastSeq)
	}
	checkRecovered(t, rec, all, tail)
}

func TestMaybeCheckpointThreshold(t *testing.T) {
	dir := t.TempDir()
	pol := testPolicy(FsyncNever)
	pol.CheckpointBytes = 512
	l := mustCreate(t, dir, pol)
	var all []store.Record
	snapshot := func() ([]store.Record, uint64) { return all, l.LastSeq() }

	if l.MaybeCheckpoint(snapshot) {
		t.Fatal("checkpoint started on an empty log")
	}
	b := testBatch(0, 20, 8)
	all = append(all, b...)
	if _, err := l.Append(b); err != nil {
		t.Fatal(err)
	}
	if !l.MaybeCheckpoint(snapshot) {
		t.Fatalf("checkpoint did not start at %d wal bytes (threshold %d)", l.WALBytes(), pol.CheckpointBytes)
	}
	// Wait for the background checkpoint to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		segs, err := listSeqFiles(errfs.OS, dir, segPrefix, segSuffix)
		if err == nil && len(segs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("segment never appeared (segs=%v err=%v)", segs, err)
		}
		time.Sleep(time.Millisecond)
	}
	for l.ckptBusy.Load() {
		time.Sleep(time.Millisecond)
	}
	if l.MaybeCheckpoint(snapshot) {
		t.Fatal("checkpoint restarted below threshold")
	}
	l.Close()
}

func TestSegmentRetention(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	var all []store.Record
	snapshot := func() ([]store.Record, uint64) { return all, l.LastSeq() }
	for i := 0; i < 4; i++ {
		b := testBatch(i*10, 2, 3)
		all = append(all, b...)
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := l.Checkpoint(snapshot); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSeqFiles(errfs.OS, dir, segPrefix, segSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != 3 || segs[1] != 4 {
		t.Fatalf("retained segments %v, want [3 4]", segs)
	}
	l.Close()
}

func TestRemoveDeletesDirectory(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "col")
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	if _, err := l.Append(testBatch(0, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("directory still present: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncNever))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := l.Append(testBatch(0, 1, 2)); err == nil {
		t.Fatal("append on closed log succeeded")
	}
}

func TestIntervalSyncerFlushes(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, testPolicy(FsyncInterval))
	if _, err := l.Append(testBatch(0, 2, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		dirty := l.dirty
		l.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval syncer never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}
