package persist

import (
	"bytes"
	"testing"

	"repro/internal/store"
	"repro/internal/vec"
)

// FuzzWALDecode throws arbitrary bytes at the WAL frame/batch decoder:
// it must never panic, never over-allocate on a lying length field,
// and when it does accept a frame the decoded batch must re-encode and
// re-decode to the same records (the decoder is a left inverse of the
// canonical encoder).
func FuzzWALDecode(f *testing.F) {
	// Seed with well-formed WAL images of varying shape, one per op.
	for _, seed := range []struct {
		op   uint32
		recs []store.Record
		ids  []int
	}{
		{op: opAppend},
		{op: opAppend, recs: []store.Record{{ID: 1, Vec: vec.Vector{1, 2, 3}}}},
		{op: opAppend, recs: []store.Record{
			{ID: -7, Vec: vec.Vector{0.5}, Attrs: map[string]string{"a": "b", "": ""}},
			{ID: 1 << 40, Vec: vec.Vector{}}}},
		{op: opUpsert, recs: []store.Record{{ID: 3, Vec: vec.Vector{-1}},
			{ID: 3, Vec: vec.Vector{2}}}},
		{op: opDelete},
		{op: opDelete, ids: []int{0, -9, 1 << 50, 0}},
	} {
		img := append([]byte(nil), walMagic[:]...)
		frame := make([]byte, frameHeaderSize)
		if seed.op == opDelete {
			frame = encodeDelete(frame, 1, seed.ids)
		} else {
			frame = encodeBatch(frame, 1, seed.op, seed.recs)
		}
		frame, err := finishFrame(frame, frameHeaderSize)
		if err != nil {
			f.Fatal(err)
		}
		img = append(img, frame...)
		f.Add(img)
	}
	f.Add([]byte("IPSWAL1\n garbage"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := scanWAL(data)
		for _, b := range sc.batches {
			if b.op > opDelete {
				t.Fatalf("accepted unknown op %d", b.op)
			}
			if b.op == opDelete && b.recs != nil || b.op != opDelete && b.ids != nil {
				t.Fatalf("op %d decoded the wrong payload kind", b.op)
			}
			// Round-trip: accepted batches re-encode canonically and
			// decode back to identical payloads.
			var re []byte
			if b.op == opDelete {
				re = encodeDelete(nil, b.seq, b.ids)
			} else {
				re = encodeBatch(nil, b.seq, b.op, b.recs)
			}
			b2, err := decodeBatch(re)
			if err != nil {
				t.Fatalf("re-decode of accepted batch failed: %v", err)
			}
			if b2.seq != b.seq || b2.op != b.op || len(b2.recs) != len(b.recs) || len(b2.ids) != len(b.ids) {
				t.Fatalf("round-trip changed shape: seq %d->%d, op %d->%d, n %d->%d, ids %d->%d",
					b.seq, b2.seq, b.op, b2.op, len(b.recs), len(b2.recs), len(b.ids), len(b2.ids))
			}
			for i := range b2.recs {
				if !recordsEqual(b.recs[i], b2.recs[i]) {
					t.Fatalf("round-trip changed record %d", i)
				}
			}
			for i := range b2.ids {
				if b.ids[i] != b2.ids[i] {
					t.Fatalf("round-trip changed delete id %d", i)
				}
			}
		}
	})
}

// FuzzSegmentDecode: same robustness contract for the segment loader.
func FuzzSegmentDecode(f *testing.F) {
	for _, n := range []int{0, 3} {
		data, err := encodeSegment(uint64(n), testBatch(0, n, 4), PrecisionF64)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, recs, err := decodeSegment(data)
		if err != nil {
			return
		}
		// Accepted segments must survive a re-encode/re-decode cycle
		// with identical records. (Byte-level identity would be too
		// strict: a crafted input can carry unsorted or duplicate attr
		// keys that the canonical encoder collapses.)
		re, err := encodeSegment(seq, recs, PrecisionF64)
		if err != nil {
			t.Fatalf("re-encode of accepted segment failed: %v", err)
		}
		seq2, recs2, err := decodeSegment(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if seq2 != seq || len(recs2) != len(recs) {
			t.Fatalf("round-trip changed shape: seq %d->%d, n %d->%d", seq, seq2, len(recs), len(recs2))
		}
		for i := range recs2 {
			if !recordsEqual(recs[i], recs2[i]) {
				t.Fatalf("round-trip changed record %d", i)
			}
		}
	})
}
