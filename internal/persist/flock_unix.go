//go:build unix

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive, non-blocking advisory lock on the
// collection directory (via a "lock" file inside it), so two server
// processes can never append to — or truncate — the same WAL. The
// lock dies with the process, so a kill -9 never wedges a restart.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// unlockDir releases the lock (also released implicitly at process
// exit).
func unlockDir(f *os.File) error {
	if f == nil {
		return nil
	}
	return f.Close()
}
