package persist

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errfs"
	"repro/internal/store"
)

// Log is one collection's durable write-ahead log plus its segment
// snapshots. Appends are safe for concurrent use; checkpoints run on a
// background goroutine and never block appends beyond one file
// rotation.
type Log struct {
	dir string
	pol Policy
	// fs is the filesystem every operation goes through (pol.FS after
	// defaulting): the real OS in production, a fault injector in tests.
	fs errfs.FS

	mu       sync.Mutex
	f        errfs.File // active WAL file
	active   string     // base name of f
	buf      []byte     // frame scratch, reused across appends
	lastSeq  uint64
	walBytes int64
	// prec selects the segment payload encoding (zero value = f64, the
	// legacy format-1 layout). The owning collection sets it right after
	// Create/Open, before the first checkpoint can run.
	prec Precision
	// segBytes is the newest segment's size. A checkpoint rewrites the
	// whole collection, so the trigger scales with it (see
	// ShouldCheckpoint) to keep write amplification bounded instead of
	// re-serializing a huge collection every CheckpointBytes of WAL.
	segBytes int64
	dirty    bool  // unsynced appends (interval/never modes)
	failed   error // sticky write/sync failure: all later appends fail
	closed   bool
	// dirtySince is when the oldest currently-unsynced append landed;
	// zero while clean. FsyncLag exposes it so operators can watch the
	// window of acknowledged-but-not-yet-durable writes.
	dirtySince time.Time

	// ckptBusy gives MaybeCheckpoint its non-blocking single-flight
	// skip; ckptMu serializes the checkpoint body itself and lets
	// Close drain an in-flight checkpoint before the caller deletes
	// the directory out from under writeSegment.
	ckptBusy atomic.Bool
	ckptMu   sync.Mutex
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// lock is the exclusive advisory lock on the directory, held for
	// the Log's lifetime so a second process (e.g. an old server still
	// draining during a restart) can never truncate or interleave
	// writes into the active WAL.
	lock *os.File

	// faultHook, when set (SetFaultHook), is invoked on its own
	// goroutine whenever a failure latches or a background checkpoint
	// fails — the serving layer's signal to degrade the collection
	// instead of discovering the breakage on the next mutation.
	faultHook atomic.Value // func(error)

	// observer, when set (SetObserver), receives the duration of every
	// WAL fsync and completed checkpoint — the serving layer feeds them
	// into its per-stage latency histograms. Synchronous and cheap:
	// called with mu held, so implementations must only record.
	observer atomic.Value // func(stage string, d time.Duration)
}

// Recovered is what Open rebuilt from disk.
type Recovered struct {
	Manifest Manifest
	// Recs is the longest durable prefix of acknowledged writes:
	// the newest valid segment's records followed by the replayed WAL
	// tail, in original ingest order.
	Recs []store.Record
	// LastSeq is the WAL sequence number of the last recovered batch.
	LastSeq uint64
}

// Create initializes a fresh collection directory: manifest + empty
// WAL. It refuses a directory that already holds a collection.
func Create(dir string, m Manifest, pol Policy) (*Log, error) {
	pol.withDefaults()
	if err := pol.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Log, error) {
		unlockDir(lock)
		return nil, err
	}
	if HasManifest(dir) {
		return fail(fmt.Errorf("persist: %s already holds a collection", dir))
	}
	// A manifest-less directory can still hold WAL/segment leftovers
	// from an interrupted removal (Create writes the manifest before
	// the first WAL, so a crashed Create cannot leave them). A stale
	// high-seq segment adopted into a fresh collection would shadow
	// every new WAL frame at recovery — serving the dropped
	// collection's data — so scrub leftovers before creating.
	if err := removeLogFiles(pol.FS, dir); err != nil {
		return fail(err)
	}
	if err := writeManifest(pol.FS, dir, m); err != nil {
		return fail(err)
	}
	l := &Log{dir: dir, pol: pol, fs: pol.FS, lock: lock}
	if err := l.startWAL(1); err != nil {
		// Don't leave a manifest behind: it would make every retry of
		// this collection name fail with "already holds a collection"
		// even after the (possibly transient) cause clears.
		if rerr := pol.FS.Remove(filepath.Join(dir, manifestName)); rerr != nil {
			slog.Warn("persist: removing manifest after failed create", "dir", dir, "error", rerr)
		}
		return fail(err)
	}
	l.startSyncer()
	return l, nil
}

// startWAL creates (or truncates) the WAL file whose first frame will
// carry firstSeq and makes it the active file. Callers hold mu or have
// exclusive access.
func (l *Log) startWAL(firstSeq uint64) error {
	name := walName(firstSeq)
	f, err := l.fs.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return err
	}
	// The file and — crucially — its directory entry must be durable in
	// every mode: the interval syncer only fsyncs the file, so without
	// a dirent fsync here a power failure could drop the whole WAL
	// file, losing far more than the mode's documented window. File
	// creation is rare (collection create + checkpoint rotation), so
	// the two fsyncs are not on the ingest path.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.active = name
	l.walBytes = int64(len(walMagic))
	l.dirty = false
	return nil
}

// Open recovers a collection directory written by Create/Append and
// reopens its WAL for appending. Recovery loads the newest segment
// whose checksum verifies, replays WAL frames above it until the first
// truncated/corrupt/out-of-sequence frame, and truncates the active
// WAL back to the last good frame so new appends extend the durable
// prefix. It never returns records from a frame or segment that failed
// verification.
func Open(dir string, pol Policy) (*Log, *Recovered, error) {
	pol.withDefaults()
	m, err := readManifest(pol.FS, dir)
	if err != nil {
		return nil, nil, err
	}
	// The lock must be held before recovery mutates anything (tail
	// truncation, header rewrites): a second process opening the same
	// directory while the first still appends would corrupt
	// acknowledged writes.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Log, *Recovered, error) {
		unlockDir(lock)
		return nil, nil, err
	}

	// Newest valid segment wins; older ones are fallbacks kept for
	// exactly this case (a torn newest segment).
	segs, err := listSeqFiles(pol.FS, dir, segPrefix, segSuffix)
	if err != nil {
		return fail(err)
	}
	var (
		segSeq   uint64
		segBytes int64
		recs     []store.Record
	)
	for i := len(segs) - 1; i >= 0; i-- {
		seq, srecs, n, err := readSegment(pol.FS, dir, segs[i])
		if err != nil {
			slog.Warn("persist: skipping unreadable segment", "dir", dir, "segment", segs[i], "error", err)
			continue
		}
		segSeq, recs, segBytes = seq, srecs, n
		break
	}

	// Replay WAL files in order. Frames at or below segSeq are already
	// covered by the segment; above it they must arrive consecutively.
	wals, err := listSeqFiles(pol.FS, dir, walPrefix, walSuffix)
	if err != nil {
		return fail(err)
	}
	lastSeq := segSeq
	state := newReplayState(recs)
	appendTo := ""        // WAL file new appends should extend
	appendOff := int64(0) // truncation point within appendTo

	for i, first := range wals {
		lastFile := i == len(wals)-1
		name := walName(first)
		if first > lastSeq+1 {
			// The file name pins its first frame's sequence (rotation
			// names the fresh WAL lastSeq+1). A first-seq beyond the
			// recovered prefix is the same unbridgeable gap as a
			// mid-log jump — e.g. a corrupt newest segment whose WAL
			// was already rotated away — even when the file holds no
			// decodable frames yet.
			return fail(fmt.Errorf(
				"persist: %s: wal %s starts at sequence %d but only %d is recovered (a covering segment is missing or corrupt)",
				dir, name, first, lastSeq))
		}
		data, err := pol.FS.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fail(err)
		}
		sc := scanWAL(data)
		good := int64(0)
		if sc.magicOK {
			good = int64(len(walMagic))
		}
		for _, b := range sc.batches {
			if b.seq > segSeq && b.seq != lastSeq+1 {
				// A sequence gap means acknowledged batches are missing
				// — e.g. the segment that covered them failed its
				// checksum and an older one was loaded instead. Refuse
				// to open rather than silently serving (and truncating
				// away) a state no client ever observed; the operator
				// can restore the missing segment and reopen.
				return fail(fmt.Errorf(
					"persist: %s: wal sequence gap: frame %d follows %d (a covering segment is missing or corrupt)",
					dir, b.seq, lastSeq))
			}
			if b.seq > segSeq {
				state.apply(b)
				lastSeq = b.seq
			}
			// Frames at or below segSeq are already compacted into the
			// segment; replaying them would double-apply. Either way
			// the frame itself is well-formed, so the truncation point
			// moves past it.
			good = b.end
		}
		if sc.err != nil && !lastFile {
			// Only the newest WAL file may have a torn tail (rotation
			// syncs a file before it stops being the append target).
			// Damage in an older file means frames beyond it exist but
			// are unreachable — same refusal as a sequence gap, and
			// nothing on disk is modified.
			return fail(fmt.Errorf("persist: %s: %s is damaged mid-log: %w", dir, name, sc.err))
		}
		appendTo, appendOff = name, good
	}

	l := &Log{dir: dir, pol: pol, fs: pol.FS, lastSeq: lastSeq, segBytes: segBytes, lock: lock}
	if appendTo == "" {
		if err := l.startWAL(lastSeq + 1); err != nil {
			return fail(err)
		}
	} else if err := l.reopenWAL(appendTo, appendOff); err != nil {
		return fail(err)
	}
	l.startSyncer()
	return l, &Recovered{Manifest: m, Recs: state.finish(), LastSeq: lastSeq}, nil
}

// reopenWAL opens an existing WAL file for appending, truncating any
// torn or corrupt tail (everything past goodOffset).
func (l *Log) reopenWAL(name string, goodOffset int64) error {
	path := filepath.Join(l.dir, name)
	f, err := l.fs.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if goodOffset < int64(len(walMagic)) {
		// Header itself was torn: rewrite it.
		goodOffset = int64(len(walMagic))
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return err
		}
	} else if err := f.Truncate(goodOffset); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(goodOffset, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.active = name
	l.walBytes = goodOffset
	return nil
}

// Append writes one ingest batch as a single WAL frame and returns its
// sequence number. Under FsyncAlways the frame is durable when Append
// returns; under FsyncInterval within Policy.Interval; under FsyncNever
// whenever the OS flushes it. A write or sync failure is sticky: the
// log refuses further appends so the in-memory state can never run
// ahead of a broken disk.
func (l *Log) Append(recs []store.Record) (uint64, error) {
	return l.appendFrame(func(buf []byte, seq uint64) []byte {
		return encodeBatch(buf, seq, opAppend, recs)
	})
}

// AppendUpsert writes one insert-or-replace batch as a single upsert
// frame, with Append's durability contract.
func (l *Log) AppendUpsert(recs []store.Record) (uint64, error) {
	return l.appendFrame(func(buf []byte, seq uint64) []byte {
		return encodeBatch(buf, seq, opUpsert, recs)
	})
}

// AppendDelete writes one id-removal batch as a single delete frame,
// with Append's durability contract.
func (l *Log) AppendDelete(ids []int) (uint64, error) {
	return l.appendFrame(func(buf []byte, seq uint64) []byte {
		return encodeDelete(buf, seq, ids)
	})
}

// appendFrame writes one frame whose payload encode appends to buf.
func (l *Log) appendFrame(encode func(buf []byte, seq uint64) []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, fmt.Errorf("persist: log failed earlier: %w", l.failed)
	}
	seq := l.lastSeq + 1
	buf := append(l.buf[:0], make([]byte, frameHeaderSize)...)
	buf = encode(buf, seq)
	buf, err := finishFrame(buf, frameHeaderSize)
	if err != nil {
		return 0, err
	}
	l.buf = buf[:0]
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return 0, err
	}
	if l.pol.Mode == FsyncAlways {
		if err := l.timedSync(); err != nil {
			l.fail(err)
			return 0, err
		}
	} else {
		if !l.dirty {
			l.dirtySince = time.Now()
		}
		l.dirty = true
	}
	l.lastSeq = seq
	l.walBytes += int64(len(buf))
	return seq, nil
}

// fail marks the log broken after a failed append write/sync and
// best-effort truncates the file back to the last committed frame:
// the caller reports the batch as rejected (its IDs are rolled back),
// so leaving a complete frame in the page cache would let the "failed"
// batch silently resurrect at the next recovery. Callers hold mu.
func (l *Log) fail(err error) {
	l.failed = err
	l.notifyFault(err)
	if terr := l.f.Truncate(l.walBytes); terr != nil {
		slog.Error("persist: truncating torn append failed", "dir", l.dir, "error", terr)
		return
	}
	if _, serr := l.f.Seek(l.walBytes, 0); serr != nil {
		slog.Error("persist: seeking after torn append failed", "dir", l.dir, "error", serr)
	}
}

// SetFaultHook installs fn to be called — on a fresh goroutine, so no
// lock ordering binds the callee — whenever a write/sync failure
// latches or a background checkpoint fails. Install it before the log
// starts serving appends.
func (l *Log) SetFaultHook(fn func(error)) {
	l.faultHook.Store(fn)
}

// SetObserver installs fn to receive the duration of every WAL fsync
// ("wal_fsync") and completed checkpoint ("checkpoint"). fn is called
// synchronously, possibly with the log's mutex held — it must only
// record (an atomic histogram update) and return.
func (l *Log) SetObserver(fn func(stage string, d time.Duration)) {
	l.observer.Store(fn)
}

// observe reports one stage duration to the observer, if installed.
func (l *Log) observe(stage string, d time.Duration) {
	if fn, ok := l.observer.Load().(func(string, time.Duration)); ok && fn != nil {
		fn(stage, d)
	}
}

// timedSync runs l.f.Sync() and reports its duration to the observer.
func (l *Log) timedSync() error {
	start := time.Now()
	err := l.f.Sync()
	if err == nil {
		l.observe("wal_fsync", time.Since(start))
	}
	return err
}

// notifyFault fans a failure out to the fault hook. Safe to call with
// mu held (the hook runs on its own goroutine).
func (l *Log) notifyFault(err error) {
	if h, ok := l.faultHook.Load().(func(error)); ok && h != nil {
		go h(err)
	}
}

// Failed reports the latched write/sync failure, if any.
func (l *Log) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Sync forces any buffered appends to disk (used at shutdown and by
// the interval syncer).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil {
		return nil
	}
	if l.failed != nil {
		return l.failed
	}
	if !l.dirty {
		return nil
	}
	if err := l.timedSync(); err != nil {
		l.failed = err
		l.notifyFault(err)
		return err
	}
	l.dirty = false
	l.dirtySince = time.Time{}
	return nil
}

// Repair attempts to clear a latched write/sync failure so the log can
// accept appends again: it provably removes any torn frame beyond the
// committed prefix (truncate + seek + sync of the active file — each
// must succeed, or a complete-but-rejected frame could resurrect at
// recovery), then rotates to a fresh WAL file, leaving the committed
// frames behind in the old one. Returns nil when the latch is clear;
// a non-nil error means the disk is still refusing writes and the
// caller should back off and retry.
func (l *Log) Repair() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed == nil {
		return nil
	}
	if l.f == nil {
		return l.failed
	}
	if err := l.f.Truncate(l.walBytes); err != nil {
		return err
	}
	if _, err := l.f.Seek(l.walBytes, 0); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	// Rotation gives appends a fresh file — the safe choice after an
	// EIO that may be pinned to bad blocks under the old one. The old
	// file keeps frames <= lastSeq and the new file's name pins its
	// first frame to lastSeq+1, exactly like a checkpoint rotation, so
	// recovery replays them in order. A failed rotation leaves the
	// (now provably clean) old file active and the latch set.
	old := l.f
	if err := l.startWAL(l.lastSeq + 1); err != nil {
		return err
	}
	if old != l.f {
		if err := old.Close(); err != nil {
			slog.Warn("persist: closing rotated wal after repair failed", "dir", l.dir, "error", err)
		}
	}
	l.failed = nil
	l.dirty = false
	l.dirtySince = time.Time{}
	return nil
}

// FsyncLag returns how long the oldest acknowledged-but-unsynced
// append has been waiting for an fsync, or zero when everything
// acknowledged is durable. Under FsyncAlways it is always zero; under
// the interval policy it normally stays below Policy.Interval — a
// growing lag means the disk is not keeping up.
func (l *Log) FsyncLag() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.dirtySince.IsZero() {
		return 0
	}
	return time.Since(l.dirtySince)
}

// SetPrecision selects the storage precision for segments this log
// writes from now on. Decoding is self-describing (the segment header
// carries the precision), so changing it never invalidates existing
// segments — but the serving layer keeps it fixed per collection.
func (l *Log) SetPrecision(p Precision) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.prec = p
}

// LastSeq returns the sequence number of the last appended batch.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// WALBytes returns the active WAL file's current size.
func (l *Log) WALBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walBytes
}

// ShouldCheckpoint reports whether the WAL tail has outgrown the
// checkpoint threshold. Because a checkpoint re-serializes the whole
// collection, the effective threshold is max(CheckpointBytes,
// newest-segment-size/4): on a collection far larger than the
// configured threshold, compaction waits for a WAL tail worth ≥ 25%
// of a full rewrite, bounding steady-state write amplification at
// ~5× while small collections keep the configured responsiveness.
func (l *Log) ShouldCheckpoint() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	threshold := l.pol.CheckpointBytes
	if scaled := l.segBytes / 4; scaled > threshold {
		threshold = scaled
	}
	return l.walBytes >= threshold && l.lastSeq > 0
}

// MaybeCheckpoint starts a background checkpoint when the WAL tail
// exceeds the policy threshold and no checkpoint is already running.
// snapshot must return a coherent (records, lastSeq) pair: every batch
// with sequence <= lastSeq included, nothing else. Reports whether a
// checkpoint was started.
func (l *Log) MaybeCheckpoint(snapshot func() ([]store.Record, uint64)) bool {
	if !l.ShouldCheckpoint() {
		return false
	}
	if !l.ckptBusy.CompareAndSwap(false, true) {
		return false
	}
	go func() {
		defer l.ckptBusy.Store(false)
		if err := l.Checkpoint(snapshot); err != nil && !errors.Is(err, ErrClosed) {
			slog.Error("persist: background checkpoint failed", "dir", l.dir, "error", err)
			// A background checkpoint failure may not have latched the
			// append path (e.g. the segment write ran out of disk), but
			// the collection's durability contract is broken either way;
			// the hook lets the serving layer degrade it.
			l.notifyFault(err)
		}
	}()
	return true
}

// Checkpoint compacts the WAL into a segment: rotate to a fresh WAL
// file, snapshot the published records, write them as a segment, then
// delete the rotated WAL files (now fully covered by the segment) and
// all but the two newest segments. Concurrent checkpoints serialize
// on ckptMu.
func (l *Log) Checkpoint(snapshot func() ([]store.Record, uint64)) error {
	start := time.Now()
	err := l.checkpoint(snapshot)
	if err == nil {
		l.observe("checkpoint", time.Since(start))
	}
	return err
}

func (l *Log) checkpoint(snapshot func() ([]store.Record, uint64)) error {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	// Make the rotated file durable before it becomes deletable, then
	// swap in a fresh one. Appends continue into the new file while
	// the segment is being written; replay skips any of their
	// sequences the segment happens to cover.
	if err := l.f.Sync(); err != nil {
		l.failed = err
		l.notifyFault(err)
		l.mu.Unlock()
		return err
	}
	if err := l.f.Close(); err != nil {
		l.failed = err
		l.notifyFault(err)
		l.mu.Unlock()
		return err
	}
	if err := l.startWAL(l.lastSeq + 1); err != nil {
		l.failed = err
		l.notifyFault(err)
		l.mu.Unlock()
		return err
	}
	active := l.active
	prec := l.prec
	l.mu.Unlock()

	// snapshot acquires the owner's ingest lock, so it observes every
	// batch appended before the rotation (appenders hold that lock
	// across Append and publish) — its lastSeq is >= the rotated
	// file's last frame, making the rotated file safe to delete.
	recs, seq := snapshot()
	if seq == 0 {
		return nil
	}
	// Re-check after the (potentially slow) snapshot: a Close that
	// landed in between means the caller may be about to delete the
	// directory (Drop), so don't rename a fresh segment into it.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.mu.Unlock()
	n, err := writeSegment(l.fs, l.dir, seq, recs, prec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.segBytes = n
	l.mu.Unlock()
	return l.cleanup(active)
}

// cleanup removes WAL files other than the active one (all fully
// covered by the just-written segment) and prunes segments beyond the
// two newest.
func (l *Log) cleanup(active string) error {
	wals, err := listSeqFiles(l.fs, l.dir, walPrefix, walSuffix)
	if err != nil {
		return err
	}
	var first error
	for _, w := range wals {
		if name := walName(w); name != active {
			if err := l.fs.Remove(filepath.Join(l.dir, name)); err != nil && first == nil {
				first = err
			}
		}
	}
	segs, err := listSeqFiles(l.fs, l.dir, segPrefix, segSuffix)
	if err != nil {
		if first == nil {
			first = err
		}
		return first
	}
	for i := 0; i+2 < len(segs); i++ {
		if err := l.fs.Remove(filepath.Join(l.dir, segName(segs[i]))); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ScrubSegments re-reads every segment file and verifies its magic and
// trailing whole-file CRC, reporting how many were checked and the
// first mismatch. Segment files are immutable once renamed into place,
// so a scrub mismatch means on-disk corruption (bit rot, torn rename
// surfaced by a crashy filesystem) — the serving layer degrades the
// collection on it. A file that vanishes mid-scrub was pruned by a
// concurrent checkpoint and is skipped.
func (l *Log) ScrubSegments() (checked int, err error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	l.mu.Unlock()
	segs, err := listSeqFiles(l.fs, l.dir, segPrefix, segSuffix)
	if err != nil {
		return 0, err
	}
	for _, seq := range segs {
		data, err := l.fs.ReadFile(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return checked, err
		}
		if err := verifySegmentData(data); err != nil {
			return checked, fmt.Errorf("persist: %s: segment %d: %w", l.dir, seq, err)
		}
		checked++
	}
	return checked, nil
}

// DropCorruptSegments removes segment files that fail verification and
// are older than the newest valid segment — they are worthless as
// recovery fallbacks (their checksum already refuses them) and keeping
// them around keeps the scrubber red forever. The newest segment is
// never removed here even when corrupt: recovery's fallback chain owns
// that case. Serializes with checkpoints so a concurrent cleanup never
// races the removals.
func (l *Log) DropCorruptSegments() (removed int, err error) {
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	l.mu.Unlock()
	segs, err := listSeqFiles(l.fs, l.dir, segPrefix, segSuffix)
	if err != nil {
		return 0, err
	}
	newestValid := -1
	for i := len(segs) - 1; i >= 0; i-- {
		data, rerr := l.fs.ReadFile(filepath.Join(l.dir, segName(segs[i])))
		if rerr == nil && verifySegmentData(data) == nil {
			newestValid = i
			break
		}
	}
	var first error
	for i := 0; i < newestValid; i++ {
		data, rerr := l.fs.ReadFile(filepath.Join(l.dir, segName(segs[i])))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue
			}
			if first == nil {
				first = rerr
			}
			continue
		}
		if verifySegmentData(data) == nil {
			continue
		}
		slog.Warn("persist: dropping corrupt segment", "dir", l.dir, "segment", segs[i], "superseded_by", segs[newestValid])
		if err := l.fs.Remove(filepath.Join(l.dir, segName(segs[i]))); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		removed++
	}
	return removed, first
}

// startSyncer runs the background fsync loop for FsyncInterval.
func (l *Log) startSyncer() {
	if l.pol.Mode != FsyncInterval {
		return
	}
	l.stop = make(chan struct{})
	l.done = make(chan struct{})
	go func() {
		defer close(l.done)
		t := time.NewTicker(l.pol.Interval)
		defer t.Stop()
		var lastErr string
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				// Keep ticking through failures: Repair can clear the
				// latch at any time and appends then need the interval
				// fsync again. Log only on state change to avoid a
				// 10Hz error spray while the latch is set.
				err := l.Sync()
				msg := ""
				if err != nil {
					msg = err.Error()
				}
				if msg != lastErr && msg != "" {
					slog.Error("persist: background fsync failed", "dir", l.dir, "error", err)
				}
				lastErr = msg
			}
		}
	}()
}

func (l *Log) stopSyncer() {
	if l.stop == nil {
		return
	}
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}

// Close flushes and fsyncs the WAL (regardless of mode — shutdown is
// the one moment "never" still deserves durability) and closes the
// file. Idempotent.
func (l *Log) Close() error {
	l.stopSyncer()
	l.mu.Lock()
	alreadyClosed := l.closed
	l.closed = true
	var err error
	if !alreadyClosed && l.f != nil {
		// A latched failure means acknowledged writes may never have
		// been fsynced: shutdown must not report success for a log
		// that was silently broken.
		err = l.failed
		if err == nil {
			err = l.f.Sync()
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	l.mu.Unlock()
	// Drain any in-flight checkpoint: it re-checks closed before
	// writing its segment, so once this barrier is passed no new
	// files can appear in the directory (Remove relies on this).
	l.ckptMu.Lock()
	l.ckptMu.Unlock()
	if uerr := unlockDir(l.lock); uerr != nil && err == nil {
		err = uerr
	}
	l.lock = nil
	return err
}

// Remove closes the log and deletes the whole collection directory.
func (l *Log) Remove() error {
	err := l.Close()
	if rerr := l.fs.RemoveAll(l.dir); err == nil {
		err = rerr
	}
	return err
}

// Dir returns the collection directory path.
func (l *Log) Dir() string { return l.dir }

// removeLogFiles deletes every WAL, segment and temp file in dir.
func removeLogFiles(fsys errfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		_, isWAL := parseSeqName(name, walPrefix, walSuffix)
		_, isSeg := parseSeqName(name, segPrefix, segSuffix)
		if !isWAL && !isSeg && !strings.HasSuffix(name, tmpSuffix) {
			continue
		}
		slog.Info("persist: removing stale file", "dir", dir, "file", name)
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}
