package transform

import (
	"math"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// randBall returns a random vector with ‖v‖ ≤ r.
func randBall(rng *xrand.RNG, d int, r float64) vec.Vector {
	u := vec.Vector(rng.UnitVec(d))
	scale := r * math.Pow(rng.Float64(), 1/float64(d))
	return vec.Scale(u, scale)
}

func TestSimplePreservesScaledInnerProduct(t *testing.T) {
	rng := xrand.New(1)
	const d, U = 8, 4.0
	tr, err := NewSimple(d, U)
	if err != nil {
		t.Fatal(err)
	}
	if tr.OutputDim() != d+2 {
		t.Fatalf("OutputDim = %d", tr.OutputDim())
	}
	for trial := 0; trial < 200; trial++ {
		p := randBall(rng, d, 1)
		q := randBall(rng, d, U)
		dp, qp := tr.Data(p), tr.Query(q)
		if math.Abs(vec.Norm(dp)-1) > 1e-9 {
			t.Fatalf("data image norm %v", vec.Norm(dp))
		}
		if math.Abs(vec.Norm(qp)-1) > 1e-9 {
			t.Fatalf("query image norm %v", vec.Norm(qp))
		}
		want := vec.Dot(p, q) / U
		if got := vec.Dot(dp, qp); math.Abs(got-want) > 1e-9 {
			t.Fatalf("inner product %v, want %v", got, want)
		}
	}
}

func TestSimpleValidation(t *testing.T) {
	if _, err := NewSimple(0, 1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewSimple(3, 0); err == nil {
		t.Fatal("U=0 must fail")
	}
}

func TestSimpleNormViolationPanics(t *testing.T) {
	tr, _ := NewSimple(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for data outside unit ball")
		}
	}()
	tr.Data(vec.Vector{2, 0})
}

func TestXboxExactInnerProduct(t *testing.T) {
	rng := xrand.New(2)
	const d, M = 6, 3.0
	tr, err := NewXbox(d, M)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		p := randBall(rng, d, M)
		q := randBall(rng, d, 10)
		dp, qp := tr.Data(p), tr.Query(q)
		if math.Abs(vec.Norm(dp)-M) > 1e-9 {
			t.Fatalf("data image norm %v, want %v", vec.Norm(dp), M)
		}
		if got, want := vec.Dot(dp, qp), vec.Dot(p, q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("inner product %v, want %v", got, want)
		}
	}
}

func TestXboxMIPSBecomesNN(t *testing.T) {
	// After the Xbox map, for a fixed query the MIPS argmax equals the
	// Euclidean NN argmin over data images.
	rng := xrand.New(3)
	const d, M, n = 5, 2.0, 50
	tr, _ := NewXbox(d, M)
	data := make([]vec.Vector, n)
	for i := range data {
		data[i] = randBall(rng, d, M)
	}
	q := randBall(rng, d, 5)
	qi := tr.Query(q)
	bestIP, bestNN := 0, 0
	var bestIPV, bestNNV float64
	for i, p := range data {
		if ip := vec.Dot(p, q); i == 0 || ip > bestIPV {
			bestIP, bestIPV = i, ip
		}
		dist := vec.Norm(vec.Sub(tr.Data(p), qi))
		if i == 0 || dist < bestNNV {
			bestNN, bestNNV = i, dist
		}
	}
	if bestIP != bestNN {
		t.Fatalf("MIPS argmax %d != NN argmin %d", bestIP, bestNN)
	}
}

func TestL2ALSHConvergence(t *testing.T) {
	// The asymmetric L2 map turns MIPS into NN up to U0^{2^{m+1}}; the
	// additive error must shrink rapidly with m.
	tr3, err := NewL2ALSH(4, 3, 0.83, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	tr5, _ := NewL2ALSH(4, 5, 0.83, 2.0)
	if tr3.AdditiveError() <= tr5.AdditiveError() {
		t.Fatal("error must decrease with m")
	}
	if tr5.AdditiveError() > 1e-5 {
		t.Fatalf("m=5 error %v too large", tr5.AdditiveError())
	}
}

func TestL2ALSHDistanceIdentity(t *testing.T) {
	// ‖Q(q) − P(p)‖² = ‖Q(q)‖² + Σ‖p'‖^{2^{j+1}} terms − 2·Scale·pᵀq/‖q‖
	// ... rather than re-deriving, check the MIPS ordering property:
	// for equal-norm data the NN order matches the MIPS order exactly.
	rng := xrand.New(4)
	const d, n = 6, 30
	tr, _ := NewL2ALSH(d, 4, 0.83, 1.0)
	q := vec.Vector(rng.UnitVec(d))
	qi := tr.Query(q)
	type scored struct{ ip, dist float64 }
	items := make([]scored, n)
	for i := range items {
		p := vec.Vector(rng.UnitVec(d)) // equal norms isolate the angle
		items[i] = scored{
			ip:   vec.Dot(p, q),
			dist: vec.Norm2(vec.Sub(tr.Data(p), qi)),
		}
	}
	for i := range items {
		for j := range items {
			if items[i].ip > items[j].ip+1e-9 && items[i].dist > items[j].dist+1e-9 {
				t.Fatalf("ordering violated: ip %v>%v but dist %v>%v",
					items[i].ip, items[j].ip, items[i].dist, items[j].dist)
			}
		}
	}
}

func TestL2ALSHValidation(t *testing.T) {
	if _, err := NewL2ALSH(0, 1, 0.5, 1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewL2ALSH(2, 2, 1.5, 1); err == nil {
		t.Fatal("U0>1 must fail")
	}
	if _, err := NewL2ALSH(2, 2, 0.8, 0); err == nil {
		t.Fatal("maxNorm=0 must fail")
	}
}

func TestSignALSHInnerProductPreserved(t *testing.T) {
	// Data(p)ᵀQuery(q) = Scale·pᵀq/‖q‖ exactly (the tail terms hit zeros).
	rng := xrand.New(20)
	const d, m = 6, 3
	tr, err := NewSignALSH(d, m, 0.75, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.OutputDim() != d+m {
		t.Fatalf("OutputDim = %d", tr.OutputDim())
	}
	for trial := 0; trial < 100; trial++ {
		p := randBall(rng, d, 2.0)
		q := randBall(rng, d, 3.0)
		if vec.Norm(q) == 0 {
			continue
		}
		got := vec.Dot(tr.Data(p), tr.Query(q))
		want := tr.Scale * vec.Dot(p, q) / vec.Norm(q)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("ip %v, want %v", got, want)
		}
	}
}

func TestSignALSHRankingTracksMIPS(t *testing.T) {
	// Cosine ranking of the transformed vectors must recover the MIPS
	// argmax on most queries, despite skewed data norms.
	rng := xrand.New(21)
	const d, m, n = 8, 4, 200
	data := make([]vec.Vector, n)
	maxNorm := 0.0
	for i := range data {
		v := vec.Vector(rng.UnitVec(d))
		vec.Scale(v, 0.2+1.8*rng.Float64()) // norms in [0.2, 2]
		data[i] = v
		if nv := vec.Norm(v); nv > maxNorm {
			maxNorm = nv
		}
	}
	tr, err := NewSignALSH(d, m, 0.75, maxNorm)
	if err != nil {
		t.Fatal(err)
	}
	images := make([]vec.Vector, n)
	for i, p := range data {
		images[i] = tr.Data(p)
	}
	hits := 0
	const queries = 50
	for trial := 0; trial < queries; trial++ {
		q := vec.Vector(rng.UnitVec(d))
		qi := tr.Query(q)
		bestIP, bestCos := 0, 0
		var ipV, cosV float64
		for i := range data {
			if v := vec.Dot(data[i], q); i == 0 || v > ipV {
				bestIP, ipV = i, v
			}
			if v := vec.Cosine(images[i], qi); i == 0 || v > cosV {
				bestCos, cosV = i, v
			}
		}
		if bestIP == bestCos {
			hits++
		}
	}
	if frac := float64(hits) / queries; frac < 0.8 {
		t.Fatalf("sign-ALSH cosine ranking recovered MIPS argmax on only %v of queries", frac)
	}
}

func TestSignALSHValidation(t *testing.T) {
	if _, err := NewSignALSH(0, 1, 0.5, 1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewSignALSH(2, 2, 1.2, 1); err == nil {
		t.Fatal("U0>1 must fail")
	}
	if _, err := NewSignALSH(2, 2, 0.8, 0); err == nil {
		t.Fatal("maxNorm=0 must fail")
	}
}

func TestSymmetricPreservesInnerProducts(t *testing.T) {
	rng := xrand.New(5)
	const d = 4
	tr, err := NewSymmetric(d, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	eps := tr.Eps()
	if eps > 0.05 {
		t.Fatalf("eps = %v", eps)
	}
	// Quantization error adds on top of ε; budget both.
	quantErr := float64(d) * math.Pow(2, -7) // coarse per-coordinate bound
	for trial := 0; trial < 100; trial++ {
		p := tr.Quantize(randBall(rng, d, 0.9))
		q := tr.Quantize(randBall(rng, d, 0.9))
		fp, fq := tr.Map(p), tr.Map(q)
		if math.Abs(vec.Norm(fp)-1) > 1e-9 {
			t.Fatalf("image norm %v", vec.Norm(fp))
		}
		same := vec.EqualTol(p, q, 0)
		got := vec.Dot(fp, fq)
		if same {
			if math.Abs(got-1) > 1e-9 {
				t.Fatalf("identical vectors must map to identical points, ip=%v", got)
			}
			continue
		}
		if math.Abs(got-vec.Dot(p, q)) > eps+quantErr {
			t.Fatalf("inner product drift %v > eps %v", math.Abs(got-vec.Dot(p, q)), eps+quantErr)
		}
	}
}

func TestSymmetricIsSymmetric(t *testing.T) {
	// The same map is used on both sides — Map(p) must be deterministic.
	tr, err := NewSymmetric(3, 6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	p := vec.Vector{0.25, -0.5, 0.125}
	a, b := tr.Map(p), tr.Map(p)
	if !vec.EqualTol(a, b, 0) {
		t.Fatal("Map must be deterministic")
	}
}

func TestSymmetricValidation(t *testing.T) {
	if _, err := NewSymmetric(0, 8, 0.1); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewSymmetric(4, 99, 0.1); err == nil {
		t.Fatal("k too large must fail")
	}
}

func BenchmarkSimpleData(b *testing.B) {
	rng := xrand.New(6)
	tr, _ := NewSimple(64, 2)
	p := randBall(rng, 64, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Data(p)
	}
}

func BenchmarkSymmetricMap(b *testing.B) {
	rng := xrand.New(7)
	tr, err := NewSymmetric(16, 8, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	p := randBall(rng, 16, 0.9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Map(p)
	}
}
