// Package transform implements the ball→sphere reductions that turn
// maximum inner product search into angular/Euclidean near-neighbour
// search: the asymmetric Neyshabur–Srebro map used by §4.1 of Ahle et
// al., the Bachrach et al. "Xbox" map, the Shrivastava–Li L2-ALSH map,
// and the paper's own §4.2 *symmetric* map built from an explicit
// incoherent vector family.
//
// All maps take data vectors from the unit ball (‖p‖ ≤ 1) and query
// vectors from the ball of radius U, as in the paper's Theorem 3 setup.
package transform

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/codes"
	"repro/internal/vec"
)

// clampRoot returns √x, treating tiny negative values (floating point
// fuzz from ‖p‖ ≈ 1) as zero and panicking on genuine violations.
func clampRoot(x float64, what string) float64 {
	if x < 0 {
		if x > -1e-9 {
			return 0
		}
		panic(fmt.Sprintf("transform: %s: norm bound violated (residual %v)", what, x))
	}
	return math.Sqrt(x)
}

// Simple is the asymmetric SIMPLE-ALSH map of Neyshabur–Srebro, as used
// in §4.1: data p ↦ (p, √(1−‖p‖²), 0) and query q ↦ (q/U, 0, √(1−‖q‖²/U²)).
// Both images lie on the unit sphere in d+2 dimensions and
// Data(p)ᵀQuery(q) = pᵀq/U exactly.
type Simple struct {
	// D is the input dimension, U the query-ball radius.
	D int
	U float64
}

// NewSimple validates parameters and returns the map.
func NewSimple(d int, u float64) (*Simple, error) {
	if d <= 0 {
		return nil, fmt.Errorf("transform: dimension %d must be positive", d)
	}
	if u <= 0 {
		return nil, fmt.Errorf("transform: query radius %v must be positive", u)
	}
	return &Simple{D: d, U: u}, nil
}

// OutputDim returns the embedded dimension d+2.
func (t *Simple) OutputDim() int { return t.D + 2 }

// Data embeds a data vector from the unit ball.
func (t *Simple) Data(p vec.Vector) vec.Vector {
	if len(p) != t.D {
		panic(fmt.Sprintf("transform: data dimension %d != %d", len(p), t.D))
	}
	out := make(vec.Vector, t.D+2)
	copy(out, p)
	out[t.D] = clampRoot(1-vec.Norm2(p), "Simple.Data")
	return out
}

// Query embeds a query vector from the ball of radius U.
func (t *Simple) Query(q vec.Vector) vec.Vector {
	if len(q) != t.D {
		panic(fmt.Sprintf("transform: query dimension %d != %d", len(q), t.D))
	}
	out := make(vec.Vector, t.D+2)
	for i, v := range q {
		out[i] = v / t.U
	}
	out[t.D+1] = clampRoot(1-vec.Norm2(q)/(t.U*t.U), "Simple.Query")
	return out
}

// Xbox is the Bachrach et al. reduction: data p ↦ (p, √(M²−‖p‖²))
// (sphere of radius M, where M bounds the data norms) and query
// q ↦ (q, 0), leaving inner products exactly unchanged. After this map,
// MIPS for a fixed query is equivalent to Euclidean NN on the data
// sphere.
type Xbox struct {
	D int
	// M is the data-norm bound.
	M float64
}

// NewXbox validates parameters and returns the map.
func NewXbox(d int, m float64) (*Xbox, error) {
	if d <= 0 {
		return nil, fmt.Errorf("transform: dimension %d must be positive", d)
	}
	if m <= 0 {
		return nil, fmt.Errorf("transform: data radius %v must be positive", m)
	}
	return &Xbox{D: d, M: m}, nil
}

// OutputDim returns d+1.
func (t *Xbox) OutputDim() int { return t.D + 1 }

// Data embeds a data vector with ‖p‖ ≤ M.
func (t *Xbox) Data(p vec.Vector) vec.Vector {
	if len(p) != t.D {
		panic(fmt.Sprintf("transform: data dimension %d != %d", len(p), t.D))
	}
	out := make(vec.Vector, t.D+1)
	copy(out, p)
	out[t.D] = clampRoot(t.M*t.M-vec.Norm2(p), "Xbox.Data")
	return out
}

// Query embeds a query vector (any norm).
func (t *Xbox) Query(q vec.Vector) vec.Vector {
	if len(q) != t.D {
		panic(fmt.Sprintf("transform: query dimension %d != %d", len(q), t.D))
	}
	out := make(vec.Vector, t.D+1)
	copy(out, q)
	return out
}

// L2ALSH is the original Shrivastava–Li asymmetric map for MIPS with
// p-stable Euclidean LSH: data p is scaled to norm ≤ U0 < 1 and extended
// with m squared-norm powers ‖p‖², ‖p‖⁴, …, ‖p‖^{2^m}; the query is
// normalized and extended with m halves. Maximising inner product then
// matches minimising the Euclidean distance up to an additive error
// U0^{2^{m+1}} that vanishes with m.
type L2ALSH struct {
	D, M int
	// U0 is the data scaling target (default 0.83 per the original paper).
	U0 float64
	// Scale is the factor applied to data vectors (U0 / maxNorm).
	Scale float64
}

// NewL2ALSH builds the map for data whose max norm is maxNorm.
func NewL2ALSH(d, m int, u0, maxNorm float64) (*L2ALSH, error) {
	if d <= 0 || m <= 0 {
		return nil, fmt.Errorf("transform: invalid L2ALSH shape d=%d m=%d", d, m)
	}
	if u0 <= 0 || u0 >= 1 {
		return nil, fmt.Errorf("transform: U0 %v out of (0,1)", u0)
	}
	if maxNorm <= 0 {
		return nil, fmt.Errorf("transform: maxNorm %v must be positive", maxNorm)
	}
	return &L2ALSH{D: d, M: m, U0: u0, Scale: u0 / maxNorm}, nil
}

// OutputDim returns d+m.
func (t *L2ALSH) OutputDim() int { return t.D + t.M }

// Data embeds a data vector.
func (t *L2ALSH) Data(p vec.Vector) vec.Vector {
	if len(p) != t.D {
		panic(fmt.Sprintf("transform: data dimension %d != %d", len(p), t.D))
	}
	out := make(vec.Vector, t.D+t.M)
	for i, v := range p {
		out[i] = v * t.Scale
	}
	n2 := vec.Norm2(out[:t.D])
	pow := n2
	for j := 0; j < t.M; j++ {
		out[t.D+j] = pow
		pow = pow * pow
	}
	return out
}

// Query embeds a query vector (normalized internally).
func (t *L2ALSH) Query(q vec.Vector) vec.Vector {
	if len(q) != t.D {
		panic(fmt.Sprintf("transform: query dimension %d != %d", len(q), t.D))
	}
	out := make(vec.Vector, t.D+t.M)
	n := vec.Norm(q)
	if n > 0 {
		for i, v := range q {
			out[i] = v / n
		}
	}
	for j := 0; j < t.M; j++ {
		out[t.D+j] = 0.5
	}
	return out
}

// AdditiveError returns the U0^{2^{m+1}} term by which the distance
// objective deviates from exact MIPS ordering.
func (t *L2ALSH) AdditiveError() float64 {
	return math.Pow(t.U0, math.Pow(2, float64(t.M+1)))
}

// SignALSH is the Shrivastava–Li sign-ALSH map for MIPS under sign
// random projections: data p is scaled to norm ≤ U0 and extended with m
// terms 1/2 − ‖p′‖^{2^{j+1}}; the query is normalized and zero-padded.
// The embedded inner product equals the scaled pᵀq while ‖Data(p)‖
// concentrates around √(m/4 + ‖p′‖^{2^{m+1}}), so hyperplane hashing on
// the images approximately ranks by inner product.
type SignALSH struct {
	D, M int
	// U0 is the data scaling target, Scale the applied factor U0/maxNorm.
	U0, Scale float64
}

// NewSignALSH builds the map for data whose max norm is maxNorm.
func NewSignALSH(d, m int, u0, maxNorm float64) (*SignALSH, error) {
	if d <= 0 || m <= 0 {
		return nil, fmt.Errorf("transform: invalid SignALSH shape d=%d m=%d", d, m)
	}
	if u0 <= 0 || u0 >= 1 {
		return nil, fmt.Errorf("transform: U0 %v out of (0,1)", u0)
	}
	if maxNorm <= 0 {
		return nil, fmt.Errorf("transform: maxNorm %v must be positive", maxNorm)
	}
	return &SignALSH{D: d, M: m, U0: u0, Scale: u0 / maxNorm}, nil
}

// OutputDim returns d+m.
func (t *SignALSH) OutputDim() int { return t.D + t.M }

// Data embeds a data vector.
func (t *SignALSH) Data(p vec.Vector) vec.Vector {
	if len(p) != t.D {
		panic(fmt.Sprintf("transform: data dimension %d != %d", len(p), t.D))
	}
	out := make(vec.Vector, t.D+t.M)
	for i, v := range p {
		out[i] = v * t.Scale
	}
	pow := vec.Norm2(out[:t.D])
	for j := 0; j < t.M; j++ {
		out[t.D+j] = 0.5 - pow
		pow = pow * pow
	}
	return out
}

// Query embeds a query vector (normalized internally, zero padding).
func (t *SignALSH) Query(q vec.Vector) vec.Vector {
	if len(q) != t.D {
		panic(fmt.Sprintf("transform: query dimension %d != %d", len(q), t.D))
	}
	out := make(vec.Vector, t.D+t.M)
	n := vec.Norm(q)
	if n > 0 {
		for i, v := range q {
			out[i] = v / n
		}
	}
	return out
}

// Symmetric is the paper's §4.2 map: a *symmetric* reduction to the unit
// sphere that preserves inner products up to ±ε for all pairs of
// *distinct* vectors. It maps f(p) = (p, √(1−‖p‖²)·v_p) where {v_u} is
// an explicit ε-incoherent family indexed by the vector's fixed-point
// bit representation (Reed–Solomon construction of [38]).
//
// Identical vectors collide at inner product 1 (they get the same v_p),
// which is exactly the case Definition 2 is relaxed to ignore.
type Symmetric struct {
	D int
	// Family is the incoherent collection supplying the tail vectors.
	Family *codes.Incoherent
	// Bits is the fixed-point precision used to key vectors (k in §4.2).
	Bits int
}

// NewSymmetric builds the map for dimension d with k-bit fixed-point
// coordinates and incoherence eps. The family is sized to 2^min(dk, 40)
// keys — beyond that the key space is hashed, which preserves the
// guarantee with high probability.
func NewSymmetric(d, k int, eps float64) (*Symmetric, error) {
	if d <= 0 || k <= 0 || k > 16 {
		return nil, fmt.Errorf("transform: invalid Symmetric shape d=%d k=%d", d, k)
	}
	keyBits := d * k
	if keyBits > 40 {
		keyBits = 40
	}
	fam, err := codes.NewIncoherent(uint64(1)<<uint(keyBits), eps)
	if err != nil {
		return nil, err
	}
	return &Symmetric{D: d, Family: fam, Bits: k}, nil
}

// OutputDim returns d + p² where p is the RS field size.
func (t *Symmetric) OutputDim() int { return t.D + t.Family.Dim() }

// Quantize rounds v to the map's fixed-point grid; vectors are keyed by
// their quantized form, so callers should quantize before storing if
// they need exact self-collision semantics.
func (t *Symmetric) Quantize(p vec.Vector) vec.Vector {
	scale := float64(int64(1) << uint(t.Bits))
	out := make(vec.Vector, len(p))
	for i, v := range p {
		out[i] = math.Round(v*scale) / scale
	}
	return out
}

// key serialises the quantized coordinates for family lookup.
func (t *Symmetric) key(p vec.Vector) []byte {
	buf := make([]byte, 8*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// Map embeds a vector from the unit ball onto the unit sphere in
// OutputDim dimensions. The same function serves data and queries —
// that is the point of §4.2.
func (t *Symmetric) Map(p vec.Vector) vec.Vector {
	if len(p) != t.D {
		panic(fmt.Sprintf("transform: dimension %d != %d", len(p), t.D))
	}
	qp := t.Quantize(p)
	tail := clampRoot(1-vec.Norm2(qp), "Symmetric.Map")
	sp := t.Family.VectorForKey(t.key(qp))
	out := make(vec.Vector, t.OutputDim())
	copy(out, qp)
	for i, pos := range sp.Positions {
		out[t.D+i*sp.BlockSize+pos] = tail * sp.Scale
	}
	return out
}

// Eps returns the certified incoherence (and hence inner-product error)
// bound of the family.
func (t *Symmetric) Eps() float64 { return t.Family.Eps() }
