package store

import (
	"sync"
	"testing"

	"repro/internal/vec"
)

func TestVersionedAppendAndSnapshot(t *testing.T) {
	v := NewVersioned("r")
	if rel, ver := v.Snapshot(); ver != 0 || len(rel.Recs) != 0 {
		t.Fatalf("fresh snapshot: version %d, %d recs", ver, len(rel.Recs))
	}
	ver, err := v.Append([]Record{{ID: 0, Vec: vec.Vector{1, 2}}})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if ver != 1 {
		t.Fatalf("version %d, want 1", ver)
	}
	if _, err := v.Append([]Record{{ID: 1, Vec: vec.Vector{1, 2, 3}}}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := v.Append([]Record{}); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if v.Version() != 1 {
		t.Fatalf("empty append bumped version to %d", v.Version())
	}

	// Old snapshots stay immutable across later appends.
	before, _ := v.Snapshot()
	if _, err := v.Append([]Record{{ID: 1, Vec: vec.Vector{3, 4}}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if len(before.Recs) != 1 {
		t.Fatalf("old snapshot mutated: %d recs", len(before.Recs))
	}
	after, ver := v.Snapshot()
	if len(after.Recs) != 2 || ver != 2 {
		t.Fatalf("new snapshot: %d recs at version %d", len(after.Recs), ver)
	}
}

// TestVersionedConcurrent checks, under -race, that concurrent readers
// always observe a (relation, version) pair that is mutually consistent:
// version v contains exactly the first v batches.
func TestVersionedConcurrent(t *testing.T) {
	v := NewVersioned("r")
	const batches = 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < batches; b++ {
			if _, err := v.Append([]Record{{ID: b, Vec: vec.Vector{float64(b)}}}); err != nil {
				t.Errorf("append %d: %v", b, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, ver := v.Snapshot()
				if uint64(len(rel.Recs)) != ver {
					t.Errorf("snapshot: %d recs at version %d", len(rel.Recs), ver)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v.Len() != batches {
		t.Fatalf("final length %d, want %d", v.Len(), batches)
	}
}
