package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Versioned is a thread-safe, copy-on-write wrapper around a Relation.
// Readers take lock-free immutable snapshots via an atomic pointer;
// writers append under a mutex, publishing a fresh Relation value whose
// record slice is never mutated afterwards. Each successful append bumps
// a monotonically increasing version, published atomically with the
// relation so cache layers can detect staleness without torn reads.
type Versioned struct {
	name    string
	mu      sync.Mutex // serializes writers
	current atomic.Pointer[versionedSnap]
}

// versionedSnap pairs a relation with its version so both are swapped
// in a single atomic store.
type versionedSnap struct {
	rel     *Relation
	version uint64
}

// NewVersioned creates an empty versioned relation with the given name.
// The first append fixes the vector dimension.
func NewVersioned(name string) *Versioned {
	v := &Versioned{name: name}
	v.current.Store(&versionedSnap{rel: &Relation{Name: name}})
	return v
}

// Name returns the relation name.
func (v *Versioned) Name() string { return v.name }

// validateAppend checks recs against rel's dimension (adopting the
// first record's dimension on an empty relation) and returns the
// effective dimension.
func validateAppend(name string, rel *Relation, recs []Record) (int, error) {
	dim := rel.Dim
	if dim == 0 {
		dim = len(recs[0].Vec)
		if dim == 0 {
			return 0, fmt.Errorf("store: relation %q: zero-dimensional record", name)
		}
	}
	for i, r := range recs {
		if len(r.Vec) != dim {
			return 0, fmt.Errorf("store: relation %q: appended record %d has dimension %d, want %d",
				name, i, len(r.Vec), dim)
		}
	}
	return dim, nil
}

// CheckAppend reports whether Append would accept recs against the
// current snapshot. Callers that serialize their appends externally
// (like the server's ingest path) can use it to validate up front and
// treat a later Append of the same batch as infallible.
func (v *Versioned) CheckAppend(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	rel, _ := v.Snapshot()
	_, err := validateAppend(v.name, rel, recs)
	return err
}

// Append validates recs against the current dimension (or adopts the
// dimension of the first record on an empty relation), publishes a new
// snapshot containing the old records followed by recs, and returns the
// new version number.
func (v *Versioned) Append(recs []Record) (uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.current.Load()
	if len(recs) == 0 {
		return old.version, nil
	}
	dim, err := validateAppend(v.name, old.rel, recs)
	if err != nil {
		return 0, err
	}
	next := &Relation{
		Name: v.name,
		Dim:  dim,
		Recs: make([]Record, 0, len(old.rel.Recs)+len(recs)),
	}
	next.Recs = append(next.Recs, old.rel.Recs...)
	next.Recs = append(next.Recs, recs...)
	v.current.Store(&versionedSnap{rel: next, version: old.version + 1})
	return old.version + 1, nil
}

// Mutate publishes a new snapshot with deletes removed and upserts
// applied — a live record with a matching ID is replaced in place
// (keeping its position), unmatched upserts are appended in batch
// order — and returns the new version. Upserts are validated against
// the current dimension, which is retained even if every record is
// deleted so later writes stay dimension-checked. An upsert and a
// delete of the same ID must not be combined in one call (the relative
// order would be ambiguous); callers issue them as separate mutations.
func (v *Versioned) Mutate(upserts []Record, deletes map[int]struct{}) (uint64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	old := v.current.Load()
	if len(upserts) == 0 && len(deletes) == 0 {
		return old.version, nil
	}
	dim := old.rel.Dim
	if len(upserts) > 0 {
		var err error
		if dim, err = validateAppend(v.name, old.rel, upserts); err != nil {
			return 0, err
		}
	}
	up := make(map[int]int, len(upserts))
	for i, r := range upserts {
		up[r.ID] = i
	}
	used := make([]bool, len(upserts))
	next := &Relation{
		Name: v.name,
		Dim:  dim,
		Recs: make([]Record, 0, len(old.rel.Recs)+len(upserts)),
	}
	for _, r := range old.rel.Recs {
		if _, del := deletes[r.ID]; del {
			continue
		}
		if i, ok := up[r.ID]; ok {
			next.Recs = append(next.Recs, upserts[i])
			used[i] = true
			continue
		}
		next.Recs = append(next.Recs, r)
	}
	for i, r := range upserts {
		if !used[i] {
			next.Recs = append(next.Recs, r)
		}
	}
	v.current.Store(&versionedSnap{rel: next, version: old.version + 1})
	return old.version + 1, nil
}

// Snapshot returns the current immutable relation and its version.
// Callers must not mutate the returned record slice.
func (v *Versioned) Snapshot() (*Relation, uint64) {
	s := v.current.Load()
	return s.rel, s.version
}

// Len returns the current record count.
func (v *Versioned) Len() int { return len(v.current.Load().rel.Recs) }

// Version returns the current version number (0 for an empty relation).
func (v *Versioned) Version() uint64 { return v.current.Load().version }
