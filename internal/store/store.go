// Package store provides a small database-flavoured execution layer for
// IPS joins, after the "similarity join database operator" framing of
// Silva–Aref–Ali that the paper's related work builds on: relations of
// vector-payload records and Volcano-style iterators (Open/Next/Close)
// composing scans, filters, limits and the similarity-join operator
// driven by any core.SearchBuilder (exact, ALSH, or sketch).
package store

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vec"
)

// Record is one tuple: an id, a vector payload, and optional
// string attributes.
type Record struct {
	ID    int
	Vec   vec.Vector
	Attrs map[string]string
}

// Relation is a named set of records with a common vector dimension.
type Relation struct {
	Name string
	Dim  int
	Recs []Record
}

// NewRelation validates and builds a relation.
func NewRelation(name string, recs []Record) (*Relation, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("store: relation %q is empty", name)
	}
	d := len(recs[0].Vec)
	if d == 0 {
		return nil, fmt.Errorf("store: relation %q has zero-dimensional vectors", name)
	}
	for i, r := range recs {
		if len(r.Vec) != d {
			return nil, fmt.Errorf("store: relation %q record %d has dimension %d, want %d",
				name, i, len(r.Vec), d)
		}
	}
	return &Relation{Name: name, Dim: d, Recs: recs}, nil
}

// Vectors returns the payload vectors in record order.
func (r *Relation) Vectors() []vec.Vector {
	out := make([]vec.Vector, len(r.Recs))
	for i, rec := range r.Recs {
		out[i] = rec.Vec
	}
	return out
}

// Tuple is one similarity-join output row.
type Tuple struct {
	Left, Right Record
	// Value is the verified (absolute, for unsigned) inner product.
	Value float64
}

// Operator is the Volcano iterator contract.
type Operator interface {
	Open() error
	// Next returns the next tuple; ok=false signals exhaustion.
	Next() (t Tuple, ok bool, err error)
	Close() error
}

// Scan emits a relation's records as left-only tuples.
type Scan struct {
	Rel *Relation
	pos int
}

// NewScan returns a scan over rel.
func NewScan(rel *Relation) *Scan { return &Scan{Rel: rel} }

// Open implements Operator.
func (s *Scan) Open() error {
	if s.Rel == nil {
		return fmt.Errorf("store: scan over nil relation")
	}
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *Scan) Next() (Tuple, bool, error) {
	if s.pos >= len(s.Rel.Recs) {
		return Tuple{}, false, nil
	}
	t := Tuple{Left: s.Rel.Recs[s.pos]}
	s.pos++
	return t, true, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// SimJoin is the similarity-join operator: for each left tuple, it
// consults a (cs, s) search structure over the right relation and emits
// a joined tuple when the search reports a qualifying partner. One
// output per satisfied left tuple — the paper's Definition 1 semantics.
type SimJoin struct {
	Input   Operator
	Right   *Relation
	Spec    core.Spec
	Builder core.SearchBuilder

	searcher core.Searcher
	opened   bool
}

// Open builds the search structure and opens the input.
func (j *SimJoin) Open() error {
	if j.Input == nil || j.Right == nil || j.Builder == nil {
		return fmt.Errorf("store: simjoin requires input, right relation and builder")
	}
	if err := j.Spec.Validate(); err != nil {
		return err
	}
	if err := j.Input.Open(); err != nil {
		return err
	}
	s, err := j.Builder.Build(j.Right.Vectors())
	if err != nil {
		return err
	}
	j.searcher = s
	j.opened = true
	return nil
}

// Next implements Operator: it pulls left tuples until one joins.
func (j *SimJoin) Next() (Tuple, bool, error) {
	if !j.opened {
		return Tuple{}, false, fmt.Errorf("store: simjoin not opened")
	}
	for {
		left, ok, err := j.Input.Next()
		if err != nil || !ok {
			return Tuple{}, false, err
		}
		if len(left.Left.Vec) != j.Right.Dim {
			return Tuple{}, false, fmt.Errorf("store: left record %d has dimension %d, want %d",
				left.Left.ID, len(left.Left.Vec), j.Right.Dim)
		}
		idx, val, hit := j.searcher.Search(left.Left.Vec, j.Spec)
		if !hit {
			continue
		}
		return Tuple{Left: left.Left, Right: j.Right.Recs[idx], Value: val}, true, nil
	}
}

// Close implements Operator.
func (j *SimJoin) Close() error {
	j.opened = false
	if j.Input != nil {
		return j.Input.Close()
	}
	return nil
}

// Filter drops tuples failing the predicate.
type Filter struct {
	Input Operator
	Pred  func(Tuple) bool
}

// Open implements Operator.
func (f *Filter) Open() error {
	if f.Input == nil || f.Pred == nil {
		return fmt.Errorf("store: filter requires input and predicate")
	}
	return f.Input.Open()
}

// Next implements Operator.
func (f *Filter) Next() (Tuple, bool, error) {
	for {
		t, ok, err := f.Input.Next()
		if err != nil || !ok {
			return Tuple{}, false, err
		}
		if f.Pred(t) {
			return t, true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Limit emits at most N tuples.
type Limit struct {
	Input Operator
	N     int
	count int
}

// Open implements Operator.
func (l *Limit) Open() error {
	if l.Input == nil {
		return fmt.Errorf("store: limit requires input")
	}
	if l.N < 0 {
		return fmt.Errorf("store: negative limit %d", l.N)
	}
	l.count = 0
	return l.Input.Open()
}

// Next implements Operator.
func (l *Limit) Next() (Tuple, bool, error) {
	if l.count >= l.N {
		return Tuple{}, false, nil
	}
	t, ok, err := l.Input.Next()
	if err != nil || !ok {
		return Tuple{}, false, err
	}
	l.count++
	return t, true, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// Collect drains an operator into a slice, handling Open/Close.
func Collect(op Operator) ([]Tuple, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Tuple
	for {
		t, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}
