package store

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func buildRelations(t *testing.T, seed uint64) (users, items *Relation, planted map[int]int) {
	t.Helper()
	rng := xrand.New(seed)
	P, Q, at := dataset.Planted(rng, 100, 12, 8, 0.95, []int{0, 4, 8})
	itemRecs := make([]Record, len(P))
	for i, p := range P {
		itemRecs[i] = Record{ID: i, Vec: p, Attrs: map[string]string{"kind": "item"}}
	}
	userRecs := make([]Record, len(Q))
	for i, q := range Q {
		userRecs[i] = Record{ID: i, Vec: q}
	}
	items, err := NewRelation("items", itemRecs)
	if err != nil {
		t.Fatal(err)
	}
	users, err = NewRelation("users", userRecs)
	if err != nil {
		t.Fatal(err)
	}
	return users, items, at
}

func TestSimJoinExactPipeline(t *testing.T) {
	users, items, planted := buildRelations(t, 1)
	join := &SimJoin{
		Input:   NewScan(users),
		Right:   items,
		Spec:    core.Spec{Variant: core.Signed, S: 0.9, C: 0.5},
		Builder: core.ExactSearch{},
	}
	tuples, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, tp := range tuples {
		got[tp.Left.ID] = tp.Right.ID
		if tp.Value < 0.45 {
			t.Fatalf("tuple below cs: %+v", tp)
		}
		if v := vec.Dot(tp.Left.Vec, tp.Right.Vec); v != tp.Value {
			t.Fatalf("value %v != actual %v", tp.Value, v)
		}
	}
	for qi, pi := range planted {
		if got[qi] != pi {
			t.Fatalf("query %d joined to %d, want planted %d", qi, got[qi], pi)
		}
	}
}

func TestSimJoinALSHPipeline(t *testing.T) {
	users, items, planted := buildRelations(t, 2)
	join := &SimJoin{
		Input:   NewScan(users),
		Right:   items,
		Spec:    core.Spec{Variant: core.Signed, S: 0.9, C: 0.5},
		Builder: core.ALSHSearch{K: 6, L: 32, Seed: 3},
	}
	tuples, err := Collect(join)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, tp := range tuples {
		found[tp.Left.ID] = true
	}
	for qi := range planted {
		if !found[qi] {
			t.Fatalf("planted query %d missing from ALSH join output", qi)
		}
	}
}

func TestFilterAndLimit(t *testing.T) {
	users, items, _ := buildRelations(t, 4)
	pipeline := &Limit{
		N: 2,
		Input: &Filter{
			Pred: func(tp Tuple) bool { return tp.Value >= 0.9 },
			Input: &SimJoin{
				Input:   NewScan(users),
				Right:   items,
				Spec:    core.Spec{Variant: core.Signed, S: 0.9, C: 0.5},
				Builder: core.ExactSearch{},
			},
		},
	}
	tuples, err := Collect(pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("limit produced %d tuples", len(tuples))
	}
	for _, tp := range tuples {
		if tp.Value < 0.9 {
			t.Fatalf("filter leaked %+v", tp)
		}
	}
}

func TestScanEmitsAll(t *testing.T) {
	users, _, _ := buildRelations(t, 5)
	tuples, err := Collect(NewScan(users))
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != len(users.Recs) {
		t.Fatalf("scan emitted %d of %d", len(tuples), len(users.Recs))
	}
}

func TestRelationValidation(t *testing.T) {
	if _, err := NewRelation("x", nil); err == nil {
		t.Fatal("empty relation must fail")
	}
	ragged := []Record{{Vec: vec.Vector{1}}, {Vec: vec.Vector{1, 2}}}
	if _, err := NewRelation("x", ragged); err == nil {
		t.Fatal("ragged relation must fail")
	}
	zero := []Record{{Vec: vec.Vector{}}}
	if _, err := NewRelation("x", zero); err == nil {
		t.Fatal("zero-dim relation must fail")
	}
}

func TestOperatorErrors(t *testing.T) {
	if err := (&SimJoin{}).Open(); err == nil {
		t.Fatal("simjoin without parts must fail")
	}
	if _, _, err := (&SimJoin{}).Next(); err == nil {
		t.Fatal("next before open must fail")
	}
	if err := (&Filter{}).Open(); err == nil {
		t.Fatal("filter without pred must fail")
	}
	if err := (&Limit{Input: &Scan{}, N: -1}).Open(); err == nil {
		t.Fatal("negative limit must fail")
	}
	if err := (&Scan{}).Open(); err == nil {
		t.Fatal("scan of nil relation must fail")
	}
}

func TestSimJoinDimensionMismatch(t *testing.T) {
	_, items, _ := buildRelations(t, 6)
	bad, err := NewRelation("bad", []Record{{ID: 0, Vec: vec.Vector{1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	join := &SimJoin{
		Input:   NewScan(bad),
		Right:   items,
		Spec:    core.Spec{Variant: core.Signed, S: 0.9, C: 0.5},
		Builder: core.ExactSearch{},
	}
	if _, err := Collect(join); err == nil {
		t.Fatal("dimension mismatch must surface as an error")
	}
}
