// Package vec provides dense float64 vector and matrix primitives used
// throughout the IPS-join reproduction: inner products, norms, scaling,
// and small utility kernels.
//
// The hot-path kernels (Dot, Norm2, Axpy) are allocation-free and never
// fail; callers are responsible for matching lengths, which is asserted
// in debug builds via panics with descriptive messages.
package vec

import (
	"fmt"
	"math"
)

// Vector is a dense real vector.
type Vector []float64

// New returns a zero vector of dimension d.
func New(d int) Vector {
	if d < 0 {
		panic(fmt.Sprintf("vec: negative dimension %d", d))
	}
	return make(Vector, d)
}

// Clone returns a deep copy of x.
func (x Vector) Clone() Vector {
	y := make(Vector, len(x))
	copy(y, x)
	return y
}

// Dim returns the dimension of x.
func (x Vector) Dim() int { return len(x) }

// Dot returns the inner product xᵀy. Panics if dimensions differ.
func Dot(x, y Vector) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Dot dimension mismatch %d != %d", len(x), len(y)))
	}
	return DotKernel(x, y)
}

// DotKernel is the unchecked 4-way unrolled inner-product kernel shared
// by Dot and the flat columnar scans. It reads len(x) elements of each
// operand (y must be at least as long) and accumulates into four
// independent sums, which breaks the floating-point dependency chain
// and roughly quadruples throughput on modern cores. Every inner
// product in the repo must route through this kernel so results are
// bit-identical across storage layouts — the equivalence tests rely on
// it.
func DotKernel(x, y []float64) float64 {
	y = y[:len(x)] // hoist the bounds check out of the loop
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// AbsDot returns |xᵀy|.
func AbsDot(x, y Vector) float64 { return math.Abs(Dot(x, y)) }

// Norm2 returns the squared Euclidean norm ‖x‖². It routes through
// DotKernel so norms computed from row views of a columnar store match
// norms computed from standalone vectors bit for bit.
func Norm2(x Vector) float64 {
	return DotKernel(x, x)
}

// Norm returns the Euclidean norm ‖x‖.
func Norm(x Vector) float64 { return math.Sqrt(Norm2(x)) }

// NormP returns the ℓ_p norm of x for p ≥ 1, and the ℓ_∞ norm for
// p = math.Inf(1).
func NormP(x Vector, p float64) float64 {
	if math.IsInf(p, 1) {
		var m float64
		for _, v := range x {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
		return m
	}
	if p < 1 {
		panic(fmt.Sprintf("vec: NormP requires p >= 1, got %v", p))
	}
	var s float64
	for _, v := range x {
		s += math.Pow(math.Abs(v), p)
	}
	return math.Pow(s, 1/p)
}

// Scale multiplies x by a in place and returns x.
func Scale(x Vector, a float64) Vector {
	for i := range x {
		x[i] *= a
	}
	return x
}

// Scaled returns a·x as a new vector.
func Scaled(x Vector, a float64) Vector {
	y := make(Vector, len(x))
	for i, v := range x {
		y[i] = a * v
	}
	return y
}

// Neg returns −x as a new vector.
func Neg(x Vector) Vector { return Scaled(x, -1) }

// Add returns x+y as a new vector. Panics if dimensions differ.
func Add(x, y Vector) Vector {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Add dimension mismatch %d != %d", len(x), len(y)))
	}
	z := make(Vector, len(x))
	for i := range x {
		z[i] = x[i] + y[i]
	}
	return z
}

// Sub returns x−y as a new vector. Panics if dimensions differ.
func Sub(x, y Vector) Vector {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Sub dimension mismatch %d != %d", len(x), len(y)))
	}
	z := make(Vector, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}

// Axpy computes y ← a·x + y in place. Panics if dimensions differ.
func Axpy(a float64, x, y Vector) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: Axpy dimension mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Normalize scales x to unit Euclidean norm in place and returns x.
// The zero vector is returned unchanged.
func Normalize(x Vector) Vector {
	n := Norm(x)
	if n == 0 {
		return x
	}
	return Scale(x, 1/n)
}

// Normalized returns x/‖x‖ as a new vector (the zero vector maps to a
// zero vector).
func Normalized(x Vector) Vector {
	y := x.Clone()
	return Normalize(y)
}

// Cosine returns the cosine similarity xᵀy/(‖x‖·‖y‖). Returns 0 when
// either vector is zero.
func Cosine(x, y Vector) float64 {
	nx, ny := Norm(x), Norm(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}

// Concat returns the concatenation x ⊕ y.
func Concat(x, y Vector) Vector {
	z := make(Vector, 0, len(x)+len(y))
	z = append(z, x...)
	z = append(z, y...)
	return z
}

// Repeat returns x concatenated with itself n times (x^{⊕n}).
func Repeat(x Vector, n int) Vector {
	if n < 0 {
		panic(fmt.Sprintf("vec: Repeat negative count %d", n))
	}
	z := make(Vector, 0, len(x)*n)
	for i := 0; i < n; i++ {
		z = append(z, x...)
	}
	return z
}

// Tensor returns the vectorised outer product x ⊗ y, laid out row-major:
// (x ⊗ y)[i·dim(y)+j] = x[i]·y[j]. It satisfies the folklore identity
// (x1 ⊗ x2)ᵀ(y1 ⊗ y2) = (x1ᵀy1)·(x2ᵀy2).
func Tensor(x, y Vector) Vector {
	z := make(Vector, 0, len(x)*len(y))
	for _, xv := range x {
		for _, yv := range y {
			z = append(z, xv*yv)
		}
	}
	return z
}

// EqualTol reports whether x and y agree within absolute tolerance tol
// in every coordinate.
func EqualTol(x, y Vector, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative shape %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Row returns row i as a Vector aliasing the underlying storage.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("vec: Row index %d out of range [0,%d)", i, m.Rows))
	}
	return Vector(m.Data[i*m.Cols : (i+1)*m.Cols])
}

// SetRow copies x into row i. Panics on dimension mismatch.
func (m *Matrix) SetRow(i int, x Vector) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: SetRow dimension mismatch %d != %d", len(x), m.Cols))
	}
	copy(m.Row(i), x)
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes y = m·x. Panics if len(x) != Cols.
func (m *Matrix) MulVec(x Vector) Vector {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	y := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// FromRows builds a matrix whose rows are the given vectors, which must
// all share the same dimension.
func FromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		m.SetRow(i, r)
	}
	return m
}

// MaxAbs returns the largest absolute entry of x (the ℓ_∞ norm).
func MaxAbs(x Vector) float64 { return NormP(x, math.Inf(1)) }

// ArgMaxAbs returns the index of the largest-magnitude entry of x, and
// that magnitude. Returns (-1, 0) for the empty vector.
func ArgMaxAbs(x Vector) (int, float64) {
	best, bv := -1, 0.0
	for i, v := range x {
		if a := math.Abs(v); best == -1 || a > bv {
			best, bv = i, a
		}
	}
	return best, bv
}
