package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	x := Vector{1, 2, 3}
	y := Vector{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Fatalf("Dot = %v, want 12", got)
	}
	if got := AbsDot(Vector{1, 0}, Vector{-3, 0}); got != 3 {
		t.Fatalf("AbsDot = %v, want 3", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNorms(t *testing.T) {
	x := Vector{3, -4}
	if got := Norm(x); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	if got := Norm2(x); got != 25 {
		t.Fatalf("Norm2 = %v, want 25", got)
	}
	if got := NormP(x, 1); got != 7 {
		t.Fatalf("NormP(1) = %v, want 7", got)
	}
	if got := NormP(x, math.Inf(1)); got != 4 {
		t.Fatalf("NormP(inf) = %v, want 4", got)
	}
	if got := MaxAbs(x); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestNormPInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p < 1")
		}
	}()
	NormP(Vector{1}, 0.5)
}

func TestScaleAddSub(t *testing.T) {
	x := Vector{1, 2}
	y := Scaled(x, 3)
	if y[0] != 3 || y[1] != 6 {
		t.Fatalf("Scaled = %v", y)
	}
	if x[0] != 1 {
		t.Fatal("Scaled must not mutate input")
	}
	Scale(x, 2)
	if x[0] != 2 || x[1] != 4 {
		t.Fatalf("Scale in place = %v", x)
	}
	z := Add(Vector{1, 1}, Vector{2, 3})
	if z[0] != 3 || z[1] != 4 {
		t.Fatalf("Add = %v", z)
	}
	w := Sub(Vector{1, 1}, Vector{2, 3})
	if w[0] != -1 || w[1] != -2 {
		t.Fatalf("Sub = %v", w)
	}
	n := Neg(Vector{1, -2})
	if n[0] != -1 || n[1] != 2 {
		t.Fatalf("Neg = %v", n)
	}
}

func TestAxpy(t *testing.T) {
	y := Vector{1, 1}
	Axpy(2, Vector{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestNormalize(t *testing.T) {
	x := Vector{3, 4}
	Normalize(x)
	if !almostEq(Norm(x), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", Norm(x))
	}
	z := Vector{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector must stay zero")
	}
	orig := Vector{3, 4}
	u := Normalized(orig)
	if orig[0] != 3 {
		t.Fatal("Normalized must not mutate input")
	}
	if !almostEq(Norm(u), 1, 1e-12) {
		t.Fatalf("Normalized norm = %v", Norm(u))
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); got != 0 {
		t.Fatalf("Cosine orthogonal = %v", got)
	}
	if got := Cosine(Vector{2, 0}, Vector{5, 0}); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Cosine parallel = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Fatalf("Cosine zero = %v", got)
	}
}

func TestConcatRepeat(t *testing.T) {
	z := Concat(Vector{1, 2}, Vector{3})
	if len(z) != 3 || z[2] != 3 {
		t.Fatalf("Concat = %v", z)
	}
	r := Repeat(Vector{1, 2}, 3)
	if len(r) != 6 || r[4] != 1 {
		t.Fatalf("Repeat = %v", r)
	}
	if got := Repeat(Vector{1}, 0); len(got) != 0 {
		t.Fatalf("Repeat 0 = %v", got)
	}
}

func TestTensorIdentity(t *testing.T) {
	// The folklore identity (x1⊗x2)ᵀ(y1⊗y2) = (x1ᵀy1)(x2ᵀy2), exercised
	// with random vectors as a property test.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d1, d2 := 1+r.Intn(6), 1+r.Intn(6)
		rv := func(d int) Vector {
			v := New(d)
			for i := range v {
				v[i] = float64(r.Intn(7) - 3)
			}
			return v
		}
		x1, x2, y1, y2 := rv(d1), rv(d2), rv(d1), rv(d2)
		lhs := Dot(Tensor(x1, x2), Tensor(y1, y2))
		rhs := Dot(x1, y1) * Dot(x2, y2)
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTensorLayout(t *testing.T) {
	z := Tensor(Vector{1, 2}, Vector{10, 20, 30})
	want := Vector{10, 20, 30, 20, 40, 60}
	if !EqualTol(z, want, 0) {
		t.Fatalf("Tensor = %v, want %v", z, want)
	}
}

func TestConcatDotDuality(t *testing.T) {
	// (x1⊕x2)ᵀ(y1⊕y2) = x1ᵀy1 + x2ᵀy2.
	f := func(a, b, c, d int8) bool {
		x := Concat(Vector{float64(a)}, Vector{float64(b)})
		y := Concat(Vector{float64(c)}, Vector{float64(d)})
		return Dot(x, y) == float64(a)*float64(c)+float64(b)*float64(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetRow(0, Vector{1, 2, 3})
	m.SetRow(1, Vector{4, 5, 6})
	if m.At(1, 2) != 6 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set failed")
	}
	y := m.MulVec(Vector{1, 1, 1})
	if y[0] != 6 || y[1] != 16 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows = %+v", m)
	}
	empty := FromRows(nil)
	if empty.Rows != 0 {
		t.Fatal("FromRows(nil) should be empty")
	}
}

func TestMatrixRowAliases(t *testing.T) {
	m := NewMatrix(2, 2)
	r := m.Row(0)
	r[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestArgMaxAbs(t *testing.T) {
	i, v := ArgMaxAbs(Vector{1, -5, 3})
	if i != 1 || v != 5 {
		t.Fatalf("ArgMaxAbs = (%d, %v)", i, v)
	}
	i, v = ArgMaxAbs(nil)
	if i != -1 || v != 0 {
		t.Fatalf("ArgMaxAbs(empty) = (%d, %v)", i, v)
	}
}

func TestEqualTol(t *testing.T) {
	if !EqualTol(Vector{1, 2}, Vector{1.0001, 2}, 1e-3) {
		t.Fatal("EqualTol should accept within tol")
	}
	if EqualTol(Vector{1}, Vector{1, 2}, 1) {
		t.Fatal("EqualTol must reject length mismatch")
	}
	if EqualTol(Vector{1}, Vector{2}, 0.5) {
		t.Fatal("EqualTol should reject out of tol")
	}
}

func TestClone(t *testing.T) {
	x := Vector{1, 2}
	y := x.Clone()
	y[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone must be deep")
	}
	if x.Dim() != 2 {
		t.Fatalf("Dim = %d", x.Dim())
	}
}

// TestDotKernelMatchesDot pins the kernel contract: Dot must equal
// DotKernel for every length (odd tails included), and DotKernel must
// tolerate a longer second operand, reading only len(x) elements.
func TestDotKernelMatchesDot(t *testing.T) {
	for d := 0; d <= 40; d++ {
		x, y := make(Vector, d), make(Vector, d+3)
		for i := 0; i < d; i++ {
			x[i] = float64(i%7) - 2.5
			y[i] = float64((i*3)%11) - 4.5
		}
		y[len(y)-1] = 1e18 // must never be read
		want := Dot(x, y[:d])
		if got := DotKernel(x, y); got != want {
			t.Fatalf("d=%d: DotKernel=%v, Dot=%v", d, got, want)
		}
		var naive float64
		for i := range x {
			naive += x[i] * y[i]
		}
		if diff := math.Abs(want - naive); diff > 1e-9 {
			t.Fatalf("d=%d: kernel %v vs naive %v", d, want, naive)
		}
	}
}
